package surfknn_test

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"surfknn/internal/core"
	"surfknn/internal/geom"
	"surfknn/internal/server/api"
	"surfknn/internal/server/client"
)

// TestCLITools builds the four command-line tools and drives them end to
// end: generate a terrain, view it, export a mesh, answer queries with every
// algorithm, and regenerate a figure with CSV output.
func TestCLITools(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, tool := range []string{"skgen", "skquery", "skbench", "skview"} {
		bin := filepath.Join(dir, tool)
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
		bins[tool] = bin
	}
	run := func(tool string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bins[tool], args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %s: %v\n%s", tool, strings.Join(args, " "), err, out)
		}
		return string(out)
	}

	// skgen: generate a small terrain file with stats.
	demPath := filepath.Join(dir, "t.sdem")
	out := run("skgen", "-preset", "EP", "-size", "16", "-cell", "100", "-o", demPath, "-info")
	if !strings.Contains(out, "17x17 samples") || !strings.Contains(out, "roughness") {
		t.Errorf("skgen output:\n%s", out)
	}
	if _, err := os.Stat(demPath); err != nil {
		t.Fatalf("terrain file missing: %v", err)
	}

	// skview: render the generated file and export an OBJ at 25% LOD.
	out = run("skview", "-dem", demPath, "-width", "24")
	if !strings.Contains(out, "km") {
		t.Errorf("skview output:\n%s", out)
	}
	objPath := filepath.Join(dir, "t.obj")
	out = run("skview", "-dem", demPath, "-obj", objPath, "-res", "0.25")
	if !strings.Contains(out, "25.0% resolution") {
		t.Errorf("skview obj output:\n%s", out)
	}
	objData, err := os.ReadFile(objPath)
	if err != nil || !strings.HasPrefix(string(objData), "# surfknn mesh") {
		t.Errorf("obj export broken: %v", err)
	}

	// skquery: every algorithm on the generated terrain.
	for _, algo := range []string{"mr3", "ea", "brute", "range", "masked"} {
		out = run("skquery", "-dem", demPath, "-objects", "25", "-k", "3", "-algo", algo, "-slope", "89")
		if !strings.Contains(out, "object") {
			t.Errorf("skquery %s output:\n%s", algo, out)
		}
	}

	// skbench: one small figure with CSV output.
	csvDir := filepath.Join(dir, "csv")
	out = run("skbench", "-fig", "1", "-size", "16", "-csv", csvDir)
	if !strings.Contains(out, "fig1") || !strings.Contains(out, "completed") {
		t.Errorf("skbench output:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(csvDir, "fig1.csv")); err != nil {
		t.Errorf("csv missing: %v", err)
	}
}

// TestCLIFlagErrors pins the operator contract: a typo'd flag exits
// non-zero with one diagnosable line, never a screenful of usage; -h still
// prints the full flag dump and exits zero.
func TestCLIFlagErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	for _, tool := range []string{"skquery", "skserve", "skcoord"} {
		bin := filepath.Join(dir, tool)
		if out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+tool).CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
		out, err := exec.Command(bin, "-no-such-flag").CombinedOutput()
		if err == nil {
			t.Errorf("%s -no-such-flag exited zero", tool)
		}
		lines := strings.Split(strings.TrimSpace(string(out)), "\n")
		if len(lines) != 1 || !strings.Contains(lines[0], "-no-such-flag") {
			t.Errorf("%s unknown-flag output is not one line:\n%s", tool, out)
		}
		out, err = exec.Command(bin, "-h").CombinedOutput()
		if err != nil {
			t.Errorf("%s -h exited non-zero: %v", tool, err)
		}
		if !strings.Contains(string(out), "flags:") {
			t.Errorf("%s -h did not print usage:\n%s", tool, out)
		}
	}

	// skserve with no terrain at all must also fail with one clear line.
	out, err := exec.Command(filepath.Join(dir, "skserve")).CombinedOutput()
	if err == nil {
		t.Error("skserve with no terrain exited zero")
	}
	if !strings.Contains(string(out), "-snapshot") {
		t.Errorf("skserve no-terrain error unhelpful:\n%s", out)
	}

	// Likewise skcoord with no manifest.
	out, err = exec.Command(filepath.Join(dir, "skcoord")).CombinedOutput()
	if err == nil {
		t.Error("skcoord with no manifest exited zero")
	}
	if !strings.Contains(string(out), "-manifest") {
		t.Errorf("skcoord no-manifest error unhelpful:\n%s", out)
	}
}

// scanBuffer collects the server's stdout lines behind a mutex: the
// scanner goroutine keeps writing until the process exits, while the test
// reads the accumulated output after shutdown — without the lock those two
// touch the same buffer with no happens-before edge.
type scanBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *scanBuffer) appendLine(line string) {
	s.mu.Lock()
	s.b.WriteString(line)
	s.b.WriteByte('\n')
	s.mu.Unlock()
}

func (s *scanBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startSkserve launches the binary and scrapes the announce line for the
// bound address. The returned cleanup kills the process if it is still up.
func startSkserve(t *testing.T, bin string, args ...string) (*exec.Cmd, string, *scanBuffer) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})

	output := &scanBuffer{}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			output.appendLine(line)
			if a, ok := strings.CutPrefix(line, "# skserve listening on "); ok {
				addrCh <- a
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr, output
	case <-time.After(30 * time.Second):
		t.Fatalf("skserve never announced its address\nstderr: %s", stderr.String())
		return nil, "", nil
	}
}

// TestSkserveEndToEnd is the serving-layer acceptance test: build the real
// binaries, snapshot a terrain with skgen -db, serve it with skserve, and
// verify over live HTTP that (a) concurrent responses are bit-identical to
// calling TerrainDB.MR3 directly on the same snapshot, (b) a saturated
// server sheds with 429 rather than hanging, and (c) SIGTERM drains and
// exits cleanly.
func TestSkserveEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, tool := range []string{"skgen", "skserve"} {
		bin := filepath.Join(dir, tool)
		if out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+tool).CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
		bins[tool] = bin
	}

	// skgen -db: one artifact carries mesh, indexes and objects.
	snap := filepath.Join(dir, "ep.skdb")
	out, err := exec.Command(bins["skgen"], "-preset", "EP", "-size", "16", "-cell", "100",
		"-o", filepath.Join(dir, "ep.sdem"), "-db", snap, "-db-objects", "30").CombinedOutput()
	if err != nil {
		t.Fatalf("skgen -db: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "TerrainDB snapshot with 30 objects") {
		t.Fatalf("skgen -db output:\n%s", out)
	}

	// The reference answer, computed directly on the same snapshot.
	db, err := core.LoadFile(snap, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := db.SurfacePointAt(geom.Vec2{X: 800, Y: 800})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := db.MR3(q, 5, core.S1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	cmd, addr, output := startSkserve(t, bins["skserve"], "-snapshot", snap, "-addr", "127.0.0.1:0")
	base := "http://" + addr

	// Concurrent queries through the typed client: every answer must match
	// the direct answer exactly, and the X-Epoch header must carry the
	// snapshot's epoch.
	cli := client.New(base)
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*4)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				got, meta, err := cli.KNN(context.Background(), api.KNNRequest{X: 800, Y: 800, K: 5})
				if err != nil {
					errs <- err
					return
				}
				if meta.Epoch != db.CurrentEpoch() {
					errs <- fmt.Errorf("X-Epoch %d, snapshot at %d", meta.Epoch, db.CurrentEpoch())
				}
				if len(got.Neighbors) != len(direct.Neighbors) {
					errs <- fmt.Errorf("knn returned %d neighbors, direct MR3 %d",
						len(got.Neighbors), len(direct.Neighbors))
					continue
				}
				for i, n := range direct.Neighbors {
					h := got.Neighbors[i]
					if h.ID != n.Object.ID ||
						math.Float64bits(float64(h.LB)) != math.Float64bits(n.LB) ||
						math.Float64bits(float64(h.UB)) != math.Float64bits(n.UB) {
						errs <- fmt.Errorf("neighbor %d diverged from direct MR3", i)
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The serving-layer metric group must be live on /debug/vars.
	resp, err := http.Get(base + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	vars, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(vars, []byte(`"surfknn_server"`)) {
		t.Error("/debug/vars missing the surfknn_server group")
	}

	// SIGTERM must drain and exit zero with the shutdown banner.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("skserve exited non-zero after SIGTERM: %v", err)
	}
	if !strings.Contains(output.String(), "# bye") {
		t.Errorf("shutdown banner missing from output:\n%s", output.String())
	}

	// Saturation: a one-slot, no-queue server under concurrent fire must
	// answer every request promptly with 200 or 429 — never hang. (The
	// deterministic 429 path is pinned by the internal/server unit tests.)
	satCmd, satAddr, _ := startSkserve(t, bins["skserve"], "-snapshot", snap,
		"-addr", "127.0.0.1:0", "-max-inflight", "1", "-queue", "-1",
		"-queue-wait", "1ms", "-cache", "-1")
	satErrs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"x":%d,"y":%d,"k":3}`, 400+20*g, 700+10*g)
			resp, err := http.Post("http://"+satAddr+"/v1/knn", "application/json",
				strings.NewReader(body))
			if err != nil {
				satErrs <- err
				return
			}
			defer resp.Body.Close()
			if _, err := io.ReadAll(resp.Body); err != nil {
				satErrs <- err
				return
			}
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
				satErrs <- fmt.Errorf("saturated server returned %d", resp.StatusCode)
			}
			if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
				satErrs <- fmt.Errorf("429 without Retry-After")
			}
		}(g)
	}
	wg.Wait()
	close(satErrs)
	for err := range satErrs {
		t.Error(err)
	}
	if err := satCmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := satCmd.Wait(); err != nil {
		t.Fatalf("saturated skserve exited non-zero after SIGTERM: %v", err)
	}
}

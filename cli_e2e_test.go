package surfknn_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLITools builds the four command-line tools and drives them end to
// end: generate a terrain, view it, export a mesh, answer queries with every
// algorithm, and regenerate a figure with CSV output.
func TestCLITools(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, tool := range []string{"skgen", "skquery", "skbench", "skview"} {
		bin := filepath.Join(dir, tool)
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
		bins[tool] = bin
	}
	run := func(tool string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bins[tool], args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %s: %v\n%s", tool, strings.Join(args, " "), err, out)
		}
		return string(out)
	}

	// skgen: generate a small terrain file with stats.
	demPath := filepath.Join(dir, "t.sdem")
	out := run("skgen", "-preset", "EP", "-size", "16", "-cell", "100", "-o", demPath, "-info")
	if !strings.Contains(out, "17x17 samples") || !strings.Contains(out, "roughness") {
		t.Errorf("skgen output:\n%s", out)
	}
	if _, err := os.Stat(demPath); err != nil {
		t.Fatalf("terrain file missing: %v", err)
	}

	// skview: render the generated file and export an OBJ at 25% LOD.
	out = run("skview", "-dem", demPath, "-width", "24")
	if !strings.Contains(out, "km") {
		t.Errorf("skview output:\n%s", out)
	}
	objPath := filepath.Join(dir, "t.obj")
	out = run("skview", "-dem", demPath, "-obj", objPath, "-res", "0.25")
	if !strings.Contains(out, "25.0% resolution") {
		t.Errorf("skview obj output:\n%s", out)
	}
	objData, err := os.ReadFile(objPath)
	if err != nil || !strings.HasPrefix(string(objData), "# surfknn mesh") {
		t.Errorf("obj export broken: %v", err)
	}

	// skquery: every algorithm on the generated terrain.
	for _, algo := range []string{"mr3", "ea", "brute", "range", "masked"} {
		out = run("skquery", "-dem", demPath, "-objects", "25", "-k", "3", "-algo", algo, "-slope", "89")
		if !strings.Contains(out, "object") {
			t.Errorf("skquery %s output:\n%s", algo, out)
		}
	}

	// skbench: one small figure with CSV output.
	csvDir := filepath.Join(dir, "csv")
	out = run("skbench", "-fig", "1", "-size", "16", "-csv", csvDir)
	if !strings.Contains(out, "fig1") || !strings.Contains(out, "completed") {
		t.Errorf("skbench output:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(csvDir, "fig1.csv")); err != nil {
		t.Errorf("csv missing: %v", err)
	}
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// astExhaustive keeps the SKQL planner and executor honest as the grammar
// grows. The sklang AST is a closed sum: a small interface (Stmt) with one
// exported node type per grammar form. Every type switch over such an
// interface is a dispatch over the whole language — PlanStmt mapping
// statements to algorithms, renderers walking trees — and a new grammar
// form silently falling through one of them is exactly the bug that parses
// fine, plans as nothing, and answers an empty result. So each such switch
// must either name every exported implementing type or carry an explicit
// default that returns a typed error (making "unknown statement form" a
// loud, typed failure rather than a silent drop).
//
// The rule keys on the interface's declaring package being named "sklang",
// so it follows the AST wherever it is switched on (planner, executor,
// serving layers) without dragging unrelated type switches in.
type astExhaustive struct{}

func (astExhaustive) Name() string { return "ast-exhaustive" }
func (astExhaustive) Doc() string {
	return "a type switch over a sklang AST interface must cover every exported node type or default to returning a typed error"
}

func (astExhaustive) CheckModule(m *Module, report func(p *Package, pos token.Pos, key, format string, args ...any)) {
	for _, p := range m.Pkgs {
		if p.Pkg == nil {
			continue
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sw, ok := n.(*ast.TypeSwitchStmt)
				if !ok {
					return true
				}
				iface := switchedSklangIface(p, sw)
				if iface == nil {
					return true
				}
				checkSwitch(p, sw, iface, report)
				return true
			})
		}
	}
}

// switchedSklangIface resolves the interface a type switch dispatches
// over, when that interface is declared in a package named "sklang"; nil
// for every other switch.
func switchedSklangIface(p *Package, sw *ast.TypeSwitchStmt) *types.Named {
	var subject ast.Expr
	switch s := sw.Assign.(type) {
	case *ast.ExprStmt:
		if ta, ok := s.X.(*ast.TypeAssertExpr); ok {
			subject = ta.X
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if ta, ok := s.Rhs[0].(*ast.TypeAssertExpr); ok {
				subject = ta.X
			}
		}
	}
	if subject == nil {
		return nil
	}
	tv, ok := p.Info.Types[subject]
	if !ok || tv.Type == nil {
		return nil
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return nil
	}
	if _, isIface := named.Underlying().(*types.Interface); !isIface {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != "sklang" {
		return nil
	}
	return named
}

// checkSwitch verifies one qualifying type switch: full coverage of the
// exported implementing types, or a default clause that returns an
// error-typed value.
func checkSwitch(p *Package, sw *ast.TypeSwitchStmt, iface *types.Named, report func(p *Package, pos token.Pos, key, format string, args ...any)) {
	impls := exportedImplementers(iface)
	covered := make(map[*types.TypeName]bool)
	var deflt *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			deflt = cc
			continue
		}
		for _, e := range cc.List {
			tv, ok := p.Info.Types[e]
			if !ok || tv.Type == nil {
				continue
			}
			t := tv.Type
			if ptr, isPtr := t.(*types.Pointer); isPtr {
				t = ptr.Elem()
			}
			if named, isNamed := t.(*types.Named); isNamed {
				covered[named.Obj()] = true
			}
		}
	}
	if deflt != nil {
		if !returnsError(p, deflt) {
			report(p, deflt.Pos(), "",
				"default clause of a switch over %s.%s does not return a typed error; an unknown node would be silently dropped",
				iface.Obj().Pkg().Name(), iface.Obj().Name())
		}
		return
	}
	var missing []string
	for _, tn := range impls {
		if !covered[tn] {
			missing = append(missing, tn.Name())
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		report(p, sw.Pos(), "",
			"type switch over %s.%s misses %s; cover every exported node type or add a default returning a typed error",
			iface.Obj().Pkg().Name(), iface.Obj().Name(), strings.Join(missing, ", "))
	}
}

// exportedImplementers enumerates the exported non-interface types in the
// interface's declaring package that implement it (directly or through a
// pointer receiver) — the closed sum the switch must cover.
func exportedImplementers(iface *types.Named) []*types.TypeName {
	it := iface.Underlying().(*types.Interface)
	scope := iface.Obj().Pkg().Scope()
	var out []*types.TypeName
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !tn.Exported() || tn == iface.Obj() {
			continue
		}
		t := tn.Type()
		if _, isIface := t.Underlying().(*types.Interface); isIface {
			continue
		}
		if types.Implements(t, it) || types.Implements(types.NewPointer(t), it) {
			out = append(out, tn)
		}
	}
	return out
}

// returnsError reports whether the clause body contains a return whose
// results include an error-typed value (a typed refusal, not a bare or
// nil-only return).
func returnsError(p *Package, cc *ast.CaseClause) bool {
	found := false
	for _, stmt := range cc.Body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if found {
				return false
			}
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				tv, ok := p.Info.Types[res]
				if !ok || tv.Type == nil {
					continue
				}
				if tv.IsNil() {
					continue
				}
				if isErrorType(tv.Type) {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return found
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ctxBackground forbids minting root contexts inside the HTTP serving layer
// (any package named "server"). A handler that reaches for
// context.Background() or context.TODO() detaches the query it runs from
// the request: the client can disconnect, the per-request deadline can
// fire, the server can drain for shutdown — and the query keeps burning a
// session and an admission slot, invisible to all of it. Every context in
// the serving layer must descend from *http.Request.Context() (via
// context.WithTimeout / WithCancel / WithDeadline), so cancellation
// propagates end to end.
//
// The rule keys on the package name rather than the import path so the
// fixture under testdata can exercise it; main packages (skserve's
// signal.NotifyContext root) and the engine's nil-context conveniences are
// untouched.
type ctxBackground struct{}

func (ctxBackground) Name() string { return "ctx-background" }
func (ctxBackground) Doc() string {
	return "context.Background/TODO in the server package orphans the query from request cancellation; derive from r.Context()"
}

func (ctxBackground) Check(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if p.Pkg == nil || p.Pkg.Name() != "server" {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := rootContextCall(p, call)
			if !ok {
				return true
			}
			report(call.Pos(),
				"context.%s() severs the query from request cancellation and shutdown drain; derive the context from r.Context()", name)
			return true
		})
	}
}

// rootContextCall reports whether call is context.Background() or
// context.TODO() from the standard library's context package, resolved
// through the type information so an import alias cannot hide it.
func rootContextCall(p *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := p.Info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	switch fn.Name() {
	case "Background", "TODO":
		return fn.Name(), true
	}
	return "", false
}

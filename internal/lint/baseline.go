package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baseline is the committed inventory of accepted hotpath-alloc findings:
// position-independent keys ("<func>\t<alloc-kind>") mapped to how many
// sites carry that key. It exists so the hot path can be annotated before
// it is allocation-free: known debt is recorded, new debt fails sklint,
// and removing an allocation lets -write-baseline shrink the file — the
// ratchet only turns one way. Keys deliberately omit positions so
// unrelated edits that shift lines do not churn the file.
type Baseline map[string]int

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline, so a repo (or fixture tree) without one demands a clean run.
func LoadBaseline(path string) (Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// WriteBaseline writes the baseline with sorted keys, one per line, so
// diffs of the committed file review cleanly.
func WriteBaseline(path string, b Baseline) error {
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf := []byte("{\n")
	for i, k := range keys {
		kj, _ := json.Marshal(k) //lint:ignore dropped-error marshaling a plain string cannot fail
		buf = append(buf, "  "...)
		buf = append(buf, kj...)
		buf = append(buf, fmt.Sprintf(": %d", b[k])...)
		if i < len(keys)-1 {
			buf = append(buf, ',')
		}
		buf = append(buf, '\n')
	}
	buf = append(buf, "}\n"...)
	return os.WriteFile(path, buf, 0o644)
}

// CollectBaseline turns a diagnostic list into the baseline that would
// accept exactly those findings.
func CollectBaseline(diags []Diagnostic) Baseline {
	b := Baseline{}
	for _, d := range diags {
		if d.Key != "" {
			b[d.Key]++
		}
	}
	return b
}

// ApplyBaseline splits diags into kept (not covered) and suppressed
// (covered). Each occurrence of a key consumes one unit of its baseline
// count: a key whose count grows from 2 to 3 keeps one diagnostic — the
// growth — while the accepted two stay suppressed. Diagnostics without a
// key (every rule but hotpath-alloc) pass through untouched: only the
// allocation ratchet is baselineable.
func ApplyBaseline(b Baseline, diags []Diagnostic) (kept, suppressed []Diagnostic) {
	remaining := make(Baseline, len(b))
	for k, v := range b {
		remaining[k] = v
	}
	for _, d := range diags {
		if d.Key != "" && remaining[d.Key] > 0 {
			remaining[d.Key]--
			suppressed = append(suppressed, d)
			continue
		}
		kept = append(kept, d)
	}
	return kept, suppressed
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// panicMessage enforces the repo's panic-message convention in internal/*
// packages: literal panic messages carry a "<pkg>: " prefix (see
// internal/graph and internal/dem for the established style), so a stack
// trace from a production service immediately names the subsystem that
// gave up. Non-literal panic arguments (rethrown values, error variables)
// are out of scope.
type panicMessage struct{}

func (panicMessage) Name() string { return "panic-message" }
func (panicMessage) Doc() string {
	return `literal panic messages in internal packages must start with the "<pkg>: " prefix`
}

func (panicMessage) Check(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if !strings.Contains(p.ImportPath, "internal/") {
		return
	}
	prefix := p.Pkg.Name() + ": "
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if obj, ok := p.Info.Uses[id]; !ok || obj != types.Universe.Lookup("panic") {
				return true
			}
			msg, ok := literalMessage(p, call.Args[0])
			if ok && !strings.HasPrefix(msg, prefix) {
				report(call.Args[0].Pos(), "panic message %q lacks the %q prefix", truncate(msg, 40), prefix)
			}
			return true
		})
	}
}

// literalMessage extracts the static text of a panic argument: a string
// literal, or the format literal of a fmt.Sprintf call.
func literalMessage(p *Package, arg ast.Expr) (string, bool) {
	switch e := arg.(type) {
	case *ast.BasicLit:
		if e.Kind != token.STRING {
			return "", false
		}
		s, err := strconv.Unquote(e.Value)
		return s, err == nil
	case *ast.CallExpr:
		if isPkgFunc(p, e.Fun, "fmt", "Sprintf") && len(e.Args) > 0 {
			return literalMessage(p, e.Args[0])
		}
	}
	return "", false
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// objstoreWrite forbids direct writes into a shared object table outside
// internal/objstore. Epoch.Table (package objstore) and TerrainDB.Objects
// (package core) hand out the epoch's object slice itself, not a copy —
// that is what makes the quiesced read path bit-identical to the static
// one — so the slice is shared by every session pinning that epoch and by
// the epochs that inherit it across copy-on-write publishes. A write like
//
//	db.Objects()[0].Point = p
//	e.Table()[i] = o
//
// mutates an immutable snapshot under concurrent readers: a data race
// -race only catches when a reader happens to overlap, and a corruption
// of epochs that share the base table even when it does not. The
// sanctioned write path is objstore.Store (Insert/Upsert/Delete), which
// publishes a new epoch. Package objstore itself is exempt — building the
// tables is its job.
//
// The rule flags assignments and ++/-- whose target indexes directly into
// a Table()/Objects() call result (including through field selectors).
// Writes to a copied slice are untouched: copy first, then mutate.
type objstoreWrite struct{}

func (objstoreWrite) Name() string { return "objstore-write" }
func (objstoreWrite) Doc() string {
	return "direct write into a shared object table (Epoch.Table / TerrainDB.Objects); publish updates through objstore.Store or copy the slice first"
}

func (objstoreWrite) Check(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if p.Pkg != nil && p.Pkg.Name() == "objstore" {
		return // the store owns its tables
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					checkTableWrite(p, lhs, report)
				}
			case *ast.IncDecStmt:
				checkTableWrite(p, st.X, report)
			}
			return true
		})
	}
}

// checkTableWrite reports e when it is a write target reaching storage of
// a Table()/Objects() call result: an index into the call, possibly
// through further field selectors or dereferences.
func checkTableWrite(p *Package, e ast.Expr, report func(pos token.Pos, format string, args ...any)) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			if name := tableCallName(p, x.X); name != "" {
				report(e.Pos(),
					"write into the shared object table returned by %s(); it is an immutable epoch snapshot — copy it or publish through objstore.Store", name)
				return
			}
			e = x.X
		default:
			return
		}
	}
}

// tableCallName reports the method name when e is a call to Epoch.Table or
// TerrainDB.Objects (methods named Table/Objects declared in a package
// named objstore or core); "" otherwise.
func tableCallName(p *Package, e ast.Expr) string {
	for {
		if paren, ok := e.(*ast.ParenExpr); ok {
			e = paren.X
			continue
		}
		break
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return ""
	}
	fun := call.Fun
	for {
		if paren, ok := fun.(*ast.ParenExpr); ok {
			fun = paren.X
			continue
		}
		break
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return ""
	}
	obj := s.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	name := obj.Name()
	if name != "Table" && name != "Objects" {
		return ""
	}
	switch obj.Pkg().Name() {
	case "objstore", "core":
		return name
	}
	return ""
}

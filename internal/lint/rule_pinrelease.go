package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// pinRelease proves resource pairing: every objstore.Store.Pin,
// TerrainDB.AcquireSession and BufferPool.Get/Alloc must reach its
// matching Release/Unpin on every path out of the acquiring function —
// early returns and explicit panics included. An unreleased epoch pin
// blocks reclamation forever (LiveEpochs grows without bound under
// updates); an unreleased buffer-pool frame is never evictable and walks
// the pool toward ErrPoolExhausted.
//
// The analysis is intra-procedural over a path-sensitive walk of the
// function body: acquired values are tracked per local variable, branches
// are analyzed independently and merged pessimistically (held on any
// surviving path = held), and ownership transfers end tracking — storing
// the value in a field or slice, passing it to another call, returning
// it, or capturing it in a closure all hand responsibility elsewhere
// (cross-function pairing is the callee's obligation, checked when that
// callee is analyzed).
//
// Two findings:
//
//   - a path (return, panic, or function end) reached while a resource is
//     held with no deferred release — the leak the rule exists for;
//   - a resource held without a deferred release across a call through a
//     function value (a callback parameter, a stored func field): the
//     analyzer cannot see that code, and if it panics the resource leaks
//     past every recover above. Releasing via defer is the only
//     panic-safe pairing.
//
// Limitations, accepted for simplicity: break/continue paths are not
// tracked out of loops, and a release under a condition the analyzer
// cannot correlate with the acquire may need a //lint:ignore with the
// invariant spelled out.
type pinRelease struct{}

func (pinRelease) Name() string { return "pin-release" }
func (pinRelease) Doc() string {
	return "acquired epochs/sessions/frames must be released on all paths; defer for panic safety"
}

// resourceSpec describes one acquire/release pairing. Matching is by
// receiver type name + method name rather than import path, so the
// testdata fixture can model the protocol with local types; within this
// module the names are unambiguous.
type resourceSpec struct {
	name       string // diagnostic label
	recvType   string // named type declaring the acquire method
	acquire    string // acquire method name
	resultType string // named type of the acquired value
	release    string // release method name
	// onResult: the release is a method on the acquired value
	// (Epoch.Release). Otherwise it is a method on the acquiring
	// receiver's type taking the value as an argument
	// (TerrainDB.Release(sess), BufferPool.Unpin(fr, dirty)).
	onResult bool
}

var resourceSpecs = []resourceSpec{
	{name: "epoch pin", recvType: "Store", acquire: "Pin", resultType: "Epoch", release: "Release", onResult: true},
	{name: "pooled session", recvType: "TerrainDB", acquire: "AcquireSession", resultType: "Session", release: "Release"},
	{name: "buffer-pool frame", recvType: "BufferPool", acquire: "Get", resultType: "Frame", release: "Unpin"},
	{name: "buffer-pool frame", recvType: "BufferPool", acquire: "Alloc", resultType: "Frame", release: "Unpin"},
}

func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// methodCallee resolves a call to a concrete method and its receiver type
// name; ok is false for anything else.
func methodCallee(p *Package, call *ast.CallExpr) (fn *types.Func, recvType string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	fn, isFn := p.Info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return nil, "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return nil, "", false
	}
	return fn, namedTypeName(sig.Recv().Type()), true
}

// acquireSpec matches a call against the acquire table.
func acquireSpec(p *Package, call *ast.CallExpr) (*resourceSpec, bool) {
	fn, recv, ok := methodCallee(p, call)
	if !ok {
		return nil, false
	}
	for i := range resourceSpecs {
		s := &resourceSpecs[i]
		if fn.Name() == s.acquire && recv == s.recvType {
			return s, true
		}
	}
	return nil, false
}

// collectResourceOps exports the phase-1 acquire/release summary for one
// function (the -facts view; the path analysis below re-walks the body
// with full context).
func collectResourceOps(p *Package, fd *ast.FuncDecl) []ResourceOp {
	var ops []ResourceOp
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if spec, ok := acquireSpec(p, call); ok {
			ops = append(ops, ResourceOp{Pos: call.Pos(), Resource: spec.name, Acquire: true})
			return true
		}
		if fn, recv, ok := methodCallee(p, call); ok {
			for i := range resourceSpecs {
				s := &resourceSpecs[i]
				target := s.recvType
				if s.onResult {
					target = s.resultType
				}
				if fn.Name() == s.release && recv == target {
					ops = append(ops, ResourceOp{Pos: call.Pos(), Resource: s.name, Acquire: false})
					break
				}
			}
		}
		return true
	})
	return ops
}

func (pinRelease) CheckModule(m *Module, report func(p *Package, pos token.Pos, key, format string, args ...any)) {
	for _, ff := range m.SortedFuncs() {
		acquires := false
		for _, op := range ff.Resources {
			if op.Acquire {
				acquires = true
				break
			}
		}
		if !acquires {
			continue
		}
		a := &prAnalyzer{
			p: ff.Pkg,
			report: func(pos token.Pos, format string, args ...any) {
				report(ff.Pkg, pos, "", format, args...)
			},
		}
		st := newPRState()
		terminated := a.stmts(ff.Decl.Body.List, st)
		if !terminated {
			a.leakCheck(st, ff.Decl.Body.End(), "function end")
		}
	}
}

// heldRes is one tracked acquired resource.
type heldRes struct {
	spec     *resourceSpec
	pos      token.Pos  // acquire site
	errVar   *types.Var // err of `v, err := acquire()`: nothing is held where err != nil
	deferred bool       // a deferred release covers it on every exit
	reported bool       // leak already reported (dedupe across paths)
}

// prState is the abstract state of the path walk: which locals hold an
// unreleased resource. heldRes values are shared across branch clones so
// dedup and defer marks propagate; the maps themselves are per-path.
type prState struct {
	held map[*types.Var]*heldRes
}

func newPRState() *prState { return &prState{held: make(map[*types.Var]*heldRes)} }

func (st *prState) clone() *prState {
	c := newPRState()
	for v, h := range st.held {
		c.held[v] = h
	}
	return c
}

// merge unions the surviving branch states pessimistically: a resource
// held on any path is held.
func mergeStates(states ...*prState) *prState {
	out := newPRState()
	for _, st := range states {
		if st == nil {
			continue
		}
		for v, h := range st.held {
			out.held[v] = h
		}
	}
	return out
}

type prAnalyzer struct {
	p      *Package
	report func(pos token.Pos, format string, args ...any)
}

func (a *prAnalyzer) localVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj, ok := a.p.Info.Defs[id].(*types.Var); ok {
		return obj
	}
	if obj, ok := a.p.Info.Uses[id].(*types.Var); ok {
		return obj
	}
	return nil
}

// leakCheck reports every held, undeferred resource at a path exit.
func (a *prAnalyzer) leakCheck(st *prState, exit token.Pos, how string) {
	for _, h := range st.held {
		if h.deferred || h.reported {
			continue
		}
		h.reported = true
		exitPos := a.p.Fset.Position(exit)
		a.report(h.pos, "%s acquired here is not released on every path (%s at line %d); call %s or defer it",
			h.spec.name, how, exitPos.Line, h.spec.release)
	}
}

// stmts walks a statement list, returning true when every path through it
// terminates (return/panic) — the caller then discards the state.
func (a *prAnalyzer) stmts(list []ast.Stmt, st *prState) bool {
	for _, s := range list {
		if a.stmt(s, st) {
			return true
		}
	}
	return false
}

func (a *prAnalyzer) stmt(s ast.Stmt, st *prState) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		a.assign(s, st)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if a.isPanicCall(call) {
				a.exprs(call.Args, st)
				a.leakCheck(st, s.Pos(), "panic")
				return true
			}
		}
		a.expr(s.X, st)
	case *ast.DeferStmt:
		a.deferStmt(s, st)
	case *ast.GoStmt:
		// The spawned goroutine escapes everything it captures.
		a.expr(s.Call.Fun, st)
		a.exprs(s.Call.Args, st)
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			if v := a.localVar(res); v != nil {
				delete(st.held, v) // ownership transferred to the caller
				continue
			}
			a.expr(res, st)
		}
		a.leakCheck(st, s.Pos(), "return")
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			a.stmt(s.Init, st)
		}
		a.expr(s.Cond, st)
		thenSt := st.clone()
		elseSt := st.clone()
		// `v, err := acquire(); if err != nil { ... }`: on the failure
		// branch the acquire returned nothing, so no resource is held
		// there (and symmetrically for `err == nil`).
		if condVar, nonNilBranch := a.nilCheckVar(s.Cond); condVar != nil {
			failSt := thenSt
			if !nonNilBranch {
				failSt = elseSt
			}
			for hv, h := range failSt.held {
				if h.errVar == condVar {
					delete(failSt.held, hv)
				}
			}
		}
		thenDone := a.stmts(s.Body.List, thenSt)
		elseDone := false
		if s.Else != nil {
			elseDone = a.stmt(s.Else, elseSt)
		}
		switch {
		case thenDone && elseDone:
			return true
		case thenDone:
			*st = *elseSt
		case elseDone:
			*st = *thenSt
		default:
			*st = *mergeStates(thenSt, elseSt)
		}
	case *ast.BlockStmt:
		return a.stmts(s.List, st)
	case *ast.ForStmt:
		if s.Init != nil {
			a.stmt(s.Init, st)
		}
		if s.Cond != nil {
			a.expr(s.Cond, st)
		}
		a.loopBody(s.Body, st)
		if s.Post != nil {
			a.stmt(s.Post, st)
		}
	case *ast.RangeStmt:
		a.expr(s.X, st)
		a.loopBody(s.Body, st)
	case *ast.SwitchStmt:
		if s.Init != nil {
			a.stmt(s.Init, st)
		}
		if s.Tag != nil {
			a.expr(s.Tag, st)
		}
		a.caseClauses(s.Body, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			a.stmt(s.Init, st)
		}
		a.caseClauses(s.Body, st)
	case *ast.SelectStmt:
		a.commClauses(s.Body, st)
	case *ast.LabeledStmt:
		return a.stmt(s.Stmt, st)
	case *ast.BranchStmt:
		// break/continue/goto leave this block without leaving the
		// function; held resources flow to code the walk does not model.
		// Treat the path as ended here (documented limitation).
		return true
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.EmptyStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				a.expr(e, st)
				return false
			}
			return true
		})
	}
	return false
}

// loopBody analyzes a loop body once and merges with the zero-iteration
// state. A resource acquired inside the body must be released (or
// deferred) by the end of the iteration — the next iteration acquires a
// fresh one and the previous would be lost.
func (a *prAnalyzer) loopBody(body *ast.BlockStmt, st *prState) {
	bodySt := st.clone()
	pre := make(map[*types.Var]bool, len(st.held))
	for v := range st.held {
		pre[v] = true
	}
	terminated := a.stmts(body.List, bodySt)
	if !terminated {
		for v, h := range bodySt.held {
			if pre[v] || h.deferred || h.reported {
				continue
			}
			h.reported = true
			a.report(h.pos, "%s acquired inside the loop body is still held at the end of the iteration; release it before looping",
				h.spec.name)
		}
		*st = *mergeStates(st, bodySt)
	}
}

func (a *prAnalyzer) caseClauses(body *ast.BlockStmt, st *prState) {
	var surviving []*prState
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		caseSt := st.clone()
		a.exprs(cc.List, caseSt)
		if !a.stmts(cc.Body, caseSt) {
			surviving = append(surviving, caseSt)
		}
	}
	if !hasDefault {
		surviving = append(surviving, st.clone())
	}
	*st = *mergeStates(surviving...)
}

func (a *prAnalyzer) commClauses(body *ast.BlockStmt, st *prState) {
	var surviving []*prState
	for _, c := range body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		caseSt := st.clone()
		if cc.Comm != nil {
			a.stmt(cc.Comm, caseSt)
		}
		if !a.stmts(cc.Body, caseSt) {
			surviving = append(surviving, caseSt)
		}
	}
	*st = *mergeStates(surviving...)
}

// assign handles acquires (tracking the assigned local) and escapes
// (anything else the tracked value is stored into).
func (a *prAnalyzer) assign(s *ast.AssignStmt, st *prState) {
	// Single-call RHS: an acquire starts tracking its destination.
	if len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			if spec, ok := acquireSpec(a.p, call); ok {
				a.expr(call.Fun, st)
				a.exprs(call.Args, st)
				dst := s.Lhs[0]
				if id, isIdent := ast.Unparen(dst).(*ast.Ident); isIdent {
					if id.Name == "_" {
						a.report(call.Pos(), "%s acquired but discarded; it can never be released", spec.name)
						return
					}
					if v := a.localVar(id); v != nil {
						h := &heldRes{spec: spec, pos: call.Pos()}
						if len(s.Lhs) == 2 {
							if ev := a.localVar(s.Lhs[1]); ev != nil && isErrorType(ev.Type()) {
								h.errVar = ev
							}
						}
						st.held[v] = h
						// Remaining LHS (e.g. the err of Get) are plain writes.
						for _, l := range s.Lhs[1:] {
							a.lhs(l, st)
						}
						return
					}
				}
				// Assigned into a field/index: ownership is transferred to
				// that structure (e.g. Session.view keeps its pin across
				// the query and releases it in endQuery).
				for _, l := range s.Lhs {
					a.lhs(l, st)
				}
				return
			}
		}
	}
	for _, r := range s.Rhs {
		a.expr(r, st)
	}
	for _, l := range s.Lhs {
		a.lhs(l, st)
	}
}

// lhs processes an assignment destination: writing *over* a tracked var
// ends its tracking (the value is gone; if it was still held that is a
// leak the walk can no longer see — rare enough to accept); destinations
// that merely contain expressions are scanned.
func (a *prAnalyzer) lhs(e ast.Expr, st *prState) {
	if v := a.localVar(e); v != nil {
		delete(st.held, v)
		return
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name == "_" {
		return
	}
	a.expr(e, st)
}

func (a *prAnalyzer) deferStmt(s *ast.DeferStmt, st *prState) {
	// defer v.Release() / defer pool.Unpin(fr, d): the matching release is
	// registered for every exit, panics included.
	if v, ok := a.releaseTarget(s.Call, st); ok {
		if h := st.held[v]; h != nil {
			h.deferred = true
		}
		return
	}
	// defer func() { ... }(): a closure releasing a tracked var covers it;
	// any other captured tracked var escapes into the closure.
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		covered := map[*types.Var]bool{}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if v, ok := a.releaseTarget(call, st); ok {
				covered[v] = true
			}
			return true
		})
		for v := range covered {
			if h := st.held[v]; h != nil {
				h.deferred = true
			}
		}
		a.closureEscapes(lit, st, covered)
		return
	}
	// Some other deferred call: its arguments escape.
	a.expr(s.Call.Fun, st)
	a.exprs(s.Call.Args, st)
}

// releaseTarget reports whether call releases a tracked variable,
// returning that variable.
func (a *prAnalyzer) releaseTarget(call *ast.CallExpr, st *prState) (*types.Var, bool) {
	fn, recv, ok := methodCallee(a.p, call)
	if !ok {
		return nil, false
	}
	sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	for i := range resourceSpecs {
		s := &resourceSpecs[i]
		if fn.Name() != s.release {
			continue
		}
		if s.onResult {
			if recv != s.resultType {
				continue
			}
			if v := a.localVar(sel.X); v != nil {
				if h := st.held[v]; h != nil && h.spec.name == s.name {
					return v, true
				}
			}
			continue
		}
		if recv != s.recvType {
			continue
		}
		for _, arg := range call.Args {
			if v := a.localVar(arg); v != nil {
				if h := st.held[v]; h != nil && h.spec.name == s.name {
					return v, true
				}
			}
		}
	}
	return nil, false
}

// nilCheckVar decodes a `v != nil` / `nil != v` condition (nonNil=true)
// or `v == nil` / `nil == v` (nonNil=false); v is nil for anything else.
func (a *prAnalyzer) nilCheckVar(cond ast.Expr) (v *types.Var, nonNil bool) {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.NEQ && bin.Op != token.EQL) {
		return nil, false
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		_, isNilObj := a.p.Info.Uses[id].(*types.Nil)
		return isNilObj
	}
	switch {
	case isNil(bin.Y):
		v = a.localVar(bin.X)
	case isNil(bin.X):
		v = a.localVar(bin.Y)
	}
	return v, bin.Op == token.NEQ
}

func (a *prAnalyzer) isPanicCall(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := a.p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// dynamicCall reports a call whose target is a function value — code the
// analyzer cannot see, and the panic hazard the defer finding warns
// about. Interface-method dispatch is deliberately not included: within
// this module those targets are implementation methods with their own
// analysis, and flagging every ctx.Err() would drown the signal.
func (a *prAnalyzer) dynamicCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		_, isVar := a.p.Info.Uses[fun].(*types.Var)
		return isVar
	case *ast.SelectorExpr:
		_, isVar := a.p.Info.Uses[fun.Sel].(*types.Var)
		return isVar
	}
	return false
}

func (a *prAnalyzer) exprs(list []ast.Expr, st *prState) {
	for _, e := range list {
		a.expr(e, st)
	}
}

// expr scans an expression for releases, escapes and panic-unsafe
// dynamic calls.
func (a *prAnalyzer) expr(e ast.Expr, st *prState) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		a.call(e, st)
	case *ast.Ident:
		// A bare use outside the allowed contexts hands the value to code
		// the walk cannot follow: stop tracking, report nothing.
		if v := a.localVar(e); v != nil {
			delete(st.held, v)
		}
	case *ast.SelectorExpr:
		// v.Field reads do not move ownership.
		if a.localVar(e.X) != nil {
			return
		}
		a.expr(e.X, st)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if v := a.localVar(e.X); v != nil {
				delete(st.held, v) // address escapes
				return
			}
		}
		a.expr(e.X, st)
	case *ast.BinaryExpr:
		a.expr(e.X, st)
		a.expr(e.Y, st)
	case *ast.ParenExpr:
		a.expr(e.X, st)
	case *ast.StarExpr:
		a.expr(e.X, st)
	case *ast.IndexExpr:
		a.expr(e.X, st)
		a.expr(e.Index, st)
	case *ast.SliceExpr:
		a.expr(e.X, st)
		a.expr(e.Low, st)
		a.expr(e.High, st)
		a.expr(e.Max, st)
	case *ast.TypeAssertExpr:
		a.expr(e.X, st)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			a.expr(el, st)
		}
	case *ast.KeyValueExpr:
		a.expr(e.Value, st)
	case *ast.FuncLit:
		a.closureEscapes(e, st, nil)
	}
}

// call handles one call expression: release consumption, untracked
// acquires, panic-hazard dynamic calls, and argument escapes.
func (a *prAnalyzer) call(call *ast.CallExpr, st *prState) {
	if v, ok := a.releaseTarget(call, st); ok {
		delete(st.held, v)
		// Scan the remaining arguments (dirty flags etc.), skipping the
		// released variable itself.
		for _, arg := range call.Args {
			if a.localVar(arg) == v {
				continue
			}
			a.expr(arg, st)
		}
		return
	}
	if spec, ok := acquireSpec(a.p, call); ok {
		// Acquire whose result is not captured by an assignment.
		a.report(call.Pos(), "result of %s.%s (%s) is not captured; it can never be released",
			spec.recvType, spec.acquire, spec.name)
	}
	if a.dynamicCall(call) {
		for _, h := range st.held {
			if h.deferred || h.reported {
				continue
			}
			h.reported = true
			a.report(h.pos, "%s acquired here is held across a call through a function value at line %d; a panic there leaks it — release with defer",
				h.spec.name, a.p.Fset.Position(call.Pos()).Line)
		}
	}
	// Receiver position keeps ownership (v.Table(), sess.MR3Ctx(...)).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if a.localVar(sel.X) == nil {
			a.expr(sel.X, st)
		}
	} else {
		a.expr(call.Fun, st)
	}
	a.exprs(call.Args, st)
}

// closureEscapes untracks every held variable a closure captures (except
// those in keep): the closure may run at any time, or never.
func (a *prAnalyzer) closureEscapes(lit *ast.FuncLit, st *prState, keep map[*types.Var]bool) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := a.p.Info.Uses[id].(*types.Var); ok && !keep[v] {
			delete(st.held, v)
		}
		return true
	})
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// loopGoroutineCapture flags goroutines launched inside a loop whose
// function literal captures the loop variable instead of receiving it as
// an argument. Under Go <= 1.21 semantics this is a data race (all
// iterations share one variable); the module currently declares go 1.22,
// where each iteration gets a fresh variable, but the pattern still hides
// the goroutine's data dependency and breaks the moment the code is
// vendored into an older module. Pass the variable explicitly.
type loopGoroutineCapture struct{}

func (loopGoroutineCapture) Name() string { return "loop-goroutine-capture" }
func (loopGoroutineCapture) Doc() string {
	return "goroutine in a loop captures the loop variable; pass it as an argument"
}

func (loopGoroutineCapture) Check(p *Package, report func(pos token.Pos, format string, args ...any)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var vars map[types.Object]string
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.RangeStmt:
				if loop.Tok != token.DEFINE {
					return true
				}
				vars = loopVarObjects(p, loop.Key, loop.Value)
				body = loop.Body
			case *ast.ForStmt:
				init, ok := loop.Init.(*ast.AssignStmt)
				if !ok || init.Tok != token.DEFINE {
					return true
				}
				vars = loopVarObjects(p, init.Lhs...)
				body = loop.Body
			default:
				return true
			}
			if len(vars) == 0 {
				return true
			}
			ast.Inspect(body, func(m ast.Node) bool {
				gs, ok := m.(*ast.GoStmt)
				if !ok {
					return true
				}
				lit, ok := gs.Call.Fun.(*ast.FuncLit)
				if !ok {
					return true
				}
				ast.Inspect(lit.Body, func(b ast.Node) bool {
					id, ok := b.(*ast.Ident)
					if !ok {
						return true
					}
					if name, captured := vars[p.Info.Uses[id]]; captured {
						report(id.Pos(), "goroutine captures loop variable %q; pass it as an argument instead", name)
					}
					return true
				})
				return true
			})
			return true
		})
	}
}

func loopVarObjects(p *Package, exprs ...ast.Expr) map[types.Object]string {
	vars := make(map[types.Object]string)
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := p.Info.Defs[id]; obj != nil {
			vars[obj] = id.Name
		}
	}
	return vars
}

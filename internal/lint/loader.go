package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Loader turns package patterns into type-checked Packages. One Loader
// shares a FileSet and a source importer across all targets so dependency
// packages are type-checked once and cached.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset: fset,
		// The "source" importer type-checks dependencies from source; it is
		// the only stdlib importer that resolves module-local packages.
		imp: importer.ForCompiler(fset, "source", nil),
	}
}

// Load resolves patterns ("./...", "dir/...", or plain directories)
// relative to root and returns the matched packages. Directories named
// testdata or vendor and hidden directories are skipped, mirroring the go
// tool's pattern expansion.
func (l *Loader) Load(root string, patterns ...string) ([]*Package, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		p, err := l.loadDir(root, modPath, dir)
		if err != nil {
			return nil, err
		}
		if p != nil {
			pkgs = append(pkgs, p)
		}
	}
	return pkgs, nil
}

// LoadDir type-checks a single directory as a package, regardless of
// pattern rules — used by tests to load fixture packages under testdata.
func (l *Loader) LoadDir(root, dir string) (*Package, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	p, err := l.loadDir(root, modPath, dir)
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	return p, nil
}

func (l *Loader) loadDir(root, modPath, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: reading %s: %w", dir, err)
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if !fileNameIncluded(name) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if !buildConstraintsSatisfied(f) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	importPath := modPath
	if rel, err := filepath.Rel(root, dir); err == nil && rel != "." {
		importPath = modPath + "/" + filepath.ToSlash(rel)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	p := &Package{Dir: dir, ImportPath: importPath, Fset: l.fset, Files: files, Info: info}
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	// Check returns the (possibly partial) package even on error; the
	// conf.Error hook above has already collected every detail into
	// p.TypeErrors, which Run surfaces as diagnostics.
	//lint:ignore dropped-error type errors are captured via conf.Error and reported as typecheck diagnostics
	p.Pkg, _ = conf.Check(importPath, l.fset, files, info)
	return p, nil
}

// knownOS and knownArch drive the go tool's implicit filename constraints
// (x_linux.go builds only on linux); the loader honours the same rule so a
// build-tag-partitioned package type-checks as one coherent file set
// instead of tripping over duplicate platform-specific declarations.
var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mipsle": true, "mips64": true,
	"mips64le": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// fileNameIncluded applies the _GOOS / _GOARCH / _GOOS_GOARCH filename
// convention against the host platform.
func fileNameIncluded(name string) bool {
	base := strings.TrimSuffix(name, ".go")
	parts := strings.Split(base, "_")
	// Trailing _GOARCH, possibly preceded by _GOOS. The first segment is
	// never a constraint (the go tool ignores a leading "linux_foo.go").
	if len(parts) > 1 && knownArch[parts[len(parts)-1]] {
		if parts[len(parts)-1] != runtime.GOARCH {
			return false
		}
		parts = parts[:len(parts)-1]
	}
	if len(parts) > 1 && knownOS[parts[len(parts)-1]] {
		return parts[len(parts)-1] == runtime.GOOS
	}
	return true
}

// buildConstraintsSatisfied evaluates the file's //go:build (or legacy
// // +build) constraint against the host platform tag set. A file whose
// constraint is false is excluded exactly as `go build` would exclude it
// — type-checking it alongside the selected variant would report phantom
// duplicate declarations.
func buildConstraintsSatisfied(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break // constraints must precede the package clause
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) && !constraint.IsPlusBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue // malformed constraint: include, let the type checker complain
			}
			return expr.Eval(buildTagSatisfied)
		}
	}
	return true
}

func buildTagSatisfied(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	case "unix":
		switch runtime.GOOS {
		case "aix", "android", "darwin", "dragonfly", "freebsd", "illumos",
			"ios", "linux", "netbsd", "openbsd", "solaris":
			return true
		}
		return false
	}
	// Release tags: the analyzer always runs on a current toolchain, so
	// every go1.N gate the module could legally use is satisfied.
	return strings.HasPrefix(tag, "go1.")
}

func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

func expandPatterns(root string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" {
				pat = "."
			}
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(root, dir)
		}
		if !recursive {
			add(dir)
			continue
		}
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
	}
	// Keep only directories that actually contain non-test Go files.
	var out []string
	for _, dir := range dirs {
		ents, err := os.ReadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				out = append(out, dir)
				break
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// ignoreDirective is one parsed `//lint:ignore <rules> <reason>` comment,
// where <rules> is a single rule name, a comma-separated list
// (`pin-release,hotpath-alloc`), or `*` for any rule. The reason is
// mandatory: a suppression without a recorded justification is itself a
// finding.
type ignoreDirective struct {
	rules  []string // rule names, or ["*"] for any rule
	reason string
}

func (d ignoreDirective) matches(rule string) bool {
	for _, r := range d.rules {
		if r == "*" || r == rule {
			return true
		}
	}
	return false
}

// ignoreSet maps file:line to the directives that apply there.
type ignoreSet map[string]map[int][]ignoreDirective

const ignorePrefix = "//lint:ignore"

// directiveRule is the rule name under which malformed or unknown-rule
// ignore directives are reported. An ignore directive naming a rule that
// does not exist is silently inert — it suppresses nothing while its
// author believes something is suppressed — so it must be a finding, not
// a no-op.
const directiveRule = "lint-directive"

// collectIgnores scans the package's comments for ignore directives. A
// directive suppresses matching diagnostics on its own line (trailing
// comment) and on the line directly below it (comment-above style).
// known is the full rule registry (plus built-ins); a directive naming an
// unknown rule is reported as a lint-directive diagnostic and records
// only its known names, so a typo never silently disarms a suppression of
// a different rule on the same line.
func collectIgnores(p *Package, known map[string]bool) (ignoreSet, []Diagnostic) {
	set := make(ignoreSet)
	var bad []Diagnostic
	report := func(pos token.Position, msg string) {
		bad = append(bad, Diagnostic{Pos: pos, Rule: directiveRule, Message: msg})
	}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				rest, ok := strings.CutPrefix(text, ignorePrefix)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					// Missing rule or reason: record nothing, so the
					// diagnostic it meant to silence still fires — the
					// safest failure mode for a suppression mechanism —
					// and surface the malformed directive itself.
					report(pos, "malformed //lint:ignore: want `//lint:ignore <rule>[,<rule>...] <reason>`")
					continue
				}
				var rules []string
				for _, name := range strings.Split(fields[0], ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					if !known[name] {
						report(pos, fmt.Sprintf("//lint:ignore names unknown rule %q (see sklint -rules); the suppression is inert", name))
						continue
					}
					rules = append(rules, name)
				}
				if len(rules) == 0 {
					continue
				}
				d := ignoreDirective{rules: rules, reason: strings.Join(fields[1:], " ")}
				byLine := set[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]ignoreDirective)
					set[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], d)
			}
		}
	}
	return set, bad
}

// match reports whether a diagnostic for rule at position is suppressed.
func (s ignoreSet) match(pos token.Position, rule string) bool {
	byLine := s[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range byLine[line] {
			if d.matches(rule) {
				return true
			}
		}
	}
	return false
}

package lint

import (
	"go/token"
	"strings"
)

// ignoreDirective is one parsed `//lint:ignore <rule> <reason>` comment.
// The reason is mandatory: a suppression without a recorded justification
// is itself a finding.
type ignoreDirective struct {
	rule   string // rule name, or "*" for any rule
	reason string
}

// ignoreSet maps file:line to the directives that apply there.
type ignoreSet map[string]map[int][]ignoreDirective

const ignorePrefix = "//lint:ignore"

// collectIgnores scans the package's comments for ignore directives. A
// directive suppresses matching diagnostics on its own line (trailing
// comment) and on the line directly below it (comment-above style).
func collectIgnores(p *Package) ignoreSet {
	set := make(ignoreSet)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				rest, ok := strings.CutPrefix(text, ignorePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					// Malformed (missing rule or reason): record nothing, so
					// the diagnostic it meant to silence still fires — the
					// safest failure mode for a suppression mechanism.
					continue
				}
				pos := p.Fset.Position(c.Pos())
				d := ignoreDirective{rule: fields[0], reason: strings.Join(fields[1:], " ")}
				byLine := set[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]ignoreDirective)
					set[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], d)
			}
		}
	}
	return set
}

// match reports whether a diagnostic for rule at position is suppressed.
func (s ignoreSet) match(pos token.Position, rule string) bool {
	byLine := s[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range byLine[line] {
			if d.rule == "*" || d.rule == rule {
				return true
			}
		}
	}
	return false
}

// Package lint implements sklint, the repo-specific static analyzer.
//
// MR3's pruning correctness rests on invariants the Go type system cannot
// express: surface-distance lower bounds must only grow and upper bounds
// only shrink across LOD refinement, and any silently swallowed error from
// a distance or fetch computation can turn a bound into garbage without a
// test noticing. sklint encodes the coding conventions that protect those
// invariants as machine-checked rules, run over the whole module by
// scripts/check.sh and CI.
//
// The framework is stdlib-only (go/parser + go/types with the "source"
// importer) per the repo charter. Rules implement the Rule interface and
// are registered in rules.go; diagnostics are position-keyed and can be
// suppressed with a `//lint:ignore <rule> <reason>` comment on the same
// line or the line directly above the offending code.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding, keyed to a source position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Package is one loaded, type-checked package ready for analysis. Test
// files (_test.go) are excluded: the rules target library code, and test
// packages would drag external-test shadow packages into type checking.
type Package struct {
	Dir        string
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	// TypeErrors holds type-checker complaints. The gate runs go build
	// first, so these normally indicate a loader problem rather than bad
	// code; they are surfaced as "typecheck" diagnostics.
	TypeErrors []error
}

// Rule is one analysis pass over a type-checked package.
type Rule interface {
	// Name is the short kebab-case identifier used in output and in
	// //lint:ignore directives.
	Name() string
	// Doc is a one-line description shown by `sklint -rules`.
	Doc() string
	// Check inspects the package and reports findings.
	Check(p *Package, report func(pos token.Pos, format string, args ...any))
}

// Run applies every rule to every package and returns the surviving
// diagnostics (ignore directives applied), sorted by position.
func Run(pkgs []*Package, rules []Rule) []Diagnostic {
	var diags []Diagnostic
	for _, p := range pkgs {
		ignores := collectIgnores(p)
		for _, err := range p.TypeErrors {
			diags = append(diags, Diagnostic{
				Pos:     typeErrorPos(p.Fset, err),
				Rule:    "typecheck",
				Message: err.Error(),
			})
		}
		for _, r := range rules {
			rule := r
			report := func(pos token.Pos, format string, args ...any) {
				position := p.Fset.Position(pos)
				if ignores.match(position, rule.Name()) {
					return
				}
				diags = append(diags, Diagnostic{
					Pos:     position,
					Rule:    rule.Name(),
					Message: fmt.Sprintf(format, args...),
				})
			}
			rule.Check(p, report)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Rule < diags[j].Rule
	})
	return diags
}

func typeErrorPos(fset *token.FileSet, err error) token.Position {
	if te, ok := err.(types.Error); ok {
		return te.Fset.Position(te.Pos)
	}
	return token.Position{}
}

// errorIface is the method set of the universe error type, used by rules
// to recognise error-typed values (including concrete error
// implementations, not just the interface itself).
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface)
}

func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// Package lint implements sklint, the repo-specific static analyzer.
//
// MR3's pruning correctness rests on invariants the Go type system cannot
// express: surface-distance lower bounds must only grow and upper bounds
// only shrink across LOD refinement, every pinned object epoch and pooled
// session must be released on every path, and any silently swallowed error
// from a distance or fetch computation can turn a bound into garbage
// without a test noticing. sklint encodes the coding conventions that
// protect those invariants as machine-checked rules, run over the whole
// module by scripts/check.sh and CI.
//
// Analysis runs in two phases. Phase 1 loads and type-checks every package
// and exports per-function facts — may-allocate, accepts-context,
// acquires/releases which pooled resource — keyed by types.Object, plus a
// module-wide call graph resolved through the loader's package set (see
// facts.go and callgraph.go). Phase 2 runs the rules: PackageRules inspect
// one package at a time with purely local knowledge; ModuleRules consume
// the phase-1 facts and can reason across package boundaries (transitive
// allocation on //sklint:hotpath paths, resource pairing, context flow).
//
// The framework is stdlib-only (go/parser + go/types with the "source"
// importer) per the repo charter. Rules implement PackageRule or
// ModuleRule and are registered in rules.go; diagnostics are
// position-keyed and can be suppressed with a
// `//lint:ignore <rule>[,<rule>...] <reason>` comment on the same line or
// the line directly above the offending code.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding, keyed to a source position. Key, when
// non-empty, is a position-independent identity used by the baseline
// ratchet (currently only hotpath-alloc sets it).
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
	Key     string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Package is one loaded, type-checked package ready for analysis. Test
// files (_test.go) are excluded: the rules target library code, and test
// packages would drag external-test shadow packages into type checking.
type Package struct {
	Dir        string
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	// TypeErrors holds type-checker complaints. The gate runs go build
	// first, so these normally indicate a loader problem rather than bad
	// code; they are surfaced as "typecheck" diagnostics.
	TypeErrors []error
}

// Rule is the common identity of every analysis. Concrete rules implement
// exactly one of PackageRule (phase-2, package-local) or ModuleRule
// (phase-2, fact- and call-graph-driven).
type Rule interface {
	// Name is the short kebab-case identifier used in output and in
	// //lint:ignore directives.
	Name() string
	// Doc is a one-line description shown by `sklint -rules`.
	Doc() string
}

// PackageRule is one analysis pass over a single type-checked package.
type PackageRule interface {
	Rule
	// Check inspects the package and reports findings.
	Check(p *Package, report func(pos token.Pos, format string, args ...any))
}

// ModuleRule is one analysis pass over the whole module: it consumes the
// phase-1 facts and call graph and may relate code across packages. The
// reporter takes the package owning pos (for position resolution and
// ignore matching) and an optional position-independent baseline key
// ("" for rules without baseline support).
type ModuleRule interface {
	Rule
	CheckModule(m *Module, report func(p *Package, pos token.Pos, key, format string, args ...any))
}

// Run applies every rule to the packages and returns the surviving
// diagnostics (ignore directives applied), sorted by position. Module
// rules see all packages at once; the module facts and call graph are
// built exactly once, and only when some enabled rule needs them.
func Run(pkgs []*Package, rules []Rule) []Diagnostic {
	var diags []Diagnostic
	ignores := make(map[*Package]ignoreSet, len(pkgs))
	for _, p := range pkgs {
		set, bad := collectIgnores(p, knownRuleNames())
		ignores[p] = set
		diags = append(diags, bad...)
		for _, err := range p.TypeErrors {
			diags = append(diags, Diagnostic{
				Pos:     typeErrorPos(p, err),
				Rule:    "typecheck",
				Message: err.Error(),
			})
		}
		for _, r := range rules {
			pr, ok := r.(PackageRule)
			if !ok {
				continue
			}
			rule := pr
			report := func(pos token.Pos, format string, args ...any) {
				position := p.Fset.Position(pos)
				if ignores[p].match(position, rule.Name()) {
					return
				}
				diags = append(diags, Diagnostic{
					Pos:     position,
					Rule:    rule.Name(),
					Message: fmt.Sprintf(format, args...),
				})
			}
			rule.Check(p, report)
		}
	}

	var mod *Module
	for _, r := range rules {
		mr, ok := r.(ModuleRule)
		if !ok {
			continue
		}
		if mod == nil {
			mod = BuildModule(pkgs)
		}
		rule := mr
		report := func(p *Package, pos token.Pos, key, format string, args ...any) {
			position := p.Fset.Position(pos)
			if ignores[p].match(position, rule.Name()) {
				return
			}
			diags = append(diags, Diagnostic{
				Pos:     position,
				Rule:    rule.Name(),
				Message: fmt.Sprintf(format, args...),
				Key:     key,
			})
		}
		rule.CheckModule(mod, report)
	}

	SortDiagnostics(diags)
	return diags
}

// SortDiagnostics orders diagnostics by (file, line, column, rule) — the
// stable output order of the analyzer.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Rule < diags[j].Rule
	})
}

// typeErrorPos locates a type-checker error. Non-types.Error values carry
// no position of their own, so they fall back to the package's first file
// — a diagnostic must always name a file, or the CI annotation pointing at
// it is unroutable.
func typeErrorPos(p *Package, err error) token.Position {
	if te, ok := err.(types.Error); ok {
		return te.Fset.Position(te.Pos)
	}
	for _, f := range p.Files {
		if f.Pos().IsValid() {
			return p.Fset.Position(f.Pos())
		}
	}
	return token.Position{Filename: p.Dir}
}

// errorIface is the method set of the universe error type, used by rules
// to recognise error-typed values (including concrete error
// implementations, not just the interface itself).
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface)
}

func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// unwrappedError flags fmt.Errorf calls that embed an error operand
// without the %w verb. Formatting an error with %v flattens it to text:
// callers can no longer use errors.Is / errors.As to react to sentinel
// conditions (storage.ErrCorrupt, dem.ErrBadFormat, ...), which is how the
// I/O layers signal recoverable-vs-fatal failures to the query engine.
type unwrappedError struct{}

func (unwrappedError) Name() string { return "unwrapped-error" }
func (unwrappedError) Doc() string {
	return "fmt.Errorf embeds an error without %w; callers lose errors.Is/errors.As"
}

func (unwrappedError) Check(p *Package, report func(pos token.Pos, format string, args ...any)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPkgFunc(p, call.Fun, "fmt", "Errorf") || len(call.Args) < 2 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil || strings.Contains(format, "%w") {
				return true
			}
			for _, arg := range call.Args[1:] {
				if tv, ok := p.Info.Types[arg]; ok && isErrorType(tv.Type) {
					report(arg.Pos(), "error operand formatted without %%w; wrap it so callers can errors.Is/errors.As")
				}
			}
			return true
		})
	}
}

// isPkgFunc reports whether fun is a selector resolving to pkg.name (by
// package path, so aliased imports are handled).
func isPkgFunc(p *Package, fun ast.Expr, pkgPath, name string) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	obj := p.Info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath
}

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Phase 1 of the analyzer: walk every loaded package once and export
// per-function facts keyed by *types.Func, plus the module-wide call graph
// (callgraph.go). Module rules consume these instead of re-walking ASTs,
// and `sklint -facts` dumps them for debugging. Fact export is
// deterministic: every slice is ordered by source position and every
// iteration that feeds output goes through sorted function IDs, so the
// dump — and therefore the diagnostics derived from it — is independent
// of package load order.

// HotpathDirective marks a function whose steady-state execution must not
// allocate. Written as a `//sklint:hotpath` comment in the function's doc
// group; the property is transitive over the static call graph.
const HotpathDirective = "//sklint:hotpath"

// AllocKind classifies a potential allocation site.
type AllocKind string

const (
	AllocMake        AllocKind = "make"
	AllocNew         AllocKind = "new"
	AllocAppend      AllocKind = "append"
	AllocComposite   AllocKind = "composite-lit"
	AllocClosure     AllocKind = "closure"
	AllocMapWrite    AllocKind = "map-write"
	AllocStringCat   AllocKind = "string-concat"
	AllocConvert     AllocKind = "conversion"
	AllocBox         AllocKind = "iface-box"
	AllocExtCall     AllocKind = "ext-call"
	AllocDynamicCall AllocKind = "dynamic-call"
)

// AllocSite is one potential allocation inside a function body.
type AllocSite struct {
	Pos  token.Pos
	Kind AllocKind
	Desc string // short human label, e.g. "append", "fmt.Errorf"
}

// Call is one call site inside a function body. Callee is the statically
// resolved target when the call names a concrete function or method
// (module-local or external); Dynamic marks calls through function values
// and interface methods, whose target the analyzer cannot pin down
// (Callee still carries the interface method object when known, for
// signature-level reasoning like ctx-flow).
type Call struct {
	Pos     token.Pos
	Expr    *ast.CallExpr
	Callee  *types.Func
	Dynamic bool
}

// ResourceOp is one acquire or release of a pooled resource (an object
// epoch pin, a pooled session, a buffer-pool frame), identified by the
// resource spec table in rule_pinrelease.go.
type ResourceOp struct {
	Pos      token.Pos
	Resource string // spec name, e.g. "objstore-pin"
	Acquire  bool
}

// FuncFacts is the exported phase-1 knowledge about one function.
type FuncFacts struct {
	Fn   *types.Func
	Pkg  *Package
	Decl *ast.FuncDecl

	// Hotpath is set when the declaration carries //sklint:hotpath.
	Hotpath bool
	// CtxParam is the index of the first context.Context parameter in the
	// signature (receiver excluded), or -1.
	CtxParam int
	// Allocs are the function's direct potential allocation sites.
	Allocs []AllocSite
	// Calls are the function's call sites in source order.
	Calls []Call
	// Resources are the acquire/release operations the body performs.
	Resources []ResourceOp
}

// Module is the phase-1 output: every loaded package, the per-function
// facts, and the call graph over them.
type Module struct {
	Pkgs  []*Package
	Funcs map[*types.Func]*FuncFacts
	Graph *CallGraph
}

// FuncID returns the stable identity of a function used in fact dumps and
// baseline keys: the type-qualified FullName, e.g.
// "(*surfknn/internal/core.Session).rank" or "surfknn/internal/graph.Dijkstra".
func FuncID(fn *types.Func) string { return fn.FullName() }

// BuildModule runs phase 1 over the packages.
func BuildModule(pkgs []*Package) *Module {
	m := &Module{Pkgs: pkgs, Funcs: make(map[*types.Func]*FuncFacts)}
	for _, p := range pkgs {
		if p.Pkg == nil {
			continue
		}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				m.Funcs[obj] = buildFuncFacts(p, fd, obj)
			}
		}
	}
	m.Graph = buildCallGraph(m)
	return m
}

// SortedFuncs returns the module's functions ordered by FuncID —
// the deterministic iteration order for dumps and module rules.
func (m *Module) SortedFuncs() []*FuncFacts {
	out := make([]*FuncFacts, 0, len(m.Funcs))
	for _, ff := range m.Funcs {
		out = append(out, ff)
	}
	sort.Slice(out, func(i, j int) bool { return FuncID(out[i].Fn) < FuncID(out[j].Fn) })
	return out
}

// FactsDump renders the module facts as a deterministic text listing (the
// `sklint -facts` debugging view).
func (m *Module) FactsDump() string {
	var b strings.Builder
	for _, ff := range m.SortedFuncs() {
		fmt.Fprintf(&b, "%s:", FuncID(ff.Fn))
		if ff.Hotpath {
			b.WriteString(" hotpath")
		}
		if ff.CtxParam >= 0 {
			fmt.Fprintf(&b, " ctx=%d", ff.CtxParam)
		}
		fmt.Fprintf(&b, " allocs=%d calls=%d", len(ff.Allocs), len(ff.Calls))
		b.WriteString("\n")
		for _, a := range ff.Allocs {
			fmt.Fprintf(&b, "  alloc %-13s %s\n", a.Kind, a.Desc)
		}
		for _, r := range ff.Resources {
			op := "release"
			if r.Acquire {
				op = "acquire"
			}
			fmt.Fprintf(&b, "  %s %s\n", op, r.Resource)
		}
		for _, c := range ff.Calls {
			switch {
			case c.Dynamic && c.Callee != nil:
				fmt.Fprintf(&b, "  call  dynamic %s\n", FuncID(c.Callee))
			case c.Dynamic:
				b.WriteString("  call  dynamic\n")
			default:
				fmt.Fprintf(&b, "  call  %s\n", FuncID(c.Callee))
			}
		}
	}
	return b.String()
}

func buildFuncFacts(p *Package, fd *ast.FuncDecl, obj *types.Func) *FuncFacts {
	ff := &FuncFacts{Fn: obj, Pkg: p, Decl: fd, CtxParam: -1, Hotpath: hasHotpathDirective(fd)}
	sig := obj.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			ff.CtxParam = i
			break
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			ff.recordCall(p, e)
		case *ast.CompositeLit:
			ff.recordComposite(p, e)
		case *ast.FuncLit:
			ff.addAlloc(e.Pos(), AllocClosure, "func literal")
		case *ast.BinaryExpr:
			if e.Op == token.ADD && isStringExpr(p, e) {
				ff.addAlloc(e.Pos(), AllocStringCat, "string +")
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, isLit := ast.Unparen(e.X).(*ast.CompositeLit); isLit {
					ff.addAlloc(e.Pos(), AllocComposite, "&composite literal")
				}
			}
		case *ast.AssignStmt:
			ff.recordAssign(p, e)
		case *ast.GoStmt:
			ff.addAlloc(e.Pos(), AllocClosure, "go statement")
		}
		return true
	})
	ff.Resources = collectResourceOps(p, fd)
	return ff
}

func hasHotpathDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == HotpathDirective {
			return true
		}
	}
	return false
}

func (ff *FuncFacts) addAlloc(pos token.Pos, kind AllocKind, desc string) {
	ff.Allocs = append(ff.Allocs, AllocSite{Pos: pos, Kind: kind, Desc: desc})
}

// extAllocPkgs are non-module packages whose exported calls are treated as
// allocating on a hot path: formatting, reflection-driven sorting, string
// building and encoders all allocate by construction. Stdlib calls outside
// this set (math, sync/atomic, time arithmetic, binary.LittleEndian
// loads/stores, ...) are assumed allocation-free.
var extAllocPkgs = map[string]bool{
	"fmt": true, "strings": true, "bytes": true, "sort": true,
	"errors": true, "reflect": true, "regexp": true,
	"container/list": true, "container/heap": true, "container/ring": true,
	"encoding/json": true, "encoding/gob": true, "encoding/base64": true,
	"strconv": true, "os": true, "io": true, "bufio": true,
}

func (ff *FuncFacts) recordCall(p *Package, call *ast.CallExpr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := p.Info.Uses[fun].(type) {
		case *types.Builtin:
			ff.recordBuiltin(obj.Name(), call)
			return
		case *types.TypeName:
			ff.recordConversion(p, call)
			return
		case *types.Func:
			ff.addCallTo(p, call, obj)
			return
		case *types.Var: // call through a function-typed variable
			ff.Calls = append(ff.Calls, Call{Pos: call.Pos(), Expr: call, Dynamic: true})
			ff.addAlloc(call.Pos(), AllocDynamicCall, "call through func value "+fun.Name)
			return
		}
	case *ast.SelectorExpr:
		switch obj := p.Info.Uses[fun.Sel].(type) {
		case *types.TypeName:
			ff.recordConversion(p, call)
			return
		case *types.Func:
			ff.addCallTo(p, call, obj)
			return
		case *types.Var:
			ff.Calls = append(ff.Calls, Call{Pos: call.Pos(), Expr: call, Dynamic: true})
			ff.addAlloc(call.Pos(), AllocDynamicCall, "call through func value "+fun.Sel.Name)
			return
		}
	case *ast.ArrayType, *ast.MapType, *ast.InterfaceType, *ast.StarExpr, *ast.FuncType, *ast.ChanType:
		ff.recordConversion(p, call)
		return
	case *ast.FuncLit:
		// Immediately invoked literal: the FuncLit case of the walk
		// already recorded the closure; the call itself is static enough.
		return
	}
	// Anything else (call of a call's result, index expression, ...) is a
	// dynamic call.
	ff.Calls = append(ff.Calls, Call{Pos: call.Pos(), Expr: call, Dynamic: true})
	ff.addAlloc(call.Pos(), AllocDynamicCall, "dynamic call")
}

// addCallTo records a resolved call and derives its allocation facts:
// interface-method dispatch, known-allocating external packages, and
// interface boxing at the argument boundary.
func (ff *FuncFacts) addCallTo(p *Package, call *ast.CallExpr, fn *types.Func) {
	sig, _ := fn.Type().(*types.Signature)
	dynamic := false
	if sig != nil && sig.Recv() != nil {
		if _, iface := sig.Recv().Type().Underlying().(*types.Interface); iface {
			dynamic = true
		}
	}
	ff.Calls = append(ff.Calls, Call{Pos: call.Pos(), Expr: call, Callee: fn, Dynamic: dynamic})
	if dynamic {
		ff.addAlloc(call.Pos(), AllocDynamicCall, "interface call "+fn.Name())
		return
	}
	if fn.Pkg() != nil && extAllocPkgs[fn.Pkg().Path()] {
		ff.addAlloc(call.Pos(), AllocExtCall, fn.Pkg().Name()+"."+fn.Name())
	}
	ff.recordBoxing(p, call, sig)
}

// recordBoxing flags arguments boxed into interface parameters: a concrete
// value passed where the callee takes an interface is wrapped in a heap
// cell (small-integer and pointer cases aside, which Go may stack-box;
// the hot path should not rely on that).
func (ff *FuncFacts) recordBoxing(p *Package, call *ast.CallExpr, sig *types.Signature) {
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-arg boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, iface := pt.Underlying().(*types.Interface); !iface {
			continue
		}
		tv, ok := p.Info.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		if tv.IsNil() {
			continue
		}
		if _, argIface := tv.Type.Underlying().(*types.Interface); argIface {
			continue
		}
		ff.addAlloc(arg.Pos(), AllocBox, "argument boxed into "+pt.String())
	}
}

func (ff *FuncFacts) recordBuiltin(name string, call *ast.CallExpr) {
	switch name {
	case "make":
		ff.addAlloc(call.Pos(), AllocMake, "make")
	case "new":
		ff.addAlloc(call.Pos(), AllocNew, "new")
	case "append":
		ff.addAlloc(call.Pos(), AllocAppend, "append")
	}
}

// recordConversion flags conversions that copy their operand to the heap:
// string <-> []byte/[]rune round trips.
func (ff *FuncFacts) recordConversion(p *Package, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	dst, ok := p.Info.Types[call.Fun]
	if !ok {
		return
	}
	src, ok := p.Info.Types[call.Args[0]]
	if !ok || src.Type == nil || dst.Type == nil {
		return
	}
	if isStringByteConv(dst.Type, src.Type) || isStringByteConv(src.Type, dst.Type) {
		ff.addAlloc(call.Pos(), AllocConvert, dst.Type.String()+" conversion")
	}
}

func isStringByteConv(a, b types.Type) bool {
	ab, ok := a.Underlying().(*types.Basic)
	if !ok || ab.Info()&types.IsString == 0 {
		return false
	}
	sl, ok := b.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	el, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (el.Kind() == types.Byte || el.Kind() == types.Rune || el.Kind() == types.Uint8 || el.Kind() == types.Int32)
}

// recordComposite flags composite literals that reach the heap: slice and
// map literals always allocate their backing store; address-taken struct
// literals allocate unless escape analysis proves otherwise (the hot path
// must not bet on that). Plain value struct/array literals are stack
// values and are not flagged.
func (ff *FuncFacts) recordComposite(p *Package, lit *ast.CompositeLit) {
	tv, ok := p.Info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		ff.addAlloc(lit.Pos(), AllocComposite, "slice literal")
	case *types.Map:
		ff.addAlloc(lit.Pos(), AllocComposite, "map literal")
	}
}

// recordAssign flags map writes: `m[k] = v` may grow m's buckets.
func (ff *FuncFacts) recordAssign(p *Package, as *ast.AssignStmt) {
	for _, lhs := range as.Lhs {
		idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
		if !ok {
			continue
		}
		tv, ok := p.Info.Types[idx.X]
		if !ok || tv.Type == nil {
			continue
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			ff.addAlloc(lhs.Pos(), AllocMapWrite, "map write")
		}
	}
}

func isStringExpr(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// obsAtomic forbids non-atomic writes to the observability counters: the
// fields of package obs's shared metric structs (Registry, Counter,
// Histogram) are read concurrently by the /debug/vars handler and by every
// querying session, so a plain `reg.X++` or `reg.X = Counter{}` is a data
// race that -race only catches when the debug endpoint happens to be
// scraped during the write. The rule flags assignments and ++/-- whose
// target is a counter-like field declared in a package named "obs":
//
//   - a field whose type (transitively) contains a sync/atomic value — a
//     Counter or Histogram copy clobbers live atomics;
//   - a plain numeric field (or numeric array element) of a struct that
//     contains atomics — a raw counter smuggled in next to the atomic ones.
//
// Method calls (Add, Store, Observe) are the sanctioned write path and are
// untouched, as are non-numeric fields (labels, maps, writers) and writes
// through map indices (the registry's lazy phase map is mutex-guarded).
type obsAtomic struct{}

func (obsAtomic) Name() string { return "obs-atomic" }
func (obsAtomic) Doc() string {
	return "direct write to an obs metrics field races with concurrent readers; use its atomic methods (Add/Store/Observe)"
}

func (obsAtomic) Check(p *Package, report func(pos token.Pos, format string, args ...any)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					checkObsWrite(p, lhs, report)
				}
			case *ast.IncDecStmt:
				checkObsWrite(p, st.X, report)
			}
			return true
		})
	}
}

// checkObsWrite reports e when it is a write target selecting a counter-like
// obs field.
func checkObsWrite(p *Package, e ast.Expr, report func(pos token.Pos, format string, args ...any)) {
	sel := obsWriteTarget(p, e)
	if sel == nil {
		return
	}
	field := selectedField(p, sel)
	if field == nil || field.Pkg() == nil || field.Pkg().Name() != "obs" {
		return
	}
	recv := p.Info.TypeOf(sel.X)
	if recv == nil {
		return
	}
	if ptr, ok := recv.Underlying().(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	switch {
	case containsAtomic(field.Type(), nil):
		report(e.Pos(),
			"write to obs field %s overwrites live sync/atomic state; use its atomic methods", field.Name())
	case isNumericish(field.Type()) && containsAtomic(recv, nil):
		report(e.Pos(),
			"non-atomic write to numeric field %s of a shared obs metrics struct; make it a Counter and use Add", field.Name())
	}
}

// obsWriteTarget unwraps a write target down to the selector it stores
// through: parens, pointer dereferences, and array indexing (which writes
// into the selected field's own storage). Map and slice indexing stop the
// unwrap — those writes go to separately-allocated storage (the registry's
// mutex-guarded phase map being the motivating case).
func obsWriteTarget(p *Package, e ast.Expr) *ast.SelectorExpr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			t := p.Info.TypeOf(x.X)
			if t == nil {
				return nil
			}
			u := t.Underlying()
			if ptr, ok := u.(*types.Pointer); ok {
				u = ptr.Elem().Underlying()
			}
			if _, ok := u.(*types.Array); !ok {
				return nil
			}
			e = x.X
		case *ast.SelectorExpr:
			return x
		default:
			return nil
		}
	}
}

// selectedField resolves a selector to the struct field it names, or nil
// when it names something else (package member, method).
func selectedField(p *Package, sel *ast.SelectorExpr) *types.Var {
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

// containsAtomic reports whether a value of type t (transitively, through
// named types, struct fields and arrays) embeds a sync/atomic type. The
// descent does not enter other sync package types (Mutex, Once, ...): their
// internals may use atomics, but they guard their own state, which is not
// what this rule protects.
func containsAtomic(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Named:
		if obj := u.Obj(); obj != nil && obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync/atomic":
				return true
			case "sync":
				return false
			}
		}
		return containsAtomic(u.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsAtomic(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsAtomic(u.Elem(), seen)
	}
	return false
}

// isNumericish reports whether t is a numeric type or an array of them —
// the shapes a hand-rolled counter takes.
func isNumericish(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsNumeric != 0
	case *types.Array:
		return isNumericish(u.Elem())
	}
	return false
}

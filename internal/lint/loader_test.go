package lint

import (
	"path/filepath"
	"testing"
)

func loaderFixture(t *testing.T, name string) (root, dir string) {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	dir, err = filepath.Abs(filepath.Join("testdata", "loader", name))
	if err != nil {
		t.Fatal(err)
	}
	return root, dir
}

// TestLoaderBuildTags loads a package partitioned by //go:build constraints
// and filename suffixes: exactly one osDep variant must be selected, and
// files behind an impossible tag or a foreign-platform suffix must never
// reach the type checker (they contain duplicate, non-type-checking
// declarations by construction).
func TestLoaderBuildTags(t *testing.T) {
	root, dir := loaderFixture(t, "tagged")
	p, err := NewLoader().LoadDir(root, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.TypeErrors) > 0 {
		t.Fatalf("tag-partitioned package does not type-check: %v", p.TypeErrors)
	}
	if len(p.Files) != 2 {
		t.Errorf("loaded %d files, want 2 (base.go + one variant)", len(p.Files))
	}
	if p.Pkg.Scope().Lookup("NeverBuilt") != nil {
		t.Error("file behind //go:build never_enabled_tag was loaded")
	}
	if p.Pkg.Scope().Lookup("osDep") == nil {
		t.Error("no osDep variant was selected")
	}
}

// TestLoaderSkipsAdjacentTestFiles loads a package whose _test.go file
// references undefined test-only symbols; the loader must not let it near
// the type checker.
func TestLoaderSkipsAdjacentTestFiles(t *testing.T) {
	root, dir := loaderFixture(t, "adjacent")
	p, err := NewLoader().LoadDir(root, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.TypeErrors) > 0 {
		t.Fatalf("package with adjacent _test.go does not type-check: %v", p.TypeErrors)
	}
	if len(p.Files) != 1 {
		t.Errorf("loaded %d files, want 1 (code.go only)", len(p.Files))
	}
	if p.Pkg.Scope().Lookup("TestExported") != nil {
		t.Error("_test.go file was loaded")
	}
}

// TestFactsDeterministicAcrossLoadOrder builds module facts from the same
// packages loaded in opposite orders and demands byte-identical dumps:
// baseline keys and diagnostics are derived from the facts, so any map-
// iteration nondeterminism here would churn committed files.
func TestFactsDeterministicAcrossLoadOrder(t *testing.T) {
	root, _ := loaderFixture(t, "tagged")
	dirs := []string{"tagged", "orderb", "adjacent"}
	dump := func(order []int) string {
		loader := NewLoader()
		var pkgs []*Package
		for _, i := range order {
			dir, err := filepath.Abs(filepath.Join("testdata", "loader", dirs[i]))
			if err != nil {
				t.Fatal(err)
			}
			p, err := loader.LoadDir(root, dir)
			if err != nil {
				t.Fatal(err)
			}
			pkgs = append(pkgs, p)
		}
		return BuildModule(pkgs).FactsDump()
	}
	forward := dump([]int{0, 1, 2})
	reverse := dump([]int{2, 1, 0})
	if forward != reverse {
		t.Errorf("fact dump depends on load order\n--- forward ---\n%s--- reverse ---\n%s", forward, reverse)
	}
	if forward == "" {
		t.Error("empty fact dump")
	}
}

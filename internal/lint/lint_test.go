package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFixtures runs the full rule set over each fixture package under
// testdata/src and compares the diagnostics against the package's golden
// expect.txt. Every rule has a fixture with positive cases (diagnostics
// expected), negative cases (clean idioms) and a //lint:ignore
// suppression, so this single loop exercises detection, precision and the
// escape hatch for all of them.
func TestFixtures(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			dir, err := filepath.Abs(filepath.Join("testdata", "src", e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			p, err := loader.LoadDir(root, dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(p.TypeErrors) > 0 {
				t.Fatalf("fixture does not type-check: %v", p.TypeErrors)
			}
			diags := Run([]*Package{p}, AllRules())
			var got strings.Builder
			for _, d := range diags {
				fmt.Fprintf(&got, "%s:%d:%d: %s: %s\n",
					filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
			}
			wantBytes, err := os.ReadFile(filepath.Join(dir, "expect.txt"))
			if err != nil {
				t.Fatal(err)
			}
			want := string(wantBytes)
			if got.String() != want {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got.String(), want)
			}
			// Each rule's fixture is a negative fixture for the gate: the
			// analyzer must report at least one issue on it (which makes
			// the sklint CLI exit non-zero).
			if strings.TrimSpace(want) != "" && len(diags) == 0 {
				t.Error("expected at least one diagnostic on a negative fixture")
			}
		})
	}
}

// TestRepoIsClean is the self-hosting gate: the analyzer must run clean
// over the entire module (the same invocation CI uses via
// `go run ./cmd/sklint ./...`). Any new finding is either a real bug or
// needs an explicit //lint:ignore with a reason.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checking the whole module is slow")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := NewLoader().Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; loader is missing the module", len(pkgs))
	}
	diags := Run(pkgs, AllRules())
	// The committed baseline accepts the current hotpath-alloc debt — the
	// same application cmd/sklint performs. Everything else must be clean.
	baseline, err := LoadBaseline(filepath.Join(root, "lint.baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	kept, _ := ApplyBaseline(baseline, diags)
	for _, d := range kept {
		t.Errorf("%s", d)
	}
}

// TestRuleRegistry pins the rule set: a rule silently dropping out of
// AllRules would disable its gate without any test failing.
func TestRuleRegistry(t *testing.T) {
	want := []string{
		"dropped-error",
		"float-eq",
		"unwrapped-error",
		"panic-message",
		"loop-goroutine-capture",
		"lock-copy",
		"obs-atomic",
		"ctx-background",
		"wire-types",
		"objstore-write",
		"hotpath-alloc",
		"pin-release",
		"ctx-flow",
		"sub-unregister",
		"ast-exhaustive",
	}
	rules := AllRules()
	if len(rules) != len(want) {
		t.Fatalf("got %d rules, want %d", len(rules), len(want))
	}
	for i, r := range rules {
		if r.Name() != want[i] {
			t.Errorf("rule %d = %q, want %q", i, r.Name(), want[i])
		}
		if r.Doc() == "" {
			t.Errorf("rule %q has no doc", r.Name())
		}
		byName, ok := RuleByName(want[i])
		if !ok || byName.Name() != want[i] {
			t.Errorf("RuleByName(%q) failed", want[i])
		}
	}
	if _, ok := RuleByName("no-such-rule"); ok {
		t.Error("RuleByName should reject unknown names")
	}
}

// TestIgnoreMalformed checks the fail-safe: a //lint:ignore directive
// without a reason must NOT suppress anything.
func TestIgnoreMalformed(t *testing.T) {
	set := ignoreSet{}
	if set.match(position("f.go", 3), "dropped-error") {
		t.Error("empty set must not match")
	}
}

func position(file string, line int) (p token.Position) {
	p.Filename = file
	p.Line = line
	return p
}

func parseTestPackage(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Dir: "fixture", Fset: fset, Files: []*ast.File{f}}
}

// TestIgnoreDirectives covers the directive grammar: comma-separated rule
// lists suppress each named rule, unknown rule names are themselves
// findings (an inert suppression is a trap for its author), and a typo in
// one name must not disarm the valid names beside it.
func TestIgnoreDirectives(t *testing.T) {
	p := parseTestPackage(t, `package x

//lint:ignore dropped-error,float-eq shared scratch value
var A = 1

//lint:ignore bogus-rule,pin-release half typo half real
var B = 2

//lint:ignore dropped-error
var C = 3
`)
	set, bad := collectIgnores(p, knownRuleNames())

	if !set.match(position("fixture.go", 4), "dropped-error") {
		t.Error("comma list: dropped-error not suppressed on the line below")
	}
	if !set.match(position("fixture.go", 4), "float-eq") {
		t.Error("comma list: float-eq not suppressed")
	}
	if set.match(position("fixture.go", 4), "pin-release") {
		t.Error("comma list must only suppress the named rules")
	}
	if !set.match(position("fixture.go", 7), "pin-release") {
		t.Error("a typo next to a valid name must not disarm the valid name")
	}

	var unknown, malformed int
	for _, d := range bad {
		if d.Rule != directiveRule {
			t.Errorf("bad-directive diagnostic under rule %q, want %q", d.Rule, directiveRule)
		}
		switch {
		case strings.Contains(d.Message, "unknown rule"):
			unknown++
			if !strings.Contains(d.Message, "bogus-rule") {
				t.Errorf("unknown-rule diagnostic does not name the rule: %s", d.Message)
			}
		case strings.Contains(d.Message, "malformed"):
			malformed++
		}
	}
	if unknown != 1 {
		t.Errorf("got %d unknown-rule diagnostics, want 1", unknown)
	}
	if malformed != 1 {
		t.Errorf("got %d malformed diagnostics, want 1 (reason is mandatory)", malformed)
	}
}

// TestTypeErrorPos pins the satellite fix: a non-types.Error must fall
// back to the package's first file, never a zero Position — CI routes
// annotations by filename, and "" routes nowhere.
func TestTypeErrorPos(t *testing.T) {
	p := parseTestPackage(t, "package x\n")
	pos := typeErrorPos(p, fmt.Errorf("importer exploded"))
	if pos.Filename != "fixture.go" {
		t.Errorf("fallback position = %q, want the package's first file", pos.Filename)
	}
	empty := &Package{Dir: "somewhere", Fset: token.NewFileSet()}
	pos = typeErrorPos(empty, fmt.Errorf("no files at all"))
	if pos.Filename != "somewhere" {
		t.Errorf("fileless fallback = %q, want the package dir", pos.Filename)
	}
}

// TestBaselineRatchet covers the one-way ratchet semantics: covered
// findings are suppressed count-by-count, growth surfaces exactly the
// excess, and un-keyed diagnostics are never baselineable.
func TestBaselineRatchet(t *testing.T) {
	d := func(key string) Diagnostic {
		return Diagnostic{Pos: position("f.go", 1), Rule: "hotpath-alloc", Key: key}
	}
	b := Baseline{"f\tmake": 2}
	kept, suppressed := ApplyBaseline(b, []Diagnostic{d("f\tmake"), d("f\tmake"), d("f\tmake")})
	if len(kept) != 1 || len(suppressed) != 2 {
		t.Errorf("growth: kept %d suppressed %d, want 1/2", len(kept), len(suppressed))
	}
	kept, _ = ApplyBaseline(b, []Diagnostic{d("f\tmake")})
	if len(kept) != 0 {
		t.Errorf("shrink: kept %d, want 0", len(kept))
	}
	unkeyed := Diagnostic{Pos: position("f.go", 2), Rule: "pin-release"}
	kept, _ = ApplyBaseline(Baseline{"\t": 5}, []Diagnostic{unkeyed})
	if len(kept) != 1 {
		t.Error("un-keyed diagnostics must pass through the baseline")
	}
}

// TestBaselineRoundTrip checks the file format survives write → load and
// that a missing file reads as an empty (strict) baseline.
func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "b.json")
	want := Baseline{"a\tmake": 2, "b\tappend": 1}
	if err := WriteBaseline(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || got["a\tmake"] != 2 || got["b\tappend"] != 1 {
		t.Errorf("round trip: got %v, want %v", got, want)
	}
	missing, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil || len(missing) != 0 {
		t.Errorf("missing file: got %v, %v; want empty baseline, nil error", missing, err)
	}
}

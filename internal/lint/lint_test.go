package lint

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFixtures runs the full rule set over each fixture package under
// testdata/src and compares the diagnostics against the package's golden
// expect.txt. Every rule has a fixture with positive cases (diagnostics
// expected), negative cases (clean idioms) and a //lint:ignore
// suppression, so this single loop exercises detection, precision and the
// escape hatch for all of them.
func TestFixtures(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			dir, err := filepath.Abs(filepath.Join("testdata", "src", e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			p, err := loader.LoadDir(root, dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(p.TypeErrors) > 0 {
				t.Fatalf("fixture does not type-check: %v", p.TypeErrors)
			}
			diags := Run([]*Package{p}, AllRules())
			var got strings.Builder
			for _, d := range diags {
				fmt.Fprintf(&got, "%s:%d:%d: %s: %s\n",
					filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
			}
			wantBytes, err := os.ReadFile(filepath.Join(dir, "expect.txt"))
			if err != nil {
				t.Fatal(err)
			}
			want := string(wantBytes)
			if got.String() != want {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got.String(), want)
			}
			// Each rule's fixture is a negative fixture for the gate: the
			// analyzer must report at least one issue on it (which makes
			// the sklint CLI exit non-zero).
			if strings.TrimSpace(want) != "" && len(diags) == 0 {
				t.Error("expected at least one diagnostic on a negative fixture")
			}
		})
	}
}

// TestRepoIsClean is the self-hosting gate: the analyzer must run clean
// over the entire module (the same invocation CI uses via
// `go run ./cmd/sklint ./...`). Any new finding is either a real bug or
// needs an explicit //lint:ignore with a reason.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checking the whole module is slow")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := NewLoader().Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; loader is missing the module", len(pkgs))
	}
	diags := Run(pkgs, AllRules())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestRuleRegistry pins the rule set: a rule silently dropping out of
// AllRules would disable its gate without any test failing.
func TestRuleRegistry(t *testing.T) {
	want := []string{
		"dropped-error",
		"float-eq",
		"unwrapped-error",
		"panic-message",
		"loop-goroutine-capture",
		"lock-copy",
		"obs-atomic",
		"ctx-background",
		"objstore-write",
	}
	rules := AllRules()
	if len(rules) != len(want) {
		t.Fatalf("got %d rules, want %d", len(rules), len(want))
	}
	for i, r := range rules {
		if r.Name() != want[i] {
			t.Errorf("rule %d = %q, want %q", i, r.Name(), want[i])
		}
		if r.Doc() == "" {
			t.Errorf("rule %q has no doc", r.Name())
		}
		byName, ok := RuleByName(want[i])
		if !ok || byName.Name() != want[i] {
			t.Errorf("RuleByName(%q) failed", want[i])
		}
	}
	if _, ok := RuleByName("no-such-rule"); ok {
		t.Error("RuleByName should reject unknown names")
	}
}

// TestIgnoreMalformed checks the fail-safe: a //lint:ignore directive
// without a reason must NOT suppress anything.
func TestIgnoreMalformed(t *testing.T) {
	set := ignoreSet{}
	if set.match(position("f.go", 3), "dropped-error") {
		t.Error("empty set must not match")
	}
}

func position(file string, line int) (p token.Position) {
	p.Filename = file
	p.Line = line
	return p
}

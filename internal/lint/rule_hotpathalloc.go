package lint

import "go/token"

// hotpathAlloc enforces the //sklint:hotpath annotation contract: an
// annotated function must not allocate — directly or transitively through
// the static call graph. The warm KNN serving path (MR3/EA ranking,
// pathnet Dijkstra, R-tree traversal) is annotated; every allocation that
// survives on it is either removed or carried in the committed baseline
// (lint.baseline.json), which only ratchets down — sklint fails when a key's
// count grows, keeping the ROADMAP's zero-alloc SoA refactor honest about
// where the remaining allocations live.
//
// Direct allocation facts come from phase 1: make/new/append, slice and
// map literals, &composite literals, closures, map writes, string
// concatenation, string<->[]byte conversions, interface boxing at call
// boundaries, calls into known-allocating external packages, and dynamic
// calls (whose targets the analyzer cannot clear). Each finding carries a
// position-independent baseline key "<func>\t<kind>" so the ratchet
// survives unrelated line shifts.
type hotpathAlloc struct{}

func (hotpathAlloc) Name() string { return "hotpath-alloc" }
func (hotpathAlloc) Doc() string {
	return "//sklint:hotpath functions must not allocate, directly or transitively (baseline-ratcheted)"
}

func (hotpathAlloc) CheckModule(m *Module, report func(p *Package, pos token.Pos, key, format string, args ...any)) {
	type siteID struct {
		ff  *FuncFacts
		idx int
	}
	reported := make(map[siteID]bool)
	for _, root := range m.SortedFuncs() {
		if !root.Hotpath {
			continue
		}
		reachable, pred := m.Graph.ReachableFrom(root.Fn)
		for _, ff := range m.SortedFuncs() {
			if !reachable[ff.Fn] {
				continue
			}
			for i, site := range ff.Allocs {
				id := siteID{ff, i}
				if reported[id] {
					continue
				}
				reported[id] = true
				key := FuncID(ff.Fn) + "\t" + string(site.Kind)
				if ff.Fn == root.Fn {
					report(ff.Pkg, site.Pos, key,
						"allocation (%s: %s) in //sklint:hotpath function %s",
						site.Kind, site.Desc, FuncID(ff.Fn))
					continue
				}
				report(ff.Pkg, site.Pos, key,
					"allocation (%s: %s) reachable from //sklint:hotpath %s via %s",
					site.Kind, site.Desc, FuncID(root.Fn), PathTo(pred, ff.Fn))
			}
		}
	}
}

package lint

// AllRules returns the full rule set in a stable order. Package rules
// first (each sees one package), then the module rules that consume
// phase-1 facts and the call graph.
func AllRules() []Rule {
	return []Rule{
		droppedError{},
		floatEq{},
		unwrappedError{},
		panicMessage{},
		loopGoroutineCapture{},
		lockCopy{},
		obsAtomic{},
		ctxBackground{},
		wireTypes{},
		objstoreWrite{},
		hotpathAlloc{},
		pinRelease{},
		ctxFlow{},
		subUnregister{},
		astExhaustive{},
	}
}

// RuleByName resolves one rule; ok is false for unknown names.
func RuleByName(name string) (Rule, bool) {
	for _, r := range AllRules() {
		if r.Name() == name {
			return r, true
		}
	}
	return nil, false
}

// knownRuleNames is the set of names an ignore directive may legally
// reference: every registered rule plus the directive rule itself (so a
// deliberately unused `//lint:ignore lint-directive ...` does not recurse
// into nonsense) and "*".
func knownRuleNames() map[string]bool {
	known := map[string]bool{"*": true, directiveRule: true}
	for _, r := range AllRules() {
		known[r.Name()] = true
	}
	return known
}

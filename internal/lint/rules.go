package lint

// AllRules returns the full rule set in a stable order.
func AllRules() []Rule {
	return []Rule{
		droppedError{},
		floatEq{},
		unwrappedError{},
		panicMessage{},
		loopGoroutineCapture{},
		lockCopy{},
		obsAtomic{},
		ctxBackground{},
		objstoreWrite{},
	}
}

// RuleByName resolves one rule; ok is false for unknown names.
func RuleByName(name string) (Rule, bool) {
	for _, r := range AllRules() {
		if r.Name() == name {
			return r, true
		}
	}
	return nil, false
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ctxFlow enforces context threading: a function that already receives a
// context.Context must pass it on, not mint a fresh root or drop it.
// Three findings inside ctx-holding functions:
//
//   - a call to context.Background() or context.TODO(): the new root
//     detaches the callee from the caller's deadline and cancellation.
//     The one sanctioned shape is the nil-guard default
//     `if ctx == nil { ctx = context.Background() }`, which only runs
//     when there is no caller context to lose;
//   - a literal nil passed where a callee declares a context.Context
//     parameter — same detachment, one level down;
//   - a call to a module function F when a sibling FCtx (same package,
//     same receiver, name + "Ctx", taking a context) exists: the
//     convenience wrapper exists precisely for callers without a ctx,
//     and a caller holding one must use the Ctx variant.
//
// The rule is module-wide because the sibling check needs the full
// function inventory from phase 1.
type ctxFlow struct{}

func (ctxFlow) Name() string { return "ctx-flow" }
func (ctxFlow) Doc() string {
	return "functions holding a ctx must thread it: no fresh Background/TODO, no nil ctx args, no non-Ctx siblings"
}

func (ctxFlow) CheckModule(m *Module, report func(p *Package, pos token.Pos, key, format string, args ...any)) {
	siblings := buildCtxSiblings(m)
	for _, ff := range m.SortedFuncs() {
		if ff.CtxParam < 0 {
			continue
		}
		checkCtxFlow(m, ff, siblings, report)
	}
}

// ctxSiblingKey identifies a function by package, receiver type name
// (empty for plain functions) and name, so MR3 can be paired with MR3Ctx
// on the same receiver in the same package.
type ctxSiblingKey struct {
	pkg  string
	recv string
	name string
}

func siblingKeyFor(fn *types.Func) ctxSiblingKey {
	k := ctxSiblingKey{name: fn.Name()}
	if fn.Pkg() != nil {
		k.pkg = fn.Pkg().Path()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		k.recv = namedTypeName(sig.Recv().Type())
	}
	return k
}

func funcTakesCtx(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// buildCtxSiblings maps every module function F without a ctx parameter
// to its FCtx sibling that has one.
func buildCtxSiblings(m *Module) map[*types.Func]*types.Func {
	byKey := make(map[ctxSiblingKey]*types.Func, len(m.Funcs))
	for fn := range m.Funcs {
		byKey[siblingKeyFor(fn)] = fn
	}
	out := make(map[*types.Func]*types.Func)
	for fn := range m.Funcs {
		if funcTakesCtx(fn) {
			continue
		}
		k := siblingKeyFor(fn)
		k.name += "Ctx"
		if sib, ok := byKey[k]; ok && funcTakesCtx(sib) {
			out[fn] = sib
		}
	}
	return out
}

// ctxParamVar returns the *types.Var of fd's context parameter, nil when
// the parameter is unnamed or blank.
func ctxParamVar(p *Package, fd *ast.FuncDecl) *types.Var {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := p.Info.Defs[name].(*types.Var); ok && isContextType(v.Type()) {
				return v
			}
		}
	}
	return nil
}

// nilGuardRanges collects the body spans of `if ctx == nil { ... }`
// statements — the sanctioned place to default a missing context.
func nilGuardRanges(p *Package, body *ast.BlockStmt, ctxVar *types.Var) [][2]token.Pos {
	if ctxVar == nil {
		return nil
	}
	var spans [][2]token.Pos
	isCtx := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && p.Info.Uses[id] == ctxVar
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		_, isNilObj := p.Info.Uses[id].(*types.Nil)
		return isNilObj
	}
	ast.Inspect(body, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		cond, ok := ast.Unparen(ifStmt.Cond).(*ast.BinaryExpr)
		if !ok || cond.Op != token.EQL {
			return true
		}
		if (isCtx(cond.X) && isNil(cond.Y)) || (isNil(cond.X) && isCtx(cond.Y)) {
			spans = append(spans, [2]token.Pos{ifStmt.Body.Pos(), ifStmt.Body.End()})
		}
		return true
	})
	return spans
}

func inSpans(spans [][2]token.Pos, pos token.Pos) bool {
	for _, s := range spans {
		if s[0] <= pos && pos < s[1] {
			return true
		}
	}
	return false
}

func checkCtxFlow(m *Module, ff *FuncFacts, siblings map[*types.Func]*types.Func, report func(p *Package, pos token.Pos, key, format string, args ...any)) {
	p := ff.Pkg
	guards := nilGuardRanges(p, ff.Decl.Body, ctxParamVar(p, ff.Decl))
	ast.Inspect(ff.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		var callee *types.Func
		if isSel {
			callee, _ = p.Info.Uses[sel.Sel].(*types.Func)
		} else if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent {
			callee, _ = p.Info.Uses[id].(*types.Func)
		}
		if callee == nil {
			return true
		}
		if pkg := callee.Pkg(); pkg != nil && pkg.Path() == "context" &&
			(callee.Name() == "Background" || callee.Name() == "TODO") {
			if !inSpans(guards, call.Pos()) {
				report(p, call.Pos(),
					"", "context.%s() called in %s, which already has a ctx parameter; thread the caller's ctx instead",
					callee.Name(), FuncID(ff.Fn))
			}
			return true
		}
		// Literal nil where the callee wants a context.
		if sig, ok := callee.Type().(*types.Signature); ok {
			n := sig.Params().Len()
			for i, arg := range call.Args {
				pi := i
				if sig.Variadic() && pi >= n-1 {
					pi = n - 1
				}
				if pi >= n || !isContextType(sig.Params().At(pi).Type()) {
					continue
				}
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					if _, isNilObj := p.Info.Uses[id].(*types.Nil); isNilObj {
						report(p, arg.Pos(),
							"", "nil passed as the context argument of %s from ctx-holding %s; pass ctx",
							callee.Name(), FuncID(ff.Fn))
					}
				}
			}
		}
		// Non-Ctx convenience variant called while a ctx is in hand.
		if sib, ok := siblings[callee]; ok {
			report(p, call.Pos(),
				"", "%s calls %s but holds a ctx; call %s and pass it",
				FuncID(ff.Fn), callee.Name(), sib.Name())
		}
		return true
	})
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// wireTypes forbids ad-hoc JSON shapes in the HTTP serving layer (any
// package named "server" or "shard"): marshaling a map literal or an
// anonymous struct mints a wire shape that exists nowhere in the importable
// contract. Every byte the service emits must round-trip through a named
// type in internal/server/api — that is what makes the client, the
// coordinator and the tests provably speak the same schema, and what the
// api:"v1" tags version. A handler that reaches for
// json.Marshal(map[string]any{...}) is defining wire format by accident.
//
// Like ctx-background, the rule keys on the package name rather than the
// import path so the fixture under testdata can exercise it.
type wireTypes struct{}

func (wireTypes) Name() string { return "wire-types" }
func (wireTypes) Doc() string {
	return "serving-layer JSON must marshal named api types, not maps or anonymous structs"
}

func (wireTypes) Check(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if p.Pkg == nil || (p.Pkg.Name() != "server" && p.Pkg.Name() != "shard") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			arg, ok := jsonEncodeArg(p, call)
			if !ok || arg == nil {
				return true
			}
			if shape := adHocShape(p, arg); shape != "" {
				report(call.Pos(),
					"marshaling %s defines a wire shape outside the api package; give it a named type in internal/server/api", shape)
			}
			return true
		})
	}
}

// jsonEncodeArg returns the value expression a call serialises, when the
// call is encoding/json's Marshal/MarshalIndent or (*json.Encoder).Encode —
// resolved through the type information so an import alias cannot hide it.
func jsonEncodeArg(p *Package, call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/json" {
		return nil, false
	}
	switch fn.Name() {
	case "Marshal", "MarshalIndent", "Encode":
		if len(call.Args) == 0 {
			return nil, false
		}
		return call.Args[0], true
	}
	return nil, false
}

// adHocShape classifies the serialised expression's type: "a map" for any
// map type, "an anonymous struct" for a struct with no name, "" for
// everything else (named types, slices of named types, interfaces).
func adHocShape(p *Package, arg ast.Expr) string {
	tv, ok := p.Info.Types[arg]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	for {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
			continue
		}
		break
	}
	switch t.(type) {
	case *types.Map:
		return "a map"
	case *types.Struct:
		return "an anonymous struct"
	}
	return ""
}

// Package floateq is a sklint fixture: exact floating-point comparisons.
package floateq

func cmpEq(a, b float64) bool {
	return a == b // finding
}

func cmpNe(a, b float32) bool {
	return a != b // finding: float32 too
}

func switchTag(a float64) int {
	switch a { // finding: switch compares with ==
	case 1.5:
		return 1
	}
	return 0
}

func zeroCheckOK(a float64) bool { return a == 0 } // exempt: unset-value idiom

func intOK(a, b int) bool { return a == b }

func suppressed(a, b float64) bool {
	//lint:ignore float-eq fixture demonstrates an intentional bit-identity check
	return a == b
}

// Package server is the ctx-background fixture: the rule keys on the
// package name, so this fixture stands in for internal/server. Handlers
// must derive every context from the request; minting a root context
// detaches the query from client disconnects, deadlines and drain.
package server

import (
	stdctx "context"
	"net/http"
	"time"
)

func badHandler(w http.ResponseWriter, r *http.Request) {
	ctx := stdctx.Background() // orphaned root: ignores the request entirely
	_ = ctx
	todo := stdctx.TODO() // TODO is the same orphan with a different name
	_ = todo
	// The alias does not launder the call: resolution is by type info.
	ctx2, cancel := stdctx.WithTimeout(stdctx.Background(), time.Second)
	defer cancel()
	_ = ctx2
}

func goodHandler(w http.ResponseWriter, r *http.Request) {
	// The sanctioned shape: every context descends from the request.
	ctx, cancel := stdctx.WithTimeout(r.Context(), time.Second)
	defer cancel()
	_ = ctx
}

// background is a same-name decoy: a local function named Background is not
// the context package's root constructor.
type decoy struct{}

func (decoy) Background() int { return 0 }

func goodDecoy() {
	var d decoy
	_ = d.Background()
}

func suppressed() {
	//lint:ignore ctx-background fixture exercises the escape hatch
	_ = stdctx.Background()
}

// Package unwrapped is a sklint fixture: fmt.Errorf without %w.
package unwrapped

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("boom")

func bad() error {
	return fmt.Errorf("loading snapshot: %v", errSentinel) // finding
}

func badTwoArgs(path string) error {
	return fmt.Errorf("open %s: %s", path, errSentinel) // finding
}

func good() error {
	return fmt.Errorf("loading snapshot: %w", errSentinel)
}

func noErrorOperand(n int) error {
	return fmt.Errorf("implausible count %d", n)
}

func suppressed() error {
	//lint:ignore unwrapped-error fixture demonstrates deliberate flattening
	return fmt.Errorf("flattened on purpose: %v", errSentinel)
}

// Package lockcopy is a sklint fixture: locks copied by value through
// receivers and parameters.
package lockcopy

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

func (c counter) get() int { // finding: value receiver copies c.mu
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) inc() { // ok: pointer receiver
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// wrapper holds the lock transitively, through a named struct field.
type wrapper struct {
	inner counter
	tag   string
}

func snapshot(w wrapper) int { // finding: value parameter copies w.inner.mu
	return w.inner.n
}

func byPointer(w *wrapper) int { // ok: pointer parameter
	return w.inner.n
}

type guarded struct {
	mu sync.RWMutex
}

func (g guarded) bad() {} // finding: RWMutex counts too

type byRef struct {
	mu  *sync.Mutex // pointer field: copying byRef shares the lock
	chs []counter   // slice: copying the header copies no element
}

func shared(b byRef) *sync.Mutex { // ok: no lock is copied
	return b.mu
}

type cell [2]counter

func drain(c cell) int { // finding: arrays copy element-wise
	return c[0].n + c[1].n
}

//lint:ignore lock-copy fixture demonstrates the escape hatch
func (c counter) suppressed() int {
	return c.n
}

// Package subunregister is the sub-unregister fixture: a function that
// inserts into a `subs` registration table must itself reach a delete on
// that table — by evicting (the bounded-table idiom) or by building the
// cancel closure that deletes (the listener idiom). Inserts whose cleanup
// depends on callers remembering to unsubscribe are findings.
package subunregister

import "sync"

type entry struct{ id uint64 }

// ---- clean idioms ----

// Monitor bounds its table on the insert path: Subscribe reaches evict.
type Monitor struct {
	mu   sync.Mutex
	max  int
	next uint64
	subs map[uint64]*entry
}

func (m *Monitor) Subscribe() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.next++
	m.subs[m.next] = &entry{id: m.next}
	m.evict()
	return m.next
}

func (m *Monitor) evict() {
	for id := range m.subs {
		if len(m.subs) <= m.max {
			return
		}
		delete(m.subs, id)
	}
}

// Registry deletes inside the cancel closure its insert hands back: the
// insert and its guaranteed cleanup live in the same declaration.
type Registry struct {
	mu   sync.Mutex
	next int
	subs map[int]func()
}

func (r *Registry) Subscribe(fn func()) func() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next++
	id := r.next
	r.subs[id] = fn
	return func() {
		r.mu.Lock()
		delete(r.subs, id)
		r.mu.Unlock()
	}
}

// localTable is not a registration table: subs here is a local whose
// lifetime ends with the call, not a struct field.
func localTable(n int) int {
	subs := make(map[int]*entry, n)
	for i := 0; i < n; i++ {
		subs[i] = &entry{id: uint64(i)}
	}
	return len(subs)
}

// ---- findings ----

// Leaky inserts and nothing in the module ever deletes.
type Leaky struct {
	mu   sync.Mutex
	next uint64
	subs map[uint64]*entry
}

func (l *Leaky) Subscribe() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.next++
	l.subs[l.next] = &entry{id: l.next}
	return l.next
}

// Split has an Unsubscribe, but its insert path cannot reach it: the
// table stays bounded only if every caller remembers the pairing call.
type Split struct {
	mu   sync.Mutex
	next uint64
	subs map[uint64]*entry
}

func (s *Split) Subscribe() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	s.subs[s.next] = &entry{id: s.next}
	return s.next
}

func (s *Split) Unsubscribe(id uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.subs, id)
}

// ---- suppression ----

// Pinned keeps a fixed-slot table: the key space is bounded by
// construction, so the table cannot grow and the ignore says why.
type Pinned struct {
	mu   sync.Mutex
	subs map[int]*entry
}

func (p *Pinned) Set(slot int, e *entry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.subs[slot%4] = e //lint:ignore sub-unregister the key space is 4 fixed slots; the table cannot grow
}

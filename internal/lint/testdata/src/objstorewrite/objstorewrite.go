// Package objstorewrite is the objstore-write fixture: the object tables
// handed out by objstore.Epoch.Table and core.TerrainDB.Objects are shared
// epoch snapshots and must never be written through. Unlike the other
// fixtures this one imports the real module packages — the rule keys on the
// method's declaring package, which a single-package fixture cannot fake.
package objstorewrite

import (
	"surfknn/internal/core"
	"surfknn/internal/objstore"
	"surfknn/internal/workload"
)

func bad(db *core.TerrainDB, e *objstore.Epoch, o workload.Object) {
	db.Objects()[0] = o            // replace an entry of the shared table
	db.Objects()[1].ID = 9         // field write through the table
	e.Table()[0] = o               // same through a pinned epoch
	e.Table()[2].Point.Pos.X = 1.0 // deep field chain still hits shared storage
	e.Table()[0].ID++              // increments are writes too
	(e.Table())[3] = o             // parens do not launder the write
}

func good(db *core.TerrainDB, e *objstore.Epoch, o workload.Object) {
	// Reading is what the accessors are for.
	_ = db.Objects()[0]
	_ = e.Table()[0].ID

	// Mutating a private copy is fine — copy first, then write.
	cp := append([]workload.Object(nil), e.Table()...)
	cp[0] = o
	cp[1].ID = 9

	// The sanctioned write path publishes a new epoch.
	db.ObjectStore().Upsert([]workload.Object{o})

	// Building object slices from scratch is ordinary code.
	fresh := make([]workload.Object, 4)
	fresh[0] = o
	fresh[2].ID++
}

func suppressed(e *objstore.Epoch, o workload.Object) {
	//lint:ignore objstore-write fixture exercises the escape hatch
	e.Table()[0] = o
}

// Package sklang is a sklint fixture for ast-exhaustive: type switches
// over a closed AST sum must cover every exported node type or default to
// a typed error. The package is deliberately named sklang — that name is
// what arms the rule.
package sklang

import "errors"

// Node is the fixture's closed sum, standing in for sklang.Stmt.
type Node interface{ node() }

// Alpha, Beta and Gamma are the exported node types; Gamma implements
// through a pointer receiver, like the real AST nodes.
type Alpha struct{}

func (Alpha) node() {}

type Beta struct{}

func (Beta) node() {}

type Gamma struct{}

func (*Gamma) node() {}

// hidden is unexported: the closed sum a consumer dispatches over is the
// exported surface, so switches need not name it.
type hidden struct{}

func (hidden) node() {}

func exhaustiveOK(n Node) int {
	switch n.(type) {
	case Alpha:
		return 1
	case Beta:
		return 2
	case *Gamma:
		return 3
	}
	return 0
}

func typedDefaultOK(n Node) (int, error) {
	switch n.(type) {
	case Alpha:
		return 1, nil
	default:
		return 0, errors.New("unknown node")
	}
}

func missingCase(n Node) int {
	switch n.(type) { // finding: Gamma is not covered and there is no default
	case Alpha:
		return 1
	case Beta:
		return 2
	}
	return 0
}

func silentDefault(n Node) int {
	switch n.(type) {
	case Alpha:
		return 1
	default: // finding: the default swallows unknown nodes without a typed error
		return 0
	}
}

func suppressed(n Node) int {
	//lint:ignore ast-exhaustive fixture demonstrates a deliberate partial walk
	switch n.(type) {
	case Alpha:
		return 1
	}
	return 0
}

func otherInterfaceOK(v error) string {
	// A switch over a non-sklang interface is out of scope.
	switch v.(type) {
	case *hiddenErr:
		return "hidden"
	}
	return ""
}

type hiddenErr struct{}

func (*hiddenErr) Error() string { return "x" }

var _ = hidden{}

// Package droppederr is a sklint fixture: error results discarded with _.
package droppederr

import "errors"

func twoResults() (int, error) { return 0, errors.New("boom") }
func oneError() error          { return nil }

func bad() int {
	n, _ := twoResults() // finding: tuple error discarded
	_ = oneError()       // finding: single error discarded
	return n
}

func good(m map[string]int, v any) (int, bool) {
	x, _ := m["a"]    // comma-ok bool, not an error
	s, ok := v.(bool) // comma-ok type assertion
	n, err := twoResults()
	if err != nil {
		return 0, false
	}
	_ = s
	return x + n, ok
}

func suppressed() {
	//lint:ignore dropped-error fixture demonstrates the escape hatch
	_ = oneError()
}

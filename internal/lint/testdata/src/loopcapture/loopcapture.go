// Package loopcapture is a sklint fixture: goroutines capturing loop
// variables instead of receiving them as arguments.
package loopcapture

func badRange(items []int) {
	for _, v := range items {
		go func() {
			println(v) // finding
		}()
	}
}

func badFor(done chan struct{}) {
	for i := 0; i < 3; i++ {
		go func() {
			println(i) // finding
			done <- struct{}{}
		}()
	}
}

func goodArgument(items []int) {
	for _, v := range items {
		go func(v int) {
			println(v)
		}(v)
	}
}

func goodNoGoroutine(items []int) int {
	sum := 0
	for _, v := range items {
		sum += v
	}
	return sum
}

func suppressed(items []int) {
	for _, v := range items {
		go func() {
			//lint:ignore loop-goroutine-capture fixture demonstrates the escape hatch
			println(v)
		}()
	}
}

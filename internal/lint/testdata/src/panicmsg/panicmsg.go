// Package panicmsg is a sklint fixture: panic messages must carry the
// "<pkg>: " prefix inside internal packages.
package panicmsg

import "fmt"

func bad() {
	panic("missing prefix") // finding
}

func badSprintf(n int) {
	panic(fmt.Sprintf("negative count %d", n)) // finding
}

func good() {
	panic("panicmsg: invariant violated")
}

func goodSprintf(n int) {
	panic(fmt.Sprintf("panicmsg: negative count %d", n))
}

func nonLiteral(err error) {
	panic(err) // out of scope: no static message to check
}

func suppressed() {
	//lint:ignore panic-message fixture demonstrates the escape hatch
	panic("prefix-free on purpose")
}

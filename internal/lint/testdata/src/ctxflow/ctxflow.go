// Package ctxflow is the ctx-flow fixture: a function already holding a
// context.Context must thread it — no fresh Background/TODO roots, no nil
// context arguments, no calls to a non-Ctx convenience sibling when the
// FCtx variant exists.
package ctxflow

import "context"

type DB struct{}

func (db *DB) Query(k int) int                         { return k }
func (db *DB) QueryCtx(ctx context.Context, k int) int { return k }

func helper(ctx context.Context, k int) int { return k }

// ---- findings ----

func freshRoot(ctx context.Context, db *DB) int {
	return db.QueryCtx(context.Background(), 1) // detaches from the caller's deadline
}

func todoRoot(ctx context.Context, db *DB) int {
	return db.QueryCtx(context.TODO(), 1)
}

func nilArg(ctx context.Context, db *DB) int {
	return db.QueryCtx(nil, 1)
}

func wrongVariant(ctx context.Context, db *DB) int {
	return db.Query(1) // QueryCtx exists; the ctx in hand is dropped
}

// ---- clean idioms ----

func guarded(ctx context.Context, db *DB) int {
	if ctx == nil {
		ctx = context.Background() // the sanctioned default for a missing ctx
	}
	return db.QueryCtx(ctx, 1)
}

func threads(ctx context.Context, db *DB) int {
	return helper(ctx, 2) + db.QueryCtx(ctx, 1)
}

func noCtx(db *DB) int {
	// Without a ctx parameter the rule does not apply: this is exactly the
	// caller the non-Ctx convenience variant exists for.
	return db.Query(1)
}

// ---- suppression ----

func suppressed(ctx context.Context, db *DB) int {
	return db.Query(2) //lint:ignore ctx-flow benchmarking the non-ctx path deliberately
}

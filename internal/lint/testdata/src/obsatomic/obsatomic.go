// Package obs is the obs-atomic fixture: shared metric structs whose
// counter fields must only be written through their atomic methods. The
// package is named obs because the rule keys on the owning package name.
package obs

import "sync/atomic"

// Counter mirrors the real obs.Counter: an atomic counter whose only write
// path is Add.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the count.
func (c *Counter) Value() int64 { return c.v.Load() }

// registry mixes sanctioned atomic counters with tempting raw fields.
type registry struct {
	name    string
	raw     int64
	started Counter
	counts  [4]int64
	gauge   atomic.Int64
	phases  map[string]int
}

// span has plain numeric fields but no atomics anywhere: single-goroutine
// trace state, free to write directly.
type span struct {
	name string
	dur  int64
}

func bad(r *registry) {
	r.raw++               // raw counter next to atomics
	r.raw = 7             // same field, plain assignment
	r.started = Counter{} // struct copy clobbers the live atomic
	r.counts[0]++         // array element is still the registry's storage
	(*r).raw += 2         // dereference does not launder the write
	r.gauge = atomic.Int64{}
}

func good(r *registry, sp *span) {
	r.started.Add(1)       // the sanctioned write path
	r.gauge.Store(9)       // likewise for bare atomics
	r.name = "queries"     // label, not a counter
	r.phases["knn2d"] = 1  // map writes go to separate (guarded) storage
	sp.dur = 42            // no atomics in span: plain writes are fine
	sp.name = "iter"
	_ = r.started.Value()
	_ = r.counts
}

func suppressed(r *registry) {
	//lint:ignore obs-atomic fixture exercises the escape hatch
	r.raw = 42
}

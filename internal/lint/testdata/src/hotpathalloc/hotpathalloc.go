// Package hotpathalloc is the hotpath-alloc fixture: a function annotated
// //sklint:hotpath must not allocate, directly or transitively through the
// static call graph. Unannotated functions may allocate freely.
package hotpathalloc

// sum is allocation-free: pure arithmetic over an existing slice.
//
//sklint:hotpath
func sum(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}

// gather allocates directly (make) and transitively (grow's append).
//
//sklint:hotpath
func gather(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = grow(out, i)
	}
	return out
}

func grow(xs []int, v int) []int {
	return append(xs, v)
}

// label allocates through string concatenation.
//
//sklint:hotpath
func label(a, b string) string {
	return a + b
}

// notHot is off the hot path; its allocations are nobody's business.
func notHot() []int {
	m := map[string]int{"a": 1}
	return append([]int{}, m["a"])
}

// suppressed records accepted debt inline rather than in the baseline.
//
//sklint:hotpath
func suppressed() *int {
	return new(int) //lint:ignore hotpath-alloc scratch cell accepted until the SoA refactor
}

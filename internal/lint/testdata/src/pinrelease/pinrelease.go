// Package pinrelease is the pin-release fixture: every acquired epoch
// pin, pooled session and buffer-pool frame must reach its matching
// release on all paths out of the acquiring function. The local types
// model the real objstore.Store / core.TerrainDB / storage.BufferPool
// protocols — the rule matches by receiver type and method name, which is
// what lets this fixture stay self-contained.
package pinrelease

type Epoch struct{ refs int }

func (e *Epoch) Release()     {}
func (e *Epoch) Table() []int { return nil }

type Store struct{}

func (s *Store) Pin() *Epoch { return &Epoch{} }

type Session struct{}

type TerrainDB struct{}

func (db *TerrainDB) AcquireSession() *Session { return &Session{} }
func (db *TerrainDB) Release(s *Session)       {}

type Frame struct{ Data []byte }

type BufferPool struct{}

func (bp *BufferPool) Get(id int) (*Frame, error)  { return &Frame{}, nil }
func (bp *BufferPool) Alloc() (*Frame, error)      { return &Frame{}, nil }
func (bp *BufferPool) Unpin(fr *Frame, dirty bool) {}

// ---- findings ----

func leakOnEarlyReturn(s *Store, cond bool) int {
	e := s.Pin()
	if cond {
		return 0 // e is still pinned here
	}
	e.Release()
	return 1
}

func leakSession(db *TerrainDB, n int) int {
	sess := db.AcquireSession()
	if n > 0 {
		return n // sess never goes back to the pool
	}
	db.Release(sess)
	return 0
}

func heldAcrossCallback(bp *BufferPool, fn func([]byte)) error {
	fr, err := bp.Get(1)
	if err != nil {
		return err
	}
	fn(fr.Data) // a panicking fn leaks the pin: the Unpin below never runs
	bp.Unpin(fr, false)
	return nil
}

func discarded(s *Store) {
	s.Pin()     // result not captured
	_ = s.Pin() // blank assignment is the same leak
}

func leakInLoop(bp *BufferPool, ids []int) error {
	for _, id := range ids {
		fr, err := bp.Get(id)
		if err != nil {
			return err
		}
		_ = fr.Data
		// missing Unpin: the next iteration acquires a fresh frame
	}
	return nil
}

func leakAtPanic(s *Store, bad bool) {
	e := s.Pin()
	if bad {
		panic("pinrelease: invariant broken") // unwinds with e pinned
	}
	e.Release()
}

// ---- clean idioms ----

func deferRelease(s *Store) []int {
	e := s.Pin()
	defer e.Release()
	return e.Table()
}

func releaseAllPaths(bp *BufferPool, cond bool) error {
	fr, err := bp.Get(1)
	if err != nil {
		return err // failed acquire holds nothing
	}
	if cond {
		bp.Unpin(fr, false)
		return nil
	}
	bp.Unpin(fr, true)
	return nil
}

func ownershipReturn(s *Store) *Epoch {
	e := s.Pin()
	return e // the caller owns the pin now
}

type holder struct{ view *Epoch }

func (h *holder) begin(s *Store) {
	h.view = s.Pin() // stored in a field: released by the owner's teardown
}

func deferClosure(db *TerrainDB) *Session {
	sess := db.AcquireSession()
	defer func() { db.Release(sess) }()
	return nil
}

func staticCallsWhileHeld(s *Store) int {
	e := s.Pin()
	n := len(e.Table()) // method calls on the held value keep ownership
	e.Release()
	return n
}

// ---- suppression ----

func suppressed(s *Store, cond bool) {
	e := s.Pin() //lint:ignore pin-release fixture demonstrates the escape hatch
	if cond {
		return
	}
	e.Release()
}

// Package server is the wire-types fixture: the rule keys on the package
// name, so this fixture stands in for internal/server and internal/shard.
// Every JSON shape the serving layer emits must be a named type from the
// importable api package; maps and anonymous structs mint accidental wire
// formats no client can depend on.
package server

import (
	stdjson "encoding/json"
	"net/http"
)

// envelope stands in for a named api type: marshaling it is the sanctioned
// shape.
type envelope struct {
	Status string `json:"status"`
}

func badMapMarshal(w http.ResponseWriter) error {
	body, err := stdjson.Marshal(map[string]any{"status": "ok"}) // ad-hoc shape
	if err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	return nil
}

func badAnonStructEncode(w http.ResponseWriter) error {
	// The alias does not launder the call: resolution is by type info.
	return stdjson.NewEncoder(w).Encode(struct {
		Status string `json:"status"`
	}{Status: "ok"})
}

func badMapIndent() ([]byte, error) {
	return stdjson.MarshalIndent(map[string]int{"n": 1}, "", "  ")
}

func badMapPointer() ([]byte, error) {
	m := &map[string]string{"k": "v"}
	return stdjson.Marshal(m) // a pointer does not hide the map
}

func goodNamedType(w http.ResponseWriter) error {
	body, err := stdjson.Marshal(envelope{Status: "ok"})
	if err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	return stdjson.NewEncoder(w).Encode(&envelope{Status: "ok"})
}

func goodSliceOfNamed(w http.ResponseWriter) error {
	return stdjson.NewEncoder(w).Encode([]envelope{{Status: "ok"}})
}

func goodSuppressed() ([]byte, error) {
	//lint:ignore wire-types expvar debug output, not a versioned wire shape
	return stdjson.Marshal(map[string]int{"debug": 1})
}

// marshaller is a same-name decoy: a local Marshal is not encoding/json's.
type marshaller struct{}

func (marshaller) Marshal(v any) ([]byte, error) { return nil, nil }

func goodDecoy() ([]byte, error) {
	var m marshaller
	return m.Marshal(map[string]any{"not": "the rule's business"})
}

package tagged

// Excluded by the _wasip1 filename suffix everywhere the analyzer runs;
// including it would duplicate Always.
func Always() string { return "wasi" }

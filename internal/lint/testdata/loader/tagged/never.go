//go:build never_enabled_tag

package tagged

// Always duplicates the declaration in base.go and does not even
// type-check; the loader must never include this file.
func Always() string { return 0 }

func NeverBuilt() {}

//go:build linux

package tagged

func osDep() string { return "linux" }

package tagged

// Always is present on every platform and uses the platform-partitioned
// osDep, so the package only type-checks if the loader selected exactly
// one variant.
func Always() string { return "always-" + osDep() }

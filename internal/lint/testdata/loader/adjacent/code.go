package adjacent

// Exported is the library half of a package that also carries a _test.go
// file referencing symbols the loader cannot resolve.
func Exported() int { return helper() }

func helper() int { return 1 }

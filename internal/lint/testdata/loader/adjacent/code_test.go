package adjacent

import "testing"

// If the loader ever parsed _test.go files, this reference to an
// undefined symbol would surface as a typecheck diagnostic.
func TestExported(t *testing.T) {
	testOnlyHelperThatDoesNotExist()
}

package orderb

// Grow exists to give this package distinctive phase-1 facts for the
// load-order determinism test.
func Grow(xs []int) []int { return append(xs, len(xs)) }

func Pairs() map[string]int {
	m := make(map[string]int)
	m["a"] = 1
	return m
}

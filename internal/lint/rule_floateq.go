package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"strings"
)

// floatEq flags direct ==/!= comparisons (and switch statements) on
// floating-point values. Distance bounds come out of chains of unfoldings
// and network relaxations; exact float equality on them is either wrong
// (rounding) or an identity check that deserves an explicit justification.
// Use the epsilon helpers in internal/geom (geom.AlmostEq, geom.AlmostZero,
// geom.WithinTol) instead, or suppress with
// `//lint:ignore float-eq <reason>` for intentional bit-identity checks.
//
// Comparisons against the literal 0 are exempt: `x == 0` is the idiomatic
// "option not set" test for config structs and is unaffected by rounding
// when the zero is an untouched zero value.
type floatEq struct{}

func (floatEq) Name() string { return "float-eq" }
func (floatEq) Doc() string {
	return "==/!= on floating-point values; use the internal/geom epsilon helpers"
}

// approvedFloatEqFuncs are the epsilon helpers themselves: the one place
// exact float comparison is part of the job.
var approvedFloatEqFuncs = map[string]bool{
	"AlmostEq":   true,
	"AlmostZero": true,
	"WithinTol":  true,
}

func (floatEq) Check(p *Package, report func(pos token.Pos, format string, args ...any)) {
	inGeomHelpers := strings.HasSuffix(p.ImportPath, "internal/geom")
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if inGeomHelpers && approvedFloatEqFuncs[fn.Name.Name] {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.BinaryExpr:
					if e.Op != token.EQL && e.Op != token.NEQ {
						return true
					}
					xt, yt := p.Info.Types[e.X], p.Info.Types[e.Y]
					if !isFloatType(xt.Type) && !isFloatType(yt.Type) {
						return true
					}
					if isZeroConst(xt.Value) || isZeroConst(yt.Value) {
						return true
					}
					report(e.OpPos, "%s on floating-point values; use geom.AlmostEq or justify with //lint:ignore",
						e.Op)
				case *ast.SwitchStmt:
					if e.Tag == nil {
						return true
					}
					if tv, ok := p.Info.Types[e.Tag]; ok && isFloatType(tv.Type) {
						report(e.Tag.Pos(), "switch on a floating-point value compares with ==; use explicit epsilon comparisons")
					}
				}
				return true
			})
		}
	}
}

func isZeroConst(v constant.Value) bool {
	if v == nil {
		return false
	}
	return constant.Sign(v) == 0
}

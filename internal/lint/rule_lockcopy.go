package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockCopy flags functions and methods that copy a lock by value: a value
// receiver or a value parameter whose type (transitively, through struct
// fields and arrays) contains a sync.Mutex or sync.RWMutex. A copied mutex
// is an independent lock, so the copy silently stops guarding the original's
// state — the classic failure is adding a mutex to a struct whose methods
// use value receivers. `go vet -copylocks` catches copies at call sites and
// assignments; this rule flags the declarations themselves, so the gate
// fails where the fix belongs.
type lockCopy struct{}

func (lockCopy) Name() string { return "lock-copy" }
func (lockCopy) Doc() string {
	return "value receiver or parameter copies a type containing sync.Mutex/RWMutex; use a pointer"
}

func (lockCopy) Check(p *Package, report func(pos token.Pos, format string, args ...any)) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn.Recv != nil {
				for _, field := range fn.Recv.List {
					checkLockField(p, field, func(name string, lock string) {
						report(field.Pos(),
							"method %s has value receiver %s whose type contains %s; use a pointer receiver",
							fn.Name.Name, name, lock)
					})
				}
			}
			if fn.Type.Params != nil {
				for _, field := range fn.Type.Params.List {
					checkLockField(p, field, func(name string, lock string) {
						report(field.Pos(),
							"parameter %s of %s copies a type containing %s; pass a pointer",
							name, fn.Name.Name, lock)
					})
				}
			}
		}
	}
}

// checkLockField invokes found for every name in a receiver/parameter field
// whose declared type passes a lock by value.
func checkLockField(p *Package, field *ast.Field, found func(name, lock string)) {
	t := p.Info.TypeOf(field.Type)
	lock, ok := containsLock(t, nil)
	if !ok {
		return
	}
	if len(field.Names) == 0 {
		found("_", lock)
		return
	}
	for _, id := range field.Names {
		found(id.Name, lock)
	}
}

// containsLock reports whether copying a value of type t copies a
// sync.Mutex or sync.RWMutex, descending through named types, struct
// fields, and arrays (the constructs Go copies element-wise). Pointers,
// slices, maps, channels, and interfaces stop the descent: copying those
// copies a reference, not the lock. seen guards against recursive types.
func containsLock(t types.Type, seen map[types.Type]bool) (string, bool) {
	if t == nil {
		return "", false
	}
	if seen[t] {
		return "", false
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Named:
		if obj := u.Obj(); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			if obj.Name() == "Mutex" || obj.Name() == "RWMutex" {
				return "sync." + obj.Name(), true
			}
		}
		return containsLock(u.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lock, ok := containsLock(u.Field(i).Type(), seen); ok {
				return lock, true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return "", false
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// subUnregister guards registration tables against unbounded growth. A
// struct field named subs with a map type is, by repo convention, such a
// table: continuous.Monitor keys live k-NN subscriptions by id,
// objstore.Store keys update listeners. Every entry pins memory (and, for
// the monitor, a cached result set) for as long as it stays in the table,
// so each function that inserts must itself guarantee an exit path:
// either it reaches — along the static call graph — a function deleting
// from the same field (the bounded-table idiom, Monitor.evictLocked), or
// the delete lives in a closure inside its own body (the cancel-closure
// idiom of objstore.Store.Subscribe). An insert whose cleanup depends on
// every caller remembering a later Unsubscribe is exactly the leak this
// rule flags: one forgotten cancel and the table grows forever.
//
// Matching is structural: an insert is an assignment whose target indexes
// a subs map field; a delete is the delete builtin applied to the same
// field (the same *types.Var, so equally named fields on different types
// stay distinct). Closure bodies count toward their enclosing declaration
// on both sides, which is what lets the cancel-closure idiom pass — and a
// local variable named subs is no table at all.
type subUnregister struct{}

func (subUnregister) Name() string { return "sub-unregister" }
func (subUnregister) Doc() string {
	return "an insert into a subs registration table must reach a delete on it (eviction or a cancel closure); caller-dependent cleanup leaks"
}

// subsMapField resolves e to a map-typed struct field named "subs",
// returning the field object and the name of the type owning the
// selector's base; nil for anything else.
func subsMapField(p *Package, e ast.Expr) (*types.Var, string) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	v, ok := p.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() || v.Name() != "subs" {
		return nil, ""
	}
	if _, isMap := v.Type().Underlying().(*types.Map); !isMap {
		return nil, ""
	}
	owner := ""
	if tv, ok := p.Info.Types[sel.X]; ok {
		owner = namedTypeName(tv.Type)
	}
	return v, owner
}

func (subUnregister) CheckModule(m *Module, report func(p *Package, pos token.Pos, key, format string, args ...any)) {
	type insert struct {
		ff    *FuncFacts
		pos   token.Pos
		field *types.Var
		owner string
	}
	var inserts []insert
	deleters := make(map[*types.Var][]*types.Func)
	for _, ff := range m.SortedFuncs() {
		ast.Inspect(ff.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
					if !ok {
						continue
					}
					if f, owner := subsMapField(ff.Pkg, idx.X); f != nil {
						inserts = append(inserts, insert{ff: ff, pos: lhs.Pos(), field: f, owner: owner})
					}
				}
			case *ast.CallExpr:
				id, ok := ast.Unparen(n.Fun).(*ast.Ident)
				if !ok || len(n.Args) != 2 {
					return true
				}
				if b, isBuiltin := ff.Pkg.Info.Uses[id].(*types.Builtin); !isBuiltin || b.Name() != "delete" {
					return true
				}
				if f, _ := subsMapField(ff.Pkg, n.Args[0]); f != nil {
					deleters[f] = append(deleters[f], ff.Fn)
				}
			}
			return true
		})
	}
	for _, in := range inserts {
		dels := deleters[in.field]
		if len(dels) == 0 {
			report(in.ff.Pkg, in.pos, "",
				"subscription table %s.subs grows here but no function in the module ever deletes from it; bound it with eviction or return a cancel closure",
				in.owner)
			continue
		}
		reach, _ := m.Graph.ReachableFrom(in.ff.Fn)
		reached := false
		for _, fn := range dels {
			if reach[fn] {
				reached = true
				break
			}
		}
		if !reached {
			report(in.ff.Pkg, in.pos, "",
				"subscription table %s.subs grows here and the insert path cannot reach any delete on it; cleanup is left to callers — evict here or hand back a cancel closure",
				in.owner)
		}
	}
}

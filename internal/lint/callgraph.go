package lint

import (
	"sort"

	"go/types"
)

// CallGraph is the module-wide static call graph over phase-1 facts: an
// edge A → B exists when A's body contains a statically resolved call to
// B and B is a module function (has facts). Dynamic calls (function
// values, interface dispatch) have no edges — the alloc facts already
// mark them at the call site, so transitive analyses stay sound without
// chasing targets they cannot resolve.
type CallGraph struct {
	edges map[*types.Func][]*types.Func
}

func buildCallGraph(m *Module) *CallGraph {
	g := &CallGraph{edges: make(map[*types.Func][]*types.Func, len(m.Funcs))}
	for fn, ff := range m.Funcs {
		seen := make(map[*types.Func]bool)
		var out []*types.Func
		for _, c := range ff.Calls {
			if c.Dynamic || c.Callee == nil || seen[c.Callee] {
				continue
			}
			if _, inModule := m.Funcs[c.Callee]; !inModule {
				continue
			}
			seen[c.Callee] = true
			out = append(out, c.Callee)
		}
		// Deterministic edge order regardless of package load order.
		sort.Slice(out, func(i, j int) bool { return FuncID(out[i]) < FuncID(out[j]) })
		g.edges[fn] = out
	}
	return g
}

// Callees returns fn's static module-local callees in deterministic order.
func (g *CallGraph) Callees(fn *types.Func) []*types.Func { return g.edges[fn] }

// ReachableFrom returns every module function reachable from root
// (including root itself) along static call edges, with the predecessor
// map of the breadth-first traversal — PathTo reconstructs a shortest
// call chain from it.
func (g *CallGraph) ReachableFrom(root *types.Func) (map[*types.Func]bool, map[*types.Func]*types.Func) {
	visited := map[*types.Func]bool{root: true}
	pred := make(map[*types.Func]*types.Func)
	queue := []*types.Func{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range g.edges[cur] {
			if visited[next] {
				continue
			}
			visited[next] = true
			pred[next] = cur
			queue = append(queue, next)
		}
	}
	return visited, pred
}

// PathTo renders the call chain root → ... → fn recorded by a
// ReachableFrom predecessor map, as " → "-joined FuncIDs.
func PathTo(pred map[*types.Func]*types.Func, fn *types.Func) string {
	var rev []string
	for cur := fn; cur != nil; cur = pred[cur] {
		rev = append(rev, FuncID(cur))
	}
	s := ""
	for i := len(rev) - 1; i >= 0; i-- {
		if s != "" {
			s += " → "
		}
		s += rev[i]
	}
	return s
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// droppedError flags error values assigned to the blank identifier:
// `x, _ := f()` where the discarded result is error-typed, or `_ = f()`
// for a single error result. In this codebase a dropped error from a
// distance or fetch computation silently degrades a pruning bound, which
// is exactly how k-NN answers rot without failing a test (bounds must stay
// monotone across LODs; garbage in a bound breaks the paper's pruning
// proof). Propagate the error, or suppress with
// `//lint:ignore dropped-error <why the drop is provably safe>`.
type droppedError struct{}

func (droppedError) Name() string { return "dropped-error" }
func (droppedError) Doc() string {
	return "error result assigned to _; a swallowed error can corrupt a distance bound"
}

func (droppedError) Check(p *Package, report func(pos token.Pos, format string, args ...any)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
				// Multi-value call: x, _ := f().
				tv, ok := p.Info.Types[as.Rhs[0]]
				if !ok {
					return true
				}
				tuple, ok := tv.Type.(*types.Tuple)
				if !ok || tuple.Len() != len(as.Lhs) {
					return true
				}
				for i, lhs := range as.Lhs {
					if isBlank(lhs) && isErrorType(tuple.At(i).Type()) {
						report(lhs.Pos(), "error result of %s discarded; handle it or //lint:ignore with a reason",
							describeCall(as.Rhs[0]))
					}
				}
				return true
			}
			if len(as.Lhs) == len(as.Rhs) {
				for i, lhs := range as.Lhs {
					if !isBlank(lhs) {
						continue
					}
					if tv, ok := p.Info.Types[as.Rhs[i]]; ok && isErrorType(tv.Type) {
						report(lhs.Pos(), "error value of %s discarded; handle it or //lint:ignore with a reason",
							describeCall(as.Rhs[i]))
					}
				}
			}
			return true
		})
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// describeCall renders a short name for the expression whose result is
// being discarded, e.g. "db.fetchSDN(...)".
func describeCall(e ast.Expr) string {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "expression"
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name + "(...)"
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name + "(...)"
		}
		return fun.Sel.Name + "(...)"
	default:
		return "call"
	}
}

package objstore

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/obs"
	"surfknn/internal/workload"
)

// obj makes a synthetic object at (x, y); objstore never dereferences the
// face or elevation, so flat points are fine for unit tests.
func obj(id int64, x, y float64) workload.Object {
	return workload.Object{ID: id, Point: mesh.SurfacePoint{Pos: geom.Vec3{X: x, Y: y}}}
}

func grid(n int) []workload.Object {
	objs := make([]workload.Object, n)
	for i := range objs {
		objs[i] = obj(int64(i), float64(i%10)*10, float64(i/10)*10)
	}
	return objs
}

// liveIDs returns the sorted ID set of e's table.
func liveIDs(e *Epoch) []int64 {
	out := make([]int64, 0, e.Len())
	for _, o := range e.Table() {
		out = append(out, o.ID)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestUpsertDeleteVisibility(t *testing.T) {
	t.Parallel()
	s := NewAt(grid(5), 0)
	if got := s.Epoch(); got != 0 {
		t.Fatalf("initial epoch = %d, want 0", got)
	}

	e1 := s.Upsert([]workload.Object{obj(100, 5, 5)})
	if e1 != 1 {
		t.Fatalf("epoch after insert = %d, want 1", e1)
	}
	if _, ok := s.Current().Object(100); !ok {
		t.Fatal("inserted object not visible in current epoch")
	}

	// Replace a base object: ID 2 moves.
	s.Upsert([]workload.Object{obj(2, 99, 99)})
	if o, ok := s.Current().Object(2); !ok || o.Point.Pos.X != 99 {
		t.Fatalf("upserted object = %+v ok=%v, want moved to x=99", o, ok)
	}
	if got, want := s.Current().Len(), 6; got != want {
		t.Fatalf("Len = %d, want %d (upsert must not duplicate)", got, want)
	}

	// Delete one base and one delta object.
	epoch, removed := s.Delete([]int64{0, 100, 777})
	if removed != 2 {
		t.Fatalf("Delete removed = %d, want 2", removed)
	}
	if epoch != 3 {
		t.Fatalf("epoch after delete = %d, want 3", epoch)
	}
	if _, ok := s.Current().Object(0); ok {
		t.Fatal("deleted base object still visible")
	}
	if _, ok := s.Current().Object(100); ok {
		t.Fatal("deleted delta object still visible")
	}
	want := []int64{1, 2, 3, 4}
	if got := liveIDs(s.Current()); len(got) != len(want) {
		t.Fatalf("live IDs = %v, want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("live IDs = %v, want %v", got, want)
			}
		}
	}

	// Deleting nothing publishes nothing.
	epoch2, removed2 := s.Delete([]int64{0, 777})
	if removed2 != 0 || epoch2 != epoch {
		t.Fatalf("no-op delete = (%d, %d), want (%d, 0)", epoch2, removed2, epoch)
	}
}

func TestInsertRejectsDuplicates(t *testing.T) {
	t.Parallel()
	s := NewAt(grid(3), 0)
	if _, err := s.Insert([]workload.Object{obj(1, 0, 0)}); err == nil {
		t.Fatal("Insert of a live base ID should fail")
	}
	if _, err := s.Insert([]workload.Object{obj(9, 0, 0), obj(9, 1, 1)}); err == nil {
		t.Fatal("Insert with an in-batch duplicate should fail")
	}
	if got := s.Epoch(); got != 0 {
		t.Fatalf("failed inserts must not publish: epoch = %d, want 0", got)
	}
	if _, err := s.Insert([]workload.Object{obj(9, 0, 0)}); err != nil {
		t.Fatalf("Insert of fresh ID failed: %v", err)
	}
	// After a delete the ID is insertable again.
	s.Delete([]int64{9})
	if _, err := s.Insert([]workload.Object{obj(9, 2, 2)}); err != nil {
		t.Fatalf("re-Insert after delete failed: %v", err)
	}
}

func TestPinSeesOneVersion(t *testing.T) {
	t.Parallel()
	s := NewAt(grid(4), 0)
	pinned := s.Pin()
	s.Upsert([]workload.Object{obj(50, 1, 1)})
	s.Delete([]int64{0})

	if pinned.Seq() != 0 {
		t.Fatalf("pinned epoch seq = %d, want 0", pinned.Seq())
	}
	if _, ok := pinned.Object(50); ok {
		t.Fatal("pinned epoch sees an object inserted after the pin")
	}
	if _, ok := pinned.Object(0); !ok {
		t.Fatal("pinned epoch lost an object deleted after the pin")
	}
	if got := s.LiveEpochs(); got != 2 {
		t.Fatalf("LiveEpochs with one pin held = %d, want 2 (pinned + current)", got)
	}
	pinned.Release()
	if got := s.LiveEpochs(); got != 1 {
		t.Fatalf("LiveEpochs after release = %d, want 1", got)
	}
}

func TestReclamationCounts(t *testing.T) {
	t.Parallel()
	reg := obs.NewRegistry()
	s := NewAt(grid(4), 0)
	s.Instrument(reg)
	for i := 0; i < 10; i++ {
		e := s.Pin()
		s.Upsert([]workload.Object{obj(int64(1000+i), float64(i), float64(i))})
		e.Release()
	}
	if got := s.LiveEpochs(); got != 1 {
		t.Fatalf("LiveEpochs after quiesce = %d, want 1", got)
	}
	created, reclaimed := reg.EpochsCreated.Value(), reg.EpochsReclaimed.Value()
	if created != 10 || reclaimed != created {
		t.Fatalf("epochs created/reclaimed = %d/%d, want 10/10", created, reclaimed)
	}
	if got := reg.UpdatesApplied.Value(); got != 10 {
		t.Fatalf("UpdatesApplied = %d, want 10", got)
	}
	if got := reg.Epoch.Value(); got != 10 {
		t.Fatalf("Epoch gauge = %d, want 10", got)
	}
	if got := reg.UpdateBatch().Count(); got != 10 {
		t.Fatalf("UpdateBatch count = %d, want 10", got)
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	t.Parallel()
	s := NewAt(grid(1), 0)
	e := s.Pin()
	e.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release should panic")
		}
	}()
	e.Release()
}

func TestCompactionPreservesContents(t *testing.T) {
	t.Parallel()
	s := NewAt(grid(10), 0)
	s.SetCompactThreshold(4)
	for i := 0; i < 20; i++ {
		if i%3 == 2 {
			s.Delete([]int64{int64(i % 10)})
		} else {
			s.Upsert([]workload.Object{obj(int64(200+i), float64(i), float64(i))})
		}
	}
	cur := s.Current()
	// Epoch sanity: every Object lookup agrees with Table membership.
	seen := make(map[int64]bool)
	for _, o := range cur.Table() {
		if seen[o.ID] {
			t.Fatalf("duplicate ID %d in table", o.ID)
		}
		seen[o.ID] = true
		if got, ok := cur.Object(o.ID); !ok || got != o {
			t.Fatalf("Object(%d) = %+v ok=%v, want %+v", o.ID, got, ok, o)
		}
	}
	if cur.Len() != len(cur.Table()) {
		t.Fatalf("Len = %d but Table has %d entries", cur.Len(), len(cur.Table()))
	}
}

// TestKNNMatchesBruteForce cross-checks the merged (base+delta) KNN and
// WithinDist against linear scans over the table, across compaction states.
func TestKNNMatchesBruteForce(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(99))
	s := NewAt(grid(30), 0)
	s.SetCompactThreshold(8)
	for step := 0; step < 50; step++ {
		switch rng.Intn(3) {
		case 0:
			s.Upsert([]workload.Object{obj(rng.Int63n(60), rng.Float64()*100, rng.Float64()*100)})
		case 1:
			s.Delete([]int64{rng.Int63n(60)})
		default:
			q := geom.Vec2{X: rng.Float64() * 100, Y: rng.Float64() * 100}
			e := s.Pin()
			table := e.Table()

			k := 1 + rng.Intn(5)
			got := e.KNN(q, k, nil)
			wantDists := make([]float64, 0, len(table))
			for _, o := range table {
				wantDists = append(wantDists, o.Point.XY().Dist(q))
			}
			sort.Float64s(wantDists)
			if k > len(wantDists) {
				k = len(wantDists)
			}
			if len(got) != k {
				t.Fatalf("step %d: KNN returned %d items, want %d", step, len(got), k)
			}
			for i, it := range got {
				if d := it.P.Dist(q); d != wantDists[i] {
					t.Fatalf("step %d: KNN[%d] dist = %v, want %v", step, i, d, wantDists[i])
				}
			}

			r := rng.Float64() * 40
			inRange := make(map[int64]bool)
			for _, o := range table {
				if o.Point.XY().Dist(q) <= r {
					inRange[o.ID] = true
				}
			}
			gotRange := e.WithinDist(q, r, nil)
			if len(gotRange) != len(inRange) {
				t.Fatalf("step %d: WithinDist returned %d items, want %d", step, len(gotRange), len(inRange))
			}
			for _, it := range gotRange {
				if !inRange[it.ID] {
					t.Fatalf("step %d: WithinDist returned %d outside radius", step, it.ID)
				}
			}
			e.Release()
		}
	}
}

// TestConcurrentPinRelease hammers pin/release against a writer; run under
// -race this proves the refcount protocol and epoch immutability.
func TestConcurrentPinRelease(t *testing.T) {
	t.Parallel()
	s := NewAt(grid(20), 0)
	s.SetCompactThreshold(6)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := geom.Vec2{X: float64(10 * g), Y: 30}
			for {
				select {
				case <-stop:
					return
				default:
				}
				e := s.Pin()
				seq := e.Seq()
				items := e.KNN(q, 3, nil)
				for _, it := range items {
					if _, ok := e.Object(it.ID); !ok {
						t.Errorf("epoch %d: KNN item %d not in same epoch's table", seq, it.ID)
					}
				}
				if e.Seq() != seq {
					t.Errorf("epoch seq changed under pin: %d -> %d", seq, e.Seq())
				}
				e.Release()
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		if i%4 == 3 {
			s.Delete([]int64{int64(i % 20)})
		} else {
			s.Upsert([]workload.Object{obj(int64(300+i%30), float64(i%50), float64(i%40))})
		}
	}
	close(stop)
	wg.Wait()
	if got := s.LiveEpochs(); got != 1 {
		t.Fatalf("LiveEpochs after quiesce = %d, want 1", got)
	}
}

func TestApplyAtLockstepEpochs(t *testing.T) {
	t.Parallel()
	s := NewAt(grid(5), 0)

	// A logical update touching nothing on this shard still publishes the
	// assigned epoch, keeping a shard fleet in lockstep.
	e, n := s.ApplyAt(nil, nil, 3)
	if e != 3 || n != 0 {
		t.Fatalf("empty ApplyAt = (%d, %d), want (3, 0)", e, n)
	}

	// Deletes apply before upserts; both count as touched.
	e, n = s.ApplyAt([]workload.Object{obj(100, 5, 5), obj(2, 99, 99)}, []int64{0}, 4)
	if e != 4 || n != 3 {
		t.Fatalf("ApplyAt = (%d, %d), want (4, 3)", e, n)
	}
	cur := s.Current()
	if _, ok := cur.Object(0); ok {
		t.Fatal("deleted object 0 still visible")
	}
	if o, ok := cur.Object(2); !ok || o.Point.Pos.X != 99 {
		t.Fatalf("upserted object 2 = %+v ok=%v, want moved to x=99", o, ok)
	}
	if _, ok := cur.Object(100); !ok {
		t.Fatal("inserted object 100 not visible")
	}
	if got, want := cur.Len(), 5; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}

	// Replay is idempotent: an epoch at or below the current one is a no-op.
	e, n = s.ApplyAt([]workload.Object{obj(200, 1, 1)}, nil, 4)
	if e != 4 || n != 0 {
		t.Fatalf("replayed ApplyAt = (%d, %d), want (4, 0)", e, n)
	}
	if _, ok := s.Current().Object(200); ok {
		t.Fatal("replayed upsert must not apply")
	}

	// Deleting an object that lives in the delta layer repacks it.
	e, n = s.ApplyAt(nil, []int64{100}, 7)
	if e != 7 || n != 1 {
		t.Fatalf("delta delete ApplyAt = (%d, %d), want (7, 1)", e, n)
	}
	if _, ok := s.Current().Object(100); ok {
		t.Fatal("delta-deleted object 100 still visible")
	}
	if got := s.Epoch(); got != 7 {
		t.Fatalf("epoch = %d, want 7", got)
	}
}

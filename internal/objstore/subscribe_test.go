package objstore

import (
	"testing"

	"surfknn/internal/geom"
	"surfknn/internal/workload"
)

func TestSubscribeEvents(t *testing.T) {
	s := NewAt([]workload.Object{obj(1, 10, 10), obj(2, 20, 20)}, 0)
	var events []UpdateEvent
	cancel := s.Subscribe(func(ev UpdateEvent) {
		// Pinning inside the callback proves notification happens after the
		// store mutex is released (Pin takes it).
		e := s.Pin()
		if e.Seq() != ev.Epoch {
			t.Errorf("pinned epoch %d inside callback for event epoch %d", e.Seq(), ev.Epoch)
		}
		e.Release()
		events = append(events, ev)
	})

	// Insert of a new ID: one entry, the new position.
	if _, err := s.Insert([]workload.Object{obj(3, 30, 30)}); err != nil {
		t.Fatal(err)
	}
	// Upsert moving an existing object: two entries (old and new position).
	s.Upsert([]workload.Object{obj(1, 50, 50)})
	// Delete: one entry, the position the object last held.
	s.Delete([]int64{2})
	// No-op delete: no epoch, no event.
	s.Delete([]int64{999})
	// ApplyAt below the current epoch: idempotent no-op, no event.
	s.ApplyAt([]workload.Object{obj(9, 1, 1)}, nil, 1)
	// ApplyAt jumping ahead: one event spanning the jump.
	s.ApplyAt([]workload.Object{obj(4, 40, 40)}, []int64{3}, 7)

	if len(events) != 4 {
		t.Fatalf("got %d events, want 4: %+v", len(events), events)
	}
	check := func(i int, prev, epoch uint64, ids []int64, pts []geom.Vec2) {
		t.Helper()
		ev := events[i]
		if ev.Prev != prev || ev.Epoch != epoch || !ev.Regions {
			t.Fatalf("event %d: got prev=%d epoch=%d regions=%t, want %d→%d regions", i, ev.Prev, ev.Epoch, ev.Regions, prev, epoch)
		}
		if len(ev.IDs) != len(ids) || len(ev.Points) != len(pts) {
			t.Fatalf("event %d: got %d ids / %d points, want %d / %d", i, len(ev.IDs), len(ev.Points), len(ids), len(pts))
		}
		for j := range ids {
			if ev.IDs[j] != ids[j] || ev.Points[j] != pts[j] {
				t.Fatalf("event %d entry %d: got id=%d p=%v, want id=%d p=%v", i, j, ev.IDs[j], ev.Points[j], ids[j], pts[j])
			}
		}
	}
	check(0, 0, 1, []int64{3}, []geom.Vec2{{X: 30, Y: 30}})
	check(1, 1, 2, []int64{1, 1}, []geom.Vec2{{X: 10, Y: 10}, {X: 50, Y: 50}})
	check(2, 2, 3, []int64{2}, []geom.Vec2{{X: 20, Y: 20}})
	check(3, 3, 7, []int64{3, 4}, []geom.Vec2{{X: 30, Y: 30}, {X: 40, Y: 40}})

	cancel()
	s.Upsert([]workload.Object{obj(8, 80, 80)})
	if len(events) != 4 {
		t.Fatalf("event delivered after cancel: %+v", events[len(events)-1])
	}
}

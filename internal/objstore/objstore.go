// Package objstore is the versioned dynamic object store: the object table
// and its 2-D R-tree (the paper's Dxy), made updatable under live query
// traffic without a rebuild or a stop-the-world.
//
// Visibility is epoch-based MVCC. Every Insert/Delete/Upsert publishes a new
// immutable Epoch (a monotonically increasing uint64 version): a copy-on-
// write delta layer — upserted objects plus a tombstone set over a bulk-
// packed immutable base — with its own small R-tree overlay. Readers Pin the
// current epoch once per query and see exactly that version for the whole
// query, no matter how many updates commit meanwhile. When the delta grows
// past the compaction threshold, the next update folds everything into a
// fresh bulk-packed base, so read amplification stays bounded.
//
// Retired epochs (those superseded by a newer one) are reclaimed as soon as
// their last pin is released — plain reference counting under the store
// mutex, held only for pointer-sized critical sections. Writers never wait
// for readers; readers never block each other.
//
// A quiesced epoch (empty delta, no tombstones) answers KNN/WithinDist by
// delegating directly to the base R-tree, which makes a store with zero
// pending updates bit-identical — results, node-visit counts and therefore
// Cost.Pages() — to the static SetObjects path this package replaced
// (pinned by the golden test in internal/core).
package objstore

import (
	"fmt"
	"sync"
	"sync/atomic"

	"surfknn/internal/geom"
	"surfknn/internal/index"
	"surfknn/internal/obs"
	"surfknn/internal/workload"
)

// DefaultCompactThreshold is the delta size (upserted objects + tombstones)
// at which the next update folds the delta into a new bulk-packed base.
const DefaultCompactThreshold = 256

// baseTable is the immutable bulk-packed layer of an epoch: the object
// slice, its ID lookup and the STR-packed R-tree, built exactly the way the
// legacy static path built them (items in slice order) so a quiesced store
// reproduces its tree shape bit for bit.
type baseTable struct {
	objects []workload.Object
	byID    map[int64]workload.Object
	tree    *index.RTree
}

func newBaseTable(objs []workload.Object) *baseTable {
	b := &baseTable{objects: objs, byID: make(map[int64]workload.Object, len(objs))}
	items := make([]index.Item, len(objs))
	for i, o := range objs {
		items[i] = index.Item{P: o.Point.XY(), ID: o.ID}
		b.byID[o.ID] = o
	}
	b.tree = index.Bulk(items)
	return b
}

// Epoch is one immutable version of the object set. Obtain one with
// Store.Pin (guaranteeing it stays live until Release) or Store.Current
// (an unpinned peek). All read methods are safe for concurrent use; the
// structures are never mutated after publication.
//
// Invariants: dead holds the base IDs this epoch suppresses (deleted or
// shadowed by an upsert); delta holds the objects added or replaced since
// the base was packed, disjoint from the surviving base IDs. The live set
// is (base − dead) ∪ delta.
type Epoch struct {
	store *Store
	seq   uint64
	base  *baseTable

	delta     []workload.Object
	deltaByID map[int64]int // object ID → index into delta
	dead      map[int64]struct{}
	overlay   *index.RTree // bulk-packed over delta; nil when delta is empty

	// Pin bookkeeping, guarded by store.mu.
	refs    int64
	retired bool

	tableOnce sync.Once
	table     []workload.Object
}

// Seq returns the epoch number.
func (e *Epoch) Seq() uint64 { return e.seq }

// quiesced reports whether this epoch has no pending delta, i.e. the base
// layer alone is the whole truth and queries may delegate to it directly.
func (e *Epoch) quiesced() bool { return len(e.delta) == 0 && len(e.dead) == 0 }

// Len returns the number of live objects in this epoch.
func (e *Epoch) Len() int { return len(e.base.objects) - len(e.dead) + len(e.delta) }

// Object resolves a live object by ID.
func (e *Epoch) Object(id int64) (workload.Object, bool) {
	if i, ok := e.deltaByID[id]; ok {
		return e.delta[i], true
	}
	if _, gone := e.dead[id]; gone {
		return workload.Object{}, false
	}
	o, ok := e.base.byID[id]
	return o, ok
}

// Table returns this epoch's object table: surviving base objects in base
// order followed by the delta in application order. The slice is shared and
// must not be modified (the sklint objstore-write rule enforces this across
// the module); it is materialised lazily and cached.
func (e *Epoch) Table() []workload.Object {
	if e.quiesced() {
		return e.base.objects
	}
	e.tableOnce.Do(func() {
		out := make([]workload.Object, 0, e.Len())
		for _, o := range e.base.objects {
			if _, gone := e.dead[o.ID]; !gone {
				out = append(out, o)
			}
		}
		out = append(out, e.delta...)
		e.table = out
	})
	return e.table
}

// KNN returns the k live objects nearest to q in ascending 2-D distance
// order, charging R-tree node visits to visits. A quiesced epoch delegates
// to the base tree unchanged; otherwise the base search skips tombstoned
// items at discovery time (so it still yields k live base candidates) and
// merges with the delta overlay by distance.
func (e *Epoch) KNN(q geom.Vec2, k int, visits *int64) []index.Item {
	if e.quiesced() {
		return e.base.tree.KNN(q, k, visits)
	}
	fromBase := e.base.tree.KNNFunc(q, k, visits, func(it index.Item) bool {
		_, gone := e.dead[it.ID]
		return !gone
	})
	if e.overlay == nil {
		return fromBase
	}
	fromDelta := e.overlay.KNN(q, k, visits)
	return mergeByDist(q, fromBase, fromDelta, k)
}

// KNNInto is KNN running on caller-owned scratch and appending into dst —
// the warm-query form. A quiesced epoch runs entirely on the reusable
// buffers, so a store with no pending updates answers without allocating;
// an epoch carrying a delta falls back to the merging path (updates are
// rare relative to queries, and the next compaction restores the
// allocation-free route).
func (e *Epoch) KNNInto(q geom.Vec2, k int, visits *int64, sc *index.Scratch, dst []index.Item) []index.Item {
	if e.quiesced() {
		return e.base.tree.KNNInto(q, k, visits, nil, sc, dst)
	}
	return append(dst, e.KNN(q, k, visits)...)
}

// WithinDist returns the live objects within Euclidean distance r of
// center, charging node visits to visits.
func (e *Epoch) WithinDist(center geom.Vec2, r float64, visits *int64) []index.Item {
	if e.quiesced() {
		return e.base.tree.WithinDist(center, r, visits)
	}
	raw := e.base.tree.WithinDist(center, r, visits)
	out := raw[:0:0]
	for _, it := range raw {
		if _, gone := e.dead[it.ID]; !gone {
			out = append(out, it)
		}
	}
	if e.overlay != nil {
		out = append(out, e.overlay.WithinDist(center, r, visits)...)
	}
	return out
}

// WithinDistInto is WithinDist appending into dst — the warm-query
// counterpart of KNNInto, with the same quiesced fast path.
func (e *Epoch) WithinDistInto(center geom.Vec2, r float64, visits *int64, dst []index.Item) []index.Item {
	if e.quiesced() {
		return e.base.tree.WithinDistInto(center, r, visits, dst)
	}
	return append(dst, e.WithinDist(center, r, visits)...)
}

// IndexFlat returns the flat R-tree buffers over exactly this epoch's live
// object set, packing a fresh tree when a delta is pending. Restoring with
// NewAtWithIndex(Table(), Seq(), IndexFlat()) reproduces NewAt(Table(),
// Seq()) bit for bit, because both pack the same items in table order.
func (e *Epoch) IndexFlat() index.Flat {
	if e.quiesced() {
		return e.base.tree.Flatten()
	}
	objs := e.Table()
	items := make([]index.Item, len(objs))
	for i, o := range objs {
		items[i] = index.Item{P: o.Point.XY(), ID: o.ID}
	}
	return index.Bulk(items).Flatten()
}

// mergeByDist merges two distance-sorted item lists into the first k by
// distance to q, preferring the base list on exact ties (deterministic).
func mergeByDist(q geom.Vec2, a, b []index.Item, k int) []index.Item {
	out := make([]index.Item, 0, k)
	i, j := 0, 0
	for len(out) < k && (i < len(a) || j < len(b)) {
		switch {
		case j >= len(b):
			out = append(out, a[i])
			i++
		case i >= len(a):
			out = append(out, b[j])
			j++
		case a[i].P.Dist(q) <= b[j].P.Dist(q):
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	return out
}

// Release drops one pin. Once a retired epoch's last pin is released it is
// reclaimed (counted, removed from the live set); releasing more pins than
// were taken is a caller bug and panics.
func (e *Epoch) Release() {
	if e == nil {
		return
	}
	s := e.store
	s.mu.Lock()
	e.refs--
	if e.refs < 0 {
		s.mu.Unlock()
		panic(fmt.Sprintf("objstore: epoch %d released more times than pinned", e.seq))
	}
	if e.refs == 0 && e.retired {
		s.reclaimLocked(e)
	}
	s.mu.Unlock()
}

// UpdateEvent describes one published epoch to subscribed listeners: the
// epoch transition and the planar footprint of every touched object, which
// is what lets a continuous-query monitor invalidate only the standing
// queries whose search region the update could actually affect.
//
// IDs and Points are parallel. An insert contributes its new position; a
// delete its old one; an upsert that moved an existing object contributes
// BOTH positions (two entries, same ID) — an object leaving a search region
// changes that region's answer just as surely as one entering it. When
// Regions is false the positions are unavailable and a listener must treat
// every standing query as potentially affected.
type UpdateEvent struct {
	Prev    uint64 // epoch superseded by this update
	Epoch   uint64 // epoch published by this update
	IDs     []int64
	Points  []geom.Vec2
	Regions bool
}

// Store is the versioned object store. Create with New or NewAt; one Store
// serves any number of concurrent readers (Pin/Current) and writers
// (Insert/Delete/Upsert). Writers serialise on an internal mutex; readers
// only touch it for the pointer-sized pin/release critical sections.
type Store struct {
	mu      sync.Mutex
	cur     atomic.Pointer[Epoch]
	compact int
	live    int           // epochs published and not yet reclaimed
	reg     *obs.Registry // setup-step field, like TerrainDB.reg; nil = uninstrumented

	// Update listeners. notifyMu serialises writers across the publish +
	// notify sequence so events are delivered in epoch order; it is acquired
	// BEFORE mu and held across the listener calls, which therefore run
	// without mu — a listener may Pin, query and Release freely, but must
	// not call back into the store's writers.
	notifyMu sync.Mutex
	subsMu   sync.Mutex
	subs     map[int]func(UpdateEvent)
	nextSub  int
}

// New returns an empty store at epoch 0.
func New() *Store { return NewAt(nil, 0) }

// NewAt returns a store whose initial version holds objs at the given epoch
// number — how a snapshot restore resumes at the epoch it was saved at.
func NewAt(objs []workload.Object, epoch uint64) *Store {
	s := &Store{compact: DefaultCompactThreshold, live: 1}
	e := &Epoch{store: s, seq: epoch, base: newBaseTable(objs)}
	s.cur.Store(e)
	return s
}

// NewAtWithIndex is NewAt with the base R-tree supplied as pre-packed flat
// buffers — the snapshot-restore path: a v4 snapshot stores the packed tree
// verbatim, so loading skips the STR bulk pack entirely. The buffers must
// index exactly objs (see Epoch.IndexFlat).
func NewAtWithIndex(objs []workload.Object, epoch uint64, f index.Flat) *Store {
	s := &Store{compact: DefaultCompactThreshold, live: 1}
	b := &baseTable{objects: objs, byID: make(map[int64]workload.Object, len(objs))}
	for _, o := range objs {
		b.byID[o.ID] = o
	}
	b.tree = index.FromFlat(f)
	e := &Epoch{store: s, seq: epoch, base: b}
	s.cur.Store(e)
	return s
}

// SetCompactThreshold tunes the delta size that triggers folding into a new
// base (default DefaultCompactThreshold). A setup/test knob: call it before
// updates start flowing.
func (s *Store) SetCompactThreshold(n int) {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	s.compact = n
	s.mu.Unlock()
}

// Instrument attaches an observability registry: update/epoch counters, the
// epoch gauge and the batch-size histogram. A setup step, same contract as
// TerrainDB.Instrument; nil detaches.
func (s *Store) Instrument(reg *obs.Registry) {
	s.mu.Lock()
	s.reg = reg
	cur := s.cur.Load()
	s.mu.Unlock()
	if reg != nil {
		reg.Epoch.Set(int64(cur.seq))
	}
}

// Current returns the latest published epoch without pinning it — a
// read-only peek for metadata (healthz, logs). The epoch is immutable, so
// reading through it is always safe; only code that must see one consistent
// version across several reads needs Pin.
func (s *Store) Current() *Epoch { return s.cur.Load() }

// Epoch returns the latest published epoch number.
func (s *Store) Epoch() uint64 { return s.cur.Load().seq }

// Pin returns the current epoch with a reference held: the epoch stays in
// the live set until the matching Release, no matter how many updates
// supersede it meanwhile.
func (s *Store) Pin() *Epoch {
	s.mu.Lock()
	e := s.cur.Load()
	e.refs++
	s.mu.Unlock()
	return e
}

// LiveEpochs returns how many epochs are published but not yet reclaimed
// (always at least 1 — the current epoch). A quiesced store with all pins
// released reports exactly 1.
func (s *Store) LiveEpochs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live
}

// Subscribe registers fn to be called after every published epoch, with the
// event describing what changed. fn runs on the writer's goroutine, after
// the store mutex is released but while the writer sequence lock is held:
// events arrive in strict epoch order, fn may pin and query the store, but
// it must not call the store's writers (Upsert/Insert/Delete/ApplyAt) or it
// deadlocks. The returned cancel deregisters fn; after cancel returns, fn
// is never called again.
func (s *Store) Subscribe(fn func(UpdateEvent)) (cancel func()) {
	s.subsMu.Lock()
	if s.subs == nil {
		s.subs = make(map[int]func(UpdateEvent))
	}
	id := s.nextSub
	s.nextSub++
	s.subs[id] = fn
	s.subsMu.Unlock()
	return func() {
		s.subsMu.Lock()
		delete(s.subs, id)
		s.subsMu.Unlock()
	}
}

// notify delivers one published event to every listener. Caller holds
// notifyMu (ordering) but not mu (listeners may query the store).
func (s *Store) notify(ev UpdateEvent) {
	s.subsMu.Lock()
	fns := make([]func(UpdateEvent), 0, len(s.subs))
	for _, fn := range s.subs {
		fns = append(fns, fn)
	}
	s.subsMu.Unlock()
	for _, fn := range fns {
		fn(ev)
	}
}

// touch appends one touched object to the event being assembled: for an ID
// already live it records the old position too, so a moved object
// invalidates both the region it left and the region it entered.
func (ev *UpdateEvent) touch(cur *Epoch, o workload.Object) {
	if old, ok := cur.Object(o.ID); ok {
		ev.IDs = append(ev.IDs, o.ID)
		ev.Points = append(ev.Points, old.Point.XY())
	}
	ev.IDs = append(ev.IDs, o.ID)
	ev.Points = append(ev.Points, o.Point.XY())
}

// Upsert installs objs — inserting new IDs, replacing existing ones — and
// publishes the new epoch, returning its number. An empty batch is a no-op
// returning the current epoch.
func (s *Store) Upsert(objs []workload.Object) uint64 {
	if len(objs) == 0 {
		return s.Epoch()
	}
	s.notifyMu.Lock()
	defer s.notifyMu.Unlock()
	s.mu.Lock()
	cur := s.cur.Load()
	ev := UpdateEvent{Prev: cur.seq, Regions: true}
	delta, deltaByID, dead := copyLayers(cur)
	for _, o := range objs {
		ev.touch(cur, o)
		if i, ok := deltaByID[o.ID]; ok {
			delta[i] = o
			continue
		}
		if _, inBase := cur.base.byID[o.ID]; inBase {
			dead[o.ID] = struct{}{} // shadow the base entry
		}
		deltaByID[o.ID] = len(delta)
		delta = append(delta, o)
	}
	seq := s.publishLocked(cur, cur.seq+1, delta, deltaByID, dead, len(objs))
	s.mu.Unlock()
	ev.Epoch = seq
	s.notify(ev)
	return seq
}

// Insert is Upsert that refuses to replace: any ID already live fails the
// whole batch without publishing an epoch.
func (s *Store) Insert(objs []workload.Object) (uint64, error) {
	if len(objs) == 0 {
		return s.Epoch(), nil
	}
	s.notifyMu.Lock()
	defer s.notifyMu.Unlock()
	s.mu.Lock()
	cur := s.cur.Load()
	ev := UpdateEvent{Prev: cur.seq, Regions: true}
	seen := make(map[int64]struct{}, len(objs))
	for _, o := range objs {
		if _, dup := seen[o.ID]; dup {
			s.mu.Unlock()
			return cur.seq, fmt.Errorf("objstore: duplicate ID %d in insert batch", o.ID)
		}
		seen[o.ID] = struct{}{}
		if _, ok := cur.Object(o.ID); ok {
			s.mu.Unlock()
			return cur.seq, fmt.Errorf("objstore: object %d already exists (use Upsert to replace)", o.ID)
		}
	}
	delta, deltaByID, dead := copyLayers(cur)
	for _, o := range objs {
		ev.IDs = append(ev.IDs, o.ID)
		ev.Points = append(ev.Points, o.Point.XY())
		deltaByID[o.ID] = len(delta)
		delta = append(delta, o)
	}
	seq := s.publishLocked(cur, cur.seq+1, delta, deltaByID, dead, len(objs))
	s.mu.Unlock()
	ev.Epoch = seq
	s.notify(ev)
	return seq, nil
}

// Delete removes the given IDs, returning the resulting epoch and how many
// were actually live. IDs not present are ignored (idempotent); if nothing
// was removed no epoch is published.
func (s *Store) Delete(ids []int64) (uint64, int) {
	s.notifyMu.Lock()
	defer s.notifyMu.Unlock()
	s.mu.Lock()
	cur := s.cur.Load()
	ev := UpdateEvent{Prev: cur.seq, Regions: true}
	delta, deltaByID, dead := copyLayers(cur)
	removed := 0
	for _, id := range ids {
		if old, ok := cur.Object(id); ok {
			ev.IDs = append(ev.IDs, id)
			ev.Points = append(ev.Points, old.Point.XY())
		}
		if _, ok := deltaByID[id]; ok {
			delete(deltaByID, id)
			removed++
			continue
		}
		if _, inBase := cur.base.byID[id]; inBase {
			if _, gone := dead[id]; !gone {
				dead[id] = struct{}{}
				removed++
			}
		}
	}
	if removed == 0 {
		s.mu.Unlock()
		return cur.seq, 0
	}
	// Rebuild the delta without the deleted entries (deltaByID now holds
	// exactly the survivors).
	packed := make([]workload.Object, 0, len(deltaByID))
	for _, o := range delta {
		if i, ok := deltaByID[o.ID]; ok && delta[i].ID == o.ID {
			packed = append(packed, o)
		}
	}
	for i, o := range packed {
		deltaByID[o.ID] = i
	}
	seq := s.publishLocked(cur, cur.seq+1, packed, deltaByID, dead, removed)
	s.mu.Unlock()
	ev.Epoch = seq
	s.notify(ev)
	return seq, removed
}

// ApplyAt applies one logical update — deletes first, then upserts — and
// publishes the result at exactly epoch `at`. This is the sharded-serving
// primitive: a coordinator assigns every logical update one epoch number and
// replays it to each shard, and because ApplyAt always publishes (even when
// the shard owns none of the touched objects) every shard's epoch advances in
// lockstep, so the merged X-Epoch equals the unsharded epoch. Replay is
// idempotent: an update at or below the current epoch is a no-op returning
// the current epoch number. Returns the published epoch and how many objects
// the batch actually touched on this shard.
func (s *Store) ApplyAt(upserts []workload.Object, deleteIDs []int64, at uint64) (uint64, int) {
	s.notifyMu.Lock()
	defer s.notifyMu.Unlock()
	s.mu.Lock()
	cur := s.cur.Load()
	if at <= cur.seq {
		s.mu.Unlock()
		return cur.seq, 0
	}
	ev := UpdateEvent{Prev: cur.seq, Regions: true}
	delta, deltaByID, dead := copyLayers(cur)
	applied := 0
	for _, id := range deleteIDs {
		if old, ok := cur.Object(id); ok {
			ev.IDs = append(ev.IDs, id)
			ev.Points = append(ev.Points, old.Point.XY())
		}
		if _, ok := deltaByID[id]; ok {
			delete(deltaByID, id)
			applied++
			continue
		}
		if _, inBase := cur.base.byID[id]; inBase {
			if _, gone := dead[id]; !gone {
				dead[id] = struct{}{}
				applied++
			}
		}
	}
	if len(deltaByID) != len(delta) {
		// Deletions removed delta entries: repack (same shape as Delete).
		packed := make([]workload.Object, 0, len(deltaByID))
		for _, o := range delta {
			if i, ok := deltaByID[o.ID]; ok && delta[i].ID == o.ID {
				packed = append(packed, o)
			}
		}
		delta = packed
		for i, o := range delta {
			deltaByID[o.ID] = i
		}
	}
	for _, o := range upserts {
		ev.touch(cur, o)
		if i, ok := deltaByID[o.ID]; ok {
			delta[i] = o
		} else {
			if _, inBase := cur.base.byID[o.ID]; inBase {
				dead[o.ID] = struct{}{} // shadow the base entry
			}
			deltaByID[o.ID] = len(delta)
			delta = append(delta, o)
		}
		applied++
	}
	seq := s.publishLocked(cur, at, delta, deltaByID, dead, applied)
	s.mu.Unlock()
	ev.Epoch = seq
	s.notify(ev)
	return seq, applied
}

// copyLayers clones the mutable delta layer of cur for copy-on-write.
func copyLayers(cur *Epoch) ([]workload.Object, map[int64]int, map[int64]struct{}) {
	delta := append([]workload.Object(nil), cur.delta...)
	deltaByID := make(map[int64]int, len(cur.deltaByID)+1)
	for id, i := range cur.deltaByID {
		deltaByID[id] = i
	}
	dead := make(map[int64]struct{}, len(cur.dead)+1)
	for id := range cur.dead {
		dead[id] = struct{}{}
	}
	return delta, deltaByID, dead
}

// publishLocked builds the next epoch from the prepared layers at the given
// sequence number, compacting into a fresh base when the delta has outgrown
// the threshold, publishes it and retires cur. Local updates pass cur.seq+1;
// ApplyAt passes the coordinator-assigned epoch. Caller holds s.mu.
func (s *Store) publishLocked(cur *Epoch, seq uint64, delta []workload.Object, deltaByID map[int64]int, dead map[int64]struct{}, applied int) uint64 {
	next := &Epoch{store: s, seq: seq}
	if len(delta)+len(dead) >= s.compact {
		// Fold everything into a new bulk-packed base: surviving base
		// objects in base order, then the delta in application order.
		merged := make([]workload.Object, 0, len(cur.base.objects)-len(dead)+len(delta))
		for _, o := range cur.base.objects {
			if _, gone := dead[o.ID]; !gone {
				merged = append(merged, o)
			}
		}
		merged = append(merged, delta...)
		next.base = newBaseTable(merged)
	} else {
		next.base = cur.base
		next.delta = delta
		next.deltaByID = deltaByID
		next.dead = dead
		if len(delta) > 0 {
			items := make([]index.Item, len(delta))
			for i, o := range delta {
				items[i] = index.Item{P: o.Point.XY(), ID: o.ID}
			}
			next.overlay = index.Bulk(items)
		}
	}
	s.cur.Store(next)
	s.live++
	cur.retired = true
	if cur.refs == 0 {
		s.reclaimLocked(cur)
	}
	if s.reg != nil {
		s.reg.UpdatesApplied.Add(int64(applied))
		s.reg.EpochsCreated.Add(1)
		s.reg.Epoch.Set(int64(next.seq))
		s.reg.UpdateBatch().Observe(int64(applied))
	}
	return next.seq
}

// reclaimLocked retires e from the live set. In Go the garbage collector
// frees the memory; what reclamation buys is the bookkeeping proof that the
// reference-counting protocol converges (LiveEpochs returns to 1 once the
// store quiesces) — in a disk-backed deployment this is where pages would
// be returned. Caller holds s.mu.
func (s *Store) reclaimLocked(*Epoch) {
	s.live--
	if s.reg != nil {
		s.reg.EpochsReclaimed.Add(1)
	}
}

package workload

import (
	"math"
	"reflect"
	"testing"
)

func TestMoveMixDeterministic(t *testing.T) {
	m, loc := setup(t)
	cfg := MoveMixConfig{Seed: 17, Walkers: 4, Step: 3}
	a, err := NewMoveMix(m, loc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMoveMix(m, loc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Starts(), b.Starts()) {
		t.Fatal("equal-config mixes placed walkers differently")
	}
	for i := 0; i < 300; i++ {
		if opA, opB := a.Next(), b.Next(); !reflect.DeepEqual(opA, opB) {
			t.Fatalf("op %d diverged between equal-config mixes:\n%+v\n%+v", i, opA, opB)
		}
	}
}

func TestMoveMixOps(t *testing.T) {
	m, loc := setup(t)
	const step = 2.5
	x, err := NewMoveMix(m, loc, MoveMixConfig{Seed: 3, Walkers: 5, Step: step})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(x.Starts()); got != 5 {
		t.Fatalf("got %d walkers, want 5", got)
	}
	pos := make(map[int][2]float64, 5)
	for i, sp := range x.Starts() {
		pos[i] = [2]float64{sp.XY().X, sp.XY().Y}
	}
	counts := map[MoveKind]int{}
	for i := 0; i < 1000; i++ {
		op := x.Next()
		counts[op.Kind]++
		switch op.Kind {
		case MoveOpMove:
			if op.Walker < 0 || op.Walker >= 5 {
				t.Fatalf("op %d: walker %d out of range", i, op.Walker)
			}
			p := op.Point.XY()
			prev := pos[op.Walker]
			// Every move is one bounded step of the walker's own walk.
			if math.Abs(p.X-prev[0]) > step || math.Abs(p.Y-prev[1]) > step {
				t.Fatalf("op %d: walker %d jumped from %v to %v (step %g)", i, op.Walker, prev, p, step)
			}
			pos[op.Walker] = [2]float64{p.X, p.Y}
		case MoveOpUpdate:
			if len(op.Objects) != 1 || op.Objects[0].ID < 2_000_000 {
				t.Fatalf("op %d: malformed update %+v", i, op)
			}
		default:
			t.Fatalf("op %d: unknown kind %v", i, op.Kind)
		}
	}
	if counts[MoveOpMove] == 0 || counts[MoveOpUpdate] == 0 {
		t.Fatalf("mix never emitted both kinds: %v", counts)
	}
	// 50:1 default: moves must dominate.
	if counts[MoveOpMove] < 20*counts[MoveOpUpdate] {
		t.Fatalf("move/update ratio off: %v", counts)
	}
}

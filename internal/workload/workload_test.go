package workload

import (
	"testing"

	"surfknn/internal/dem"
	"surfknn/internal/mesh"
)

func setup(t *testing.T) (*mesh.Mesh, *mesh.Locator) {
	t.Helper()
	m := mesh.FromGrid(dem.Synthesize(dem.EP, 16, 10, 3))
	return m, mesh.NewLocator(m)
}

func TestUniformObjectsDensity(t *testing.T) {
	m, loc := setup(t)
	// 160 m x 160 m = 0.0256 km²; density 1000/km² → ~26 objects.
	objs, err := UniformObjects(m, loc, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) < 20 || len(objs) > 32 {
		t.Errorf("object count = %d, want ≈26", len(objs))
	}
	ext := m.Extent()
	seen := map[int64]bool{}
	for _, o := range objs {
		if !ext.Contains(o.Point.XY()) {
			t.Errorf("object %d outside extent: %v", o.ID, o.Point.Pos)
		}
		if seen[o.ID] {
			t.Errorf("duplicate ID %d", o.ID)
		}
		seen[o.ID] = true
		if o.Point.Face == mesh.NoFace {
			t.Errorf("object %d has no face", o.ID)
		}
	}
}

func TestUniformObjectsMinimum(t *testing.T) {
	m, loc := setup(t)
	objs, err := UniformObjects(m, loc, 0.0001, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 {
		t.Errorf("tiny density should still give 1 object, got %d", len(objs))
	}
}

func TestRandomObjectsDeterministic(t *testing.T) {
	m, loc := setup(t)
	a, _ := RandomObjects(m, loc, 20, 7)
	b, _ := RandomObjects(m, loc, 20, 7)
	for i := range a {
		if a[i].Point.Pos != b[i].Point.Pos {
			t.Fatal("same seed must give identical objects")
		}
	}
	c, _ := RandomObjects(m, loc, 20, 8)
	if a[0].Point.Pos == c[0].Point.Pos {
		t.Error("different seeds should differ")
	}
}

func TestRandomQueriesMargin(t *testing.T) {
	m, loc := setup(t)
	margin := 30.0
	qs, err := RandomQueries(m, loc, 50, margin, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 50 {
		t.Fatalf("queries = %d", len(qs))
	}
	ext := m.Extent()
	for _, q := range qs {
		p := q.XY()
		if p.X < ext.MinX+margin || p.X > ext.MaxX-margin ||
			p.Y < ext.MinY+margin || p.Y > ext.MaxY-margin {
			t.Errorf("query %v violates margin", p)
		}
	}
	// Margin too large errors.
	if _, err := RandomQueries(m, loc, 1, 1000, 9); err == nil {
		t.Error("oversized margin should error")
	}
}

package workload

import (
	"reflect"
	"testing"
)

func TestUpdateMixDeterministic(t *testing.T) {
	m, loc := setup(t)
	initial, err := RandomObjects(m, loc, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := MixConfig{Seed: 9, Batch: 2}
	a, err := NewUpdateMix(m, loc, initial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewUpdateMix(m, loc, initial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if opA, opB := a.Next(), b.Next(); !reflect.DeepEqual(opA, opB) {
			t.Fatalf("op %d diverged between equal-config mixes:\n%+v\n%+v", i, opA, opB)
		}
	}
}

func TestUpdateMixOps(t *testing.T) {
	m, loc := setup(t)
	initial, err := RandomObjects(m, loc, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUpdateMix(m, loc, initial, MixConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ext := m.Extent()
	live := map[int64]bool{}
	for _, o := range initial {
		live[o.ID] = true
	}
	counts := map[OpKind]int{}
	for i := 0; i < 1000; i++ {
		op := u.Next()
		counts[op.Kind]++
		switch op.Kind {
		case OpQuery:
			if !ext.Contains(op.Query.XY()) {
				t.Fatalf("op %d: query point %v outside extent", i, op.Query.Pos)
			}
		case OpInsert:
			for _, o := range op.Objects {
				if live[o.ID] {
					t.Fatalf("op %d: insert re-issues live id %d", i, o.ID)
				}
				if !ext.Contains(o.Point.XY()) {
					t.Fatalf("op %d: object %d outside extent", i, o.ID)
				}
				live[o.ID] = true
			}
		case OpDelete:
			for _, id := range op.IDs {
				if !live[id] {
					t.Fatalf("op %d: delete names dead id %d", i, id)
				}
				delete(live, id)
			}
		}
		if u.Live() != len(live) {
			t.Fatalf("op %d: mix live count %d, independent count %d", i, u.Live(), len(live))
		}
	}
	// 8:1:1 default over 1000 draws: queries clearly dominate, and both
	// update kinds occur.
	if counts[OpQuery] < 700 || counts[OpInsert] == 0 || counts[OpDelete] == 0 {
		t.Errorf("op counts = %v, want ~800/100/100", counts)
	}
}

func TestUpdateMixNeverEmpties(t *testing.T) {
	m, loc := setup(t)
	// Delete-only mix over a tiny initial set: every delete that cannot be
	// served becomes an insert, so the live set never reaches zero.
	u, err := NewUpdateMix(m, loc, nil, MixConfig{QueryWeight: 0, InsertWeight: 0, DeleteWeight: 1, Batch: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		op := u.Next()
		if op.Kind == OpQuery {
			t.Fatalf("op %d: query from a zero-query-weight mix", i)
		}
	}
	if u.Live() == 0 {
		t.Error("live set emptied")
	}
}

func TestUpdateMixRejectsNoWeights(t *testing.T) {
	m, loc := setup(t)
	// All-negative weights normalize to zero and must be rejected.
	if _, err := NewUpdateMix(m, loc, nil, MixConfig{QueryWeight: -1, InsertWeight: -1, DeleteWeight: -1}); err == nil {
		t.Error("weightless mix accepted")
	}
}

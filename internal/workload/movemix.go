package workload

import (
	"fmt"
	"math/rand"

	"surfknn/internal/geom"
	"surfknn/internal/mesh"
)

// The move-mix generator: a deterministic stream of continuous-query moves
// — a population of walkers random-walking across the terrain — optionally
// interleaved with object updates, for exercising the continuous-query
// subsystem (safe-region hit rates, epoch invalidation) under configurable
// mobility. The step length is the experiment's main knob: small steps stay
// inside safe regions (high hit rate), large steps burst out of them.

// MoveKind discriminates the operations a move mix emits.
type MoveKind int

const (
	// MoveOpMove moves walker MoveOp.Walker to MoveOp.Point.
	MoveOpMove MoveKind = iota
	// MoveOpUpdate upserts MoveOp.Objects into the store, publishing a new
	// epoch (and invalidating the subscriptions it lands near).
	MoveOpUpdate
)

// MoveOp is one operation drawn from the mix.
type MoveOp struct {
	Kind    MoveKind
	Walker  int               // MoveOpMove: which walker moves
	Point   mesh.SurfacePoint // MoveOpMove: its new position
	Objects []Object          // MoveOpUpdate: the batch to upsert
}

// MoveMixConfig tunes a move mix. The zero value means: 8 walkers, step
// 1/100 of the terrain width, 50:1 move/update, ids from 2_000_000, seed 0.
type MoveMixConfig struct {
	Walkers      int     // concurrent movers (default 8)
	Step         float64 // max per-axis step length (default extent width/100)
	MoveWeight   int     // relative frequency of moves (default 50)
	UpdateWeight int     // relative frequency of object updates (default 1)
	StartID      int64   // first id assigned to upserted objects (default 2e6)
	Seed         int64   // rng seed; equal configs yield equal streams
}

func (c MoveMixConfig) withDefaults(ext geom.MBR) MoveMixConfig {
	if c.Walkers <= 0 {
		c.Walkers = 8
	}
	if c.Step <= 0 {
		c.Step = ext.Width() / 100
	}
	if c.MoveWeight == 0 && c.UpdateWeight == 0 {
		c.MoveWeight, c.UpdateWeight = 50, 1
	}
	if c.MoveWeight < 0 {
		c.MoveWeight = 0
	}
	if c.UpdateWeight < 0 {
		c.UpdateWeight = 0
	}
	if c.StartID <= 0 {
		c.StartID = 2_000_000
	}
	return c
}

// MoveMix generates a deterministic stream of walker moves and object
// updates. Each walker holds a planar position; a move op steps it by a
// uniform offset in [-Step, Step] per axis, resampling steps that would
// leave the surface. Not safe for concurrent use; drivers running walkers
// in parallel should draw the stream single-threaded and fan out the ops.
type MoveMix struct {
	m      *mesh.Mesh
	loc    *mesh.Locator
	cfg    MoveMixConfig
	rng    *rand.Rand
	pos    []geom.Vec2 // walkers' current planar positions
	starts []mesh.SurfacePoint
	nextID int64
}

// NewMoveMix builds a mix over the terrain, placing every walker uniformly
// at random.
func NewMoveMix(m *mesh.Mesh, loc *mesh.Locator, cfg MoveMixConfig) (*MoveMix, error) {
	cfg = cfg.withDefaults(m.Extent())
	if cfg.MoveWeight+cfg.UpdateWeight <= 0 {
		return nil, fmt.Errorf("workload: move mix has no positive weight")
	}
	x := &MoveMix{
		m:      m,
		loc:    loc,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		nextID: cfg.StartID,
	}
	x.pos = make([]geom.Vec2, cfg.Walkers)
	x.starts = make([]mesh.SurfacePoint, cfg.Walkers)
	for i := range x.pos {
		sp := x.surfacePoint()
		x.starts[i] = sp
		x.pos[i] = sp.XY()
	}
	return x, nil
}

// Starts returns every walker's initial surface position — the points a
// driver subscribes at before applying the stream.
func (x *MoveMix) Starts() []mesh.SurfacePoint { return x.starts }

// Next draws the next operation.
func (x *MoveMix) Next() MoveOp {
	total := x.cfg.MoveWeight + x.cfg.UpdateWeight
	if x.rng.Intn(total) < x.cfg.MoveWeight {
		return x.moveOp()
	}
	return x.updateOp()
}

func (x *MoveMix) moveOp() MoveOp {
	w := x.rng.Intn(len(x.pos))
	// Step the walker, resampling proposals that fall off the surface (at
	// the terrain rim most proposals point outward; the walk reflects back
	// in whatever direction next succeeds).
	for {
		p := geom.Vec2{
			X: x.pos[w].X + (2*x.rng.Float64()-1)*x.cfg.Step,
			Y: x.pos[w].Y + (2*x.rng.Float64()-1)*x.cfg.Step,
		}
		sp, err := mesh.MakeSurfacePoint(x.m, x.loc, p)
		if err != nil {
			continue
		}
		x.pos[w] = sp.XY()
		return MoveOp{Kind: MoveOpMove, Walker: w, Point: sp}
	}
}

func (x *MoveMix) updateOp() MoveOp {
	o := Object{ID: x.nextID, Point: x.surfacePoint()}
	x.nextID++
	return MoveOp{Kind: MoveOpUpdate, Objects: []Object{o}}
}

// surfacePoint draws a uniform surface position, resampling numerical
// boundary failures like RandomObjects does.
func (x *MoveMix) surfacePoint() mesh.SurfacePoint {
	ext := x.m.Extent()
	for {
		p := geom.Vec2{
			X: ext.MinX + x.rng.Float64()*ext.Width(),
			Y: ext.MinY + x.rng.Float64()*ext.Height(),
		}
		sp, err := mesh.MakeSurfacePoint(x.m, x.loc, p)
		if err != nil {
			continue
		}
		return sp
	}
}

// Package workload generates the experimental workloads of the paper:
// object points uniformly distributed on the terrain surface with a chosen
// density (objects per km²) and query points, all reproducible by seed.
package workload

import (
	"fmt"
	"math/rand"

	"surfknn/internal/geom"
	"surfknn/internal/mesh"
)

// Object is a data point lying on the terrain surface.
type Object struct {
	ID    int64
	Point mesh.SurfacePoint
}

// UniformObjects places density·areaKm² objects uniformly at random on the
// surface (positions uniform in the (x,y) projection, lifted to the
// surface), mirroring §5.1: "The object points are uniformly distributed on
// the surface with varying object density 1 <= o <= 10".
func UniformObjects(m *mesh.Mesh, loc *mesh.Locator, densityPerKm2 float64, seed int64) ([]Object, error) {
	ext := m.Extent()
	areaKm2 := ext.Width() * ext.Height() / 1e6
	n := int(densityPerKm2*areaKm2 + 0.5)
	if n < 1 {
		n = 1
	}
	return RandomObjects(m, loc, n, seed)
}

// RandomObjects places exactly n objects uniformly at random on the surface.
func RandomObjects(m *mesh.Mesh, loc *mesh.Locator, n int, seed int64) ([]Object, error) {
	rng := rand.New(rand.NewSource(seed))
	ext := m.Extent()
	objs := make([]Object, 0, n)
	for len(objs) < n {
		p := geom.Vec2{
			X: ext.MinX + rng.Float64()*ext.Width(),
			Y: ext.MinY + rng.Float64()*ext.Height(),
		}
		sp, err := mesh.MakeSurfacePoint(m, loc, p)
		if err != nil {
			continue // numerical boundary case: resample
		}
		objs = append(objs, Object{ID: int64(len(objs)), Point: sp})
	}
	return objs, nil
}

// PartitionObjects splits objs into buckets slices by the given bucket
// function (values outside [0, buckets) are dropped). The split preserves
// input order within each bucket, so a deterministic input yields a
// deterministic partition — the property the shard tiler relies on for
// reproducible cuts.
func PartitionObjects(objs []Object, buckets int, bucket func(Object) int) [][]Object {
	parts := make([][]Object, buckets)
	for _, o := range objs {
		b := bucket(o)
		if b < 0 || b >= buckets {
			continue
		}
		parts[b] = append(parts[b], o)
	}
	return parts
}

// RandomQueries returns n query points uniformly distributed on the
// surface, kept away from the boundary by the given margin so that search
// regions are meaningful.
func RandomQueries(m *mesh.Mesh, loc *mesh.Locator, n int, margin float64, seed int64) ([]mesh.SurfacePoint, error) {
	rng := rand.New(rand.NewSource(seed))
	ext := m.Extent()
	if 2*margin >= ext.Width() || 2*margin >= ext.Height() {
		return nil, fmt.Errorf("workload: margin %g too large for extent %v", margin, ext)
	}
	out := make([]mesh.SurfacePoint, 0, n)
	for len(out) < n {
		p := geom.Vec2{
			X: ext.MinX + margin + rng.Float64()*(ext.Width()-2*margin),
			Y: ext.MinY + margin + rng.Float64()*(ext.Height()-2*margin),
		}
		sp, err := mesh.MakeSurfacePoint(m, loc, p)
		if err != nil {
			continue
		}
		out = append(out, sp)
	}
	return out, nil
}

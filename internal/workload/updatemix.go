package workload

import (
	"fmt"
	"math/rand"

	"surfknn/internal/geom"
	"surfknn/internal/mesh"
)

// The update-mix generator: a deterministic stream of interleaved query,
// insert and delete operations for exercising the versioned object store
// under realistic read/write traffic (benchmarks, soak tests). The mix is
// configured by integer weights, so e.g. 8:1:1 yields ~80% queries.

// OpKind discriminates the operations an update mix emits.
type OpKind int

const (
	OpQuery  OpKind = iota // run a k-NN query at Op.Query
	OpInsert               // upsert Op.Objects into the store
	OpDelete               // delete Op.IDs from the store
)

// Op is one operation drawn from the mix.
type Op struct {
	Kind    OpKind
	Objects []Object          // OpInsert: the batch to upsert
	IDs     []int64           // OpDelete: the ids to delete
	Query   mesh.SurfacePoint // OpQuery: where to query
}

// MixConfig tunes an update mix. The zero value means: 8:1:1
// query/insert/delete, batch size 1, ids from 1_000_000, seed 0.
type MixConfig struct {
	QueryWeight  int   // relative frequency of queries (default 8)
	InsertWeight int   // relative frequency of inserts (default 1)
	DeleteWeight int   // relative frequency of deletes (default 1)
	Batch        int   // objects per insert / ids per delete (default 1)
	StartID      int64 // first id assigned to inserted objects (default 1e6)
	Seed         int64 // rng seed; equal configs yield equal streams
}

func (c MixConfig) withDefaults() MixConfig {
	if c.QueryWeight == 0 && c.InsertWeight == 0 && c.DeleteWeight == 0 {
		c.QueryWeight, c.InsertWeight, c.DeleteWeight = 8, 1, 1
	}
	if c.QueryWeight < 0 {
		c.QueryWeight = 0
	}
	if c.InsertWeight < 0 {
		c.InsertWeight = 0
	}
	if c.DeleteWeight < 0 {
		c.DeleteWeight = 0
	}
	if c.Batch < 1 {
		c.Batch = 1
	}
	if c.StartID <= 0 {
		c.StartID = 1_000_000
	}
	return c
}

// UpdateMix generates a deterministic operation stream. It tracks the live
// id set itself (inserts add, deletes remove), so deletes always name ids
// that are live in the stream's own history — a driver that applies every
// op in order never issues a guaranteed-miss delete. Not safe for
// concurrent use; drivers running ops in parallel should draw the stream
// single-threaded and fan out the ops.
type UpdateMix struct {
	m      *mesh.Mesh
	loc    *mesh.Locator
	cfg    MixConfig
	rng    *rand.Rand
	live   []int64 // ids the stream's history leaves live
	nextID int64
}

// NewUpdateMix builds a mix over the terrain. initial seeds the live id
// set (the objects already installed in the store the driver will apply
// ops to); the mix never re-issues an id that is live.
func NewUpdateMix(m *mesh.Mesh, loc *mesh.Locator, initial []Object, cfg MixConfig) (*UpdateMix, error) {
	cfg = cfg.withDefaults()
	if cfg.QueryWeight+cfg.InsertWeight+cfg.DeleteWeight <= 0 {
		return nil, fmt.Errorf("workload: update mix has no positive weight")
	}
	u := &UpdateMix{
		m:      m,
		loc:    loc,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		nextID: cfg.StartID,
	}
	for _, o := range initial {
		u.live = append(u.live, o.ID)
		if o.ID >= u.nextID {
			u.nextID = o.ID + 1
		}
	}
	return u, nil
}

// Live returns how many ids the stream's history leaves live.
func (u *UpdateMix) Live() int { return len(u.live) }

// Next draws the next operation. A delete that would leave the live set
// empty becomes an insert instead — the stream never empties the store,
// so queries stay answerable.
func (u *UpdateMix) Next() Op {
	total := u.cfg.QueryWeight + u.cfg.InsertWeight + u.cfg.DeleteWeight
	r := u.rng.Intn(total)
	switch {
	case r < u.cfg.QueryWeight:
		return Op{Kind: OpQuery, Query: u.surfacePoint()}
	case r < u.cfg.QueryWeight+u.cfg.InsertWeight || len(u.live) <= u.cfg.Batch:
		return u.insertOp()
	default:
		return u.deleteOp()
	}
}

func (u *UpdateMix) insertOp() Op {
	objs := make([]Object, u.cfg.Batch)
	for i := range objs {
		objs[i] = Object{ID: u.nextID, Point: u.surfacePoint()}
		u.live = append(u.live, u.nextID)
		u.nextID++
	}
	return Op{Kind: OpInsert, Objects: objs}
}

func (u *UpdateMix) deleteOp() Op {
	ids := make([]int64, u.cfg.Batch)
	for i := range ids {
		// Swap-remove a uniformly chosen live id.
		j := u.rng.Intn(len(u.live))
		ids[i] = u.live[j]
		u.live[j] = u.live[len(u.live)-1]
		u.live = u.live[:len(u.live)-1]
	}
	return Op{Kind: OpDelete, IDs: ids}
}

// surfacePoint draws a uniform surface position, resampling numerical
// boundary failures like RandomObjects does.
func (u *UpdateMix) surfacePoint() mesh.SurfacePoint {
	ext := u.m.Extent()
	for {
		p := geom.Vec2{
			X: ext.MinX + u.rng.Float64()*ext.Width(),
			Y: ext.MinY + u.rng.Float64()*ext.Height(),
		}
		sp, err := mesh.MakeSurfacePoint(u.m, u.loc, p)
		if err != nil {
			continue
		}
		return sp
	}
}

package storage

import (
	"container/list"
	"fmt"
)

// Stats counts buffer-pool activity. Accesses is the paper's "number of
// disk pages accessed" metric (logical page reads requested by queries);
// Misses are the subset that had to hit the page file.
type Stats struct {
	Accesses  int64
	Misses    int64
	Evictions int64
	Writes    int64
}

// Frame is a pinned page in the buffer pool. Data is valid until Unpin.
type Frame struct {
	ID    PageID
	Data  []byte
	pins  int
	dirty bool
	elem  *list.Element
}

// BufferPool caches pages with LRU replacement. Pinned pages are never
// evicted. Not safe for concurrent use (queries in this library are
// single-threaded, as in the paper's experiments).
type BufferPool struct {
	file     PageFile
	capacity int
	frames   map[PageID]*Frame
	lru      *list.List // front = most recently used; holds unpinned frames
	stats    Stats
}

// NewBufferPool wraps file with a pool of the given capacity (pages).
func NewBufferPool(file PageFile, capacity int) *BufferPool {
	if capacity < 1 {
		panic(fmt.Sprintf("storage: buffer pool capacity %d", capacity))
	}
	return &BufferPool{
		file:     file,
		capacity: capacity,
		frames:   make(map[PageID]*Frame, capacity),
		lru:      list.New(),
	}
}

// Stats returns a copy of the counters.
func (bp *BufferPool) Stats() Stats { return bp.stats }

// ResetStats zeroes the counters (used between experiment runs).
func (bp *BufferPool) ResetStats() { bp.stats = Stats{} }

// Alloc allocates a fresh page and returns it pinned.
func (bp *BufferPool) Alloc() (*Frame, error) {
	id, err := bp.file.Alloc()
	if err != nil {
		return nil, err
	}
	if err := bp.makeRoom(); err != nil {
		return nil, err
	}
	fr := &Frame{ID: id, Data: make([]byte, PageSize), pins: 1, dirty: true}
	bp.frames[id] = fr
	return fr, nil
}

// Get returns the page pinned, fetching it from the file on a miss.
func (bp *BufferPool) Get(id PageID) (*Frame, error) {
	bp.stats.Accesses++
	if fr, ok := bp.frames[id]; ok {
		if fr.pins == 0 && fr.elem != nil {
			bp.lru.Remove(fr.elem)
			fr.elem = nil
		}
		fr.pins++
		return fr, nil
	}
	bp.stats.Misses++
	if err := bp.makeRoom(); err != nil {
		return nil, err
	}
	fr := &Frame{ID: id, Data: make([]byte, PageSize), pins: 1}
	if err := bp.file.ReadPage(id, fr.Data); err != nil {
		return nil, err
	}
	bp.frames[id] = fr
	return fr, nil
}

// Unpin releases one pin; dirty marks the page for write-back.
func (bp *BufferPool) Unpin(fr *Frame, dirty bool) {
	if fr.pins <= 0 {
		panic(fmt.Sprintf("storage: unpin of unpinned page %d", fr.ID))
	}
	if dirty {
		fr.dirty = true
	}
	fr.pins--
	if fr.pins == 0 {
		fr.elem = bp.lru.PushFront(fr)
	}
}

// makeRoom evicts the least recently used unpinned frame if the pool is at
// capacity.
func (bp *BufferPool) makeRoom() error {
	for len(bp.frames) >= bp.capacity {
		back := bp.lru.Back()
		if back == nil {
			return fmt.Errorf("%w: all %d pages pinned", ErrPoolExhausted, len(bp.frames))
		}
		victim := back.Value.(*Frame)
		bp.lru.Remove(back)
		victim.elem = nil
		if victim.dirty {
			if err := bp.file.WritePage(victim.ID, victim.Data); err != nil {
				return err
			}
			bp.stats.Writes++
		}
		delete(bp.frames, victim.ID)
		bp.stats.Evictions++
	}
	return nil
}

// Flush writes every dirty cached page back to the file.
func (bp *BufferPool) Flush() error {
	for _, fr := range bp.frames {
		if fr.dirty {
			if err := bp.file.WritePage(fr.ID, fr.Data); err != nil {
				return err
			}
			fr.dirty = false
			bp.stats.Writes++
		}
	}
	return nil
}

// PinnedCount reports how many frames are currently pinned (testing aid).
func (bp *BufferPool) PinnedCount() int {
	n := 0
	for _, fr := range bp.frames {
		if fr.pins > 0 {
			n++
		}
	}
	return n
}

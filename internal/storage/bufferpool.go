package storage

import (
	"container/list"
	"fmt"
	"sync"

	"surfknn/internal/obs"
)

// Stats counts buffer-pool activity. Accesses is the paper's "number of
// disk pages accessed" metric (logical page reads requested by queries);
// Misses are the subset that had to hit the page file.
type Stats struct {
	Accesses  int64
	Misses    int64
	Evictions int64
	Writes    int64
}

// IOAccount accumulates the logical page accesses performed on behalf of
// one query. It is the per-query counterpart of the pool-wide Stats: each
// query session owns one, threads it through the paged reads it issues, and
// reads it back unsynchronised — the account is touched by exactly one
// goroutine, so concurrent queries never contend on (or corrupt) each
// other's page-access numbers.
type IOAccount struct {
	Accesses int64
	Misses   int64
}

// Frame is a pinned page in the buffer pool. Data is valid until Unpin.
// Pinned frames are never evicted, so concurrent readers may use Data
// without holding any pool lock; the pin/dirty bookkeeping itself is
// guarded by the pool's mutex.
type Frame struct {
	ID    PageID
	Data  []byte
	pins  int
	dirty bool
	elem  *list.Element
}

// BufferPool caches pages with LRU replacement. Pinned pages are never
// evicted. All methods are safe for concurrent use: the frame table, LRU
// list, pin counts and pool-wide stats are guarded by one mutex (page-file
// reads on a miss happen under it too — the backing files are memory or
// local disk, and hit-path readers touch pinned Data without any lock).
// Per-query access accounting goes through the IOAccount passed to Get,
// which needs no locking because each query owns its account.
type BufferPool struct {
	mu       sync.Mutex
	file     PageFile
	capacity int
	frames   map[PageID]*Frame
	lru      *list.List // front = most recently used; holds unpinned frames
	stats    Stats
	reg      *obs.Registry // process-wide counters; nil when uninstrumented
}

// Instrument mirrors the pool's hit/miss/eviction activity into the
// process-wide registry (atomic counters, so readers need no pool lock).
// Call it once, before queries start; a nil registry detaches the pool.
func (bp *BufferPool) Instrument(reg *obs.Registry) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.reg = reg
}

// NewBufferPool wraps file with a pool of the given capacity (pages).
func NewBufferPool(file PageFile, capacity int) *BufferPool {
	if capacity < 1 {
		panic(fmt.Sprintf("storage: buffer pool capacity %d", capacity))
	}
	return &BufferPool{
		file:     file,
		capacity: capacity,
		frames:   make(map[PageID]*Frame, capacity),
		lru:      list.New(),
	}
}

// Stats returns a copy of the pool-wide counters.
func (bp *BufferPool) Stats() Stats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.stats
}

// ResetStats zeroes the pool-wide counters (used between experiment runs).
func (bp *BufferPool) ResetStats() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats = Stats{}
}

// Alloc allocates a fresh page and returns it pinned.
func (bp *BufferPool) Alloc() (*Frame, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	id, err := bp.file.Alloc()
	if err != nil {
		return nil, err
	}
	if err := bp.makeRoom(); err != nil {
		return nil, err
	}
	fr := &Frame{ID: id, Data: make([]byte, PageSize), pins: 1, dirty: true}
	bp.frames[id] = fr
	return fr, nil
}

// Get returns the page pinned, fetching it from the file on a miss. acct,
// when non-nil, receives the per-query access accounting (the paper's
// logical page-access metric); reads issued outside any query (index
// construction, persistence) pass nil.
func (bp *BufferPool) Get(id PageID, acct *IOAccount) (*Frame, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats.Accesses++
	if acct != nil {
		acct.Accesses++
	}
	if fr, ok := bp.frames[id]; ok {
		if bp.reg != nil {
			bp.reg.PoolHits.Add(1)
		}
		// The frame keeps its LRU element while pinned (eviction skips
		// pinned frames); re-pinning therefore never churns list elements,
		// which keeps the warm hit path allocation-free.
		fr.pins++
		return fr, nil
	}
	bp.stats.Misses++
	if acct != nil {
		acct.Misses++
	}
	if bp.reg != nil {
		bp.reg.PoolMisses.Add(1)
	}
	if err := bp.makeRoom(); err != nil {
		return nil, err
	}
	fr := &Frame{ID: id, Data: make([]byte, PageSize), pins: 1}
	if err := bp.file.ReadPage(id, fr.Data); err != nil {
		return nil, err
	}
	bp.frames[id] = fr
	return fr, nil
}

// Unpin releases one pin; dirty marks the page for write-back.
func (bp *BufferPool) Unpin(fr *Frame, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if fr.pins <= 0 {
		panic(fmt.Sprintf("storage: unpin of unpinned page %d", fr.ID))
	}
	if dirty {
		fr.dirty = true
	}
	fr.pins--
	if fr.pins == 0 {
		if fr.elem == nil {
			fr.elem = bp.lru.PushFront(fr)
		} else {
			bp.lru.MoveToFront(fr.elem)
		}
	}
}

// makeRoom evicts the least recently used unpinned frame if the pool is at
// capacity. Callers must hold bp.mu.
func (bp *BufferPool) makeRoom() error {
	for len(bp.frames) >= bp.capacity {
		// Walk from the cold end, skipping frames that are pinned (they
		// stay in the list across pin cycles) — the first unpinned frame is
		// the least recently unpinned one, exactly the old victim choice.
		var victim *Frame
		for e := bp.lru.Back(); e != nil; e = e.Prev() {
			if f := e.Value.(*Frame); f.pins == 0 {
				victim = f
				break
			}
		}
		if victim == nil {
			return fmt.Errorf("%w: all %d pages pinned", ErrPoolExhausted, len(bp.frames))
		}
		bp.lru.Remove(victim.elem)
		victim.elem = nil
		if victim.dirty {
			if err := bp.file.WritePage(victim.ID, victim.Data); err != nil {
				return err
			}
			bp.stats.Writes++
		}
		delete(bp.frames, victim.ID)
		bp.stats.Evictions++
		if bp.reg != nil {
			bp.reg.PoolEvictions.Add(1)
		}
	}
	return nil
}

// Flush writes every dirty cached page back to the file.
func (bp *BufferPool) Flush() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, fr := range bp.frames {
		if fr.dirty {
			if err := bp.file.WritePage(fr.ID, fr.Data); err != nil {
				return err
			}
			fr.dirty = false
			bp.stats.Writes++
		}
	}
	return nil
}

// PinnedCount reports how many frames are currently pinned (testing aid).
func (bp *BufferPool) PinnedCount() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	n := 0
	for _, fr := range bp.frames {
		if fr.pins > 0 {
			n++
		}
	}
	return n
}

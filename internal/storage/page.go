// Package storage provides the disk abstraction under the terrain
// structures: fixed-size pages, a page file (memory- or file-backed), an
// LRU buffer pool with pin/unpin semantics and access statistics, a
// clustering B+-tree, and a spatially clustered record store. The paper
// stores DMTM and MSDN in Oracle and reports "number of disk pages
// accessed"; this package is the equivalent measurement instrument.
package storage

import (
	"errors"
	"fmt"
	"os"
)

// PageSize is the fixed page size in bytes (a common DBMS default).
const PageSize = 4096

// PageID identifies a page within a PageFile.
type PageID uint32

// InvalidPage is a sentinel for "no page".
const InvalidPage PageID = ^PageID(0)

// ErrPageOutOfRange is returned for reads/writes beyond the allocated file.
var ErrPageOutOfRange = errors.New("storage: page out of range")

// ErrPoolExhausted reports that the buffer pool cannot admit another page
// because every frame is pinned. It signals a pin leak or an undersized
// pool rather than an I/O failure.
var ErrPoolExhausted = errors.New("storage: buffer pool exhausted")

// ErrCorrupt marks a structural-invariant violation found in a persisted
// structure (e.g. a B+-tree whose keys are out of order). Callers select it
// with errors.Is to distinguish corruption from transient I/O errors.
var ErrCorrupt = errors.New("storage: corrupt structure")

// PageFile is the "disk": a growable array of fixed-size pages.
type PageFile interface {
	// Alloc appends a zeroed page and returns its id.
	Alloc() (PageID, error)
	// ReadPage copies the page into buf (len(buf) == PageSize).
	ReadPage(id PageID, buf []byte) error
	// WritePage copies buf into the page.
	WritePage(id PageID, buf []byte) error
	// NumPages returns the number of allocated pages.
	NumPages() int
	// Close releases resources.
	Close() error
}

// MemFile is an in-memory PageFile, the default backend for experiments
// (deterministic and fast while the buffer pool still counts every access).
type MemFile struct {
	pages [][]byte
}

// NewMemFile returns an empty in-memory page file.
func NewMemFile() *MemFile { return &MemFile{} }

// Alloc implements PageFile.
func (f *MemFile) Alloc() (PageID, error) {
	f.pages = append(f.pages, make([]byte, PageSize))
	return PageID(len(f.pages) - 1), nil
}

// ReadPage implements PageFile.
func (f *MemFile) ReadPage(id PageID, buf []byte) error {
	if int(id) >= len(f.pages) {
		return fmt.Errorf("%w: %d of %d", ErrPageOutOfRange, id, len(f.pages))
	}
	copy(buf, f.pages[id])
	return nil
}

// WritePage implements PageFile.
func (f *MemFile) WritePage(id PageID, buf []byte) error {
	if int(id) >= len(f.pages) {
		return fmt.Errorf("%w: %d of %d", ErrPageOutOfRange, id, len(f.pages))
	}
	copy(f.pages[id], buf)
	return nil
}

// NumPages implements PageFile.
func (f *MemFile) NumPages() int { return len(f.pages) }

// Close implements PageFile.
func (f *MemFile) Close() error { return nil }

// DiskFile is a file-backed PageFile.
type DiskFile struct {
	f *os.File
	n int
}

// OpenDiskFile creates or opens the named page file.
func OpenDiskFile(path string) (*DiskFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: %w", err)
	}
	return &DiskFile{f: f, n: int(st.Size() / PageSize)}, nil
}

// Alloc implements PageFile.
func (d *DiskFile) Alloc() (PageID, error) {
	id := PageID(d.n)
	zero := make([]byte, PageSize)
	if _, err := d.f.WriteAt(zero, int64(d.n)*PageSize); err != nil {
		return InvalidPage, fmt.Errorf("storage: alloc page %d: %w", id, err)
	}
	d.n++
	return id, nil
}

// ReadPage implements PageFile.
func (d *DiskFile) ReadPage(id PageID, buf []byte) error {
	if int(id) >= d.n {
		return fmt.Errorf("%w: %d of %d", ErrPageOutOfRange, id, d.n)
	}
	_, err := d.f.ReadAt(buf[:PageSize], int64(id)*PageSize)
	if err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	return nil
}

// WritePage implements PageFile.
func (d *DiskFile) WritePage(id PageID, buf []byte) error {
	if int(id) >= d.n {
		return fmt.Errorf("%w: %d of %d", ErrPageOutOfRange, id, d.n)
	}
	if _, err := d.f.WriteAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	return nil
}

// NumPages implements PageFile.
func (d *DiskFile) NumPages() int { return d.n }

// Close implements PageFile.
func (d *DiskFile) Close() error { return d.f.Close() }

package storage

import (
	"testing"

	"surfknn/internal/geom"
)

// The scan entry points hand pinned-page data to caller callbacks. If a
// callback panics, the pin must still come back — a permanently pinned
// frame is never evictable, so each leak walks the pool one frame closer
// to ErrPoolExhausted even after the panic is recovered upstream.

func TestClusteredFetchPanickingCallbackReleasesPins(t *testing.T) {
	bp := NewBufferPool(NewMemFile(), 64)
	var recs []ClusterRecord
	for i := uint64(0); i < 200; i++ {
		recs = append(recs, ClusterRecord{
			ID:   i,
			MBR:  geom.MBR{MinX: float64(i), MinY: 0, MaxX: float64(i + 1), MaxY: 1},
			From: 0,
			To:   1,
		})
	}
	c, err := BuildClustered(bp, recs)
	if err != nil {
		t.Fatal(err)
	}
	all := geom.MBR{MinX: -1, MinY: -1, MaxX: 1000, MaxY: 2}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("callback panic did not propagate")
			}
		}()
		c.Fetch(all, 0, nil, func(r ClusterRecord) {
			if r.ID >= 100 {
				panic("reader gave up")
			}
		})
	}()
	if n := bp.PinnedCount(); n != 0 {
		t.Fatalf("%d frames still pinned after panicking Fetch callback", n)
	}
	// The pool must still be fully usable.
	n := 0
	if err := c.Fetch(all, 0, nil, func(ClusterRecord) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != 200 {
		t.Fatalf("post-panic fetch saw %d records, want 200", n)
	}
}

func TestBTreeRangeScanPanickingCallbackReleasesPins(t *testing.T) {
	bp := NewBufferPool(NewMemFile(), 64)
	tree, err := NewBTree(bp)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 2000; k++ {
		if err := tree.Insert(k, k*3); err != nil {
			t.Fatal(err)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("callback panic did not propagate")
			}
		}()
		tree.RangeScan(0, 1999, func(k, v uint64) bool {
			if k >= 1000 {
				panic("reader gave up")
			}
			return true
		})
	}()
	if n := bp.PinnedCount(); n != 0 {
		t.Fatalf("%d frames still pinned after panicking RangeScan callback", n)
	}
	seen := 0
	if err := tree.RangeScan(0, 1999, func(k, v uint64) bool { seen++; return true }); err != nil {
		t.Fatal(err)
	}
	if seen != 2000 {
		t.Fatalf("post-panic scan saw %d keys, want 2000", seen)
	}
}

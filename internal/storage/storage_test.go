package storage

import (
	"sync"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"surfknn/internal/geom"
)

func TestMemFileBasics(t *testing.T) {
	f := NewMemFile()
	id, err := f.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 || f.NumPages() != 1 {
		t.Fatalf("id=%d pages=%d", id, f.NumPages())
	}
	buf := make([]byte, PageSize)
	buf[0] = 0xAB
	if err := f.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, PageSize)
	if err := f.ReadPage(id, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 0xAB {
		t.Error("read back wrong data")
	}
	if err := f.ReadPage(99, out); err == nil {
		t.Error("out-of-range read should fail")
	}
	if err := f.WritePage(99, buf); err == nil {
		t.Error("out-of-range write should fail")
	}
}

func TestDiskFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	f, err := OpenDiskFile(path)
	if err != nil {
		t.Fatal(err)
	}
	id, err := f.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	copy(buf, []byte("hello disk"))
	if err := f.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen and read.
	f2, err := OpenDiskFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.NumPages() != 1 {
		t.Fatalf("pages after reopen = %d", f2.NumPages())
	}
	out := make([]byte, PageSize)
	if err := f2.ReadPage(id, out); err != nil {
		t.Fatal(err)
	}
	if string(out[:10]) != "hello disk" {
		t.Errorf("read back %q", out[:10])
	}
}

func TestBufferPoolHitsAndMisses(t *testing.T) {
	f := NewMemFile()
	bp := NewBufferPool(f, 4)
	fr, err := bp.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	fr.Data[0] = 7
	id := fr.ID
	bp.Unpin(fr, true)

	// First Get is a hit (still cached from Alloc).
	fr, err = bp.Get(id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Data[0] != 7 {
		t.Error("cached data lost")
	}
	bp.Unpin(fr, false)
	st := bp.Stats()
	if st.Accesses != 1 || st.Misses != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBufferPoolEviction(t *testing.T) {
	f := NewMemFile()
	bp := NewBufferPool(f, 2)
	var ids []PageID
	for i := 0; i < 4; i++ {
		fr, err := bp.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		fr.Data[0] = byte(i + 1)
		ids = append(ids, fr.ID)
		bp.Unpin(fr, true)
	}
	// Pages 0 and 1 must have been evicted (written back).
	if bp.Stats().Evictions < 2 {
		t.Errorf("evictions = %d", bp.Stats().Evictions)
	}
	// Re-reading page 0 is a miss but returns the persisted data.
	fr, err := bp.Get(ids[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Data[0] != 1 {
		t.Errorf("evicted page lost data: %d", fr.Data[0])
	}
	bp.Unpin(fr, false)
	if bp.Stats().Misses == 0 {
		t.Error("expected a miss")
	}
}

func TestBufferPoolPinnedNotEvicted(t *testing.T) {
	f := NewMemFile()
	bp := NewBufferPool(f, 2)
	a, _ := bp.Alloc()
	b, _ := bp.Alloc()
	// Both pinned; a third allocation must fail with the sentinel callers
	// use to tell pin exhaustion from I/O errors.
	if _, err := bp.Alloc(); !errors.Is(err, ErrPoolExhausted) {
		t.Errorf("expected ErrPoolExhausted with all pages pinned, got %v", err)
	}
	bp.Unpin(a, false)
	bp.Unpin(b, false)
	if _, err := bp.Alloc(); err != nil {
		t.Errorf("allocation after unpin failed: %v", err)
	}
	if bp.PinnedCount() != 1 {
		t.Errorf("pinned = %d", bp.PinnedCount())
	}
}

func TestBufferPoolUnpinPanics(t *testing.T) {
	f := NewMemFile()
	bp := NewBufferPool(f, 2)
	fr, _ := bp.Alloc()
	bp.Unpin(fr, false)
	defer func() {
		if recover() == nil {
			t.Error("double unpin should panic")
		}
	}()
	bp.Unpin(fr, false)
}

func newTree(t *testing.T, poolPages int) (*BTree, *BufferPool) {
	t.Helper()
	bp := NewBufferPool(NewMemFile(), poolPages)
	tree, err := NewBTree(bp)
	if err != nil {
		t.Fatal(err)
	}
	return tree, bp
}

func TestBTreeBasics(t *testing.T) {
	tree, _ := newTree(t, 64)
	if _, found, _ := tree.Search(42); found {
		t.Error("empty tree found a key")
	}
	if err := tree.Insert(42, 420); err != nil {
		t.Fatal(err)
	}
	v, found, err := tree.Search(42)
	if err != nil || !found || v != 420 {
		t.Fatalf("Search = %v,%v,%v", v, found, err)
	}
	// Overwrite.
	if err := tree.Insert(42, 421); err != nil {
		t.Fatal(err)
	}
	v, _, _ = tree.Search(42)
	if v != 421 {
		t.Errorf("overwrite failed: %d", v)
	}
	if tree.Len() != 1 {
		t.Errorf("Len = %d", tree.Len())
	}
}

func TestBTreeRandomAgainstMap(t *testing.T) {
	tree, bp := newTree(t, 256)
	ref := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		k := uint64(rng.Intn(50000))
		v := rng.Uint64()
		ref[k] = v
		if err := tree.Insert(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tree.Len(), len(ref))
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	for k, v := range ref {
		got, found, err := tree.Search(k)
		if err != nil {
			t.Fatal(err)
		}
		if !found || got != v {
			t.Fatalf("Search(%d) = %d,%v want %d", k, got, found, v)
		}
	}
	// Missing keys.
	for i := 0; i < 100; i++ {
		k := uint64(60000 + i)
		if _, found, _ := tree.Search(k); found {
			t.Fatalf("found non-existent key %d", k)
		}
	}
	if bp.PinnedCount() != 0 {
		t.Errorf("leaked pins: %d", bp.PinnedCount())
	}
}

func TestBTreeRangeScan(t *testing.T) {
	tree, _ := newTree(t, 256)
	for k := uint64(0); k < 5000; k += 2 { // even keys
		if err := tree.Insert(k, k*10); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	err := tree.RangeScan(100, 120, func(k, v uint64) bool {
		if v != k*10 {
			t.Fatalf("value mismatch at %d", k)
		}
		got = append(got, k)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{100, 102, 104, 106, 108, 110, 112, 114, 116, 118, 120}
	if len(got) != len(want) {
		t.Fatalf("scan = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan = %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	tree.RangeScan(0, 5000, func(k, v uint64) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestBTreeDelete(t *testing.T) {
	tree, _ := newTree(t, 256)
	for k := uint64(0); k < 1000; k++ {
		tree.Insert(k, k)
	}
	ok, err := tree.Delete(500)
	if err != nil || !ok {
		t.Fatalf("Delete = %v,%v", ok, err)
	}
	if _, found, _ := tree.Search(500); found {
		t.Error("deleted key still found")
	}
	if ok, _ := tree.Delete(500); ok {
		t.Error("second delete reported success")
	}
	if tree.Len() != 999 {
		t.Errorf("Len = %d", tree.Len())
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeSequentialInsertSplits(t *testing.T) {
	// Sequential keys force rightmost splits through multiple levels.
	tree, _ := newTree(t, 512)
	n := uint64(leafCap*internCap/4 + 1000)
	for k := uint64(0); k < n; k++ {
		if err := tree.Insert(k, k^0xFF); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	// Spot checks.
	for _, k := range []uint64{0, 1, n / 2, n - 1} {
		v, found, _ := tree.Search(k)
		if !found || v != k^0xFF {
			t.Fatalf("Search(%d) = %d,%v", k, v, found)
		}
	}
}

func TestClusteredFetch(t *testing.T) {
	bp := NewBufferPool(NewMemFile(), 1024)
	var recs []ClusterRecord
	// A 10x10 grid of unit rectangles; record i valid over [0, i%5+1).
	id := uint64(0)
	for x := 0; x < 10; x++ {
		for y := 0; y < 10; y++ {
			recs = append(recs, ClusterRecord{
				ID:   id,
				MBR:  geom.MBR{MinX: float64(x), MinY: float64(y), MaxX: float64(x + 1), MaxY: float64(y + 1)},
				From: 0,
				To:   int32(id%5 + 1),
			})
			id++
		}
	}
	c, err := BuildClustered(bp, recs)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 100 {
		t.Errorf("Len = %d", c.Len())
	}
	// Fetch everything at level 0.
	seen := map[uint64]bool{}
	err = c.Fetch(geom.MBR{MinX: -1, MinY: -1, MaxX: 11, MaxY: 11}, 0, nil, func(r ClusterRecord) {
		if seen[r.ID] {
			t.Fatalf("record %d fetched twice", r.ID)
		}
		seen[r.ID] = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 100 {
		t.Errorf("level-0 fetch saw %d records", len(seen))
	}
	// Level 4: only records with To == 5 (i%5 == 4).
	n := 0
	c.Fetch(geom.MBR{MinX: -1, MinY: -1, MaxX: 11, MaxY: 11}, 4, nil, func(r ClusterRecord) {
		if r.To <= 4 {
			t.Fatalf("record %d invalid at level 4", r.ID)
		}
		n++
	})
	if n != 20 {
		t.Errorf("level-4 fetch saw %d records, want 20", n)
	}
	// Spatial restriction.
	n = 0
	c.Fetch(geom.MBR{MinX: 0, MinY: 0, MaxX: 2.5, MaxY: 2.5}, 0, nil, func(r ClusterRecord) {
		n++
		if r.MBR.MinX > 2.5 || r.MBR.MinY > 2.5 {
			t.Fatalf("record %d outside region", r.ID)
		}
	})
	if n == 0 || n == 100 {
		t.Errorf("spatial fetch saw %d records", n)
	}
}

func TestClusteredPageAccounting(t *testing.T) {
	bp := NewBufferPool(NewMemFile(), 4096)
	var recs []ClusterRecord
	for i := 0; i < 5000; i++ {
		x := float64(i % 100)
		y := float64(i / 100)
		recs = append(recs, ClusterRecord{
			ID:  uint64(i),
			MBR: geom.MBR{MinX: x, MinY: y, MaxX: x + 1, MaxY: y + 1},
			// Half the records die at level 1, the rest at level 10.
			From: 0,
			To:   int32(1 + (i%2)*9),
		})
	}
	c, err := BuildClustered(bp, recs)
	if err != nil {
		t.Fatal(err)
	}
	bp.ResetStats()
	full := geom.MBR{MinX: -1, MinY: -1, MaxX: 101, MaxY: 101}
	c.Fetch(full, 0, nil, func(ClusterRecord) {})
	finePages := bp.Stats().Accesses
	bp.ResetStats()
	c.Fetch(full, 5, nil, func(ClusterRecord) {})
	coarsePages := bp.Stats().Accesses
	if coarsePages >= finePages {
		t.Errorf("coarse fetch (%d pages) should touch fewer pages than fine (%d)", coarsePages, finePages)
	}
	// A small region touches fewer pages than the full area.
	bp.ResetStats()
	c.Fetch(geom.MBR{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, 0, nil, func(ClusterRecord) {})
	smallPages := bp.Stats().Accesses
	if smallPages >= finePages {
		t.Errorf("small-region fetch (%d) should touch fewer pages than full (%d)", smallPages, finePages)
	}
	// PagesFor agrees with an actual fetch.
	bp.ResetStats()
	pred := c.PagesFor(full, 0)
	c.Fetch(full, 0, nil, func(ClusterRecord) {})
	if int64(pred) != bp.Stats().Accesses {
		t.Errorf("PagesFor = %d, actual = %d", pred, bp.Stats().Accesses)
	}
}

// TestBufferPoolConcurrent hammers one pool from many goroutines (run under
// -race by the gate): concurrent Get/Unpin on overlapping page sets, each
// goroutine with its own IOAccount. Checks per-query accounts are exact and
// the pool-wide access counter equals their sum.
func TestBufferPoolConcurrent(t *testing.T) {
	file := NewMemFile()
	bp := NewBufferPool(file, 8)
	const pages = 16
	ids := make([]PageID, pages)
	for i := range ids {
		fr, err := bp.Alloc()
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		fr.Data[hdrSize] = byte(i)
		ids[i] = fr.ID
		bp.Unpin(fr, true)
	}
	bp.ResetStats()

	const workers = 8
	const reads = 200
	accts := make([]IOAccount, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				id := ids[(w*7+i)%pages]
				fr, err := bp.Get(id, &accts[w])
				if err != nil {
					t.Errorf("worker %d: Get(%d): %v", w, id, err)
					return
				}
				if got := fr.Data[hdrSize]; got != byte((w*7+i)%pages) {
					t.Errorf("worker %d: page %d holds %d", w, id, got)
				}
				bp.Unpin(fr, false)
			}
		}(w)
	}
	wg.Wait()

	var sum int64
	for w := range accts {
		if accts[w].Accesses != reads {
			t.Errorf("worker %d account: %d accesses, want %d", w, accts[w].Accesses, reads)
		}
		sum += accts[w].Accesses
	}
	if st := bp.Stats(); st.Accesses != sum {
		t.Errorf("pool stats %d accesses, want sum of accounts %d", st.Accesses, sum)
	}
	if got := bp.PinnedCount(); got != 0 {
		t.Errorf("PinnedCount = %d after all Unpins", got)
	}
}

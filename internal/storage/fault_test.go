package storage

import (
	"errors"
	"math/rand"
	"testing"

	"surfknn/internal/geom"
)

// faultFile wraps a PageFile and fails operations after a countdown,
// exercising the error paths of the structures above it.
type faultFile struct {
	inner     PageFile
	failAfter int // operations until failure; -1 = never
}

var errInjected = errors.New("injected fault")

func (f *faultFile) tick() error {
	if f.failAfter == 0 {
		return errInjected
	}
	if f.failAfter > 0 {
		f.failAfter--
	}
	return nil
}

func (f *faultFile) Alloc() (PageID, error) {
	if err := f.tick(); err != nil {
		return InvalidPage, err
	}
	return f.inner.Alloc()
}

func (f *faultFile) ReadPage(id PageID, buf []byte) error {
	if err := f.tick(); err != nil {
		return err
	}
	return f.inner.ReadPage(id, buf)
}

func (f *faultFile) WritePage(id PageID, buf []byte) error {
	if err := f.tick(); err != nil {
		return err
	}
	return f.inner.WritePage(id, buf)
}

func (f *faultFile) NumPages() int { return f.inner.NumPages() }
func (f *faultFile) Close() error  { return f.inner.Close() }

func TestBTreeSurfacesIOErrors(t *testing.T) {
	// Insert enough data to span pages, then make every file op fail and
	// check that operations return the injected error rather than panic.
	ff := &faultFile{inner: NewMemFile(), failAfter: -1}
	pool := NewBufferPool(ff, 4) // tiny pool forces evictions/misses
	tree, err := NewBTree(pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := tree.Insert(uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	ff.failAfter = 0
	foundErr := false
	for i := 0; i < 2000 && !foundErr; i++ {
		if _, _, err := tree.Search(uint64(i)); err != nil {
			foundErr = true
			if !errors.Is(err, errInjected) {
				t.Fatalf("unexpected error type: %v", err)
			}
		}
	}
	if !foundErr {
		t.Fatal("no error surfaced despite injected faults (pool too large?)")
	}
}

func TestClusteredSurfacesIOErrors(t *testing.T) {
	ff := &faultFile{inner: NewMemFile(), failAfter: -1}
	pool := NewBufferPool(ff, 2)
	var recs []ClusterRecord
	for i := 0; i < 500; i++ {
		x := float64(i % 25)
		y := float64(i / 25)
		recs = append(recs, ClusterRecord{
			ID:   uint64(i),
			MBR:  geom.MBR{MinX: x, MinY: y, MaxX: x + 1, MaxY: y + 1},
			From: 0, To: 1,
		})
	}
	c, err := BuildClustered(pool, recs)
	if err != nil {
		t.Fatal(err)
	}
	ff.failAfter = 1
	err = c.Fetch(geom.MBR{MinX: -1, MinY: -1, MaxX: 30, MaxY: 30}, 0, nil, func(ClusterRecord) {})
	if !errors.Is(err, errInjected) {
		t.Fatalf("Fetch error = %v, want injected fault", err)
	}
}

func TestBufferPoolEvictionWriteFailure(t *testing.T) {
	ff := &faultFile{inner: NewMemFile(), failAfter: -1}
	pool := NewBufferPool(ff, 2)
	for i := 0; i < 2; i++ {
		fr, err := pool.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		pool.Unpin(fr, true) // dirty
	}
	// Next alloc must evict a dirty page; make the write-back fail.
	ff.failAfter = 1 // allow the Alloc, fail the eviction write
	_, err := pool.Alloc()
	if !errors.Is(err, errInjected) {
		t.Fatalf("expected injected fault on eviction, got %v", err)
	}
}

// Property: BTree with interleaved inserts and deletes always agrees with a
// map and stays structurally valid.
func TestBTreeRandomOpsAgainstMap(t *testing.T) {
	pool := NewBufferPool(NewMemFile(), 512)
	tree, err := NewBTree(pool)
	if err != nil {
		t.Fatal(err)
	}
	ref := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(99))
	for op := 0; op < 30000; op++ {
		k := uint64(rng.Intn(5000))
		switch rng.Intn(3) {
		case 0, 1: // insert
			v := rng.Uint64()
			ref[k] = v
			if err := tree.Insert(k, v); err != nil {
				t.Fatal(err)
			}
		case 2: // delete
			wantOK := false
			if _, ok := ref[k]; ok {
				wantOK = true
				delete(ref, k)
			}
			ok, err := tree.Delete(k)
			if err != nil {
				t.Fatal(err)
			}
			if ok != wantOK {
				t.Fatalf("Delete(%d) = %v, want %v", k, ok, wantOK)
			}
		}
	}
	if tree.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tree.Len(), len(ref))
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	for k, v := range ref {
		got, found, err := tree.Search(k)
		if err != nil || !found || got != v {
			t.Fatalf("Search(%d) = %d,%v,%v want %d", k, got, found, err, v)
		}
	}
	// A full range scan visits exactly the live keys in order.
	var prev uint64
	count := 0
	tree.RangeScan(0, ^uint64(0), func(k, v uint64) bool {
		if count > 0 && k <= prev {
			t.Fatalf("scan out of order: %d after %d", k, prev)
		}
		prev = k
		count++
		return true
	})
	if count != len(ref) {
		t.Fatalf("scan visited %d keys, want %d", count, len(ref))
	}
}

// Property: Clustered.Fetch returns exactly the records a brute-force
// filter selects, for random regions and levels.
func TestClusteredFetchAgainstBruteForce(t *testing.T) {
	pool := NewBufferPool(NewMemFile(), 4096)
	rng := rand.New(rand.NewSource(7))
	var recs []ClusterRecord
	for i := 0; i < 3000; i++ {
		x := rng.Float64() * 100
		y := rng.Float64() * 100
		from := int32(rng.Intn(5))
		recs = append(recs, ClusterRecord{
			ID:   uint64(i),
			MBR:  geom.MBR{MinX: x, MinY: y, MaxX: x + rng.Float64()*3, MaxY: y + rng.Float64()*3},
			From: from,
			To:   from + 1 + int32(rng.Intn(5)),
		})
	}
	// Keep an un-reordered copy for the oracle.
	oracle := append([]ClusterRecord(nil), recs...)
	c, err := BuildClustered(pool, recs)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		x := rng.Float64() * 90
		y := rng.Float64() * 90
		region := geom.MBR{MinX: x, MinY: y, MaxX: x + 15, MaxY: y + 15}
		level := int32(rng.Intn(8))
		want := map[uint64]bool{}
		for _, r := range oracle {
			if r.From <= level && level < r.To && r.MBR.Intersects(region) {
				want[r.ID] = true
			}
		}
		got := map[uint64]bool{}
		err := c.Fetch(region, level, nil, func(r ClusterRecord) {
			if got[r.ID] {
				t.Fatalf("duplicate record %d", r.ID)
			}
			got[r.ID] = true
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: fetched %d records, want %d", trial, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("trial %d: missing record %d", trial, id)
			}
		}
	}
}

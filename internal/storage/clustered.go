package storage

import (
	"encoding/binary"
	"math"
	"sort"

	"surfknn/internal/geom"
)

// ClusterRecord is one unit of terrain data placed on disk: an opaque ID
// (interpreted by the owning structure — a DDM edge index, an SDN segment
// key), its (x,y) bounding rectangle, and its validity interval [From, To)
// in the owner's resolution dimension (collapse time for DMTM, resolution
// level for MSDN).
type ClusterRecord struct {
	ID       uint64
	MBR      geom.MBR
	From, To int32
}

const clusterRecSize = 8 + 4*8 + 4 + 4 // 48 bytes
const recsPerPage = (PageSize - hdrSize) / clusterRecSize

// pageMeta is the in-memory directory entry for one data page.
type pageMeta struct {
	id      PageID
	mbr     geom.MBR
	minFrom int32
	maxTo   int32
}

// Clustered is a read-only spatially clustered record store. Records are
// packed into pages ordered by (longevity, Z-order), so that coarse
// resolutions touch few pages and fetches of a small region touch pages
// whose directory rectangles intersect it — the access pattern the paper
// obtains from its Oracle clustering index.
type Clustered struct {
	pool *BufferPool
	dir  []pageMeta
	n    int
}

// BuildClustered packs the records into pages through the pool and returns
// the store. The input slice is reordered in place.
func BuildClustered(pool *BufferPool, recs []ClusterRecord) (*Clustered, error) {
	sort.Slice(recs, func(i, j int) bool {
		// Longevity first: records that survive to coarser resolutions are
		// clustered together at the front...
		if recs[i].To != recs[j].To {
			return recs[i].To > recs[j].To
		}
		// ...then spatially by Z-order of the rectangle centre.
		return zOrder(recs[i].MBR.Center()) < zOrder(recs[j].MBR.Center())
	})
	c := &Clustered{pool: pool, n: len(recs)}
	for start := 0; start < len(recs); start += recsPerPage {
		end := start + recsPerPage
		if end > len(recs) {
			end = len(recs)
		}
		fr, err := pool.Alloc()
		if err != nil {
			return nil, err
		}
		meta := pageMeta{
			id:      fr.ID,
			mbr:     geom.EmptyMBR(),
			minFrom: math.MaxInt32,
			maxTo:   math.MinInt32,
		}
		setCount(fr.Data, end-start)
		for i := start; i < end; i++ {
			writeClusterRec(fr.Data[hdrSize+(i-start)*clusterRecSize:], recs[i])
			meta.mbr = meta.mbr.Union(recs[i].MBR)
			if recs[i].From < meta.minFrom {
				meta.minFrom = recs[i].From
			}
			if recs[i].To > meta.maxTo {
				meta.maxTo = recs[i].To
			}
		}
		pool.Unpin(fr, true)
		c.dir = append(c.dir, meta)
	}
	return c, nil
}

// Len returns the number of stored records.
func (c *Clustered) Len() int { return c.n }

// NumPages returns the number of data pages.
func (c *Clustered) NumPages() int { return len(c.dir) }

// Fetch reads every record valid at level (From <= level < To) whose MBR
// intersects region, going through the buffer pool page by page (each data
// page touched counts as one access, charged to acct when non-nil — the
// per-query account of the session issuing the fetch). The page directory
// itself is assumed cached (as a DBMS keeps index upper levels hot) and is
// not counted. The store is immutable after BuildClustered, so concurrent
// fetches from different sessions are safe.
func (c *Clustered) Fetch(region geom.MBR, level int32, acct *IOAccount, fn func(ClusterRecord)) error {
	for _, meta := range c.dir {
		if meta.minFrom > level || meta.maxTo <= level {
			continue
		}
		if !meta.mbr.Intersects(region) {
			continue
		}
		if err := c.fetchPage(meta.id, region, level, acct, fn); err != nil {
			return err
		}
	}
	return nil
}

// fetchPage pins one data page for the duration of the record scan. The
// unpin is deferred: fn is caller code, and a panic there must not leak
// the pin — a permanently pinned frame is never evictable and walks the
// pool toward ErrPoolExhausted.
func (c *Clustered) fetchPage(id PageID, region geom.MBR, level int32, acct *IOAccount, fn func(ClusterRecord)) error {
	fr, err := c.pool.Get(id, acct)
	if err != nil {
		return err
	}
	defer c.pool.Unpin(fr, false)
	n := count(fr.Data)
	for i := 0; i < n; i++ {
		rec := readClusterRec(fr.Data[hdrSize+i*clusterRecSize:])
		if rec.From <= level && level < rec.To && rec.MBR.Intersects(region) {
			fn(rec)
		}
	}
	return nil
}

// FetchIDs is Fetch collecting just the record IDs into dst (reuse a
// buffer across queries to avoid allocation: the warm query path calls this
// instead of passing a collector closure into Fetch). Page accounting is
// identical to Fetch.
func (c *Clustered) FetchIDs(region geom.MBR, level int32, acct *IOAccount, dst []uint64) ([]uint64, error) {
	for _, meta := range c.dir {
		if meta.minFrom > level || meta.maxTo <= level {
			continue
		}
		if !meta.mbr.Intersects(region) {
			continue
		}
		fr, err := c.pool.Get(meta.id, acct)
		if err != nil {
			return dst, err
		}
		n := count(fr.Data)
		for i := 0; i < n; i++ {
			rec := readClusterRec(fr.Data[hdrSize+i*clusterRecSize:])
			if rec.From <= level && level < rec.To && rec.MBR.Intersects(region) {
				dst = append(dst, rec.ID)
			}
		}
		c.pool.Unpin(fr, false)
	}
	return dst, nil
}

// FetchCount is Fetch that only counts matching records — the warm-path
// replacement for the counting closures the SDN cost accounting used. Page
// accounting is identical to Fetch.
func (c *Clustered) FetchCount(region geom.MBR, level int32, acct *IOAccount) (int, error) {
	total := 0
	for _, meta := range c.dir {
		if meta.minFrom > level || meta.maxTo <= level {
			continue
		}
		if !meta.mbr.Intersects(region) {
			continue
		}
		fr, err := c.pool.Get(meta.id, acct)
		if err != nil {
			return total, err
		}
		n := count(fr.Data)
		for i := 0; i < n; i++ {
			rec := readClusterRec(fr.Data[hdrSize+i*clusterRecSize:])
			if rec.From <= level && level < rec.To && rec.MBR.Intersects(region) {
				total++
			}
		}
		c.pool.Unpin(fr, false)
	}
	return total, nil
}

// PagesFor reports how many data pages a Fetch of (region, level) would
// touch, without touching them (planning aid for I/O-region integration).
func (c *Clustered) PagesFor(region geom.MBR, level int32) int {
	n := 0
	for _, meta := range c.dir {
		if meta.minFrom > level || meta.maxTo <= level {
			continue
		}
		if meta.mbr.Intersects(region) {
			n++
		}
	}
	return n
}

func writeClusterRec(p []byte, r ClusterRecord) {
	binary.LittleEndian.PutUint64(p[0:], r.ID)
	binary.LittleEndian.PutUint64(p[8:], math.Float64bits(r.MBR.MinX))
	binary.LittleEndian.PutUint64(p[16:], math.Float64bits(r.MBR.MinY))
	binary.LittleEndian.PutUint64(p[24:], math.Float64bits(r.MBR.MaxX))
	binary.LittleEndian.PutUint64(p[32:], math.Float64bits(r.MBR.MaxY))
	binary.LittleEndian.PutUint32(p[40:], uint32(r.From))
	binary.LittleEndian.PutUint32(p[44:], uint32(r.To))
}

func readClusterRec(p []byte) ClusterRecord {
	return ClusterRecord{
		ID: binary.LittleEndian.Uint64(p[0:]),
		MBR: geom.MBR{
			MinX: math.Float64frombits(binary.LittleEndian.Uint64(p[8:])),
			MinY: math.Float64frombits(binary.LittleEndian.Uint64(p[16:])),
			MaxX: math.Float64frombits(binary.LittleEndian.Uint64(p[24:])),
			MaxY: math.Float64frombits(binary.LittleEndian.Uint64(p[32:])),
		},
		From: int32(binary.LittleEndian.Uint32(p[40:])),
		To:   int32(binary.LittleEndian.Uint32(p[44:])),
	}
}

// zOrder interleaves the bits of the quantised coordinates, giving the
// Morton order used for spatial clustering.
func zOrder(p geom.Vec2) uint64 {
	// Quantise into 2^21 cells per axis over a fixed large envelope; the
	// absolute scale only matters for relative ordering.
	const scale = 1 << 20
	x := uint32(int64(p.X/8) + scale)
	y := uint32(int64(p.Y/8) + scale)
	return interleave(x&0x1FFFFF) | interleave(y&0x1FFFFF)<<1
}

func interleave(v uint32) uint64 {
	x := uint64(v)
	x = (x | x<<16) & 0x0000FFFF0000FFFF
	x = (x | x<<8) & 0x00FF00FF00FF00FF
	x = (x | x<<4) & 0x0F0F0F0F0F0F0F0F
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

package storage

import (
	"encoding/binary"
	"fmt"
)

// BTree is a clustering B+-tree over uint64 keys and uint64 values, stored
// in pages through a buffer pool (the paper clusters DMTM with "a
// clustering B+ tree index"). Keys are unique; inserting an existing key
// overwrites its value. Deletes are tombstone-free lazy deletes (the entry
// is removed from its leaf; leaves are not rebalanced), which is adequate
// for the read-mostly workloads of this library.
type BTree struct {
	pool *BufferPool
	root PageID
	size int
}

const (
	nodeInternal byte = 0
	nodeLeaf     byte = 1

	hdrSize      = 8
	leafEntry    = 16 // key u64 + value u64
	internEntry  = 12 // key u64 + child u32
	leafCap      = (PageSize - hdrSize) / leafEntry
	internCap    = (PageSize - hdrSize) / internEntry
	offType      = 0
	offCount     = 2
	offNextChild = 4 // leaf: right sibling; internal: leftmost child
)

// NewBTree creates an empty tree.
func NewBTree(pool *BufferPool) (*BTree, error) {
	fr, err := pool.Alloc()
	if err != nil {
		return nil, err
	}
	initNode(fr.Data, nodeLeaf)
	setNext(fr.Data, InvalidPage)
	pool.Unpin(fr, true)
	return &BTree{pool: pool, root: fr.ID}, nil
}

// Len returns the number of stored keys.
func (t *BTree) Len() int { return t.size }

// Root exposes the current root page (for persistence headers).
func (t *BTree) Root() PageID { return t.root }

func initNode(p []byte, typ byte) {
	for i := range p[:hdrSize] {
		p[i] = 0
	}
	p[offType] = typ
}

func nodeType(p []byte) byte { return p[offType] }
func count(p []byte) int     { return int(binary.LittleEndian.Uint16(p[offCount:])) }
func setCount(p []byte, n int) {
	binary.LittleEndian.PutUint16(p[offCount:], uint16(n))
}
func next(p []byte) PageID { return PageID(binary.LittleEndian.Uint32(p[offNextChild:])) }
func setNext(p []byte, id PageID) {
	binary.LittleEndian.PutUint32(p[offNextChild:], uint32(id))
}

func leafKey(p []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(p[hdrSize+i*leafEntry:])
}
func leafVal(p []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(p[hdrSize+i*leafEntry+8:])
}
func setLeaf(p []byte, i int, k, v uint64) {
	binary.LittleEndian.PutUint64(p[hdrSize+i*leafEntry:], k)
	binary.LittleEndian.PutUint64(p[hdrSize+i*leafEntry+8:], v)
}
func internKey(p []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(p[hdrSize+i*internEntry:])
}
func internChild(p []byte, i int) PageID {
	return PageID(binary.LittleEndian.Uint32(p[hdrSize+i*internEntry+8:]))
}
func setIntern(p []byte, i int, k uint64, c PageID) {
	binary.LittleEndian.PutUint64(p[hdrSize+i*internEntry:], k)
	binary.LittleEndian.PutUint32(p[hdrSize+i*internEntry+8:], uint32(c))
}

// childFor returns the child page to follow for key k: the leftmost child
// when k < key0, else the child of the last entry with key <= k.
func childFor(p []byte, k uint64) PageID {
	n := count(p)
	lo, hi := 0, n // first entry with key > k
	for lo < hi {
		mid := (lo + hi) / 2
		if internKey(p, mid) <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return next(p) // leftmost child
	}
	return internChild(p, lo-1)
}

// leafSlot returns the position of k (found=true) or its insertion point.
func leafSlot(p []byte, k uint64) (int, bool) {
	n := count(p)
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if leafKey(p, mid) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < n && leafKey(p, lo) == k
}

// Search returns the value for key k.
func (t *BTree) Search(k uint64) (uint64, bool, error) {
	id := t.root
	for {
		fr, err := t.pool.Get(id, nil)
		if err != nil {
			return 0, false, err
		}
		p := fr.Data
		if nodeType(p) == nodeLeaf {
			slot, found := leafSlot(p, k)
			var v uint64
			if found {
				v = leafVal(p, slot)
			}
			t.pool.Unpin(fr, false)
			return v, found, nil
		}
		nextID := childFor(p, k)
		t.pool.Unpin(fr, false)
		id = nextID
	}
}

// splitResult reports a child split to its parent.
type splitResult struct {
	midKey   uint64
	newRight PageID
	split    bool
}

// Insert stores (k, v), overwriting any existing value for k.
func (t *BTree) Insert(k, v uint64) error {
	res, err := t.insert(t.root, k, v)
	if err != nil {
		return err
	}
	if res.split {
		fr, err := t.pool.Alloc()
		if err != nil {
			return err
		}
		initNode(fr.Data, nodeInternal)
		setNext(fr.Data, t.root)
		setIntern(fr.Data, 0, res.midKey, res.newRight)
		setCount(fr.Data, 1)
		t.root = fr.ID
		t.pool.Unpin(fr, true)
	}
	return nil
}

func (t *BTree) insert(id PageID, k, v uint64) (splitResult, error) {
	fr, err := t.pool.Get(id, nil)
	if err != nil {
		return splitResult{}, err
	}
	p := fr.Data
	if nodeType(p) == nodeLeaf {
		slot, found := leafSlot(p, k)
		if found {
			setLeaf(p, slot, k, v)
			t.pool.Unpin(fr, true)
			return splitResult{}, nil
		}
		n := count(p)
		if n < leafCap {
			copy(p[hdrSize+(slot+1)*leafEntry:], p[hdrSize+slot*leafEntry:hdrSize+n*leafEntry])
			setLeaf(p, slot, k, v)
			setCount(p, n+1)
			t.size++
			t.pool.Unpin(fr, true)
			return splitResult{}, nil
		}
		// Split the leaf.
		right, err := t.pool.Alloc()
		if err != nil {
			t.pool.Unpin(fr, false)
			return splitResult{}, err
		}
		initNode(right.Data, nodeLeaf)
		half := n / 2
		moved := n - half
		copy(right.Data[hdrSize:], p[hdrSize+half*leafEntry:hdrSize+n*leafEntry])
		setCount(right.Data, moved)
		setCount(p, half)
		setNext(right.Data, next(p))
		setNext(p, right.ID)
		// Insert into the proper half.
		if k >= leafKey(right.Data, 0) {
			slot, _ := leafSlot(right.Data, k)
			nr := count(right.Data)
			copy(right.Data[hdrSize+(slot+1)*leafEntry:], right.Data[hdrSize+slot*leafEntry:hdrSize+nr*leafEntry])
			setLeaf(right.Data, slot, k, v)
			setCount(right.Data, nr+1)
		} else {
			slot, _ := leafSlot(p, k)
			nl := count(p)
			copy(p[hdrSize+(slot+1)*leafEntry:], p[hdrSize+slot*leafEntry:hdrSize+nl*leafEntry])
			setLeaf(p, slot, k, v)
			setCount(p, nl+1)
		}
		t.size++
		res := splitResult{midKey: leafKey(right.Data, 0), newRight: right.ID, split: true}
		t.pool.Unpin(right, true)
		t.pool.Unpin(fr, true)
		return res, nil
	}

	// Internal node.
	child := childFor(p, k)
	t.pool.Unpin(fr, false)
	res, err := t.insert(child, k, v)
	if err != nil || !res.split {
		return splitResult{}, err
	}
	// Re-pin to add the separator.
	fr, err = t.pool.Get(id, nil)
	if err != nil {
		return splitResult{}, err
	}
	p = fr.Data
	n := count(p)
	// Find insertion slot for midKey.
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if internKey(p, mid) < res.midKey {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if n < internCap {
		copy(p[hdrSize+(lo+1)*internEntry:], p[hdrSize+lo*internEntry:hdrSize+n*internEntry])
		setIntern(p, lo, res.midKey, res.newRight)
		setCount(p, n+1)
		t.pool.Unpin(fr, true)
		return splitResult{}, nil
	}
	// Split the internal node.
	right, err := t.pool.Alloc()
	if err != nil {
		t.pool.Unpin(fr, false)
		return splitResult{}, err
	}
	initNode(right.Data, nodeInternal)
	// Entries: current n entries plus the new one, conceptually merged.
	type entry struct {
		k uint64
		c PageID
	}
	all := make([]entry, 0, n+1)
	for i := 0; i < n; i++ {
		all = append(all, entry{internKey(p, i), internChild(p, i)})
	}
	all = append(all[:lo], append([]entry{{res.midKey, res.newRight}}, all[lo:]...)...)
	mid := len(all) / 2
	up := all[mid]
	// Left keeps entries [0, mid), right gets (mid, end]; up.k moves up.
	setCount(p, 0)
	for i := 0; i < mid; i++ {
		setIntern(p, i, all[i].k, all[i].c)
	}
	setCount(p, mid)
	setNext(right.Data, up.c) // leftmost child of right node
	cnt := 0
	for i := mid + 1; i < len(all); i++ {
		setIntern(right.Data, cnt, all[i].k, all[i].c)
		cnt++
	}
	setCount(right.Data, cnt)
	out := splitResult{midKey: up.k, newRight: right.ID, split: true}
	t.pool.Unpin(right, true)
	t.pool.Unpin(fr, true)
	return out, nil
}

// Delete removes key k. It reports whether the key existed. Leaves are not
// rebalanced (lazy delete).
func (t *BTree) Delete(k uint64) (bool, error) {
	id := t.root
	for {
		fr, err := t.pool.Get(id, nil)
		if err != nil {
			return false, err
		}
		p := fr.Data
		if nodeType(p) == nodeLeaf {
			slot, found := leafSlot(p, k)
			if !found {
				t.pool.Unpin(fr, false)
				return false, nil
			}
			n := count(p)
			copy(p[hdrSize+slot*leafEntry:], p[hdrSize+(slot+1)*leafEntry:hdrSize+n*leafEntry])
			setCount(p, n-1)
			t.size--
			t.pool.Unpin(fr, true)
			return true, nil
		}
		nextID := childFor(p, k)
		t.pool.Unpin(fr, false)
		id = nextID
	}
}

// RangeScan calls fn for every (k,v) with lo <= k <= hi in ascending key
// order; fn returning false stops the scan early.
func (t *BTree) RangeScan(lo, hi uint64, fn func(k, v uint64) bool) error {
	// Descend to the leaf containing lo.
	id := t.root
	for {
		fr, err := t.pool.Get(id, nil)
		if err != nil {
			return err
		}
		p := fr.Data
		if nodeType(p) == nodeLeaf {
			t.pool.Unpin(fr, false)
			break
		}
		nextID := childFor(p, lo)
		t.pool.Unpin(fr, false)
		id = nextID
	}
	// Walk leaf chain.
	for id != InvalidPage {
		nextID, done, err := t.scanLeafPage(id, lo, hi, fn)
		if err != nil || done {
			return err
		}
		id = nextID
	}
	return nil
}

// scanLeafPage pins one leaf page, visits its entries in [lo, hi], and
// returns the right sibling to continue at. The unpin is deferred: fn is
// caller code, and if it panics mid-scan the pin must still come back or
// the frame is stuck in the pool forever. done reports that the scan
// moved past hi or fn stopped it.
func (t *BTree) scanLeafPage(id PageID, lo, hi uint64, fn func(k, v uint64) bool) (nextID PageID, done bool, err error) {
	fr, err := t.pool.Get(id, nil)
	if err != nil {
		return InvalidPage, false, err
	}
	defer t.pool.Unpin(fr, false)
	p := fr.Data
	n := count(p)
	start, _ := leafSlot(p, lo)
	for i := start; i < n; i++ {
		k := leafKey(p, i)
		if k > hi {
			return InvalidPage, true, nil
		}
		if !fn(k, leafVal(p, i)) {
			return InvalidPage, true, nil
		}
	}
	return next(p), false, nil
}

// Validate walks the whole tree checking structural invariants (key order,
// counts within capacity). Intended for tests.
func (t *BTree) Validate() error {
	return t.validate(t.root, 0, ^uint64(0))
}

func (t *BTree) validate(id PageID, lo, hi uint64) error {
	fr, err := t.pool.Get(id, nil)
	if err != nil {
		return err
	}
	defer t.pool.Unpin(fr, false)
	p := fr.Data
	n := count(p)
	if nodeType(p) == nodeLeaf {
		if n > leafCap {
			return fmt.Errorf("%w: btree leaf %d overfull (%d)", ErrCorrupt, id, n)
		}
		for i := 0; i < n; i++ {
			k := leafKey(p, i)
			if k < lo || k > hi {
				return fmt.Errorf("%w: btree leaf %d key %d outside [%d,%d]", ErrCorrupt, id, k, lo, hi)
			}
			if i > 0 && leafKey(p, i-1) >= k {
				return fmt.Errorf("%w: btree leaf %d keys out of order", ErrCorrupt, id)
			}
		}
		return nil
	}
	if n > internCap || n < 1 {
		return fmt.Errorf("%w: btree internal %d bad count %d", ErrCorrupt, id, n)
	}
	prev := lo
	child := next(p)
	for i := 0; i <= n; i++ {
		var upper uint64
		if i < n {
			upper = internKey(p, i) - 1
		} else {
			upper = hi
		}
		if err := t.validate(child, prev, upper); err != nil {
			return err
		}
		if i < n {
			prev = internKey(p, i)
			child = internChild(p, i)
		}
	}
	return nil
}

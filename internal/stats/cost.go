package stats

import "time"

// Phase names shared by the query algorithms. They map onto the paper's
// MR3 steps (§4.1): the 2-D k-NN filter, the step-2 ranking of C1, the 2-D
// range collection, and the step-4 ranking of C2. SurfaceRange reuses the
// range/refine/settle subset.
const (
	PhaseKNN2D   = "knn2d"   // step 1: 2-D k-NN on Dxy
	PhaseRankC1  = "rank-c1" // step 2: surface ranking of C1 (bound tightening)
	PhaseRange2D = "range2d" // step 3: 2-D range query with the step-2 bound
	PhaseRankC2  = "rank-c2" // step 4: surface ranking of C2 (final k-set)
	PhaseRefine  = "refine"  // range query: LOD refinement loop
	PhaseSettle  = "settle"  // range query: reference-distance settlement
)

// PhaseCost is the cost of one named query phase: its wall-clock time plus
// the work and I/O counters accumulated inside it. The page counters are
// split the way the paper's evaluation discusses them — buffer-pool reads
// (hit/miss) for terrain data versus R-tree node visits for object data.
type PhaseCost struct {
	Phase string        `json:"phase"`
	Wall  time.Duration `json:"wall_ns"`

	// Page accesses, split by source.
	PoolHits    int64 `json:"pool_hits"`   // buffer-pool reads served from cache
	PoolMisses  int64 `json:"pool_misses"` // buffer-pool reads that hit the page file
	RTreeVisits int64 `json:"rtree_visits"`

	// Relaxations counts pathnet Dijkstra edge relaxations — the engine's
	// unit of exact-distance work. A phase (or a whole Cost) reporting 0
	// provably computed no exact surface distance, which is how the
	// continuous-query layer certifies its safe-region fast path.
	Relaxations int64 `json:"relaxations"`

	// Work counters (CPU-cost proxies, machine-independent).
	UpperBounds int `json:"upper_bounds"`
	LowerBounds int `json:"lower_bounds"`
	Iterations  int `json:"iterations"`
	Candidates  int `json:"candidates"`
}

// Pages is the phase's combined page-access count — the paper's "disk
// pages accessed" metric restricted to this phase.
func (p PhaseCost) Pages() int64 { return p.PoolHits + p.PoolMisses + p.RTreeVisits }

// add folds another phase's counters into p (phase name and wall time of p
// are kept).
func (p *PhaseCost) add(o PhaseCost) {
	p.PoolHits += o.PoolHits
	p.PoolMisses += o.PoolMisses
	p.RTreeVisits += o.RTreeVisits
	p.Relaxations += o.Relaxations
	p.UpperBounds += o.UpperBounds
	p.LowerBounds += o.LowerBounds
	p.Iterations += o.Iterations
	p.Candidates += o.Candidates
}

// Cost is the structured cost of one query: the per-phase breakdown plus
// the query-level times. Metrics derives the legacy flat view from it.
type Cost struct {
	// Phases lists the query's phases in execution order.
	Phases []PhaseCost `json:"phases"`
	// CPU is the computation time (elapsed minus simulated I/O wait).
	CPU time.Duration `json:"cpu_ns"`
	// Elapsed is the simulated response time: CPU plus the configured
	// per-page I/O cost for every page accessed.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Total sums the phase counters into one PhaseCost labelled "total", with
// the query CPU time as its wall time.
func (c Cost) Total() PhaseCost {
	t := PhaseCost{Phase: "total", Wall: c.CPU}
	for _, p := range c.Phases {
		t.add(p)
	}
	return t
}

// Pages is the query's combined page-access count across all phases.
func (c Cost) Pages() int64 {
	var n int64
	for _, p := range c.Phases {
		n += p.Pages()
	}
	return n
}

// Phase returns the named phase's cost; ok is false when the query had no
// such phase.
func (c Cost) Phase(name string) (PhaseCost, bool) {
	for _, p := range c.Phases {
		if p.Phase == name {
			return p, true
		}
	}
	return PhaseCost{}, false
}

// Metrics derives the legacy flat view: the same numbers the pre-Cost API
// reported, so experiment output is unchanged.
func (c Cost) Metrics() Metrics {
	t := c.Total()
	return Metrics{
		Elapsed:     c.Elapsed,
		CPU:         c.CPU,
		Pages:       t.Pages(),
		UpperBounds: t.UpperBounds,
		LowerBounds: t.LowerBounds,
		Iterations:  t.Iterations,
		Candidates:  t.Candidates,
	}
}

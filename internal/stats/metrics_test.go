package stats

import (
	"strings"
	"testing"
	"time"
)

func TestMetricsAddScale(t *testing.T) {
	a := Metrics{Elapsed: 10 * time.Second, CPU: 8 * time.Second, Pages: 100, UpperBounds: 4, LowerBounds: 6, Iterations: 2, Candidates: 10}
	b := Metrics{Elapsed: 2 * time.Second, CPU: 2 * time.Second, Pages: 50, UpperBounds: 2, LowerBounds: 2, Iterations: 2, Candidates: 6}
	a.Add(b)
	if a.Elapsed != 12*time.Second || a.Pages != 150 || a.UpperBounds != 6 {
		t.Errorf("Add = %+v", a)
	}
	a.Scale(2)
	if a.Elapsed != 6*time.Second || a.Pages != 75 || a.Candidates != 8 {
		t.Errorf("Scale = %+v", a)
	}
	a.Scale(0) // no-op
	if a.Pages != 75 {
		t.Error("Scale(0) should be a no-op")
	}
	if a.String() == "" {
		t.Error("String empty")
	}
}

func TestSeriesTable(t *testing.T) {
	s1 := Series{Label: "MR3"}
	s1.Add(3, 1.5)
	s1.Add(6, 2.5)
	s2 := Series{Label: "EA"}
	s2.Add(3, 10)
	s2.Add(6, 20)
	out := Table("Fig 10(a) total time", "k", []Series{s1, s2})
	if !strings.Contains(out, "Fig 10(a)") || !strings.Contains(out, "MR3") || !strings.Contains(out, "EA") {
		t.Errorf("table missing headers:\n%s", out)
	}
	if !strings.Contains(out, "1.500") || !strings.Contains(out, "20.000") {
		t.Errorf("table missing values:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Errorf("table has %d lines:\n%s", len(lines), out)
	}
	// Ragged series render a dash.
	s3 := Series{Label: "short"}
	s3.Add(3, 1)
	out = Table("t", "k", []Series{s1, s3})
	if !strings.Contains(out, "-") {
		t.Errorf("ragged table missing dash:\n%s", out)
	}
	if got := Table("empty", "x", nil); !strings.Contains(got, "empty") {
		t.Error("empty table should still have a title")
	}
}

// Package stats defines the measurement types shared by the query
// algorithms and the experiment harness: per-query cost metrics (the
// paper's total time, CPU time and pages accessed) and simple series
// aggregation/formatting for regenerating the paper's figures as text.
package stats

import (
	"fmt"
	"strings"
	"time"
)

// Metrics aggregates the cost of one query (or a batch of queries).
type Metrics struct {
	Elapsed time.Duration // response time
	CPU     time.Duration // computation time (elapsed minus simulated I/O wait)
	Pages   int64         // disk pages accessed
	// Work counters (CPU-cost proxies, machine-independent).
	UpperBounds int // upper-bound estimations performed
	LowerBounds int // lower-bound estimations performed
	Iterations  int // resolution iterations consumed
	Candidates  int // candidates examined
}

// Add accumulates other into m.
func (m *Metrics) Add(other Metrics) {
	m.Elapsed += other.Elapsed
	m.CPU += other.CPU
	m.Pages += other.Pages
	m.UpperBounds += other.UpperBounds
	m.LowerBounds += other.LowerBounds
	m.Iterations += other.Iterations
	m.Candidates += other.Candidates
}

// Scale divides every counter by n (averaging a batch).
func (m *Metrics) Scale(n int) {
	if n <= 0 {
		return
	}
	m.Elapsed /= time.Duration(n)
	m.CPU /= time.Duration(n)
	m.Pages /= int64(n)
	m.UpperBounds /= n
	m.LowerBounds /= n
	m.Iterations /= n
	m.Candidates /= n
}

// String summarises the metrics on one line.
func (m Metrics) String() string {
	return fmt.Sprintf("time=%v cpu=%v pages=%d ub=%d lb=%d iters=%d cands=%d",
		m.Elapsed.Round(time.Microsecond), m.CPU.Round(time.Microsecond),
		m.Pages, m.UpperBounds, m.LowerBounds, m.Iterations, m.Candidates)
}

// Series is one plotted line of a figure: a label and (x, y) samples.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Add appends a sample.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Table renders a set of series sharing the same X axis as an aligned text
// table (the experiment harness's figure output).
func Table(title, xLabel string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", title)
	fmt.Fprintf(&b, "%-12s", xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, "%16s", s.Label)
	}
	b.WriteByte('\n')
	if len(series) == 0 {
		return b.String()
	}
	for i := range series[0].X {
		fmt.Fprintf(&b, "%-12g", series[0].X[i])
		for _, s := range series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, "%16.3f", s.Y[i])
			} else {
				fmt.Fprintf(&b, "%16s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

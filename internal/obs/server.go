package obs

import (
	"expvar"
	"fmt"
	"sync"
)

// ServerStats is the metric group of the HTTP serving layer
// (internal/server): request lifecycle, admission-control outcomes, and the
// result cache. It complements Registry — which counts engine-level query
// work — with the serving-path view: a request rejected at admission or
// answered from the cache never reaches the engine, so it appears here and
// nowhere in the Registry.
//
// All fields are updated atomically through their methods; the sklint
// obs-atomic rule forbids direct writes. The zero value is NOT ready for
// use — create with NewServerStats.
type ServerStats struct {
	// Request lifecycle, by outcome. Requests counts every request the
	// handlers saw (including rejected and failed ones).
	Requests    Counter
	BadRequests Counter // rejected by validation (HTTP 400/404)
	TimedOut    Counter // deadline exceeded or client gone (HTTP 408)
	Rejected    Counter // refused by admission control (HTTP 429)
	Panics      Counter // recovered handler panics (HTTP 500)

	// Admission-control occupancy.
	InFlight Gauge // requests holding an execution slot
	Queued   Gauge // requests waiting for a slot

	// Result cache.
	CacheHits      Counter
	CacheMisses    Counter
	CacheEvictions Counter

	latency *Histogram // whole-request wall latency (admission wait included)

	publishOnce sync.Once
}

// NewServerStats returns an empty metric group ready for concurrent use.
func NewServerStats() *ServerStats {
	return &ServerStats{latency: NewHistogram()}
}

// RequestLatency is the whole-request wall-latency histogram (time from
// handler entry to response written, admission wait included).
func (s *ServerStats) RequestLatency() *Histogram { return s.latency }

// Snapshot renders the group as a nested map, the value Publish exposes
// through expvar.
func (s *ServerStats) Snapshot() map[string]any {
	return map[string]any{
		"requests": map[string]any{
			"total":      s.Requests.Value(),
			"bad":        s.BadRequests.Value(),
			"timeout":    s.TimedOut.Value(),
			"rejected":   s.Rejected.Value(),
			"panics":     s.Panics.Value(),
			"in_flight":  s.InFlight.Value(),
			"queued":     s.Queued.Value(),
			"latency_us": s.latency.Snapshot(),
		},
		"cache": map[string]any{
			"hits":      s.CacheHits.Value(),
			"misses":    s.CacheMisses.Value(),
			"evictions": s.CacheEvictions.Value(),
		},
	}
}

// Publish exposes the group's Snapshot at /debug/vars under the given name
// (skserve uses "surfknn_server"). Same contract as Registry.Publish:
// republishing the same group is a no-op, a name collision is an error.
func (s *ServerStats) Publish(name string) error {
	var err error
	s.publishOnce.Do(func() {
		if expvar.Get(name) != nil {
			err = fmt.Errorf("obs: expvar name %q is already taken", name)
			return
		}
		expvar.Publish(name, expvar.Func(func() any { return s.Snapshot() }))
	})
	return err
}

package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SlowQuery is one slow-query log entry: the query's identity, its cost
// summary, and (when the session recorded one) its phase trace.
type SlowQuery struct {
	Algo    string        `json:"algo"`
	K       int           `json:"k,omitempty"`
	Elapsed time.Duration `json:"elapsed_ns"`
	CPU     time.Duration `json:"cpu_ns"`
	Pages   int64         `json:"pages"`
	Err     string        `json:"err,omitempty"`
	Trace   *Trace        `json:"trace,omitempty"`
}

// SlowQueryLog writes one JSON line per query whose elapsed time reaches
// the threshold. Safe for concurrent use: the writer is serialised by a
// mutex, so entries never interleave.
type SlowQueryLog struct {
	threshold time.Duration

	mu  sync.Mutex
	w   io.Writer
	err error // first write error; later entries are dropped on the floor
}

// NewSlowQueryLog logs queries at least threshold slow to w. A zero
// threshold logs every query.
func NewSlowQueryLog(w io.Writer, threshold time.Duration) *SlowQueryLog {
	return &SlowQueryLog{threshold: threshold, w: w}
}

// Threshold returns the configured slowness threshold.
func (l *SlowQueryLog) Threshold() time.Duration { return l.threshold }

// Log writes the entry if it is slow enough; reports whether it was
// written. A writer error latches: the log stops writing (the query path
// must not fail because a log sink did) and Err exposes the cause.
func (l *SlowQueryLog) Log(q SlowQuery) bool {
	if q.Elapsed < l.threshold {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return false
	}
	enc := json.NewEncoder(l.w)
	if err := enc.Encode(q); err != nil {
		l.err = err
		return false
	}
	return true
}

// Err returns the first write error, or nil.
func (l *SlowQueryLog) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

package obs

import (
	"expvar"
	"fmt"
	"sync"
)

// CoordStats is the metric group of the scatter-gather coordinator
// (internal/shard): how many public requests it answered, how its fan-out
// behaved (shard calls issued, shards pruned by the search-region bound,
// shard failures after retries), and how often it had to refuse a degraded
// answer. It complements ServerStats — which each shard keeps for its own
// HTTP surface — with the fleet-level view only the coordinator has.
//
// All fields are updated atomically through their methods; the sklint
// obs-atomic rule forbids direct writes. The zero value is NOT ready for
// use — create with NewCoordStats.
type CoordStats struct {
	// Public request lifecycle.
	Requests    Counter
	BadRequests Counter // rejected by validation (HTTP 400/404)
	Queries     Counter // knn/range/distance answered OK
	Updates     Counter // object batches applied fleet-wide

	// Fan-out behaviour.
	ShardCalls   Counter // shard RPCs issued (retries counted by the client)
	ShardErrors  Counter // shard RPCs that failed after retries
	PrunedShards Counter // shards skipped because the search region missed their tile
	Degraded     Counter // answers refused because a required shard was down (HTTP 503)

	latency *Histogram // whole-request wall latency, fan-out included

	publishOnce sync.Once
}

// NewCoordStats returns an empty metric group ready for concurrent use.
func NewCoordStats() *CoordStats {
	return &CoordStats{latency: NewHistogram()}
}

// RequestLatency is the whole-request wall-latency histogram.
func (s *CoordStats) RequestLatency() *Histogram { return s.latency }

// Snapshot renders the group as a nested map, the value Publish exposes
// through expvar.
func (s *CoordStats) Snapshot() map[string]any {
	return map[string]any{
		"requests": map[string]any{
			"total":      s.Requests.Value(),
			"bad":        s.BadRequests.Value(),
			"queries":    s.Queries.Value(),
			"updates":    s.Updates.Value(),
			"degraded":   s.Degraded.Value(),
			"latency_us": s.latency.Snapshot(),
		},
		"fanout": map[string]any{
			"shard_calls":   s.ShardCalls.Value(),
			"shard_errors":  s.ShardErrors.Value(),
			"pruned_shards": s.PrunedShards.Value(),
		},
	}
}

// Publish exposes the group's Snapshot at /debug/vars under the given name
// (skcoord uses "surfknn_coord"). Same contract as Registry.Publish:
// republishing the same group is a no-op, a name collision is an error.
func (s *CoordStats) Publish(name string) error {
	var err error
	s.publishOnce.Do(func() {
		if expvar.Get(name) != nil {
			err = fmt.Errorf("obs: expvar name %q is already taken", name)
			return
		}
		expvar.Publish(name, expvar.Func(func() any { return s.Snapshot() }))
	})
	return err
}

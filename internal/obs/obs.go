// Package obs is the query-observability layer: process-wide metrics, per-
// query phase traces, and a slow-query log, built only on the standard
// library (sync/atomic, expvar, net/http/pprof).
//
// The paper's entire evaluation (Figs. 9–12) is cost accounting — pages
// accessed, CPU vs. I/O time, bound estimations per resolution step — and
// this package makes the same numbers visible on a *running* process
// instead of only in a returned Result:
//
//   - Registry is a set of atomic counters and latency histograms shared by
//     every Session querying an instrumented TerrainDB. Publish exposes a
//     registry as one expvar group, so /debug/vars serves a JSON snapshot;
//     StartDebugServer serves expvar together with net/http/pprof.
//   - Trace records the timed spans of one query (the MR3 steps and each
//     LOD refinement iteration) and marshals to JSON.
//   - SlowQueryLog writes a JSON line, including the phase trace, for every
//     query slower than a threshold.
//
// Everything is race-free: counters and histogram buckets are sync/atomic
// values (the sklint obs-atomic rule forbids writing them directly), and a
// Trace is owned by a single query goroutine. When no registry is attached
// and tracing is off, the instrumentation hooks in internal/core are no-ops
// so experiment figures stay bit-identical.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Registry is the process-wide metric set for one query engine. All fields
// are updated atomically; read them with Value / snapshot them with
// Snapshot. The zero value is NOT ready for use — create with NewRegistry.
type Registry struct {
	// Query lifecycle.
	QueriesStarted   Counter
	QueriesFinished  Counter
	QueriesCancelled Counter // context cancelled or deadline exceeded
	QueriesFailed    Counter // finished with a non-context error
	SlowQueries      Counter // queries the slow-query log recorded

	// Buffer-pool activity (fed by storage.BufferPool when instrumented).
	PoolHits      Counter
	PoolMisses    Counter
	PoolEvictions Counter

	// Work counters (fed by core.Session at query end).
	RTreeVisits         Counter // object-index node visits (Dxy)
	DijkstraRelaxations Counter // pathnet edge relaxations
	UpperBounds         Counter // upper-bound estimations
	LowerBounds         Counter // lower-bound estimations
	Iterations          Counter // LOD refinement iterations

	// Dynamic object-store activity (fed by objstore.Store when
	// instrumented).
	UpdatesApplied  Counter // objects inserted, upserted or deleted
	EpochsCreated   Counter // update batches published as a new epoch
	EpochsReclaimed Counter // retired epochs whose last pin was released
	Epoch           Gauge   // latest published epoch number

	latency     *Histogram     // whole-query CPU latency
	updateBatch *SizeHistogram // objects per applied update batch

	mu     sync.Mutex
	phases map[string]*Histogram // per-phase CPU latency, created lazily

	slow atomic.Pointer[SlowQueryLog]

	publishOnce sync.Once
}

// NewRegistry returns an empty registry ready for concurrent use.
func NewRegistry() *Registry {
	return &Registry{
		latency:     NewHistogram(),
		updateBatch: NewSizeHistogram(),
		phases:      make(map[string]*Histogram),
	}
}

// Default is the process-wide registry the commands publish; libraries
// should prefer an explicitly constructed Registry.
var Default = NewRegistry()

// QueryLatency is the whole-query CPU latency histogram.
func (r *Registry) QueryLatency() *Histogram { return r.latency }

// UpdateBatch is the objects-per-update-batch histogram.
func (r *Registry) UpdateBatch() *SizeHistogram { return r.updateBatch }

// Phase returns the latency histogram of the named query phase, creating it
// on first use. Safe for concurrent callers.
func (r *Registry) Phase(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.phases[name]
	if !ok {
		h = NewHistogram()
		r.phases[name] = h
	}
	return h
}

// SetSlowLog installs (or, with nil, removes) the slow-query log. Sessions
// of an instrumented TerrainDB record phase traces while a slow log is
// installed, so slow entries carry their trace.
func (r *Registry) SetSlowLog(l *SlowQueryLog) { r.slow.Store(l) }

// SlowLogArmed reports whether a slow-query log is installed; instrumented
// sessions use it to decide whether to record traces.
func (r *Registry) SlowLogArmed() bool { return r != nil && r.slow.Load() != nil }

// MaybeLogSlow records q in the slow-query log if one is installed and q's
// elapsed time reaches the threshold. Reports whether the entry was logged.
func (r *Registry) MaybeLogSlow(q SlowQuery) bool {
	if r == nil {
		return false
	}
	l := r.slow.Load()
	if l == nil || !l.Log(q) {
		return false
	}
	r.SlowQueries.Add(1)
	return true
}

// Snapshot renders every counter and histogram as a nested map, the value
// Publish exposes through expvar.
func (r *Registry) Snapshot() map[string]any {
	phases := make(map[string]any)
	r.mu.Lock()
	for name, h := range r.phases {
		phases[name] = h.Snapshot()
	}
	r.mu.Unlock()
	return map[string]any{
		"queries": map[string]any{
			"started":    r.QueriesStarted.Value(),
			"finished":   r.QueriesFinished.Value(),
			"cancelled":  r.QueriesCancelled.Value(),
			"failed":     r.QueriesFailed.Value(),
			"slow":       r.SlowQueries.Value(),
			"latency_us": r.latency.Snapshot(),
		},
		"pool": map[string]any{
			"hits":      r.PoolHits.Value(),
			"misses":    r.PoolMisses.Value(),
			"evictions": r.PoolEvictions.Value(),
		},
		"work": map[string]any{
			"rtree_visits":         r.RTreeVisits.Value(),
			"dijkstra_relaxations": r.DijkstraRelaxations.Value(),
			"upper_bounds":         r.UpperBounds.Value(),
			"lower_bounds":         r.LowerBounds.Value(),
			"iterations":           r.Iterations.Value(),
		},
		"objects": map[string]any{
			"epoch":            r.Epoch.Value(),
			"updates_applied":  r.UpdatesApplied.Value(),
			"epochs_created":   r.EpochsCreated.Value(),
			"epochs_reclaimed": r.EpochsReclaimed.Value(),
			"update_batch":     r.updateBatch.Snapshot(),
		},
		"phases": phases,
	}
}

// ObserveQuery folds one finished query into the registry: lifecycle
// counters, work counters, and latency histograms (whole query plus each
// phase). cancelled/failed classify err-terminated queries.
func (r *Registry) ObserveQuery(q QueryObservation) {
	if r == nil {
		return
	}
	switch {
	case q.Cancelled:
		r.QueriesCancelled.Add(1)
	case q.Failed:
		r.QueriesFailed.Add(1)
	default:
		r.QueriesFinished.Add(1)
	}
	r.RTreeVisits.Add(q.RTreeVisits)
	r.DijkstraRelaxations.Add(q.DijkstraRelaxations)
	r.UpperBounds.Add(q.UpperBounds)
	r.LowerBounds.Add(q.LowerBounds)
	r.Iterations.Add(q.Iterations)
	r.latency.Observe(q.CPU)
	for _, p := range q.Phases {
		r.Phase(p.Name).Observe(p.Wall)
	}
}

// QueryObservation is the registry-facing summary of one finished query.
type QueryObservation struct {
	Cancelled, Failed   bool
	CPU                 time.Duration
	RTreeVisits         int64
	DijkstraRelaxations int64
	UpperBounds         int64
	LowerBounds         int64
	Iterations          int64
	Phases              []PhaseObservation
}

// PhaseObservation is one phase's contribution to the latency histograms.
type PhaseObservation struct {
	Name string
	Wall time.Duration
}

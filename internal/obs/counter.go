package obs

import (
	"math/bits"
	"strconv"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready for use. Write only through Add — the sklint obs-atomic rule
// rejects direct field writes anywhere in the module.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value — unlike Counter it may go down
// (in-flight requests, queue depth). Write only through Add/Set; the
// sklint obs-atomic rule rejects direct field writes anywhere in the
// module. The zero value is ready for use.
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by n (negative n decrements).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the bucket count of a latency histogram: bucket i counts
// observations with ceil(log2(µs)) == i, so the range spans 1 µs (bucket 0)
// to ~2.3 h (bucket 42, open-ended) in powers of two.
const histBuckets = 43

// Histogram is a fixed-bucket, power-of-two latency histogram. All updates
// are atomic; concurrent Observe calls never lose counts. The zero value is
// ready for use.
type Histogram struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sumNS.Add(int64(d))
	h.buckets[bucketOf(d)].Add(1)
}

// bucketOf maps a duration to its bucket: the index of the smallest power
// of two of microseconds that is >= d.
func bucketOf(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	if us <= 1 {
		return 0
	}
	b := bits.Len64(us - 1) // ceil(log2(us))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNS.Load()) }

// Quantile returns an upper estimate of the q-quantile (0 < q <= 1): the
// upper edge of the bucket holding the q-th observation. Returns 0 on an
// empty histogram.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
		}
	}
	return time.Duration(uint64(1)<<(histBuckets-1)) * time.Microsecond
}

// Snapshot renders the histogram for expvar: count, mean, estimated tail
// quantiles, and the non-empty buckets keyed by their upper edge in µs.
func (h *Histogram) Snapshot() map[string]any {
	count := h.count.Load()
	out := map[string]any{
		"count": count,
	}
	if count > 0 {
		out["mean_us"] = float64(h.sumNS.Load()) / float64(count) / 1e3
		out["p50_us"] = h.Quantile(0.50).Microseconds()
		out["p95_us"] = h.Quantile(0.95).Microseconds()
		out["p99_us"] = h.Quantile(0.99).Microseconds()
	}
	bucketCounts := make(map[string]int64)
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			bucketCounts[bucketLabel(i)] = n
		}
	}
	if len(bucketCounts) > 0 {
		out["le_us"] = bucketCounts
	}
	return out
}

func bucketLabel(i int) string {
	us := uint64(1) << uint(i)
	return time.Duration(us * uint64(time.Microsecond)).String()
}

// sizeBuckets is the bucket count of a SizeHistogram: bucket i counts
// observations with ceil(log2(n)) == i, spanning 1 (bucket 0) to 2^32
// (bucket 32, open-ended).
const sizeBuckets = 33

// SizeHistogram is the dimensionless sibling of Histogram: fixed power-of-
// two buckets over a non-negative count (objects per update batch) rather
// than a duration. All updates are atomic; the zero value is ready for use.
type SizeHistogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [sizeBuckets]atomic.Int64
}

// NewSizeHistogram returns an empty size histogram.
func NewSizeHistogram() *SizeHistogram { return &SizeHistogram{} }

// Observe records one count (negative clamps to 0).
func (h *SizeHistogram) Observe(n int64) {
	if n < 0 {
		n = 0
	}
	h.count.Add(1)
	h.sum.Add(n)
	h.buckets[sizeBucketOf(n)].Add(1)
}

// sizeBucketOf maps a count to the index of the smallest power of two >= n.
func sizeBucketOf(n int64) int {
	if n <= 1 {
		return 0
	}
	b := bits.Len64(uint64(n) - 1) // ceil(log2(n))
	if b >= sizeBuckets {
		b = sizeBuckets - 1
	}
	return b
}

// Count returns the number of observations.
func (h *SizeHistogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observed counts.
func (h *SizeHistogram) Sum() int64 { return h.sum.Load() }

// Quantile returns an upper estimate of the q-quantile (0 < q <= 1): the
// upper edge of the bucket holding the q-th observation. Returns 0 on an
// empty histogram.
func (h *SizeHistogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < sizeBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return int64(1) << uint(i)
		}
	}
	return int64(1) << (sizeBuckets - 1)
}

// Snapshot renders the histogram for expvar: count, mean, estimated tail
// quantiles, and the non-empty buckets keyed by their upper edge.
func (h *SizeHistogram) Snapshot() map[string]any {
	count := h.count.Load()
	out := map[string]any{
		"count": count,
	}
	if count > 0 {
		out["mean"] = float64(h.sum.Load()) / float64(count)
		out["p50"] = h.Quantile(0.50)
		out["p95"] = h.Quantile(0.95)
		out["p99"] = h.Quantile(0.99)
	}
	bucketCounts := make(map[string]int64)
	for i := 0; i < sizeBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			bucketCounts[strconv.FormatInt(int64(1)<<uint(i), 10)] = n
		}
	}
	if len(bucketCounts) > 0 {
		out["le"] = bucketCounts
	}
	return out
}

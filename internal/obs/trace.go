package obs

import (
	"encoding/json"
	"time"
)

// Trace is the phase-level timeline of one query: a span per MR3 step and
// per LOD refinement iteration. A Trace is owned by the single goroutine
// running the query, so it needs no locking; all methods are nil-safe, so
// disabled tracing costs one nil check per hook.
//
// Timestamps are stored as integer nanoseconds so a trace round-trips
// through JSON exactly.
type Trace struct {
	// Algo names the query algorithm ("mr3", "ea", "range", ...).
	Algo string `json:"algo"`
	// BeginUnixNS is the query start, nanoseconds since the Unix epoch.
	BeginUnixNS int64 `json:"begin_unix_ns"`
	// Spans holds completed and open spans in start order.
	Spans []Span `json:"spans"`

	begin time.Time
}

// Span is one timed section of a query.
type Span struct {
	// Name is the phase or iteration label (e.g. "rank-c1", "iter").
	Name string `json:"name"`
	// Start is the offset from the trace's begin time.
	Start time.Duration `json:"start_ns"`
	// Dur is the span length; zero while the span is open.
	Dur time.Duration `json:"dur_ns"`
	// Attrs carries numeric span attributes, e.g. the DMTM and SDN
	// resolutions of a refinement iteration.
	Attrs map[string]float64 `json:"attrs,omitempty"`
}

// SpanID identifies an open span within its trace; NoSpan is returned by
// StartSpan on a nil trace and ignored by EndSpan.
type SpanID int

// NoSpan is the SpanID of a span that was never started (nil trace).
const NoSpan SpanID = -1

// NewTrace starts a trace for the named algorithm.
func NewTrace(algo string) *Trace {
	now := time.Now()
	return &Trace{Algo: algo, BeginUnixNS: now.UnixNano(), begin: now}
}

// StartSpan opens a span. attrs may be nil; the map is retained, so callers
// must not reuse it.
func (t *Trace) StartSpan(name string, attrs map[string]float64) SpanID {
	if t == nil {
		return NoSpan
	}
	t.Spans = append(t.Spans, Span{
		Name:  name,
		Start: time.Since(t.begin),
		Attrs: attrs,
	})
	return SpanID(len(t.Spans) - 1)
}

// EndSpan closes the span, stamping its duration. No-op for NoSpan or a nil
// trace.
func (t *Trace) EndSpan(id SpanID) {
	if t == nil || id == NoSpan || int(id) >= len(t.Spans) {
		return
	}
	sp := &t.Spans[int(id)]
	sp.Dur = time.Since(t.begin) - sp.Start
}

// JSON renders the trace as a single JSON object; a nil trace renders as
// JSON null.
func (t *Trace) JSON() ([]byte, error) {
	return json.Marshal(t)
}

// ParseTrace decodes a trace produced by JSON.
func ParseTrace(data []byte) (*Trace, error) {
	var t Trace
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, err
	}
	t.begin = time.Unix(0, t.BeginUnixNS)
	return &t, nil
}

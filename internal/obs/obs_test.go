package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one counter from many goroutines; every
// increment must be visible (run under -race this also proves the write
// path is atomic).
func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, each = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*each {
		t.Fatalf("Counter lost updates: got %d, want %d", got, workers*each)
	}
}

// TestHistogramConcurrent checks that concurrent observations are all
// counted and land in the right power-of-two buckets.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const workers, each = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(time.Duration(w+1) * 10 * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*each {
		t.Fatalf("Histogram lost observations: got %d, want %d", got, workers*each)
	}
	wantSum := time.Duration(0)
	for w := 0; w < workers; w++ {
		wantSum += time.Duration(w+1) * 10 * time.Microsecond * each
	}
	if got := h.Sum(); got != wantSum {
		t.Fatalf("Sum = %v, want %v", got, wantSum)
	}
	if q := h.Quantile(1.0); q < 80*time.Microsecond {
		t.Errorf("p100 = %v, want >= 80µs (largest observation)", q)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Microsecond, 0},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{1024 * time.Microsecond, 10},
		{24 * time.Hour, 37},
		{time.Duration(math.MaxInt64), histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestTraceRoundTrip: a trace serialised to JSON and parsed back must be
// identical in all exported fields (timestamps are integer nanoseconds
// precisely so this holds exactly).
func TestTraceRoundTrip(t *testing.T) {
	tr := NewTrace("mr3")
	s1 := tr.StartSpan("knn2d", nil)
	tr.EndSpan(s1)
	s2 := tr.StartSpan("rank-c1", map[string]float64{"targets": 5})
	inner := tr.StartSpan("iter", map[string]float64{"i": 0, "dm_res": 0.25})
	tr.EndSpan(inner)
	tr.EndSpan(s2)

	data, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Algo != tr.Algo || back.BeginUnixNS != tr.BeginUnixNS {
		t.Fatalf("header changed: %+v vs %+v", back, tr)
	}
	if !reflect.DeepEqual(back.Spans, tr.Spans) {
		t.Fatalf("spans changed:\n got %+v\nwant %+v", back.Spans, tr.Spans)
	}
	// Round-trip again: must be byte-identical now that both sides came
	// through the same marshalling.
	data2, err := back.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("second marshal differs:\n%s\n%s", data, data2)
	}
}

// TestTraceNil: all trace methods must be safe no-ops on a nil trace — this
// is what makes disabled instrumentation free.
func TestTraceNil(t *testing.T) {
	var tr *Trace
	id := tr.StartSpan("x", nil)
	if id != NoSpan {
		t.Fatalf("StartSpan on nil trace = %d, want NoSpan", id)
	}
	tr.EndSpan(id) // must not panic
	data, err := tr.JSON()
	if err != nil || string(data) != "null" {
		t.Fatalf("nil trace JSON = %q, %v", data, err)
	}
}

func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowQueryLog(&buf, 10*time.Millisecond)
	if l.Log(SlowQuery{Algo: "mr3", Elapsed: 5 * time.Millisecond}) {
		t.Fatal("fast query logged")
	}
	if !l.Log(SlowQuery{Algo: "mr3", K: 5, Elapsed: 15 * time.Millisecond, Pages: 42}) {
		t.Fatal("slow query not logged")
	}
	var entry SlowQuery
	if err := json.Unmarshal(buf.Bytes(), &entry); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, buf.Bytes())
	}
	if entry.Algo != "mr3" || entry.K != 5 || entry.Pages != 42 || entry.Elapsed != 15*time.Millisecond {
		t.Fatalf("entry mangled: %+v", entry)
	}
}

// TestSlowQueryLogLatchesError: a failing sink must not take the query path
// down with it — the first error latches and later entries are dropped.
func TestSlowQueryLogLatchesError(t *testing.T) {
	l := NewSlowQueryLog(failWriter{}, 0)
	if l.Log(SlowQuery{Algo: "mr3"}) {
		t.Fatal("write against failing sink reported success")
	}
	if l.Err() == nil {
		t.Fatal("error did not latch")
	}
	if l.Log(SlowQuery{Algo: "mr3"}) {
		t.Fatal("log kept writing after error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("sink closed") }

func TestRegistryObserveQuery(t *testing.T) {
	r := NewRegistry()
	r.ObserveQuery(QueryObservation{
		CPU: 3 * time.Millisecond, RTreeVisits: 7, DijkstraRelaxations: 100,
		UpperBounds: 5, LowerBounds: 6, Iterations: 2,
		Phases: []PhaseObservation{{Name: "knn2d", Wall: time.Millisecond}},
	})
	r.ObserveQuery(QueryObservation{Cancelled: true})
	r.ObserveQuery(QueryObservation{Failed: true})
	if got := r.QueriesFinished.Value(); got != 1 {
		t.Errorf("finished = %d, want 1", got)
	}
	if got := r.QueriesCancelled.Value(); got != 1 {
		t.Errorf("cancelled = %d, want 1", got)
	}
	if got := r.QueriesFailed.Value(); got != 1 {
		t.Errorf("failed = %d, want 1", got)
	}
	if got := r.RTreeVisits.Value(); got != 7 {
		t.Errorf("rtree visits = %d, want 7", got)
	}
	if got := r.Phase("knn2d").Count(); got != 1 {
		t.Errorf("phase histogram count = %d, want 1", got)
	}
}

// TestSnapshotShape pins the snapshot's group layout — the structure
// scripts/check.sh greps for through /debug/vars.
func TestSnapshotShape(t *testing.T) {
	r := NewRegistry()
	r.QueriesStarted.Add(2)
	r.PoolHits.Add(3)
	snap := r.Snapshot()
	for _, group := range []string{"queries", "pool", "work", "phases"} {
		if _, ok := snap[group]; !ok {
			t.Errorf("snapshot missing group %q", group)
		}
	}
	q := snap["queries"].(map[string]any)
	if q["started"].(int64) != 2 {
		t.Errorf("queries.started = %v, want 2", q["started"])
	}
	if snap["pool"].(map[string]any)["hits"].(int64) != 3 {
		t.Errorf("pool.hits wrong: %v", snap["pool"])
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-marshallable: %v", err)
	}
}

// TestPublishAndDebugServer covers the expvar + debug-server plumbing:
// publishing is idempotent per registry, a second registry cannot steal the
// name, and /debug/vars actually serves the snapshot.
func TestPublishAndDebugServer(t *testing.T) {
	r := NewRegistry()
	r.QueriesStarted.Add(1)
	const name = "surfknn_test_registry"
	if err := r.Publish(name); err != nil {
		t.Fatal(err)
	}
	if err := r.Publish(name); err != nil {
		t.Fatalf("second Publish of same registry must be a no-op, got %v", err)
	}
	if err := NewRegistry().Publish(name); err == nil {
		t.Fatal("publishing a second registry under a taken name must error")
	}
	if expvar.Get(name) == nil {
		t.Fatal("expvar.Get did not find the published registry")
	}

	srv, addr, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), name) {
		t.Fatalf("/debug/vars does not mention %q", name)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	var snap map[string]any
	if err := json.Unmarshal(vars[name], &snap); err != nil {
		t.Fatalf("registry snapshot not JSON: %v", err)
	}
	if _, ok := snap["queries"]; !ok {
		t.Fatalf("served snapshot missing queries group: %v", snap)
	}
}

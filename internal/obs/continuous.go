package obs

import (
	"expvar"
	"fmt"
	"sync"
)

// ContinuousStats is the metric group of the continuous-query subsystem
// (internal/continuous): the live subscription table, safe-region hit/miss
// outcomes on moves, epoch-invalidation decisions, and the stripe batcher's
// coalescing behaviour. Same contract as ServerStats: all fields are
// updated atomically through their methods (the sklint obs-atomic rule
// forbids direct writes); create with NewContinuousStats.
type ContinuousStats struct {
	// Subscription table.
	Subscriptions Gauge   // live subscriptions
	Evictions     Counter // subscriptions dropped by the LRU bound

	// Move outcomes.
	RegionHits   Counter // moves served from the safe region, zero engine work
	RegionMisses Counter // moves that re-evaluated through the engine

	// Epoch invalidation.
	Invalidations  Counter // subscriptions invalidated by an object update
	Revalidations  Counter // subscriptions proven unaffected and re-stamped
	InvalidateAlls Counter // events without region info: everything invalidated

	// Stripe batcher.
	Stripes       Counter // stripe executions (one session checkout each)
	StripeQueries Counter // re-evaluations run through stripes

	stripeSize *SizeHistogram // subscriptions coalesced per stripe

	publishOnce sync.Once
}

// NewContinuousStats returns an empty metric group ready for concurrent use.
func NewContinuousStats() *ContinuousStats {
	return &ContinuousStats{stripeSize: NewSizeHistogram()}
}

// StripeSize is the subscriptions-per-stripe histogram.
func (s *ContinuousStats) StripeSize() *SizeHistogram { return s.stripeSize }

// Snapshot renders the group as a nested map, the value Publish exposes
// through expvar.
func (s *ContinuousStats) Snapshot() map[string]any {
	return map[string]any{
		"subscriptions": map[string]any{
			"live":      s.Subscriptions.Value(),
			"evictions": s.Evictions.Value(),
		},
		"moves": map[string]any{
			"region_hits":   s.RegionHits.Value(),
			"region_misses": s.RegionMisses.Value(),
		},
		"invalidation": map[string]any{
			"invalidated":     s.Invalidations.Value(),
			"revalidated":     s.Revalidations.Value(),
			"invalidate_alls": s.InvalidateAlls.Value(),
		},
		"stripes": map[string]any{
			"executed": s.Stripes.Value(),
			"queries":  s.StripeQueries.Value(),
			"size":     s.stripeSize.Snapshot(),
		},
	}
}

// Publish exposes the group's Snapshot at /debug/vars under the given name
// (skserve uses "surfknn_continuous"). Same contract as Registry.Publish.
func (s *ContinuousStats) Publish(name string) error {
	var err error
	s.publishOnce.Do(func() {
		if expvar.Get(name) != nil {
			err = fmt.Errorf("obs: expvar name %q is already taken", name)
			return
		}
		expvar.Publish(name, expvar.Func(func() any { return s.Snapshot() }))
	})
	return err
}

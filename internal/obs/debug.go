package obs

import (
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
)

// Publish exposes the registry's Snapshot as one expvar variable, so it is
// served at /debug/vars under the given name (the commands use "surfknn").
// Publishing the same registry again is a no-op; publishing two registries
// under one name is a programming error (expvar would panic), so the second
// caller gets an error instead.
func (r *Registry) Publish(name string) error {
	var err error
	r.publishOnce.Do(func() {
		if expvar.Get(name) != nil {
			err = fmt.Errorf("obs: expvar name %q is already taken", name)
			return
		}
		expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	})
	return err
}

// StartDebugServer serves the process debug endpoints — /debug/vars
// (expvar, including every published Registry) and /debug/pprof/* — on
// addr, in a background goroutine. It returns the resolved listen address
// (useful with ":0"). Call Shutdown on the returned server to stop it.
func StartDebugServer(addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: debug listener: %w", err)
	}
	// The default mux carries the expvar and pprof registrations made at
	// import time.
	srv := &http.Server{Handler: http.DefaultServeMux}
	resolved := ln.Addr().String()
	go func() {
		if serr := srv.Serve(ln); serr != nil && !errors.Is(serr, http.ErrServerClosed) {
			// The listener died underneath us; there is no caller left to
			// return the error to, so record it where expvar can show it.
			debugServeErrors.Add(1)
		}
	}()
	return srv, resolved, nil
}

// debugServeErrors counts debug servers that exited with an unexpected
// error (visible at /debug/vars as surfknn_debug_serve_errors).
var debugServeErrors = expvar.NewInt("surfknn_debug_serve_errors")

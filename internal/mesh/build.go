package mesh

import (
	"surfknn/internal/dem"
	"surfknn/internal/geom"
)

// FromGrid triangulates a regular elevation grid into a TIN. Each grid cell
// is split along alternating diagonals (a "union-jack-like" pattern) to
// avoid directional bias in surface distances. All faces are oriented
// counter-clockwise in (x,y) projection.
func FromGrid(g *dem.Grid) *Mesh {
	verts := make([]geom.Vec3, 0, g.Samples())
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			verts = append(verts, g.Point(c, r))
		}
	}
	id := func(c, r int) VertexID { return VertexID(r*g.Cols + c) }
	faces := make([][3]VertexID, 0, 2*(g.Cols-1)*(g.Rows-1))
	for r := 0; r < g.Rows-1; r++ {
		for c := 0; c < g.Cols-1; c++ {
			v00 := id(c, r)
			v10 := id(c+1, r)
			v01 := id(c, r+1)
			v11 := id(c+1, r+1)
			if (c+r)%2 == 0 {
				// Diagonal v00-v11.
				faces = append(faces,
					[3]VertexID{v00, v10, v11},
					[3]VertexID{v00, v11, v01})
			} else {
				// Diagonal v10-v01.
				faces = append(faces,
					[3]VertexID{v00, v10, v01},
					[3]VertexID{v10, v11, v01})
			}
		}
	}
	return New(verts, faces)
}

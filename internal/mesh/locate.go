package mesh

import (
	"math"

	"surfknn/internal/geom"
)

// Locator answers "which face contains this (x,y) point?" queries with a
// uniform bucket grid over face bounding boxes. Build cost is O(F); a query
// touches only the faces overlapping one bucket.
type Locator struct {
	m          *Mesh
	extent     geom.MBR
	cols, rows int
	cellW      float64
	cellH      float64
	buckets    [][]FaceID
}

// NewLocator builds a locator sized so the average bucket holds a small
// constant number of faces.
func NewLocator(m *Mesh) *Locator {
	ext := m.Extent()
	n := m.NumFaces()
	if n == 0 {
		return &Locator{m: m, extent: ext, cols: 1, rows: 1, cellW: 1, cellH: 1, buckets: make([][]FaceID, 1)}
	}
	side := int(math.Sqrt(float64(n)/2)) + 1
	l := &Locator{
		m:      m,
		extent: ext,
		cols:   side,
		rows:   side,
	}
	l.cellW = ext.Width() / float64(side)
	l.cellH = ext.Height() / float64(side)
	if l.cellW <= 0 {
		l.cellW = 1
	}
	if l.cellH <= 0 {
		l.cellH = 1
	}
	l.buckets = make([][]FaceID, side*side)
	for f := 0; f < n; f++ {
		bb := geom.MBROf3(m.Verts[m.Faces[f][0]], m.Verts[m.Faces[f][1]], m.Verts[m.Faces[f][2]])
		c0, r0 := l.cellOf(bb.MinX, bb.MinY)
		c1, r1 := l.cellOf(bb.MaxX, bb.MaxY)
		for r := r0; r <= r1; r++ {
			for c := c0; c <= c1; c++ {
				l.buckets[r*side+c] = append(l.buckets[r*side+c], FaceID(f))
			}
		}
	}
	return l
}

func (l *Locator) cellOf(x, y float64) (c, r int) {
	c = int((x - l.extent.MinX) / l.cellW)
	r = int((y - l.extent.MinY) / l.cellH)
	if c < 0 {
		c = 0
	}
	if r < 0 {
		r = 0
	}
	if c >= l.cols {
		c = l.cols - 1
	}
	if r >= l.rows {
		r = l.rows - 1
	}
	return c, r
}

// Locate returns a face whose (x,y) projection contains p, or NoFace when p
// is outside the triangulated area.
func (l *Locator) Locate(p geom.Vec2) FaceID {
	if !l.extent.Contains(p) {
		return NoFace
	}
	c, r := l.cellOf(p.X, p.Y)
	for _, f := range l.buckets[r*l.cols+c] {
		if l.m.Triangle(f).ContainsXY(p) {
			return f
		}
	}
	// Numerical edge cases near bucket borders: scan the 8-neighbourhood.
	for dr := -1; dr <= 1; dr++ {
		for dc := -1; dc <= 1; dc++ {
			if dr == 0 && dc == 0 {
				continue
			}
			rr, cc := r+dr, c+dc
			if rr < 0 || cc < 0 || rr >= l.rows || cc >= l.cols {
				continue
			}
			for _, f := range l.buckets[rr*l.cols+cc] {
				if l.m.Triangle(f).ContainsXY(p) {
					return f
				}
			}
		}
	}
	return NoFace
}

// ElevationAt returns the surface elevation at (x,y), interpolated on the
// containing face. ok is false outside the mesh.
func (l *Locator) ElevationAt(p geom.Vec2) (float64, bool) {
	f := l.Locate(p)
	if f == NoFace {
		return 0, false
	}
	return l.m.Triangle(f).InterpolateZ(p)
}

// SurfacePoint lifts a 2-D point onto the surface. ok is false outside the
// mesh.
func (l *Locator) SurfacePoint(p geom.Vec2) (geom.Vec3, bool) {
	z, ok := l.ElevationAt(p)
	if !ok {
		return geom.Vec3{}, false
	}
	return geom.Vec3{X: p.X, Y: p.Y, Z: z}, true
}

package mesh

import (
	"bytes"
	"strings"
	"testing"

	"surfknn/internal/geom"
)

func TestWriteOBJ(t *testing.T) {
	m := twoTriangleMesh()
	var buf bytes.Buffer
	if err := m.WriteOBJ(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if got := strings.Count(out, "\nv "); got+boolToInt(strings.HasPrefix(out, "v ")) != m.NumVerts() {
		t.Errorf("vertex lines = %d, want %d", got, m.NumVerts())
	}
	if got := strings.Count(out, "\nf "); got != m.NumFaces() {
		t.Errorf("face lines = %d, want %d", got, m.NumFaces())
	}
	// Indices are 1-based: no "f 0".
	if strings.Contains(out, "f 0 ") {
		t.Error("OBJ faces must be 1-based")
	}
}

func TestWriteOBJPolyline(t *testing.T) {
	var buf bytes.Buffer
	pts := []geom.Vec3{{X: 0, Y: 0, Z: 0}, {X: 1, Y: 1, Z: 1}, {X: 2, Y: 0, Z: 0}}
	if err := WriteOBJPolyline(&buf, pts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "l 1 2 3") {
		t.Errorf("missing line element:\n%s", out)
	}
	// Single point: no line element.
	buf.Reset()
	if err := WriteOBJPolyline(&buf, pts[:1]); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "\nl") {
		t.Error("single point should have no line element")
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

package mesh

import (
	"math"
	"testing"

	"surfknn/internal/dem"
	"surfknn/internal/geom"
)

// twoTriangleMesh returns a unit square split along the main diagonal.
func twoTriangleMesh() *Mesh {
	verts := []geom.Vec3{
		{X: 0, Y: 0, Z: 0}, {X: 1, Y: 0, Z: 0}, {X: 1, Y: 1, Z: 0}, {X: 0, Y: 1, Z: 0},
	}
	faces := [][3]VertexID{
		{0, 1, 2},
		{0, 2, 3},
	}
	return New(verts, faces)
}

func TestAdjacency(t *testing.T) {
	m := twoTriangleMesh()
	// Face 0 edge 2 is (2,0) = shared diagonal → neighbour face 1.
	if got := m.AdjacentFace(0, 2); got != 1 {
		t.Errorf("AdjacentFace(0,2) = %d, want 1", got)
	}
	// Face 1 edge 0 is (0,2) → neighbour face 0.
	if got := m.AdjacentFace(1, 0); got != 0 {
		t.Errorf("AdjacentFace(1,0) = %d, want 0", got)
	}
	// Boundary edges have no neighbour.
	if got := m.AdjacentFace(0, 0); got != NoFace {
		t.Errorf("AdjacentFace(0,0) = %d, want NoFace", got)
	}
}

func TestFacesOfVertexAndNeighbors(t *testing.T) {
	m := twoTriangleMesh()
	fs := m.FacesOfVertex(0)
	if len(fs) != 2 {
		t.Errorf("vertex 0 incident faces = %v", fs)
	}
	fs = m.FacesOfVertex(1)
	if len(fs) != 1 || fs[0] != 0 {
		t.Errorf("vertex 1 incident faces = %v", fs)
	}
	nb := m.VertexNeighbors(0)
	if len(nb) != 3 {
		t.Errorf("vertex 0 neighbours = %v, want 3 entries", nb)
	}
	nb = m.VertexNeighbors(1)
	if len(nb) != 2 {
		t.Errorf("vertex 1 neighbours = %v, want 2 entries", nb)
	}
}

func TestEdges(t *testing.T) {
	m := twoTriangleMesh()
	edges := m.Edges()
	if len(edges) != 5 {
		t.Fatalf("edge count = %d, want 5", len(edges))
	}
	var diag bool
	for _, e := range edges {
		if e.A == 0 && e.B == 2 {
			diag = true
			if got := m.EdgeLength(e); math.Abs(got-math.Sqrt2) > 1e-12 {
				t.Errorf("diagonal length = %v", got)
			}
		}
		if e.A >= e.B {
			t.Errorf("edge %v not normalised", e)
		}
	}
	if !diag {
		t.Error("missing diagonal edge")
	}
	if got := m.AverageEdgeLength(); got <= 1 || got >= math.Sqrt2 {
		t.Errorf("average edge length = %v out of expected range", got)
	}
}

func TestFromGrid(t *testing.T) {
	g := dem.NewGrid(4, 3, 10)
	for r := 0; r < 3; r++ {
		for c := 0; c < 4; c++ {
			g.Set(c, r, float64(c+r))
		}
	}
	m := FromGrid(g)
	if m.NumVerts() != 12 {
		t.Errorf("verts = %d, want 12", m.NumVerts())
	}
	if m.NumFaces() != 12 { // 3x2 cells * 2
		t.Errorf("faces = %d, want 12", m.NumFaces())
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	ext := m.Extent()
	if ext.MaxX != 30 || ext.MaxY != 20 {
		t.Errorf("extent = %v", ext)
	}
}

func TestFromGridSurfaceArea(t *testing.T) {
	// Flat grid: surface area equals planar area.
	g := dem.NewGrid(5, 5, 10)
	m := FromGrid(g)
	if got, want := m.SurfaceArea(), 1600.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("flat surface area = %v, want %v", got, want)
	}
	// A bumpy grid has strictly larger surface area.
	g2 := dem.Synthesize(dem.BH, 8, 10, 5)
	m2 := FromGrid(g2)
	planar := m2.Extent().Area()
	if m2.SurfaceArea() <= planar {
		t.Errorf("rugged surface area %v should exceed planar %v", m2.SurfaceArea(), planar)
	}
}

func TestLocator(t *testing.T) {
	g := dem.NewGrid(5, 5, 10)
	for r := 0; r < 5; r++ {
		for c := 0; c < 5; c++ {
			g.Set(c, r, float64(c)*2)
		}
	}
	m := FromGrid(g)
	loc := NewLocator(m)
	// Interior point.
	f := loc.Locate(geom.Vec2{X: 12, Y: 17})
	if f == NoFace {
		t.Fatal("interior point not located")
	}
	if !m.Triangle(f).ContainsXY(geom.Vec2{X: 12, Y: 17}) {
		t.Error("located face does not contain the point")
	}
	// Outside.
	if got := loc.Locate(geom.Vec2{X: -5, Y: 0}); got != NoFace {
		t.Errorf("outside point located in face %d", got)
	}
	if got := loc.Locate(geom.Vec2{X: 41, Y: 10}); got != NoFace {
		t.Errorf("outside point located in face %d", got)
	}
	// Grid corner and vertex positions.
	if got := loc.Locate(geom.Vec2{X: 0, Y: 0}); got == NoFace {
		t.Error("corner vertex not located")
	}
	// Elevation: plane z = 2x/10·... here z = c*2 with x = 10c → z = x/5.
	z, ok := loc.ElevationAt(geom.Vec2{X: 15, Y: 5})
	if !ok || math.Abs(z-3) > 1e-9 {
		t.Errorf("ElevationAt = %v ok=%v, want 3", z, ok)
	}
	p, ok := loc.SurfacePoint(geom.Vec2{X: 15, Y: 5})
	if !ok || p.Z != z {
		t.Errorf("SurfacePoint = %v ok=%v", p, ok)
	}
	if _, ok := loc.SurfacePoint(geom.Vec2{X: -1, Y: -1}); ok {
		t.Error("SurfacePoint outside should fail")
	}
}

func TestLocatorExhaustive(t *testing.T) {
	// Every sampled interior point must land in a face that contains it.
	g := dem.Synthesize(dem.EP, 16, 10, 2)
	m := FromGrid(g)
	loc := NewLocator(m)
	ext := m.Extent()
	for i := 0; i < 25; i++ {
		for j := 0; j < 25; j++ {
			p := geom.Vec2{
				X: ext.MinX + (ext.Width()*float64(i)+0.5)/25,
				Y: ext.MinY + (ext.Height()*float64(j)+0.5)/25,
			}
			f := loc.Locate(p)
			if f == NoFace {
				t.Fatalf("point %v not located", p)
			}
			if !m.Triangle(f).ContainsXY(p) {
				t.Fatalf("face %d does not contain %v", f, p)
			}
		}
	}
}

func TestEmbedPoint(t *testing.T) {
	m := twoTriangleMesh()
	loc := NewLocator(m)
	nf := m.NumFaces()
	v, err := m.EmbedPoint(loc, geom.Vec2{X: 0.5, Y: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if int(v) != 4 {
		t.Errorf("new vertex id = %d, want 4", v)
	}
	if m.NumFaces() != nf+2 {
		t.Errorf("faces = %d, want %d", m.NumFaces(), nf+2)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate after embed: %v", err)
	}
	// Embedded vertex is connected to the containing triangle's corners.
	nb := m.VertexNeighbors(v)
	if len(nb) != 3 {
		t.Errorf("embedded vertex neighbours = %v", nb)
	}
	// Elevation interpolated (flat mesh → 0).
	if m.Verts[v].Z != 0 {
		t.Errorf("embedded z = %v", m.Verts[v].Z)
	}
}

func TestEmbedPointAtExistingVertex(t *testing.T) {
	m := twoTriangleMesh()
	loc := NewLocator(m)
	nv := m.NumVerts()
	v, err := m.EmbedPoint(loc, geom.Vec2{X: 0, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 || m.NumVerts() != nv {
		t.Errorf("embedding at existing vertex: v=%d, verts=%d", v, m.NumVerts())
	}
}

func TestEmbedPointOutside(t *testing.T) {
	m := twoTriangleMesh()
	loc := NewLocator(m)
	if _, err := m.EmbedPoint(loc, geom.Vec2{X: 5, Y: 5}); err == nil {
		t.Error("embedding outside should fail")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	// Out of range vertex.
	m := New([]geom.Vec3{{X: 0, Y: 0, Z: 0}, {X: 1, Y: 0, Z: 0}, {X: 0, Y: 1, Z: 0}}, [][3]VertexID{{0, 1, 5}})
	if err := m.Validate(); err == nil {
		t.Error("out-of-range vertex not caught")
	}
	// Repeated vertex.
	m = New([]geom.Vec3{{X: 0, Y: 0, Z: 0}, {X: 1, Y: 0, Z: 0}, {X: 0, Y: 1, Z: 0}}, [][3]VertexID{{0, 1, 1}})
	if err := m.Validate(); err == nil {
		t.Error("degenerate face not caught")
	}
	// Clockwise face.
	m = New([]geom.Vec3{{X: 0, Y: 0, Z: 0}, {X: 1, Y: 0, Z: 0}, {X: 0, Y: 1, Z: 0}}, [][3]VertexID{{0, 2, 1}})
	if err := m.Validate(); err == nil {
		t.Error("clockwise face not caught")
	}
	// Valid mesh passes.
	if err := twoTriangleMesh().Validate(); err != nil {
		t.Errorf("valid mesh rejected: %v", err)
	}
}

func TestClone(t *testing.T) {
	m := twoTriangleMesh()
	c := m.Clone()
	c.Verts[0].Z = 99
	c.Faces[0][0] = 3
	if m.Verts[0].Z == 99 || m.Faces[0][0] == 3 {
		t.Error("Clone shares storage with original")
	}
	if m.String() == "" {
		t.Error("String should describe the mesh")
	}
}

package mesh

import (
	"errors"
	"fmt"

	"surfknn/internal/geom"
)

// ErrOutsideMesh is returned when a point to embed falls outside the
// triangulated area.
var ErrOutsideMesh = errors.New("mesh: point outside triangulated area")

// EmbedPoint inserts a point at (x,y) as a new mesh vertex, lifting it onto
// the surface (interpolated elevation) and splitting the containing face
// into three. This is the "embedding process ... to add the point as a new
// vertex in the surface model by connecting it to the vertices of the same
// triangular facet" from §3.2 of the paper. If the point coincides with an
// existing vertex of the containing face, that vertex is returned instead
// and the mesh is unchanged.
func (m *Mesh) EmbedPoint(loc *Locator, p geom.Vec2) (VertexID, error) {
	f := loc.Locate(p)
	if f == NoFace {
		return NoVertex, fmt.Errorf("%w: (%g,%g)", ErrOutsideMesh, p.X, p.Y)
	}
	tri := m.Triangle(f)
	for i, v := range m.Faces[f] {
		var corner geom.Vec3
		switch i {
		case 0:
			corner = tri.A
		case 1:
			corner = tri.B
		default:
			corner = tri.C
		}
		if corner.XY().Dist(p) < geom.Eps {
			return v, nil
		}
	}
	z, ok := tri.InterpolateZ(p)
	if !ok {
		return NoVertex, fmt.Errorf("mesh: degenerate face %d while embedding (%g,%g)", f, p.X, p.Y)
	}
	nv := VertexID(len(m.Verts))
	m.Verts = append(m.Verts, geom.Vec3{X: p.X, Y: p.Y, Z: z})
	a, b, c := m.Faces[f][0], m.Faces[f][1], m.Faces[f][2]
	// Replace face f with (a,b,nv) and append (b,c,nv), (c,a,nv).
	m.Faces[f] = [3]VertexID{a, b, nv}
	m.Faces = append(m.Faces, [3]VertexID{b, c, nv}, [3]VertexID{c, a, nv})
	m.dirty = true
	return nv, nil
}

// Validate checks structural invariants: vertex indices in range,
// non-degenerate faces, each edge shared by at most two faces, and
// consistent counter-clockwise orientation in (x,y) projection. It returns
// the first violation found, or nil.
func (m *Mesh) Validate() error {
	n := VertexID(len(m.Verts))
	edgeUse := make(map[[2]VertexID]int, len(m.Faces)*3/2)
	for fi, face := range m.Faces {
		for i := 0; i < 3; i++ {
			if face[i] < 0 || face[i] >= n {
				return fmt.Errorf("mesh: face %d references vertex %d out of range [0,%d)", fi, face[i], n)
			}
		}
		if face[0] == face[1] || face[1] == face[2] || face[0] == face[2] {
			return fmt.Errorf("mesh: face %d has repeated vertices %v", fi, face)
		}
		tri := m.Triangle(FaceID(fi))
		area := geom.Triangle2{A: tri.A.XY(), B: tri.B.XY(), C: tri.C.XY()}.SignedArea()
		if area < 0 {
			return fmt.Errorf("mesh: face %d is clockwise in projection (signed area %g)", fi, area)
		}
		for i := 0; i < 3; i++ {
			k := edgeKey(face[i], face[(i+1)%3])
			edgeUse[k]++
			if edgeUse[k] > 2 {
				return fmt.Errorf("mesh: edge %v shared by more than two faces", k)
			}
		}
	}
	return nil
}

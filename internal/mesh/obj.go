package mesh

import (
	"bufio"
	"fmt"
	"io"

	"surfknn/internal/geom"
)

// WriteOBJ serialises the mesh in Wavefront OBJ format (vertices + faces),
// the lingua franca of mesh tooling — handy for inspecting multiresolution
// extractions (Fig. 1 of the paper) in any external viewer.
func (m *Mesh) WriteOBJ(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# surfknn mesh: %d vertices, %d faces\n", m.NumVerts(), m.NumFaces())
	for _, v := range m.Verts {
		fmt.Fprintf(bw, "v %g %g %g\n", v.X, v.Y, v.Z)
	}
	for _, f := range m.Faces {
		// OBJ indices are 1-based.
		fmt.Fprintf(bw, "f %d %d %d\n", f[0]+1, f[1]+1, f[2]+1)
	}
	return bw.Flush()
}

// WriteOBJPolyline serialises a 3-D polyline (e.g. a surface shortest path)
// as an OBJ line element, composable with WriteOBJ output in viewers.
func WriteOBJPolyline(w io.Writer, pts []geom.Vec3) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# surfknn path: %d points\n", len(pts))
	for _, p := range pts {
		fmt.Fprintf(bw, "v %g %g %g\n", p.X, p.Y, p.Z)
	}
	if len(pts) > 1 {
		fmt.Fprint(bw, "l")
		for i := range pts {
			fmt.Fprintf(bw, " %d", i+1)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

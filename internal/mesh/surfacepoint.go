package mesh

import (
	"fmt"

	"surfknn/internal/geom"
)

// SurfacePoint is an arbitrary point lying on the terrain surface, together
// with the face that contains it. Query points and object points are
// SurfacePoints; distance estimators embed them into their networks by
// connecting them to the containing face's corners (on-facet segments are
// valid surface paths).
type SurfacePoint struct {
	Pos  geom.Vec3
	Face FaceID
}

// MakeSurfacePoint lifts the 2-D location p onto the surface.
func MakeSurfacePoint(m *Mesh, loc *Locator, p geom.Vec2) (SurfacePoint, error) {
	f := loc.Locate(p)
	if f == NoFace {
		return SurfacePoint{}, fmt.Errorf("%w: (%g,%g)", ErrOutsideMesh, p.X, p.Y)
	}
	z, ok := m.Triangle(f).InterpolateZ(p)
	if !ok {
		return SurfacePoint{}, fmt.Errorf("mesh: degenerate face %d at (%g,%g)", f, p.X, p.Y)
	}
	return SurfacePoint{Pos: geom.Vec3{X: p.X, Y: p.Y, Z: z}, Face: f}, nil
}

// Corners returns the vertices of the point's containing face.
func (sp SurfacePoint) Corners(m *Mesh) [3]VertexID { return m.Faces[sp.Face] }

// XY returns the point's (x,y) projection.
func (sp SurfacePoint) XY() geom.Vec2 { return sp.Pos.XY() }

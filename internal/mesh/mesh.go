// Package mesh implements the triangulated irregular network (TIN) that
// represents a terrain surface: an indexed triangle mesh with vertex/face
// adjacency, grid triangulation, point location and point embedding. It is
// the "original surface model" on top of which the paper's DMTM and MSDN
// structures are built.
package mesh

import (
	"fmt"

	"surfknn/internal/geom"
)

// VertexID identifies a vertex within a Mesh.
type VertexID int32

// FaceID identifies a triangular face within a Mesh.
type FaceID int32

// NoFace marks the absence of a neighbouring face (mesh boundary).
const NoFace FaceID = -1

// NoVertex marks the absence of a vertex.
const NoVertex VertexID = -1

// Mesh is an indexed triangle mesh. Faces store vertex triples in
// counter-clockwise order when viewed from above (+z).
type Mesh struct {
	Verts []geom.Vec3
	Faces [][3]VertexID

	adj       [][3]FaceID // adj[f][i] = face sharing edge (Faces[f][i], Faces[f][(i+1)%3])
	vertFaces [][]FaceID  // faces incident to each vertex
	dirty     bool        // adjacency must be rebuilt
}

// New creates a mesh from vertex and face lists. Adjacency is built lazily.
func New(verts []geom.Vec3, faces [][3]VertexID) *Mesh {
	return &Mesh{Verts: verts, Faces: faces, dirty: true}
}

// NumVerts returns the vertex count.
func (m *Mesh) NumVerts() int { return len(m.Verts) }

// NumFaces returns the face count.
func (m *Mesh) NumFaces() int { return len(m.Faces) }

// Vertex returns the position of vertex v.
func (m *Mesh) Vertex(v VertexID) geom.Vec3 { return m.Verts[v] }

// Triangle returns the 3-D triangle of face f.
func (m *Mesh) Triangle(f FaceID) geom.Triangle3 {
	t := m.Faces[f]
	return geom.Triangle3{A: m.Verts[t[0]], B: m.Verts[t[1]], C: m.Verts[t[2]]}
}

// ensureAdjacency (re)builds the face-adjacency and vertex-incidence tables.
func (m *Mesh) ensureAdjacency() {
	if !m.dirty {
		return
	}
	m.dirty = false
	m.vertFaces = make([][]FaceID, len(m.Verts))
	type halfEdge struct {
		face FaceID
		side int
	}
	edgeMap := make(map[[2]VertexID]halfEdge, len(m.Faces)*3/2)
	m.adj = make([][3]FaceID, len(m.Faces))
	for f := range m.Faces {
		m.adj[f] = [3]FaceID{NoFace, NoFace, NoFace}
	}
	for fi, face := range m.Faces {
		f := FaceID(fi)
		for i := 0; i < 3; i++ {
			m.vertFaces[face[i]] = append(m.vertFaces[face[i]], f)
			a, b := face[i], face[(i+1)%3]
			key := edgeKey(a, b)
			if prev, ok := edgeMap[key]; ok {
				m.adj[f][i] = prev.face
				m.adj[prev.face][prev.side] = f
			} else {
				edgeMap[key] = halfEdge{face: f, side: i}
			}
		}
	}
}

func edgeKey(a, b VertexID) [2]VertexID {
	if a > b {
		a, b = b, a
	}
	return [2]VertexID{a, b}
}

// AdjacentFace returns the face sharing edge side (between Faces[f][side]
// and Faces[f][(side+1)%3]) with f, or NoFace on the boundary.
func (m *Mesh) AdjacentFace(f FaceID, side int) FaceID {
	m.ensureAdjacency()
	return m.adj[f][side]
}

// FacesOfVertex returns the faces incident to v. The returned slice is
// shared; callers must not modify it.
func (m *Mesh) FacesOfVertex(v VertexID) []FaceID {
	m.ensureAdjacency()
	return m.vertFaces[v]
}

// Edge is an undirected mesh edge with A < B.
type Edge struct {
	A, B VertexID
}

// Edges returns every undirected edge exactly once.
func (m *Mesh) Edges() []Edge {
	seen := make(map[Edge]struct{}, len(m.Faces)*3/2)
	out := make([]Edge, 0, len(m.Faces)*3/2)
	for _, face := range m.Faces {
		for i := 0; i < 3; i++ {
			k := edgeKey(face[i], face[(i+1)%3])
			e := Edge{k[0], k[1]}
			if _, ok := seen[e]; !ok {
				seen[e] = struct{}{}
				out = append(out, e)
			}
		}
	}
	return out
}

// EdgeLength returns the Euclidean length of edge e.
func (m *Mesh) EdgeLength(e Edge) float64 {
	return m.Verts[e.A].Dist(m.Verts[e.B])
}

// AverageEdgeLength returns the mean edge length (0 for an empty mesh).
// The paper uses it as the densest MSDN plane spacing.
func (m *Mesh) AverageEdgeLength() float64 {
	edges := m.Edges()
	if len(edges) == 0 {
		return 0
	}
	var sum float64
	for _, e := range edges {
		sum += m.EdgeLength(e)
	}
	return sum / float64(len(edges))
}

// VertexNeighbors returns the vertices connected to v by an edge.
func (m *Mesh) VertexNeighbors(v VertexID) []VertexID {
	m.ensureAdjacency()
	seen := make(map[VertexID]struct{}, 8)
	var out []VertexID
	for _, f := range m.vertFaces[v] {
		for _, w := range m.Faces[f] {
			if w == v {
				continue
			}
			if _, ok := seen[w]; !ok {
				seen[w] = struct{}{}
				out = append(out, w)
			}
		}
	}
	return out
}

// Extent returns the (x,y) bounding rectangle of all vertices.
func (m *Mesh) Extent() geom.MBR {
	r := geom.EmptyMBR()
	for _, v := range m.Verts {
		r = r.ExtendPoint(v.XY())
	}
	return r
}

// SurfaceArea returns the total 3-D area of all faces.
func (m *Mesh) SurfaceArea() float64 {
	var a float64
	for f := range m.Faces {
		a += m.Triangle(FaceID(f)).Area()
	}
	return a
}

// Clone returns a deep copy of the mesh.
func (m *Mesh) Clone() *Mesh {
	verts := make([]geom.Vec3, len(m.Verts))
	copy(verts, m.Verts)
	faces := make([][3]VertexID, len(m.Faces))
	copy(faces, m.Faces)
	return New(verts, faces)
}

// String summarises the mesh.
func (m *Mesh) String() string {
	return fmt.Sprintf("mesh{%d verts, %d faces}", len(m.Verts), len(m.Faces))
}

package experiments

import (
	"math/rand"

	"surfknn/internal/dem"
	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/pathnet"
	"surfknn/internal/stats"
)

// Ratio reproduces the §1 observation motivating the whole paper: "the
// ratio of the surface distance over Euclidian distance can vary from
// 200-300% ... for rugged mountain areas, to just 20-40% for some other
// areas" (the latter meaning 20–40 % above Euclidean). It samples random
// pairs on BH and EP and reports the mean and maximum overhead
// (dS/dE − 1) in percent.
func Ratio(p Params) (Figure, error) {
	p = p.WithDefaults()
	var mean, maxs stats.Series
	mean.Label = "mean dS/dE - 1 (%)"
	maxs.Label = "max dS/dE - 1 (%)"
	for pi, preset := range []dem.Preset{dem.BH, dem.EP} {
		g := dem.Synthesize(preset, p.Size, p.CellSize, p.Seed)
		m := mesh.FromGrid(g)
		loc := mesh.NewLocator(m)
		pn := pathnet.Build(m, 1)
		ext := m.Extent()
		rng := rand.New(rand.NewSource(p.Seed + 41))
		sum, worst, n := 0.0, 0.0, 0
		for n < p.Queries*8 {
			pa := geom.Vec2{X: ext.MinX + rng.Float64()*ext.Width(), Y: ext.MinY + rng.Float64()*ext.Height()}
			pb := geom.Vec2{X: ext.MinX + rng.Float64()*ext.Width(), Y: ext.MinY + rng.Float64()*ext.Height()}
			a, errA := mesh.MakeSurfacePoint(m, loc, pa)
			b, errB := mesh.MakeSurfacePoint(m, loc, pb)
			if errA != nil || errB != nil {
				continue
			}
			de := a.Pos.XY().Dist(b.Pos.XY())
			if de < ext.Width()/10 {
				continue // very close pairs make the ratio noisy
			}
			ds, _ := pn.Distance(a, b)
			over := (ds/de - 1) * 100
			sum += over
			if over > worst {
				worst = over
			}
			n++
		}
		x := float64(pi) // 0 = BH, 1 = EP
		mean.Add(x, sum/float64(n))
		maxs.Add(x, worst)
		p.Logf("ratio %s mean=%.1f%% max=%.1f%%", preset.Name, sum/float64(n), worst)
	}
	return Figure{
		ID:     "ratio",
		Title:  "surface/Euclidean distance overhead (x: 0=BH rugged, 1=EP smooth)",
		XLabel: "terrain",
		Series: []stats.Series{mean, maxs},
		Notes:  "paper §1: rugged areas 200-300% vs 20-40% elsewhere; synthetic presets preserve the contrast, not the absolute numbers",
	}, nil
}

package experiments

import (
	"fmt"

	"surfknn/internal/core"
	"surfknn/internal/dem"
	"surfknn/internal/mesh"
	"surfknn/internal/stats"
)

// algoRun measures one algorithm at one parameter point, averaged over the
// query batch.
type algoRun struct {
	label string
	run   func(q int, k int) (stats.Metrics, error)
}

// Fig10 reproduces Figure 10: total time, CPU time and pages accessed as k
// grows from 3 to 30 (o = 4), for MR3 with s = 1, 2, 3 and the EA
// benchmark, on both terrains: (a–c) BH, (d–f) EP.
func Fig10(p Params) ([]Figure, error) {
	p = p.WithDefaults()
	var figs []Figure
	for _, preset := range []dem.Preset{dem.BH, dem.EP} {
		db, qs, err := p.buildDB(preset, p.Density)
		if err != nil {
			return nil, err
		}
		algos := mrAndEA(db, qs)
		total := make([]stats.Series, len(algos))
		cpu := make([]stats.Series, len(algos))
		pages := make([]stats.Series, len(algos))
		for ai, a := range algos {
			total[ai].Label = a.label
			cpu[ai].Label = a.label
			pages[ai].Label = a.label
		}
		for _, k := range kLadder(len(db.Objects())) {
			for ai, a := range algos {
				var agg stats.Metrics
				for qi := range qs {
					m, err := a.run(qi, k)
					if err != nil {
						return nil, fmt.Errorf("fig10 %s %s k=%d: %w", preset.Name, a.label, k, err)
					}
					agg.Add(m)
				}
				agg.Scale(len(qs))
				total[ai].Add(float64(k), agg.Elapsed.Seconds()*1000)
				cpu[ai].Add(float64(k), agg.CPU.Seconds()*1000)
				pages[ai].Add(float64(k), float64(agg.Pages))
				p.Logf("fig10 %s %s k=%d %s", preset.Name, a.label, k, agg)
			}
		}
		suffix := " (" + preset.Name + ", o=4)"
		figs = append(figs,
			Figure{ID: "fig10-" + preset.Name + "-total", Title: "total time ms vs k" + suffix, XLabel: "k", Series: total},
			Figure{ID: "fig10-" + preset.Name + "-cpu", Title: "CPU time ms vs k" + suffix, XLabel: "k", Series: cpu},
			Figure{ID: "fig10-" + preset.Name + "-pages", Title: "pages accessed vs k" + suffix, XLabel: "k", Series: pages},
		)
	}
	return figs, nil
}

// mrAndEA builds the four benchmarked algorithms over a shared query batch.
// The whole batch runs through one Session: the harness is sequential, and
// per-query accounting makes a reused session report the same page counts
// as one-shot queries (the paper's numbers stay bit-identical).
func mrAndEA(db *core.TerrainDB, queries []mesh.SurfacePoint) []algoRun {
	sess := db.NewSession(nil)
	mk := func(s core.Schedule) func(int, int) (stats.Metrics, error) {
		return func(qi, k int) (stats.Metrics, error) {
			r, err := sess.MR3(queries[qi], k, s, core.Options{})
			return r.Metrics(), err
		}
	}
	return []algoRun{
		{"MR3 s=1", mk(core.S1)},
		{"MR3 s=2", mk(core.S2)},
		{"MR3 s=3", mk(core.S3)},
		{"EA", func(qi, k int) (stats.Metrics, error) {
			r, err := sess.EA(queries[qi], k)
			return r.Metrics(), err
		}},
	}
}

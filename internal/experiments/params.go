// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the synthetic BH/EP terrains: one driver per figure,
// each producing labelled series that print as aligned text tables. The
// scale is configurable so the same drivers back both the quick `go test
// -bench` targets and the full `skbench` runs.
package experiments

import (
	"fmt"
	"time"

	"surfknn/internal/core"
	"surfknn/internal/dem"
	"surfknn/internal/mesh"
	"surfknn/internal/obs"
	"surfknn/internal/stats"
	"surfknn/internal/workload"
)

// Params scales an experiment run.
type Params struct {
	// Size is the terrain grid size (power of two; the grid has
	// (Size+1)² samples). Default 64.
	Size int
	// CellSize is the sample spacing in metres. Default 100 m, making the
	// default terrain 6.4 km × 6.4 km ≈ 41 km² so that the paper's object
	// densities (1–10 per km²) are meaningful.
	CellSize float64
	// Queries is the number of queries averaged per data point. Default 3.
	Queries int
	// Density is the object density (objects/km²) for the k-sweep
	// experiments. Default 4 (as in Fig. 10).
	Density float64
	// K is the fixed k for the density sweep (Fig. 11). Default 10.
	K int
	// Seed makes runs reproducible. Default 2006 (the paper's year).
	Seed int64
	// PageCost is the simulated per-page I/O latency. Default 1 ms.
	PageCost time.Duration
	// Verbose enables progress logging to stderr.
	Verbose bool
	Logf    func(format string, args ...any)
	// Obs, when non-nil, instruments every database the run builds with
	// this registry, so skbench's -debug-addr endpoint shows live counters.
	// Leave nil for measurement runs: uninstrumented databases skip all
	// registry work and reproduce the figures bit-identically.
	Obs *obs.Registry
}

// WithDefaults fills zero fields.
func (p Params) WithDefaults() Params {
	if p.Size == 0 {
		p.Size = 64
	}
	if p.CellSize == 0 {
		p.CellSize = 100
	}
	if p.Queries == 0 {
		p.Queries = 3
	}
	if p.Density == 0 {
		p.Density = 4
	}
	if p.K == 0 {
		p.K = 10
	}
	if p.Seed == 0 {
		p.Seed = 2006
	}
	if p.PageCost == 0 {
		p.PageCost = time.Millisecond
	}
	if p.Logf == nil {
		p.Logf = func(string, ...any) {}
	}
	return p
}

// Figure is the output of one experiment driver.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	Series []stats.Series
	Notes  string
}

// String renders the figure as an aligned text table.
func (f Figure) String() string {
	out := stats.Table(fmt.Sprintf("%s — %s", f.ID, f.Title), f.XLabel, f.Series)
	if f.Notes != "" {
		out += "note: " + f.Notes + "\n"
	}
	return out
}

// buildDB constructs a terrain database for a preset at the configured
// scale, with objects at the given density.
func (p Params) buildDB(preset dem.Preset, density float64) (*core.TerrainDB, []mesh.SurfacePoint, error) {
	g := dem.Synthesize(preset, p.Size, p.CellSize, p.Seed)
	m := mesh.FromGrid(g)
	db, err := core.BuildTerrainDB(m, core.Config{PageCost: p.PageCost})
	if err != nil {
		return nil, nil, err
	}
	objs, err := workload.UniformObjects(m, db.Loc, density, p.Seed+7)
	if err != nil {
		return nil, nil, err
	}
	db.SetObjects(objs)
	if p.Obs != nil {
		db.Instrument(p.Obs)
	}
	qs, err := workload.RandomQueries(m, db.Loc, p.Queries, m.Extent().Width()/8, p.Seed+13)
	if err != nil {
		return nil, nil, err
	}
	return db, qs, nil
}

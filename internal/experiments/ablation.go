package experiments

import (
	"surfknn/internal/core"
	"surfknn/internal/dem"
	"surfknn/internal/stats"
)

// Ablation measures the design choices DESIGN.md calls out, at one fixed
// setting (BH, o = 4, k = 10, schedule s = 1): integrated I/O regions,
// dummy lower bounds, and both-plane-family lower bounds — each toggled
// individually against the all-defaults baseline. Series report total time,
// CPU time and pages per variant.
func Ablation(p Params) (Figure, error) {
	p = p.WithDefaults()
	db, qs, err := p.buildDB(dem.BH, p.Density)
	if err != nil {
		return Figure{}, err
	}
	k := p.K
	if k > len(db.Objects()) {
		k = len(db.Objects())
	}
	variants := []struct {
		name string
		opt  core.Options
	}{
		{"baseline", core.Options{}},
		{"no I/O integration", core.Options{DisableIOIntegration: true}},
		{"no dummy lb", core.Options{DisableDummyLB: true}},
		{"both-family lb", core.Options{BothFamilyLB: true}},
	}
	total := stats.Series{Label: "total ms"}
	cpu := stats.Series{Label: "cpu ms"}
	pages := stats.Series{Label: "pages"}
	lbs := stats.Series{Label: "lb calcs"}
	sess := db.NewSession(nil)
	for vi, v := range variants {
		var agg stats.Metrics
		for _, q := range qs {
			r, err := sess.MR3(q, k, core.S1, v.opt)
			if err != nil {
				return Figure{}, err
			}
			agg.Add(r.Metrics())
		}
		agg.Scale(len(qs))
		x := float64(vi)
		total.Add(x, agg.Elapsed.Seconds()*1000)
		cpu.Add(x, agg.CPU.Seconds()*1000)
		pages.Add(x, float64(agg.Pages))
		lbs.Add(x, float64(agg.LowerBounds))
		p.Logf("ablation %-18s %s", v.name, agg)
	}
	return Figure{
		ID:     "ablation",
		Title:  "design-choice ablations (BH, o=4, k=10, s=1; x: 0=baseline, 1=no I/O integration, 2=no dummy lb, 3=both-family lb)",
		XLabel: "variant",
		Series: []stats.Series{total, cpu, pages, lbs},
	}, nil
}

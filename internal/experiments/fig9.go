package experiments

import (
	"surfknn/internal/core"
	"surfknn/internal/dem"
	"surfknn/internal/stats"
)

// Fig9 reproduces Figure 9: pages accessed versus k with the integrated
// I/O region option on and off (BH, o = 4, s = 2, as in §5.4). The paper
// finds the "on" curve growing much more slowly with k.
func Fig9(p Params) (Figure, error) {
	p = p.WithDefaults()
	db, qs, err := p.buildDB(dem.BH, p.Density)
	if err != nil {
		return Figure{}, err
	}
	on := stats.Series{Label: "integration on"}
	off := stats.Series{Label: "integration off"}
	sess := db.NewSession(nil)
	for _, k := range kLadder(len(db.Objects())) {
		var pagesOn, pagesOff int64
		for _, q := range qs {
			r1, err := sess.MR3(q, k, core.S2, core.Options{})
			if err != nil {
				return Figure{}, err
			}
			pagesOn += r1.Metrics().Pages
			r2, err := sess.MR3(q, k, core.S2, core.Options{DisableIOIntegration: true})
			if err != nil {
				return Figure{}, err
			}
			pagesOff += r2.Metrics().Pages
		}
		n := int64(len(qs))
		on.Add(float64(k), float64(pagesOn/n))
		off.Add(float64(k), float64(pagesOff/n))
		p.Logf("fig9 k=%d on=%d off=%d", k, pagesOn/n, pagesOff/n)
	}
	return Figure{
		ID:     "fig9",
		Title:  "effect of integrated I/O region (pages accessed, BH, o=4, s=2)",
		XLabel: "k",
		Series: []stats.Series{off, on},
	}, nil
}

// kLadder is the paper's k sweep (3..30 step 3), clamped to the object
// count.
func kLadder(objects int) []int {
	var ks []int
	for k := 3; k <= 30; k += 3 {
		if k <= objects {
			ks = append(ks, k)
		}
	}
	if len(ks) == 0 {
		ks = []int{1}
	}
	return ks
}

package experiments

import (
	"strings"
	"testing"
)

// tiny returns parameters small enough for unit tests.
func tiny() Params {
	return Params{Size: 16, CellSize: 100, Queries: 1, Density: 4, K: 3, Seed: 99}
}

func TestFig1(t *testing.T) {
	f, err := Fig1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 3 {
		t.Fatalf("series = %d", len(f.Series))
	}
	verts := f.Series[0]
	// Vertex counts decrease with resolution.
	for i := 1; i < len(verts.Y); i++ {
		if verts.Y[i] > verts.Y[i-1] {
			t.Errorf("vertex counts not decreasing: %v", verts.Y)
		}
	}
	if verts.Y[0] != 17*17 {
		t.Errorf("full-resolution vertices = %v, want 289", verts.Y[0])
	}
	if !strings.Contains(f.String(), "fig1") {
		t.Error("rendering missing figure id")
	}
}

func TestFig7(t *testing.T) {
	p := tiny()
	f, err := Fig7(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 3 {
		t.Fatalf("series = %d", len(f.Series))
	}
	ch, ea := f.Series[0], f.Series[1]
	if len(ch.X) < 2 || len(ch.X) != len(ea.X) {
		t.Fatalf("sweep sizes: ch=%d ea=%d", len(ch.X), len(ea.X))
	}
	// Vertex counts ascend.
	for i := 1; i < len(ch.X); i++ {
		if ch.X[i] <= ch.X[i-1] {
			t.Error("vertex counts must ascend")
		}
	}
}

func TestFig8Shape(t *testing.T) {
	f, err := Fig8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Series: Euclidean + one per SDN resolution.
	if len(f.Series) != 6 {
		t.Fatalf("series = %d, want 6", len(f.Series))
	}
	for _, s := range f.Series {
		for i, y := range s.Y {
			if y <= 0 || y > 100+1e-9 {
				t.Errorf("%s: accuracy %v out of (0,100] at x=%v", s.Label, y, s.X[i])
			}
		}
		// Accuracy must not decrease with DMTM resolution (ub shrinks).
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1]-1e-6 {
				t.Errorf("%s: accuracy decreased: %v", s.Label, s.Y)
			}
		}
	}
	euc := f.Series[0]
	full := f.Series[5] // SDN 100%
	last := len(euc.Y) - 1
	// The SDN bound takes the Euclidean floor as a fallback, so it can
	// never be worse; on tiny terrains it may tie.
	if full.Y[last] < euc.Y[last]-1e-9 {
		t.Errorf("SDN 100%% (%v) below Euclidean lb (%v) at full DMTM", full.Y[last], euc.Y[last])
	}
}

func TestRunnerUnknown(t *testing.T) {
	if _, err := Run("nope", tiny()); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunnerFig9Tiny(t *testing.T) {
	p := tiny()
	figs, err := Run("9", p)
	if err != nil {
		t.Fatal(err)
	}
	f := figs[0]
	if len(f.Series) != 2 {
		t.Fatalf("series = %d", len(f.Series))
	}
	off, on := f.Series[0], f.Series[1]
	for i := range on.Y {
		if on.Y[i] > off.Y[i] {
			t.Errorf("k=%v: integration on (%v pages) exceeds off (%v)", on.X[i], on.Y[i], off.Y[i])
		}
	}
}

func TestRatio(t *testing.T) {
	f, err := Ratio(tiny())
	if err != nil {
		t.Fatal(err)
	}
	mean := f.Series[0]
	if len(mean.Y) != 2 {
		t.Fatalf("ratio points = %d", len(mean.Y))
	}
	bh, ep := mean.Y[0], mean.Y[1]
	if bh <= ep {
		t.Errorf("BH overhead (%v%%) should exceed EP (%v%%)", bh, ep)
	}
	if ep < 0 || bh < 0 {
		t.Errorf("overheads must be non-negative: %v %v", bh, ep)
	}
}

func TestFig10Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("driver sweep")
	}
	p := tiny()
	figs, err := Fig10(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 6 { // total/cpu/pages × BH/EP
		t.Fatalf("figures = %d", len(figs))
	}
	for _, f := range figs {
		if len(f.Series) != 4 {
			t.Fatalf("%s: %d series", f.ID, len(f.Series))
		}
		for _, s := range f.Series {
			for _, y := range s.Y {
				if y < 0 {
					t.Fatalf("%s %s: negative measurement %v", f.ID, s.Label, y)
				}
			}
		}
	}
}

func TestFig11Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("driver sweep")
	}
	p := tiny()
	figs, err := Fig11(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 6 {
		t.Fatalf("figures = %d", len(figs))
	}
	// Density axis runs 1..10.
	s := figs[0].Series[0]
	if len(s.X) != 10 || s.X[0] != 1 || s.X[9] != 10 {
		t.Fatalf("density axis = %v", s.X)
	}
}

func TestAblationTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("driver sweep")
	}
	f, err := Ablation(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 4 {
		t.Fatalf("series = %d", len(f.Series))
	}
	pages := f.Series[2]
	if len(pages.Y) != 4 {
		t.Fatalf("variants = %d", len(pages.Y))
	}
	// Disabling I/O integration can only increase pages.
	if pages.Y[1] < pages.Y[0] {
		t.Errorf("no-integration pages %v below baseline %v", pages.Y[1], pages.Y[0])
	}
}

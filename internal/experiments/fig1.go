package experiments

import (
	"math"

	"surfknn/internal/dem"
	"surfknn/internal/mesh"
	"surfknn/internal/multires"
	"surfknn/internal/stats"
)

// Fig1 reproduces Figure 1: the same terrain at decreasing resolutions.
// The paper shows renderings at 100,000 and 10,000 triangles; the series
// here reports the triangle counts actually obtained when the DM tree is
// cut at decreasing fractions of the original points, demonstrating the
// multiresolution extraction that underlies everything else.
func Fig1(p Params) (Figure, error) {
	p = p.WithDefaults()
	g := dem.Synthesize(dem.BH, p.Size, p.CellSize, p.Seed)
	m := mesh.FromGrid(g)
	tree, err := multires.BuildFromMesh(m)
	if err != nil {
		return Figure{}, err
	}
	fractions := []float64{1.0, 0.5, 0.25, 0.1, 0.05, 0.01}
	var verts, faces, errs stats.Series
	verts.Label = "vertices"
	faces.Label = "triangles"
	errs.Label = "sqrt(QEM err)"
	for _, f := range fractions {
		tm := tree.TimeForResolution(f)
		ex := tree.ExtractMesh(m, tm)
		verts.Add(f*100, float64(ex.NumVerts()))
		faces.Add(f*100, float64(ex.NumFaces()))
		errs.Add(f*100, math.Sqrt(tree.ErrorAt(tm)))
	}
	return Figure{
		ID:     "fig1",
		Title:  "terrain extracted at decreasing resolution (BH)",
		XLabel: "resolution %",
		Series: []stats.Series{verts, faces, errs},
		Notes:  "the paper renders 100k- and 10k-triangle versions; here the extraction itself is measured",
	}, nil
}

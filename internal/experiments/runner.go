package experiments

import "fmt"

// Run executes the named experiment ("1", "7", "8", "9", "10", "11",
// "ratio", "ablation" or "all") and returns its figures.
func Run(name string, p Params) ([]Figure, error) {
	switch name {
	case "1", "fig1":
		f, err := Fig1(p)
		return []Figure{f}, err
	case "7", "fig7":
		f, err := Fig7(p)
		return []Figure{f}, err
	case "8", "fig8":
		f, err := Fig8(p)
		return []Figure{f}, err
	case "9", "fig9":
		f, err := Fig9(p)
		return []Figure{f}, err
	case "10", "fig10":
		return Fig10(p)
	case "11", "fig11":
		return Fig11(p)
	case "ratio":
		f, err := Ratio(p)
		return []Figure{f}, err
	case "ablation":
		f, err := Ablation(p)
		return []Figure{f}, err
	case "all":
		var out []Figure
		for _, n := range []string{"1", "ratio", "7", "8", "9", "10", "11", "ablation"} {
			figs, err := Run(n, p)
			if err != nil {
				return out, fmt.Errorf("experiment %s: %w", n, err)
			}
			out = append(out, figs...)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (want 1, 7, 8, 9, 10, 11, ratio, ablation or all)", name)
	}
}

package experiments

import (
	"time"

	"surfknn/internal/dem"
	"surfknn/internal/geodesic"
	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/pathnet"
	"surfknn/internal/stats"
)

// Fig7 reproduces Figure 7: response time of the exact Chen–Han-style
// algorithm (CH) versus the Enhanced Approximation (EA, Kanai–Suzuki
// pathnet) as the number of surface vertices grows. One source/target pair
// per mesh size, corners of the terrain, so the path spans the whole mesh.
// The paper's conclusion — CH grows super-linearly and becomes unusable
// around 10⁴ vertices while EA stays moderate — is scale-independent.
func Fig7(p Params) (Figure, error) {
	p = p.WithDefaults()
	base := dem.Synthesize(dem.BH, p.Size, p.CellSize, p.Seed)
	sides := fig7Sides(p.Size + 1)
	var chSeries, eaSeries, refSeries stats.Series
	chSeries.Label = "CH (ms)"
	eaSeries.Label = "EA (ms)"
	refSeries.Label = "EA-refined (ms)"
	for _, side := range sides {
		g, err := base.Crop(0, 0, side, side)
		if err != nil {
			return Figure{}, err
		}
		m := mesh.FromGrid(g)
		loc := mesh.NewLocator(m)
		ext := m.Extent()
		in := ext.Width() / 20
		a, err := mesh.MakeSurfacePoint(m, loc, geom.Vec2{X: ext.MinX + in, Y: ext.MinY + in})
		if err != nil {
			return Figure{}, err
		}
		b, err := mesh.MakeSurfacePoint(m, loc, geom.Vec2{X: ext.MaxX - in, Y: ext.MaxY - in})
		if err != nil {
			return Figure{}, err
		}
		verts := float64(m.NumVerts())

		start := time.Now()
		solver := geodesic.NewSolver(m)
		dCH := solver.Distance(a, b)
		chSeries.Add(verts, float64(time.Since(start).Microseconds())/1000)

		start = time.Now()
		pn := pathnet.Build(m, 1)
		dEA, _ := pn.Distance(a, b)
		eaSeries.Add(verts, float64(time.Since(start).Microseconds())/1000)

		// The paper's EA terminates "once it reaches 97% accuracy" via
		// Kanai–Suzuki selective refinement; measure that variant too.
		start = time.Now()
		ref := pathnet.NewRefiner(m, loc)
		dRef, _, _ := ref.Distance(a, b)
		refSeries.Add(verts, float64(time.Since(start).Microseconds())/1000)

		p.Logf("fig7 side=%d verts=%.0f CH=%.3f EA=%.3f refined=%.3f (EA within %.2f%% of exact)",
			side, verts, dCH, dEA, dRef, (dEA/dCH-1)*100)
	}
	return Figure{
		ID:     "fig7",
		Title:  "CH vs EA response time by vertex count",
		XLabel: "vertices",
		Series: []stats.Series{chSeries, eaSeries, refSeries},
		Notes:  "times include per-query structure build, as in the paper's per-pair runs",
	}, nil
}

// fig7Sides picks an increasing ladder of crop sizes up to the full grid.
func fig7Sides(maxSide int) []int {
	candidates := []int{9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257}
	var out []int
	for _, s := range candidates {
		if s <= maxSide {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		out = []int{maxSide}
	}
	return out
}

package experiments

import (
	"fmt"

	"surfknn/internal/dem"
	"surfknn/internal/stats"
)

// Fig11 reproduces Figure 11: total time, CPU time and pages accessed as
// the object density grows from 1 to 10 objects/km² with k fixed at 10,
// for MR3 s = 1, 2, 3 and EA, on (a–c) BH and (d–f) EP. The paper finds
// every cost dropping as density grows (a denser object set shrinks the
// search region) with EA deteriorating sharply at low density.
func Fig11(p Params) ([]Figure, error) {
	p = p.WithDefaults()
	densities := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	var figs []Figure
	for _, preset := range []dem.Preset{dem.BH, dem.EP} {
		var total, cpu, pages []stats.Series
		labels := []string{"MR3 s=1", "MR3 s=2", "MR3 s=3", "EA"}
		total = makeSeries(labels)
		cpu = makeSeries(labels)
		pages = makeSeries(labels)
		for _, o := range densities {
			db, qs, err := p.buildDB(preset, o)
			if err != nil {
				return nil, err
			}
			k := p.K
			if k > len(db.Objects()) {
				k = len(db.Objects())
			}
			algos := mrAndEA(db, qs)
			for ai, a := range algos {
				var agg stats.Metrics
				for qi := range qs {
					m, err := a.run(qi, k)
					if err != nil {
						return nil, fmt.Errorf("fig11 %s %s o=%g: %w", preset.Name, a.label, o, err)
					}
					agg.Add(m)
				}
				agg.Scale(len(qs))
				total[ai].Add(o, agg.Elapsed.Seconds()*1000)
				cpu[ai].Add(o, agg.CPU.Seconds()*1000)
				pages[ai].Add(o, float64(agg.Pages))
				p.Logf("fig11 %s %s o=%g k=%d %s", preset.Name, a.label, o, k, agg)
			}
		}
		suffix := " (" + preset.Name + ", k=10)"
		figs = append(figs,
			Figure{ID: "fig11-" + preset.Name + "-total", Title: "total time ms vs density" + suffix, XLabel: "o", Series: total},
			Figure{ID: "fig11-" + preset.Name + "-cpu", Title: "CPU time ms vs density" + suffix, XLabel: "o", Series: cpu},
			Figure{ID: "fig11-" + preset.Name + "-pages", Title: "pages accessed vs density" + suffix, XLabel: "o", Series: pages},
		)
	}
	return figs, nil
}

func makeSeries(labels []string) []stats.Series {
	out := make([]stats.Series, len(labels))
	for i, l := range labels {
		out[i].Label = l
	}
	return out
}

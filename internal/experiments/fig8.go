package experiments

import (
	"math/rand"
	"strconv"

	"surfknn/internal/core"
	"surfknn/internal/dem"
	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/multires"
	"surfknn/internal/stats"
)

// Fig8 reproduces Figure 8: distance-range accuracy ε = lb/ub as the DMTM
// resolution grows (0.5 % … 200 %), one series per SDN resolution plus the
// static Euclidean lower bound. The paper observes the Euclidean baseline
// plateauing near 78 % while full-resolution MSDN reaches ≈97 %.
func Fig8(p Params) (Figure, error) {
	p = p.WithDefaults()
	g := dem.Synthesize(dem.BH, p.Size, p.CellSize, p.Seed)
	m := mesh.FromGrid(g)
	db, err := core.BuildTerrainDB(m, core.Config{PageCost: p.PageCost})
	if err != nil {
		return Figure{}, err
	}
	ext := m.Extent()
	// Random point pairs at a representative spread of separations.
	nPairs := p.Queries * 4
	rng := rand.New(rand.NewSource(p.Seed + 31))
	type pair struct{ a, b mesh.SurfacePoint }
	var pairs []pair
	for len(pairs) < nPairs {
		pa := geom.Vec2{X: ext.MinX + rng.Float64()*ext.Width(), Y: ext.MinY + rng.Float64()*ext.Height()}
		pb := geom.Vec2{X: ext.MinX + rng.Float64()*ext.Width(), Y: ext.MinY + rng.Float64()*ext.Height()}
		a, errA := db.SurfacePointAt(pa)
		b, errB := db.SurfacePointAt(pb)
		if errA != nil || errB != nil || a.Face == b.Face {
			continue
		}
		pairs = append(pairs, pair{a, b})
	}
	dmtmLadder := []float64{0.005, 0.25, 0.5, 0.75, 1.0, core.PathnetResolution}
	sdnResList := core.SDNLadder
	// ubs[pi][di]: monotone upper bounds per pair per DMTM level.
	ubs := make([][]float64, len(pairs))
	for pi, pr := range pairs {
		ubs[pi] = make([]float64, len(dmtmLadder))
		prev := -1.0
		for di, res := range dmtmLadder {
			var ub float64
			if res >= core.PathnetResolution {
				ub, _ = db.Path.Distance(pr.a, pr.b)
			} else {
				tm := db.Tree.TimeForResolution(res)
				est := db.Tree.UpperBound(m, pr.a, pr.b, tm, multires.IncludeAll)
				ub = est.UB
			}
			if prev > 0 && ub > prev {
				ub = prev // running minimum, as the ranker keeps
			}
			ubs[pi][di] = ub
			prev = ub
		}
	}

	var series []stats.Series
	// Euclidean-lb baseline.
	euc := stats.Series{Label: "Euclidean lb"}
	for di, res := range dmtmLadder {
		sum := 0.0
		for pi, pr := range pairs {
			sum += pr.a.Pos.Dist(pr.b.Pos) / ubs[pi][di]
		}
		euc.Add(res*100, 100*sum/float64(len(pairs)))
	}
	series = append(series, euc)
	// One series per SDN resolution. As in MR3 itself, the lower bound is
	// estimated within the search ellipse of the *current* upper bound, so
	// it tightens as the DMTM resolution shrinks that ellipse — the
	// coupling behind Fig. 8's rising curves.
	for _, sres := range sdnResList {
		s := stats.Series{Label: sdnLabel(sres)}
		for di, res := range dmtmLadder {
			sum := 0.0
			for pi, pr := range pairs {
				region := geom.NewEllipse(pr.a.XY(), pr.b.XY(), ubs[pi][di]).MBR()
				if region.IsEmpty() {
					region = ext
				}
				est := db.MSDN.LowerBound(pr.a.Pos, pr.b.Pos, region, sres)
				lb := est.LB
				if lb > ubs[pi][di] {
					lb = ubs[pi][di]
				}
				sum += lb / ubs[pi][di]
			}
			s.Add(res*100, 100*sum/float64(len(pairs)))
		}
		series = append(series, s)
	}
	return Figure{
		ID:     "fig8",
		Title:  "distance range accuracy ε = lb/ub (%) by DMTM resolution",
		XLabel: "DMTM %",
		Series: series,
		Notes:  "200% = pathnet level (dN = dS); paper: Euclidean plateaus ≈78%, SDN 100% reaches ≈97%",
	}, nil
}

func sdnLabel(res float64) string {
	return "SDN " + strconv.FormatFloat(res*100, 'g', -1, 64) + "%"
}

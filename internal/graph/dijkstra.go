package graph

import "math"

// Inf is the distance reported for unreachable vertices.
var Inf = math.Inf(1)

// Dijkstra computes single-source shortest distances from src to every
// vertex. Unreachable vertices get Inf.
//
//sklint:hotpath
func Dijkstra(g *Graph, src int) []float64 {
	dist := make([]float64, g.NumVertices())
	for i := range dist {
		dist[i] = Inf
	}
	var h minHeap
	dist[src] = 0
	h.push(int32(src), 0)
	for h.len() > 0 {
		it := h.pop()
		if it.prio > dist[it.v] {
			continue // stale entry
		}
		for _, a := range g.adj[it.v] {
			nd := it.prio + a.W
			if nd < dist[a.To] {
				dist[a.To] = nd
				h.push(a.To, nd)
			}
		}
	}
	return dist
}

// DijkstraTarget computes the shortest distance from src to dst, stopping as
// soon as dst is settled, and returns the path (vertex sequence from src to
// dst). dist is Inf and path nil when dst is unreachable.
func DijkstraTarget(g *Graph, src, dst int) (float64, []int) {
	n := g.NumVertices()
	dist := make([]float64, n)
	prev := make([]int32, n)
	for i := range dist {
		dist[i] = Inf
		prev[i] = -1
	}
	var h minHeap
	dist[src] = 0
	h.push(int32(src), 0)
	for h.len() > 0 {
		it := h.pop()
		if it.prio > dist[it.v] {
			continue
		}
		if int(it.v) == dst {
			break
		}
		for _, a := range g.adj[it.v] {
			nd := it.prio + a.W
			if nd < dist[a.To] {
				dist[a.To] = nd
				prev[a.To] = it.v
				h.push(a.To, nd)
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return Inf, nil
	}
	return dist[dst], reconstruct(prev, src, dst)
}

// DijkstraBounded computes shortest distances from src, abandoning any
// vertex whose distance exceeds bound. Vertices beyond the bound report
// Inf. This implements the search-region truncation MR3 relies on.
//
//sklint:hotpath
func DijkstraBounded(g *Graph, src int, bound float64) []float64 {
	dist := make([]float64, g.NumVertices())
	for i := range dist {
		dist[i] = Inf
	}
	var h minHeap
	dist[src] = 0
	h.push(int32(src), 0)
	for h.len() > 0 {
		it := h.pop()
		if it.prio > dist[it.v] {
			continue
		}
		if it.prio > bound {
			dist[it.v] = Inf
			continue
		}
		for _, a := range g.adj[it.v] {
			nd := it.prio + a.W
			if nd < dist[a.To] && nd <= bound {
				dist[a.To] = nd
				h.push(a.To, nd)
			}
		}
	}
	return dist
}

// DijkstraMultiTarget computes shortest distances from src to each target,
// stopping once every target has been settled. The result is parallel to
// targets; unreachable targets get Inf.
func DijkstraMultiTarget(g *Graph, src int, targets []int) []float64 {
	n := g.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = Inf
	}
	want := make(map[int32]int, len(targets))
	for i, t := range targets {
		if _, dup := want[int32(t)]; !dup {
			want[int32(t)] = i
		}
	}
	out := make([]float64, len(targets))
	for i := range out {
		out[i] = Inf
	}
	remaining := len(want)
	var h minHeap
	dist[src] = 0
	h.push(int32(src), 0)
	for h.len() > 0 && remaining > 0 {
		it := h.pop()
		if it.prio > dist[it.v] {
			continue
		}
		if _, ok := want[it.v]; ok {
			delete(want, it.v)
			remaining--
		}
		for _, a := range g.adj[it.v] {
			nd := it.prio + a.W
			if nd < dist[a.To] {
				dist[a.To] = nd
				h.push(a.To, nd)
			}
		}
	}
	for i, t := range targets {
		out[i] = dist[t]
	}
	return out
}

func reconstruct(prev []int32, src, dst int) []int {
	var rev []int
	for v := int32(dst); v != -1; v = prev[v] {
		rev = append(rev, int(v))
		if int(v) == src {
			break
		}
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

package graph

import "math"

// Inf is the distance reported for unreachable vertices.
var Inf = math.Inf(1)

// The package-level Dijkstra variants are the allocate-per-call
// convenience API: each creates a throwaway Workspace sized to the graph
// and delegates. Query loops that run warm should hold a Workspace (see
// core.Session) and call its methods directly — those are the zero-alloc
// hot paths.

// Dijkstra computes single-source shortest distances from src to every
// vertex. Unreachable vertices get Inf.
func Dijkstra(g *Graph, src int) []float64 {
	w := NewWorkspace(g.NumVertices())
	return w.Dijkstra(g, src)
}

// DijkstraTarget computes the shortest distance from src to dst, stopping as
// soon as dst is settled, and returns the path (vertex sequence from src to
// dst). dist is Inf and path nil when dst is unreachable.
func DijkstraTarget(g *Graph, src, dst int) (float64, []int) {
	w := NewWorkspace(g.NumVertices())
	d, path := w.DijkstraTarget(g, src, dst)
	if path == nil {
		return d, nil
	}
	out := make([]int, len(path))
	copy(out, path)
	return d, out
}

// DijkstraBounded computes shortest distances from src, abandoning any
// vertex whose distance exceeds bound. Vertices beyond the bound report
// Inf. This implements the search-region truncation MR3 relies on.
func DijkstraBounded(g *Graph, src int, bound float64) []float64 {
	w := NewWorkspace(g.NumVertices())
	return w.DijkstraBounded(g, src, bound)
}

// DijkstraMultiTarget computes shortest distances from src to each target,
// stopping once every target has been settled. The result is parallel to
// targets; unreachable targets get Inf.
func DijkstraMultiTarget(g *Graph, src int, targets []int) []float64 {
	w := NewWorkspace(g.NumVertices())
	return w.DijkstraMultiTarget(g, src, targets, make([]float64, len(targets)))
}

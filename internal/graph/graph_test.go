package graph

import (
	"math"
	"math/rand"
	"testing"
)

// lineGraph returns 0-1-2-...-(n-1) with unit weights.
func lineGraph(n int) *Graph {
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(i, i+1, 1)
	}
	return g
}

func TestGraphBasics(t *testing.T) {
	g := New(3)
	if g.NumVertices() != 3 {
		t.Errorf("NumVertices = %d", g.NumVertices())
	}
	g.AddEdge(0, 1, 2.5)
	g.AddArc(1, 2, 1)
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	if len(g.Arcs(0)) != 1 || len(g.Arcs(1)) != 2 || len(g.Arcs(2)) != 0 {
		t.Error("adjacency lists wrong")
	}
	v := g.AddVertex()
	if v != 3 || g.NumVertices() != 4 {
		t.Errorf("AddVertex = %d", v)
	}
}

func TestNegativeWeightPanics(t *testing.T) {
	g := New(2)
	defer func() {
		if recover() == nil {
			t.Error("negative weight should panic")
		}
	}()
	g.AddEdge(0, 1, -1)
}

func TestDijkstraLine(t *testing.T) {
	g := lineGraph(5)
	d := Dijkstra(g, 0)
	for i := 0; i < 5; i++ {
		if d[i] != float64(i) {
			t.Errorf("d[%d] = %v", i, d[i])
		}
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	d := Dijkstra(g, 0)
	if !math.IsInf(d[2], 1) {
		t.Errorf("unreachable d[2] = %v", d[2])
	}
	dist, path := DijkstraTarget(g, 0, 2)
	if !math.IsInf(dist, 1) || path != nil {
		t.Errorf("unreachable target: %v %v", dist, path)
	}
}

func TestDijkstraTargetPath(t *testing.T) {
	//     1
	//  0 --- 1
	//  |     |
	//  4     1
	//  |     |
	//  3 --- 2
	//     1
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(0, 3, 4)
	dist, path := DijkstraTarget(g, 0, 3)
	if dist != 3 {
		t.Errorf("dist = %v, want 3", dist)
	}
	want := []int{0, 1, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestDijkstraBounded(t *testing.T) {
	g := lineGraph(10)
	d := DijkstraBounded(g, 0, 4.5)
	for i := 0; i <= 4; i++ {
		if d[i] != float64(i) {
			t.Errorf("d[%d] = %v", i, d[i])
		}
	}
	for i := 5; i < 10; i++ {
		if !math.IsInf(d[i], 1) {
			t.Errorf("d[%d] = %v, want Inf (beyond bound)", i, d[i])
		}
	}
}

func TestDijkstraMultiTarget(t *testing.T) {
	g := lineGraph(10)
	got := DijkstraMultiTarget(g, 3, []int{0, 7, 3, 7})
	want := []float64{3, 4, 0, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAStarMatchesDijkstra(t *testing.T) {
	// Random geometric-ish graph with Euclidean heuristic via embedding on
	// a line (admissible because weights >= coordinate gaps).
	rng := rand.New(rand.NewSource(1))
	n := 200
	coord := make([]float64, n)
	for i := range coord {
		coord[i] = rng.Float64() * 100
	}
	g := New(n)
	for i := 0; i < n; i++ {
		for k := 0; k < 4; k++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			w := math.Abs(coord[i]-coord[j]) + rng.Float64()
			g.AddEdge(i, j, w)
		}
	}
	dst := n - 1
	h := func(v int) float64 { return math.Abs(coord[v] - coord[dst]) }
	for src := 0; src < 20; src++ {
		want, _ := DijkstraTarget(g, src, dst)
		got, path := AStar(g, src, dst, h)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("AStar(%d) = %v, Dijkstra = %v", src, got, want)
		}
		if want < math.Inf(1) {
			if len(path) == 0 || path[0] != src || path[len(path)-1] != dst {
				t.Fatalf("bad path endpoints: %v", path)
			}
			// Path length must equal reported distance.
			var sum float64
			for i := 1; i < len(path); i++ {
				best := math.Inf(1)
				for _, a := range g.Arcs(path[i-1]) {
					if int(a.To) == path[i] && a.W < best {
						best = a.W
					}
				}
				sum += best
			}
			if math.Abs(sum-got) > 1e-9 {
				t.Fatalf("path length %v != dist %v", sum, got)
			}
		}
	}
}

func TestAStarUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	d, path := AStar(g, 0, 2, func(int) float64 { return 0 })
	if !math.IsInf(d, 1) || path != nil {
		t.Errorf("unreachable AStar: %v %v", d, path)
	}
}

// Property: Dijkstra distances satisfy the triangle inequality over edges —
// for every edge (u,v,w): d[v] <= d[u] + w.
func TestDijkstraRelaxationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 50 + rng.Intn(100)
		g := New(n)
		for i := 0; i < n*3; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, rng.Float64()*10)
			}
		}
		d := Dijkstra(g, 0)
		for u := 0; u < n; u++ {
			if math.IsInf(d[u], 1) {
				continue
			}
			for _, a := range g.Arcs(u) {
				if d[a.To] > d[u]+a.W+1e-9 {
					t.Fatalf("relaxation violated: d[%d]=%v > d[%d]=%v + %v", a.To, d[a.To], u, d[u], a.W)
				}
			}
		}
	}
}

func TestHeapOrdering(t *testing.T) {
	var h minHeap
	vals := []float64{5, 3, 8, 1, 9, 2, 7}
	for i, v := range vals {
		h.push(int32(i), v)
	}
	prev := math.Inf(-1)
	for h.len() > 0 {
		it := h.pop()
		if it.prio < prev {
			t.Fatalf("heap pop out of order: %v after %v", it.prio, prev)
		}
		prev = it.prio
	}
	h.push(1, 1)
	h.reset()
	if h.len() != 0 {
		t.Error("reset should empty the heap")
	}
}

func TestBidirectionalMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		n := 100 + rng.Intn(200)
		g := New(n)
		for i := 0; i < n*4; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, rng.Float64()*10+0.1)
			}
		}
		for q := 0; q < 10; q++ {
			src, dst := rng.Intn(n), rng.Intn(n)
			want, _ := DijkstraTarget(g, src, dst)
			got := BidirectionalDijkstra(g, src, dst)
			if math.IsInf(want, 1) != math.IsInf(got, 1) {
				t.Fatalf("reachability mismatch: %v vs %v", got, want)
			}
			if !math.IsInf(want, 1) && math.Abs(got-want) > 1e-9 {
				t.Fatalf("bidirectional %v != dijkstra %v (src=%d dst=%d)", got, want, src, dst)
			}
		}
	}
	// Same vertex.
	g := lineGraph(3)
	if d := BidirectionalDijkstra(g, 1, 1); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	// Disconnected.
	g2 := New(4)
	g2.AddEdge(0, 1, 1)
	g2.AddEdge(2, 3, 1)
	if d := BidirectionalDijkstra(g2, 0, 3); !math.IsInf(d, 1) {
		t.Errorf("disconnected distance = %v", d)
	}
}

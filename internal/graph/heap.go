package graph

// pqItem is a (vertex, priority) pair in the binary heap.
type pqItem struct {
	v    int32
	prio float64
}

// minHeap is a specialised binary min-heap of pqItems. It is a lazy-deletion
// heap: a vertex may appear multiple times; stale entries are skipped when
// popped (cheaper in practice than decrease-key for sparse graphs).
type minHeap struct {
	items []pqItem
}

func (h *minHeap) len() int { return len(h.items) }

func (h *minHeap) push(v int32, prio float64) {
	h.items = append(h.items, pqItem{v, prio})
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].prio <= h.items[i].prio {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *minHeap) pop() pqItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.items[l].prio < h.items[small].prio {
			small = l
		}
		if r < last && h.items[r].prio < h.items[small].prio {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}

func (h *minHeap) reset() { h.items = h.items[:0] }

package graph

import "math"

// Workspace is the reusable scratch state for Dijkstra runs: distance,
// predecessor and visit-epoch arrays plus the binary heap, all retained
// across calls so a warm run allocates nothing. A Workspace is owned by a
// single goroutine (core.Session holds one per session); it is not safe
// for concurrent use.
//
// Instead of re-filling the distance array with +Inf before every run, each
// run bumps an epoch counter and a distance entry is only meaningful when
// its stamp matches the current epoch — an O(touched) logical clear. The
// full-distance variants (Dijkstra, DijkstraBounded) materialise Inf into
// untouched entries before returning, so callers see exactly the slice the
// allocating API produced.
//
// Returned slices alias the workspace and are valid until the next call on
// it.
type Workspace struct {
	dist  []float64
	prev  []int32
	stamp []uint32 // visit epoch per vertex; == cur means dist/prev valid
	cur   uint32

	tstamp []uint32 // target-set epoch per vertex (DijkstraMultiTarget)
	tcur   uint32

	h    minHeap
	path []int
}

// NewWorkspace returns a workspace able to run over graphs of up to n
// vertices.
func NewWorkspace(n int) *Workspace {
	w := &Workspace{}
	w.Ensure(n)
	return w
}

// Ensure grows the workspace to handle graphs of up to n vertices. It never
// shrinks. Growth allocates; call it from setup code (session begin), not
// from the query loop.
func (w *Workspace) Ensure(n int) {
	if n <= len(w.dist) {
		return
	}
	w.dist = make([]float64, n)
	w.prev = make([]int32, n)
	w.stamp = make([]uint32, n)
	w.tstamp = make([]uint32, n)
	w.path = make([]int, n)
}

// begin starts a new run: bumps the visit epoch (clearing the stamp array
// on wrap-around) and resets the heap.
func (w *Workspace) begin(g *Graph) {
	if g.NumVertices() > len(w.dist) {
		panic("graph: workspace too small for graph (call Ensure)")
	}
	w.cur++
	if w.cur == 0 { // wrapped: every stale stamp would look current
		for i := range w.stamp {
			w.stamp[i] = 0
		}
		w.cur = 1
	}
	w.h.reset()
}

// distAt reads the current run's distance of v (Inf when untouched).
func (w *Workspace) distAt(v int32) float64 {
	if w.stamp[v] == w.cur {
		return w.dist[v]
	}
	return Inf
}

// setDist stamps v with distance d (prev untouched).
func (w *Workspace) setDist(v int32, d float64) {
	w.dist[v] = d
	w.prev[v] = -1
	w.stamp[v] = w.cur
}

// materialize writes Inf into every entry the run did not touch and
// returns the full distance slice for g.
func (w *Workspace) materialize(g *Graph) []float64 {
	n := g.NumVertices()
	dist := w.dist[:n]
	for i := range dist {
		if w.stamp[i] != w.cur {
			dist[i] = Inf
		}
	}
	return dist
}

// Dijkstra computes single-source shortest distances from src to every
// vertex of g. Unreachable vertices get Inf. The result aliases the
// workspace.
//
//sklint:hotpath
func (w *Workspace) Dijkstra(g *Graph, src int) []float64 {
	w.begin(g)
	w.setDist(int32(src), 0)
	w.h.push(int32(src), 0)
	for w.h.len() > 0 {
		it := w.h.pop()
		if it.prio > w.distAt(it.v) {
			continue // stale entry
		}
		for _, a := range g.arcsOf(it.v) {
			nd := it.prio + a.W
			if nd < w.distAt(a.To) {
				w.setDist(a.To, nd)
				w.h.push(a.To, nd)
			}
		}
	}
	return w.materialize(g)
}

// DijkstraBounded computes shortest distances from src, abandoning any
// vertex whose distance exceeds bound. Vertices beyond the bound report
// Inf — including the source itself when bound < 0, matching the
// historical behaviour of the bound-truncated search.
//
//sklint:hotpath
func (w *Workspace) DijkstraBounded(g *Graph, src int, bound float64) []float64 {
	w.begin(g)
	if bound < 0 {
		// Even the zero-distance source misses a negative bound; the
		// push-side filter below would never let anything settle.
		return w.materialize(g)
	}
	w.setDist(int32(src), 0)
	w.h.push(int32(src), 0)
	for w.h.len() > 0 {
		it := w.h.pop()
		if it.prio > w.distAt(it.v) {
			continue
		}
		for _, a := range g.arcsOf(it.v) {
			nd := it.prio + a.W
			if nd < w.distAt(a.To) && nd <= bound {
				w.setDist(a.To, nd)
				w.h.push(a.To, nd)
			}
		}
	}
	return w.materialize(g)
}

// DijkstraTarget computes the shortest distance from src to dst, stopping
// as soon as dst is settled, and returns the path (vertex sequence from src
// to dst). dist is Inf and path nil when dst is unreachable. The path
// aliases the workspace.
//
//sklint:hotpath
func (w *Workspace) DijkstraTarget(g *Graph, src, dst int) (float64, []int) {
	w.begin(g)
	w.setDist(int32(src), 0)
	w.h.push(int32(src), 0)
	for w.h.len() > 0 {
		it := w.h.pop()
		if it.prio > w.distAt(it.v) {
			continue
		}
		if int(it.v) == dst {
			break
		}
		for _, a := range g.arcsOf(it.v) {
			nd := it.prio + a.W
			if nd < w.distAt(a.To) {
				w.dist[a.To] = nd
				w.prev[a.To] = it.v
				w.stamp[a.To] = w.cur
				w.h.push(a.To, nd)
			}
		}
	}
	d := w.distAt(int32(dst))
	if math.IsInf(d, 1) {
		return Inf, nil
	}
	return d, w.reconstruct(src, dst)
}

// DijkstraMultiTarget computes shortest distances from src to each target,
// stopping once every target has been settled. out must be parallel to
// targets (the legacy wrapper allocates it; warm callers pass a reused
// buffer); unreachable targets get Inf.
//
// The historical implementation tracked the outstanding target set in a
// per-call map[int32]int; the workspace replaces it with the tstamp
// epoch-stamped slice.
//
//sklint:hotpath
func (w *Workspace) DijkstraMultiTarget(g *Graph, src int, targets []int, out []float64) []float64 {
	if len(out) != len(targets) {
		panic("graph: out buffer not parallel to targets")
	}
	w.begin(g)
	w.tcur++
	if w.tcur == 0 {
		for i := range w.tstamp {
			w.tstamp[i] = 0
		}
		w.tcur = 1
	}
	remaining := 0
	for _, t := range targets {
		if w.tstamp[t] != w.tcur {
			w.tstamp[t] = w.tcur
			remaining++
		}
	}
	w.setDist(int32(src), 0)
	w.h.push(int32(src), 0)
	for w.h.len() > 0 && remaining > 0 {
		it := w.h.pop()
		if it.prio > w.distAt(it.v) {
			continue
		}
		if w.tstamp[it.v] == w.tcur {
			w.tstamp[it.v] = w.tcur - 1 // settled: drop from the target set
			remaining--
		}
		for _, a := range g.arcsOf(it.v) {
			nd := it.prio + a.W
			if nd < w.distAt(a.To) {
				w.setDist(a.To, nd)
				w.h.push(a.To, nd)
			}
		}
	}
	for i, t := range targets {
		out[i] = w.distAt(int32(t))
	}
	return out
}

// reconstruct rebuilds the src→dst path from the prev chain into the
// workspace path buffer: one counting walk to size it exactly, one filling
// walk — no append growth.
func (w *Workspace) reconstruct(src, dst int) []int {
	n := 0
	for v := int32(dst); v != -1; v = w.prevAt(v) {
		n++
		if int(v) == src {
			break
		}
	}
	path := w.path[:n]
	for v, i := int32(dst), n-1; i >= 0; v, i = w.prevAt(v), i-1 {
		path[i] = int(v)
	}
	return path
}

// prevAt reads the current run's predecessor of v (-1 when untouched).
func (w *Workspace) prevAt(v int32) int32 {
	if w.stamp[v] == w.cur {
		return w.prev[v]
	}
	return -1
}

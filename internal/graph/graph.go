// Package graph provides the weighted-graph machinery shared by every
// distance computation in the library: network distance on surface meshes
// (upper bounds), layered SDN graphs (lower bounds) and pathnets
// (approximate surface distance). Only non-negative weights are supported,
// as required by Dijkstra's algorithm.
package graph

import "fmt"

// Arc is a weighted directed connection to vertex To.
type Arc struct {
	To int32
	W  float64
}

// Graph is a weighted graph with int-indexed vertices. It has two
// representations:
//
//   - a mutable adjacency-list form ([][]Arc) used while the graph is being
//     built, and
//   - a frozen CSR form (one []int32 offset array plus one packed []Arc
//     slab) entered by Finalize, which every query-time traversal runs
//     against: two flat buffers instead of one pointer-chased slice header
//     per vertex, and a layout that serialises (and mmaps) as-is.
//
// Mutating a finalized graph (AddVertex/AddEdge/AddArc) transparently
// unpacks it back to adjacency-list form; per-vertex arc order is preserved
// exactly in both directions, so traversal order — and therefore every
// distance, path and visit count — is independent of the representation.
type Graph struct {
	adj      [][]Arc
	numEdges int

	// CSR form (valid when finalized): arcs of vertex u are
	// arcs[off[u]:off[u+1]]. len(off) == NumVertices()+1.
	off       []int32
	arcs      []Arc
	finalized bool
}

// New creates a graph with n vertices and no edges.
func New(n int) *Graph {
	return &Graph{adj: make([][]Arc, n)}
}

// FromCSR constructs a finalized graph directly from its CSR buffers (as
// produced by CSR) without copying. numEdges restores the NumEdges counter;
// the buffers are retained, so callers hand over ownership.
func FromCSR(off []int32, arcs []Arc, numEdges int) *Graph {
	if len(off) == 0 {
		off = []int32{0}
	}
	return &Graph{off: off, arcs: arcs, numEdges: numEdges, finalized: true}
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int {
	if g.finalized {
		return len(g.off) - 1
	}
	return len(g.adj)
}

// NumEdges returns the number of AddEdge/AddArc calls (an undirected edge
// counts once).
func (g *Graph) NumEdges() int { return g.numEdges }

// NumArcs returns the total directed-arc count (an undirected edge counts
// twice).
func (g *Graph) NumArcs() int {
	if g.finalized {
		return len(g.arcs)
	}
	n := 0
	for _, a := range g.adj {
		n += len(a)
	}
	return n
}

// Finalized reports whether the graph is in CSR form.
func (g *Graph) Finalized() bool { return g.finalized }

// Finalize packs the adjacency lists into the CSR form and drops them. The
// per-vertex arc order is preserved verbatim (the slab is the in-order
// concatenation of the lists), so finalizing never changes traversal
// results. Finalizing a finalized graph is a no-op.
func (g *Graph) Finalize() {
	if g.finalized {
		return
	}
	n := len(g.adj)
	off := make([]int32, n+1)
	total := 0
	for u, as := range g.adj {
		off[u] = int32(total)
		total += len(as)
	}
	off[n] = int32(total)
	arcs := make([]Arc, total)
	for u, as := range g.adj {
		copy(arcs[off[u]:], as)
	}
	g.off, g.arcs = off, arcs
	g.adj = nil
	g.finalized = true
}

// CSR returns the finalized graph's flat buffers (finalizing first if
// needed). The slices are the graph's own storage: callers must treat them
// as read-only. This is the persistence hook — a snapshot writes these two
// buffers verbatim and FromCSR rebuilds the graph from them.
func (g *Graph) CSR() (off []int32, arcs []Arc) {
	g.Finalize()
	return g.off, g.arcs
}

// SetCSR repoints g at the given CSR buffers, replacing its previous
// content — the reuse hook for per-query network rebuilds (the multires
// Estimator), which regenerate the buffers into reusable scratch instead of
// allocating a fresh Graph per query. The buffers are retained, not copied.
func (g *Graph) SetCSR(off []int32, arcs []Arc, numEdges int) {
	if len(off) == 0 {
		off = zeroOff
	}
	g.adj = nil
	g.off, g.arcs = off, arcs
	g.numEdges = numEdges
	g.finalized = true
}

// zeroOff is the CSR offset array of the empty graph (shared, never
// mutated: an empty graph has no vertex to add arcs to).
var zeroOff = []int32{0}

// definalize unpacks the CSR form back into mutable adjacency lists. Each
// rebuilt list is a full-capacity sub-slice of the slab, so a subsequent
// append copies it out instead of clobbering its neighbour.
func (g *Graph) definalize() {
	if !g.finalized {
		return
	}
	n := len(g.off) - 1
	adj := make([][]Arc, n)
	for u := 0; u < n; u++ {
		lo, hi := g.off[u], g.off[u+1]
		adj[u] = g.arcs[lo:hi:hi]
	}
	g.adj = adj
	g.off, g.arcs = nil, nil
	g.finalized = false
}

// AddVertex appends a new isolated vertex and returns its index.
func (g *Graph) AddVertex() int {
	g.definalize()
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// AddEdge adds an undirected edge of weight w. Negative weights panic:
// every caller in this library produces lengths, and a negative length is a
// bug upstream that Dijkstra would silently turn into wrong answers.
func (g *Graph) AddEdge(u, v int, w float64) {
	if w < 0 {
		panic(fmt.Sprintf("graph: negative edge weight %g (%d-%d)", w, u, v))
	}
	g.definalize()
	g.adj[u] = append(g.adj[u], Arc{To: int32(v), W: w})
	g.adj[v] = append(g.adj[v], Arc{To: int32(u), W: w})
	g.numEdges++
}

// AddArc adds a directed edge u→v of weight w.
func (g *Graph) AddArc(u, v int, w float64) {
	if w < 0 {
		panic(fmt.Sprintf("graph: negative arc weight %g (%d->%d)", w, u, v))
	}
	g.definalize()
	g.adj[u] = append(g.adj[u], Arc{To: int32(v), W: w})
	g.numEdges++
}

// Arcs returns the outgoing arcs of u. The slice is shared; callers must
// not modify it.
func (g *Graph) Arcs(u int) []Arc {
	if g.finalized {
		return g.arcs[g.off[u]:g.off[u+1]]
	}
	return g.adj[u]
}

// arcsOf is Arcs for the int32 vertex ids the traversals carry.
func (g *Graph) arcsOf(u int32) []Arc {
	if g.finalized {
		return g.arcs[g.off[u]:g.off[u+1]]
	}
	return g.adj[u]
}

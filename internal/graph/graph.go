// Package graph provides the weighted-graph machinery shared by every
// distance computation in the library: network distance on surface meshes
// (upper bounds), layered SDN graphs (lower bounds) and pathnets
// (approximate surface distance). Only non-negative weights are supported,
// as required by Dijkstra's algorithm.
package graph

import "fmt"

// Arc is a weighted directed connection to vertex To.
type Arc struct {
	To int32
	W  float64
}

// Graph is an adjacency-list weighted graph with int-indexed vertices.
type Graph struct {
	adj      [][]Arc
	numEdges int
}

// New creates a graph with n vertices and no edges.
func New(n int) *Graph {
	return &Graph{adj: make([][]Arc, n)}
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.adj) }

// NumEdges returns the number of AddEdge/AddArc calls (an undirected edge
// counts once).
func (g *Graph) NumEdges() int { return g.numEdges }

// AddVertex appends a new isolated vertex and returns its index.
func (g *Graph) AddVertex() int {
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// AddEdge adds an undirected edge of weight w. Negative weights panic:
// every caller in this library produces lengths, and a negative length is a
// bug upstream that Dijkstra would silently turn into wrong answers.
func (g *Graph) AddEdge(u, v int, w float64) {
	if w < 0 {
		panic(fmt.Sprintf("graph: negative edge weight %g (%d-%d)", w, u, v))
	}
	g.adj[u] = append(g.adj[u], Arc{To: int32(v), W: w})
	g.adj[v] = append(g.adj[v], Arc{To: int32(u), W: w})
	g.numEdges++
}

// AddArc adds a directed edge u→v of weight w.
func (g *Graph) AddArc(u, v int, w float64) {
	if w < 0 {
		panic(fmt.Sprintf("graph: negative arc weight %g (%d->%d)", w, u, v))
	}
	g.adj[u] = append(g.adj[u], Arc{To: int32(v), W: w})
	g.numEdges++
}

// Arcs returns the outgoing arcs of u. The slice is shared; callers must
// not modify it.
func (g *Graph) Arcs(u int) []Arc { return g.adj[u] }

package graph

import (
	"math"
	"math/rand"
	"testing"
)

// refDijkstra is the straight textbook implementation the workspace must
// match bit for bit: Inf-filled arrays allocated per call, identical heap
// discipline.
func refDijkstra(g *Graph, src int) []float64 {
	dist := make([]float64, g.NumVertices())
	for i := range dist {
		dist[i] = Inf
	}
	var h minHeap
	dist[src] = 0
	h.push(int32(src), 0)
	for h.len() > 0 {
		it := h.pop()
		if it.prio > dist[it.v] {
			continue
		}
		for _, a := range g.Arcs(int(it.v)) {
			nd := it.prio + a.W
			if nd < dist[a.To] {
				dist[a.To] = nd
				h.push(a.To, nd)
			}
		}
	}
	return dist
}

// randomGraph builds a connected-ish random geometric-ish graph. Weights
// are irregular floats so any traversal-order difference shows up in the
// low bits of the sums.
func randomGraph(rng *rand.Rand, n, extraEdges int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, rng.Intn(v), 0.1+rng.Float64())
	}
	for i := 0; i < extraEdges; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v, 0.1+rng.Float64()*3)
		}
	}
	return g
}

func TestFinalizePreservesArcs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 200, 400)
	want := make([][]Arc, g.NumVertices())
	for u := range want {
		want[u] = append([]Arc(nil), g.Arcs(u)...)
	}
	g.Finalize()
	if !g.Finalized() {
		t.Fatal("Finalize did not mark the graph finalized")
	}
	for u := range want {
		got := g.Arcs(u)
		if len(got) != len(want[u]) {
			t.Fatalf("vertex %d: arc count %d != %d after Finalize", u, len(got), len(want[u]))
		}
		for i := range got {
			if got[i] != want[u][i] {
				t.Fatalf("vertex %d arc %d: %v != %v after Finalize", u, i, got[i], want[u][i])
			}
		}
	}
	// Mutation must transparently unpack and keep order.
	v := g.AddVertex()
	g.AddEdge(v, 0, 1.5)
	if g.Finalized() {
		t.Fatal("mutation left the graph finalized")
	}
	first := g.Arcs(0)
	if first[len(first)-1] != (Arc{To: int32(v), W: 1.5}) {
		t.Fatalf("post-definalize append mis-ordered: %v", first)
	}
	for i, a := range first[:len(first)-1] {
		if a != want[0][i] {
			t.Fatalf("vertex 0 arc %d changed across definalize: %v != %v", i, a, want[0][i])
		}
	}
}

func TestWorkspaceDijkstraMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := NewWorkspace(0)
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, 50+rng.Intn(150), 300)
		if trial%2 == 1 {
			g.Finalize()
		}
		w.Ensure(g.NumVertices())
		for rep := 0; rep < 3; rep++ { // warm reuse must not change results
			src := rng.Intn(g.NumVertices())
			want := refDijkstra(g, src)
			got := w.Dijkstra(g, src)
			for v := range want {
				if math.Float64bits(want[v]) != math.Float64bits(got[v]) {
					t.Fatalf("trial %d rep %d: dist[%d] = %x want %x", trial, rep, v,
						math.Float64bits(got[v]), math.Float64bits(want[v]))
				}
			}
		}
	}
}

func TestWorkspaceVariantsMatchPackageAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	w := NewWorkspace(0)
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 40+rng.Intn(100), 200)
		if trial%2 == 0 {
			g.Finalize()
		}
		w.Ensure(g.NumVertices())
		n := g.NumVertices()
		src, dst := rng.Intn(n), rng.Intn(n)
		bound := rng.Float64() * 5

		wantB := refDijkstra(g, src)
		for v, d := range wantB {
			if d > bound {
				wantB[v] = Inf
			}
		}
		gotB := w.DijkstraBounded(g, src, bound)
		for v := range wantB {
			if math.Float64bits(wantB[v]) != math.Float64bits(gotB[v]) {
				t.Fatalf("bounded: dist[%d] = %v want %v", v, gotB[v], wantB[v])
			}
		}

		full := refDijkstra(g, src)
		d, path := w.DijkstraTarget(g, src, dst)
		if math.Float64bits(d) != math.Float64bits(full[dst]) {
			t.Fatalf("target: dist = %v want %v", d, full[dst])
		}
		if len(path) == 0 || path[0] != src || path[len(path)-1] != dst {
			t.Fatalf("target: bad path endpoints %v (src %d dst %d)", path, src, dst)
		}
		var sum float64
		for i := 0; i+1 < len(path); i++ {
			best := Inf
			for _, a := range g.Arcs(path[i]) {
				if int(a.To) == path[i+1] && a.W < best {
					best = a.W
				}
			}
			sum += best
		}
		if math.Abs(sum-d) > 1e-9*(1+d) {
			t.Fatalf("target: path length %v != dist %v", sum, d)
		}

		targets := make([]int, 8)
		for i := range targets {
			targets[i] = rng.Intn(n)
		}
		targets[3] = targets[1] // duplicate targets must both be reported
		out := make([]float64, len(targets))
		got := w.DijkstraMultiTarget(g, src, targets, out)
		for i, tv := range targets {
			if math.Float64bits(got[i]) != math.Float64bits(full[tv]) {
				t.Fatalf("multi: out[%d] = %v want %v", i, got[i], full[tv])
			}
		}
	}
}

func TestDijkstraBoundedNegativeBound(t *testing.T) {
	// Regression for the historical dead branch: with bound < 0 nothing is
	// reachable — not even the source, whose distance 0 exceeds the bound.
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	for _, finalize := range []bool{false, true} {
		if finalize {
			g.Finalize()
		}
		dist := DijkstraBounded(g, 0, -1)
		for v, d := range dist {
			if !math.IsInf(d, 1) {
				t.Fatalf("finalized=%v: dist[%d] = %v, want +Inf under negative bound", finalize, v, d)
			}
		}
		// Zero bound keeps exactly the source.
		dist = DijkstraBounded(g, 0, 0)
		if dist[0] != 0 || !math.IsInf(dist[1], 1) {
			t.Fatalf("finalized=%v: bound 0: got %v", finalize, dist)
		}
	}
}

func TestReconstructExactSize(t *testing.T) {
	// reconstruct must size its result from the prev chain, not append-grow.
	prev := []int32{-1, 0, 1, 2}
	path := reconstruct(prev, 0, 3)
	if len(path) != cap(path) {
		t.Errorf("reconstruct over-allocated: len %d cap %d", len(path), cap(path))
	}
	want := []int{0, 1, 2, 3}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	// Degenerate: src == dst.
	if p := reconstruct(prev, 2, 2); len(p) != 1 || p[0] != 2 || cap(p) != 1 {
		t.Errorf("src==dst path = %v (cap %d), want [2] cap 1", p, cap(p))
	}
}

func TestWorkspaceWarmRunsDoNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 500, 1200)
	g.Finalize()
	w := NewWorkspace(g.NumVertices())
	targets := []int{7, 99, 311, 42}
	out := make([]float64, len(targets))
	// One warm-up pass lets the heap slab reach its high-water mark.
	w.Dijkstra(g, 0)
	w.DijkstraBounded(g, 1, 2.5)
	_, _ = w.DijkstraTarget(g, 2, 400)
	w.DijkstraMultiTarget(g, 3, targets, out)
	src := 0
	if n := testing.AllocsPerRun(50, func() {
		w.Dijkstra(g, src)
		w.DijkstraBounded(g, src, 2.5)
		_, _ = w.DijkstraTarget(g, src, 400)
		w.DijkstraMultiTarget(g, src, targets, out)
		src = (src + 13) % g.NumVertices()
	}); n != 0 {
		t.Fatalf("warm Workspace runs allocate %.1f times per run, want 0", n)
	}
}

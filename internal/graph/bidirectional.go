package graph

import "math"

// BidirectionalDijkstra computes the shortest distance from src to dst by
// searching simultaneously from both endpoints, typically settling far
// fewer vertices than a one-sided search on sparse geometric graphs. Only
// valid on graphs whose arcs are symmetric (every AddEdge; AddArc-built
// digraphs need the one-sided search).
func BidirectionalDijkstra(g *Graph, src, dst int) float64 {
	if src == dst {
		return 0
	}
	n := g.NumVertices()
	distF := make([]float64, n)
	distB := make([]float64, n)
	doneF := make([]bool, n)
	doneB := make([]bool, n)
	for i := range distF {
		distF[i] = Inf
		distB[i] = Inf
	}
	var hf, hb minHeap
	distF[src] = 0
	distB[dst] = 0
	hf.push(int32(src), 0)
	hb.push(int32(dst), 0)
	best := Inf

	expand := func(h *minHeap, dist []float64, done []bool, otherDist []float64, otherDone []bool) (float64, bool) {
		for h.len() > 0 {
			it := h.pop()
			if it.prio > dist[it.v] {
				continue // stale
			}
			done[it.v] = true
			// Meeting point: a settled-on-both-sides vertex closes a path.
			if otherDist[it.v] < Inf {
				if cand := dist[it.v] + otherDist[it.v]; cand < best {
					best = cand
				}
			}
			for _, a := range g.arcsOf(it.v) {
				nd := it.prio + a.W
				if nd < dist[a.To] {
					dist[a.To] = nd
					h.push(a.To, nd)
					if otherDist[a.To] < Inf {
						if cand := nd + otherDist[a.To]; cand < best {
							best = cand
						}
					}
				}
			}
			return it.prio, true
		}
		return Inf, false
	}

	topF, topB := 0.0, 0.0
	okF, okB := true, true
	for okF || okB {
		// Standard termination: stop once the two frontiers' minima sum to
		// at least the best path found.
		if topF+topB >= best {
			break
		}
		if okF && (topF <= topB || !okB) {
			topF, okF = expand(&hf, distF, doneF, distB, doneB)
		} else if okB {
			topB, okB = expand(&hb, distB, doneB, distF, doneF)
		}
	}
	if math.IsInf(best, 1) {
		return Inf
	}
	return best
}

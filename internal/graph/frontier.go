package graph

// Frontier is an exported min-priority queue over (vertex, priority) pairs
// for callers that implement custom graph searches (filtered Dijkstra,
// window propagation). It uses lazy deletion: stale entries must be skipped
// by the caller by comparing the popped priority with its distance array.
type Frontier struct {
	h minHeap
}

// NewFrontier returns an empty frontier.
func NewFrontier() *Frontier { return &Frontier{} }

// Len returns the number of queued entries (including stale ones).
func (f *Frontier) Len() int { return f.h.len() }

// Push queues vertex v with the given priority.
func (f *Frontier) Push(v int32, prio float64) { f.h.push(v, prio) }

// Pop removes and returns the entry with the smallest priority.
func (f *Frontier) Pop() (v int32, prio float64) {
	it := f.h.pop()
	return it.v, it.prio
}

// Reset empties the frontier for reuse.
func (f *Frontier) Reset() { f.h.reset() }

// TruncateVertices removes all vertices with index >= keep together with
// their adjacency lists. Callers must have already removed arcs pointing at
// the truncated vertices from surviving lists (see pathnet's embed/undo
// cycle, the only intended user).
func (g *Graph) TruncateVertices(keep int) {
	if keep < 0 || keep > len(g.adj) {
		return
	}
	g.adj = g.adj[:keep]
}

// SetArcs replaces the adjacency list of vertex v (used together with
// TruncateVertices to undo temporary embeddings).
func (g *Graph) SetArcs(v int, arcs []Arc) { g.adj[v] = arcs }

package graph

// Frontier is an exported min-priority queue over (vertex, priority) pairs
// for callers that implement custom graph searches (filtered Dijkstra,
// window propagation). It uses lazy deletion: stale entries must be skipped
// by the caller by comparing the popped priority with its distance array.
type Frontier struct {
	h minHeap
}

// NewFrontier returns an empty frontier.
func NewFrontier() *Frontier { return &Frontier{} }

// Len returns the number of queued entries (including stale ones).
func (f *Frontier) Len() int { return f.h.len() }

// Push queues vertex v with the given priority.
func (f *Frontier) Push(v int32, prio float64) { f.h.push(v, prio) }

// Pop removes and returns the entry with the smallest priority.
func (f *Frontier) Pop() (v int32, prio float64) {
	it := f.h.pop()
	return it.v, it.prio
}

// Reset empties the frontier for reuse.
func (f *Frontier) Reset() { f.h.reset() }

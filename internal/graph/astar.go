package graph

import "math"

// Heuristic estimates the remaining distance from a vertex to the goal. It
// must never over-estimate (be admissible) for AStar to return exact
// shortest distances.
type Heuristic func(v int) float64

// AStar computes the shortest distance and path from src to dst guided by
// an admissible heuristic. With h ≡ 0 it degenerates to DijkstraTarget.
func AStar(g *Graph, src, dst int, h Heuristic) (float64, []int) {
	n := g.NumVertices()
	dist := make([]float64, n)
	prev := make([]int32, n)
	closed := make([]bool, n)
	for i := range dist {
		dist[i] = Inf
		prev[i] = -1
	}
	var pq minHeap
	dist[src] = 0
	pq.push(int32(src), h(src))
	for pq.len() > 0 {
		it := pq.pop()
		v := it.v
		if closed[v] {
			continue
		}
		closed[v] = true
		if int(v) == dst {
			break
		}
		for _, a := range g.arcsOf(v) {
			if closed[a.To] {
				continue
			}
			nd := dist[v] + a.W
			if nd < dist[a.To] {
				dist[a.To] = nd
				prev[a.To] = v
				pq.push(a.To, nd+h(int(a.To)))
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return Inf, nil
	}
	return dist[dst], reconstruct(prev, src, dst)
}

// reconstruct rebuilds the src→dst path from a prev chain. It walks the
// chain once to size the result exactly and once to fill it back to front —
// no append growth.
func reconstruct(prev []int32, src, dst int) []int {
	n := 0
	for v := int32(dst); v != -1; v = prev[v] {
		n++
		if int(v) == src {
			break
		}
	}
	out := make([]int, n)
	for v, i := int32(dst), n-1; i >= 0; v, i = prev[v], i-1 {
		out[i] = int(v)
	}
	return out
}

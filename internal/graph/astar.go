package graph

import "math"

// Heuristic estimates the remaining distance from a vertex to the goal. It
// must never over-estimate (be admissible) for AStar to return exact
// shortest distances.
type Heuristic func(v int) float64

// AStar computes the shortest distance and path from src to dst guided by
// an admissible heuristic. With h ≡ 0 it degenerates to DijkstraTarget.
func AStar(g *Graph, src, dst int, h Heuristic) (float64, []int) {
	n := g.NumVertices()
	dist := make([]float64, n)
	prev := make([]int32, n)
	closed := make([]bool, n)
	for i := range dist {
		dist[i] = Inf
		prev[i] = -1
	}
	var pq minHeap
	dist[src] = 0
	pq.push(int32(src), h(src))
	for pq.len() > 0 {
		it := pq.pop()
		v := it.v
		if closed[v] {
			continue
		}
		closed[v] = true
		if int(v) == dst {
			break
		}
		for _, a := range g.adj[v] {
			if closed[a.To] {
				continue
			}
			nd := dist[v] + a.W
			if nd < dist[a.To] {
				dist[a.To] = nd
				prev[a.To] = v
				pq.push(a.To, nd+h(int(a.To)))
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return Inf, nil
	}
	return dist[dst], reconstruct(prev, src, dst)
}

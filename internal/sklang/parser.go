package sklang

import "strings"

// The parser: single-pass recursive descent over the token stream, with
// clauses in the fixed grammar order (point, WITHIN, USING, ACCURACY).
// Every failure is a positioned *Error naming the offending token and what
// was expected; the parser never panics and never recurses unboundedly
// (EXPLAIN is the only nesting and does not nest itself).

// maxKValue bounds k at parse time; anything larger is a typo, and the
// serving layers apply their own (smaller) limits on top.
const maxKValue = 1 << 30

// Parse parses one SKQL statement. The returned error, when non-nil, is
// always a *Error carrying the offending position and token.
func Parse(src string) (Stmt, error) {
	toks, lerr := lex(src)
	if lerr != nil {
		return nil, lerr
	}
	p := &parser{toks: toks}
	st, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tEOF {
		return nil, p.unexpected("end of query")
	}
	return st, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

// kw reports whether the current token is the given keyword
// (case-insensitive identifier match).
func (p *parser) kw(word string) bool {
	t := p.cur()
	return t.kind == tIdent && strings.EqualFold(t.text, word)
}

// eat consumes the current token when it is the given keyword.
func (p *parser) eat(word string) bool {
	if p.kw(word) {
		p.i++
		return true
	}
	return false
}

// unexpected builds the standard "unexpected X (expected Y)" diagnostic at
// the current token.
func (p *parser) unexpected(expected string) *Error {
	t := p.cur()
	if t.kind == tEOF {
		return errf(t.pos, "", "unexpected end of query (expected %s)", expected)
	}
	return errf(t.pos, t.text, "unexpected %q (expected %s)", t.text, expected)
}

// expect consumes a token of the given kind or fails.
func (p *parser) expect(kind tokenKind, expected string) (token, *Error) {
	if p.cur().kind != kind {
		return token{}, p.unexpected(expected)
	}
	return p.next(), nil
}

func (p *parser) parseStmt() (Stmt, *Error) {
	if p.kw("EXPLAIN") {
		start := p.next().pos
		if p.kw("EXPLAIN") {
			return nil, errf(p.cur().pos, p.cur().text, "EXPLAIN does not nest")
		}
		q, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Start: start, Query: q}, nil
	}
	return p.parseQuery()
}

func (p *parser) parseQuery() (Stmt, *Error) {
	switch {
	case p.kw("SELECT"):
		return p.parseSelect()
	case p.kw("RANGE"):
		return p.parseRange()
	case p.kw("DISTANCE"):
		return p.parseDistance()
	case p.kw("SUBSCRIBE"):
		return p.parseSubscribe()
	}
	return nil, p.unexpected("SELECT, RANGE, DISTANCE, SUBSCRIBE or EXPLAIN")
}

// parseSelect parses both SELECT shapes:
//
//	SELECT k=5 NEAREST (x, y) [WITHIN r] [USING ...] [ACCURACY a]
//	SELECT (x, y) WITHIN r [USING ...]
func (p *parser) parseSelect() (Stmt, *Error) {
	start := p.next().pos
	st := &SelectStmt{Start: start}
	if p.kw("k") {
		st.Nearest = true
		var err *Error
		st.K, st.KP, err = p.parseK()
		if err != nil {
			return nil, err
		}
		if !p.eat("NEAREST") {
			return nil, p.unexpected("NEAREST")
		}
		if st.At, err = p.parsePoint(); err != nil {
			return nil, err
		}
		if p.kw("WITHIN") {
			st.WithinP = p.next().pos
			st.HasWithin = true
			if st.Within, err = p.parseNumber("a distance after WITHIN"); err != nil {
				return nil, err
			}
		}
		if st.Using, err = p.parseUsing(); err != nil {
			return nil, err
		}
		if p.kw("ACCURACY") {
			st.AccuracyP = p.next().pos
			st.HasAccuracy = true
			if st.Accuracy, err = p.parseNumber("an accuracy after ACCURACY"); err != nil {
				return nil, err
			}
		}
		return st, nil
	}

	if p.cur().kind != tLParen {
		return nil, p.unexpected(`"k=<n> NEAREST" or a "(x, y)" point`)
	}
	var err *Error
	if st.At, err = p.parsePoint(); err != nil {
		return nil, err
	}
	if !p.kw("WITHIN") {
		return nil, p.unexpected("WITHIN (a SELECT without NEAREST is a range query)")
	}
	st.WithinP = p.next().pos
	st.HasWithin = true
	if st.Within, err = p.parseNumber("a distance after WITHIN"); err != nil {
		return nil, err
	}
	if st.Using, err = p.parseUsing(); err != nil {
		return nil, err
	}
	return st, nil
}

// parseRange parses RANGE (x, y) WITHIN r [USING ...].
func (p *parser) parseRange() (Stmt, *Error) {
	start := p.next().pos
	st := &RangeStmt{Start: start}
	var err *Error
	if st.At, err = p.parsePoint(); err != nil {
		return nil, err
	}
	if !p.kw("WITHIN") {
		return nil, p.unexpected("WITHIN")
	}
	st.WithinP = p.next().pos
	if st.Within, err = p.parseNumber("a distance after WITHIN"); err != nil {
		return nil, err
	}
	if st.Using, err = p.parseUsing(); err != nil {
		return nil, err
	}
	return st, nil
}

// parseDistance parses DISTANCE (x, y) TO (x2, y2) [USING ...] [ACCURACY a].
func (p *parser) parseDistance() (Stmt, *Error) {
	start := p.next().pos
	st := &DistanceStmt{Start: start}
	var err *Error
	if st.From, err = p.parsePoint(); err != nil {
		return nil, err
	}
	if !p.eat("TO") {
		return nil, p.unexpected("TO")
	}
	if st.To, err = p.parsePoint(); err != nil {
		return nil, err
	}
	if st.Using, err = p.parseUsing(); err != nil {
		return nil, err
	}
	if p.kw("ACCURACY") {
		st.AccuracyP = p.next().pos
		st.HasAccuracy = true
		if st.Accuracy, err = p.parseNumber("an accuracy after ACCURACY"); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// parseSubscribe parses SUBSCRIBE k=5 FOLLOW (x, y) [USING ...].
func (p *parser) parseSubscribe() (Stmt, *Error) {
	start := p.next().pos
	st := &SubscribeStmt{Start: start}
	if !p.kw("k") {
		return nil, p.unexpected(`"k=<n>"`)
	}
	var err *Error
	if st.K, st.KP, err = p.parseK(); err != nil {
		return nil, err
	}
	if !p.eat("FOLLOW") {
		return nil, p.unexpected("FOLLOW")
	}
	if st.At, err = p.parsePoint(); err != nil {
		return nil, err
	}
	if st.Using, err = p.parseUsing(); err != nil {
		return nil, err
	}
	return st, nil
}

// parseK parses "k=<positive integer>" with the "k" identifier current.
func (p *parser) parseK() (int, Position, *Error) {
	p.next() // the "k"
	if _, err := p.expect(tEq, `"=" after k`); err != nil {
		return 0, Position{}, err
	}
	t := p.cur()
	if t.kind != tNumber {
		return 0, Position{}, p.unexpected("a positive integer for k")
	}
	v := t.val
	//lint:ignore float-eq exact integrality check on a parsed literal, not arithmetic
	if v != float64(int64(v)) || v < 1 || v > maxKValue {
		return 0, Position{}, errf(t.pos, t.text, "k must be a positive integer (at most %d), got %s", maxKValue, t.text)
	}
	p.next()
	return int(v), t.pos, nil
}

// parsePoint parses "(x, y)".
func (p *parser) parsePoint() (Point, *Error) {
	lp, err := p.expect(tLParen, `a "(x, y)" point`)
	if err != nil {
		return Point{}, err
	}
	pt := Point{ParenP: lp.pos}
	if pt.X, err = p.parseNumber("the point's x coordinate"); err != nil {
		return Point{}, err
	}
	if _, err = p.expect(tComma, `"," between the point's coordinates`); err != nil {
		return Point{}, err
	}
	if pt.Y, err = p.parseNumber("the point's y coordinate"); err != nil {
		return Point{}, err
	}
	if _, err = p.expect(tRParen, `")" closing the point`); err != nil {
		return Point{}, err
	}
	return pt, nil
}

// parseNumber consumes one number token.
func (p *parser) parseNumber(expected string) (float64, *Error) {
	t, err := p.expect(tNumber, expected)
	if err != nil {
		return 0, err
	}
	return t.val, nil
}

// parseUsing parses an optional "USING key=value, key=value" clause.
// Values are numbers or bare identifiers (the boolean on/off spellings);
// keys are lowercased, value validation is the planner's job.
func (p *parser) parseUsing() ([]Option, *Error) {
	if !p.kw("USING") {
		return nil, nil
	}
	p.next()
	var opts []Option
	for {
		key, err := p.expect(tIdent, "an option name")
		if err != nil {
			return nil, err
		}
		if _, err = p.expect(tEq, `"=" after the option name`); err != nil {
			return nil, err
		}
		o := Option{Key: strings.ToLower(key.text), KeyP: key.pos}
		switch t := p.cur(); t.kind {
		case tNumber:
			o.Num, o.IsNum, o.ValueP = t.val, true, t.pos
			p.next()
		case tIdent:
			o.Word, o.ValueP = strings.ToLower(t.text), t.pos
			p.next()
		default:
			return nil, p.unexpected("an option value (a number, on or off)")
		}
		opts = append(opts, o)
		if p.cur().kind != tComma {
			return opts, nil
		}
		p.next()
	}
}

package sklang

import (
	"reflect"
	"strings"
	"testing"
)

// testCatalog is a plausible small-terrain catalog for planner tests.
var testCatalog = Catalog{Objects: 30, Faces: 450, Area: 1500 * 1500}

func TestParseCanonical(t *testing.T) {
	// input → canonical spelling (and the canonical spelling must be a
	// fixed point of parse ∘ String).
	cases := []struct{ in, want string }{
		{"SELECT k=5 NEAREST (800, 800)", "SELECT k=5 NEAREST (800, 800)"},
		{"select K=5 nearest(800,800)", "SELECT k=5 NEAREST (800, 800)"},
		{"SELECT k=5 NEAREST (800, 800) WITHIN 2000 USING s=2 ACCURACY 0.1",
			"SELECT k=5 NEAREST (800, 800) WITHIN 2000 USING s=2 ACCURACY 0.1"},
		{"SELECT k=5 NEAREST (800, 800) ACCURACY 0.10", "SELECT k=5 NEAREST (800, 800) ACCURACY 0.1"},
		{"SELECT (800, 800) WITHIN 500", "SELECT (800, 800) WITHIN 500"},
		{"range (1.5e2, -3.25) within 500 using s=3, io=off",
			"RANGE (150, -3.25) WITHIN 500 USING s=3, io=off"},
		{"DISTANCE (0, 0) TO (100, 100)", "DISTANCE (0, 0) TO (100, 100)"},
		{"distance (0,0) to (100,100) using s=2 accuracy 0.95",
			"DISTANCE (0, 0) TO (100, 100) USING s=2 ACCURACY 0.95"},
		{"SUBSCRIBE k=3 FOLLOW (800, 800)", "SUBSCRIBE k=3 FOLLOW (800, 800)"},
		{"subscribe k=3 follow (800, 800) using Dummy_LB=ON",
			"SUBSCRIBE k=3 FOLLOW (800, 800) USING dummy_lb=on"},
		{"EXPLAIN SELECT k=2 NEAREST (10, 20)", "EXPLAIN SELECT k=2 NEAREST (10, 20)"},
	}
	for _, c := range cases {
		st, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := st.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
		}
		// Canonical fixed point: re-parsing the canonical spelling yields an
		// equal AST (modulo positions).
		st2, err := Parse(c.want)
		if err != nil {
			t.Errorf("Parse(canonical %q): %v", c.want, err)
			continue
		}
		if !reflect.DeepEqual(StripPositions(st), StripPositions(st2)) {
			t.Errorf("round trip of %q: ASTs differ:\n%#v\n%#v", c.in, st, st2)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		in        string
		line, col int
		wantMsg   string
	}{
		{"", 1, 1, "unexpected end of query"},
		{"SELEC k=5", 1, 1, "expected SELECT"},
		{"SELECT k=5 NEAREST (800, 800) WHITHIN 12", 1, 31, `unexpected "WHITHIN"`},
		{"SELECT k=0 NEAREST (1, 2)", 1, 10, "k must be a positive integer"},
		{"SELECT k=2.5 NEAREST (1, 2)", 1, 10, "k must be a positive integer"},
		{"SELECT k=5 NEAREST (800 800)", 1, 25, `","`},
		{"SELECT (1, 2)", 1, 14, "WITHIN"},
		{"RANGE (1, 2) WITHIN", 1, 20, "a distance after WITHIN"},
		{"DISTANCE (1, 2) (3, 4)", 1, 17, "TO"},
		{"SUBSCRIBE k=5 NEAREST (1, 2)", 1, 15, "FOLLOW"},
		{"EXPLAIN EXPLAIN SELECT k=1 NEAREST (1, 2)", 1, 9, "EXPLAIN does not nest"},
		{"SELECT k=5 NEAREST (1, 2) extra", 1, 27, "end of query"},
		{"SELECT k=5 NEAREST (1, 2) USING zoom=4", 1, 33, ""}, // parses; plan rejects
		{"SELECT k=5 NEAREST (1e999, 2)", 1, 21, "out of range"},
		{"SELECT k=5 NEAREST (1, 2) @", 1, 27, "unexpected character"},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if c.wantMsg == "" {
			if err != nil {
				t.Errorf("Parse(%q): unexpected error %v", c.in, err)
			}
			continue
		}
		le, ok := err.(*Error)
		if !ok {
			t.Errorf("Parse(%q): err = %v, want *Error", c.in, err)
			continue
		}
		if le.Pos.Line != c.line || le.Pos.Col != c.col {
			t.Errorf("Parse(%q): error at %d:%d, want %d:%d (%v)", c.in, le.Pos.Line, le.Pos.Col, c.line, c.col, le)
		}
		if !strings.Contains(le.Msg, c.wantMsg) {
			t.Errorf("Parse(%q): msg %q does not contain %q", c.in, le.Msg, c.wantMsg)
		}
	}
}

func TestCaret(t *testing.T) {
	src := "SELECT k=5 NEAREST (800, 800) WHITHIN 12"
	_, err := Parse(src)
	le := err.(*Error)
	got := Caret(src, le.Pos)
	want := "  " + src + "\n  " + strings.Repeat(" ", 30) + "^"
	if got != want {
		t.Errorf("Caret:\n%s\nwant:\n%s", got, want)
	}
}

// TestPlanGolden pins the planner's decision table: query string → chosen
// algorithm, pushed-down predicates, plan-tree shape.
func TestPlanGolden(t *testing.T) {
	type want struct {
		algo     Algorithm
		form     string
		sched    int
		children []string
	}
	cases := []struct {
		in string
		w  want
	}{
		{"SELECT k=5 NEAREST (800, 800)",
			want{AlgoMR3, "select", 1, []string{"phase:knn2d", "phase:rank-c1", "phase:range2d", "phase:rank-c2"}}},
		{"SELECT k=5 NEAREST (800, 800) ACCURACY 1",
			want{AlgoEA, "select", 1, []string{"phase:knn2d", "phase:rank-c1", "phase:range2d", "phase:rank-c2"}}},
		{"SELECT k=5 NEAREST (800, 800) WITHIN 2000 USING s=2 ACCURACY 0.1",
			want{AlgoMR3, "select", 2, []string{"phase:knn2d", "phase:rank-c1", "phase:range2d", "phase:rank-c2", "filter"}}},
		{"SELECT (800, 800) WITHIN 500",
			want{AlgoRange, "range", 1, []string{"phase:range2d", "phase:refine", "phase:settle"}}},
		{"RANGE (800, 800) WITHIN 500 USING s=3",
			want{AlgoRange, "range", 3, []string{"phase:range2d", "phase:refine", "phase:settle"}}},
		{"DISTANCE (0, 0) TO (100, 100) ACCURACY 0.95",
			want{AlgoDistance, "distance", 1, []string{"phase:refine"}}},
		{"SUBSCRIBE k=3 FOLLOW (800, 800) USING s=2",
			want{AlgoContinuous, "subscribe", 2, []string{"mr3"}}},
	}
	for _, c := range cases {
		p, err := Compile(c.in, testCatalog)
		if err != nil {
			t.Errorf("Compile(%q): %v", c.in, err)
			continue
		}
		if p.Algo != c.w.algo || p.Form != c.w.form || p.Sched != c.w.sched {
			t.Errorf("Compile(%q): algo/form/sched = %s/%s/%d, want %s/%s/%d",
				c.in, p.Algo, p.Form, p.Sched, c.w.algo, c.w.form, c.w.sched)
		}
		if p.Root == nil || p.Root.Op != string(c.w.algo) {
			t.Errorf("Compile(%q): root = %+v, want op %s", c.in, p.Root, c.w.algo)
			continue
		}
		var ops []string
		for _, ch := range p.Root.Children {
			ops = append(ops, ch.Op)
		}
		if !reflect.DeepEqual(ops, c.w.children) {
			t.Errorf("Compile(%q): children %v, want %v", c.in, ops, c.w.children)
		}
		// Every phase leaf carries a positive estimate (filter is free).
		for _, ch := range p.Root.Children {
			if strings.HasPrefix(ch.Op, "phase:") && ch.EstPages < 1 {
				t.Errorf("Compile(%q): child %s has estimate %d, want ≥ 1", c.in, ch.Op, ch.EstPages)
			}
		}
	}
}

// TestPlanPushdown pins the predicate push-down: ACCURACY a<1 becomes
// Step2Accuracy, USING knobs land on api.Options, WITHIN on a k-NN query
// becomes a filter.
func TestPlanPushdown(t *testing.T) {
	p, err := Compile("SELECT k=5 NEAREST (800, 800) WITHIN 2000 USING s=2, io=off, dummy_lb=on ACCURACY 0.1", testCatalog)
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 5 || p.X != 800 || p.Y != 800 || p.Sched != 2 {
		t.Errorf("plan scalars: %+v", p)
	}
	if !p.HasFilter || p.Radius != 2000 {
		t.Errorf("filter not pushed: HasFilter=%v Radius=%g", p.HasFilter, p.Radius)
	}
	o := p.Options
	if o == nil || o.Step2Accuracy == nil || *o.Step2Accuracy != 0.1 {
		t.Errorf("Step2Accuracy not pushed: %+v", o)
	}
	if o.IOIntegration == nil || *o.IOIntegration != false {
		t.Errorf("IOIntegration not pushed: %+v", o)
	}
	if o.DummyLB == nil || *o.DummyLB != true {
		t.Errorf("DummyLB not pushed: %+v", o)
	}

	d, err := Compile("DISTANCE (0, 0) TO (100, 100)", testCatalog)
	if err != nil {
		t.Fatal(err)
	}
	if d.Accuracy != 0.9 {
		t.Errorf("distance default accuracy = %g, want 0.9", d.Accuracy)
	}
}

func TestPlanErrors(t *testing.T) {
	cases := []struct{ in, wantMsg string }{
		{"SELECT k=5 NEAREST (1, 2) USING zoom=4", "unknown option"},
		{"SELECT k=5 NEAREST (1, 2) USING s=4", "s must be 1, 2 or 3"},
		{"SELECT k=5 NEAREST (1, 2) USING s=2, s=3", "duplicate option"},
		{"SELECT k=5 NEAREST (1, 2) USING io=maybe", "io must be on, off"},
		{"SELECT k=5 NEAREST (1, 2) ACCURACY 1.5", "ACCURACY must be in (0, 1]"},
		{"SELECT k=5 NEAREST (1, 2) ACCURACY -1", "ACCURACY must be in (0, 1]"},
		{"SELECT k=5 NEAREST (1, 2) USING s=2 ACCURACY 1", "takes no USING options"},
		{"SELECT k=5 NEAREST (1, 2) USING step2=0.5 ACCURACY 0.2", "conflicts"},
		{"SELECT (1, 2) WITHIN 0", "must be positive"},
		{"RANGE (1, 2) WITHIN -5", "must be positive"},
		{"DISTANCE (1, 2) TO (3, 4) USING io=on", "does not apply"},
		{"DISTANCE (1, 2) TO (3, 4) ACCURACY 0", "ACCURACY must be in (0, 1]"},
	}
	for _, c := range cases {
		_, err := Compile(c.in, testCatalog)
		if err == nil {
			t.Errorf("Compile(%q): no error, want %q", c.in, c.wantMsg)
			continue
		}
		le, ok := err.(*Error)
		if !ok {
			t.Errorf("Compile(%q): err = %T, want *Error", c.in, err)
			continue
		}
		if !strings.Contains(le.Msg, c.wantMsg) {
			t.Errorf("Compile(%q): msg %q does not contain %q", c.in, le.Msg, c.wantMsg)
		}
		if le.Pos.Line == 0 {
			t.Errorf("Compile(%q): plan error has no position: %v", c.in, le)
		}
	}
}

func TestRenderNode(t *testing.T) {
	p, err := Compile("SELECT k=3 NEAREST (800, 800)", testCatalog)
	if err != nil {
		t.Fatal(err)
	}
	text := RenderNode(p.Root.Wire())
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("RenderNode: %d lines, want 5:\n%s", len(lines), text)
	}
	if !strings.HasPrefix(lines[0], "mr3 ") {
		t.Errorf("root line %q does not name the algorithm", lines[0])
	}
	for _, l := range lines[1:] {
		if !strings.HasPrefix(l, "  phase:") {
			t.Errorf("child line %q not indented under the root", l)
		}
	}
}

package sklang

import (
	"strconv"
	"strings"
)

// The AST. One exported node type per grammar form, all implementing Stmt.
// String renders the canonical spelling — uppercase keywords, lowercase
// option keys, shortest round-trip numbers — and parse(String()) yields an
// equal AST (modulo positions), the invariant FuzzParseRoundTrip pins.
//
// Consumers dispatch on the concrete type; the sklint ast-exhaustive rule
// checks every such type switch covers all exported node types (or
// defaults to a typed error), so a grammar extension cannot be silently
// dropped by a planner or executor.

// Stmt is one parsed SKQL statement.
type Stmt interface {
	// String is the canonical spelling of the statement.
	String() string
	// Pos is the statement's starting position.
	Pos() Position

	stmtNode()
}

// Point is a planar query point literal "(x, y)".
type Point struct {
	X, Y   float64
	ParenP Position // the opening parenthesis
}

func (p Point) String() string { return "(" + fmtNum(p.X) + ", " + fmtNum(p.Y) + ")" }

// Option is one "key=value" entry of a USING clause. Exactly one of the
// numeric and word forms is set: IsNum selects Num, otherwise Word holds a
// lowercased identifier (the boolean spellings on/off/true/false).
type Option struct {
	Key    string // lowercased
	Num    float64
	IsNum  bool
	Word   string // lowercased; empty when IsNum
	KeyP   Position
	ValueP Position
}

func (o Option) String() string {
	if o.IsNum {
		return o.Key + "=" + fmtNum(o.Num)
	}
	return o.Key + "=" + o.Word
}

// usingString renders a USING clause (with leading space), or "" when the
// option list is empty.
func usingString(opts []Option) string {
	if len(opts) == 0 {
		return ""
	}
	parts := make([]string, len(opts))
	for i, o := range opts {
		parts[i] = o.String()
	}
	return " USING " + strings.Join(parts, ", ")
}

// SelectStmt is the SELECT form, in both shapes the grammar admits: the
// k-NN shape "SELECT k=5 NEAREST (x, y) [WITHIN r] [USING ...] [ACCURACY a]"
// (Nearest true) and the range shape "SELECT (x, y) WITHIN r [USING ...]"
// (Nearest false, Within always set).
type SelectStmt struct {
	Start       Position
	Nearest     bool
	K           int // valid when Nearest
	KP          Position
	At          Point
	Within      float64 // valid when HasWithin
	HasWithin   bool
	WithinP     Position
	Using       []Option
	Accuracy    float64 // valid when HasAccuracy (Nearest only)
	HasAccuracy bool
	AccuracyP   Position
}

func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Nearest {
		b.WriteString("k=")
		b.WriteString(strconv.Itoa(s.K))
		b.WriteString(" NEAREST ")
	}
	b.WriteString(s.At.String())
	if s.HasWithin {
		b.WriteString(" WITHIN ")
		b.WriteString(fmtNum(s.Within))
	}
	b.WriteString(usingString(s.Using))
	if s.HasAccuracy {
		b.WriteString(" ACCURACY ")
		b.WriteString(fmtNum(s.Accuracy))
	}
	return b.String()
}

func (s *SelectStmt) Pos() Position { return s.Start }
func (s *SelectStmt) stmtNode()     {}

// RangeStmt is "RANGE (x, y) WITHIN r [USING ...]" — the explicit spelling
// of the surface range query.
type RangeStmt struct {
	Start   Position
	At      Point
	Within  float64
	WithinP Position
	Using   []Option
}

func (s *RangeStmt) String() string {
	return "RANGE " + s.At.String() + " WITHIN " + fmtNum(s.Within) + usingString(s.Using)
}

func (s *RangeStmt) Pos() Position { return s.Start }
func (s *RangeStmt) stmtNode()     {}

// DistanceStmt is "DISTANCE (x, y) TO (x2, y2) [USING ...] [ACCURACY a]".
type DistanceStmt struct {
	Start       Position
	From, To    Point
	Using       []Option
	Accuracy    float64 // valid when HasAccuracy
	HasAccuracy bool
	AccuracyP   Position
}

func (s *DistanceStmt) String() string {
	var b strings.Builder
	b.WriteString("DISTANCE ")
	b.WriteString(s.From.String())
	b.WriteString(" TO ")
	b.WriteString(s.To.String())
	b.WriteString(usingString(s.Using))
	if s.HasAccuracy {
		b.WriteString(" ACCURACY ")
		b.WriteString(fmtNum(s.Accuracy))
	}
	return b.String()
}

func (s *DistanceStmt) Pos() Position { return s.Start }
func (s *DistanceStmt) stmtNode()     {}

// SubscribeStmt is "SUBSCRIBE k=5 FOLLOW (x, y) [USING ...]" — a continuous
// k-NN query following a moving point.
type SubscribeStmt struct {
	Start Position
	K     int
	KP    Position
	At    Point
	Using []Option
}

func (s *SubscribeStmt) String() string {
	return "SUBSCRIBE k=" + strconv.Itoa(s.K) + " FOLLOW " + s.At.String() + usingString(s.Using)
}

func (s *SubscribeStmt) Pos() Position { return s.Start }
func (s *SubscribeStmt) stmtNode()     {}

// ExplainStmt wraps a query: plan it, execute it, and return the annotated
// plan tree instead of the bare result. EXPLAIN does not nest.
type ExplainStmt struct {
	Start Position
	Query Stmt
}

func (s *ExplainStmt) String() string { return "EXPLAIN " + s.Query.String() }
func (s *ExplainStmt) Pos() Position  { return s.Start }
func (s *ExplainStmt) stmtNode()      {}

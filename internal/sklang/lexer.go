package sklang

import (
	"math"
	"strconv"
)

// The lexer. SKQL has six token kinds: identifiers (which double as
// keywords — matching is case-insensitive), numbers, and the four
// punctuation marks of the grammar. Anything else is a lexical error with
// an exact position, never a panic — the parser is a fuzz target.

type tokenKind int

const (
	tEOF tokenKind = iota
	tIdent
	tNumber
	tLParen
	tRParen
	tComma
	tEq
)

// kindName names a token kind for diagnostics.
func kindName(k tokenKind) string {
	switch k {
	case tEOF:
		return "end of query"
	case tIdent:
		return "identifier"
	case tNumber:
		return "number"
	case tLParen:
		return `"("`
	case tRParen:
		return `")"`
	case tComma:
		return `","`
	case tEq:
		return `"="`
	}
	return "token"
}

type token struct {
	kind tokenKind
	text string
	val  float64 // tNumber only
	pos  Position
}

// lex tokenizes src in one pass. Only ASCII is structural; any other byte
// is a lexical error (positions stay byte-accurate either way).
func lex(src string) ([]token, *Error) {
	toks := make([]token, 0, 16)
	line, col := 1, 1
	i := 0
	advance := func(n int) {
		for ; n > 0; n-- {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < len(src) {
		c := src[i]
		pos := Position{Line: line, Col: col}
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '(':
			toks = append(toks, token{kind: tLParen, text: "(", pos: pos})
			advance(1)
		case c == ')':
			toks = append(toks, token{kind: tRParen, text: ")", pos: pos})
			advance(1)
		case c == ',':
			toks = append(toks, token{kind: tComma, text: ",", pos: pos})
			advance(1)
		case c == '=':
			toks = append(toks, token{kind: tEq, text: "=", pos: pos})
			advance(1)
		case isIdentStart(c):
			j := i + 1
			for j < len(src) && isIdentPart(src[j]) {
				j++
			}
			toks = append(toks, token{kind: tIdent, text: src[i:j], pos: pos})
			advance(j - i)
		case c == '-' || c == '.' || isDigit(c):
			j, ok := scanNumber(src, i)
			text := src[i:j]
			if !ok {
				return nil, errf(pos, text, "malformed number %q", text)
			}
			v, err := strconv.ParseFloat(text, 64)
			if err != nil || math.IsInf(v, 0) || math.IsNaN(v) {
				return nil, errf(pos, text, "number %q out of range", text)
			}
			toks = append(toks, token{kind: tNumber, text: text, val: v, pos: pos})
			advance(j - i)
		default:
			return nil, errf(pos, string(c), "unexpected character %q", c)
		}
	}
	toks = append(toks, token{kind: tEOF, pos: Position{Line: line, Col: col}})
	return toks, nil
}

// scanNumber scans ['-'] (digits ['.' digits] | '.' digits) [e['+'|'-']digits]
// starting at i, returning the end offset and whether the shape was valid.
func scanNumber(src string, i int) (int, bool) {
	j := i
	if src[j] == '-' {
		j++
	}
	digits := 0
	for j < len(src) && isDigit(src[j]) {
		j++
		digits++
	}
	if j < len(src) && src[j] == '.' {
		j++
		for j < len(src) && isDigit(src[j]) {
			j++
			digits++
		}
	}
	if digits == 0 {
		// Consume one more byte so the diagnostic shows what was seen.
		if j < len(src) {
			j++
		}
		return j, false
	}
	if j < len(src) && (src[j] == 'e' || src[j] == 'E') {
		k := j + 1
		if k < len(src) && (src[k] == '+' || src[k] == '-') {
			k++
		}
		exp := 0
		for k < len(src) && isDigit(src[k]) {
			k++
			exp++
		}
		if exp == 0 {
			return k, false
		}
		j = k
	}
	return j, true
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }

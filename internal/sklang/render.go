package sklang

import (
	"fmt"
	"strings"

	"surfknn/internal/server/api"
)

// The EXPLAIN renderer: Node → api.PlanNode for the JSON body, and
// api.PlanNode → indented text for humans. Rendering works off the wire
// type so the standalone server, the coordinator and skquery all format
// one shape one way.

// Wire converts the plan subtree to its wire form.
func (n *Node) Wire() api.PlanNode {
	out := api.PlanNode{
		Op:       n.Op,
		Detail:   n.Detail,
		EstPages: n.EstPages,
		Tiles:    n.Tiles,
		Phase:    n.Phase,
		Cost:     n.Cost,
	}
	for _, c := range n.Children {
		out.Children = append(out.Children, c.Wire())
	}
	return out
}

// FindChild returns the first direct child with the given op, or nil.
func (n *Node) FindChild(op string) *Node {
	for _, c := range n.Children {
		if c.Op == op {
			return c
		}
	}
	return nil
}

// RenderNode renders an executed plan tree as indented text, one node per
// line, estimates beside actuals:
//
//	mr3 (k=3 sched=s=1) est=60pg act=378pg cpu=913µs elapsed=4693µs
//	  phase:knn2d (2-D k-NN filter...) est=2pg act=9pg pool=3/2 rtree=4 wall=80µs
func RenderNode(n api.PlanNode) string {
	var b strings.Builder
	renderInto(&b, n, 0)
	return b.String()
}

func renderInto(b *strings.Builder, n api.PlanNode, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(n.Op)
	if n.Detail != "" {
		b.WriteString(" (")
		b.WriteString(n.Detail)
		b.WriteString(")")
	}
	fmt.Fprintf(b, " est=%dpg", n.EstPages)
	if ph := n.Phase; ph != nil {
		fmt.Fprintf(b, " act=%dpg pool=%d/%d rtree=%d", ph.Pages, ph.PoolHits, ph.PoolMisses, ph.RTreeVisits)
		if ph.Relaxations > 0 {
			fmt.Fprintf(b, " relax=%d", ph.Relaxations)
		}
		if ph.UpperBounds > 0 || ph.LowerBounds > 0 {
			fmt.Fprintf(b, " ub=%d lb=%d", ph.UpperBounds, ph.LowerBounds)
		}
		if ph.Iterations > 0 {
			fmt.Fprintf(b, " iters=%d", ph.Iterations)
		}
		if ph.Candidates > 0 {
			fmt.Fprintf(b, " cands=%d", ph.Candidates)
		}
		fmt.Fprintf(b, " wall=%dµs", ph.WallUs)
	}
	if c := n.Cost; c != nil {
		fmt.Fprintf(b, " act=%dpg cpu=%dµs elapsed=%dµs", c.Pages, c.CPUUs, c.ElapsedUs)
	}
	if len(n.Tiles) > 0 {
		fmt.Fprintf(b, " tiles=[%s]", strings.Join(n.Tiles, " "))
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		renderInto(b, c, depth+1)
	}
}

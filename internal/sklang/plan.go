package sklang

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"surfknn/internal/server/api"
)

// The cost-based planner. PlanStmt maps a parsed statement's predicate
// shape onto one of the engine's algorithms and emits a typed Plan tree:
// one root node per algorithm with one leaf per expected cost phase, each
// carrying an up-front page estimate from the Catalog's uniform-density
// model. After execution the executor overlays the actual per-phase
// stats.Cost onto the same nodes, which is what EXPLAIN renders as
// estimated-vs-actual.
//
// Decision table (see DESIGN.md "Query language & planner"):
//
//	SELECT (p) WITHIN r, RANGE          → range      (SurfaceRange)
//	SELECT k NEAREST, ACCURACY 1        → ea         (exact benchmark)
//	SELECT k NEAREST [ACCURACY a<1]     → mr3        (a pushes down Step2Accuracy)
//	SELECT k NEAREST ... WITHIN r       → mr3 + filter node (post-filter UB ≤ r)
//	DISTANCE a TO b [ACCURACY a]        → distance   (DistanceWithAccuracy)
//	SUBSCRIBE k FOLLOW p                → continuous (safe-region subscription)

// Algorithm names the engine algorithm a plan executes.
type Algorithm string

const (
	AlgoMR3        Algorithm = "mr3"
	AlgoEA         Algorithm = "ea"
	AlgoRange      Algorithm = "range"
	AlgoDistance   Algorithm = "distance"
	AlgoContinuous Algorithm = "continuous"
)

// Catalog is what the planner knows about the data it plans over: enough
// for uniform-density cost estimates, available on every serving layer
// (the server reads it off its TerrainDB, the coordinator off its manifest
// and shard health reports).
type Catalog struct {
	// Objects is the (approximate) live object count.
	Objects int
	// Faces is the terrain face count (0 when unknown, e.g. a coordinator
	// that has not verified its fleet yet).
	Faces int
	// Area is the terrain extent's planar area.
	Area float64
}

// Plan is one executable compiled statement. The scalar fields are the
// algorithm's arguments — already validated, with clause defaults applied —
// and Root is the cost-annotated plan tree.
type Plan struct {
	// Form is the statement form: "select", "range", "distance" or
	// "subscribe".
	Form string
	// Algo is the chosen algorithm.
	Algo Algorithm
	// Canonical is the canonical spelling of the planned statement (without
	// any EXPLAIN prefix) — the serving layers' cache key.
	Canonical string
	// Explain records an EXPLAIN prefix: execute, but answer with the
	// annotated plan instead of the bare result.
	Explain bool

	X, Y   float64 // query point (select/range/subscribe; distance: endpoint a)
	X2, Y2 float64 // distance: endpoint b
	K      int     // select k-NN / subscribe
	// Radius is the WITHIN distance: the range radius (AlgoRange) or the
	// post-filter bound (HasFilter on a k-NN plan).
	Radius    float64
	HasFilter bool
	// Accuracy is the distance form's target accuracy in (0, 1], default
	// applied (0.9, matching POST /v1/distance).
	Accuracy float64
	// Sched is the resolution schedule number in {1, 2, 3} (default 1).
	Sched int
	// Options carries the pushed-down engine options; nil when none.
	Options *api.Options

	// Root is the plan tree.
	Root *Node
}

// Node is one plan-tree node. The planner fills Op/Detail/EstPages; the
// executor fills Tiles (scatter plans), Phase (actual per-phase cost) and
// Cost (actual totals on algorithm nodes) after running the query.
type Node struct {
	// Op identifies the node: an Algorithm name at the root, "phase:<name>"
	// for a cost-phase leaf, "filter" for a post-filter step, "scatter:<op>"
	// / "rank:<step>" on coordinator plans.
	Op string
	// Detail is a human-oriented argument summary ("k=5 sched=s=2").
	Detail string
	// EstPages is the planner's page estimate for the subtree.
	EstPages int64
	// Tiles lists the tiles a scatter-gather execution touched for this
	// step; nil on single-node plans.
	Tiles []string
	// Phase is the executed query's actual cost for this phase leaf.
	Phase *api.PlanPhase
	// Cost is the executed query's actual total for this subtree.
	Cost *api.Cost
	// Children in execution order.
	Children []*Node
}

// PlanStmt compiles one parsed statement against cat. The returned error,
// when non-nil, is a *Error positioned at the offending clause.
func PlanStmt(st Stmt, cat Catalog) (*Plan, error) {
	switch s := st.(type) {
	case *ExplainStmt:
		p, err := PlanStmt(s.Query, cat)
		if err != nil {
			return nil, err
		}
		p.Explain = true
		return p, nil
	case *SelectStmt:
		return planSelect(s, cat)
	case *RangeStmt:
		return planRange(s.At, s.Within, s.WithinP, s.Using, s.String(), cat)
	case *DistanceStmt:
		return planDistance(s, cat)
	case *SubscribeStmt:
		return planSubscribe(s, cat)
	default:
		return nil, errf(st.Pos(), "", "cannot plan %T: unknown statement form", st)
	}
}

// Compile parses and plans src in one call — the front door the serving
// layers use.
func Compile(src string, cat Catalog) (*Plan, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return PlanStmt(st, cat)
}

func planSelect(s *SelectStmt, cat Catalog) (*Plan, error) {
	if !s.Nearest {
		// WITHIN-only SELECT is the range query in SELECT spelling.
		return planRange(s.At, s.Within, s.WithinP, s.Using, s.String(), cat)
	}
	p := &Plan{Form: "select", X: s.At.X, Y: s.At.Y, K: s.K, Canonical: s.String()}
	if err := applyUsing(p, s.Using, true); err != nil {
		return nil, err
	}
	if s.HasWithin {
		if !(s.Within > 0) {
			return nil, errf(s.WithinP, "", "WITHIN distance must be positive, got %s", fmtNum(s.Within))
		}
		p.HasFilter = true
		p.Radius = s.Within
	}
	switch {
	//lint:ignore float-eq ACCURACY 1 is a parsed literal sentinel, not computed
	case s.HasAccuracy && s.Accuracy == 1:
		// A demand for collapsed bounds: the exact EA algorithm. EA takes no
		// schedule or engine options — it always refines to the reference
		// metric — so pushed-down knobs would be silently dead; reject them.
		if len(s.Using) > 0 {
			o := s.Using[0]
			return nil, errf(o.KeyP, o.Key, "ACCURACY 1 selects the exact EA algorithm, which takes no USING options")
		}
		p.Algo = AlgoEA
	case s.HasAccuracy:
		if !(s.Accuracy > 0 && s.Accuracy < 1) {
			return nil, errf(s.AccuracyP, "", "ACCURACY must be in (0, 1], got %s", fmtNum(s.Accuracy))
		}
		p.Algo = AlgoMR3
		a := s.Accuracy
		opt := optionsOf(p)
		if opt.Step2Accuracy != nil {
			return nil, errf(s.AccuracyP, "", "ACCURACY conflicts with USING step2=... (set one)")
		}
		opt.Step2Accuracy = &a
	default:
		p.Algo = AlgoMR3
	}
	p.Root = buildKNNTree(p, cat)
	return p, nil
}

func planRange(at Point, radius float64, radiusP Position, using []Option, canonical string, cat Catalog) (*Plan, error) {
	if !(radius > 0) {
		return nil, errf(radiusP, "", "WITHIN distance must be positive, got %s", fmtNum(radius))
	}
	p := &Plan{Form: "range", Algo: AlgoRange, X: at.X, Y: at.Y, Radius: radius, Canonical: canonical}
	if err := applyUsing(p, using, true); err != nil {
		return nil, err
	}
	est := newEstimator(cat, p.Sched)
	cands := est.inRadius(radius)
	p.Root = algoNode(p, []*Node{
		phaseNode("range2d", "2-D circular candidate collection", est.rtree(cands)),
		phaseNode("refine", "LOD bound-refinement loop", est.rank(cands)),
		phaseNode("settle", "reference-distance settlement of straddlers", maxI64(1, cands/4)),
	})
	return p, nil
}

func planDistance(s *DistanceStmt, cat Catalog) (*Plan, error) {
	p := &Plan{
		Form: "distance", Algo: AlgoDistance, Canonical: s.String(),
		X: s.From.X, Y: s.From.Y, X2: s.To.X, Y2: s.To.Y,
		Accuracy: 0.9, // the /v1/distance default
	}
	if err := applyUsing(p, s.Using, false); err != nil {
		return nil, err
	}
	if s.HasAccuracy {
		if !(s.Accuracy > 0 && s.Accuracy <= 1) {
			return nil, errf(s.AccuracyP, "", "ACCURACY must be in (0, 1], got %s", fmtNum(s.Accuracy))
		}
		p.Accuracy = s.Accuracy
	}
	est := newEstimator(cat, p.Sched)
	p.Root = algoNode(p, []*Node{
		phaseNode("refine", "bound ladder walk until lb/ub ≥ accuracy", int64(est.steps)*4),
	})
	return p, nil
}

func planSubscribe(s *SubscribeStmt, cat Catalog) (*Plan, error) {
	p := &Plan{Form: "subscribe", Algo: AlgoContinuous, X: s.At.X, Y: s.At.Y, K: s.K, Canonical: s.String()}
	if err := applyUsing(p, s.Using, true); err != nil {
		return nil, err
	}
	inner := &Plan{Form: "select", Algo: AlgoMR3, X: p.X, Y: p.Y, K: p.K, Sched: p.Sched, Options: p.Options}
	mr3 := buildKNNTree(inner, cat)
	p.Root = algoNode(p, []*Node{mr3})
	p.Root.Detail += " safe-region certification over mr3"
	return p, nil
}

// buildKNNTree builds the phase tree of a k-NN plan (mr3 or ea, plus the
// optional post-filter step).
func buildKNNTree(p *Plan, cat Catalog) *Node {
	est := newEstimator(cat, p.Sched)
	if p.Algo == AlgoEA {
		// EA ranks every candidate at the reference metric: charge the full
		// ladder depth per candidate instead of the scheduled steps.
		est.steps = 8
	}
	k := p.K
	c2 := est.candAfterBound(k)
	children := []*Node{
		phaseNode("knn2d", "2-D k-NN filter on the object R-tree", est.rtree(int64(k))),
		phaseNode("rank-c1", "surface ranking of C1 (bound tightening)", est.rank(int64(k))),
		phaseNode("range2d", "2-D range collection with the step-2 bound", est.rtree(c2)),
		phaseNode("rank-c2", "surface ranking of C2 (final k-set)", est.rank(maxI64(0, c2-int64(k)))),
	}
	if p.HasFilter {
		children = append(children, &Node{
			Op:       "filter",
			Detail:   "keep neighbours with ub ≤ " + fmtNum(p.Radius),
			EstPages: 0, // pure post-processing, no I/O
		})
	}
	return algoNode(p, children)
}

// algoNode builds an algorithm root over its phase children, summing their
// estimates.
func algoNode(p *Plan, children []*Node) *Node {
	n := &Node{Op: string(p.Algo), Detail: planDetail(p), Children: children}
	for _, c := range children {
		n.EstPages += c.EstPages
	}
	return n
}

func phaseNode(phase, detail string, est int64) *Node {
	return &Node{Op: "phase:" + phase, Detail: detail, EstPages: maxI64(1, est)}
}

// planDetail summarizes the plan's arguments for the root node.
func planDetail(p *Plan) string {
	var parts []string
	switch p.Algo {
	case AlgoMR3, AlgoEA, AlgoContinuous:
		parts = append(parts, "k="+strconv.Itoa(p.K))
	case AlgoRange:
		parts = append(parts, "r="+fmtNum(p.Radius))
	case AlgoDistance:
		parts = append(parts, "accuracy="+fmtNum(p.Accuracy))
	}
	if p.Algo != AlgoEA {
		parts = append(parts, fmt.Sprintf("sched=s=%d", p.Sched))
	}
	if p.HasFilter {
		parts = append(parts, "within="+fmtNum(p.Radius))
	}
	if o := p.Options; o != nil && o.Step2Accuracy != nil {
		parts = append(parts, "step2_accuracy="+fmtNum(*o.Step2Accuracy))
	}
	return strings.Join(parts, " ")
}

// applyUsing validates and applies a USING clause onto the plan. engineOpts
// gates the knobs only the candidate-ranking algorithms honour (the
// distance form takes just the schedule).
func applyUsing(p *Plan, using []Option, engineOpts bool) *Error {
	seen := make(map[string]bool, len(using))
	for _, o := range using {
		if seen[o.Key] {
			return errf(o.KeyP, o.Key, "duplicate option %q", o.Key)
		}
		seen[o.Key] = true
		switch o.Key {
		case "s":
			//lint:ignore float-eq s is a parsed literal validated against exact integers
			if !o.IsNum || (o.Num != 1 && o.Num != 2 && o.Num != 3) {
				return errf(o.ValueP, o.String(), "s must be 1, 2 or 3")
			}
			p.Sched = int(o.Num)
		case "step2":
			if !engineOpts {
				return errf(o.KeyP, o.Key, "option %q does not apply to this query form", o.Key)
			}
			if !o.IsNum || !(o.Num >= 0 && o.Num <= 1) {
				return errf(o.ValueP, o.String(), "step2 must be a fraction in [0, 1]")
			}
			v := o.Num
			optionsOf(p).Step2Accuracy = &v
		case "overlap":
			if !engineOpts {
				return errf(o.KeyP, o.Key, "option %q does not apply to this query form", o.Key)
			}
			if !o.IsNum || !(o.Num >= 0 && o.Num <= 1) {
				return errf(o.ValueP, o.String(), "overlap must be a fraction in [0, 1]")
			}
			v := o.Num
			optionsOf(p).OverlapThreshold = &v
		case "io", "dummy_lb", "both_lb":
			if !engineOpts {
				return errf(o.KeyP, o.Key, "option %q does not apply to this query form", o.Key)
			}
			b, ok := boolWord(o)
			if !ok {
				return errf(o.ValueP, o.String(), "%s must be on, off, true or false", o.Key)
			}
			switch o.Key {
			case "io":
				optionsOf(p).IOIntegration = &b
			case "dummy_lb":
				optionsOf(p).DummyLB = &b
			default:
				optionsOf(p).BothFamilyLB = &b
			}
		default:
			return errf(o.KeyP, o.Key, "unknown option %q (known: s, step2, overlap, io, dummy_lb, both_lb)", o.Key)
		}
	}
	if p.Sched == 0 {
		p.Sched = 1
	}
	return nil
}

func optionsOf(p *Plan) *api.Options {
	if p.Options == nil {
		p.Options = &api.Options{}
	}
	return p.Options
}

func boolWord(o Option) (bool, bool) {
	if o.IsNum {
		return false, false
	}
	switch o.Word {
	case "on", "true":
		return true, true
	case "off", "false":
		return false, true
	}
	return false, false
}

// estimator is the uniform-density cost model: objects spread evenly over
// the extent, an R-tree fanout of 64, and two terrain-page fetches (one
// DMTM, one MSDN region) per candidate per refinement step. The numbers
// exist to be compared against actuals in EXPLAIN output, not to be right.
type estimator struct {
	n       int64   // objects
	density float64 // objects per planar area
	steps   int     // refinement iterations of the schedule
}

// schedSteps mirrors core.S1/S2/S3.Steps() (pinned by a skexec test so the
// two cannot drift).
var schedSteps = map[int]int{1: 6, 2: 4, 3: 3}

// SchedSteps reports the refinement-step count the cost model assumes for
// schedule s=n (0 for unknown n). Exported so the skexec equivalence suite
// can pin it against the real core schedules without sklang importing core.
func SchedSteps(n int) int { return schedSteps[n] }

func newEstimator(cat Catalog, sched int) estimator {
	e := estimator{n: int64(cat.Objects), steps: schedSteps[sched]}
	if e.steps == 0 {
		e.steps = schedSteps[1]
	}
	if cat.Area > 0 {
		e.density = float64(cat.Objects) / cat.Area
	}
	return e
}

// rtree estimates one R-tree traversal returning m items: the root-to-leaf
// descent plus the leaf pages the result set spans.
func (e estimator) rtree(m int64) int64 {
	if m > e.n {
		m = e.n
	}
	descent := int64(1)
	for n := e.n; n > 64; n /= 64 {
		descent++
	}
	return descent + (m+63)/64
}

// rank estimates ranking m candidates: two terrain-page fetches per
// candidate per refinement step (grouping makes the real number smaller;
// the bias is uniform, so est-vs-actual stays comparable across plans).
func (e estimator) rank(m int64) int64 {
	if m > e.n {
		m = e.n
	}
	return m * int64(e.steps) * 2
}

// candAfterBound estimates |C2|: the objects inside the step-2 upper bound,
// which for uniform density is ~(stretch·r̂)² π density with r̂ the expected
// k-th planar-neighbour radius — i.e. stretch²·k, stretch 1.5.
func (e estimator) candAfterBound(k int) int64 {
	c := int64(math.Ceil(2.25 * float64(k)))
	if c > e.n {
		c = e.n
	}
	if c < int64(k) {
		c = int64(k)
	}
	return c
}

// inRadius estimates the candidates a planar radius-r disc collects.
func (e estimator) inRadius(r float64) int64 {
	c := int64(math.Ceil(math.Pi * r * r * e.density))
	if c > e.n {
		c = e.n
	}
	return maxI64(1, c)
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

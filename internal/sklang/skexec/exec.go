// Package skexec executes compiled SKQL plans on a single-node engine: a
// sklang.Plan in, the exact core call it stands for out. It is the only
// bridge between the engine-free language package and internal/core — the
// standalone server and skquery both run plans through it, and the
// equivalence tests pin that an executed plan is bit-identical (IDs,
// float64 bits, Cost.Pages) to the direct Session call it compiles to.
//
// After execution the plan tree is annotated in place: each cost phase the
// engine reported lands on its "phase:<name>" leaf (phases the planner did
// not predict are appended — the engine's account wins), and algorithm
// nodes get the actual totals.
package skexec

import (
	"context"
	"errors"
	"fmt"

	"surfknn/internal/core"
	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/server/api"
	"surfknn/internal/sklang"
	"surfknn/internal/stats"
)

// ErrOffTerrain wraps a query point outside the terrain extent — the
// serving layers map it to their 404.
var ErrOffTerrain = errors.New("point is not on the terrain")

// Outcome is what executing one plan produced. Exactly one payload is
// populated, selected by the plan's Form; Plan points at the annotated
// tree.
type Outcome struct {
	Plan *sklang.Plan
	// Result is the select/range/subscribe payload. Its Neighbors alias
	// session scratch exactly like a direct core call's — consume before
	// the session's next query.
	Result core.Result
	// Distance is the DISTANCE form's payload.
	Distance core.DistanceRange
	// Safe is the subscribe form's one-shot safe region (Run evaluates the
	// continuous query once; registering it is the serving layer's job —
	// see the server's /v1/query handler).
	Safe core.SafeRegion
}

// Schedule maps a plan's schedule number onto the paper's schedules
// (default 1). The false return is unreachable for planner-built plans —
// the planner validates s — but hand-built plans go through it too.
func Schedule(n int) (core.Schedule, bool) {
	switch n {
	case 0, 1:
		return core.S1, true
	case 2:
		return core.S2, true
	case 3:
		return core.S3, true
	}
	return core.Schedule{}, false
}

// CoreOptions maps the wire options onto core.Options, validating
// fractions. Shared by the /v1 handlers and the plan executor so both
// translate a client's options identically — the bit-identity guarantee
// depends on it.
func CoreOptions(o *api.Options) (core.Options, error) {
	if o == nil {
		return core.Options{}, nil
	}
	var fns []core.Option
	if o.Step2Accuracy != nil {
		if !inUnit(*o.Step2Accuracy) {
			return core.Options{}, fmt.Errorf("step2_accuracy %g outside [0,1]", *o.Step2Accuracy)
		}
		fns = append(fns, core.WithStep2Accuracy(*o.Step2Accuracy))
	}
	if o.OverlapThreshold != nil {
		if !inUnit(*o.OverlapThreshold) {
			return core.Options{}, fmt.Errorf("overlap_threshold %g outside [0,1]", *o.OverlapThreshold)
		}
		fns = append(fns, core.WithOverlapThreshold(*o.OverlapThreshold))
	}
	if o.IOIntegration != nil {
		fns = append(fns, core.WithIOIntegration(*o.IOIntegration))
	}
	if o.DummyLB != nil {
		fns = append(fns, core.WithDummyLB(*o.DummyLB))
	}
	if o.BothFamilyLB != nil {
		fns = append(fns, core.WithBothFamilyLB(*o.BothFamilyLB))
	}
	return core.NewOptions(fns...), nil
}

func inUnit(v float64) bool { return v >= 0 && v <= 1 }

// Run executes p on sess. The session's database resolves the plan's
// planar points; a point off the terrain returns an error wrapping
// ErrOffTerrain. The plan tree is annotated with actual costs in place.
func Run(ctx context.Context, sess *core.Session, p *sklang.Plan) (*Outcome, error) {
	sched, ok := Schedule(p.Sched)
	if !ok {
		return nil, fmt.Errorf("skexec: invalid schedule %d", p.Sched)
	}
	opt, err := CoreOptions(p.Options)
	if err != nil {
		return nil, fmt.Errorf("skexec: %w", err)
	}
	db := sess.DB()
	out := &Outcome{Plan: p}
	switch p.Algo {
	case sklang.AlgoMR3, sklang.AlgoEA:
		q, err := point(db, p.X, p.Y)
		if err != nil {
			return nil, err
		}
		var res core.Result
		if p.Algo == sklang.AlgoEA {
			res, err = sess.EACtx(ctx, q, p.K)
		} else {
			res, err = sess.MR3Ctx(ctx, q, p.K, sched, opt)
		}
		if err != nil {
			return nil, err
		}
		out.Result = applyFilter(p, res)
	case sklang.AlgoRange:
		q, err := point(db, p.X, p.Y)
		if err != nil {
			return nil, err
		}
		res, err := sess.SurfaceRangeCtx(ctx, q, p.Radius, sched, opt)
		if err != nil {
			return nil, err
		}
		out.Result = res
	case sklang.AlgoDistance:
		a, err := point(db, p.X, p.Y)
		if err != nil {
			return nil, err
		}
		b, err := point(db, p.X2, p.Y2)
		if err != nil {
			return nil, err
		}
		dr, res, err := sess.DistanceWithAccuracyCostCtx(ctx, a, b, p.Accuracy, sched)
		if err != nil {
			return nil, err
		}
		out.Distance = dr
		out.Result = res // cost shell only; no neighbours
	case sklang.AlgoContinuous:
		// One evaluation of the continuous query: the MR3 answer plus its
		// certified safe region. Registering a live subscription is
		// server-side state and stays with the serving layer.
		q, err := point(db, p.X, p.Y)
		if err != nil {
			return nil, err
		}
		res, sr, err := sess.MR3SafeCtx(ctx, q, p.K, sched, opt)
		if err != nil {
			return nil, err
		}
		out.Result = res
		out.Safe = sr
	default:
		return nil, fmt.Errorf("skexec: plan has unknown algorithm %q", p.Algo)
	}
	Annotate(p, out.Result.Cost)
	return out, nil
}

// point lifts (x, y) onto the terrain.
func point(db *core.TerrainDB, x, y float64) (mesh.SurfacePoint, error) {
	q, err := db.SurfacePointAt(geom.Vec2{X: x, Y: y})
	if err != nil {
		return mesh.SurfacePoint{}, fmt.Errorf("(%g, %g): %w: %v", x, y, ErrOffTerrain, err)
	}
	return q, nil
}

// applyFilter applies a k-NN plan's WITHIN post-filter: keep neighbours
// whose upper bound is inside the radius. The underlying scan is untouched
// — same candidates, same bounds, same cost — so the filtered result is a
// pure subsequence of the direct call's.
func applyFilter(p *sklang.Plan, res core.Result) core.Result {
	if !p.HasFilter {
		return res
	}
	kept := make([]core.Neighbor, 0, len(res.Neighbors))
	for _, n := range res.Neighbors {
		if n.UB <= p.Radius {
			kept = append(kept, n)
		}
	}
	if f := findOp(p.Root, "filter"); f != nil {
		f.Detail = fmt.Sprintf("kept %d of %d (ub ≤ %g)", len(kept), len(res.Neighbors), p.Radius)
	}
	res.Neighbors = kept
	return res
}

// Annotate overlays an executed query's cost onto the plan tree: each
// reported phase lands on its "phase:<name>" leaf (appended if the planner
// did not predict it — the engine's account wins), and every algorithm
// node on the path gets the actual totals.
func Annotate(p *sklang.Plan, cost stats.Cost) {
	if p.Root == nil {
		return
	}
	// The node owning the phase leaves: the root, except for continuous
	// plans whose phases belong to the inner mr3 evaluation.
	phases := p.Root
	if p.Algo == sklang.AlgoContinuous {
		if inner := p.Root.FindChild(string(sklang.AlgoMR3)); inner != nil {
			phases = inner
		}
	}
	for _, ph := range cost.Phases {
		leaf := findOp(phases, "phase:"+ph.Phase)
		if leaf == nil {
			leaf = &sklang.Node{Op: "phase:" + ph.Phase, Detail: "unplanned phase"}
			phases.Children = append(phases.Children, leaf)
		}
		w := WirePhase(ph)
		leaf.Phase = &w
	}
	total := &api.Cost{
		Pages:     cost.Pages(),
		CPUUs:     cost.CPU.Microseconds(),
		ElapsedUs: cost.Elapsed.Microseconds(),
	}
	phases.Cost = total
	if phases != p.Root {
		p.Root.Cost = total
	}
}

// WirePhase converts one stats.PhaseCost to its wire form.
func WirePhase(ph stats.PhaseCost) api.PlanPhase {
	return api.PlanPhase{
		WallUs:      ph.Wall.Microseconds(),
		PoolHits:    ph.PoolHits,
		PoolMisses:  ph.PoolMisses,
		RTreeVisits: ph.RTreeVisits,
		Relaxations: ph.Relaxations,
		UpperBounds: ph.UpperBounds,
		LowerBounds: ph.LowerBounds,
		Iterations:  ph.Iterations,
		Candidates:  ph.Candidates,
		Pages:       ph.Pages(),
	}
}

// findOp returns the first node (pre-order) with the given op.
func findOp(n *sklang.Node, op string) *sklang.Node {
	if n == nil {
		return nil
	}
	if n.Op == op {
		return n
	}
	for _, c := range n.Children {
		if f := findOp(c, op); f != nil {
			return f
		}
	}
	return nil
}

package skexec

import (
	"errors"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"

	"surfknn/internal/core"
	"surfknn/internal/dem"
	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/sklang"
	"surfknn/internal/workload"
)

// testDB builds the shared test terrain once: the same EP 17×17 grid with
// 30 objects the server tests use, so cost numbers line up across suites.
var (
	dbOnce sync.Once
	testdb *core.TerrainDB
)

func getDB(t testing.TB) *core.TerrainDB {
	t.Helper()
	dbOnce.Do(func() {
		g := dem.Synthesize(dem.EP, 16, 100, 2006)
		m := mesh.FromGrid(g)
		db, err := core.BuildTerrainDB(m, core.Config{})
		if err != nil {
			panic(err)
		}
		objs, err := workload.RandomObjects(m, db.Loc, 30, 2007)
		if err != nil {
			panic(err)
		}
		db.SetObjects(objs)
		testdb = db
	})
	return testdb
}

func catalogOf(db *core.TerrainDB) sklang.Catalog {
	return sklang.Catalog{
		Objects: len(db.Objects()),
		Faces:   db.Mesh.NumFaces(),
		Area:    db.Mesh.Extent().Area(),
	}
}

func run(t *testing.T, db *core.TerrainDB, q string) *Outcome {
	t.Helper()
	plan, err := sklang.Compile(q, catalogOf(db))
	if err != nil {
		t.Fatalf("Compile(%q): %v", q, err)
	}
	sess := db.NewSession(nil)
	out, err := Run(nil, sess, plan)
	if err != nil {
		t.Fatalf("Run(%q): %v", q, err)
	}
	return out
}

// copyNeighbors detaches a result from session scratch.
func copyNeighbors(ns []core.Neighbor) []core.Neighbor {
	out := make([]core.Neighbor, len(ns))
	copy(out, ns)
	return out
}

// sameNeighbors asserts bit-identity: IDs in order, and LB/UB float64 bits.
func sameNeighbors(t *testing.T, label string, got, want []core.Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d neighbours, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Object.ID != w.Object.ID ||
			math.Float64bits(g.LB) != math.Float64bits(w.LB) ||
			math.Float64bits(g.UB) != math.Float64bits(w.UB) {
			t.Fatalf("%s: neighbour %d differs: got id=%d lb=%x ub=%x, want id=%d lb=%x ub=%x",
				label, i, g.Object.ID, math.Float64bits(g.LB), math.Float64bits(g.UB),
				w.Object.ID, math.Float64bits(w.LB), math.Float64bits(w.UB))
		}
	}
}

func surfacePoint(t *testing.T, db *core.TerrainDB, x, y float64) mesh.SurfacePoint {
	t.Helper()
	q, err := db.SurfacePointAt(geom.Vec2{X: x, Y: y})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestEquivalenceMR3 pins that the SELECT form executes bit-identically to
// the direct MR3 call it compiles to: same IDs, same bound bits, same page
// count.
func TestEquivalenceMR3(t *testing.T) {
	db := getDB(t)
	out := run(t, db, "SELECT k=5 NEAREST (800, 800) USING s=2")
	got := copyNeighbors(out.Result.Neighbors)
	gotPages := out.Result.Cost.Pages()

	q := surfacePoint(t, db, 800, 800)
	want, err := db.NewSession(nil).MR3Ctx(nil, q, 5, core.S2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameNeighbors(t, "mr3", got, want.Neighbors)
	if gotPages != want.Cost.Pages() {
		t.Errorf("pages: plan %d, direct %d", gotPages, want.Cost.Pages())
	}
}

// TestEquivalenceMR3Accuracy pins the ACCURACY push-down: the clause is
// exactly WithStep2Accuracy, nothing else.
func TestEquivalenceMR3Accuracy(t *testing.T) {
	db := getDB(t)
	out := run(t, db, "SELECT k=5 NEAREST (800, 800) ACCURACY 0.5")
	got := copyNeighbors(out.Result.Neighbors)
	gotPages := out.Result.Cost.Pages()

	q := surfacePoint(t, db, 800, 800)
	want, err := db.NewSession(nil).MR3Ctx(nil, q, 5, core.S1, core.NewOptions(core.WithStep2Accuracy(0.5)))
	if err != nil {
		t.Fatal(err)
	}
	sameNeighbors(t, "mr3+accuracy", got, want.Neighbors)
	if gotPages != want.Cost.Pages() {
		t.Errorf("pages: plan %d, direct %d", gotPages, want.Cost.Pages())
	}
}

// TestEquivalenceEA pins that ACCURACY 1 selects EA, bit-identical to EACtx.
func TestEquivalenceEA(t *testing.T) {
	db := getDB(t)
	out := run(t, db, "SELECT k=5 NEAREST (800, 800) ACCURACY 1")
	if out.Plan.Algo != sklang.AlgoEA {
		t.Fatalf("algo = %s, want ea", out.Plan.Algo)
	}
	got := copyNeighbors(out.Result.Neighbors)
	gotPages := out.Result.Cost.Pages()

	q := surfacePoint(t, db, 800, 800)
	want, err := db.NewSession(nil).EACtx(nil, q, 5)
	if err != nil {
		t.Fatal(err)
	}
	sameNeighbors(t, "ea", got, want.Neighbors)
	if gotPages != want.Cost.Pages() {
		t.Errorf("pages: plan %d, direct %d", gotPages, want.Cost.Pages())
	}
}

// TestEquivalenceRange pins both range spellings against SurfaceRangeCtx.
func TestEquivalenceRange(t *testing.T) {
	db := getDB(t)
	q := surfacePoint(t, db, 800, 800)
	want, err := db.NewSession(nil).SurfaceRangeCtx(nil, q, 500, core.S1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantNs := copyNeighbors(want.Neighbors)
	for _, spelling := range []string{"RANGE (800, 800) WITHIN 500", "SELECT (800, 800) WITHIN 500"} {
		out := run(t, db, spelling)
		if out.Plan.Algo != sklang.AlgoRange {
			t.Fatalf("%q: algo = %s, want range", spelling, out.Plan.Algo)
		}
		sameNeighbors(t, spelling, out.Result.Neighbors, wantNs)
		if out.Result.Cost.Pages() != want.Cost.Pages() {
			t.Errorf("%q: pages %d, direct %d", spelling, out.Result.Cost.Pages(), want.Cost.Pages())
		}
	}
}

// TestEquivalenceDistance pins the DISTANCE form against
// DistanceWithAccuracyCtx: identical bound bits and iteration count.
func TestEquivalenceDistance(t *testing.T) {
	db := getDB(t)
	out := run(t, db, "DISTANCE (100, 100) TO (1400, 1400) ACCURACY 0.9")
	a := surfacePoint(t, db, 100, 100)
	b := surfacePoint(t, db, 1400, 1400)
	want, err := db.NewSession(nil).DistanceWithAccuracyCtx(nil, a, b, 0.9, core.S1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(out.Distance.LB) != math.Float64bits(want.LB) ||
		math.Float64bits(out.Distance.UB) != math.Float64bits(want.UB) ||
		out.Distance.Iterations != want.Iterations {
		t.Errorf("distance differs: got %+v, want %+v", out.Distance, want)
	}
	if out.Result.Cost.Pages() == 0 {
		t.Error("distance plan reported no page cost")
	}
}

// TestEquivalenceSubscribe pins the SUBSCRIBE form's one-shot evaluation
// against MR3SafeCtx (which is itself pinned bit-identical to MR3Ctx).
func TestEquivalenceSubscribe(t *testing.T) {
	db := getDB(t)
	out := run(t, db, "SUBSCRIBE k=5 FOLLOW (800, 800)")
	if out.Plan.Algo != sklang.AlgoContinuous {
		t.Fatalf("algo = %s, want continuous", out.Plan.Algo)
	}
	got := copyNeighbors(out.Result.Neighbors)

	q := surfacePoint(t, db, 800, 800)
	want, sr, err := db.NewSession(nil).MR3SafeCtx(nil, q, 5, core.S1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameNeighbors(t, "subscribe", got, want.Neighbors)
	if math.Float64bits(out.Safe.Radius) != math.Float64bits(sr.Radius) {
		t.Errorf("safe radius: got %x, want %x", math.Float64bits(out.Safe.Radius), math.Float64bits(sr.Radius))
	}
}

// TestFilterSubsequence pins the WITHIN post-filter semantics: the
// filtered result is the exact subsequence of the unfiltered one with
// ub ≤ radius — the scan itself is untouched.
func TestFilterSubsequence(t *testing.T) {
	db := getDB(t)
	full := run(t, db, "SELECT k=10 NEAREST (800, 800)")
	fullNs := copyNeighbors(full.Result.Neighbors)
	radius := (fullNs[4].UB + fullNs[5].UB) / 2 // split the result set

	out := run(t, db, "SELECT k=10 NEAREST (800, 800) WITHIN "+trim(radius))
	var want []core.Neighbor
	for _, n := range fullNs {
		if n.UB <= radius {
			want = append(want, n)
		}
	}
	sameNeighbors(t, "filter", out.Result.Neighbors, want)
	if out.Result.Cost.Pages() != full.Result.Cost.Pages() {
		t.Errorf("filter changed the scan: %d pages vs %d", out.Result.Cost.Pages(), full.Result.Cost.Pages())
	}
}

func trim(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// TestAnnotate pins that execution fills every planned phase leaf with the
// engine's actual numbers and the root with the totals.
func TestAnnotate(t *testing.T) {
	db := getDB(t)
	out := run(t, db, "SELECT k=5 NEAREST (800, 800)")
	root := out.Plan.Root
	if root.Cost == nil || root.Cost.Pages != out.Result.Cost.Pages() {
		t.Fatalf("root cost not annotated: %+v", root.Cost)
	}
	phases := 0
	for _, ch := range root.Children {
		if !strings.HasPrefix(ch.Op, "phase:") {
			continue
		}
		phases++
		if ch.Phase == nil {
			t.Errorf("phase leaf %s not annotated", ch.Op)
			continue
		}
		if ch.Phase.Pages == 0 && ch.Phase.WallUs == 0 && ch.Phase.Candidates == 0 {
			t.Errorf("phase leaf %s annotated with all-zero actuals", ch.Op)
		}
	}
	if phases != 4 {
		t.Errorf("annotated %d phase leaves, want 4", phases)
	}
	// Continuous plans annotate the inner mr3 node.
	sub := run(t, db, "SUBSCRIBE k=5 FOLLOW (800, 800)")
	inner := sub.Plan.Root.FindChild("mr3")
	if inner == nil || inner.Cost == nil || sub.Plan.Root.Cost == nil {
		t.Fatalf("continuous plan not annotated: %+v", sub.Plan.Root)
	}
}

// TestSchedStepsPinned keeps the planner's engine-free schedule-depth
// table in sync with the real schedules.
func TestSchedStepsPinned(t *testing.T) {
	for n, sched := range map[int]core.Schedule{1: core.S1, 2: core.S2, 3: core.S3} {
		if got := sklang.SchedSteps(n); got != sched.Steps() {
			t.Errorf("sklang.SchedSteps(%d) = %d, want %d (core %s)", n, got, sched.Steps(), sched.Name)
		}
	}
}

// TestOffTerrain pins the typed off-terrain error the serving layers map
// to 404.
func TestOffTerrain(t *testing.T) {
	db := getDB(t)
	plan, err := sklang.Compile("SELECT k=5 NEAREST (-1e6, -1e6)", catalogOf(db))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(nil, db.NewSession(nil), plan)
	if err == nil {
		t.Fatal("no error for an off-terrain point")
	}
	if !errors.Is(err, ErrOffTerrain) {
		t.Fatalf("error %v does not wrap ErrOffTerrain", err)
	}
}

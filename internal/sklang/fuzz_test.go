package sklang

import (
	"reflect"
	"testing"
)

// FuzzParseRoundTrip pins the two parser invariants the language front
// door depends on: the parser never panics on arbitrary input, and for
// every accepted statement parse → String → re-parse yields an equal AST
// (modulo positions) with an identical canonical spelling — so the
// canonical form is a true fixed point and safe to use as a cache key.
func FuzzParseRoundTrip(f *testing.F) {
	seeds := []string{
		"SELECT k=5 NEAREST (800, 800)",
		"SELECT k=5 NEAREST (800, 800) WITHIN 2000 USING s=2 ACCURACY 0.1",
		"SELECT (800, 800) WITHIN 500",
		"RANGE (1.5e2, -3.25) WITHIN 500 USING s=3, io=off",
		"DISTANCE (0, 0) TO (100, 100) USING s=2 ACCURACY 0.95",
		"SUBSCRIBE k=3 FOLLOW (800, 800) USING dummy_lb=on",
		"EXPLAIN SELECT k=2 NEAREST (10, 20)",
		"select K = 00005 nearest(8e2,+800)",
		"SELECT k=5 NEAREST (1e999, 2)",
		"\x00\xff(((",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := Parse(src) // must never panic
		if err != nil {
			if le, ok := err.(*Error); !ok {
				t.Fatalf("Parse(%q): error %T is not *Error", src, err)
			} else if le.Pos.Line < 1 || le.Pos.Col < 1 {
				t.Fatalf("Parse(%q): error without a position: %v", src, err)
			}
			return
		}
		canon := st.String()
		st2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical %q (of %q) does not re-parse: %v", canon, src, err)
		}
		if got := st2.String(); got != canon {
			t.Fatalf("canonical form is not a fixed point: %q → %q", canon, got)
		}
		if !reflect.DeepEqual(StripPositions(st), StripPositions(st2)) {
			t.Fatalf("round trip of %q changed the AST:\n%#v\n%#v", src, st, st2)
		}
	})
}

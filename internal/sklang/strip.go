package sklang

import "reflect"

// StripPositions returns a deep copy of st with every Position field
// zeroed. Positions are where a token sat in the source, not what the
// statement means, so this is the equality domain of the parse/String
// round-trip invariant (FuzzParseRoundTrip): reflect.DeepEqual of stripped
// ASTs compares exactly the semantic fields, whatever the grammar grows.
func StripPositions(st Stmt) Stmt {
	if st == nil {
		return nil
	}
	return stripValue(reflect.ValueOf(st)).Interface().(Stmt)
}

var positionType = reflect.TypeOf(Position{})

func stripValue(v reflect.Value) reflect.Value {
	switch v.Kind() {
	case reflect.Pointer:
		if v.IsNil() {
			return v
		}
		out := reflect.New(v.Type().Elem())
		out.Elem().Set(stripValue(v.Elem()))
		return out
	case reflect.Interface:
		if v.IsNil() {
			return v
		}
		out := reflect.New(v.Type()).Elem()
		out.Set(stripValue(v.Elem()))
		return out
	case reflect.Struct:
		if v.Type() == positionType {
			return reflect.Zero(positionType)
		}
		out := reflect.New(v.Type()).Elem()
		for i := 0; i < v.NumField(); i++ {
			out.Field(i).Set(stripValue(v.Field(i)))
		}
		return out
	case reflect.Slice:
		if v.IsNil() {
			return v
		}
		out := reflect.MakeSlice(v.Type(), v.Len(), v.Len())
		for i := 0; i < v.Len(); i++ {
			out.Index(i).Set(stripValue(v.Index(i)))
		}
		return out
	default:
		return v
	}
}

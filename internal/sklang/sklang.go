// Package sklang is SKQL, the query language front door of the engine: a
// stdlib-only lexer → parser → AST → planner pipeline for statements like
//
//	SELECT k=5 NEAREST (3200, 3200) WITHIN 2000 USING s=2 ACCURACY 0.1
//	RANGE (3200, 3200) WITHIN 500
//	DISTANCE (0, 0) TO (6000, 6000) ACCURACY 0.95
//	SUBSCRIBE k=5 FOLLOW (3200, 3200)
//	EXPLAIN SELECT k=5 NEAREST (3200, 3200)
//
// covering every query variant the engine answers (MR3, EA, SurfaceRange,
// DistanceWithAccuracy, continuous subscriptions). The planner maps
// predicate shape to an algorithm — WITHIN-only → range, NEAREST with
// ACCURACY 1 → EA, NEAREST otherwise → MR3, FOLLOW → continuous — and
// emits a typed Plan tree whose nodes carry estimated page costs up front
// and the actual per-phase stats.Cost after execution.
//
// The package is deliberately engine-free: it imports only the standard
// library and internal/server/api (the wire contract), so the scatter-
// gather coordinator — which never links the engine — can parse, plan and
// explain the same statements. Execution lives in the skexec sub-package
// (single-node, over a core.Session) and in internal/shard (scatter-
// gather); both are pure back ends behind the same Plan, never a semantic
// fork: an executed plan is bit-identical to the equivalent direct API
// call.
package sklang

import (
	"fmt"
	"strconv"
	"strings"
)

// Position is a 1-based line/column location in the statement source.
type Position struct {
	Line int
	Col  int
}

// Error is a parse- or plan-time diagnostic: where it happened, the
// offending token (empty at end of input), and what went wrong. The server
// maps it onto the 400 error envelope with the same position info; skquery
// renders it as a one-line caret diagnostic.
type Error struct {
	Pos Position
	Tok string // offending token text; empty at end of input
	Msg string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Pos.Line, e.Pos.Col, e.Msg)
}

// errf builds a positioned diagnostic.
func errf(pos Position, tok, format string, args ...any) *Error {
	return &Error{Pos: pos, Tok: tok, Msg: fmt.Sprintf(format, args...)}
}

// Caret renders the offending source line with a caret under the error
// column — the two extra lines of a compiler-style diagnostic. Returns ""
// when the position does not land inside src (e.g. a plan error with no
// stored position).
func Caret(src string, pos Position) string {
	if pos.Line < 1 || pos.Col < 1 {
		return ""
	}
	lines := strings.Split(src, "\n")
	if pos.Line > len(lines) {
		return ""
	}
	line := lines[pos.Line-1]
	if pos.Col > len(line)+1 {
		return ""
	}
	var b strings.Builder
	b.WriteString("  ")
	b.WriteString(line)
	b.WriteString("\n  ")
	for i := 0; i < pos.Col-1; i++ {
		b.WriteByte(' ')
	}
	b.WriteByte('^')
	return b.String()
}

// fmtNum renders a float64 in the canonical SKQL spelling: the shortest
// decimal that round-trips to the same bits, the same encoding api.Float
// puts on the wire. Canonical statements therefore re-parse to
// bit-identical values.
func fmtNum(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

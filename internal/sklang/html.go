package sklang

// ExplainHTML is the embedded EXPLAIN console: a single self-contained
// page served at GET /debug/explain by both the standalone server and the
// scatter-gather coordinator. It POSTs the typed-in statement to
// /v1/explain on the same origin and shows the pre-rendered plan text plus
// the raw JSON tree.
const ExplainHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>surfknn EXPLAIN</title>
<style>
  body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 60rem; padding: 0 1rem; }
  h1 { font-size: 1.2rem; }
  textarea { width: 100%; font: 0.9rem/1.4 ui-monospace, monospace; padding: 0.5rem; box-sizing: border-box; }
  button { margin: 0.5rem 0; padding: 0.4rem 1.2rem; font-size: 0.9rem; }
  pre { background: #f4f4f4; padding: 0.8rem; overflow-x: auto; font-size: 0.85rem; }
  .err { color: #b00020; white-space: pre-wrap; font-family: ui-monospace, monospace; }
  .hint { color: #666; font-size: 0.85rem; }
</style>
</head>
<body>
<h1>surfknn EXPLAIN</h1>
<p class="hint">SELECT k=5 NEAREST (x, y) [WITHIN r] [USING s=2] [ACCURACY 0.1] &middot;
RANGE (x, y) WITHIN r &middot; DISTANCE (x, y) TO (x2, y2) [ACCURACY a] &middot;
SUBSCRIBE k=5 FOLLOW (x, y)</p>
<textarea id="q" rows="3" spellcheck="false">SELECT k=5 NEAREST (800, 800)</textarea>
<br><button id="run">EXPLAIN</button>
<div id="err" class="err"></div>
<h2 style="font-size:1rem">Plan</h2>
<pre id="text"></pre>
<h2 style="font-size:1rem">JSON</h2>
<pre id="json"></pre>
<script>
async function run() {
  const q = document.getElementById('q').value;
  const err = document.getElementById('err');
  const text = document.getElementById('text');
  const json = document.getElementById('json');
  err.textContent = ''; text.textContent = ''; json.textContent = '';
  try {
    const resp = await fetch('/v1/explain', {
      method: 'POST',
      headers: {'Content-Type': 'application/json'},
      body: JSON.stringify({q: q})
    });
    const body = await resp.json();
    if (!resp.ok) {
      const e = body.error || {};
      let msg = (e.code || 'error') + ': ' + (e.message || resp.status);
      if (e.line) {
        msg += '\n  ' + q.split('\n')[e.line - 1] + '\n  ' + ' '.repeat(e.col - 1) + '^';
      }
      err.textContent = msg;
      return;
    }
    text.textContent = body.text;
    json.textContent = JSON.stringify(body.plan, null, 2);
  } catch (e) {
    err.textContent = String(e);
  }
}
document.getElementById('run').addEventListener('click', run);
document.getElementById('q').addEventListener('keydown', (e) => {
  if (e.key === 'Enter' && !e.shiftKey) { e.preventDefault(); run(); }
});
run();
</script>
</body>
</html>
`

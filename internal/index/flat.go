package index

import "surfknn/internal/geom"

// Flat is the tree's query-time SoA form, exposed for persistence: five
// flat buffers that a snapshot can write (and mmap back) verbatim. Node i's
// children (internal) or items (leaf) are Start[i]..Start[i]+Count[i]; node
// 0 is the root.
type Flat struct {
	Leaf  []bool
	MBR   []geom.MBR
	Start []int32
	Count []int32
	Items []Item
}

// Flatten returns the tree's flat buffers. They are the tree's own query
// structures, not copies: callers must treat them as read-only and must not
// use them across a mutation.
func (t *RTree) Flatten() Flat {
	return Flat{Leaf: t.leaf, MBR: t.mbr, Start: t.start, Count: t.count, Items: t.items}
}

// FromFlat rebuilds a tree directly from its flat buffers without any
// repacking; the buffers are retained. The result serves queries
// immediately; the first Insert transparently rebuilds a pointer tree from
// the item slab.
func FromFlat(f Flat) *RTree {
	if len(f.Leaf) == 0 {
		return New()
	}
	return &RTree{
		size:  len(f.Items),
		leaf:  f.Leaf,
		mbr:   f.MBR,
		start: f.Start,
		count: f.Count,
		items: f.Items,
	}
}

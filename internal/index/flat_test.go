package index

import (
	"container/heap"
	"math/rand"
	"testing"

	"surfknn/internal/geom"
)

// refHeap drives the flat traversal through the real container/heap, as the
// pre-SoA implementation did. The concrete heap in knn.go must reproduce
// its pop order exactly — including among equal distances — because golden
// visit counts depend on it.
type refHeap []knnEntry

func (h refHeap) Len() int            { return len(h) }
func (h refHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(knnEntry)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func refKNN(t *RTree, q geom.Vec2, k int, visits *int64) []Item {
	if k <= 0 || t.size == 0 {
		return nil
	}
	pq := &refHeap{}
	heap.Push(pq, knnEntry{dist: t.mbr[0].DistToPoint(q), ni: 0})
	var out []Item
	for pq.Len() > 0 && len(out) < k {
		e := heap.Pop(pq).(knnEntry)
		if e.leaf {
			out = append(out, e.item)
			continue
		}
		visit(visits)
		lo, n := t.start[e.ni], t.count[e.ni]
		if t.leaf[e.ni] {
			for _, it := range t.items[lo : lo+n] {
				heap.Push(pq, knnEntry{dist: it.P.Dist(q), item: it, leaf: true})
			}
			continue
		}
		for c := lo; c < lo+n; c++ {
			heap.Push(pq, knnEntry{dist: t.mbr[c].DistToPoint(q), ni: c})
		}
	}
	return out
}

func TestConcreteHeapMatchesContainerHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// A lattice with many duplicated coordinates forces distance ties, the
	// case where heap tie order actually matters.
	var items []Item
	id := int64(0)
	for x := 0; x < 30; x++ {
		for y := 0; y < 30; y++ {
			items = append(items, Item{P: geom.Vec2{X: float64(x), Y: float64(y)}, ID: id})
			id++
		}
	}
	tr := Bulk(items)
	for trial := 0; trial < 50; trial++ {
		q := geom.Vec2{X: float64(rng.Intn(30)), Y: float64(rng.Intn(30))}
		k := 1 + rng.Intn(40)
		var vWant, vGot int64
		want := refKNN(tr, q, k, &vWant)
		got := tr.KNN(q, k, &vGot)
		if vWant != vGot {
			t.Fatalf("trial %d: visits %d != reference %d", trial, vGot, vWant)
		}
		if len(want) != len(got) {
			t.Fatalf("trial %d: %d items != reference %d", trial, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d item %d: %+v != reference %+v (tie order diverged)",
					trial, i, got[i], want[i])
			}
		}
	}
}

func TestFlatRoundTrip(t *testing.T) {
	items := randomItems(2000, 21)
	tr := Bulk(items)
	loaded := FromFlat(tr.Flatten())
	if loaded.Len() != tr.Len() {
		t.Fatalf("Len = %d, want %d", loaded.Len(), tr.Len())
	}
	if err := loaded.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 20; trial++ {
		q := geom.Vec2{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		var v1, v2 int64
		a := tr.KNN(q, 10, &v1)
		b := loaded.KNN(q, 10, &v2)
		if v1 != v2 || len(a) != len(b) {
			t.Fatalf("loaded tree diverged: visits %d/%d lens %d/%d", v1, v2, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("item %d: %+v != %+v", i, a[i], b[i])
			}
		}
		region := geom.MBR{MinX: q.X, MinY: q.Y, MaxX: q.X + 150, MaxY: q.Y + 150}
		ra, rb := tr.Range(region, nil), loaded.Range(region, nil)
		if len(ra) != len(rb) {
			t.Fatalf("range diverged: %d vs %d", len(ra), len(rb))
		}
	}
	// Empty round-trips.
	if FromFlat(Bulk(nil).Flatten()).Len() != 0 {
		t.Error("empty flat round-trip")
	}
}

func TestInsertAfterFromFlat(t *testing.T) {
	items := randomItems(300, 23)
	loaded := FromFlat(Bulk(items).Flatten())
	loaded.Insert(Item{P: geom.Vec2{X: 1234, Y: -7}, ID: 9999})
	if loaded.Len() != 301 {
		t.Fatalf("Len = %d", loaded.Len())
	}
	if err := loaded.Validate(); err != nil {
		t.Fatal(err)
	}
	got := loaded.KNN(geom.Vec2{X: 1234, Y: -7}, 1, nil)
	if len(got) != 1 || got[0].ID != 9999 {
		t.Fatalf("inserted item not findable: %v", got)
	}
}

func TestKNNIntoWarmDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	items := randomItems(5000, 29)
	tr := Bulk(items)
	var sc Scratch
	dst := make([]Item, 0, 64)
	buf := make([]Item, 0, 6000)
	q := geom.Vec2{X: 500, Y: 500}
	region := geom.MBR{MinX: 100, MinY: 100, MaxX: 600, MaxY: 600}
	// Warm the scratch and buffers to their high-water marks.
	dst = tr.KNNInto(q, 50, nil, nil, &sc, dst[:0])
	buf = tr.RangeInto(region, nil, buf[:0])
	buf = tr.WithinDistInto(q, 300, nil, buf[:0])
	if n := testing.AllocsPerRun(20, func() {
		dst = tr.KNNInto(q, 50, nil, nil, &sc, dst[:0])
		buf = tr.RangeInto(region, nil, buf[:0])
		buf = tr.WithinDistInto(q, 300, nil, buf[:0])
	}); n != 0 {
		t.Fatalf("warm searches allocate %.1f times per run, want 0", n)
	}
}

package index

import (
	"math/rand"
	"sort"
	"testing"

	"surfknn/internal/geom"
)

func randomItems(n int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			P:  geom.Vec2{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
			ID: int64(i),
		}
	}
	return items
}

func bruteKNN(items []Item, q geom.Vec2, k int) []Item {
	s := append([]Item(nil), items...)
	sort.Slice(s, func(i, j int) bool { return s[i].P.Dist2(q) < s[j].P.Dist2(q) })
	if k > len(s) {
		k = len(s)
	}
	return s[:k]
}

func TestInsertAndValidate(t *testing.T) {
	tr := New()
	items := randomItems(500, 1)
	for _, it := range items {
		tr.Insert(it)
	}
	if tr.Len() != 500 {
		t.Errorf("Len = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoad(t *testing.T) {
	items := randomItems(2000, 2)
	tr := Bulk(items)
	if tr.Len() != 2000 {
		t.Errorf("Len = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// All items findable by range over the whole area.
	all := tr.Range(geom.MBR{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}, nil)
	if len(all) != 2000 {
		t.Errorf("full range = %d items", len(all))
	}
	// Empty bulk works.
	if Bulk(nil).Len() != 0 {
		t.Error("empty bulk")
	}
}

func TestKNNAgainstBruteForce(t *testing.T) {
	items := randomItems(1000, 3)
	for _, build := range []func() *RTree{
		func() *RTree { return Bulk(items) },
		func() *RTree {
			tr := New()
			for _, it := range items {
				tr.Insert(it)
			}
			return tr
		},
	} {
		tr := build()
		rng := rand.New(rand.NewSource(4))
		for trial := 0; trial < 20; trial++ {
			q := geom.Vec2{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
			k := 1 + rng.Intn(20)
			got := tr.KNN(q, k, nil)
			want := bruteKNN(items, q, k)
			if len(got) != len(want) {
				t.Fatalf("KNN returned %d items, want %d", len(got), len(want))
			}
			for i := range got {
				// Compare distances (ties may permute IDs).
				if gd, wd := got[i].P.Dist(q), want[i].P.Dist(q); gd != wd {
					t.Fatalf("k=%d item %d: dist %v, want %v", k, i, gd, wd)
				}
			}
			// Ascending order.
			for i := 1; i < len(got); i++ {
				if got[i-1].P.Dist2(q) > got[i].P.Dist2(q) {
					t.Fatal("KNN results not sorted")
				}
			}
		}
	}
}

func TestKNNEdgeCases(t *testing.T) {
	tr := New()
	if got := tr.KNN(geom.Vec2{}, 5, nil); got != nil {
		t.Errorf("empty tree KNN = %v", got)
	}
	tr.Insert(Item{P: geom.Vec2{X: 1, Y: 1}, ID: 7})
	got := tr.KNN(geom.Vec2{}, 5, nil)
	if len(got) != 1 || got[0].ID != 7 {
		t.Errorf("KNN on single-item tree = %v", got)
	}
	if got := tr.KNN(geom.Vec2{}, 0, nil); got != nil {
		t.Errorf("k=0 should return nil, got %v", got)
	}
}

func TestRangeAgainstBruteForce(t *testing.T) {
	items := randomItems(800, 5)
	tr := Bulk(items)
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		x, y := rng.Float64()*900, rng.Float64()*900
		region := geom.MBR{MinX: x, MinY: y, MaxX: x + 100, MaxY: y + 100}
		got := tr.Range(region, nil)
		want := 0
		for _, it := range items {
			if region.Contains(it.P) {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("Range = %d items, want %d", len(got), want)
		}
		for _, it := range got {
			if !region.Contains(it.P) {
				t.Fatalf("item %v outside region", it)
			}
		}
	}
}

func TestWithinDist(t *testing.T) {
	items := randomItems(800, 7)
	tr := Bulk(items)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		c := geom.Vec2{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		r := rng.Float64() * 200
		got := tr.WithinDist(c, r, nil)
		want := 0
		for _, it := range items {
			if it.P.Dist(c) <= r {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("WithinDist = %d, want %d", len(got), want)
		}
	}
}

func TestAccessCounting(t *testing.T) {
	items := randomItems(5000, 9)
	tr := Bulk(items)
	var knnAccesses int64
	tr.KNN(geom.Vec2{X: 500, Y: 500}, 10, &knnAccesses)
	if knnAccesses == 0 {
		t.Fatal("KNN accesses not counted")
	}
	// A k-NN for small k should touch far fewer nodes than a full scan.
	var fullScan int64
	tr.Range(geom.MBR{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}, &fullScan)
	if knnAccesses*5 > fullScan {
		t.Errorf("KNN touched %d nodes vs full scan %d; expected strong pruning", knnAccesses, fullScan)
	}
}

func TestDuplicatePositions(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(Item{P: geom.Vec2{X: 5, Y: 5}, ID: int64(i)})
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	got := tr.KNN(geom.Vec2{X: 5, Y: 5}, 100, nil)
	if len(got) != 100 {
		t.Errorf("KNN over duplicates = %d", len(got))
	}
}

func TestNearestIter(t *testing.T) {
	items := randomItems(500, 11)
	tr := Bulk(items)
	q := geom.Vec2{X: 333, Y: 444}
	next := tr.NearestIter(q, nil)
	brute := bruteKNN(items, q, len(items))
	for i := 0; i < len(items); i++ {
		it, d, ok := next()
		if !ok {
			t.Fatalf("iterator exhausted at %d of %d", i, len(items))
		}
		if want := brute[i].P.Dist(q); d != want {
			t.Fatalf("item %d: dist %v, want %v", i, d, want)
		}
		if got := it.P.Dist(q); got != d {
			t.Fatalf("item %d: reported dist %v != actual %v", i, d, got)
		}
	}
	if _, _, ok := next(); ok {
		t.Error("iterator should be exhausted")
	}
	// Empty tree yields nothing.
	if _, _, ok := New().NearestIter(q, nil)(); ok {
		t.Error("empty tree iterator should yield nothing")
	}
}

func TestKNNFunc(t *testing.T) {
	items := randomItems(800, 11)
	tr := Bulk(items)
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		q := geom.Vec2{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		k := 1 + rng.Intn(15)

		// keep == nil must be byte-for-byte KNN, including visit counts.
		var vPlain, vNil int64
		plain := tr.KNN(q, k, &vPlain)
		asFunc := tr.KNNFunc(q, k, &vNil, nil)
		if vPlain != vNil || len(plain) != len(asFunc) {
			t.Fatalf("nil keep diverged: visits %d vs %d, len %d vs %d",
				vPlain, vNil, len(plain), len(asFunc))
		}
		for i := range plain {
			if plain[i] != asFunc[i] {
				t.Fatalf("nil keep item %d: %+v vs %+v", i, plain[i], asFunc[i])
			}
		}

		// An all-true keep must not change visit counts either.
		var vTrue int64
		tr.KNNFunc(q, k, &vTrue, func(Item) bool { return true })
		if vTrue != vPlain {
			t.Fatalf("all-true keep changed visits: %d vs %d", vTrue, vPlain)
		}

		// Filtering odd IDs yields the k nearest even-ID items, full k.
		even := func(it Item) bool { return it.ID%2 == 0 }
		got := tr.KNNFunc(q, k, nil, even)
		var evenItems []Item
		for _, it := range items {
			if even(it) {
				evenItems = append(evenItems, it)
			}
		}
		want := bruteKNN(evenItems, q, k)
		if len(got) != len(want) {
			t.Fatalf("filtered KNN returned %d items, want %d", len(got), len(want))
		}
		for i := range got {
			if gd, wd := got[i].P.Dist(q), want[i].P.Dist(q); gd != wd {
				t.Fatalf("filtered item %d: dist %v, want %v", i, gd, wd)
			}
		}
	}
}

// Package index provides the 2-D spatial index over object points (the
// paper's Dxy, the projections of the objects onto the (x,y)-plane): an
// R-tree with best-first k-NN search and range queries. Node visits are
// counted as the index's page-access contribution.
package index

import (
	"container/heap"
	"math"
	"sort"

	"surfknn/internal/geom"
)

// Item is an indexed point with an opaque identifier.
type Item struct {
	P  geom.Vec2
	ID int64
}

const (
	maxEntries = 32 // entries per node (≈ a 4 KiB page of point records)
	minEntries = maxEntries * 2 / 5
)

type node struct {
	leaf     bool
	mbr      geom.MBR
	children []*node
	items    []Item
}

// RTree is a dynamic R-tree over 2-D points (quadratic split).
// Not safe for concurrent mutation; once built it is immutable at query
// time, so concurrent searches are safe. Queries take a visits counter
// (nil to skip) instead of mutating shared state: each node visited adds
// one — the R-tree's page-access proxy (one node ≈ one page) — charged to
// the per-query account of whoever issued the search.
type RTree struct {
	root *node
	size int
}

// visit charges one node visit to the per-query counter, if any. The
// counter is single-goroutine by design (each Session owns one and passes a
// pointer into its searches); sessions later fold the per-query total into
// the process-wide obs.Registry at query end — the tree itself never writes
// shared state, which is what keeps concurrent searches lock-free.
func visit(visits *int64) {
	if visits != nil {
		*visits++
	}
}

// New returns an empty tree.
func New() *RTree {
	return &RTree{root: &node{leaf: true, mbr: geom.EmptyMBR()}}
}

// Bulk builds a tree from items using STR (sort-tile-recursive) packing,
// which yields well-clustered leaves for static object sets.
func Bulk(items []Item) *RTree {
	t := New()
	if len(items) == 0 {
		return t
	}
	leaves := strPack(items)
	t.size = len(items)
	for {
		if len(leaves) == 1 {
			t.root = leaves[0]
			return t
		}
		leaves = strPackNodes(leaves)
	}
}

func strPack(items []Item) []*node {
	its := make([]Item, len(items))
	copy(its, items)
	sort.Slice(its, func(i, j int) bool { return its[i].P.X < its[j].P.X })
	nLeaves := (len(its) + maxEntries - 1) / maxEntries
	nSlices := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	sliceSize := nSlices * maxEntries
	var leaves []*node
	for s := 0; s < len(its); s += sliceSize {
		e := s + sliceSize
		if e > len(its) {
			e = len(its)
		}
		slice := its[s:e]
		sort.Slice(slice, func(i, j int) bool { return slice[i].P.Y < slice[j].P.Y })
		for o := 0; o < len(slice); o += maxEntries {
			oe := o + maxEntries
			if oe > len(slice) {
				oe = len(slice)
			}
			n := &node{leaf: true, mbr: geom.EmptyMBR()}
			n.items = append(n.items, slice[o:oe]...)
			for _, it := range n.items {
				n.mbr = n.mbr.ExtendPoint(it.P)
			}
			leaves = append(leaves, n)
		}
	}
	return leaves
}

func strPackNodes(ns []*node) []*node {
	sort.Slice(ns, func(i, j int) bool { return ns[i].mbr.Center().X < ns[j].mbr.Center().X })
	nParents := (len(ns) + maxEntries - 1) / maxEntries
	nSlices := int(math.Ceil(math.Sqrt(float64(nParents))))
	sliceSize := nSlices * maxEntries
	var parents []*node
	for s := 0; s < len(ns); s += sliceSize {
		e := s + sliceSize
		if e > len(ns) {
			e = len(ns)
		}
		slice := append([]*node(nil), ns[s:e]...)
		sort.Slice(slice, func(i, j int) bool { return slice[i].mbr.Center().Y < slice[j].mbr.Center().Y })
		for o := 0; o < len(slice); o += maxEntries {
			oe := o + maxEntries
			if oe > len(slice) {
				oe = len(slice)
			}
			p := &node{mbr: geom.EmptyMBR()}
			p.children = append(p.children, slice[o:oe]...)
			for _, c := range p.children {
				p.mbr = p.mbr.Union(c.mbr)
			}
			parents = append(parents, p)
		}
	}
	return parents
}

// Len returns the number of indexed items.
func (t *RTree) Len() int { return t.size }

// Insert adds an item.
func (t *RTree) Insert(it Item) {
	t.size++
	split := t.insert(t.root, it)
	if split != nil {
		newRoot := &node{mbr: t.root.mbr.Union(split.mbr)}
		newRoot.children = []*node{t.root, split}
		t.root = newRoot
	}
}

func (t *RTree) insert(n *node, it Item) *node {
	n.mbr = n.mbr.ExtendPoint(it.P)
	if n.leaf {
		n.items = append(n.items, it)
		if len(n.items) > maxEntries {
			return splitLeaf(n)
		}
		return nil
	}
	best := chooseSubtree(n, it.P)
	split := t.insert(best, it)
	if split == nil {
		return nil
	}
	n.children = append(n.children, split)
	if len(n.children) > maxEntries {
		return splitInternal(n)
	}
	return nil
}

func chooseSubtree(n *node, p geom.Vec2) *node {
	var best *node
	bestGrow := math.Inf(1)
	bestArea := math.Inf(1)
	for _, c := range n.children {
		grown := c.mbr.ExtendPoint(p)
		grow := grown.Area() - c.mbr.Area()
		//lint:ignore float-eq exact tie-break between identical growth values keeps subtree choice deterministic; an epsilon would blur distinct areas
		if grow < bestGrow || (grow == bestGrow && c.mbr.Area() < bestArea) {
			best, bestGrow, bestArea = c, grow, c.mbr.Area()
		}
	}
	return best
}

func splitLeaf(n *node) *node {
	// Split along the axis with the greater spread, at the median.
	its := n.items
	if n.mbr.Width() >= n.mbr.Height() {
		sort.Slice(its, func(i, j int) bool { return its[i].P.X < its[j].P.X })
	} else {
		sort.Slice(its, func(i, j int) bool { return its[i].P.Y < its[j].P.Y })
	}
	mid := len(its) / 2
	right := &node{leaf: true, mbr: geom.EmptyMBR()}
	right.items = append(right.items, its[mid:]...)
	n.items = its[:mid]
	n.mbr = geom.EmptyMBR()
	for _, it := range n.items {
		n.mbr = n.mbr.ExtendPoint(it.P)
	}
	for _, it := range right.items {
		right.mbr = right.mbr.ExtendPoint(it.P)
	}
	return right
}

func splitInternal(n *node) *node {
	ch := n.children
	if n.mbr.Width() >= n.mbr.Height() {
		sort.Slice(ch, func(i, j int) bool { return ch[i].mbr.Center().X < ch[j].mbr.Center().X })
	} else {
		sort.Slice(ch, func(i, j int) bool { return ch[i].mbr.Center().Y < ch[j].mbr.Center().Y })
	}
	mid := len(ch) / 2
	right := &node{mbr: geom.EmptyMBR()}
	right.children = append(right.children, ch[mid:]...)
	n.children = ch[:mid]
	n.mbr = geom.EmptyMBR()
	for _, c := range n.children {
		n.mbr = n.mbr.Union(c.mbr)
	}
	for _, c := range right.children {
		right.mbr = right.mbr.Union(c.mbr)
	}
	return right
}

// Range returns all items inside region (inclusive of the boundary),
// charging node visits to visits (nil to skip counting).
//
//sklint:hotpath
func (t *RTree) Range(region geom.MBR, visits *int64) []Item {
	var out []Item
	t.rangeScan(t.root, region, visits, &out)
	return out
}

func (t *RTree) rangeScan(n *node, region geom.MBR, visits *int64, out *[]Item) {
	visit(visits)
	if n.leaf {
		for _, it := range n.items {
			if region.Contains(it.P) {
				*out = append(*out, it)
			}
		}
		return
	}
	for _, c := range n.children {
		if c.mbr.Intersects(region) {
			t.rangeScan(c, region, visits, out)
		}
	}
}

// WithinDist returns the items within Euclidean distance r of center — the
// circular range query of MR3's step 3 — charging node visits to visits.
//
//sklint:hotpath
func (t *RTree) WithinDist(center geom.Vec2, r float64, visits *int64) []Item {
	var out []Item
	t.within(t.root, center, r, visits, &out)
	return out
}

func (t *RTree) within(n *node, center geom.Vec2, r float64, visits *int64, out *[]Item) {
	visit(visits)
	if n.leaf {
		for _, it := range n.items {
			if it.P.Dist(center) <= r {
				*out = append(*out, it)
			}
		}
		return
	}
	for _, c := range n.children {
		if c.mbr.DistToPoint(center) <= r {
			t.within(c, center, r, visits, out)
		}
	}
}

// knnEntry is a best-first queue entry: either a node or an item.
type knnEntry struct {
	dist float64
	n    *node
	item Item
	leaf bool
}

type knnHeap []knnEntry

func (h knnHeap) Len() int            { return len(h) }
func (h knnHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h knnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *knnHeap) Push(x interface{}) { *h = append(*h, x.(knnEntry)) }
func (h *knnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// KNN returns the k items nearest to q in ascending distance order
// (fewer when the tree holds fewer than k items), using the classic
// best-first traversal [Hjaltason & Samet]. Node visits are charged to
// visits (nil to skip counting).
func (t *RTree) KNN(q geom.Vec2, k int, visits *int64) []Item {
	return t.KNNFunc(q, k, visits, nil)
}

// KNNFunc is KNN with a keep predicate applied as leaf items are
// discovered: rejected items never enter the candidate queue, so the
// traversal yields the k nearest *kept* items rather than a post-filtered
// (and possibly short) prefix. Node visits are charged exactly as in KNN —
// with a nil or all-true keep the control flow is identical, which is what
// lets a quiesced objstore epoch reproduce the static path's page counts.
//
//sklint:hotpath
func (t *RTree) KNNFunc(q geom.Vec2, k int, visits *int64, keep func(Item) bool) []Item {
	if k <= 0 || t.size == 0 {
		return nil
	}
	pq := &knnHeap{}
	heap.Push(pq, knnEntry{dist: t.root.mbr.DistToPoint(q), n: t.root})
	var out []Item
	for pq.Len() > 0 && len(out) < k {
		e := heap.Pop(pq).(knnEntry)
		if e.leaf {
			out = append(out, e.item)
			continue
		}
		visit(visits)
		if e.n.leaf {
			for _, it := range e.n.items {
				if keep == nil || keep(it) {
					heap.Push(pq, knnEntry{dist: it.P.Dist(q), item: it, leaf: true})
				}
			}
			continue
		}
		for _, c := range e.n.children {
			heap.Push(pq, knnEntry{dist: c.mbr.DistToPoint(q), n: c})
		}
	}
	return out
}

// Validate checks R-tree invariants (MBR containment, entry counts).
func (t *RTree) Validate() error {
	return validateNode(t.root, true)
}

func validateNode(n *node, isRoot bool) error {
	if n.leaf {
		if !isRoot && (len(n.items) < 1 || len(n.items) > maxEntries) {
			return errCount(len(n.items))
		}
		for _, it := range n.items {
			if !n.mbr.Contains(it.P) {
				return errMBR{}
			}
		}
		return nil
	}
	if !isRoot && (len(n.children) < 1 || len(n.children) > maxEntries) {
		return errCount(len(n.children))
	}
	for _, c := range n.children {
		if !n.mbr.ContainsMBR(c.mbr) {
			return errMBR{}
		}
		if err := validateNode(c, false); err != nil {
			return err
		}
	}
	return nil
}

type errCount int

func (e errCount) Error() string { return "index: node entry count out of bounds" }

type errMBR struct{}

func (errMBR) Error() string { return "index: node MBR does not cover contents" }

// Package index provides the 2-D spatial index over object points (the
// paper's Dxy, the projections of the objects onto the (x,y)-plane): an
// R-tree with best-first k-NN search and range queries. Node visits are
// counted as the index's page-access contribution.
package index

import (
	"math"
	"sort"

	"surfknn/internal/geom"
)

// Item is an indexed point with an opaque identifier.
type Item struct {
	P  geom.Vec2
	ID int64
}

const (
	maxEntries = 32 // entries per node (≈ a 4 KiB page of point records)
	minEntries = maxEntries * 2 / 5
)

// node is the build-time representation: a conventional pointer tree that
// Bulk and Insert manipulate. Queries never touch it — every mutation
// re-packs the tree into the flat SoA arrays below, which are the only
// structures searches read.
type node struct {
	leaf     bool
	mbr      geom.MBR
	children []*node
	items    []Item
}

// RTree is a dynamic R-tree over 2-D points.
// Not safe for concurrent mutation; once built it is immutable at query
// time, so concurrent searches are safe. Queries take a visits counter
// (nil to skip) instead of mutating shared state: each node visited adds
// one — the R-tree's page-access proxy (one node ≈ one page) — charged to
// the per-query account of whoever issued the search.
//
// At query time the tree is four flat arrays indexed by node number plus
// one packed item slab (an index-linked structure-of-arrays layout): node
// i's MBR is mbr[i], and start[i]/count[i] delimit either its child-node
// index range (internal) or its item range in the items slab (leaf). Node 0
// is the root; a node's children occupy consecutive indices. The layout is
// pointer-free, so it serialises verbatim into snapshots (see Flat) and is
// mmap-ready.
type RTree struct {
	root *node // build-time form; nil for snapshot-loaded trees until mutated
	size int

	// Flat query-time form (always valid).
	leaf  []bool
	mbr   []geom.MBR
	start []int32
	count []int32
	items []Item
}

// visit charges one node visit to the per-query counter, if any. The
// counter is single-goroutine by design (each Session owns one and passes a
// pointer into its searches); sessions later fold the per-query total into
// the process-wide obs.Registry at query end — the tree itself never writes
// shared state, which is what keeps concurrent searches lock-free.
func visit(visits *int64) {
	if visits != nil {
		*visits++
	}
}

// New returns an empty tree.
func New() *RTree {
	t := &RTree{root: &node{leaf: true, mbr: geom.EmptyMBR()}}
	t.flatten()
	return t
}

// Bulk builds a tree from items using STR (sort-tile-recursive) packing,
// which yields well-clustered leaves for static object sets.
func Bulk(items []Item) *RTree {
	t := New()
	if len(items) == 0 {
		return t
	}
	t.root = bulkRoot(items)
	t.size = len(items)
	t.flatten()
	return t
}

func bulkRoot(items []Item) *node {
	leaves := strPack(items)
	for {
		if len(leaves) == 1 {
			return leaves[0]
		}
		leaves = strPackNodes(leaves)
	}
}

func strPack(items []Item) []*node {
	its := make([]Item, len(items))
	copy(its, items)
	sort.Slice(its, func(i, j int) bool { return its[i].P.X < its[j].P.X })
	nLeaves := (len(its) + maxEntries - 1) / maxEntries
	nSlices := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	sliceSize := nSlices * maxEntries
	var leaves []*node
	for s := 0; s < len(its); s += sliceSize {
		e := s + sliceSize
		if e > len(its) {
			e = len(its)
		}
		slice := its[s:e]
		sort.Slice(slice, func(i, j int) bool { return slice[i].P.Y < slice[j].P.Y })
		for o := 0; o < len(slice); o += maxEntries {
			oe := o + maxEntries
			if oe > len(slice) {
				oe = len(slice)
			}
			n := &node{leaf: true, mbr: geom.EmptyMBR()}
			n.items = append(n.items, slice[o:oe]...)
			for _, it := range n.items {
				n.mbr = n.mbr.ExtendPoint(it.P)
			}
			leaves = append(leaves, n)
		}
	}
	return leaves
}

func strPackNodes(ns []*node) []*node {
	sort.Slice(ns, func(i, j int) bool { return ns[i].mbr.Center().X < ns[j].mbr.Center().X })
	nParents := (len(ns) + maxEntries - 1) / maxEntries
	nSlices := int(math.Ceil(math.Sqrt(float64(nParents))))
	sliceSize := nSlices * maxEntries
	var parents []*node
	for s := 0; s < len(ns); s += sliceSize {
		e := s + sliceSize
		if e > len(ns) {
			e = len(ns)
		}
		slice := append([]*node(nil), ns[s:e]...)
		sort.Slice(slice, func(i, j int) bool { return slice[i].mbr.Center().Y < slice[j].mbr.Center().Y })
		for o := 0; o < len(slice); o += maxEntries {
			oe := o + maxEntries
			if oe > len(slice) {
				oe = len(slice)
			}
			p := &node{mbr: geom.EmptyMBR()}
			p.children = append(p.children, slice[o:oe]...)
			for _, c := range p.children {
				p.mbr = p.mbr.Union(c.mbr)
			}
			parents = append(parents, p)
		}
	}
	return parents
}

// Len returns the number of indexed items.
func (t *RTree) Len() int { return t.size }

// Insert adds an item. Insert is a build-time operation: it updates the
// pointer tree and re-packs the flat arrays, so inserting n items one by
// one costs O(n) packing work per insert — batch loads should use Bulk.
func (t *RTree) Insert(it Item) {
	if t.root == nil {
		// Snapshot-loaded trees carry only the flat form; rebuild a pointer
		// tree from the item slab before the first mutation.
		t.root = bulkRoot(t.items)
	}
	t.size++
	split := t.insert(t.root, it)
	if split != nil {
		newRoot := &node{mbr: t.root.mbr.Union(split.mbr)}
		newRoot.children = []*node{t.root, split}
		t.root = newRoot
	}
	t.flatten()
}

func (t *RTree) insert(n *node, it Item) *node {
	n.mbr = n.mbr.ExtendPoint(it.P)
	if n.leaf {
		n.items = append(n.items, it)
		if len(n.items) > maxEntries {
			return splitLeaf(n)
		}
		return nil
	}
	best := chooseSubtree(n, it.P)
	split := t.insert(best, it)
	if split == nil {
		return nil
	}
	n.children = append(n.children, split)
	if len(n.children) > maxEntries {
		return splitInternal(n)
	}
	return nil
}

func chooseSubtree(n *node, p geom.Vec2) *node {
	var best *node
	bestGrow := math.Inf(1)
	bestArea := math.Inf(1)
	for _, c := range n.children {
		grown := c.mbr.ExtendPoint(p)
		grow := grown.Area() - c.mbr.Area()
		//lint:ignore float-eq exact tie-break between identical growth values keeps subtree choice deterministic; an epsilon would blur distinct areas
		if grow < bestGrow || (grow == bestGrow && c.mbr.Area() < bestArea) {
			best, bestGrow, bestArea = c, grow, c.mbr.Area()
		}
	}
	return best
}

func splitLeaf(n *node) *node {
	// Split along the axis with the greater spread, at the median.
	its := n.items
	if n.mbr.Width() >= n.mbr.Height() {
		sort.Slice(its, func(i, j int) bool { return its[i].P.X < its[j].P.X })
	} else {
		sort.Slice(its, func(i, j int) bool { return its[i].P.Y < its[j].P.Y })
	}
	mid := len(its) / 2
	right := &node{leaf: true, mbr: geom.EmptyMBR()}
	right.items = append(right.items, its[mid:]...)
	n.items = its[:mid]
	n.mbr = geom.EmptyMBR()
	for _, it := range n.items {
		n.mbr = n.mbr.ExtendPoint(it.P)
	}
	for _, it := range right.items {
		right.mbr = right.mbr.ExtendPoint(it.P)
	}
	return right
}

func splitInternal(n *node) *node {
	ch := n.children
	if n.mbr.Width() >= n.mbr.Height() {
		sort.Slice(ch, func(i, j int) bool { return ch[i].mbr.Center().X < ch[j].mbr.Center().X })
	} else {
		sort.Slice(ch, func(i, j int) bool { return ch[i].mbr.Center().Y < ch[j].mbr.Center().Y })
	}
	mid := len(ch) / 2
	right := &node{mbr: geom.EmptyMBR()}
	right.children = append(right.children, ch[mid:]...)
	n.children = ch[:mid]
	n.mbr = geom.EmptyMBR()
	for _, c := range n.children {
		n.mbr = n.mbr.Union(c.mbr)
	}
	for _, c := range right.children {
		right.mbr = right.mbr.Union(c.mbr)
	}
	return right
}

// flatten re-packs the pointer tree into the flat SoA arrays, assigning
// node numbers in breadth-first order so every node's children occupy a
// consecutive index range. Per-node child and item order is preserved
// verbatim, so traversals behave identically on either form.
func (t *RTree) flatten() {
	t.leaf, t.mbr = t.leaf[:0], t.mbr[:0]
	t.start, t.count = t.start[:0], t.count[:0]
	t.items = t.items[:0]
	queue := []*node{t.root}
	t.leaf = append(t.leaf, t.root.leaf)
	t.mbr = append(t.mbr, t.root.mbr)
	t.start = append(t.start, 0)
	t.count = append(t.count, 0)
	for head := 0; head < len(queue); head++ {
		n := queue[head]
		if n.leaf {
			t.start[head] = int32(len(t.items))
			t.count[head] = int32(len(n.items))
			t.items = append(t.items, n.items...)
			continue
		}
		t.start[head] = int32(len(queue))
		t.count[head] = int32(len(n.children))
		for _, c := range n.children {
			queue = append(queue, c)
			t.leaf = append(t.leaf, c.leaf)
			t.mbr = append(t.mbr, c.mbr)
			t.start = append(t.start, 0)
			t.count = append(t.count, 0)
		}
	}
}

// pushItem is the single append site the query paths grow their result
// slices through; warm callers pass buffers at their high-water capacity,
// so the append is a plain length bump.
func pushItem(dst []Item, it Item) []Item { return append(dst, it) }

// Range returns all items inside region (inclusive of the boundary),
// charging node visits to visits (nil to skip counting).
func (t *RTree) Range(region geom.MBR, visits *int64) []Item {
	out := t.RangeInto(region, visits, nil)
	if len(out) == 0 {
		return nil
	}
	return out
}

// RangeInto is Range appending into dst (pass a reused buffer to avoid
// allocation; the result may share dst's backing array).
//
//sklint:hotpath
func (t *RTree) RangeInto(region geom.MBR, visits *int64, dst []Item) []Item {
	return t.rangeScan(0, region, visits, dst)
}

func (t *RTree) rangeScan(ni int32, region geom.MBR, visits *int64, dst []Item) []Item {
	visit(visits)
	lo, n := t.start[ni], t.count[ni]
	if t.leaf[ni] {
		for _, it := range t.items[lo : lo+n] {
			if region.Contains(it.P) {
				dst = pushItem(dst, it)
			}
		}
		return dst
	}
	for c := lo; c < lo+n; c++ {
		if t.mbr[c].Intersects(region) {
			dst = t.rangeScan(c, region, visits, dst)
		}
	}
	return dst
}

// WithinDist returns the items within Euclidean distance r of center — the
// circular range query of MR3's step 3 — charging node visits to visits.
func (t *RTree) WithinDist(center geom.Vec2, r float64, visits *int64) []Item {
	out := t.WithinDistInto(center, r, visits, nil)
	if len(out) == 0 {
		return nil
	}
	return out
}

// WithinDistInto is WithinDist appending into dst.
//
//sklint:hotpath
func (t *RTree) WithinDistInto(center geom.Vec2, r float64, visits *int64, dst []Item) []Item {
	return t.within(0, center, r, visits, dst)
}

func (t *RTree) within(ni int32, center geom.Vec2, r float64, visits *int64, dst []Item) []Item {
	visit(visits)
	lo, n := t.start[ni], t.count[ni]
	if t.leaf[ni] {
		for _, it := range t.items[lo : lo+n] {
			if it.P.Dist(center) <= r {
				dst = pushItem(dst, it)
			}
		}
		return dst
	}
	for c := lo; c < lo+n; c++ {
		if t.mbr[c].DistToPoint(center) <= r {
			dst = t.within(c, center, r, visits, dst)
		}
	}
	return dst
}

// Validate checks R-tree invariants (MBR containment, entry counts) on the
// query-time flat form (and therefore on whatever built it).
func (t *RTree) Validate() error {
	return t.validateFlat(0, true)
}

func (t *RTree) validateFlat(ni int32, isRoot bool) error {
	lo, n := t.start[ni], t.count[ni]
	if t.leaf[ni] {
		if !isRoot && (n < 1 || n > maxEntries) {
			return errCount(n)
		}
		for _, it := range t.items[lo : lo+n] {
			if !t.mbr[ni].Contains(it.P) {
				return errMBR{}
			}
		}
		return nil
	}
	if !isRoot && (n < 1 || n > maxEntries) {
		return errCount(n)
	}
	for c := lo; c < lo+n; c++ {
		if !t.mbr[ni].ContainsMBR(t.mbr[c]) {
			return errMBR{}
		}
		if err := t.validateFlat(c, false); err != nil {
			return err
		}
	}
	return nil
}

type errCount int32

func (e errCount) Error() string { return "index: node entry count out of bounds" }

type errMBR struct{}

func (errMBR) Error() string { return "index: node MBR does not cover contents" }

// SortByDist orders items canonically: ascending squared planar distance to
// q, item id as the tiebreak. The order is a pure function of the item set —
// independent of tree shape, insertion history, or how the set was gathered —
// which is what makes a scatter-gather coordinator's merged candidate list
// reproduce a single tree's enumeration bit for bit (see internal/shard).
// In-place shell sort: no allocation, so it is safe on the query hot path.
func SortByDist(items []Item, q geom.Vec2) {
	d2 := func(it Item) float64 {
		dx, dy := it.P.X-q.X, it.P.Y-q.Y
		return dx*dx + dy*dy
	}
	less := func(a, b Item) bool {
		da, db := d2(a), d2(b)
		//lint:ignore float-eq canonical order is defined on exact float bits; a tolerance would make it input-order dependent
		if da != db {
			return da < db
		}
		return a.ID < b.ID
	}
	// Ciura gap sequence, ample for candidate sets (tens to thousands).
	for _, gap := range [...]int{701, 301, 132, 57, 23, 10, 4, 1} {
		for i := gap; i < len(items); i++ {
			it := items[i]
			j := i
			for ; j >= gap && less(it, items[j-gap]); j -= gap {
				items[j] = items[j-gap]
			}
			items[j] = it
		}
	}
}

//go:build race

package index

// raceEnabled reports whether the race detector is active; allocation
// accounting is unreliable under it, so alloc-count tests skip.
const raceEnabled = true

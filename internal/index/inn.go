package index

import "surfknn/internal/geom"

// NearestIter returns an incremental nearest-neighbour iterator from q:
// each call to the returned function yields the next-closest item in
// ascending distance order (ok=false once exhausted). This is the
// distance-browsing pattern of Hjaltason & Samet [6], the building block of
// algorithms that do not know k in advance (closest pairs, expanding
// searches). Node visits are charged to visits (nil to skip counting).
func (t *RTree) NearestIter(q geom.Vec2, visits *int64) func() (Item, float64, bool) {
	var pq []knnEntry
	if t.size > 0 {
		pq = khPush(pq, knnEntry{dist: t.mbr[0].DistToPoint(q), ni: 0})
	}
	return func() (Item, float64, bool) {
		for len(pq) > 0 {
			var e knnEntry
			pq, e = khPop(pq)
			if e.leaf {
				return e.item, e.dist, true
			}
			visit(visits)
			lo, n := t.start[e.ni], t.count[e.ni]
			if t.leaf[e.ni] {
				for _, it := range t.items[lo : lo+n] {
					pq = khPush(pq, knnEntry{dist: it.P.Dist(q), item: it, leaf: true})
				}
				continue
			}
			for c := lo; c < lo+n; c++ {
				pq = khPush(pq, knnEntry{dist: t.mbr[c].DistToPoint(q), ni: c})
			}
		}
		return Item{}, 0, false
	}
}

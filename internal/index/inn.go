package index

import (
	"container/heap"

	"surfknn/internal/geom"
)

// NearestIter returns an incremental nearest-neighbour iterator from q:
// each call to the returned function yields the next-closest item in
// ascending distance order (ok=false once exhausted). This is the
// distance-browsing pattern of Hjaltason & Samet [6], the building block of
// algorithms that do not know k in advance (closest pairs, expanding
// searches). Node visits are charged to visits (nil to skip counting).
func (t *RTree) NearestIter(q geom.Vec2, visits *int64) func() (Item, float64, bool) {
	pq := &knnHeap{}
	qp := q
	if t.size > 0 {
		heap.Push(pq, knnEntry{dist: t.root.mbr.DistToPoint(qp), n: t.root})
	}
	return func() (Item, float64, bool) {
		for pq.Len() > 0 {
			e := heap.Pop(pq).(knnEntry)
			if e.leaf {
				return e.item, e.dist, true
			}
			visit(visits)
			if e.n.leaf {
				for _, it := range e.n.items {
					heap.Push(pq, knnEntry{dist: it.P.Dist(qp), item: it, leaf: true})
				}
				continue
			}
			for _, c := range e.n.children {
				heap.Push(pq, knnEntry{dist: c.mbr.DistToPoint(qp), n: c})
			}
		}
		return Item{}, 0, false
	}
}

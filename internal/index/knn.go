package index

import "surfknn/internal/geom"

// knnEntry is a best-first queue entry: either a node (by flat index) or a
// settled item.
type knnEntry struct {
	dist float64
	ni   int32
	leaf bool
	item Item
}

// Scratch holds the reusable buffers of the best-first searches. A zero
// Scratch is ready to use; after a few queries its heap slab reaches the
// tree's high-water mark and warm searches stop allocating. Like the tree's
// visit counters it is owned by one goroutine (core.Session keeps one per
// session).
type Scratch struct {
	kh []knnEntry
}

// The heap code below replicates container/heap's sift loops verbatim
// (strict-less comparisons, identical swap order) on a concrete slice. The
// interface-free rewrite is not only about boxing allocations: equal-
// distance entries pop in an order determined by these exact sift paths,
// and the golden tests pin visit counts that depend on that order.

func khPush(h []knnEntry, e knnEntry) []knnEntry {
	h = append(h, e)
	j := len(h) - 1
	for {
		i := (j - 1) / 2
		if i == j || !(h[j].dist < h[i].dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
	return h
}

func khPop(h []knnEntry) ([]knnEntry, knnEntry) {
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].dist < h[j1].dist {
			j = j2
		}
		if !(h[j].dist < h[i].dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	e := h[n]
	return h[:n], e
}

// KNN returns the k items nearest to q in ascending distance order
// (fewer when the tree holds fewer than k items), using the classic
// best-first traversal [Hjaltason & Samet]. Node visits are charged to
// visits (nil to skip counting).
func (t *RTree) KNN(q geom.Vec2, k int, visits *int64) []Item {
	return t.KNNFunc(q, k, visits, nil)
}

// KNNFunc is KNN with a keep predicate applied as leaf items are
// discovered: rejected items never enter the candidate queue, so the
// traversal yields the k nearest *kept* items rather than a post-filtered
// (and possibly short) prefix. Node visits are charged exactly as in KNN —
// with a nil or all-true keep the control flow is identical, which is what
// lets a quiesced objstore epoch reproduce the static path's page counts.
func (t *RTree) KNNFunc(q geom.Vec2, k int, visits *int64, keep func(Item) bool) []Item {
	var sc Scratch
	out := t.KNNInto(q, k, visits, keep, &sc, nil)
	if len(out) == 0 {
		return nil
	}
	return out
}

// KNNInto is KNNFunc running on caller-owned scratch and appending results
// into dst — the warm-query form: with sc and dst at their high-water
// capacity a search performs no allocation.
//
//sklint:hotpath
func (t *RTree) KNNInto(q geom.Vec2, k int, visits *int64, keep func(Item) bool, sc *Scratch, dst []Item) []Item {
	if k <= 0 || t.size == 0 {
		return dst
	}
	pq := sc.kh[:0]
	pq = khPush(pq, knnEntry{dist: t.mbr[0].DistToPoint(q), ni: 0})
	found := 0
	for len(pq) > 0 && found < k {
		var e knnEntry
		pq, e = khPop(pq)
		if e.leaf {
			dst = pushItem(dst, e.item)
			found++
			continue
		}
		visit(visits)
		lo, n := t.start[e.ni], t.count[e.ni]
		if t.leaf[e.ni] {
			for _, it := range t.items[lo : lo+n] {
				if keep == nil || keep(it) {
					pq = khPush(pq, knnEntry{dist: it.P.Dist(q), item: it, leaf: true})
				}
			}
			continue
		}
		for c := lo; c < lo+n; c++ {
			pq = khPush(pq, knnEntry{dist: t.mbr[c].DistToPoint(q), ni: c})
		}
	}
	sc.kh = pq[:0]
	return dst
}

package geom

import "math"

// The helpers below are the approved floating-point comparison points:
// distances come out of chains of unfoldings, projections and network
// relaxations, so exact == on them is almost always a bug, and the sklint
// float-eq rule steers all other code here. They share the package-wide
// Eps tolerance declared in vec.go.

// AlmostEq reports whether a and b are equal within Eps, scaled by the
// magnitude of the operands: |a-b| <= Eps * max(1, |a|, |b|). Equal
// infinities compare true.
func AlmostEq(a, b float64) bool {
	if a == b {
		return true // covers exact hits and equal infinities
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false // an infinite scale would make the tolerance infinite
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= Eps*scale
}

// WithinTol reports |a-b| <= tol, an absolute-tolerance comparison for
// callers that know their scale. A NaN operand always compares false.
func WithinTol(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

// AlmostZero reports |a| <= Eps.
func AlmostZero(a float64) bool {
	return math.Abs(a) <= Eps
}

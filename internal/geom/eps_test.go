package geom

import (
	"math"
	"testing"
)

func TestAlmostEq(t *testing.T) {
	t.Parallel()
	cases := []struct {
		a, b float64
		want bool
	}{
		{1, 1, true},
		{1, 1 + 1e-12, true},
		{1, 1 + 1e-6, false},
		{1e9, 1e9 + 0.5, true}, // relative scaling kicks in
		{1e9, 1e9 + 10, false},
		{0, 1e-10, true},
		{0, 1e-6, false},
		{math.Inf(1), math.Inf(1), true},
		{math.Inf(1), math.Inf(-1), false},
		{math.Inf(1), 1e300, false},
		{math.NaN(), math.NaN(), false},
		{math.NaN(), 1, false},
	}
	for _, c := range cases {
		if got := AlmostEq(c.a, c.b); got != c.want {
			t.Errorf("AlmostEq(%g, %g) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestWithinTol(t *testing.T) {
	t.Parallel()
	if !WithinTol(1.0, 1.05, 0.1) {
		t.Error("WithinTol(1, 1.05, 0.1) should hold")
	}
	if WithinTol(1.0, 1.2, 0.1) {
		t.Error("WithinTol(1, 1.2, 0.1) should not hold")
	}
	if WithinTol(math.NaN(), 1, 0.1) {
		t.Error("NaN must never compare within tolerance")
	}
}

func TestAlmostZero(t *testing.T) {
	t.Parallel()
	if !AlmostZero(0) || !AlmostZero(1e-12) || !AlmostZero(-1e-12) {
		t.Error("tiny values should be almost zero")
	}
	if AlmostZero(1e-3) || AlmostZero(math.Inf(1)) || AlmostZero(math.NaN()) {
		t.Error("large, infinite or NaN values are not almost zero")
	}
}

package geom

import "math"

// Ellipse is the ellipse-shaped search region used by MR3 (§4.2.1 of the
// paper): the locus of points p with |p-F1| + |p-F2| ≤ Sum. F1 and F2 are
// the (x,y) projections of the query point and the candidate point and Sum
// is the current upper-bound estimate of their surface distance.
type Ellipse struct {
	F1, F2 Vec2    // foci
	Sum    float64 // the ellipse "constant": max total distance to both foci
}

// NewEllipse constructs the search ellipse for foci f1, f2 and bound sum.
// A sum smaller than the focal distance yields an empty region; Contains
// then reports false for every point.
func NewEllipse(f1, f2 Vec2, sum float64) Ellipse {
	return Ellipse{F1: f1, F2: f2, Sum: sum}
}

// IsEmpty reports whether no point satisfies the ellipse inequality.
func (e Ellipse) IsEmpty() bool { return e.Sum < e.F1.Dist(e.F2) }

// Contains reports whether p lies inside or on the ellipse.
func (e Ellipse) Contains(p Vec2) bool {
	return p.Dist(e.F1)+p.Dist(e.F2) <= e.Sum+Eps
}

// SemiMajor returns a, the semi-major axis length (Sum/2).
func (e Ellipse) SemiMajor() float64 { return e.Sum / 2 }

// SemiMinor returns b = sqrt(a² - c²) where c is half the focal distance.
// An empty ellipse returns 0.
func (e Ellipse) SemiMinor() float64 {
	a := e.SemiMajor()
	c := e.F1.Dist(e.F2) / 2
	if a <= c {
		return 0
	}
	return math.Sqrt(a*a - c*c)
}

// MBR returns the exact axis-aligned bounding rectangle of the ellipse,
// which the paper uses as the I/O region ("its MBR will be used as the I/O
// region"). For an empty ellipse the result is empty.
func (e Ellipse) MBR() MBR {
	if e.IsEmpty() {
		return EmptyMBR()
	}
	a := e.SemiMajor()
	b := e.SemiMinor()
	center := e.F1.Add(e.F2).Scale(0.5)
	d := e.F2.Sub(e.F1)
	l := d.Norm()
	var cos, sin float64
	if l < Eps {
		// Degenerate foci: circle of radius a.
		cos, sin = 1, 0
	} else {
		cos, sin = d.X/l, d.Y/l
	}
	// Extent of a rotated ellipse along each axis:
	// ex = sqrt(a²cos²θ + b²sin²θ), ey = sqrt(a²sin²θ + b²cos²θ).
	ex := math.Sqrt(a*a*cos*cos + b*b*sin*sin)
	ey := math.Sqrt(a*a*sin*sin + b*b*cos*cos)
	return MBR{center.X - ex, center.Y - ey, center.X + ex, center.Y + ey}
}

// IntersectsMBR conservatively reports whether the ellipse could intersect
// rectangle m (it tests the ellipse's bounding box and, when the box test
// passes, refines using the closest point of the rectangle to both foci).
func (e Ellipse) IntersectsMBR(m MBR) bool {
	if e.IsEmpty() || m.IsEmpty() {
		return false
	}
	if !e.MBR().Intersects(m) {
		return false
	}
	// A rectangle intersects the ellipse iff the minimum over the rectangle
	// of |p-F1|+|p-F2| is ≤ Sum. We lower-bound that minimum by
	// dist(m,F1)+dist(m,F2), which can only under-estimate, keeping the
	// test conservative (never rejects a truly intersecting rectangle).
	return m.DistToPoint(e.F1)+m.DistToPoint(e.F2) <= e.Sum+Eps
}

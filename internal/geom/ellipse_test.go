package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEllipseCircleCase(t *testing.T) {
	t.Parallel()
	// Coincident foci → circle of radius Sum/2.
	e := NewEllipse(Vec2{0, 0}, Vec2{0, 0}, 10)
	if e.IsEmpty() {
		t.Fatal("circle should not be empty")
	}
	if !e.Contains(Vec2{5, 0}) || !e.Contains(Vec2{0, -5}) {
		t.Error("boundary points should be contained")
	}
	if e.Contains(Vec2{5.1, 0}) {
		t.Error("exterior point contained")
	}
	m := e.MBR()
	want := MBR{-5, -5, 5, 5}
	if math.Abs(m.MinX-want.MinX) > 1e-9 || math.Abs(m.MaxY-want.MaxY) > 1e-9 {
		t.Errorf("MBR = %v, want %v", m, want)
	}
}

func TestEllipseAxisAligned(t *testing.T) {
	t.Parallel()
	// Foci at (±3, 0), sum 10 → a=5, b=4 (classic 3-4-5).
	e := NewEllipse(Vec2{-3, 0}, Vec2{3, 0}, 10)
	if !almostEq(e.SemiMajor(), 5, 1e-12) {
		t.Errorf("a = %v", e.SemiMajor())
	}
	if !almostEq(e.SemiMinor(), 4, 1e-12) {
		t.Errorf("b = %v", e.SemiMinor())
	}
	m := e.MBR()
	if !almostEq(m.MinX, -5, 1e-9) || !almostEq(m.MaxX, 5, 1e-9) ||
		!almostEq(m.MinY, -4, 1e-9) || !almostEq(m.MaxY, 4, 1e-9) {
		t.Errorf("MBR = %v", m)
	}
	if !e.Contains(Vec2{5, 0}) || !e.Contains(Vec2{0, 4}) {
		t.Error("vertices of ellipse should be contained")
	}
	if e.Contains(Vec2{5, 1}) {
		t.Error("exterior point contained")
	}
}

func TestEllipseRotatedMBR(t *testing.T) {
	t.Parallel()
	// Foci on the diagonal: MBR must still contain sampled boundary points.
	e := NewEllipse(Vec2{0, 0}, Vec2{6, 6}, 14)
	m := e.MBR()
	// Sample the ellipse boundary via its parametric form.
	a := e.SemiMajor()
	b := e.SemiMinor()
	c := e.F1.Add(e.F2).Scale(0.5)
	dir := e.F2.Sub(e.F1).Normalize()
	perp := Vec2{-dir.Y, dir.X}
	for i := 0; i < 64; i++ {
		th := 2 * math.Pi * float64(i) / 64
		p := c.Add(dir.Scale(a * math.Cos(th))).Add(perp.Scale(b * math.Sin(th)))
		if !m.Contains(p) {
			t.Fatalf("MBR %v misses boundary point %v", m, p)
		}
		if !e.Contains(p) {
			t.Fatalf("ellipse misses own boundary point %v (sum=%v)", p, p.Dist(e.F1)+p.Dist(e.F2))
		}
	}
}

func TestEmptyEllipse(t *testing.T) {
	t.Parallel()
	e := NewEllipse(Vec2{0, 0}, Vec2{10, 0}, 5) // sum < focal distance
	if !e.IsEmpty() {
		t.Fatal("should be empty")
	}
	if !e.MBR().IsEmpty() {
		t.Error("empty ellipse should have empty MBR")
	}
	if e.IntersectsMBR(MBR{0, 0, 1, 1}) {
		t.Error("empty ellipse intersects nothing")
	}
	if e.SemiMinor() != 0 {
		t.Error("empty ellipse SemiMinor should be 0")
	}
}

func TestEllipseIntersectsMBRConservative(t *testing.T) {
	t.Parallel()
	e := NewEllipse(Vec2{0, 0}, Vec2{4, 0}, 6)
	if !e.IntersectsMBR(MBR{1, -1, 3, 1}) {
		t.Error("rect through center must intersect")
	}
	if e.IntersectsMBR(MBR{100, 100, 101, 101}) {
		t.Error("distant rect must not intersect")
	}
	// Conservativeness: any rect containing a point of the ellipse must
	// report intersection.
	f := func(px, py float64) bool {
		p := Vec2{math.Mod(sanitize(px), 10), math.Mod(sanitize(py), 10)}
		if !e.Contains(p) {
			return true // vacuous
		}
		r := MBR{p.X - 0.1, p.Y - 0.1, p.X + 0.1, p.Y + 0.1}
		return e.IntersectsMBR(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlaceApex(t *testing.T) {
	t.Parallel()
	// Equilateral triangle with side 2: apex at (1, √3).
	p, ok := PlaceApex(Vec2{0, 0}, Vec2{2, 0}, 2, 2, +1)
	if !ok {
		t.Fatal("PlaceApex failed")
	}
	if !almostEq(p.X, 1, 1e-9) || !almostEq(p.Y, math.Sqrt(3), 1e-9) {
		t.Errorf("apex = %v", p)
	}
	// Mirror side.
	p, _ = PlaceApex(Vec2{0, 0}, Vec2{2, 0}, 2, 2, -1)
	if !almostEq(p.Y, -math.Sqrt(3), 1e-9) {
		t.Errorf("mirrored apex = %v", p)
	}
	// Infeasible lengths get flagged.
	_, ok = PlaceApex(Vec2{0, 0}, Vec2{10, 0}, 1, 1, +1)
	if ok {
		t.Error("violating triangle inequality should report !ok")
	}
}

func TestUnfoldTriangleIsometry(t *testing.T) {
	t.Parallel()
	tri := Triangle3{Vec3{1, 2, 3}, Vec3{4, 6, 3}, Vec3{2, 2, 8}}
	a, b, c := UnfoldTriangle(tri)
	if a != (Vec2{0, 0}) {
		t.Errorf("a = %v", a)
	}
	if !almostEq(a.Dist(b), tri.A.Dist(tri.B), 1e-9) {
		t.Errorf("|ab| mismatch")
	}
	if !almostEq(a.Dist(c), tri.A.Dist(tri.C), 1e-9) {
		t.Errorf("|ac| mismatch")
	}
	if !almostEq(b.Dist(c), tri.B.Dist(tri.C), 1e-9) {
		t.Errorf("|bc| mismatch")
	}
	if c.Y < 0 {
		t.Errorf("apex should be in upper half-plane, got %v", c)
	}
}

func TestRaySegment(t *testing.T) {
	t.Parallel()
	s := Segment2{Vec2{2, -1}, Vec2{2, 1}}
	tp, u, ok := RaySegment(Vec2{0, 0}, Vec2{1, 0}, s)
	if !ok || !almostEq(tp, 0.5, 1e-9) || !almostEq(u, 2, 1e-9) {
		t.Errorf("RaySegment = t=%v u=%v ok=%v", tp, u, ok)
	}
	// Ray pointing away.
	if _, _, ok := RaySegment(Vec2{0, 0}, Vec2{-1, 0}, s); ok {
		t.Error("backward ray should miss")
	}
	// Parallel ray.
	if _, _, ok := RaySegment(Vec2{0, 0}, Vec2{0, 1}, s); ok {
		t.Error("parallel ray should miss")
	}
}

package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVec3Basics(t *testing.T) {
	t.Parallel()
	v := Vec3{1, 2, 3}
	w := Vec3{4, -5, 6}
	if got := v.Add(w); got != (Vec3{5, -3, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != (Vec3{-3, 7, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(w); got != 4-10+18 {
		t.Errorf("Dot = %v", got)
	}
	if got := v.XY(); got != (Vec2{1, 2}) {
		t.Errorf("XY = %v", got)
	}
}

func TestVec3Cross(t *testing.T) {
	t.Parallel()
	x := Vec3{1, 0, 0}
	y := Vec3{0, 1, 0}
	z := Vec3{0, 0, 1}
	if got := x.Cross(y); got != z {
		t.Errorf("x×y = %v, want %v", got, z)
	}
	if got := y.Cross(x); got != z.Scale(-1) {
		t.Errorf("y×x = %v, want %v", got, z.Scale(-1))
	}
	// Cross product is orthogonal to both operands.
	v := Vec3{1, 2, 3}
	w := Vec3{-2, 0.5, 4}
	c := v.Cross(w)
	if !almostEq(c.Dot(v), 0, 1e-12) || !almostEq(c.Dot(w), 0, 1e-12) {
		t.Errorf("cross product not orthogonal: %v", c)
	}
}

func TestVec3NormDist(t *testing.T) {
	t.Parallel()
	v := Vec3{3, 4, 12}
	if got := v.Norm(); got != 13 {
		t.Errorf("Norm = %v, want 13", got)
	}
	if got := v.Norm2(); got != 169 {
		t.Errorf("Norm2 = %v, want 169", got)
	}
	a := Vec3{1, 1, 1}
	b := Vec3{4, 5, 1}
	if got := a.Dist(b); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := a.Dist2(b); got != 25 {
		t.Errorf("Dist2 = %v, want 25", got)
	}
}

func TestVec3Normalize(t *testing.T) {
	t.Parallel()
	v := Vec3{0, 3, 4}
	n := v.Normalize()
	if !almostEq(n.Norm(), 1, 1e-12) {
		t.Errorf("normalized length = %v", n.Norm())
	}
	zero := Vec3{}
	if got := zero.Normalize(); got != zero {
		t.Errorf("Normalize(0) = %v, want zero", got)
	}
}

func TestVec3Lerp(t *testing.T) {
	t.Parallel()
	a := Vec3{0, 0, 0}
	b := Vec3{2, 4, 6}
	if got := a.Lerp(b, 0.5); got != (Vec3{1, 2, 3}) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
}

func TestVec2Basics(t *testing.T) {
	t.Parallel()
	v := Vec2{3, 4}
	if got := v.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := v.Cross(Vec2{1, 0}); got != -4 {
		t.Errorf("Cross = %v", got)
	}
	if got := (Vec2{1, 0}).Angle(); got != 0 {
		t.Errorf("Angle = %v", got)
	}
	if got := (Vec2{0, 1}).Angle(); !almostEq(got, math.Pi/2, 1e-12) {
		t.Errorf("Angle = %v", got)
	}
}

func TestAngleBetween(t *testing.T) {
	t.Parallel()
	if got := AngleBetween(Vec2{1, 0}, Vec2{0, 2}); !almostEq(got, math.Pi/2, 1e-12) {
		t.Errorf("AngleBetween = %v", got)
	}
	if got := AngleBetween(Vec2{1, 0}, Vec2{-3, 0}); !almostEq(got, math.Pi, 1e-12) {
		t.Errorf("AngleBetween = %v", got)
	}
	if got := AngleBetween(Vec2{}, Vec2{1, 1}); got != 0 {
		t.Errorf("AngleBetween with zero vec = %v", got)
	}
	if got := AngleBetween3(Vec3{1, 0, 0}, Vec3{0, 0, 5}); !almostEq(got, math.Pi/2, 1e-12) {
		t.Errorf("AngleBetween3 = %v", got)
	}
}

// Property: triangle inequality for Dist.
func TestVec3TriangleInequality(t *testing.T) {
	t.Parallel()
	f := func(ax, ay, az, bx, by, bz, cx, cy, cz float64) bool {
		a := Vec3{sanitize(ax), sanitize(ay), sanitize(az)}
		b := Vec3{sanitize(bx), sanitize(by), sanitize(bz)}
		c := Vec3{sanitize(cx), sanitize(cy), sanitize(cz)}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: |v×w|² + (v·w)² == |v|²|w|² (Lagrange identity).
func TestLagrangeIdentity(t *testing.T) {
	t.Parallel()
	f := func(vx, vy, vz, wx, wy, wz float64) bool {
		v := Vec3{sanitize(vx), sanitize(vy), sanitize(vz)}
		w := Vec3{sanitize(wx), sanitize(wy), sanitize(wz)}
		lhs := v.Cross(w).Norm2() + v.Dot(w)*v.Dot(w)
		rhs := v.Norm2() * w.Norm2()
		scale := math.Max(1, rhs)
		return almostEq(lhs, rhs, 1e-9*scale)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// sanitize maps arbitrary float64 values from testing/quick into a bounded,
// finite range so geometric identities are tested away from overflow.
func sanitize(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e4)
}

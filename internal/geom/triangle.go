package geom

import "math"

// Triangle3 is a triangle in 3-D space.
type Triangle3 struct {
	A, B, C Vec3
}

// Normal returns the (unnormalised) face normal (B-A)×(C-A).
func (t Triangle3) Normal() Vec3 { return t.B.Sub(t.A).Cross(t.C.Sub(t.A)) }

// Area returns the triangle's area.
func (t Triangle3) Area() float64 { return t.Normal().Norm() / 2 }

// Centroid returns the triangle's centroid.
func (t Triangle3) Centroid() Vec3 {
	return Vec3{
		(t.A.X + t.B.X + t.C.X) / 3,
		(t.A.Y + t.B.Y + t.C.Y) / 3,
		(t.A.Z + t.B.Z + t.C.Z) / 3,
	}
}

// Plane returns the plane coefficients (a,b,c,d) with unit normal such that
// a·x + b·y + c·z + d = 0 for points on the triangle's supporting plane.
// Degenerate triangles return all-zero coefficients.
func (t Triangle3) Plane() (a, b, c, d float64) {
	n := t.Normal()
	l := n.Norm()
	if l < Eps {
		return 0, 0, 0, 0
	}
	n = n.Scale(1 / l)
	return n.X, n.Y, n.Z, -n.Dot(t.A)
}

// Barycentric returns the barycentric coordinates (u,v,w), u+v+w=1, of the
// (x,y) projection of p with respect to the (x,y) projection of the
// triangle. ok is false for triangles that are degenerate in projection.
func (t Triangle3) Barycentric(p Vec2) (u, v, w float64, ok bool) {
	a, b, c := t.A.XY(), t.B.XY(), t.C.XY()
	v0 := b.Sub(a)
	v1 := c.Sub(a)
	v2 := p.Sub(a)
	den := v0.Cross(v1)
	if math.Abs(den) < Eps {
		return 0, 0, 0, false
	}
	v = v2.Cross(v1) / den
	w = v0.Cross(v2) / den
	u = 1 - v - w
	return u, v, w, true
}

// ContainsXY reports whether the (x,y) projection of p falls inside or on
// the boundary of the triangle's projection.
func (t Triangle3) ContainsXY(p Vec2) bool {
	u, v, w, ok := t.Barycentric(p)
	if !ok {
		return false
	}
	const tol = 1e-9
	return u >= -tol && v >= -tol && w >= -tol
}

// InterpolateZ returns the elevation of the triangle's plane at the given
// (x,y) location using barycentric interpolation. ok is false when the
// projected triangle is degenerate.
func (t Triangle3) InterpolateZ(p Vec2) (float64, bool) {
	u, v, w, ok := t.Barycentric(p)
	if !ok {
		return 0, false
	}
	return u*t.A.Z + v*t.B.Z + w*t.C.Z, true
}

// Triangle2 is a triangle in the plane.
type Triangle2 struct {
	A, B, C Vec2
}

// SignedArea returns the signed area (positive for counter-clockwise
// orientation).
func (t Triangle2) SignedArea() float64 {
	return t.B.Sub(t.A).Cross(t.C.Sub(t.A)) / 2
}

// Area returns the absolute area.
func (t Triangle2) Area() float64 { return math.Abs(t.SignedArea()) }

// Contains reports whether p lies inside or on the boundary of the triangle.
func (t Triangle2) Contains(p Vec2) bool {
	d1 := p.Sub(t.A).Cross(t.B.Sub(t.A))
	d2 := p.Sub(t.B).Cross(t.C.Sub(t.B))
	d3 := p.Sub(t.C).Cross(t.A.Sub(t.C))
	const tol = 1e-9
	hasNeg := d1 < -tol || d2 < -tol || d3 < -tol
	hasPos := d1 > tol || d2 > tol || d3 > tol
	return !(hasNeg && hasPos)
}

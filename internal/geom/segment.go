package geom

import "math"

// Segment3 is a 3-D line segment.
type Segment3 struct {
	A, B Vec3
}

// Length returns the segment length.
func (s Segment3) Length() float64 { return s.A.Dist(s.B) }

// Box returns the 3-D bounding box of the segment.
func (s Segment3) Box() Box3 { return Box3Of(s.A, s.B) }

// At returns the point (1-t)·A + t·B.
func (s Segment3) At(t float64) Vec3 { return s.A.Lerp(s.B, t) }

// ClosestPoint returns the point on the segment nearest to p and its
// parameter t in [0,1].
func (s Segment3) ClosestPoint(p Vec3) (Vec3, float64) {
	d := s.B.Sub(s.A)
	l2 := d.Norm2()
	if l2 < Eps*Eps {
		return s.A, 0
	}
	t := p.Sub(s.A).Dot(d) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return s.At(t), t
}

// DistToPoint returns the minimum distance from p to the segment.
func (s Segment3) DistToPoint(p Vec3) float64 {
	q, _ := s.ClosestPoint(p)
	return q.Dist(p)
}

// Segment2 is a line segment in the plane.
type Segment2 struct {
	A, B Vec2
}

// Length returns the segment length.
func (s Segment2) Length() float64 { return s.A.Dist(s.B) }

// At returns the point (1-t)·A + t·B.
func (s Segment2) At(t float64) Vec2 { return s.A.Lerp(s.B, t) }

// ClosestPoint returns the point on the segment nearest to p and its
// parameter t in [0,1].
func (s Segment2) ClosestPoint(p Vec2) (Vec2, float64) {
	d := s.B.Sub(s.A)
	l2 := d.Norm2()
	if l2 < Eps*Eps {
		return s.A, 0
	}
	t := p.Sub(s.A).Dot(d) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return s.At(t), t
}

// DistToPoint returns the minimum distance from p to the segment.
func (s Segment2) DistToPoint(p Vec2) float64 {
	q, _ := s.ClosestPoint(p)
	return q.Dist(p)
}

// Intersect reports whether the two segments intersect, and if they cross at
// a single point returns that point. Collinear overlap reports ok=true with
// the midpoint of the shared portion's first endpoint.
func (s Segment2) Intersect(o Segment2) (Vec2, bool) {
	r := s.B.Sub(s.A)
	q := o.B.Sub(o.A)
	den := r.Cross(q)
	ao := o.A.Sub(s.A)
	if math.Abs(den) < Eps {
		// Parallel. Check collinear overlap.
		if math.Abs(ao.Cross(r)) > Eps {
			return Vec2{}, false
		}
		rl2 := r.Norm2()
		if rl2 < Eps*Eps {
			// s degenerates to a point.
			if o.DistToPoint(s.A) < Eps {
				return s.A, true
			}
			return Vec2{}, false
		}
		t0 := ao.Dot(r) / rl2
		t1 := o.B.Sub(s.A).Dot(r) / rl2
		if t0 > t1 {
			t0, t1 = t1, t0
		}
		lo := math.Max(0, t0)
		hi := math.Min(1, t1)
		if lo > hi {
			return Vec2{}, false
		}
		return s.At(lo), true
	}
	t := ao.Cross(q) / den
	u := ao.Cross(r) / den
	if t < -Eps || t > 1+Eps || u < -Eps || u > 1+Eps {
		return Vec2{}, false
	}
	return s.At(clamp01(t)), true
}

// CrossesVertical reports whether the segment's x-range spans the vertical
// line x = x0, and if so returns the parameter t of the crossing.
func (s Segment2) CrossesVertical(x0 float64) (float64, bool) {
	return crossParam(s.A.X, s.B.X, x0)
}

// CrossesHorizontal reports whether the segment's y-range spans the
// horizontal line y = y0, and if so returns the parameter t of the crossing.
func (s Segment2) CrossesHorizontal(y0 float64) (float64, bool) {
	return crossParam(s.A.Y, s.B.Y, y0)
}

func crossParam(a, b, v float64) (float64, bool) {
	if (a < v && b < v) || (a > v && b > v) {
		return 0, false
	}
	d := b - a
	if math.Abs(d) < Eps {
		// Segment lies on the line.
		return 0, true
	}
	t := (v - a) / d
	if t < 0 || t > 1 {
		return 0, false
	}
	return t, true
}

func clamp01(t float64) float64 {
	if t < 0 {
		return 0
	}
	if t > 1 {
		return 1
	}
	return t
}

// PolylineLength returns the total length of the polyline through pts.
func PolylineLength(pts []Vec3) float64 {
	var l float64
	for i := 1; i < len(pts); i++ {
		l += pts[i-1].Dist(pts[i])
	}
	return l
}

// Package geom provides the 2-D and 3-D computational-geometry primitives
// used throughout the surface k-NN library: vectors, segments, triangles,
// minimum bounding rectangles, ellipse-shaped search regions and the planar
// unfolding of triangle pairs that underpins exact geodesic computation.
//
// All coordinates are float64 and all lengths are in the same (arbitrary)
// unit as the input terrain; the library never assumes a particular unit.
package geom

import "math"

// Eps is the tolerance used for geometric predicates in this package.
// Terrain coordinates are typically O(10^4) metres, so 1e-9 relative
// tolerance keeps predicates stable without masking real degeneracies.
const Eps = 1e-9

// Vec3 is a point or displacement in 3-D space. Z is elevation.
type Vec3 struct {
	X, Y, Z float64
}

// Vec2 is a point or displacement in the (x,y) plane.
type Vec2 struct {
	X, Y float64
}

// XY projects the 3-D point onto the (x,y) plane, discarding elevation.
func (v Vec3) XY() Vec2 { return Vec2{v.X, v.Y} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared Euclidean length of v.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Dist2 returns the squared Euclidean distance between v and w.
func (v Vec3) Dist2(w Vec3) float64 { return v.Sub(w).Norm2() }

// Normalize returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if n < Eps {
		return v
	}
	return v.Scale(1 / n)
}

// Lerp returns the linear interpolation (1-t)·v + t·w.
func (v Vec3) Lerp(w Vec3, t float64) Vec3 {
	return Vec3{
		v.X + (w.X-v.X)*t,
		v.Y + (w.Y-v.Y)*t,
		v.Z + (w.Z-v.Z)*t,
	}
}

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the dot product v·w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the scalar (z-component) cross product of v and w.
func (v Vec2) Cross(w Vec2) float64 { return v.X*w.Y - v.Y*w.X }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Norm2 returns the squared Euclidean length of v.
func (v Vec2) Norm2() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and w.
func (v Vec2) Dist(w Vec2) float64 { return v.Sub(w).Norm() }

// Dist2 returns the squared Euclidean distance between v and w.
func (v Vec2) Dist2(w Vec2) float64 { return v.Sub(w).Norm2() }

// Normalize returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vec2) Normalize() Vec2 {
	n := v.Norm()
	if n < Eps {
		return v
	}
	return v.Scale(1 / n)
}

// Lerp returns the linear interpolation (1-t)·v + t·w.
func (v Vec2) Lerp(w Vec2, t float64) Vec2 {
	return Vec2{v.X + (w.X-v.X)*t, v.Y + (w.Y-v.Y)*t}
}

// Angle returns the angle of v measured counter-clockwise from the +x axis,
// in (-π, π].
func (v Vec2) Angle() float64 { return math.Atan2(v.Y, v.X) }

// AngleBetween returns the unsigned angle between v and w in [0, π].
func AngleBetween(v, w Vec2) float64 {
	d := v.Norm() * w.Norm()
	if d < Eps {
		return 0
	}
	c := v.Dot(w) / d
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return math.Acos(c)
}

// AngleBetween3 returns the unsigned angle between 3-D vectors v and w
// in [0, π].
func AngleBetween3(v, w Vec3) float64 {
	d := v.Norm() * w.Norm()
	if d < Eps {
		return 0
	}
	c := v.Dot(w) / d
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return math.Acos(c)
}

package geom

import "math"

// Planar unfolding utilities. Exact geodesic algorithms (Chen–Han style)
// work by flattening a strip of adjacent triangles into the plane so that a
// geodesic becomes a straight line. The canonical frame used here places a
// triangle's edge on the x-axis with its origin endpoint at (0,0) and the
// apex in the upper half-plane (y ≥ 0).

// PlaceApex computes the 2-D position of the apex of a triangle whose base
// endpoints are at p0 and p1 in the plane, given the 3-D edge lengths
// l0 = |base0→apex| and l1 = |base1→apex|. The apex is placed on side
// sign (+1 = left of p0→p1, -1 = right). ok is false when the triangle
// inequality is violated beyond numerical tolerance (the lengths are then
// clamped to the nearest feasible configuration).
func PlaceApex(p0, p1 Vec2, l0, l1 float64, sign float64) (Vec2, bool) {
	d := p1.Sub(p0)
	base := d.Norm()
	ok := true
	if base < Eps {
		// Degenerate base; put the apex straight "up".
		return Vec2{p0.X, p0.Y + l0}, false
	}
	// Law of cosines: x along the base, y off it.
	x := (l0*l0 - l1*l1 + base*base) / (2 * base)
	h2 := l0*l0 - x*x
	if h2 < 0 {
		if h2 < -1e-6*l0*l0 {
			ok = false
		}
		h2 = 0
	}
	y := math.Sqrt(h2) * sign
	ux := d.Scale(1 / base)
	uy := Vec2{-ux.Y, ux.X}
	return p0.Add(ux.Scale(x)).Add(uy.Scale(y)), ok
}

// UnfoldTriangle maps a 3-D triangle into the plane: A goes to (0,0), B to
// (|AB|, 0), and C to the upper half-plane. The mapping is an isometry of
// the triangle.
func UnfoldTriangle(t Triangle3) (a, b, c Vec2) {
	ab := t.A.Dist(t.B)
	a = Vec2{0, 0}
	b = Vec2{ab, 0}
	c, _ = PlaceApex(a, b, t.A.Dist(t.C), t.B.Dist(t.C), +1)
	return a, b, c
}

// RaySegment intersects the ray from origin o through direction dir with
// segment s. It returns the parameter t along the segment (0 at s.A) and
// the ray parameter u ≥ 0, with ok=false when there is no forward
// intersection.
func RaySegment(o, dir Vec2, s Segment2) (t, u float64, ok bool) {
	d := s.B.Sub(s.A)
	den := dir.Cross(d)
	if math.Abs(den) < Eps {
		return 0, 0, false
	}
	ao := s.A.Sub(o)
	u = ao.Cross(d) / den
	t = ao.Cross(dir) / den
	if u < -Eps || t < -Eps || t > 1+Eps {
		return 0, 0, false
	}
	return clamp01(t), math.Max(u, 0), true
}

package geom

import (
	"math"
	"testing"
)

func TestTriangle3AreaNormal(t *testing.T) {
	t.Parallel()
	tri := Triangle3{Vec3{0, 0, 0}, Vec3{2, 0, 0}, Vec3{0, 2, 0}}
	if got := tri.Area(); got != 2 {
		t.Errorf("Area = %v", got)
	}
	n := tri.Normal().Normalize()
	if !almostEq(n.Z, 1, 1e-12) {
		t.Errorf("Normal = %v", n)
	}
	c := tri.Centroid()
	want := Vec3{2.0 / 3, 2.0 / 3, 0}
	if c.Dist(want) > 1e-12 {
		t.Errorf("Centroid = %v", c)
	}
}

func TestTrianglePlane(t *testing.T) {
	t.Parallel()
	tri := Triangle3{Vec3{0, 0, 5}, Vec3{1, 0, 5}, Vec3{0, 1, 5}}
	a, b, c, d := tri.Plane()
	// Plane z = 5 → (0,0,1,-5) up to sign.
	if !almostEq(math.Abs(c), 1, 1e-12) || !almostEq(a, 0, 1e-12) || !almostEq(b, 0, 1e-12) {
		t.Errorf("plane normal = (%v,%v,%v)", a, b, c)
	}
	if !almostEq(math.Abs(d), 5, 1e-12) {
		t.Errorf("plane d = %v", d)
	}
	// Degenerate triangle yields zero plane.
	deg := Triangle3{Vec3{0, 0, 0}, Vec3{1, 1, 1}, Vec3{2, 2, 2}}
	a, b, c, d = deg.Plane()
	if a != 0 || b != 0 || c != 0 || d != 0 {
		t.Errorf("degenerate plane = (%v,%v,%v,%v)", a, b, c, d)
	}
}

func TestBarycentricInterpolation(t *testing.T) {
	t.Parallel()
	tri := Triangle3{Vec3{0, 0, 0}, Vec3{4, 0, 8}, Vec3{0, 4, 4}}
	// At A.
	z, ok := tri.InterpolateZ(Vec2{0, 0})
	if !ok || !almostEq(z, 0, 1e-12) {
		t.Errorf("z(A) = %v ok=%v", z, ok)
	}
	// Midpoint of BC.
	z, ok = tri.InterpolateZ(Vec2{2, 2})
	if !ok || !almostEq(z, 6, 1e-12) {
		t.Errorf("z(mid BC) = %v ok=%v", z, ok)
	}
	// Centroid.
	z, ok = tri.InterpolateZ(Vec2{4.0 / 3, 4.0 / 3})
	if !ok || !almostEq(z, 4, 1e-12) {
		t.Errorf("z(centroid) = %v ok=%v", z, ok)
	}
}

func TestContainsXY(t *testing.T) {
	t.Parallel()
	tri := Triangle3{Vec3{0, 0, 0}, Vec3{4, 0, 0}, Vec3{0, 4, 0}}
	cases := []struct {
		p    Vec2
		want bool
	}{
		{Vec2{1, 1}, true},
		{Vec2{0, 0}, true},   // vertex
		{Vec2{2, 0}, true},   // edge
		{Vec2{2, 2}, true},   // hypotenuse
		{Vec2{3, 3}, false},  // outside
		{Vec2{-1, 0}, false}, // outside
	}
	for _, c := range cases {
		if got := tri.ContainsXY(c.p); got != c.want {
			t.Errorf("ContainsXY(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestTriangle2(t *testing.T) {
	t.Parallel()
	ccw := Triangle2{Vec2{0, 0}, Vec2{1, 0}, Vec2{0, 1}}
	if got := ccw.SignedArea(); !almostEq(got, 0.5, 1e-12) {
		t.Errorf("SignedArea = %v", got)
	}
	cw := Triangle2{Vec2{0, 0}, Vec2{0, 1}, Vec2{1, 0}}
	if got := cw.SignedArea(); !almostEq(got, -0.5, 1e-12) {
		t.Errorf("SignedArea(cw) = %v", got)
	}
	if !cw.Contains(Vec2{0.2, 0.2}) {
		t.Error("Contains should be orientation-independent")
	}
	if ccw.Contains(Vec2{1, 1}) {
		t.Error("point outside reported inside")
	}
}

func TestSegment2Intersect(t *testing.T) {
	t.Parallel()
	s := Segment2{Vec2{0, 0}, Vec2{2, 2}}
	o := Segment2{Vec2{0, 2}, Vec2{2, 0}}
	p, ok := s.Intersect(o)
	if !ok || p.Dist(Vec2{1, 1}) > 1e-12 {
		t.Errorf("Intersect = %v ok=%v", p, ok)
	}
	// Parallel, non-collinear.
	if _, ok := s.Intersect(Segment2{Vec2{0, 1}, Vec2{2, 3}}); ok {
		t.Error("parallel segments should not intersect")
	}
	// Collinear overlap.
	if _, ok := s.Intersect(Segment2{Vec2{1, 1}, Vec2{3, 3}}); !ok {
		t.Error("collinear overlap should intersect")
	}
	// Collinear disjoint.
	if _, ok := s.Intersect(Segment2{Vec2{3, 3}, Vec2{4, 4}}); ok {
		t.Error("collinear disjoint should not intersect")
	}
	// Disjoint crossing lines but not segments.
	if _, ok := s.Intersect(Segment2{Vec2{3, 0}, Vec2{4, -5}}); ok {
		t.Error("segments should not intersect")
	}
}

func TestSegmentCrossings(t *testing.T) {
	t.Parallel()
	s := Segment2{Vec2{0, 0}, Vec2{4, 2}}
	tpar, ok := s.CrossesVertical(2)
	if !ok || !almostEq(tpar, 0.5, 1e-12) {
		t.Errorf("CrossesVertical = %v ok=%v", tpar, ok)
	}
	if _, ok := s.CrossesVertical(5); ok {
		t.Error("should not cross x=5")
	}
	tpar, ok = s.CrossesHorizontal(1)
	if !ok || !almostEq(tpar, 0.5, 1e-12) {
		t.Errorf("CrossesHorizontal = %v ok=%v", tpar, ok)
	}
	if _, ok := s.CrossesHorizontal(-1); ok {
		t.Error("should not cross y=-1")
	}
}

func TestSegmentClosestPoint(t *testing.T) {
	t.Parallel()
	s := Segment3{Vec3{0, 0, 0}, Vec3{10, 0, 0}}
	q, tp := s.ClosestPoint(Vec3{5, 3, 4})
	if q.Dist(Vec3{5, 0, 0}) > 1e-12 || !almostEq(tp, 0.5, 1e-12) {
		t.Errorf("ClosestPoint = %v t=%v", q, tp)
	}
	if got := s.DistToPoint(Vec3{5, 3, 4}); got != 5 {
		t.Errorf("DistToPoint = %v", got)
	}
	// Beyond endpoints clamps.
	q, tp = s.ClosestPoint(Vec3{-3, 0, 0})
	if q != (Vec3{0, 0, 0}) || tp != 0 {
		t.Errorf("clamped = %v t=%v", q, tp)
	}
	// 2-D variant.
	s2 := Segment2{Vec2{0, 0}, Vec2{0, 10}}
	if got := s2.DistToPoint(Vec2{3, 5}); got != 3 {
		t.Errorf("2D DistToPoint = %v", got)
	}
}

func TestPolylineLength(t *testing.T) {
	t.Parallel()
	pts := []Vec3{{0, 0, 0}, {3, 4, 0}, {3, 4, 12}}
	if got := PolylineLength(pts); got != 17 {
		t.Errorf("PolylineLength = %v", got)
	}
	if got := PolylineLength(nil); got != 0 {
		t.Errorf("empty polyline = %v", got)
	}
}

package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEmptyMBR(t *testing.T) {
	t.Parallel()
	e := EmptyMBR()
	if !e.IsEmpty() {
		t.Fatal("EmptyMBR not empty")
	}
	if e.Area() != 0 || e.Width() != 0 || e.Height() != 0 {
		t.Error("empty MBR should have zero extent")
	}
	if e.Contains(Vec2{0, 0}) {
		t.Error("empty MBR should contain nothing")
	}
	m := MBR{0, 0, 1, 1}
	if got := e.Union(m); got != m {
		t.Errorf("empty.Union = %v", got)
	}
	if got := m.Union(e); got != m {
		t.Errorf("Union(empty) = %v", got)
	}
}

func TestMBROf(t *testing.T) {
	t.Parallel()
	m := MBROf(Vec2{1, 5}, Vec2{-2, 3}, Vec2{4, -1})
	want := MBR{-2, -1, 4, 5}
	if m != want {
		t.Errorf("MBROf = %v, want %v", m, want)
	}
	m3 := MBROf3(Vec3{1, 2, 99}, Vec3{3, 0, -50})
	if m3 != (MBR{1, 0, 3, 2}) {
		t.Errorf("MBROf3 = %v", m3)
	}
}

func TestMBRIntersect(t *testing.T) {
	t.Parallel()
	a := MBR{0, 0, 2, 2}
	b := MBR{1, 1, 3, 3}
	c := MBR{5, 5, 6, 6}
	if !a.Intersects(b) {
		t.Error("a should intersect b")
	}
	if a.Intersects(c) {
		t.Error("a should not intersect c")
	}
	if got := a.Intersection(b); got != (MBR{1, 1, 2, 2}) {
		t.Errorf("Intersection = %v", got)
	}
	if got := a.Intersection(c); !got.IsEmpty() {
		t.Errorf("Intersection of disjoint should be empty, got %v", got)
	}
	// Touching edges intersect.
	d := MBR{2, 0, 4, 2}
	if !a.Intersects(d) {
		t.Error("touching rectangles should intersect")
	}
}

func TestMBRContains(t *testing.T) {
	t.Parallel()
	m := MBR{0, 0, 10, 10}
	if !m.Contains(Vec2{5, 5}) || !m.Contains(Vec2{0, 0}) || !m.Contains(Vec2{10, 10}) {
		t.Error("Contains failed on interior/boundary")
	}
	if m.Contains(Vec2{10.01, 5}) {
		t.Error("Contains should reject exterior point")
	}
	if !m.ContainsMBR(MBR{1, 1, 9, 9}) {
		t.Error("ContainsMBR interior")
	}
	if m.ContainsMBR(MBR{1, 1, 11, 9}) {
		t.Error("ContainsMBR overflow")
	}
	if !m.ContainsMBR(EmptyMBR()) {
		t.Error("every MBR contains the empty MBR")
	}
}

func TestMBRDistances(t *testing.T) {
	t.Parallel()
	m := MBR{0, 0, 2, 2}
	if got := m.DistToPoint(Vec2{1, 1}); got != 0 {
		t.Errorf("inside dist = %v", got)
	}
	if got := m.DistToPoint(Vec2{5, 2}); got != 3 {
		t.Errorf("right dist = %v", got)
	}
	if got := m.DistToPoint(Vec2{5, 6}); got != 5 {
		t.Errorf("corner dist = %v (want 5)", got)
	}
	o := MBR{5, 0, 6, 2}
	if got := m.DistToMBR(o); got != 3 {
		t.Errorf("box-box dist = %v", got)
	}
	if got := m.DistToMBR(MBR{1, 1, 3, 3}); got != 0 {
		t.Errorf("overlapping box dist = %v", got)
	}
	diag := MBR{5, 6, 7, 8}
	if got := m.DistToMBR(diag); got != 5 {
		t.Errorf("diag box dist = %v (want 5)", got)
	}
}

func TestMBRExpand(t *testing.T) {
	t.Parallel()
	m := MBR{0, 0, 2, 2}
	if got := m.Expand(1); got != (MBR{-1, -1, 3, 3}) {
		t.Errorf("Expand = %v", got)
	}
	if got := m.Expand(-2); !got.IsEmpty() {
		t.Errorf("over-shrunk MBR should be empty, got %v", got)
	}
}

func TestOverlapFraction(t *testing.T) {
	t.Parallel()
	a := MBR{0, 0, 10, 10}
	b := MBR{0, 0, 10, 10}
	if got := a.OverlapFraction(b); !almostEq(got, 1, 1e-12) {
		t.Errorf("identical overlap = %v", got)
	}
	c := MBR{5, 0, 15, 10}
	if got := a.OverlapFraction(c); !almostEq(got, 0.5, 1e-12) {
		t.Errorf("half overlap = %v", got)
	}
	d := MBR{20, 20, 30, 30}
	if got := a.OverlapFraction(d); got != 0 {
		t.Errorf("disjoint overlap = %v", got)
	}
	// Smaller rectangle fully inside: fraction 1 relative to the smaller.
	e := MBR{1, 1, 2, 2}
	if got := a.OverlapFraction(e); !almostEq(got, 1, 1e-12) {
		t.Errorf("contained overlap = %v", got)
	}
}

func TestBox3(t *testing.T) {
	t.Parallel()
	b := Box3Of(Vec3{0, 0, 0}, Vec3{1, 2, 3})
	if b.IsEmpty() {
		t.Fatal("box should not be empty")
	}
	o := Box3Of(Vec3{4, 0, 0}, Vec3{5, 2, 3})
	if got := b.DistToBox(o); got != 3 {
		t.Errorf("DistToBox = %v", got)
	}
	if got := b.DistToBox(b); got != 0 {
		t.Errorf("self dist = %v", got)
	}
	if got := b.DistToPoint(Vec3{1, 2, 7}); got != 4 {
		t.Errorf("DistToPoint = %v", got)
	}
	if got := b.XY(); got != (MBR{0, 0, 1, 2}) {
		t.Errorf("XY = %v", got)
	}
	u := b.Union(o)
	if !u.ContainsBox(b) || !u.ContainsBox(o) {
		t.Error("union must contain both boxes")
	}
	if !b.ContainsBox(EmptyBox3()) {
		t.Error("every box contains the empty box")
	}
}

// Property: union contains both inputs, intersection is contained in both.
func TestMBRUnionIntersectionProps(t *testing.T) {
	t.Parallel()
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		a := MBR{sanitize(ax), sanitize(ay), sanitize(ax) + math.Abs(sanitize(aw)), sanitize(ay) + math.Abs(sanitize(ah))}
		b := MBR{sanitize(bx), sanitize(by), sanitize(bx) + math.Abs(sanitize(bw)), sanitize(by) + math.Abs(sanitize(bh))}
		u := a.Union(b)
		if !u.ContainsMBR(a) || !u.ContainsMBR(b) {
			return false
		}
		i := a.Intersection(b)
		if !i.IsEmpty() && (!a.ContainsMBR(i) || !b.ContainsMBR(i)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: DistToMBR is a lower bound on the distance between any points of
// the two rectangles (tested via corners and center).
func TestMBRDistLowerBound(t *testing.T) {
	t.Parallel()
	f := func(ax, ay, bx, by float64) bool {
		a := MBR{sanitize(ax), sanitize(ay), sanitize(ax) + 1, sanitize(ay) + 1}
		b := MBR{sanitize(bx), sanitize(by), sanitize(bx) + 1, sanitize(by) + 1}
		d := a.DistToMBR(b)
		pa := []Vec2{{a.MinX, a.MinY}, {a.MaxX, a.MaxY}, a.Center()}
		pb := []Vec2{{b.MinX, b.MinY}, {b.MaxX, b.MaxY}, b.Center()}
		for _, p := range pa {
			for _, q := range pb {
				if p.Dist(q) < d-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package geom

import "math"

// MBR is an axis-aligned minimum bounding rectangle in the (x,y) plane.
// An empty MBR (one that contains nothing) is represented with
// MinX > MaxX; use EmptyMBR to construct one.
type MBR struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyMBR returns the identity element for Extend/Union: a rectangle
// that contains no points.
func EmptyMBR() MBR {
	return MBR{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// MBROf returns the bounding rectangle of a set of 2-D points.
func MBROf(pts ...Vec2) MBR {
	m := EmptyMBR()
	for _, p := range pts {
		m = m.ExtendPoint(p)
	}
	return m
}

// MBROf3 returns the bounding rectangle of the (x,y) projections of 3-D
// points.
func MBROf3(pts ...Vec3) MBR {
	m := EmptyMBR()
	for _, p := range pts {
		m = m.ExtendPoint(p.XY())
	}
	return m
}

// IsEmpty reports whether the MBR contains no points.
func (m MBR) IsEmpty() bool { return m.MinX > m.MaxX || m.MinY > m.MaxY }

// Width returns the x extent (0 for an empty MBR).
func (m MBR) Width() float64 {
	if m.IsEmpty() {
		return 0
	}
	return m.MaxX - m.MinX
}

// Height returns the y extent (0 for an empty MBR).
func (m MBR) Height() float64 {
	if m.IsEmpty() {
		return 0
	}
	return m.MaxY - m.MinY
}

// Area returns the area of the rectangle (0 for an empty MBR).
func (m MBR) Area() float64 { return m.Width() * m.Height() }

// Center returns the rectangle's centroid.
func (m MBR) Center() Vec2 { return Vec2{(m.MinX + m.MaxX) / 2, (m.MinY + m.MaxY) / 2} }

// ExtendPoint returns the smallest MBR containing both m and p.
func (m MBR) ExtendPoint(p Vec2) MBR {
	return MBR{
		MinX: math.Min(m.MinX, p.X), MinY: math.Min(m.MinY, p.Y),
		MaxX: math.Max(m.MaxX, p.X), MaxY: math.Max(m.MaxY, p.Y),
	}
}

// Union returns the smallest MBR containing both m and o.
func (m MBR) Union(o MBR) MBR {
	if m.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return m
	}
	return MBR{
		MinX: math.Min(m.MinX, o.MinX), MinY: math.Min(m.MinY, o.MinY),
		MaxX: math.Max(m.MaxX, o.MaxX), MaxY: math.Max(m.MaxY, o.MaxY),
	}
}

// Intersects reports whether m and o share at least one point.
func (m MBR) Intersects(o MBR) bool {
	if m.IsEmpty() || o.IsEmpty() {
		return false
	}
	return m.MinX <= o.MaxX && o.MinX <= m.MaxX &&
		m.MinY <= o.MaxY && o.MinY <= m.MaxY
}

// Intersection returns the overlap of m and o (empty if they are disjoint).
func (m MBR) Intersection(o MBR) MBR {
	if !m.Intersects(o) {
		return EmptyMBR()
	}
	return MBR{
		MinX: math.Max(m.MinX, o.MinX), MinY: math.Max(m.MinY, o.MinY),
		MaxX: math.Min(m.MaxX, o.MaxX), MaxY: math.Min(m.MaxY, o.MaxY),
	}
}

// Contains reports whether point p lies inside or on the boundary of m.
func (m MBR) Contains(p Vec2) bool {
	return !m.IsEmpty() &&
		p.X >= m.MinX && p.X <= m.MaxX && p.Y >= m.MinY && p.Y <= m.MaxY
}

// ContainsMBR reports whether o lies entirely inside m.
func (m MBR) ContainsMBR(o MBR) bool {
	if o.IsEmpty() {
		return true
	}
	if m.IsEmpty() {
		return false
	}
	return o.MinX >= m.MinX && o.MaxX <= m.MaxX &&
		o.MinY >= m.MinY && o.MaxY <= m.MaxY
}

// Expand returns m grown by d on every side. A negative d shrinks the
// rectangle (and may make it empty).
func (m MBR) Expand(d float64) MBR {
	if m.IsEmpty() {
		return m
	}
	return MBR{m.MinX - d, m.MinY - d, m.MaxX + d, m.MaxY + d}
}

// DistToPoint returns the minimum Euclidean distance from p to the rectangle
// (0 when p is inside).
func (m MBR) DistToPoint(p Vec2) float64 {
	if m.IsEmpty() {
		return math.Inf(1)
	}
	dx := axisGap(p.X, m.MinX, m.MaxX)
	dy := axisGap(p.Y, m.MinY, m.MaxY)
	return math.Hypot(dx, dy)
}

// DistToMBR returns the minimum Euclidean distance between the two
// rectangles (0 when they intersect).
func (m MBR) DistToMBR(o MBR) float64 {
	if m.IsEmpty() || o.IsEmpty() {
		return math.Inf(1)
	}
	dx := rangeGap(m.MinX, m.MaxX, o.MinX, o.MaxX)
	dy := rangeGap(m.MinY, m.MaxY, o.MinY, o.MaxY)
	return math.Hypot(dx, dy)
}

// OverlapFraction returns |m ∩ o| / min(|m|, |o|), the paper's criterion for
// merging candidate I/O regions ("significantly overlapped, e.g. over 80%").
// It returns 0 when either rectangle is empty or degenerate.
func (m MBR) OverlapFraction(o MBR) float64 {
	inter := m.Intersection(o).Area()
	if inter <= 0 {
		return 0
	}
	small := math.Min(m.Area(), o.Area())
	if small <= 0 {
		return 0
	}
	return inter / small
}

func axisGap(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}

func rangeGap(alo, ahi, blo, bhi float64) float64 {
	switch {
	case ahi < blo:
		return blo - ahi
	case bhi < alo:
		return alo - bhi
	default:
		return 0
	}
}

// Box3 is an axis-aligned bounding box in 3-D, used for conservative
// line-segment envelopes in the SDN structures.
type Box3 struct {
	Min, Max Vec3
}

// EmptyBox3 returns a box containing no points.
func EmptyBox3() Box3 {
	inf := math.Inf(1)
	return Box3{Min: Vec3{inf, inf, inf}, Max: Vec3{-inf, -inf, -inf}}
}

// Box3Of returns the bounding box of a set of 3-D points.
func Box3Of(pts ...Vec3) Box3 {
	b := EmptyBox3()
	for _, p := range pts {
		b = b.ExtendPoint(p)
	}
	return b
}

// IsEmpty reports whether the box contains no points.
func (b Box3) IsEmpty() bool {
	return b.Min.X > b.Max.X || b.Min.Y > b.Max.Y || b.Min.Z > b.Max.Z
}

// ExtendPoint returns the smallest box containing both b and p.
func (b Box3) ExtendPoint(p Vec3) Box3 {
	return Box3{
		Min: Vec3{math.Min(b.Min.X, p.X), math.Min(b.Min.Y, p.Y), math.Min(b.Min.Z, p.Z)},
		Max: Vec3{math.Max(b.Max.X, p.X), math.Max(b.Max.Y, p.Y), math.Max(b.Max.Z, p.Z)},
	}
}

// Union returns the smallest box containing both b and o.
func (b Box3) Union(o Box3) Box3 {
	if b.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return b
	}
	return Box3{
		Min: Vec3{math.Min(b.Min.X, o.Min.X), math.Min(b.Min.Y, o.Min.Y), math.Min(b.Min.Z, o.Min.Z)},
		Max: Vec3{math.Max(b.Max.X, o.Max.X), math.Max(b.Max.Y, o.Max.Y), math.Max(b.Max.Z, o.Max.Z)},
	}
}

// ContainsBox reports whether o lies entirely inside b.
func (b Box3) ContainsBox(o Box3) bool {
	if o.IsEmpty() {
		return true
	}
	if b.IsEmpty() {
		return false
	}
	return o.Min.X >= b.Min.X && o.Max.X <= b.Max.X &&
		o.Min.Y >= b.Min.Y && o.Max.Y <= b.Max.Y &&
		o.Min.Z >= b.Min.Z && o.Max.Z <= b.Max.Z
}

// DistToBox returns the minimum Euclidean distance between two boxes
// (0 when they intersect). This is the SDN edge weight from the paper:
// "the minimum Euclidian distance between the MBRs of the two line
// segments".
func (b Box3) DistToBox(o Box3) float64 {
	if b.IsEmpty() || o.IsEmpty() {
		return math.Inf(1)
	}
	dx := rangeGap(b.Min.X, b.Max.X, o.Min.X, o.Max.X)
	dy := rangeGap(b.Min.Y, b.Max.Y, o.Min.Y, o.Max.Y)
	dz := rangeGap(b.Min.Z, b.Max.Z, o.Min.Z, o.Max.Z)
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// DistToPoint returns the minimum Euclidean distance from p to the box
// (0 when p is inside).
func (b Box3) DistToPoint(p Vec3) float64 {
	if b.IsEmpty() {
		return math.Inf(1)
	}
	dx := axisGap(p.X, b.Min.X, b.Max.X)
	dy := axisGap(p.Y, b.Min.Y, b.Max.Y)
	dz := axisGap(p.Z, b.Min.Z, b.Max.Z)
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// XY returns the (x,y) projection of the box.
func (b Box3) XY() MBR {
	if b.IsEmpty() {
		return EmptyMBR()
	}
	return MBR{b.Min.X, b.Min.Y, b.Max.X, b.Max.Y}
}

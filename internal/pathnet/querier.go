package pathnet

import (
	"math"

	"surfknn/internal/geom"
	"surfknn/internal/graph"
	"surfknn/internal/mesh"
)

// Querier evaluates pathnet distances without mutating the shared network,
// so any number of queriers can run concurrently over one Pathnet. Instead
// of temporarily embedding the two surface points as graph vertices (the
// old Embed / trim cycle, which rewrote shared adjacency lists), the search
// treats them as virtual endpoints: the source is seeded onto the boundary
// points of its facet with the straight in-face leg as initial distance,
// and the target is evaluated lazily as each boundary point of its facet is
// settled. Both formulations compute exactly the same float sums, so the
// distances are bit-identical to the embedding approach.
//
// A Querier owns reusable scratch (distance/predecessor arrays stamped by
// query epoch, and a frontier heap), so repeated queries allocate nothing.
// It is NOT safe for concurrent use — one Querier per goroutine.
type Querier struct {
	p     *Pathnet
	dist  []float64
	prev  []int32
	stamp []uint32
	cur   uint32
	pq    *graph.Frontier
	// relaxed counts successful arc relaxations across the querier's
	// lifetime; sessions difference it around a query to report the
	// Dijkstra work that query performed.
	relaxed int64
}

// Relaxations returns the lifetime count of successful arc relaxations.
// Callers wanting per-query numbers record the value before the query and
// subtract.
func (q *Querier) Relaxations() int64 { return q.relaxed }

// NewQuerier returns a query context over the pathnet. The scratch arrays
// are sized up front — the pathnet's vertex set is fixed after Build — so
// the query path never grows them.
func (p *Pathnet) NewQuerier() *Querier {
	n := len(p.Pos)
	return &Querier{
		p:     p,
		dist:  make([]float64, n),
		prev:  make([]int32, n),
		stamp: make([]uint32, n),
		pq:    graph.NewFrontier(),
	}
}

// begin opens a new query epoch: entries stamped by earlier queries become
// logically Inf without clearing the arrays.
func (q *Querier) begin() {
	if len(q.dist) < len(q.p.Pos) {
		// Embed grew the pathnet after this querier was created; queriers
		// are for the immutable shared network only.
		panic("pathnet: querier older than the pathnet's last Embed")
	}
	q.cur++
	if q.cur == 0 { // epoch counter wrapped: old stamps are ambiguous, clear
		for i := range q.stamp {
			q.stamp[i] = 0
		}
		q.cur = 1
	}
	q.pq.Reset()
}

func (q *Querier) distAt(v int32) float64 {
	if q.stamp[v] != q.cur {
		return graph.Inf
	}
	return q.dist[v]
}

func (q *Querier) setDist(v int32, d float64, from int32) {
	q.stamp[v] = q.cur
	q.dist[v] = d
	q.prev[v] = from
}

// Distance returns the pathnet approximation of the surface distance
// between two surface points, and the 3-D polyline realising it
// (nil when unreachable).
func (q *Querier) Distance(a, b mesh.SurfacePoint) (float64, []geom.Vec3) {
	if a.Face == b.Face {
		return a.Pos.Dist(b.Pos), []geom.Vec3{a.Pos, b.Pos}
	}
	best, bestEnd := q.search(a, b, nil)
	if math.IsInf(best, 1) {
		return graph.Inf, nil
	}
	var rev []int32
	for v := bestEnd; v != -1; v = q.prev[v] {
		rev = append(rev, v)
	}
	pts := make([]geom.Vec3, 0, len(rev)+2)
	pts = append(pts, a.Pos)
	for i := len(rev) - 1; i >= 0; i-- {
		pts = append(pts, q.p.Pos[rev[i]])
	}
	pts = append(pts, b.Pos)
	return best, pts
}

// DistanceValue is Distance without the polyline: the same search, the same
// float sums, but no path reconstruction — the form the warm query path uses
// (the settle loops only compare distances, so materialising the polyline
// per call would be pure allocation).
func (q *Querier) DistanceValue(a, b mesh.SurfacePoint) float64 {
	if a.Face == b.Face {
		return a.Pos.Dist(b.Pos)
	}
	d, _ := q.search(a, b, nil)
	return d
}

// DistanceWithin behaves like Distance but ignores network vertices whose
// (x,y) position falls outside region — the search-region restriction used
// by EA and by MR3's pathnet-level refinement. Distances can only grow
// (or become +Inf) under restriction.
func (q *Querier) DistanceWithin(a, b mesh.SurfacePoint, region geom.MBR) float64 {
	if a.Face == b.Face {
		return a.Pos.Dist(b.Pos)
	}
	d, _ := q.search(a, b, &region)
	return d
}

// search runs a Dijkstra between the virtual endpoints: distances are seeded
// onto a's facet boundary points (source legs), and each settled boundary
// point of b's facet proposes dist + target leg. Once the popped priority
// reaches the best proposal no shorter path can appear (legs are
// non-negative), matching the moment the old embedded target vertex would
// have been settled. The endpoints cannot usefully act as transit vertices:
// a facet's boundary points are pairwise linked, so by the triangle
// inequality a detour through an embedded point never beats the direct
// link. region, when non-nil, restricts the search to vertices inside it.
// Returns the distance and the settled target-facet vertex realising it
// (-1 when unreachable).
//
//sklint:hotpath
func (q *Querier) search(a, b mesh.SurfacePoint, region *geom.MBR) (float64, int32) {
	q.begin()
	p := q.p
	for _, w := range p.FacePoints(a.Face) {
		if !q.inside(w, region) {
			continue
		}
		if d := a.Pos.Dist(p.Pos[w]); d < q.distAt(w) {
			q.setDist(w, d, -1)
			q.pq.Push(w, d)
		}
	}
	targets := p.FacePoints(b.Face)
	best := graph.Inf
	bestEnd := int32(-1)
	for q.pq.Len() > 0 {
		v, d := q.pq.Pop()
		if d > q.distAt(v) {
			continue // stale frontier entry
		}
		if d >= best {
			break
		}
		for _, w := range targets {
			if w == v {
				if c := d + b.Pos.Dist(p.Pos[w]); c < best {
					best, bestEnd = c, v
				}
				break
			}
		}
		for _, arc := range p.G.Arcs(int(v)) {
			if !q.inside(arc.To, region) {
				continue
			}
			if nd := d + arc.W; nd < q.distAt(arc.To) {
				q.relaxed++
				q.setDist(arc.To, nd, v)
				q.pq.Push(arc.To, nd)
			}
		}
	}
	return best, bestEnd
}

// inside reports whether vertex v falls within the (optional) search
// region. A method rather than a per-call closure: the hot search loop
// calls it statically and nothing escapes.
func (q *Querier) inside(v int32, region *geom.MBR) bool {
	return region == nil || region.Contains(q.p.Pos[v].XY())
}

package pathnet

import (
	"math"

	"surfknn/internal/geom"
	"surfknn/internal/mesh"
)

// Refiner implements Kanai & Suzuki's selective refinement (§2.3 of the
// paper): "the shortest path search operation is performed repeatedly on
// the pathnet with increasing level of resolutions in a selectively refined
// region until reaching the required accuracy". Each round doubles the
// Steiner density (bisection: 1, 3, 7, ... points per edge) but only over a
// corridor of faces around the previous round's path, so the network stays
// small while the distance converges from above.
type Refiner struct {
	// Tol stops refinement once a round improves the distance by less than
	// this relative amount (the paper allows 3% error; default 0.03).
	Tol float64
	// MaxLevel caps the bisection depth (Steiner points per edge =
	// 2^level - 1). Default 4 (up to 15 points per edge).
	MaxLevel int
	// CorridorRings controls how many face-adjacency rings around the
	// current path are included in the refined region. Default 2.
	CorridorRings int

	m   *mesh.Mesh
	loc *mesh.Locator
}

// RefineStats reports the work of one refined distance computation.
type RefineStats struct {
	Levels       int // refinement rounds run (including the initial one)
	FinalFaces   int // faces in the last corridor
	FinalNetwork int // vertices of the last network
}

// NewRefiner creates a refiner for the mesh.
func NewRefiner(m *mesh.Mesh, loc *mesh.Locator) *Refiner {
	return &Refiner{Tol: 0.03, MaxLevel: 4, CorridorRings: 2, m: m, loc: loc}
}

// Distance returns the selectively refined surface distance between two
// surface points and the refined path polyline.
func (r *Refiner) Distance(a, b mesh.SurfacePoint) (float64, []geom.Vec3, RefineStats) {
	var st RefineStats
	if a.Face == b.Face {
		st.Levels = 1
		return a.Pos.Dist(b.Pos), []geom.Vec3{a.Pos, b.Pos}, st
	}
	// Level 0: one Steiner point per edge over the whole mesh (the paper's
	// initial pathnet).
	pn := Build(r.m, 1)
	best, path := pn.Distance(a, b)
	st.Levels = 1
	st.FinalNetwork = pn.NumVertices()
	st.FinalFaces = r.m.NumFaces()
	if math.IsInf(best, 1) {
		return best, nil, st
	}
	steiner := 3
	for level := 2; level <= r.MaxLevel; level++ {
		ca := a.Corners(r.m)
		cb := b.Corners(r.m)
		ends := append(ca[:], cb[:]...)
		corridor := r.corridorFaces(path, ends)
		sub := BuildSubset(r.m, steiner, corridor)
		d, p2 := sub.Distance(a, b)
		st.Levels = level
		st.FinalFaces = len(corridor)
		st.FinalNetwork = sub.NumVertices()
		if math.IsInf(d, 1) {
			break // corridor failed to connect; keep the previous answer
		}
		improved := (best - d) / best
		if d < best {
			best = d
			path = p2
		}
		if improved < r.Tol {
			break
		}
		steiner = steiner*2 + 1
	}
	return best, path, st
}

// corridorFaces collects the faces within CorridorRings adjacency rings of
// the path polyline (plus the endpoints' faces).
func (r *Refiner) corridorFaces(path []geom.Vec3, endpoints []mesh.VertexID) []mesh.FaceID {
	seen := make(map[mesh.FaceID]bool)
	var frontier []mesh.FaceID
	addFace := func(f mesh.FaceID) {
		if f != mesh.NoFace && !seen[f] {
			seen[f] = true
			frontier = append(frontier, f)
		}
	}
	for _, p := range path {
		// A path point lies on an edge or vertex; the locator returns one
		// containing face and ring expansion picks up the rest.
		addFace(r.loc.Locate(p.XY()))
	}
	for _, v := range endpoints {
		for _, f := range r.m.FacesOfVertex(v) {
			addFace(f)
		}
	}
	for ring := 0; ring < r.CorridorRings; ring++ {
		cur := frontier
		frontier = nil
		for _, f := range cur {
			for side := 0; side < 3; side++ {
				addFace(r.m.AdjacentFace(f, side))
			}
			// Vertex-adjacent faces too, so corners of the corridor close.
			for _, v := range r.m.Faces[f] {
				for _, g := range r.m.FacesOfVertex(v) {
					addFace(g)
				}
			}
		}
	}
	out := make([]mesh.FaceID, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	return out
}

package pathnet

import (
	"sync"
	"math"
	"math/rand"
	"testing"

	"surfknn/internal/dem"
	"surfknn/internal/geom"
	"surfknn/internal/graph"
	"surfknn/internal/mesh"
)

func flatMesh(size int) *mesh.Mesh {
	return mesh.FromGrid(dem.NewGrid(size+1, size+1, 10))
}

func sp(t *testing.T, m *mesh.Mesh, loc *mesh.Locator, x, y float64) mesh.SurfacePoint {
	t.Helper()
	p, err := mesh.MakeSurfacePoint(m, loc, geom.Vec2{X: x, Y: y})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildCounts(t *testing.T) {
	m := flatMesh(2) // 9 verts, 8 faces, 16 edges
	nEdges := len(m.Edges())
	p := Build(m, 1)
	if got, want := p.NumVertices(), m.NumVerts()+nEdges; got != want {
		t.Errorf("pathnet verts = %d, want %d", got, want)
	}
	if p.SteinerPerEdge() != 1 {
		t.Errorf("SteinerPerEdge = %d", p.SteinerPerEdge())
	}
	p0 := Build(m, 0)
	if p0.NumVertices() != m.NumVerts() {
		t.Errorf("0-steiner pathnet verts = %d", p0.NumVertices())
	}
}

func TestFlatTerrainDistanceIsNearEuclidean(t *testing.T) {
	// On a flat terrain the true surface distance equals the 2-D Euclidean
	// distance; the pathnet approximation must be within a few percent and
	// never below it.
	m := flatMesh(8)
	loc := mesh.NewLocator(m)
	a := sp(t, m, loc, 5, 5)
	b := sp(t, m, loc, 72, 63)
	euclid := a.Pos.Dist(b.Pos)
	for steiner, maxOver := range map[int]float64{0: 1.09, 1: 1.05, 3: 1.03} {
		p := Build(m, steiner)
		d, path := p.Distance(a, b)
		if d < euclid-1e-9 {
			t.Errorf("steiner=%d: distance %v below Euclidean %v", steiner, d, euclid)
		}
		if d > euclid*maxOver {
			t.Errorf("steiner=%d: distance %v too far above Euclidean %v", steiner, d, euclid)
		}
		if len(path) < 2 {
			t.Errorf("steiner=%d: path too short: %v", steiner, path)
		}
		if path[0].Dist(a.Pos) > 1e-9 || path[len(path)-1].Dist(b.Pos) > 1e-9 {
			t.Errorf("steiner=%d: path endpoints wrong", steiner)
		}
		// Path length must equal the reported distance.
		if got := geom.PolylineLength(path); math.Abs(got-d) > 1e-9 {
			t.Errorf("steiner=%d: polyline length %v != distance %v", steiner, got, d)
		}
	}
}

func TestMoreSteinerPointsNeverWorse(t *testing.T) {
	m := mesh.FromGrid(dem.Synthesize(dem.BH, 16, 10, 3))
	loc := mesh.NewLocator(m)
	ext := m.Extent()
	rng := rand.New(rand.NewSource(5))
	// Bisection refinement (0, 1, 3 Steiner points) yields nested networks,
	// so distances are monotonically non-increasing. (Non-nested counts like
	// 1 vs 2 need not be comparable pointwise.)
	nets := []*Pathnet{Build(m, 0), Build(m, 1), Build(m, 3)}
	for trial := 0; trial < 10; trial++ {
		a := sp(t, m, loc, ext.MinX+rng.Float64()*ext.Width(), ext.MinY+rng.Float64()*ext.Height())
		b := sp(t, m, loc, ext.MinX+rng.Float64()*ext.Width(), ext.MinY+rng.Float64()*ext.Height())
		prev := math.Inf(1)
		for i, p := range nets {
			d, _ := p.Distance(a, b)
			if d > prev+1e-9 {
				t.Fatalf("refinement %d worsened distance: %v > %v", i, d, prev)
			}
			prev = d
		}
	}
}

func TestSameFaceDistance(t *testing.T) {
	m := flatMesh(4)
	loc := mesh.NewLocator(m)
	a := sp(t, m, loc, 1, 1)
	b := sp(t, m, loc, 2, 2)
	if a.Face != b.Face {
		t.Skip("points landed in different faces")
	}
	p := Build(m, 1)
	d, _ := p.Distance(a, b)
	if math.Abs(d-a.Pos.Dist(b.Pos)) > 1e-12 {
		t.Errorf("same-face distance = %v", d)
	}
}

func TestDistanceReusable(t *testing.T) {
	// The pathnet must return identical results when reused (embedding
	// cleanup works).
	m := mesh.FromGrid(dem.Synthesize(dem.EP, 8, 10, 4))
	loc := mesh.NewLocator(m)
	a := sp(t, m, loc, 8, 9)
	b := sp(t, m, loc, 70, 66)
	p := Build(m, 1)
	nv := p.NumVertices()
	d1, _ := p.Distance(a, b)
	if p.NumVertices() != nv {
		t.Fatalf("vertices leaked: %d -> %d", nv, p.NumVertices())
	}
	d2, _ := p.Distance(a, b)
	if d1 != d2 {
		t.Fatalf("reuse changed result: %v vs %v", d1, d2)
	}
	// And a different pair still works.
	c := sp(t, m, loc, 40, 12)
	d3, _ := p.Distance(a, c)
	if math.IsInf(d3, 1) || d3 <= 0 {
		t.Fatalf("third query broken: %v", d3)
	}
}

func TestDistanceWithin(t *testing.T) {
	m := flatMesh(8)
	loc := mesh.NewLocator(m)
	a := sp(t, m, loc, 5, 40)
	b := sp(t, m, loc, 75, 40)
	p := Build(m, 1)
	free, _ := p.Distance(a, b)
	// Region covering everything: same result.
	d := p.DistanceWithin(a, b, m.Extent())
	if math.Abs(d-free) > 1e-9 {
		t.Errorf("full-region distance %v != free %v", d, free)
	}
	// A narrow corridor that forces a detour (blocks the straight line).
	// Region excludes the middle band except a thin top corridor.
	region := geom.MBR{MinX: 0, MinY: 30, MaxX: 80, MaxY: 80}
	d2 := p.DistanceWithin(a, b, region)
	if d2 < free-1e-9 {
		t.Errorf("restricted distance %v below free %v", d2, free)
	}
	// Disconnecting region: +Inf.
	d3 := p.DistanceWithin(a, b, geom.MBR{MinX: 0, MinY: 0, MaxX: 20, MaxY: 80})
	if !math.IsInf(d3, 1) {
		t.Errorf("disconnected region distance = %v, want Inf", d3)
	}
	// Reusable after DistanceWithin too.
	d4, _ := p.Distance(a, b)
	if math.Abs(d4-free) > 1e-9 {
		t.Errorf("reuse after DistanceWithin: %v != %v", d4, free)
	}
}

func TestPathnetAgainstMeshNetwork(t *testing.T) {
	// Pathnet distance must never exceed the pure mesh network distance
	// (the pathnet contains the mesh edges as subdivided chains).
	m := mesh.FromGrid(dem.Synthesize(dem.BH, 8, 10, 7))
	g := graph.New(m.NumVerts())
	for _, e := range m.Edges() {
		g.AddEdge(int(e.A), int(e.B), m.EdgeLength(e))
	}
	p := Build(m, 1)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		u := rng.Intn(m.NumVerts())
		v := rng.Intn(m.NumVerts())
		if u == v {
			continue
		}
		want, _ := graph.DijkstraTarget(g, u, v)
		got, _ := graph.DijkstraTarget(p.G, u, v)
		if got > want+1e-9 {
			t.Fatalf("pathnet dist %v exceeds mesh network %v", got, want)
		}
	}
}

func TestNegativeSteinerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative steiner count should panic")
		}
	}()
	Build(flatMesh(2), -1)
}

func TestQuerierMatchesDistanceAndReuses(t *testing.T) {
	m := mesh.FromGrid(dem.Synthesize(dem.BH, 8, 10, 9))
	loc := mesh.NewLocator(m)
	p := Build(m, 1)
	qr := p.NewQuerier()
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 30; i++ {
		a := sp(t, m, loc, rng.Float64()*79, rng.Float64()*79)
		b := sp(t, m, loc, rng.Float64()*79, rng.Float64()*79)
		want, wantPath := p.Distance(a, b)
		got, gotPath := qr.Distance(a, b)
		if got != want {
			t.Fatalf("query %d: Querier %v != Distance %v", i, got, want)
		}
		if len(gotPath) != len(wantPath) {
			t.Fatalf("query %d: path length %d != %d", i, len(gotPath), len(wantPath))
		}
		region := geom.MBR{MinX: 0, MinY: 0, MaxX: 40 + rng.Float64()*40, MaxY: 80}
		if gw, ww := qr.DistanceWithin(a, b, region), p.DistanceWithin(a, b, region); gw != ww {
			t.Fatalf("query %d: Querier within %v != %v", i, gw, ww)
		}
	}
}

func TestConcurrentQueriers(t *testing.T) {
	// Many goroutines, one shared pathnet, one Querier each (run under
	// -race by the gate). Every goroutine must see the sequential answer.
	m := mesh.FromGrid(dem.Synthesize(dem.EP, 8, 10, 21))
	loc := mesh.NewLocator(m)
	p := Build(m, 1)
	a := sp(t, m, loc, 8, 9)
	b := sp(t, m, loc, 70, 66)
	want, _ := p.Distance(a, b)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			qr := p.NewQuerier()
			for i := 0; i < 20; i++ {
				if got, _ := qr.Distance(a, b); got != want {
					t.Errorf("concurrent distance %v != %v", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

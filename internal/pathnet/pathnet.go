// Package pathnet implements the Steiner-point refinement of a surface mesh
// used for approximate surface-distance computation (Kanai & Suzuki style),
// which the paper unifies with the DDM into the DMTM as its
// higher-than-original ("200%") resolution levels: inserting Steiner points
// into mesh edges and linking all points on each triangular facet lets
// network paths cut across facet interiors, so the network distance
// converges to the true surface distance from above.
package pathnet

import (
	"fmt"

	"surfknn/internal/geom"
	"surfknn/internal/graph"
	"surfknn/internal/mesh"
)

// Pathnet is the refined network over a mesh (or a subset of its faces).
// After Build the graph is finalized (CSR form) and the per-face boundary
// point lists are packed into one offset/slab pair — three flat buffers
// that queries chase no pointers through and snapshots serialise verbatim
// (see Flat).
type Pathnet struct {
	G   *graph.Graph
	Pos []geom.Vec3 // position of each network vertex

	m       *mesh.Mesh
	steiner int // Steiner points per edge

	// Per-face boundary points in CSR form: face f's network vertices are
	// facePts[faceOff[f]:faceOff[f+1]]. Faces excluded from a subset build
	// have empty ranges.
	faceOff []int32
	facePts []int32
}

// Build constructs a pathnet with steinerPerEdge Steiner points inserted
// into every mesh edge (0 reproduces the plain mesh network augmented with
// in-facet shortcuts between corners, which the triangle edges already
// provide, so 0 is effectively the original network).
func Build(m *mesh.Mesh, steinerPerEdge int) *Pathnet {
	return BuildSubset(m, steinerPerEdge, nil)
}

// BuildSubset constructs a pathnet over a subset of the mesh's faces (nil
// means all faces) — the "selectively refined region" of Kanai & Suzuki.
// Mesh vertices keep their IDs (graph vertices 0..NumVerts-1) even when
// excluded, so distances between vertex IDs remain meaningful; excluded
// faces contribute no Steiner points and no links.
func BuildSubset(m *mesh.Mesh, steinerPerEdge int, faces []mesh.FaceID) *Pathnet {
	if steinerPerEdge < 0 {
		panic(fmt.Sprintf("pathnet: negative steiner count %d", steinerPerEdge))
	}
	n := m.NumVerts()
	p := &Pathnet{m: m, steiner: steinerPerEdge}
	var faceList []mesh.FaceID
	if faces == nil {
		faceList = make([]mesh.FaceID, m.NumFaces())
		for i := range faceList {
			faceList[i] = mesh.FaceID(i)
		}
	} else {
		faceList = faces
	}
	p.Pos = make([]geom.Vec3, n, n+steinerPerEdge*3*len(faceList)/2)
	copy(p.Pos, m.Verts)

	// Subdivide each undirected edge of an included face once; remember the
	// point ids per edge.
	edgePoints := make(map[mesh.Edge][]int32)
	subdivide := func(ek mesh.Edge) []int32 {
		if pts, ok := edgePoints[ek]; ok {
			return pts
		}
		pts := make([]int32, steinerPerEdge)
		a, b := m.Verts[ek.A], m.Verts[ek.B]
		for i := 0; i < steinerPerEdge; i++ {
			t := float64(i+1) / float64(steinerPerEdge+1)
			pts[i] = int32(len(p.Pos))
			p.Pos = append(p.Pos, a.Lerp(b, t))
		}
		edgePoints[ek] = pts
		return pts
	}

	// First pass: create all Steiner points so the graph can be sized.
	for _, f := range faceList {
		face := m.Faces[f]
		for i := 0; i < 3; i++ {
			subdivide(normEdge(face[i], face[(i+1)%3]))
		}
	}

	p.G = graph.New(len(p.Pos))
	// Avoid duplicating the same link when two faces share an edge.
	type link struct{ a, b int32 }
	added := make(map[link]bool)
	addEdge := func(a, b int32) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		if added[link{a, b}] {
			return
		}
		added[link{a, b}] = true
		p.G.AddEdge(int(a), int(b), p.Pos[a].Dist(p.Pos[b]))
	}

	perFace := make([][]int32, m.NumFaces())
	for _, f := range faceList {
		face := m.Faces[f]
		pts := make([]int32, 0, 3+3*steinerPerEdge)
		for i := 0; i < 3; i++ {
			pts = append(pts, int32(face[i]))
			pts = append(pts, edgePoints[normEdge(face[i], face[(i+1)%3])]...)
		}
		perFace[f] = pts
		// Connect every pair of boundary points of the facet; the segment
		// between any two of them lies on the (planar) facet, so the link
		// length is a valid surface path length.
		for i := 0; i < len(pts); i++ {
			for j := i + 1; j < len(pts); j++ {
				addEdge(pts[i], pts[j])
			}
		}
	}
	p.packFacePoints(perFace)
	p.G.Finalize()
	return p
}

// packFacePoints flattens the per-face point lists into the CSR pair.
func (p *Pathnet) packFacePoints(perFace [][]int32) {
	p.faceOff = make([]int32, len(perFace)+1)
	total := 0
	for f, pts := range perFace {
		p.faceOff[f] = int32(total)
		total += len(pts)
	}
	p.faceOff[len(perFace)] = int32(total)
	p.facePts = make([]int32, total)
	for f, pts := range perFace {
		copy(p.facePts[p.faceOff[f]:], pts)
	}
}

// FacePoints returns the network vertices on face f's boundary (empty for
// faces excluded from a subset build). The slice is shared; callers must
// not modify it.
func (p *Pathnet) FacePoints(f mesh.FaceID) []int32 {
	return p.facePts[p.faceOff[f]:p.faceOff[f+1]]
}

func normEdge(a, b mesh.VertexID) mesh.Edge {
	if a > b {
		a, b = b, a
	}
	return mesh.Edge{A: a, B: b}
}

// NumVertices returns the number of network vertices (mesh vertices plus
// Steiner points).
func (p *Pathnet) NumVertices() int { return len(p.Pos) }

// SteinerPerEdge returns the refinement level the pathnet was built with.
func (p *Pathnet) SteinerPerEdge() int { return p.steiner }

// Embed adds a surface point to the network, linked to every boundary point
// of its containing facet. It mutates the pathnet — query paths use the
// non-mutating Querier instead; Embed remains for callers that own a
// private (per-query subset) pathnet, such as constrained traversal.
func (p *Pathnet) Embed(sp mesh.SurfacePoint) int {
	v := p.G.AddVertex()
	p.Pos = append(p.Pos, sp.Pos)
	for _, w := range p.FacePoints(sp.Face) {
		p.G.AddEdge(v, int(w), sp.Pos.Dist(p.Pos[w]))
	}
	return v
}

// Distance returns the pathnet approximation of the surface distance
// between two surface points, and the 3-D polyline realising it.
//
// This is a convenience wrapper that builds a throwaway Querier; callers
// issuing many distance computations (the query engine's sessions) hold a
// Querier of their own to reuse its scratch across calls. The pathnet
// itself is not mutated, so concurrent calls on distinct Queriers are safe.
func (p *Pathnet) Distance(a, b mesh.SurfacePoint) (float64, []geom.Vec3) {
	return p.NewQuerier().Distance(a, b)
}

// DistanceWithin behaves like Distance but ignores network vertices whose
// (x,y) position falls outside region — the search-region restriction used
// by EA and by MR3's pathnet-level refinement. Distances can only grow
// (or become +Inf) under restriction.
func (p *Pathnet) DistanceWithin(a, b mesh.SurfacePoint, region geom.MBR) float64 {
	return p.NewQuerier().DistanceWithin(a, b, region)
}

// DistanceToFacePoint evaluates the shortest distance to an arbitrary
// surface point given a precomputed distance field over the network (from
// graph.Dijkstra on p.G): the minimum over the point's facet boundary
// points of their network distance plus the straight in-face leg. Returns
// +Inf when the face has no points in this (possibly subset) pathnet.
func (p *Pathnet) DistanceToFacePoint(dist []float64, sp mesh.SurfacePoint) float64 {
	best := graph.Inf
	for _, w := range p.FacePoints(sp.Face) {
		if int(w) >= len(dist) {
			continue
		}
		if d := dist[w] + sp.Pos.Dist(p.Pos[w]); d < best {
			best = d
		}
	}
	return best
}

// Flat is the pathnet's persistence form: the graph's CSR buffers, the
// vertex positions and the face-point CSR pair — every query structure as
// flat arrays, written to snapshots verbatim so loading skips the whole
// Build (Steiner subdivision, facet linking) and is a straight read.
type Flat struct {
	Off     []int32
	Arcs    []graph.Arc
	Pos     []geom.Vec3
	Steiner int
	FaceOff []int32
	FacePts []int32
}

// Flatten returns the pathnet's flat buffers (shared, read-only).
func (p *Pathnet) Flatten() Flat {
	off, arcs := p.G.CSR()
	return Flat{
		Off: off, Arcs: arcs, Pos: p.Pos, Steiner: p.steiner,
		FaceOff: p.faceOff, FacePts: p.facePts,
	}
}

// FromFlat rebuilds a pathnet over m directly from its flat buffers (which
// are retained, not copied). Every pathnet edge is undirected, so the
// NumEdges counter is half the arc count.
func FromFlat(m *mesh.Mesh, f Flat) *Pathnet {
	return &Pathnet{
		G:   graph.FromCSR(f.Off, f.Arcs, len(f.Arcs)/2),
		Pos: f.Pos, m: m, steiner: f.Steiner,
		faceOff: f.FaceOff, facePts: f.FacePts,
	}
}

package pathnet

import (
	"math"
	"math/rand"
	"testing"

	"surfknn/internal/dem"
	"surfknn/internal/geodesic"
	"surfknn/internal/geom"
	"surfknn/internal/mesh"
)

func TestBuildSubset(t *testing.T) {
	m := flatMesh(4)
	// A subset of four faces around the centre.
	faces := []mesh.FaceID{0, 1, 2, 3}
	p := BuildSubset(m, 1, faces)
	// Mesh vertices keep their IDs; Steiner points only for subset edges.
	if p.NumVertices() <= m.NumVerts() {
		t.Fatalf("no Steiner points created: %d", p.NumVertices())
	}
	full := Build(m, 1)
	if p.NumVertices() >= full.NumVertices() {
		t.Errorf("subset pathnet (%d verts) should be smaller than full (%d)",
			p.NumVertices(), full.NumVertices())
	}
}

func TestRefinerConvergesOnFlat(t *testing.T) {
	m := flatMesh(8)
	loc := mesh.NewLocator(m)
	r := NewRefiner(m, loc)
	a := sp(t, m, loc, 4, 7)
	b := sp(t, m, loc, 73, 69)
	d, path, st := r.Distance(a, b)
	euclid := a.Pos.Dist(b.Pos)
	if d < euclid-1e-9 {
		t.Fatalf("refined distance %v below Euclidean %v", d, euclid)
	}
	if d > euclid*1.02 {
		t.Fatalf("refined distance %v more than 2%% above Euclidean %v", d, euclid)
	}
	if len(path) < 2 || st.Levels < 1 {
		t.Fatalf("path=%d levels=%d", len(path), st.Levels)
	}
	// Path length equals distance.
	if got := geom.PolylineLength(path); math.Abs(got-d) > 1e-9 {
		t.Errorf("polyline %v != distance %v", got, d)
	}
}

func TestRefinerAgainstExactAndDense(t *testing.T) {
	m := mesh.FromGrid(dem.Synthesize(dem.BH, 8, 10, 33))
	loc := mesh.NewLocator(m)
	r := NewRefiner(m, loc)
	exact := geodesic.NewSolver(m)
	rng := rand.New(rand.NewSource(35))
	ext := m.Extent()
	for trial := 0; trial < 6; trial++ {
		a := sp(t, m, loc, ext.MinX+rng.Float64()*ext.Width(), ext.MinY+rng.Float64()*ext.Height())
		b := sp(t, m, loc, ext.MinX+rng.Float64()*ext.Width(), ext.MinY+rng.Float64()*ext.Height())
		d, _, _ := r.Distance(a, b)
		truth := exact.Distance(a, b)
		if d < truth-1e-6 {
			t.Fatalf("refined %v below exact %v", d, truth)
		}
		if d > truth*(1+0.04) {
			t.Fatalf("refined %v more than 4%% above exact %v (tol 3%%)", d, truth)
		}
	}
}

func TestRefinerNeverWorseThanInitial(t *testing.T) {
	m := mesh.FromGrid(dem.Synthesize(dem.BH, 8, 10, 37))
	loc := mesh.NewLocator(m)
	pn := Build(m, 1)
	r := NewRefiner(m, loc)
	a := sp(t, m, loc, 8, 10)
	b := sp(t, m, loc, 68, 71)
	initial, _ := pn.Distance(a, b)
	refined, _, st := r.Distance(a, b)
	if refined > initial+1e-9 {
		t.Fatalf("refinement worsened: %v > %v", refined, initial)
	}
	if st.FinalFaces >= m.NumFaces() && st.Levels > 1 {
		t.Errorf("corridor (%d faces) did not shrink below the mesh (%d)", st.FinalFaces, m.NumFaces())
	}
}

func TestRefinerSameFace(t *testing.T) {
	m := flatMesh(4)
	loc := mesh.NewLocator(m)
	r := NewRefiner(m, loc)
	a := sp(t, m, loc, 1, 1)
	b := sp(t, m, loc, 2, 2)
	if a.Face != b.Face {
		t.Skip("points in different faces")
	}
	d, path, _ := r.Distance(a, b)
	if math.Abs(d-a.Pos.Dist(b.Pos)) > 1e-12 || len(path) != 2 {
		t.Errorf("same-face refined = %v path=%d", d, len(path))
	}
}

package geodesic

import (
	"math/rand"
	"testing"

	"surfknn/internal/dem"
	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/pathnet"
)

// TestExactAgainstDensePathnet cross-validates the solver against a very
// fine pathnet on several random terrains: the exact distance must never
// exceed the dense approximation (which is an upper bound by construction)
// and must stay within a small factor below it (the approximation converges
// from above).
func TestExactAgainstDensePathnet(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation is slow")
	}
	for _, seed := range []int64{1, 2, 3} {
		for _, preset := range []dem.Preset{dem.BH, dem.EP} {
			m := mesh.FromGrid(dem.Synthesize(preset, 4, 10, seed))
			s := NewSolver(m)
			pn := pathnet.Build(m, 15)
			rng := rand.New(rand.NewSource(seed * 31))
			loc := mesh.NewLocator(m)
			ext := m.Extent()
			for trial := 0; trial < 6; trial++ {
				pa := geom.Vec2{X: ext.MinX + rng.Float64()*ext.Width(), Y: ext.MinY + rng.Float64()*ext.Height()}
				pb := geom.Vec2{X: ext.MinX + rng.Float64()*ext.Width(), Y: ext.MinY + rng.Float64()*ext.Height()}
				a, errA := mesh.MakeSurfacePoint(m, loc, pa)
				b, errB := mesh.MakeSurfacePoint(m, loc, pb)
				if errA != nil || errB != nil {
					continue
				}
				exact := s.Distance(a, b)
				dense, _ := pn.Distance(a, b)
				if exact > dense+1e-6 {
					t.Fatalf("%s seed=%d: exact %v above dense pathnet %v", preset.Name, seed, exact, dense)
				}
				if dense > exact*1.02+1e-6 {
					t.Fatalf("%s seed=%d: dense pathnet %v more than 2%% above exact %v", preset.Name, seed, dense, exact)
				}
			}
		}
	}
}

// TestVertexToAdjacentVertex checks the trivial geodesic: between two
// vertices joined by an edge on a convex-free flat strip, the distance is
// the edge length or shorter (cutting across faces).
func TestVertexToAdjacentVertex(t *testing.T) {
	m := mesh.FromGrid(dem.Synthesize(dem.BH, 4, 10, 9))
	s := NewSolver(m)
	for _, e := range m.Edges()[:10] {
		a := mesh.SurfacePoint{Pos: m.Verts[e.A], Face: m.FacesOfVertex(e.A)[0]}
		b := mesh.SurfacePoint{Pos: m.Verts[e.B], Face: m.FacesOfVertex(e.B)[0]}
		d := s.Distance(a, b)
		if d > m.EdgeLength(e)+1e-9 {
			t.Fatalf("d(%d,%d) = %v above edge length %v", e.A, e.B, d, m.EdgeLength(e))
		}
		if d < m.Verts[e.A].Dist(m.Verts[e.B])-1e-9 {
			t.Fatalf("d(%d,%d) = %v below chord", e.A, e.B, d)
		}
	}
}

package geodesic

import (
	"math"

	"surfknn/internal/mesh"
)

// VertexDistances computes the exact geodesic distance from a source
// surface point to every mesh vertex (a geodesic distance field, the basis
// of isochrone analysis). The propagation runs to exhaustion — cost grows
// quickly with mesh size, as for single-pair queries; intended for small
// and medium meshes.
//
// An optional radius bounds the field: vertices farther than radius along
// the surface report +Inf and propagation is pruned beyond it (pass +Inf
// for the full field).
func (s *Solver) VertexDistances(src mesh.SurfacePoint, radius float64) []float64 {
	s.stats = Stats{}
	q := &query{
		s: s, a: src,
		// A target that can never be reached keeps evalTarget inert: use
		// the source's own face but rely on fieldMode to skip target logic.
		b:          src,
		vdist:      make([]float64, s.m.NumVerts()),
		winsByEdge: make([][]*window, len(s.edges)),
		best:       math.Inf(1),
		fieldMode:  true,
	}
	if radius > 0 && !math.IsInf(radius, 1) {
		// Pruning bound: nothing beyond radius matters.
		q.best = radius
	}
	for i := range q.vdist {
		q.vdist[i] = math.Inf(1)
	}
	q.seedSource()
	q.run()
	out := make([]float64, len(q.vdist))
	copy(out, q.vdist)
	if radius > 0 && !math.IsInf(radius, 1) {
		for i, d := range out {
			if d > radius {
				out[i] = math.Inf(1)
			}
		}
	}
	return out
}

// Isochrone returns the mesh vertices whose geodesic distance from src is
// at most radius, with their distances (evacuation/coverage contours).
func (s *Solver) Isochrone(src mesh.SurfacePoint, radius float64) map[mesh.VertexID]float64 {
	d := s.VertexDistances(src, radius)
	out := make(map[mesh.VertexID]float64)
	for v, dv := range d {
		if dv <= radius {
			out[mesh.VertexID(v)] = dv
		}
	}
	return out
}

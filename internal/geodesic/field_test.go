package geodesic

import (
	"math"
	"testing"

	"surfknn/internal/dem"
	"surfknn/internal/mesh"
)

func TestVertexDistancesMatchPairwise(t *testing.T) {
	m := mesh.FromGrid(dem.Synthesize(dem.BH, 4, 10, 51))
	s := NewSolver(m)
	loc := mesh.NewLocator(m)
	src := sp(t, m, loc, 12, 17)
	field := s.VertexDistances(src, math.Inf(1))
	if len(field) != m.NumVerts() {
		t.Fatalf("field size %d", len(field))
	}
	// Spot-check a handful of vertices against single-pair queries.
	for _, v := range []mesh.VertexID{0, 7, 12, 20, 24} {
		b := mesh.SurfacePoint{Pos: m.Verts[v], Face: m.FacesOfVertex(v)[0]}
		want := s.Distance(src, b)
		// The pairwise query may cut into the target's face interior; the
		// field value is the distance to the vertex itself, so they must
		// agree within tolerance.
		if math.Abs(field[v]-want) > 1e-6*(1+want) {
			t.Fatalf("vertex %d: field %v vs pairwise %v", v, field[v], want)
		}
	}
	// Euclidean floor.
	for v, d := range field {
		if d < src.Pos.Dist(m.Verts[v])-1e-9 {
			t.Fatalf("vertex %d: field %v below chord", v, d)
		}
	}
}

func TestIsochrone(t *testing.T) {
	m := mesh.FromGrid(dem.Synthesize(dem.EP, 4, 10, 52))
	s := NewSolver(m)
	loc := mesh.NewLocator(m)
	src := sp(t, m, loc, 20, 20)
	radius := 18.0
	iso := s.Isochrone(src, radius)
	if len(iso) == 0 {
		t.Fatal("empty isochrone")
	}
	full := s.VertexDistances(src, math.Inf(1))
	for v, d := range iso {
		if d > radius {
			t.Fatalf("vertex %d beyond radius: %v", v, d)
		}
		if math.Abs(full[v]-d) > 1e-6*(1+d) {
			t.Fatalf("vertex %d: isochrone %v vs full field %v", v, d, full[v])
		}
	}
	// No vertex within radius is missing.
	for v, d := range full {
		if d <= radius-1e-9 {
			if _, ok := iso[mesh.VertexID(v)]; !ok {
				t.Fatalf("vertex %d (d=%v) missing from isochrone", v, d)
			}
		}
	}
}

// Package geodesic computes exact shortest paths on a polyhedral surface by
// continuous-Dijkstra window propagation (the approach underlying Chen &
// Han's algorithm, the paper's CH baseline). Distance "windows" — intervals
// of mesh edges together with an unfolded pseudo-source — are propagated
// across faces in order of increasing distance; the target distance is the
// minimum over all windows reaching the target's face.
//
// The implementation is exact up to floating-point tolerance but, like CH,
// scales poorly with mesh size: it exists as ground truth for small meshes
// and to regenerate Fig. 7's scalability comparison.
package geodesic

import (
	"math"

	"surfknn/internal/geom"
)

// window is an interval [B0,B1] of a mesh edge (in the edge's canonical
// frame: smaller-ID endpoint at the origin, larger at (len,0)), reached by
// straight paths from the unfolded pseudo-source S (Sy <= 0) after
// accumulating Sigma distance from the real source to the pseudo-source.
// The distance to edge point (t,0) is Sigma + |S - (t,0)|.
type window struct {
	edge   int32 // edge index in the solver's edge table
	toFace int32 // face the window propagates into (-1: boundary, no propagation)
	B0, B1 float64
	S      geom.Vec2
	Sigma  float64
}

// distAt returns the window's distance value at edge parameter t.
func (w *window) distAt(t float64) float64 {
	return w.Sigma + math.Hypot(t-w.S.X, w.S.Y)
}

// minDist returns the smallest distance value over the window's interval.
func (w *window) minDist() float64 {
	t := w.S.X
	if t < w.B0 {
		t = w.B0
	} else if t > w.B1 {
		t = w.B1
	}
	return w.distAt(t)
}

// crossings returns the parameters in (lo,hi) where the distance functions
// of w and u are equal, in ascending order (at most two).
func crossings(w, u *window, lo, hi float64) []float64 {
	// Solve sqrt((t-x1)²+y1²) - sqrt((t-x2)²+y2²) = c, c = u.Sigma - w.Sigma.
	x1, y1 := w.S.X, w.S.Y
	x2, y2 := u.S.X, u.S.Y
	c := u.Sigma - w.Sigma
	// d1² - d2² = L(t) = 2t(x2-x1) + (x1²+y1²-x2²-y2²)  (linear).
	la := 2 * (x2 - x1)
	lb := x1*x1 + y1*y1 - x2*x2 - y2*y2
	var roots []float64
	add := func(t float64) {
		if t > lo+1e-12 && t < hi-1e-12 {
			// Verify it is a genuine crossing of the (unsquared) equation.
			if math.Abs(w.distAt(t)-u.distAt(t)) < 1e-6*(1+w.distAt(t)) {
				roots = append(roots, t)
			}
		}
	}
	if math.Abs(c) < 1e-15 {
		// d1 = d2 → L(t) = 0.
		if math.Abs(la) > 1e-15 {
			add(-lb / la)
		}
	} else {
		// d1 = d2 + c → d1² = d2² + 2c·d2 + c² → (L(t)-c²) = 2c·d2(t)
		// → (L(t)-c²)² = 4c²((t-x2)²+y2²): quadratic in t.
		// (la·t + lb - c²)² = 4c²(t² - 2x2·t + x2² + y2²)
		A := la*la - 4*c*c
		B := 2*la*(lb-c*c) + 8*c*c*x2
		C := (lb-c*c)*(lb-c*c) - 4*c*c*(x2*x2+y2*y2)
		if math.Abs(A) < 1e-15 {
			if math.Abs(B) > 1e-15 {
				add(-C / B)
			}
		} else {
			disc := B*B - 4*A*C
			if disc >= 0 {
				sq := math.Sqrt(disc)
				add((-B - sq) / (2 * A))
				add((-B + sq) / (2 * A))
			}
		}
	}
	if len(roots) == 2 && roots[0] > roots[1] {
		roots[0], roots[1] = roots[1], roots[0]
	}
	return roots
}

// clipAgainst returns the sub-intervals of [w.B0, w.B1] ∩ [u.B0, u.B1] where
// w is strictly better than u, plus the parts of w outside u untouched.
// It implements one-sided clipping: u is never modified, so redundant (but
// never wrong) windows may survive.
func clipAgainst(w, u *window, pieces [][2]float64) [][2]float64 {
	var out [][2]float64
	for _, p := range pieces {
		lo, hi := p[0], p[1]
		olo, ohi := math.Max(lo, u.B0), math.Min(hi, u.B1)
		if olo >= ohi {
			out = append(out, p)
			continue
		}
		// Left part outside u survives.
		if lo < olo {
			out = append(out, [2]float64{lo, olo})
		}
		// Inside the overlap, keep where w < u.
		cuts := append([]float64{olo}, crossings(w, u, olo, ohi)...)
		cuts = append(cuts, ohi)
		for i := 0; i+1 < len(cuts); i++ {
			a, b := cuts[i], cuts[i+1]
			if b-a < 1e-12 {
				continue
			}
			mid := (a + b) / 2
			if w.distAt(mid) < u.distAt(mid)-1e-12 {
				out = append(out, [2]float64{a, b})
			}
		}
		// Right part outside u survives.
		if ohi < hi {
			out = append(out, [2]float64{ohi, hi})
		}
	}
	return out
}

package geodesic

import (
	"math"
	"math/rand"
	"testing"

	"surfknn/internal/dem"
	"surfknn/internal/geom"
	"surfknn/internal/graph"
	"surfknn/internal/mesh"
	"surfknn/internal/pathnet"
)

func flatMesh(size int) *mesh.Mesh {
	return mesh.FromGrid(dem.NewGrid(size+1, size+1, 10))
}

func sp(t *testing.T, m *mesh.Mesh, loc *mesh.Locator, x, y float64) mesh.SurfacePoint {
	t.Helper()
	p, err := mesh.MakeSurfacePoint(m, loc, geom.Vec2{X: x, Y: y})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFlatMeshExactEqualsEuclidean(t *testing.T) {
	m := flatMesh(6)
	loc := mesh.NewLocator(m)
	s := NewSolver(m)
	cases := [][4]float64{
		{5, 5, 55, 45},
		{1, 1, 59, 59},
		{12, 48, 51, 7},
		{30, 30, 31, 31},
		{0, 0, 60, 0}, // along the boundary
	}
	for _, c := range cases {
		a := sp(t, m, loc, c[0], c[1])
		b := sp(t, m, loc, c[2], c[3])
		want := a.Pos.Dist(b.Pos)
		got := s.Distance(a, b)
		if math.Abs(got-want) > 1e-6*(1+want) {
			t.Errorf("flat distance (%v)-(%v) = %v, want %v", a.Pos, b.Pos, got, want)
		}
	}
}

// tentMesh builds a ridge ("tent"): two rectangular slopes meeting at a
// ridge of height h, each slope projecting to depth 1 in y.
func tentMesh(h float64) *mesh.Mesh {
	verts := []geom.Vec3{
		{X: 0, Y: 0, Z: 0}, {X: 4, Y: 0, Z: 0}, // front bottom
		{X: 0, Y: 1, Z: h}, {X: 4, Y: 1, Z: h}, // ridge
		{X: 0, Y: 2, Z: 0}, {X: 4, Y: 2, Z: 0}, // back bottom
	}
	faces := [][3]mesh.VertexID{
		{0, 1, 3}, {0, 3, 2}, // front slope
		{2, 3, 5}, {2, 5, 4}, // back slope
	}
	return mesh.New(verts, faces)
}

func TestTentGeodesicMatchesUnfolding(t *testing.T) {
	h := 1.0
	slant := math.Sqrt(1 + h*h) // slope length in the y–z plane
	m := tentMesh(h)
	loc := mesh.NewLocator(m)
	s := NewSolver(m)
	// a on the front slope at y=0.5 (halfway up), b mirrored on the back.
	a := sp(t, m, loc, 1, 0.5)
	b := sp(t, m, loc, 3, 1.5)
	// Unfold both slopes into a plane: a sits slant/2 before the ridge,
	// b slant/2 after; the geodesic is the straight line.
	want := math.Hypot(3-1, slant)
	got := s.Distance(a, b)
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("tent geodesic = %v, want %v", got, want)
	}
	// Same-slope distance is the in-plane distance.
	c := sp(t, m, loc, 3, 0.5)
	want = 2.0 // same height on the slope, straight across
	got = s.Distance(a, c)
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("same-slope geodesic = %v, want %v", got, want)
	}
}

func TestSameFaceShortcut(t *testing.T) {
	m := flatMesh(2)
	loc := mesh.NewLocator(m)
	s := NewSolver(m)
	a := sp(t, m, loc, 1, 1)
	b := sp(t, m, loc, 3, 2)
	if a.Face == b.Face {
		if got := s.Distance(a, b); math.Abs(got-a.Pos.Dist(b.Pos)) > 1e-12 {
			t.Errorf("same-face distance = %v", got)
		}
	}
}

func TestExactBracketedByBounds(t *testing.T) {
	m := mesh.FromGrid(dem.Synthesize(dem.BH, 8, 10, 21))
	loc := mesh.NewLocator(m)
	s := NewSolver(m)
	pn := pathnet.Build(m, 3)
	// Mesh network distances for the upper side.
	g := graph.New(m.NumVerts())
	for _, e := range m.Edges() {
		g.AddEdge(int(e.A), int(e.B), m.EdgeLength(e))
	}
	ext := m.Extent()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		a := sp(t, m, loc, ext.MinX+rng.Float64()*ext.Width(), ext.MinY+rng.Float64()*ext.Height())
		b := sp(t, m, loc, ext.MinX+rng.Float64()*ext.Width(), ext.MinY+rng.Float64()*ext.Height())
		exact := s.Distance(a, b)
		if s.LastStats().Capped {
			t.Fatal("solver capped on a small mesh")
		}
		chord := a.Pos.Dist(b.Pos)
		if exact < chord-1e-9 {
			t.Fatalf("exact %v below 3-D chord %v", exact, chord)
		}
		approx, _ := pn.Distance(a, b)
		if exact > approx+1e-9 {
			t.Fatalf("exact %v above pathnet approximation %v", exact, approx)
		}
		// Pathnet with 3 Steiner points should be within ~10%.
		if approx > exact*1.10+1e-9 {
			t.Fatalf("pathnet %v too far above exact %v", approx, exact)
		}
	}
}

func TestSymmetry(t *testing.T) {
	m := mesh.FromGrid(dem.Synthesize(dem.EP, 8, 10, 5))
	loc := mesh.NewLocator(m)
	s := NewSolver(m)
	a := sp(t, m, loc, 8, 12)
	b := sp(t, m, loc, 66, 70)
	d1 := s.Distance(a, b)
	d2 := s.Distance(b, a)
	if math.Abs(d1-d2) > 1e-6*(1+d1) {
		t.Errorf("asymmetric: %v vs %v", d1, d2)
	}
}

func TestTriangleInequalitySampled(t *testing.T) {
	m := mesh.FromGrid(dem.Synthesize(dem.BH, 8, 10, 13))
	loc := mesh.NewLocator(m)
	s := NewSolver(m)
	a := sp(t, m, loc, 10, 10)
	b := sp(t, m, loc, 70, 70)
	c := sp(t, m, loc, 40, 20)
	ab := s.Distance(a, b)
	ac := s.Distance(a, c)
	cb := s.Distance(c, b)
	if ab > ac+cb+1e-6 {
		t.Errorf("triangle inequality violated: %v > %v + %v", ab, ac, cb)
	}
}

func TestCappedStillReturnsBound(t *testing.T) {
	m := mesh.FromGrid(dem.Synthesize(dem.BH, 8, 10, 17))
	loc := mesh.NewLocator(m)
	s := NewSolver(m)
	s.MaxWindows = 1
	a := sp(t, m, loc, 5, 5)
	b := sp(t, m, loc, 70, 70)
	d := s.Distance(a, b)
	if math.IsInf(d, 1) || d <= 0 {
		t.Fatalf("capped distance = %v", d)
	}
	if !s.LastStats().Capped {
		t.Error("expected Capped stat")
	}
	// The capped result is still an upper bound on the true distance.
	s2 := NewSolver(m)
	exact := s2.Distance(a, b)
	if d < exact-1e-9 {
		t.Errorf("capped result %v below exact %v", d, exact)
	}
}

func TestStatsPopulated(t *testing.T) {
	m := flatMesh(4)
	loc := mesh.NewLocator(m)
	s := NewSolver(m)
	a := sp(t, m, loc, 2, 2)
	b := sp(t, m, loc, 38, 35)
	s.Distance(a, b)
	st := s.LastStats()
	if st.WindowsCreated == 0 || st.WindowsProcessed == 0 {
		t.Errorf("stats not populated: %+v", st)
	}
}

func TestExactNeverAboveNetwork(t *testing.T) {
	// The geodesic can cut across faces, so it is never longer than the
	// edge-network shortest path between two vertices.
	m := mesh.FromGrid(dem.Synthesize(dem.BH, 8, 10, 29))
	g := graph.New(m.NumVerts())
	for _, e := range m.Edges() {
		g.AddEdge(int(e.A), int(e.B), m.EdgeLength(e))
	}
	s := NewSolver(m)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 6; trial++ {
		u := mesh.VertexID(rng.Intn(m.NumVerts()))
		v := mesh.VertexID(rng.Intn(m.NumVerts()))
		if u == v {
			continue
		}
		fu := m.FacesOfVertex(u)[0]
		fv := m.FacesOfVertex(v)[0]
		a := mesh.SurfacePoint{Pos: m.Verts[u], Face: fu}
		b := mesh.SurfacePoint{Pos: m.Verts[v], Face: fv}
		net, _ := graph.DijkstraTarget(g, int(u), int(v))
		exact := s.Distance(a, b)
		if exact > net+1e-6 {
			t.Fatalf("exact %v above network %v", exact, net)
		}
	}
}

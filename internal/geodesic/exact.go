package geodesic

import (
	"container/heap"
	"math"

	"surfknn/internal/geom"
	"surfknn/internal/graph"
	"surfknn/internal/mesh"
)

// Stats reports the work done by one Distance query.
type Stats struct {
	WindowsCreated   int
	WindowsProcessed int
	VertexEvents     int
	Capped           bool // MaxWindows hit: result is an upper bound, not exact
}

// Solver computes exact geodesic distances on a fixed mesh. It precomputes
// the edge table once; queries are independent.
type Solver struct {
	// MaxWindows caps the number of windows created per query as a safety
	// valve against pathological blowup. When hit, the query returns the
	// best upper bound found so far and marks Stats.Capped.
	MaxWindows int

	debugNoClip bool // tests only: disable window clipping

	m       *mesh.Mesh
	edges   []edgeInfo
	edgeIdx map[mesh.Edge]int32
	netG    *graph.Graph // plain mesh network, for the initial upper bound

	stats Stats
}

type edgeInfo struct {
	A, B    mesh.VertexID // A < B
	Len     float64
	Faces   [2]mesh.FaceID   // adjacent faces (NoFace when boundary)
	Apex    [2]mesh.VertexID // third vertex of each adjacent face
	ApexPos [2]geom.Vec2     // apex unfolded into the canonical frame (+y)
}

// NewSolver prepares a solver for the mesh.
func NewSolver(m *mesh.Mesh) *Solver {
	s := &Solver{
		MaxWindows: 4_000_000,
		m:          m,
		edgeIdx:    make(map[mesh.Edge]int32),
		netG:       graph.New(m.NumVerts()),
	}
	for _, e := range m.Edges() {
		s.edgeIdx[e] = int32(len(s.edges))
		s.edges = append(s.edges, edgeInfo{
			A: e.A, B: e.B,
			Len:   m.EdgeLength(e),
			Faces: [2]mesh.FaceID{mesh.NoFace, mesh.NoFace},
			Apex:  [2]mesh.VertexID{mesh.NoVertex, mesh.NoVertex},
		})
		s.netG.AddEdge(int(e.A), int(e.B), m.EdgeLength(e))
	}
	for f := 0; f < m.NumFaces(); f++ {
		face := m.Faces[f]
		for i := 0; i < 3; i++ {
			a, b := face[i], face[(i+1)%3]
			apex := face[(i+2)%3]
			ek := normEdge(a, b)
			ei := s.edgeIdx[ek]
			info := &s.edges[ei]
			slot := 0
			if info.Faces[0] != mesh.NoFace {
				slot = 1
			}
			info.Faces[slot] = mesh.FaceID(f)
			info.Apex[slot] = apex
			la := m.Verts[ek.A].Dist(m.Verts[apex])
			lb := m.Verts[ek.B].Dist(m.Verts[apex])
			info.ApexPos[slot], _ = geom.PlaceApex(
				geom.Vec2{}, geom.Vec2{X: info.Len}, la, lb, +1)
		}
	}
	return s
}

func normEdge(a, b mesh.VertexID) mesh.Edge {
	if a > b {
		a, b = b, a
	}
	return mesh.Edge{A: a, B: b}
}

// LastStats returns the statistics of the most recent Distance call.
func (s *Solver) LastStats() Stats { return s.stats }

// event is a queue entry: either a window or a vertex settlement.
type event struct {
	prio float64
	win  *window
	vert int32 // valid when win == nil
}

type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].prio < h[j].prio }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// query carries the per-query state.
type query struct {
	s          *Solver
	a, b       mesh.SurfacePoint
	vdist      []float64
	winsByEdge [][]*window
	pq         eventHeap
	best       float64
	bCorners   [3]mesh.VertexID
	// fieldMode disables target evaluation: the query computes the full
	// vertex distance field instead of a single pair (see VertexDistances).
	fieldMode bool
}

// Distance returns the exact surface distance between two surface points.
func (s *Solver) Distance(a, b mesh.SurfacePoint) float64 {
	s.stats = Stats{}
	if a.Face == b.Face {
		return a.Pos.Dist(b.Pos)
	}
	q := &query{
		s: s, a: a, b: b,
		vdist:      make([]float64, s.m.NumVerts()),
		winsByEdge: make([][]*window, len(s.edges)),
		best:       math.Inf(1),
		bCorners:   b.Corners(s.m),
	}
	for i := range q.vdist {
		q.vdist[i] = math.Inf(1)
	}
	q.seedUpperBound()
	q.seedSource()
	q.run()
	return q.best
}

// seedUpperBound obtains an initial upper bound from the plain mesh network
// so that window propagation can be pruned aggressively.
func (q *query) seedUpperBound() {
	ca := q.a.Corners(q.s.m)
	cb := q.bCorners
	targets := []int{int(cb[0]), int(cb[1]), int(cb[2])}
	for _, cu := range ca {
		d := graph.DijkstraMultiTarget(q.s.netG, int(cu), targets)
		base := q.a.Pos.Dist(q.s.m.Verts[cu])
		for j, cv := range cb {
			cand := base + d[j] + q.s.m.Verts[cv].Dist(q.b.Pos)
			if cand < q.best {
				q.best = cand
			}
		}
	}
}

// seedSource plants the initial windows on the source face's edges and the
// initial vertex distances at its corners.
func (q *query) seedSource() {
	m := q.s.m
	face := m.Faces[q.a.Face]
	for i := 0; i < 3; i++ {
		va, vb := face[i], face[(i+1)%3]
		ek := normEdge(va, vb)
		ei := q.s.edgeIdx[ek]
		info := &q.s.edges[ei]
		la := q.a.Pos.Dist(m.Verts[ek.A])
		lb := q.a.Pos.Dist(m.Verts[ek.B])
		src, _ := geom.PlaceApex(geom.Vec2{}, geom.Vec2{X: info.Len}, la, lb, -1)
		toFace := info.otherFace(q.a.Face)
		w := &window{
			edge: ei, toFace: int32(toFace),
			B0: 0, B1: info.Len,
			S: src, Sigma: 0,
		}
		q.addWindow(w)
	}
	for _, v := range face {
		q.updateVertex(v, q.a.Pos.Dist(m.Verts[v]))
	}
}

func (e *edgeInfo) otherFace(f mesh.FaceID) mesh.FaceID {
	if e.Faces[0] == f {
		return e.Faces[1]
	}
	return e.Faces[0]
}

func (e *edgeInfo) slotOf(f mesh.FaceID) int {
	if e.Faces[0] == f {
		return 0
	}
	return 1
}

func (q *query) updateVertex(v mesh.VertexID, d float64) {
	if d < q.vdist[v]-1e-12 {
		q.vdist[v] = d
		heap.Push(&q.pq, event{prio: d, vert: int32(v)})
	}
}

// addWindow clips w against the existing windows on its edge and enqueues
// the surviving pieces. It also performs vertex updates at covered
// endpoints and evaluates the target when the edge borders the target face.
func (q *query) addWindow(w *window) {
	info := &q.s.edges[w.edge]
	if w.B1-w.B0 < 1e-12 {
		return
	}
	if w.minDist() >= q.best {
		return
	}
	// Vertex updates at covered endpoints.
	if w.B0 < 1e-9 {
		q.updateVertex(info.A, w.Sigma+w.S.Norm())
	}
	if w.B1 > info.Len-1e-9 {
		q.updateVertex(info.B, w.Sigma+math.Hypot(info.Len-w.S.X, w.S.Y))
	}
	q.evalTarget(w)

	pieces := [][2]float64{{w.B0, w.B1}}
	if !q.s.debugNoClip {
		for _, u := range q.winsByEdge[w.edge] {
			pieces = clipAgainst(w, u, pieces)
			if len(pieces) == 0 {
				return
			}
		}
	}
	for _, p := range pieces {
		if p[1]-p[0] < 1e-12 {
			continue
		}
		piece := &window{
			edge: w.edge, toFace: w.toFace,
			B0: p[0], B1: p[1],
			S: w.S, Sigma: w.Sigma,
		}
		if piece.minDist() >= q.best {
			continue
		}
		q.s.stats.WindowsCreated++
		q.winsByEdge[w.edge] = append(q.winsByEdge[w.edge], piece)
		heap.Push(&q.pq, event{prio: piece.minDist(), win: piece})
	}
}

// evalTarget updates the best distance using window w when its edge borders
// the target's face: the path source→(crossing point on the edge)→target,
// with the in-face leg unfolded isometrically into the edge frame.
func (q *query) evalTarget(w *window) {
	if q.fieldMode {
		return
	}
	info := &q.s.edges[w.edge]
	if info.Faces[0] != q.b.Face && info.Faces[1] != q.b.Face {
		return
	}
	la := q.b.Pos.Dist(q.s.m.Verts[info.A])
	lb := q.b.Pos.Dist(q.s.m.Verts[info.B])
	tp, _ := geom.PlaceApex(geom.Vec2{}, geom.Vec2{X: info.Len}, la, lb, +1)
	// Minimise f(t) = w.distAt(t) + |(t,0)-tp| over [B0,B1]; f is convex.
	f := func(t float64) float64 { return w.distAt(t) + math.Hypot(t-tp.X, tp.Y) }
	lo, hi := w.B0, w.B1
	for iter := 0; iter < 80 && hi-lo > 1e-12*(1+info.Len); iter++ {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if f(m1) <= f(m2) {
			hi = m2
		} else {
			lo = m1
		}
	}
	if cand := f((lo + hi) / 2); cand < q.best {
		q.best = cand
	}
}

// run processes events in order of increasing distance until no event can
// improve the best target distance.
func (q *query) run() {
	m := q.s.m
	for q.pq.Len() > 0 {
		if q.s.stats.WindowsCreated > q.s.MaxWindows {
			q.s.stats.Capped = true
			return
		}
		ev := heap.Pop(&q.pq).(event)
		if ev.prio >= q.best {
			return // nothing left can improve the answer
		}
		if ev.win == nil {
			v := mesh.VertexID(ev.vert)
			if ev.prio > q.vdist[v]+1e-12 {
				continue // stale
			}
			q.s.stats.VertexEvents++
			// Target candidate when v is a corner of the target face.
			if !q.fieldMode {
				for _, cv := range q.bCorners {
					if cv == v {
						if cand := q.vdist[v] + m.Verts[v].Dist(q.b.Pos); cand < q.best {
							q.best = cand
						}
					}
				}
			}
			// Relax along mesh edges (network fallback keeps completeness).
			for _, u := range m.VertexNeighbors(v) {
				q.updateVertex(u, q.vdist[v]+m.Verts[v].Dist(m.Verts[u]))
			}
			// Pseudo-source windows across each incident face.
			for _, f := range m.FacesOfVertex(v) {
				q.seedVertexWindow(v, f)
			}
			continue
		}
		q.s.stats.WindowsProcessed++
		q.propagate(ev.win)
	}
}

// seedVertexWindow plants a pseudo-source window from vertex v across face
// f onto the opposite edge.
func (q *query) seedVertexWindow(v mesh.VertexID, f mesh.FaceID) {
	face := q.s.m.Faces[f]
	var oa, ob mesh.VertexID
	switch v {
	case face[0]:
		oa, ob = face[1], face[2]
	case face[1]:
		oa, ob = face[2], face[0]
	default:
		oa, ob = face[0], face[1]
	}
	ek := normEdge(oa, ob)
	ei := q.s.edgeIdx[ek]
	info := &q.s.edges[ei]
	slot := info.slotOf(f)
	apex := info.ApexPos[slot] // v unfolded at +y
	w := &window{
		edge:   ei,
		toFace: int32(info.otherFace(f)),
		B0:     0, B1: info.Len,
		S:     geom.Vec2{X: apex.X, Y: -apex.Y},
		Sigma: q.vdist[v],
	}
	q.addWindow(w)
}

// propagate unfolds w across its toFace and plants windows on the two
// opposite edges.
func (q *query) propagate(w *window) {
	if w.toFace < 0 {
		return // boundary edge
	}
	if w.minDist() >= q.best {
		return
	}
	info := &q.s.edges[w.edge]
	f := mesh.FaceID(w.toFace)
	slot := info.slotOf(f)
	apexV := info.Apex[slot]
	apex := info.ApexPos[slot]
	A := geom.Vec2{}
	B := geom.Vec2{X: info.Len}

	if math.Abs(w.S.Y) < 1e-9 {
		// Degenerate wedge: the (pseudo-)source lies on the edge line.
		// When it lies within the window it is a point source on the edge
		// and illuminates the entire opposite face; otherwise the rays
		// graze along the edge and only the endpoints matter (already
		// handled by vertex updates in addWindow).
		if w.S.X >= w.B0-1e-9 && w.S.X <= w.B1+1e-9 {
			src := geom.Vec2{X: w.S.X}
			q.updateVertex(apexV, w.Sigma+apex.Sub(src).Norm())
			q.litSegment(w, f, info.A, apexV, A, apex, 0, 1, src)
			q.litSegment(w, f, apexV, info.B, apex, B, 0, 1, src)
		}
		return
	}

	d0 := geom.Vec2{X: w.B0}.Sub(w.S)
	d1 := geom.Vec2{X: w.B1}.Sub(w.S)

	// Apex illumination: the wedge contains the apex → vertex update.
	dq := apex.Sub(w.S)
	if d0.Cross(dq) <= 1e-12 && dq.Cross(d1) <= 1e-12 {
		q.updateVertex(apexV, w.Sigma+dq.Norm())
	}

	// Opposite segments (A→apex) and (apex→B).
	q.propagateOnto(w, f, info.A, apexV, A, apex, d0, d1)
	q.propagateOnto(w, f, apexV, info.B, apex, B, d0, d1)
}

// propagateOnto intersects the wedge with the segment P(va)→P(vb) (given in
// the current frame) and plants the lit sub-window onto that mesh edge.
func (q *query) propagateOnto(w *window, from mesh.FaceID, va, vb mesh.VertexID, pa, pb geom.Vec2, d0, d1 geom.Vec2) {
	// Lit t-range on the segment pa + t*(pb-pa), t in [0,1]:
	// cross(d0, p(t)-S) <= 0 and cross(p(t)-S, d1) <= 0.
	D := pb.Sub(pa)
	rel := pa.Sub(w.S)
	// g(t) = cross(d0, rel + tD) = cross(d0,rel) + t*cross(d0,D) <= 0
	lo, hi := 0.0, 1.0
	if !clipLinear(d0.Cross(rel), d0.Cross(D), &lo, &hi) {
		return
	}
	// h(t) = cross(rel + tD, d1) = cross(rel,d1) + t*cross(D,d1) <= 0
	if !clipLinear(rel.Cross(d1), D.Cross(d1), &lo, &hi) {
		return
	}
	if hi-lo < 1e-12 {
		return
	}
	q.litSegment(w, from, va, vb, pa, pb, lo, hi, w.S)
}

// litSegment plants the window covering sub-range [lo,hi] of the segment
// P(va)→P(vb) with pseudo-source src (current-frame coordinates).
func (q *query) litSegment(w *window, from mesh.FaceID, va, vb mesh.VertexID, pa, pb geom.Vec2, lo, hi float64, src geom.Vec2) {
	D := pb.Sub(pa)
	p0 := pa.Add(D.Scale(lo))
	p1 := pa.Add(D.Scale(hi))

	ek := normEdge(va, vb)
	ei, ok := q.s.edgeIdx[ek]
	if !ok {
		return
	}
	info := &q.s.edges[ei]
	// Canonical frame of the new edge: smaller vertex at origin.
	var o, e2 geom.Vec2
	if ek.A == va {
		o, e2 = pa, pb
	} else {
		o, e2 = pb, pa
	}
	ux := e2.Sub(o).Scale(1 / info.Len)
	uy := geom.Vec2{X: -ux.Y, Y: ux.X}
	xform := func(p geom.Vec2) geom.Vec2 {
		r := p.Sub(o)
		return geom.Vec2{X: r.Dot(ux), Y: r.Dot(uy)}
	}
	s2 := xform(src)
	if s2.Y > 0 {
		s2.Y = -s2.Y // reflection: keep the source below the edge
	}
	t0 := xform(p0).X
	t1 := xform(p1).X
	if t0 > t1 {
		t0, t1 = t1, t0
	}
	// Clamp to the edge (numerical safety).
	if t0 < 0 {
		t0 = 0
	}
	if t1 > info.Len {
		t1 = info.Len
	}
	q.addWindow(&window{
		edge:   ei,
		toFace: int32(info.otherFace(from)),
		B0:     t0, B1: t1,
		S: s2, Sigma: w.Sigma,
	})
}

// clipLinear restricts [lo,hi] to where c + t*m <= 0; reports false when the
// result is empty.
func clipLinear(c, m float64, lo, hi *float64) bool {
	const eps = 1e-12
	if math.Abs(m) < eps {
		return c <= eps
	}
	t := -c / m
	if m > 0 {
		// c + t*m increasing: need t <= root.
		if t < *hi {
			*hi = t
		}
	} else {
		if t > *lo {
			*lo = t
		}
	}
	return *hi-*lo > -eps
}

// Distance is a convenience wrapper constructing a throw-away solver.
func Distance(m *mesh.Mesh, a, b mesh.SurfacePoint) float64 {
	return NewSolver(m).Distance(a, b)
}

// Package dem models digital elevation data. The paper builds its terrain
// surfaces from USGS DEM files of Bearhead Mountain (rugged) and Eagle Peak
// (smoother); those files are not redistributable here, so this package
// synthesises statistically comparable elevation grids with a controllable
// roughness (see Synthesize and the BH/EP presets) and provides a simple
// binary file format for persisting them.
package dem

import (
	"fmt"

	"surfknn/internal/geom"
)

// Grid is a regular elevation grid: Elev[row*Cols+col] is the elevation at
// (OriginX + col·CellSize, OriginY + row·CellSize).
type Grid struct {
	Cols, Rows       int
	CellSize         float64 // horizontal spacing between samples
	OriginX, OriginY float64
	Elev             []float64 // row-major, len == Cols*Rows
}

// NewGrid allocates a zero-elevation grid.
func NewGrid(cols, rows int, cellSize float64) *Grid {
	if cols < 2 || rows < 2 {
		panic(fmt.Sprintf("dem: grid must be at least 2x2, got %dx%d", cols, rows))
	}
	if cellSize <= 0 {
		panic(fmt.Sprintf("dem: cell size must be positive, got %g", cellSize))
	}
	return &Grid{
		Cols:     cols,
		Rows:     rows,
		CellSize: cellSize,
		Elev:     make([]float64, cols*rows),
	}
}

// At returns the elevation at grid position (col, row).
func (g *Grid) At(col, row int) float64 { return g.Elev[row*g.Cols+col] }

// Set assigns the elevation at grid position (col, row).
func (g *Grid) Set(col, row int, z float64) { g.Elev[row*g.Cols+col] = z }

// Point returns the 3-D sample point at grid position (col, row).
func (g *Grid) Point(col, row int) geom.Vec3 {
	return geom.Vec3{
		X: g.OriginX + float64(col)*g.CellSize,
		Y: g.OriginY + float64(row)*g.CellSize,
		Z: g.At(col, row),
	}
}

// Samples returns the total number of elevation samples.
func (g *Grid) Samples() int { return g.Cols * g.Rows }

// Extent returns the (x,y) bounding rectangle covered by the grid.
func (g *Grid) Extent() geom.MBR {
	return geom.MBR{
		MinX: g.OriginX,
		MinY: g.OriginY,
		MaxX: g.OriginX + float64(g.Cols-1)*g.CellSize,
		MaxY: g.OriginY + float64(g.Rows-1)*g.CellSize,
	}
}

// AreaKm2 returns the covered area in km², assuming coordinates are metres.
// The paper's object density o is expressed in objects per km².
func (g *Grid) AreaKm2() float64 {
	e := g.Extent()
	return e.Width() * e.Height() / 1e6
}

// MinMaxElev returns the lowest and highest sample elevations.
func (g *Grid) MinMaxElev() (lo, hi float64) {
	lo, hi = g.Elev[0], g.Elev[0]
	for _, z := range g.Elev {
		if z < lo {
			lo = z
		}
		if z > hi {
			hi = z
		}
	}
	return lo, hi
}

// Roughness returns the mean absolute elevation difference between
// horizontally/vertically adjacent samples, normalised by cell size — a
// simple dimensionless slope statistic used to verify that the BH preset is
// substantially more rugged than EP.
func (g *Grid) Roughness() float64 {
	var sum float64
	var n int
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			z := g.At(c, r)
			if c+1 < g.Cols {
				sum += abs(z - g.At(c+1, r))
				n++
			}
			if r+1 < g.Rows {
				sum += abs(z - g.At(c, r+1))
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / (float64(n) * g.CellSize)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

package dem

import (
	"bytes"
	"errors"
	"math"
	"path/filepath"
	"testing"
)

func TestNewGridValidation(t *testing.T) {
	t.Parallel()
	for _, c := range []struct{ cols, rows int }{{1, 5}, {5, 1}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGrid(%d,%d) should panic", c.cols, c.rows)
				}
			}()
			NewGrid(c.cols, c.rows, 10)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewGrid with zero cell size should panic")
			}
		}()
		NewGrid(4, 4, 0)
	}()
}

func TestGridAccessors(t *testing.T) {
	t.Parallel()
	g := NewGrid(3, 2, 10)
	g.OriginX, g.OriginY = 100, 200
	g.Set(2, 1, 42)
	if got := g.At(2, 1); got != 42 {
		t.Errorf("At = %v", got)
	}
	p := g.Point(2, 1)
	if p.X != 120 || p.Y != 210 || p.Z != 42 {
		t.Errorf("Point = %v", p)
	}
	if g.Samples() != 6 {
		t.Errorf("Samples = %d", g.Samples())
	}
	e := g.Extent()
	if e.MinX != 100 || e.MaxX != 120 || e.MinY != 200 || e.MaxY != 210 {
		t.Errorf("Extent = %v", e)
	}
}

func TestAreaKm2(t *testing.T) {
	t.Parallel()
	// 101x101 samples at 10 m → 1 km x 1 km.
	g := NewGrid(101, 101, 10)
	if got := g.AreaKm2(); math.Abs(got-1) > 1e-12 {
		t.Errorf("AreaKm2 = %v, want 1", got)
	}
}

func TestMinMaxElev(t *testing.T) {
	t.Parallel()
	g := NewGrid(2, 2, 1)
	g.Elev = []float64{3, -1, 7, 2}
	lo, hi := g.MinMaxElev()
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v,%v", lo, hi)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	t.Parallel()
	a := Synthesize(BH, 32, 10, 7)
	b := Synthesize(BH, 32, 10, 7)
	for i := range a.Elev {
		if a.Elev[i] != b.Elev[i] {
			t.Fatalf("same seed must give identical terrain (index %d)", i)
		}
	}
	c := Synthesize(BH, 32, 10, 8)
	same := true
	for i := range a.Elev {
		if a.Elev[i] != c.Elev[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should give different terrain")
	}
}

func TestSynthesizeShape(t *testing.T) {
	t.Parallel()
	g := Synthesize(EP, 64, 10, 1)
	if g.Cols != 65 || g.Rows != 65 {
		t.Fatalf("dims = %dx%d", g.Cols, g.Rows)
	}
	lo, hi := g.MinMaxElev()
	if lo < 0 || hi <= lo {
		t.Errorf("elevation range [%v,%v] invalid", lo, hi)
	}
	// Relief normalisation: peak-to-valley span equals Relief*width.
	width := 64.0 * 10
	if math.Abs((hi-lo)-EP.Relief*width) > 1e-6 {
		t.Errorf("relief = %v, want %v", hi-lo, EP.Relief*width)
	}
}

func TestSynthesizeSizeValidation(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two size should panic")
		}
	}()
	Synthesize(BH, 33, 10, 1)
}

func TestBHRougherThanEP(t *testing.T) {
	t.Parallel()
	bh := Synthesize(BH, 128, 10, 42)
	ep := Synthesize(EP, 128, 10, 42)
	rb, re := bh.Roughness(), ep.Roughness()
	if rb <= 1.5*re {
		t.Errorf("BH roughness %v should clearly exceed EP roughness %v", rb, re)
	}
}

func TestRoundTrip(t *testing.T) {
	t.Parallel()
	g := Synthesize(BH, 16, 25, 3)
	g.OriginX, g.OriginY = -500, 1234.5
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cols != g.Cols || got.Rows != g.Rows || got.CellSize != g.CellSize ||
		got.OriginX != g.OriginX || got.OriginY != g.OriginY {
		t.Fatalf("header mismatch: %+v vs %+v", got, g)
	}
	for i := range g.Elev {
		if got.Elev[i] != g.Elev[i] {
			t.Fatalf("elevation mismatch at %d", i)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	t.Parallel()
	_, err := Read(bytes.NewReader([]byte("not a dem file at all")))
	if err == nil {
		t.Error("garbage should fail")
	}
	if !errors.Is(err, ErrBadFormat) {
		t.Errorf("bad magic should wrap ErrBadFormat, got %v", err)
	}
	// Correct magic, truncated body.
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.Write(make([]byte, 4))
	if _, err := Read(&buf); err == nil {
		t.Error("truncated header should fail")
	}
}

func TestFileRoundTrip(t *testing.T) {
	t.Parallel()
	g := Synthesize(EP, 8, 30, 11)
	path := filepath.Join(t.TempDir(), "t.sdem")
	if err := g.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Samples() != g.Samples() {
		t.Fatalf("samples = %d, want %d", got.Samples(), g.Samples())
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.sdem")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestRoughnessFlat(t *testing.T) {
	t.Parallel()
	g := NewGrid(8, 8, 10)
	if got := g.Roughness(); got != 0 {
		t.Errorf("flat roughness = %v", got)
	}
}

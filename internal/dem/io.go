package dem

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// The on-disk format is deliberately simple: a fixed header followed by
// row-major float64 elevations, all little-endian. It plays the role of the
// USGS DEM files in the paper's setup.
//
//	magic    [4]byte  "SDEM"
//	version  uint32   1
//	cols     uint32
//	rows     uint32
//	cellSize float64
//	originX  float64
//	originY  float64
//	elev     [cols*rows]float64

var magic = [4]byte{'S', 'D', 'E', 'M'}

const formatVersion = 1

// ErrBadFormat marks structurally invalid DEM input — a bad magic number,
// unsupported version, implausible dimensions or malformed ArcGrid text —
// as opposed to I/O failures from the underlying reader. Callers select it
// with errors.Is to distinguish "this file is not a DEM" from "the read
// failed".
var ErrBadFormat = errors.New("dem: bad format")

// Write serialises the grid to w.
func (g *Grid) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return fmt.Errorf("dem: write header: %w", err)
	}
	hdr := []any{
		uint32(formatVersion), uint32(g.Cols), uint32(g.Rows),
		g.CellSize, g.OriginX, g.OriginY,
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("dem: write header: %w", err)
		}
	}
	buf := make([]byte, 8)
	for _, z := range g.Elev {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(z))
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("dem: write elevations: %w", err)
		}
	}
	return bw.Flush()
}

// Read deserialises a grid from r.
func Read(r io.Reader) (*Grid, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("dem: read magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, m)
	}
	var version, cols, rows uint32
	var cellSize, originX, originY float64
	for _, p := range []any{&version, &cols, &rows, &cellSize, &originX, &originY} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("dem: read header: %w", err)
		}
	}
	if version != formatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, version)
	}
	if cols < 2 || rows < 2 || cols > 1<<20 || rows > 1<<20 {
		return nil, fmt.Errorf("%w: implausible dimensions %dx%d", ErrBadFormat, cols, rows)
	}
	if cellSize <= 0 || math.IsNaN(cellSize) || math.IsInf(cellSize, 0) {
		return nil, fmt.Errorf("%w: invalid cell size %g", ErrBadFormat, cellSize)
	}
	g := NewGrid(int(cols), int(rows), cellSize)
	g.OriginX, g.OriginY = originX, originY
	buf := make([]byte, 8)
	for i := range g.Elev {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("dem: read elevations: %w", err)
		}
		g.Elev[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	return g, nil
}

// WriteFile writes the grid to the named file.
func (g *Grid) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dem: %w", err)
	}
	if err := g.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a grid from the named file.
func ReadFile(path string) (*Grid, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dem: %w", err)
	}
	defer f.Close()
	return Read(f)
}

package dem

import (
	"math"
	"math/rand"
)

// Preset selects a synthetic terrain character. The two presets are
// calibrated so that the surface-distance / Euclidean-distance ratio of BH
// is clearly larger than EP's, mirroring the paper's Bearhead-vs-Eagle-Peak
// contrast (§5.1: "The Bearhead area has more mountains than Eagle Peak").
type Preset struct {
	Name       string
	Roughness  float64 // fractal roughness in (0,1]: higher = more rugged
	Relief     float64 // peak-to-valley elevation range as fraction of grid width
	RidgeGain  float64 // 0 = plain fBm, 1 = strongly ridged (sharp crests)
	OctaveGain float64 // amplitude decay per octave (persistence)
}

// BH approximates the rugged Bearhead Mountain (WA) dataset. The knobs are
// calibrated so that surface paths run tens of percent longer than their
// Euclidean chords on average (the paper reports extremes of 200–300 % for
// its 10 m-resolution Bearhead data; at this library's coarser synthetic
// sampling the stylised preset reaches roughly a quarter of that while
// preserving the BH ≫ EP ordering every experiment depends on).
var BH = Preset{Name: "BH", Roughness: 1.0, Relief: 0.7, RidgeGain: 0.95, OctaveGain: 0.75}

// EP approximates the gentler Eagle Peak (WY) dataset.
var EP = Preset{Name: "EP", Roughness: 0.45, Relief: 0.12, RidgeGain: 0.25, OctaveGain: 0.45}

// Synthesize generates a (size+1)×(size+1) elevation grid (size must be a
// power of two) using value-noise fBm with optional ridging, covering
// size·cellSize metres on each side. The same seed always yields the same
// terrain.
func Synthesize(p Preset, size int, cellSize float64, seed int64) *Grid {
	if size < 2 || size&(size-1) != 0 {
		panic("dem: size must be a power of two >= 2")
	}
	n := size + 1
	g := NewGrid(n, n, cellSize)
	rng := rand.New(rand.NewSource(seed))

	// Lattice gradients for value noise, one lattice per octave.
	octaves := 1
	for s := size; s > 2; s >>= 1 {
		octaves++
	}
	if octaves > 10 {
		octaves = 10
	}
	amp := 1.0
	totalAmp := 0.0
	width := float64(size) * cellSize
	for o := 0; o < octaves; o++ {
		freq := float64(int(1) << o) // lattice cells across the grid
		lat := newValueLattice(rng, int(freq)+2)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				u := float64(c) / float64(size) * freq
				v := float64(r) / float64(size) * freq
				h := lat.sample(u, v)
				if p.RidgeGain > 0 {
					// Ridged multifractal: fold noise about zero to create
					// sharp crests, blended with plain fBm by RidgeGain.
					ridged := 1 - math.Abs(h)
					h = (1-p.RidgeGain)*h + p.RidgeGain*(ridged*2-1)
				}
				g.Elev[r*n+c] += amp * h
			}
		}
		totalAmp += amp
		amp *= p.OctaveGain * p.Roughness
	}

	// Normalise to the requested relief.
	lo, hi := g.MinMaxElev()
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	target := p.Relief * width
	for i := range g.Elev {
		g.Elev[i] = (g.Elev[i] - lo) / span * target
	}
	_ = totalAmp
	return g
}

// valueLattice is a grid of random values in [-1,1] sampled with smoothstep
// bilinear interpolation — a deterministic, allocation-light noise source.
type valueLattice struct {
	n    int
	vals []float64
}

func newValueLattice(rng *rand.Rand, n int) *valueLattice {
	l := &valueLattice{n: n, vals: make([]float64, n*n)}
	for i := range l.vals {
		l.vals[i] = rng.Float64()*2 - 1
	}
	return l
}

func (l *valueLattice) at(i, j int) float64 {
	if i < 0 {
		i = 0
	}
	if j < 0 {
		j = 0
	}
	if i >= l.n {
		i = l.n - 1
	}
	if j >= l.n {
		j = l.n - 1
	}
	return l.vals[j*l.n+i]
}

func (l *valueLattice) sample(u, v float64) float64 {
	i := int(math.Floor(u))
	j := int(math.Floor(v))
	fu := smooth(u - float64(i))
	fv := smooth(v - float64(j))
	v00 := l.at(i, j)
	v10 := l.at(i+1, j)
	v01 := l.at(i, j+1)
	v11 := l.at(i+1, j+1)
	a := v00 + (v10-v00)*fu
	b := v01 + (v11-v01)*fu
	return a + (b-a)*fv
}

func smooth(t float64) float64 { return t * t * (3 - 2*t) }

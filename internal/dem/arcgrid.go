package dem

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ReadArcGrid parses the Esri ASCII grid (ArcGrid / .asc) format, the
// common interchange format for USGS-style DEM data — the real-world entry
// point replacing the paper's DEM files:
//
//	ncols         4
//	nrows         3
//	xllcorner     500000.0
//	yllcorner     4000000.0
//	cellsize      10.0
//	NODATA_value  -9999
//	1.0 2.0 3.0 4.0
//	...
//
// Rows are stored north-to-south in the file and flipped into this
// package's south-to-north convention. NODATA cells are filled with the
// minimum valid elevation (terrain queries need a complete surface); a
// fully-NODATA grid is an error.
func ReadArcGrid(r io.Reader) (*Grid, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	sc.Split(bufio.ScanWords)
	next := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", io.ErrUnexpectedEOF
		}
		return sc.Text(), nil
	}

	hdr := map[string]float64{}
	var firstValue string
	for len(hdr) < 6 {
		key, err := next()
		if err != nil {
			return nil, fmt.Errorf("dem: arcgrid header: %w", err)
		}
		lk := strings.ToLower(key)
		switch lk {
		case "ncols", "nrows", "xllcorner", "yllcorner", "xllcenter", "yllcenter", "cellsize", "nodata_value":
			vs, err := next()
			if err != nil {
				return nil, fmt.Errorf("dem: arcgrid header value for %s: %w", key, err)
			}
			v, err := strconv.ParseFloat(vs, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: arcgrid header %s: %w", ErrBadFormat, key, err)
			}
			if lk == "xllcenter" {
				lk = "xllcorner"
			}
			if lk == "yllcenter" {
				lk = "yllcorner"
			}
			hdr[lk] = v
		default:
			// Headers are optional beyond ncols/nrows/cellsize; the first
			// non-header token is the first elevation value.
			firstValue = key
			goto data
		}
	}
data:
	cols := int(hdr["ncols"])
	rows := int(hdr["nrows"])
	cell := hdr["cellsize"]
	if cols < 2 || rows < 2 {
		return nil, fmt.Errorf("%w: arcgrid dimensions %dx%d invalid", ErrBadFormat, cols, rows)
	}
	if cell <= 0 {
		return nil, fmt.Errorf("%w: arcgrid cellsize %g invalid", ErrBadFormat, cell)
	}
	nodata, hasNodata := hdr["nodata_value"]

	g := NewGrid(cols, rows, cell)
	g.OriginX = hdr["xllcorner"]
	g.OriginY = hdr["yllcorner"]

	total := cols * rows
	vals := make([]float64, 0, total)
	if firstValue != "" {
		v, err := strconv.ParseFloat(firstValue, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: arcgrid value %q: %w", ErrBadFormat, firstValue, err)
		}
		vals = append(vals, v)
	}
	for len(vals) < total {
		tok, err := next()
		if err != nil {
			return nil, fmt.Errorf("dem: arcgrid data (got %d of %d values): %w", len(vals), total, err)
		}
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: arcgrid value %q: %w", ErrBadFormat, tok, err)
		}
		vals = append(vals, v)
	}

	// Find the minimum valid elevation for NODATA filling.
	minValid := math.Inf(1)
	for _, v := range vals {
		//lint:ignore float-eq NODATA is an exact sentinel parsed from the same text as the values; epsilon matching could swallow real elevations
		if (!hasNodata || v != nodata) && v < minValid {
			minValid = v
		}
	}
	if math.IsInf(minValid, 1) {
		return nil, fmt.Errorf("%w: arcgrid contains no valid elevations", ErrBadFormat)
	}
	// File rows run north→south; flip to this package's row order.
	for fr := 0; fr < rows; fr++ {
		gr := rows - 1 - fr
		for c := 0; c < cols; c++ {
			v := vals[fr*cols+c]
			//lint:ignore float-eq NODATA is an exact sentinel parsed from the same text as the values
			if hasNodata && v == nodata {
				v = minValid
			}
			g.Set(c, gr, v)
		}
	}
	return g, nil
}

// WriteArcGrid serialises the grid in Esri ASCII format (the inverse of
// ReadArcGrid, NODATA-free).
func (g *Grid) WriteArcGrid(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "ncols %d\nnrows %d\nxllcorner %g\nyllcorner %g\ncellsize %g\nNODATA_value -9999\n",
		g.Cols, g.Rows, g.OriginX, g.OriginY, g.CellSize)
	for fr := 0; fr < g.Rows; fr++ {
		gr := g.Rows - 1 - fr // north first
		for c := 0; c < g.Cols; c++ {
			if c > 0 {
				bw.WriteByte(' ')
			}
			fmt.Fprintf(bw, "%g", g.At(c, gr))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

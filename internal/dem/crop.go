package dem

import "fmt"

// Crop returns the cols×rows sub-grid of g anchored at (col0, row0). The
// origin is shifted so the cropped grid keeps its absolute coordinates.
// Fig. 7's vertex-count sweep crops one synthesized terrain to increasing
// sizes so every data point shares the same geography.
func (g *Grid) Crop(col0, row0, cols, rows int) (*Grid, error) {
	if col0 < 0 || row0 < 0 || cols < 2 || rows < 2 ||
		col0+cols > g.Cols || row0+rows > g.Rows {
		return nil, fmt.Errorf("dem: crop %dx%d@(%d,%d) out of %dx%d grid",
			cols, rows, col0, row0, g.Cols, g.Rows)
	}
	out := NewGrid(cols, rows, g.CellSize)
	out.OriginX = g.OriginX + float64(col0)*g.CellSize
	out.OriginY = g.OriginY + float64(row0)*g.CellSize
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			out.Set(c, r, g.At(col0+c, row0+r))
		}
	}
	return out, nil
}

package dem

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

const sampleAsc = `ncols 4
nrows 3
xllcorner 500.0
yllcorner 4000.0
cellsize 10.0
NODATA_value -9999
9 10 11 12
5 6 7 8
1 2 3 4
`

func TestReadArcGrid(t *testing.T) {
	t.Parallel()
	g, err := ReadArcGrid(strings.NewReader(sampleAsc))
	if err != nil {
		t.Fatal(err)
	}
	if g.Cols != 4 || g.Rows != 3 || g.CellSize != 10 {
		t.Fatalf("dims = %dx%d cell %g", g.Cols, g.Rows, g.CellSize)
	}
	if g.OriginX != 500 || g.OriginY != 4000 {
		t.Errorf("origin = %g,%g", g.OriginX, g.OriginY)
	}
	// File top row (9..12) is the NORTH row → highest grid row.
	if got := g.At(0, 2); got != 9 {
		t.Errorf("north-west = %v, want 9", got)
	}
	if got := g.At(3, 0); got != 4 {
		t.Errorf("south-east = %v, want 4", got)
	}
}

func TestReadArcGridNodata(t *testing.T) {
	t.Parallel()
	asc := strings.Replace(sampleAsc, "5 6 7 8", "5 -9999 7 8", 1)
	g, err := ReadArcGrid(strings.NewReader(asc))
	if err != nil {
		t.Fatal(err)
	}
	// NODATA filled with the minimum valid elevation (1).
	if got := g.At(1, 1); got != 1 {
		t.Errorf("nodata fill = %v, want 1", got)
	}
}

func TestReadArcGridErrors(t *testing.T) {
	t.Parallel()
	cases := map[string]struct {
		asc       string
		badFormat bool // structurally invalid (ErrBadFormat) vs truncated input
	}{
		"truncated data": {"ncols 4\nnrows 3\ncellsize 10\n1 2 3\n", false},
		"bad value":      {"ncols 2\nnrows 2\ncellsize 10\n1 2 3 x\n", true},
		"zero cells":     {"ncols 0\nnrows 3\ncellsize 10\n1 2 3\n", true},
		"negative cell":  {"ncols 2\nnrows 2\ncellsize -5\n1 2 3 4\n", true},
		"all nodata":     {"ncols 2\nnrows 2\ncellsize 10\nNODATA_value -9\n-9 -9 -9 -9\n", true},
		"bad header":     {"ncols x\n", true},
		"empty":          {"", false},
	}
	for name, tc := range cases {
		_, err := ReadArcGrid(strings.NewReader(tc.asc))
		if err == nil {
			t.Errorf("%s: expected error", name)
			continue
		}
		if got := errors.Is(err, ErrBadFormat); got != tc.badFormat {
			t.Errorf("%s: errors.Is(err, ErrBadFormat) = %v, want %v (err: %v)", name, got, tc.badFormat, err)
		}
	}
}

func TestArcGridRoundTrip(t *testing.T) {
	t.Parallel()
	g := Synthesize(EP, 8, 25, 13)
	g.OriginX, g.OriginY = 1234, 5678
	var buf bytes.Buffer
	if err := g.WriteArcGrid(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArcGrid(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cols != g.Cols || got.Rows != g.Rows || got.OriginX != g.OriginX {
		t.Fatalf("header mismatch")
	}
	for i := range g.Elev {
		if got.Elev[i] != g.Elev[i] {
			t.Fatalf("elevation mismatch at %d: %v vs %v", i, got.Elev[i], g.Elev[i])
		}
	}
}

func TestReadArcGridXllcenter(t *testing.T) {
	t.Parallel()
	asc := strings.Replace(sampleAsc, "xllcorner", "xllcenter", 1)
	g, err := ReadArcGrid(strings.NewReader(asc))
	if err != nil {
		t.Fatal(err)
	}
	if g.OriginX != 500 {
		t.Errorf("xllcenter accepted as origin: %v", g.OriginX)
	}
}

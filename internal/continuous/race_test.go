package continuous

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"surfknn/internal/core"
	"surfknn/internal/geom"
	"surfknn/internal/workload"
)

// TestConcurrentMoversAndWriter runs eight movers random-walking their
// subscriptions against one writer churning the object store. Every
// delivered result whose epoch still matches a fresh engine query's epoch
// must be bit-identical to it — IDs, order, and both distance bounds —
// whether it came from the safe-region cache, an epoch re-stamp, or a
// stripe re-evaluation. Run with -race this also shakes out data races
// between the monitor, the batcher and the store's notify path.
func TestConcurrentMoversAndWriter(t *testing.T) {
	db := newTestDB(t, 100, 61)
	mon, err := New(db, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	const (
		movers       = 8
		movesPerGoro = 25
		writes       = 20
	)
	var (
		wg        sync.WaitGroup
		compared  atomic.Int64
		hits      atomic.Int64
		checkerMu sync.Mutex // fresh-query sessions are cheap; serialise for determinism of the epoch read
	)

	// verify re-queries the engine at the delivered result's anchor and, when
	// no write slipped in between (same epoch), demands bit-identity.
	verify := func(res core.Result, sr core.SafeRegion, k int) {
		checkerMu.Lock()
		defer checkerMu.Unlock()
		qp, err := db.SurfacePointAt(sr.Center)
		if err != nil {
			t.Errorf("anchor %v left the surface: %v", sr.Center, err)
			return
		}
		fresh, err := db.MR3(qp, k, core.S1, core.Options{})
		if err != nil {
			t.Errorf("fresh query at %v: %v", sr.Center, err)
			return
		}
		if fresh.Epoch != res.Epoch {
			return // a write raced in between; nothing to compare
		}
		if len(fresh.Neighbors) != len(res.Neighbors) {
			t.Errorf("epoch %d at %v: delivered %d neighbours, fresh %d",
				res.Epoch, sr.Center, len(res.Neighbors), len(fresh.Neighbors))
			return
		}
		for i := range fresh.Neighbors {
			d, f := res.Neighbors[i], fresh.Neighbors[i]
			if d.Object.ID != f.Object.ID || d.LB != f.LB || d.UB != f.UB {
				t.Errorf("epoch %d at %v rank %d: delivered (%d, %x, %x) != fresh (%d, %x, %x)",
					res.Epoch, sr.Center, i+1,
					d.Object.ID, d.LB, d.UB, f.Object.ID, f.LB, f.UB)
				return
			}
		}
		compared.Add(1)
	}

	for mi := 0; mi < movers; mi++ {
		wg.Add(1)
		go func(mi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + mi)))
			base := geom.Vec2{X: 40 + 10*float64(mi) + 0.7, Y: 70 + 5*float64(mi%3) + 0.3}
			q, err := db.SurfacePointAt(base)
			if err != nil {
				t.Errorf("mover %d base %v: %v", mi, base, err)
				return
			}
			id, res, sr, err := mon.Subscribe(nil, q, 3, core.S1, core.Options{})
			if err != nil {
				t.Errorf("mover %d subscribe: %v", mi, err)
				return
			}
			verify(res, sr, 3)
			p := base
			for step := 0; step < movesPerGoro; step++ {
				p.X += (rng.Float64() - 0.5) * 4
				p.Y += (rng.Float64() - 0.5) * 4
				if p.X < 10 || p.X > 150 || p.Y < 10 || p.Y > 150 {
					p = base
				}
				res, sr, hit, err := mon.Move(nil, id, p)
				if err != nil {
					t.Errorf("mover %d move to %v: %v", mi, p, err)
					return
				}
				if hit {
					hits.Add(1)
				}
				verify(res, sr, 3)
			}
			mon.Unsubscribe(id)
		}(mi)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(777))
		store := db.ObjectStore()
		for w := 0; w < writes; w++ {
			p := geom.Vec2{X: 15 + 130*rng.Float64(), Y: 15 + 130*rng.Float64()}
			sp, err := db.SurfacePointAt(p)
			if err != nil {
				continue
			}
			store.Upsert([]workload.Object{{ID: int64(5000 + w%7), Point: sp}})
		}
	}()

	wg.Wait()
	if compared.Load() == 0 {
		t.Fatal("no delivered result was ever compared against a fresh query; the check never ran")
	}
	t.Logf("compared %d results bit-identical (%d safe-region hits)", compared.Load(), hits.Load())
}

package continuous

import (
	"math"
	"sync"
	"testing"
	"time"

	"surfknn/internal/core"
	"surfknn/internal/dem"
	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/objstore"
	"surfknn/internal/obs"
	"surfknn/internal/workload"
)

// newTestDB builds a fresh instrumented terrain per test — continuous tests
// mutate the object store, so nothing is shared.
func newTestDB(t testing.TB, nObjects int, seed int64) *core.TerrainDB {
	t.Helper()
	// Cell size 10 (extent 160×160) keeps the object field dense enough that
	// step 3 enumerates more than k candidates and the ranker refines real
	// upper bounds — the regime where positive safe radii exist.
	g := dem.Synthesize(dem.EP, 16, 10, seed)
	m := mesh.FromGrid(g)
	db, err := core.BuildTerrainDB(m, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	objs, err := workload.RandomObjects(m, db.Loc, nObjects, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	db.SetObjects(objs)
	db.Instrument(obs.NewRegistry())
	return db
}

// subscribeWithRadius registers a subscription whose safe radius is
// positive, scanning a deterministic grid of interior anchors until one
// yields a usable region.
func subscribeWithRadius(t testing.TB, db *core.TerrainDB, m *Monitor, k int) (uint64, core.Result, core.SafeRegion) {
	t.Helper()
	// Off-lattice anchors: a point on a grid line sits on a face edge, where
	// the clearance — and with it the radius — is zero by construction.
	for _, c := range []geom.Vec2{
		{X: 83, Y: 77}, {X: 65, Y: 91}, {X: 92, Y: 61},
		{X: 51, Y: 52}, {X: 101, Y: 103}, {X: 71, Y: 42},
		{X: 44, Y: 88}, {X: 118, Y: 66}, {X: 57, Y: 112},
	} {
		q, err := db.SurfacePointAt(c)
		if err != nil {
			continue
		}
		id, res, sr, err := m.Subscribe(nil, q, k, core.S1, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sr.Radius > 0 {
			return id, res, sr
		}
		m.Unsubscribe(id)
	}
	t.Fatal("no anchor produced a positive safe radius")
	return 0, core.Result{}, core.SafeRegion{}
}

func sameIDs(a, b []core.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Object.ID != b[i].Object.ID {
			return false
		}
	}
	return true
}

// TestMonitorHitMiss pins the subsystem's central contract: a move inside
// the safe region is served from cache with zero Dijkstra relaxations —
// both in the returned Cost and in the process-wide registry — and a move
// outside re-evaluates to exactly what a fresh engine query returns,
// re-anchoring the subscription at the new point.
func TestMonitorHitMiss(t *testing.T) {
	db := newTestDB(t, 100, 11)
	mon, err := New(db, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	id, res, sr := subscribeWithRadius(t, db, mon, 3)
	if res.Epoch != db.CurrentEpoch() {
		t.Fatalf("initial result at epoch %d, store at %d", res.Epoch, db.CurrentEpoch())
	}

	// Hit: inside the region. Zero engine work, verified two ways.
	inside := geom.Vec2{X: sr.Center.X + 0.5*sr.Radius, Y: sr.Center.Y}
	before := db.Registry().DijkstraRelaxations.Value()
	got, gotSR, hit, err := mon.Move(nil, id, inside)
	if err != nil || !hit {
		t.Fatalf("move inside region: hit=%t err=%v", hit, err)
	}
	if d := db.Registry().DijkstraRelaxations.Value() - before; d != 0 {
		t.Fatalf("safe-region hit performed %d Dijkstra relaxations, want 0", d)
	}
	if r := got.Cost.Total().Relaxations; r != 0 {
		t.Fatalf("hit result reports %d relaxations in its Cost, want 0", r)
	}
	if !sameIDs(got.Neighbors, res.Neighbors) || got.Epoch != res.Epoch || gotSR != sr {
		t.Fatalf("hit must replay the cached answer verbatim")
	}
	// The returned slice is caller-owned: corrupting it must not poison the
	// cache.
	got.Neighbors[0].Object.ID = -1
	if again, _, ok := mon.TryMove(id, inside); !ok || again.Neighbors[0].Object.ID == -1 {
		t.Fatalf("cached neighbours aliased a caller-visible slice")
	}

	// Miss: far outside the region. Must match a fresh engine query bit for
	// bit and leave the subscription anchored at the new point.
	outside := geom.Vec2{X: sr.Center.X + 2*sr.Radius + 3.3, Y: sr.Center.Y + 1.7}
	got, gotSR, hit, err = mon.Move(nil, id, outside)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatalf("move %g beyond the guard reported a hit", outside)
	}
	qp, err := db.SurfacePointAt(outside)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := db.MR3(qp, 3, core.S1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Neighbors) != len(fresh.Neighbors) {
		t.Fatalf("re-evaluation returned %d neighbours, fresh query %d", len(got.Neighbors), len(fresh.Neighbors))
	}
	for i := range fresh.Neighbors {
		g, f := got.Neighbors[i], fresh.Neighbors[i]
		if g.Object.ID != f.Object.ID || g.LB != f.LB || g.UB != f.UB {
			t.Fatalf("rank %d: monitored (%d, %g, %g) != fresh (%d, %g, %g)",
				i+1, g.Object.ID, g.LB, g.UB, f.Object.ID, f.LB, f.UB)
		}
	}
	if gotSR.Center != outside {
		t.Fatalf("re-anchor centred at %v, want %v", gotSR.Center, outside)
	}
	if gotSR.Radius > 0 {
		if _, _, ok := mon.TryMove(id, outside); !ok {
			t.Fatal("subscription not servable at its new anchor")
		}
	}

	if hits, misses := mon.Stats().RegionHits.Value(), mon.Stats().RegionMisses.Value(); hits < 2 || misses != 1 {
		t.Fatalf("stats hits=%d misses=%d, want >=2 hits and exactly 1 miss", hits, misses)
	}

	if !mon.Unsubscribe(id) {
		t.Fatal("unsubscribe of a live id reported false")
	}
	if mon.Unsubscribe(id) {
		t.Fatal("double unsubscribe reported true")
	}
	if _, _, _, err := mon.Move(nil, id, inside); err != ErrUnknownSubscription {
		t.Fatalf("move after unsubscribe: %v, want ErrUnknownSubscription", err)
	}
}

// TestEpochInvalidation is the staleness regression: a subscription created
// at epoch e must never serve its cached top-k after an update that could
// change it publishes e+1 — even for a move to the exact anchor point — and
// an update provably outside its guard disc must NOT cost it its cache.
func TestEpochInvalidation(t *testing.T) {
	db := newTestDB(t, 100, 23)
	mon, err := New(db, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	id, res, sr := subscribeWithRadius(t, db, mon, 3)
	anchor := sr.Center
	epoch0 := res.Epoch

	// Upsert an object directly at the anchor: inside the guard disc, so
	// the subscription must invalidate.
	ap, err := db.SurfacePointAt(anchor)
	if err != nil {
		t.Fatal(err)
	}
	db.ObjectStore().Upsert([]workload.Object{{ID: 99999, Point: ap}})
	if db.CurrentEpoch() != epoch0+1 {
		t.Fatalf("upsert moved epoch to %d, want %d", db.CurrentEpoch(), epoch0+1)
	}
	if _, _, ok := mon.TryMove(id, anchor); ok {
		t.Fatal("stale cached top-k served after an in-guard update")
	}
	got, _, hit, err := mon.Move(nil, id, anchor)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("invalidated subscription reported a safe-region hit")
	}
	if got.Epoch != epoch0+1 {
		t.Fatalf("re-evaluation at epoch %d, want %d", got.Epoch, epoch0+1)
	}
	if got.Neighbors[0].Object.ID != 99999 {
		t.Fatalf("object upserted onto the anchor is not rank 1: got %d", got.Neighbors[0].Object.ID)
	}

	// Upsert far outside the guard disc: the subscription must be
	// re-stamped to the new epoch and keep serving from cache.
	_, _, sr2, err := mon.Subscribe(nil, ap, 3, core.S1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	far := geom.Vec2{X: 8, Y: 8}
	if d := far.Dist(anchor); d <= sr2.Guard {
		t.Fatalf("test geometry broken: far point %g from anchor, guard %g", d, sr2.Guard)
	}
	fp, err := db.SurfacePointAt(far)
	if err != nil {
		t.Fatal(err)
	}
	reval := mon.Stats().Revalidations.Value()
	db.ObjectStore().Upsert([]workload.Object{{ID: 99998, Point: fp}})
	if mon.Stats().Revalidations.Value() <= reval {
		t.Fatal("out-of-guard update did not re-stamp any subscription")
	}
	if got, _, ok := mon.TryMove(id, anchor); !ok {
		t.Fatal("out-of-guard update destroyed a provably unaffected cache")
	} else if got.Epoch != db.CurrentEpoch() {
		t.Fatalf("re-stamped cache at epoch %d, store at %d", got.Epoch, db.CurrentEpoch())
	}
}

// TestInvalidateAllOnRegionlessEvent: an update event without region
// information must conservatively invalidate every subscription.
func TestInvalidateAllOnRegionlessEvent(t *testing.T) {
	db := newTestDB(t, 60, 31)
	mon, err := New(db, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	id, _, sr := subscribeWithRadius(t, db, mon, 2)
	cur := db.CurrentEpoch()
	mon.onUpdate(objstore.UpdateEvent{Prev: cur, Epoch: cur + 1, Regions: false})
	if _, _, ok := mon.TryMove(id, sr.Center); ok {
		t.Fatal("subscription survived a regionless event")
	}
	if mon.Stats().InvalidateAlls.Value() != 1 {
		t.Fatalf("InvalidateAlls = %d, want 1", mon.Stats().InvalidateAlls.Value())
	}
}

// TestEvictionBound: the subscription table is bounded and evicts least
// recently used entries.
func TestEvictionBound(t *testing.T) {
	db := newTestDB(t, 60, 41)
	mon, err := New(db, Config{MaxSubscriptions: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	var ids []uint64
	for i := 0; i < 5; i++ {
		q, err := db.SurfacePointAt(geom.Vec2{X: 41 + 15*float64(i), Y: 77})
		if err != nil {
			t.Fatal(err)
		}
		id, _, _, err := mon.Subscribe(nil, q, 2, core.S1, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if mon.Len() != 3 {
		t.Fatalf("table holds %d subscriptions, want 3", mon.Len())
	}
	if mon.Stats().Evictions.Value() != 2 {
		t.Fatalf("evictions = %d, want 2", mon.Stats().Evictions.Value())
	}
	for _, id := range ids[:2] {
		if mon.Unsubscribe(id) {
			t.Fatalf("oldest subscription %d survived eviction", id)
		}
	}
	for _, id := range ids[2:] {
		if !mon.Unsubscribe(id) {
			t.Fatalf("recent subscription %d was evicted", id)
		}
	}
}

// TestStripeCoalescing drives the batcher directly: four overlapping
// re-evaluations arriving within the coalesce window must share one stripe
// (one session checkout) and still each receive the exact fresh answer.
func TestStripeCoalescing(t *testing.T) {
	db := newTestDB(t, 80, 53)
	st := obs.NewContinuousStats()
	b := &batcher{db: db, window: 200 * time.Millisecond, stats: st}

	centers := []geom.Vec2{
		{X: 78, Y: 78}, {X: 82, Y: 78}, {X: 78, Y: 82}, {X: 82, Y: 82},
	}
	hint := geom.MBR{MinX: 70, MinY: 70, MaxX: 90, MaxY: 90}
	outs := make([]evalOut, len(centers))
	var wg sync.WaitGroup
	for i, c := range centers {
		q, err := db.SurfacePointAt(c)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, q mesh.SurfacePoint) {
			defer wg.Done()
			outs[i] = b.eval(evalReq{q: q, k: 2, sched: core.S1, opt: core.Options{}, hint: hint})
		}(i, q)
	}
	wg.Wait()

	if st.StripeQueries.Value() != int64(len(centers)) {
		t.Fatalf("stripe queries = %d, want %d", st.StripeQueries.Value(), len(centers))
	}
	if st.Stripes.Value() != 1 {
		t.Fatalf("overlapping concurrent evaluations ran %d stripes, want 1", st.Stripes.Value())
	}
	if n := st.StripeSize().Count(); n != 1 {
		t.Fatalf("stripe-size histogram recorded %d stripes, want 1", n)
	}
	for i, c := range centers {
		if outs[i].err != nil {
			t.Fatalf("member %d: %v", i, outs[i].err)
		}
		q, _ := db.SurfacePointAt(c)
		fresh, err := db.MR3(q, 2, core.S1, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(outs[i].res.Neighbors, fresh.Neighbors) {
			t.Fatalf("member %d: stripe answer diverges from a fresh query", i)
		}
	}
	// Members own their slices: no cross-member aliasing through session
	// scratch.
	if len(outs) > 1 && len(outs[0].res.Neighbors) > 0 && len(outs[1].res.Neighbors) > 0 &&
		&outs[0].res.Neighbors[0] == &outs[1].res.Neighbors[0] {
		t.Fatal("stripe members share a neighbour slice")
	}
	if math.IsNaN(outs[0].region.Radius) {
		t.Fatal("stripe result carries a NaN safe radius")
	}
}

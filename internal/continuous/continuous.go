// Package continuous is the standing-query subsystem: a client registers a
// surface k-NN query once, receives its initial top-k, and thereafter gets
// answers for a moving query point at far below one engine run per move.
//
// Three mechanisms carry the load:
//
//   - Safe regions (core.SafeRegion): every re-evaluation certifies a
//     planar disc inside which the top-k — IDs and order — is provably
//     stable. A move within the disc is answered from the cached result
//     with zero engine work: no session, no I/O, no Dijkstra relaxation.
//   - Epoch invalidation: the object store announces every published epoch
//     (objstore.Subscribe) with the planar footprint of the touched
//     objects. A subscription is invalidated only when a touched object is
//     one of its neighbours or falls inside its guard disc (the step-3
//     search radius plus the move budget); provably unaffected
//     subscriptions are re-stamped to the new epoch, keeping their cached
//     answer — still bit-identical to a fresh query — servable. Events
//     without region information invalidate everything (conservative).
//   - Stripe batching: concurrently-due re-evaluations whose search
//     regions overlap are coalesced into one stripe sharing a single
//     session checkout, so a burst of co-located movers pays the session
//     and LOD/SDN warm-up once.
//
// The subscription table is bounded: beyond MaxSubscriptions the least
// recently used subscription is evicted (every insert has a reachable evict
// path — the sklint sub-unregister rule enforces this shape). All answers
// are keyed by epoch: a cached result is served only when its epoch equals
// the store's current epoch, mirroring the server's epoch-prefixed result
// cache, so an invalidated subscription can never serve a stale top-k.
package continuous

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"surfknn/internal/core"
	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/objstore"
	"surfknn/internal/obs"
)

// ErrUnknownSubscription is returned for an id that is not (or no longer —
// unsubscribed or evicted) in the table.
var ErrUnknownSubscription = errors.New("continuous: unknown subscription")

// ErrClosed is returned by operations on a closed Monitor.
var ErrClosed = errors.New("continuous: monitor closed")

// DefaultMaxSubscriptions bounds the subscription table when Config leaves
// MaxSubscriptions zero.
const DefaultMaxSubscriptions = 4096

// Config tunes a Monitor. The zero value is production-ready.
type Config struct {
	// MaxSubscriptions bounds the subscription table; beyond it the least
	// recently used subscription is evicted. Default 4096.
	MaxSubscriptions int
	// CoalesceWindow is how long a stripe leader waits for overlapping
	// re-evaluations to join its stripe before running it. Zero (the
	// default) runs immediately — stripes then form only from already-
	// concurrent arrivals.
	CoalesceWindow time.Duration
	// Stats receives the subsystem metrics; nil creates a private group.
	Stats *obs.ContinuousStats
}

func (c Config) withDefaults() Config {
	if c.MaxSubscriptions <= 0 {
		c.MaxSubscriptions = DefaultMaxSubscriptions
	}
	if c.Stats == nil {
		c.Stats = obs.NewContinuousStats()
	}
	return c
}

// sub is one standing query. All fields are guarded by Monitor.mu.
type sub struct {
	id     uint64
	k      int
	sched  core.Schedule
	opt    core.Options
	anchor mesh.SurfacePoint // point the cached answer was computed at
	region core.SafeRegion   // safe region around anchor
	epoch  uint64            // epoch the cached answer is valid for
	valid  bool              // false once an update may have changed the answer
	ns     []core.Neighbor   // cached top-k, monitor-owned copy
	el     *list.Element     // position in the LRU list
}

func (s *sub) hasNeighbor(id int64) bool {
	for i := range s.ns {
		if s.ns[i].Object.ID == id {
			return true
		}
	}
	return false
}

// Monitor tracks live subscriptions over one TerrainDB. Safe for concurrent
// use. Create with New, stop with Close.
type Monitor struct {
	db    *core.TerrainDB
	cfg   Config
	stats *obs.ContinuousStats
	bat   *batcher

	cancelStore func() // deregisters the objstore listener

	mu     sync.Mutex
	subs   map[uint64]*sub
	lru    *list.List // front = most recently used; back = eviction victim
	nextID uint64
	closed bool
}

// New builds a monitor over db, which must carry an object store (objects
// installed via SetObjects or a snapshot).
func New(db *core.TerrainDB, cfg Config) (*Monitor, error) {
	store := db.ObjectStore()
	if store == nil {
		return nil, fmt.Errorf("continuous: database has no object store (call SetObjects)")
	}
	cfg = cfg.withDefaults()
	m := &Monitor{
		db:    db,
		cfg:   cfg,
		stats: cfg.Stats,
		subs:  make(map[uint64]*sub),
		lru:   list.New(),
	}
	m.bat = &batcher{db: db, window: cfg.CoalesceWindow, stats: cfg.Stats}
	m.cancelStore = store.Subscribe(m.onUpdate)
	return m, nil
}

// Stats returns the monitor's metric group.
func (m *Monitor) Stats() *obs.ContinuousStats { return m.stats }

// Len returns the number of live subscriptions.
func (m *Monitor) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.subs)
}

// Close deregisters the store listener and drops every subscription.
// Subsequent calls error with ErrClosed.
func (m *Monitor) Close() {
	m.cancelStore()
	m.mu.Lock()
	m.closed = true
	for id := range m.subs {
		delete(m.subs, id)
	}
	m.lru.Init()
	m.stats.Subscriptions.Set(0)
	m.mu.Unlock()
}

// Subscribe registers a standing k-NN query at q and returns its id, the
// initial result and its safe region. The result's Neighbors are owned by
// the caller.
func (m *Monitor) Subscribe(ctx context.Context, q mesh.SurfacePoint, k int, sched core.Schedule, opt core.Options) (uint64, core.Result, core.SafeRegion, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return 0, core.Result{}, core.SafeRegion{}, ErrClosed
	}
	m.mu.Unlock()

	out := m.bat.eval(evalReq{ctx: ctx, q: q, k: k, sched: sched, opt: opt, hint: pointMBR(q.XY())})
	if out.err != nil {
		return 0, core.Result{}, core.SafeRegion{}, out.err
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return 0, core.Result{}, core.SafeRegion{}, ErrClosed
	}
	m.nextID++
	id := m.nextID
	s := &sub{id: id, k: k, sched: sched, opt: opt}
	m.storeLocked(s, q, out)
	m.subs[id] = s
	s.el = m.lru.PushFront(s)
	m.evictLocked()
	m.stats.Subscriptions.Set(int64(len(m.subs)))
	m.mu.Unlock()
	return id, out.res, out.region, nil
}

// storeLocked installs a fresh evaluation into the subscription. The
// neighbour cache is copied into the sub-owned buffer so the caller may do
// as it pleases with the returned result.
func (m *Monitor) storeLocked(s *sub, q mesh.SurfacePoint, out evalOut) {
	s.anchor = q
	s.region = out.region
	s.epoch = out.res.Epoch
	s.ns = append(s.ns[:0], out.res.Neighbors...)
	s.valid = true
}

// evictLocked enforces the table bound by dropping least-recently-used
// subscriptions. Caller holds m.mu.
func (m *Monitor) evictLocked() {
	for len(m.subs) > m.cfg.MaxSubscriptions {
		victim := m.lru.Back()
		if victim == nil {
			return
		}
		v := m.lru.Remove(victim).(*sub)
		delete(m.subs, v.id)
		m.stats.Evictions.Add(1)
	}
}

// TryMove attempts the zero-cost path for subscription id moving to p: if
// the cached answer is valid at the store's current epoch and p lies inside
// the safe region, it returns the cached result (hit=true) without touching
// the engine — the returned Cost is zero, including its Relaxations.
// Otherwise hit is false and the caller should re-evaluate with Move. An
// unknown id returns hit=false.
func (m *Monitor) TryMove(id uint64, p geom.Vec2) (core.Result, core.SafeRegion, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.subs[id]
	if !ok {
		return core.Result{}, core.SafeRegion{}, false
	}
	m.lru.MoveToFront(s.el)
	if !s.valid || s.epoch != m.db.CurrentEpoch() || !s.region.Contains(p) {
		return core.Result{}, core.SafeRegion{}, false
	}
	m.stats.RegionHits.Add(1)
	ns := make([]core.Neighbor, len(s.ns))
	copy(ns, s.ns)
	return core.Result{Neighbors: ns, Epoch: s.epoch}, s.region, true
}

// Move processes subscription id's move to p: the safe-region fast path
// when possible (hit=true), a stripe-batched re-evaluation at p otherwise.
// The re-evaluated answer re-anchors the subscription at p with a fresh
// safe region. An id not in the table returns ErrUnknownSubscription.
func (m *Monitor) Move(ctx context.Context, id uint64, p geom.Vec2) (core.Result, core.SafeRegion, bool, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return core.Result{}, core.SafeRegion{}, false, ErrClosed
	}
	s, ok := m.subs[id]
	if !ok {
		m.mu.Unlock()
		return core.Result{}, core.SafeRegion{}, false, ErrUnknownSubscription
	}
	k, sched, opt, hint := s.k, s.sched, s.opt, s.region.GuardMBR()
	m.mu.Unlock()

	if res, sr, ok := m.TryMove(id, p); ok {
		return res, sr, true, nil
	}
	m.stats.RegionMisses.Add(1)

	q, err := m.db.SurfacePointAt(p)
	if err != nil {
		return core.Result{}, core.SafeRegion{}, false, fmt.Errorf("continuous: move target (%g, %g): %w", p.X, p.Y, err)
	}
	out := m.bat.eval(evalReq{ctx: ctx, q: q, k: k, sched: sched, opt: opt, hint: hint.Union(pointMBR(p))})
	if out.err != nil {
		return core.Result{}, core.SafeRegion{}, false, out.err
	}

	m.mu.Lock()
	// The subscription may have been unsubscribed or evicted while the
	// evaluation ran; the mover still gets its answer, it just is not
	// cached anymore.
	if s, ok := m.subs[id]; ok {
		m.storeLocked(s, q, out)
		m.lru.MoveToFront(s.el)
	}
	m.mu.Unlock()
	return out.res, out.region, false, nil
}

// Unsubscribe removes a subscription, reporting whether it existed.
func (m *Monitor) Unsubscribe(id uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.subs[id]
	if !ok {
		return false
	}
	m.lru.Remove(s.el)
	delete(m.subs, id)
	m.stats.Subscriptions.Set(int64(len(m.subs)))
	return true
}

// onUpdate is the objstore listener: it runs synchronously on the writer's
// goroutine for every published epoch, in epoch order, deciding per
// subscription between invalidation (a touched object is a neighbour or
// inside the guard disc) and re-stamping to the new epoch (provably
// unaffected — the cached answer is still what a fresh query at the new
// epoch would return, bit for bit, because the touched objects were outside
// the query's step-3 enumeration and stay outside its reach).
func (m *Monitor) onUpdate(ev objstore.UpdateEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !ev.Regions || len(ev.IDs) != len(ev.Points) {
		// No region information: everything is potentially affected.
		m.stats.InvalidateAlls.Add(1)
		for _, s := range m.subs {
			if s.valid {
				s.valid = false
				m.stats.Invalidations.Add(1)
			}
		}
		return
	}
	for _, s := range m.subs {
		if !s.valid {
			continue
		}
		affected := false
		for i, id := range ev.IDs {
			if s.hasNeighbor(id) || ev.Points[i].Dist(s.region.Center) <= s.region.Guard {
				affected = true
				break
			}
		}
		switch {
		case affected:
			s.valid = false
			m.stats.Invalidations.Add(1)
		case s.epoch == ev.Prev:
			s.epoch = ev.Epoch
			m.stats.Revalidations.Add(1)
		default:
			// The cached answer predates the epoch this event supersedes (a
			// re-evaluation raced past us): it cannot be re-stamped safely.
			s.valid = false
			m.stats.Invalidations.Add(1)
		}
	}
}

// pointMBR is the degenerate box of a single planar point — the stripe
// hint of an evaluation with no prior search region.
func pointMBR(p geom.Vec2) geom.MBR {
	return geom.MBR{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
}

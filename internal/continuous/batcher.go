package continuous

import (
	"context"
	"sync"
	"time"

	"surfknn/internal/core"
	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/obs"
	"surfknn/internal/stats"
)

// evalReq is one re-evaluation waiting to run. hint is the planar region
// the query is expected to search (the subscription's guard box unioned
// with the new query point); overlapping hints coalesce into one stripe.
type evalReq struct {
	ctx   context.Context
	q     mesh.SurfacePoint
	k     int
	sched core.Schedule
	opt   core.Options
	hint  geom.MBR
	done  chan evalOut
}

type evalOut struct {
	res    core.Result
	region core.SafeRegion
	err    error
}

// stripe is a batch of overlapping re-evaluations that will share one
// session checkout. region is the union of its members' hints; reqs may
// only be appended while the stripe sits in batcher.open (under batcher.mu).
type stripe struct {
	region geom.MBR
	reqs   []*evalReq
}

// batcher coalesces concurrently-due re-evaluations whose search regions
// overlap into stripes. The first request for a region becomes the stripe
// leader: it waits the coalesce window for joiners, then checks one session
// out of the pool and runs every member's query through it sequentially —
// a burst of co-located movers pays the session checkout (and its warm
// LOD/SDN scratch) once instead of len(stripe) times. Joiners block on
// their done channel; every member, leader included, gets its own
// deep-copied result (Session results alias per-session scratch).
type batcher struct {
	db     *core.TerrainDB
	window time.Duration
	stats  *obs.ContinuousStats

	mu   sync.Mutex
	open []*stripe
}

// eval runs one query through the stripe machinery and blocks until its
// result is ready.
func (b *batcher) eval(req evalReq) evalOut {
	req.done = make(chan evalOut, 1)
	r := &req

	b.mu.Lock()
	for _, st := range b.open {
		if st.region.Intersects(r.hint) {
			st.reqs = append(st.reqs, r)
			st.region = st.region.Union(r.hint)
			b.mu.Unlock()
			return <-r.done
		}
	}
	st := &stripe{region: r.hint, reqs: []*evalReq{r}}
	b.open = append(b.open, st)
	b.mu.Unlock()

	// Leader: hold the stripe open for the coalesce window, then close it.
	if b.window > 0 {
		timer := time.NewTimer(b.window)
		if r.ctx != nil {
			select {
			case <-timer.C:
			case <-r.ctx.Done():
				timer.Stop()
			}
		} else {
			<-timer.C
		}
	}

	b.mu.Lock()
	for i, o := range b.open {
		if o == st {
			b.open = append(b.open[:i], b.open[i+1:]...)
			break
		}
	}
	members := st.reqs
	b.mu.Unlock()

	sess := b.db.AcquireSession()
	for _, m := range members {
		res, sr, err := sess.MR3SafeCtx(m.ctx, m.q, m.k, m.sched, m.opt)
		if err == nil {
			// Result slices alias session scratch reused by the next query
			// in this stripe (and by whoever checks the session out next):
			// hand every member its own copy.
			res.Neighbors = append([]core.Neighbor(nil), res.Neighbors...)
			res.Cost.Phases = append([]stats.PhaseCost(nil), res.Cost.Phases...)
		}
		m.done <- evalOut{res: res, region: sr, err: err}
	}
	b.db.Release(sess)

	b.stats.Stripes.Add(1)
	b.stats.StripeQueries.Add(int64(len(members)))
	b.stats.StripeSize().Observe(int64(len(members)))
	return <-r.done
}

package sdn

import (
	"math"
	"math/rand"
	"testing"

	"surfknn/internal/dem"
	"surfknn/internal/geodesic"
	"surfknn/internal/geom"
	"surfknn/internal/mesh"
)

func rugged(size int, seed int64) *mesh.Mesh {
	return mesh.FromGrid(dem.Synthesize(dem.BH, size, 10, seed))
}

func TestExtractCrossLineFlat(t *testing.T) {
	t.Parallel()
	m := mesh.FromGrid(dem.NewGrid(5, 5, 10)) // flat 40x40
	cl := extractCrossLine(m, YAxis, 15, 1)
	if len(cl.Pts) < 2 {
		t.Fatalf("too few points: %d", len(cl.Pts))
	}
	for i, p := range cl.Pts {
		if math.Abs(p.Y-15) > 1e-9 {
			t.Errorf("point %d not on plane: %v", i, p)
		}
		if p.Z != 0 {
			t.Errorf("flat terrain point has z=%v", p.Z)
		}
		if i > 0 && cl.Pts[i-1].X >= p.X {
			t.Errorf("points not ordered by x at %d", i)
		}
	}
	// Spans the full extent.
	if cl.Pts[0].X > 1e-9 || cl.Pts[len(cl.Pts)-1].X < 40-1e-9 {
		t.Errorf("line does not span extent: [%v, %v]", cl.Pts[0].X, cl.Pts[len(cl.Pts)-1].X)
	}
	// X-axis family too.
	clx := extractCrossLine(m, XAxis, 25, 1)
	for _, p := range clx.Pts {
		if math.Abs(p.X-25) > 1e-9 {
			t.Errorf("x-plane point off plane: %v", p)
		}
	}
}

func TestDPRanksNested(t *testing.T) {
	t.Parallel()
	m := rugged(8, 3)
	cl := extractCrossLine(m, YAxis, 35, 1)
	n := len(cl.Pts)
	if n < 4 {
		t.Skip("line too short")
	}
	if cl.Rank[0] != 0 || cl.Rank[n-1] != 1 {
		t.Errorf("endpoint ranks = %d, %d", cl.Rank[0], cl.Rank[n-1])
	}
	seen := make(map[int]bool)
	for _, r := range cl.Rank {
		if r < 0 || r >= n || seen[r] {
			t.Fatalf("ranks are not a permutation: %v", cl.Rank)
		}
		seen[r] = true
	}
	prev := map[int]bool{}
	for _, res := range []float64{0.25, 0.5, 0.75, 1.0} {
		idx := cl.Retained(res)
		cur := map[int]bool{}
		for _, i := range idx {
			cur[i] = true
		}
		for i := range prev {
			if !cur[i] {
				t.Fatalf("retention not nested at %v: lost %d", res, i)
			}
		}
		prev = cur
	}
	if got := len(cl.Retained(1.0)); got != n {
		t.Errorf("full retention = %d, want %d", got, n)
	}
}

func TestSegmentBoxesConservative(t *testing.T) {
	t.Parallel()
	m := rugged(8, 5)
	cl := extractCrossLine(m, YAxis, 40, 1)
	region := m.Extent()
	for _, res := range []float64{0.25, 0.5, 1.0} {
		for _, s := range cl.Segments(res, region) {
			// The segment box must contain every original point in span.
			for p := s.I; p <= s.J; p++ {
				sub := geom.Box3Of(cl.Pts[p])
				if !s.Box.ContainsBox(sub) {
					t.Fatalf("res %v: box %v misses point %v", res, s.Box, cl.Pts[p])
				}
			}
		}
	}
}

func TestBuildMSDN(t *testing.T) {
	t.Parallel()
	m := rugged(8, 7)
	ms := BuildMSDN(m, 0) // default spacing = average edge length
	if ms.NumLines() == 0 || ms.NumPoints() == 0 {
		t.Fatalf("empty MSDN: %d lines, %d points", ms.NumLines(), ms.NumPoints())
	}
	if ms.Spacing <= 0 {
		t.Errorf("spacing = %v", ms.Spacing)
	}
	// Lines are ordered by coordinate.
	for i := 1; i < len(ms.YLines); i++ {
		if ms.YLines[i-1].Coord >= ms.YLines[i].Coord {
			t.Fatal("y-lines out of order")
		}
	}
}

func TestLowerBoundFlat(t *testing.T) {
	t.Parallel()
	m := mesh.FromGrid(dem.NewGrid(9, 9, 10))
	ms := BuildMSDN(m, 10)
	a := geom.Vec3{X: 5, Y: 40, Z: 0}
	b := geom.Vec3{X: 75, Y: 42, Z: 0}
	est := ms.LowerBound(a, b, m.Extent(), 1.0)
	euclid := a.Dist(b)
	if est.LB < euclid-1e-9 {
		t.Errorf("lb %v below Euclidean %v", est.LB, euclid)
	}
	// On flat terrain the surface distance IS the Euclidean distance, so
	// the bound cannot exceed it either.
	if est.LB > euclid+1e-9 {
		t.Errorf("lb %v above flat surface distance %v", est.LB, euclid)
	}
}

func TestLowerBoundBelowExact(t *testing.T) {
	t.Parallel()
	m := rugged(8, 11)
	loc := mesh.NewLocator(m)
	solver := geodesic.NewSolver(m)
	ms := BuildMSDN(m, 0)
	ext := m.Extent()
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		pa := geom.Vec2{X: ext.MinX + rng.Float64()*ext.Width(), Y: ext.MinY + rng.Float64()*ext.Height()}
		pb := geom.Vec2{X: ext.MinX + rng.Float64()*ext.Width(), Y: ext.MinY + rng.Float64()*ext.Height()}
		a, err := mesh.MakeSurfacePoint(m, loc, pa)
		if err != nil {
			t.Fatal(err)
		}
		b, err := mesh.MakeSurfacePoint(m, loc, pb)
		if err != nil {
			t.Fatal(err)
		}
		exact := solver.Distance(a, b)
		for _, res := range []float64{0.25, 0.5, 1.0} {
			est := ms.LowerBound(a.Pos, b.Pos, ext, res)
			if est.LB > exact+1e-6 {
				t.Fatalf("res %v: lb %v exceeds exact %v", res, est.LB, exact)
			}
			if est.LB < a.Pos.Dist(b.Pos)-1e-9 {
				t.Fatalf("res %v: lb %v below Euclidean", res, est.LB)
			}
		}
	}
}

func TestLowerBoundMonotoneNested(t *testing.T) {
	t.Parallel()
	m := rugged(8, 17)
	ms := BuildMSDN(m, 0)
	ext := m.Extent()
	loc := mesh.NewLocator(m)
	rng := rand.New(rand.NewSource(19))
	// Fixed plane set (step 1): the bound is monotone in point resolution.
	ladder := []float64{0.25, 0.375, 0.5, 0.75, 1.0}
	for trial := 0; trial < 10; trial++ {
		pa := geom.Vec2{X: ext.MinX + rng.Float64()*ext.Width(), Y: ext.MinY + rng.Float64()*ext.Height()}
		pb := geom.Vec2{X: ext.MinX + rng.Float64()*ext.Width(), Y: ext.MinY + rng.Float64()*ext.Height()}
		a, errA := mesh.MakeSurfacePoint(m, loc, pa)
		b, errB := mesh.MakeSurfacePoint(m, loc, pb)
		if errA != nil || errB != nil {
			t.Fatal(errA, errB)
		}
		prev := 0.0
		var sc Scratch
		for _, res := range ladder {
			est := ms.lowerBoundFixed(&sc, a.Pos, b.Pos, ext, res, 1, nil, 0)
			if est.LB < prev-1e-9 {
				t.Fatalf("lb not monotone at res %v: %v < %v", res, est.LB, prev)
			}
			prev = est.LB
		}
	}
}

func TestLowerBoundEnvelope(t *testing.T) {
	t.Parallel()
	m := rugged(8, 23)
	ms := BuildMSDN(m, 0)
	ext := m.Extent()
	loc := mesh.NewLocator(m)
	ap, errA := mesh.MakeSurfacePoint(m, loc, geom.Vec2{X: ext.MinX + 5, Y: ext.MinY + 8})
	bp, errB := mesh.MakeSurfacePoint(m, loc, geom.Vec2{X: ext.MaxX - 6, Y: ext.MaxY - 9})
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	a, b := ap.Pos, bp.Pos
	full := ms.LowerBound(a, b, ext, 0.5)
	if len(full.Path) == 0 {
		t.Fatal("expected a path")
	}
	env := ms.LowerBoundEnvelope(a, b, ext, 0.5, full.Path, ms.Spacing)
	if env.LB < full.LB-1e-9 {
		t.Errorf("envelope lb %v below full lb %v", env.LB, full.LB)
	}
	if env.Segments > full.Segments {
		t.Errorf("envelope examined more segments (%d) than full (%d)", env.Segments, full.Segments)
	}
	// Empty previous path falls back to the full computation.
	fallback := ms.LowerBoundEnvelope(a, b, ext, 0.5, nil, ms.Spacing)
	if math.Abs(fallback.LB-full.LB) > 1e-9 {
		t.Errorf("fallback lb %v != full %v", fallback.LB, full.LB)
	}
}

func TestLowerBoundNoPlanesBetween(t *testing.T) {
	t.Parallel()
	m := rugged(8, 29)
	ms := BuildMSDN(m, 0)
	a := geom.Vec3{X: 10, Y: 10, Z: 5}
	b := geom.Vec3{X: 10.5, Y: 10.2, Z: 5}
	est := ms.LowerBound(a, b, m.Extent(), 1.0)
	if math.Abs(est.LB-a.Dist(b)) > 1e-9 {
		t.Errorf("close points lb = %v, want Euclidean %v", est.LB, a.Dist(b))
	}
}

func TestPlaneStep(t *testing.T) {
	t.Parallel()
	cases := map[float64]int{1.0: 1, 0.75: 1, 0.5: 2, 0.375: 3, 0.25: 4}
	for res, want := range cases {
		if got := planeStepFor(res); got != want {
			t.Errorf("planeStepFor(%v) = %d, want %d", res, got, want)
		}
	}
}

func TestFamilyChoice(t *testing.T) {
	t.Parallel()
	m := rugged(8, 31)
	ms := BuildMSDN(m, 0)
	// Mostly-horizontal pair → XAxis planes (perpendicular to travel).
	lines, _, _ := ms.chooseFamily(geom.Vec3{X: 0, Y: 40}, geom.Vec3{X: 80, Y: 42})
	if len(lines) > 0 && lines[0].Axis != XAxis {
		t.Error("horizontal travel should use x-planes")
	}
	lines, _, _ = ms.chooseFamily(geom.Vec3{X: 40, Y: 0}, geom.Vec3{X: 42, Y: 80})
	if len(lines) > 0 && lines[0].Axis != YAxis {
		t.Error("vertical travel should use y-planes")
	}
}

func TestLowerBoundBothNeverWorse(t *testing.T) {
	t.Parallel()
	m := rugged(8, 41)
	ms := BuildMSDN(m, 0)
	ext := m.Extent()
	loc := mesh.NewLocator(m)
	solver := geodesic.NewSolver(m)
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 10; trial++ {
		pa := geom.Vec2{X: ext.MinX + rng.Float64()*ext.Width(), Y: ext.MinY + rng.Float64()*ext.Height()}
		pb := geom.Vec2{X: ext.MinX + rng.Float64()*ext.Width(), Y: ext.MinY + rng.Float64()*ext.Height()}
		a, errA := mesh.MakeSurfacePoint(m, loc, pa)
		b, errB := mesh.MakeSurfacePoint(m, loc, pb)
		if errA != nil || errB != nil {
			continue
		}
		single := ms.LowerBound(a.Pos, b.Pos, ext, 1.0)
		both := ms.LowerBoundBoth(a.Pos, b.Pos, ext, 1.0)
		if both.LB < single.LB-1e-9 {
			t.Fatalf("both-families lb %v below single-family %v", both.LB, single.LB)
		}
		// Still a valid lower bound.
		exact := solver.Distance(a, b)
		if both.LB > exact+1e-6 {
			t.Fatalf("both-families lb %v exceeds exact %v", both.LB, exact)
		}
	}
}

// Package sdn implements the paper's Multiresolution Support Distance
// Network (MSDN, §3.3): families of axis-aligned cutting planes are
// intersected with the terrain to obtain *crossing lines*; any surface path
// between two points must cross every plane lying between them, so chaining
// minimum distances between (conservative boxes of) crossing-line segments
// yields a lower bound on the surface distance. Keeping each simplified
// segment's box as the bounding box of ALL original points it spans — the
// paper's modification of line generalisation — makes the bound valid at
// every resolution and monotonically non-decreasing as resolution grows.
package sdn

import (
	"sort"

	"surfknn/internal/geom"
	"surfknn/internal/mesh"
)

// Axis selects a cutting-plane family.
type Axis int

const (
	// XAxis planes are x = const (their crossing lines run along y).
	XAxis Axis = iota
	// YAxis planes are y = const (their crossing lines run along x).
	YAxis
)

// CrossLine is one terrain profile: the polyline obtained by intersecting a
// cutting plane with the surface, ordered along the line. Rank[i] is the
// retention priority of point i (lower rank = kept at coarser resolutions);
// prefix-by-rank retention makes resolutions nested.
type CrossLine struct {
	Axis  Axis
	Coord float64 // plane position (x for XAxis, y for YAxis)
	Pts   []geom.Vec3
	Rank  []int
}

// extractCrossLine intersects the plane with every face it crosses and
// assembles the intersection points into an ordered polyline, subdividing
// each intra-face portion subdiv times. Subdivision points are exact
// surface points (the crossing line is straight within a planar face), so
// they shrink the segment boxes — and thereby tighten the lower bound —
// without any approximation. For terrain meshes (z a function of (x,y))
// the result is a single chain ordered by the free coordinate.
func extractCrossLine(m *mesh.Mesh, axis Axis, coord float64, subdiv int) *CrossLine {
	type pt struct {
		key float64
		p   geom.Vec3
	}
	var pts []pt
	add := func(p geom.Vec3) {
		key := p.Y
		if axis == YAxis {
			key = p.X
		}
		pts = append(pts, pt{key, p})
	}
	for f := 0; f < m.NumFaces(); f++ {
		tri := m.Triangle(mesh.FaceID(f))
		corners := [3]geom.Vec3{tri.A, tri.B, tri.C}
		for i := 0; i < 3; i++ {
			a, b := corners[i], corners[(i+1)%3]
			var va, vb float64
			if axis == XAxis {
				va, vb = a.X, b.X
			} else {
				va, vb = a.Y, b.Y
			}
			t, ok := crossAt(va, vb, coord)
			if !ok {
				continue
			}
			add(a.Lerp(b, t))
		}
	}
	if len(pts) == 0 {
		return &CrossLine{Axis: axis, Coord: coord}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].key < pts[j].key })
	// Deduplicate nearly-identical points (shared edges produce doubles).
	dedup := make([]geom.Vec3, 0, len(pts)/2+1)
	for _, e := range pts {
		if len(dedup) > 0 && dedup[len(dedup)-1].Dist(e.p) < 1e-9 {
			continue
		}
		dedup = append(dedup, e.p)
	}
	out := dedup
	if subdiv > 1 {
		out = make([]geom.Vec3, 0, len(dedup)*subdiv)
		for i, p := range dedup {
			if i > 0 {
				prev := dedup[i-1]
				for k := 1; k < subdiv; k++ {
					out = append(out, prev.Lerp(p, float64(k)/float64(subdiv)))
				}
			}
			out = append(out, p)
		}
	}
	cl := &CrossLine{Axis: axis, Coord: coord, Pts: out}
	cl.Rank = dpRanks(out)
	return cl
}

func crossAt(a, b, v float64) (float64, bool) {
	//lint:ignore float-eq exact a == b guards the division by (b - a) below; an epsilon would reject valid near-degenerate crossings
	if (a < v && b < v) || (a > v && b > v) || a == b {
		return 0, false
	}
	t := (v - a) / (b - a)
	if t < 0 || t > 1 {
		return 0, false
	}
	return t, true
}

// dpRanks assigns Douglas–Peucker-style retention priorities: endpoints get
// rank 0 and 1; every other point's rank reflects the recursion depth at
// which DP would introduce it, ordered by decreasing deviation. Retaining
// all points with rank < k yields the k most shape-preserving points, and
// retention sets are nested across resolutions.
func dpRanks(pts []geom.Vec3) []int {
	n := len(pts)
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = n // sentinel: not yet ranked
	}
	if n == 0 {
		return ranks
	}
	ranks[0] = 0
	if n == 1 {
		return ranks
	}
	ranks[n-1] = 1
	next := 2
	type span struct {
		lo, hi int
		dev    float64
		split  int
	}
	eval := func(lo, hi int) span {
		s := span{lo: lo, hi: hi, split: -1}
		if hi-lo < 2 {
			return s
		}
		seg := geom.Segment3{A: pts[lo], B: pts[hi]}
		for i := lo + 1; i < hi; i++ {
			if d := seg.DistToPoint(pts[i]); d >= s.dev {
				s.dev = d
				s.split = i
			}
		}
		return s
	}
	// Priority processing by maximum deviation gives the global retention
	// order (not just per-branch depth).
	spans := []span{eval(0, n-1)}
	for len(spans) > 0 {
		// Pop the span with the largest deviation.
		best := 0
		for i := 1; i < len(spans); i++ {
			if spans[i].dev > spans[best].dev {
				best = i
			}
		}
		s := spans[best]
		spans[best] = spans[len(spans)-1]
		spans = spans[:len(spans)-1]
		if s.split < 0 {
			continue
		}
		ranks[s.split] = next
		next++
		spans = append(spans, eval(s.lo, s.split), eval(s.split, s.hi))
	}
	return ranks
}

// Retained returns the indices of the points kept at the given resolution
// (fraction of points in (0,1]); endpoints are always kept. The returned
// indices are sorted and nested across resolutions.
func (cl *CrossLine) Retained(resolution float64) []int {
	n := len(cl.Pts)
	if n == 0 {
		return nil
	}
	return cl.retainedInto(resolution, make([]int, 0, n))
}

// retainedInto is Retained filling dst (truncated first) — the warm query
// path reuses one index buffer across lines instead of allocating per call.
func (cl *CrossLine) retainedInto(resolution float64, dst []int) []int {
	idx := dst[:0]
	n := len(cl.Pts)
	if n == 0 {
		return idx
	}
	keep := int(float64(n)*resolution + 0.5)
	if keep < 2 {
		keep = 2
	}
	if keep > n {
		keep = n
	}
	for i, r := range cl.Rank {
		if r < keep {
			idx = append(idx, i)
		}
	}
	return idx
}

// Segment is one node of an SDN: a simplified crossing-line segment and its
// conservative box (covering every original point in its span).
type Segment struct {
	Line *CrossLine
	I, J int // span [I..J] of original points
	Box  geom.Box3
}

// Segments returns the SDN nodes of the line at the given resolution whose
// boxes intersect the (x,y) region.
func (cl *CrossLine) Segments(resolution float64, region geom.MBR) []Segment {
	segs, _ := cl.segmentsInto(resolution, region, nil, make([]Segment, 0, len(cl.Pts)))
	return segs
}

// segmentsInto is Segments appending into dst, with idx as the retained-index
// scratch; it returns both (possibly grown) buffers so the caller can retain
// them for the next line.
func (cl *CrossLine) segmentsInto(resolution float64, region geom.MBR, idx []int, dst []Segment) ([]Segment, []int) {
	idx = cl.retainedInto(resolution, idx)
	for k := 0; k+1 < len(idx); k++ {
		i, j := idx[k], idx[k+1]
		box := geom.EmptyBox3()
		for p := i; p <= j; p++ {
			box = box.ExtendPoint(cl.Pts[p])
		}
		if !box.XY().Intersects(region) {
			continue
		}
		dst = append(dst, Segment{Line: cl, I: i, J: j, Box: box})
	}
	return dst, idx
}

package sdn

import (
	"math"

	"surfknn/internal/geom"
)

// LowerEstimate is the result of one SDN lower-bound estimation.
type LowerEstimate struct {
	LB float64
	// Path holds the SDN segments realising the bound, one per crossing
	// line; MR3's dummy-lower-bound optimisation thickens this path into an
	// envelope for the next, cheaper estimate.
	Path []Segment
	// Segments counts the SDN nodes examined (a CPU-cost proxy).
	Segments int
}

// LowerBound estimates a lower bound on the surface distance between a and
// b at the given SDN resolution, restricted to region (pass the search
// ellipse's MBR; the bound is valid for any path staying inside region,
// in particular for every path no longer than the current upper bound when
// region is that upper bound's ellipse).
//
// The Euclidean distance is always a valid floor, so the result is never
// below it.
func (ms *MSDN) LowerBound(a, b geom.Vec3, region geom.MBR, resolution float64) LowerEstimate {
	return ms.lowerBound(a, b, region, resolution, nil, 0)
}

// LowerBoundBoth estimates with BOTH plane families and returns the larger
// bound. The paper's 45° heuristic picks a single family; since each
// family's chain is independently valid, their maximum is a strictly
// tighter (never worse) bound at roughly twice the cost. Offered as an
// extension; see the BenchmarkAblationBothFamilies targets.
func (ms *MSDN) LowerBoundBoth(a, b geom.Vec3, region geom.MBR, resolution float64) LowerEstimate {
	first := ms.lowerBound(a, b, region, resolution, nil, 0)
	// Evaluate the family the heuristic did NOT choose by swapping the
	// dominant axis: temporarily flip the comparison via a mirrored call.
	other := ms.lowerBoundFamily(a, b, region, resolution, !ms.prefersX(a, b))
	if other.LB > first.LB {
		other.Segments += first.Segments
		return other
	}
	first.Segments += other.Segments
	return first
}

// prefersX reports which family the 45° heuristic would choose.
func (ms *MSDN) prefersX(a, b geom.Vec3) bool {
	return math.Abs(b.X-a.X) >= math.Abs(b.Y-a.Y)
}

// lowerBoundFamily runs the chain over an explicit family choice.
func (ms *MSDN) lowerBoundFamily(a, b geom.Vec3, region geom.MBR, resolution float64, useX bool) LowerEstimate {
	euclid := a.Dist(b)
	var lines []*CrossLine
	var lo, hi float64
	if useX {
		lines = ms.XLines
		lo, hi = math.Min(a.X, b.X), math.Max(a.X, b.X)
	} else {
		lines = ms.YLines
		lo, hi = math.Min(a.Y, b.Y), math.Max(a.Y, b.Y)
	}
	between := linesBetween(lines, lo, hi, planeStepFor(resolution))
	if len(between) == 0 {
		return LowerEstimate{LB: euclid}
	}
	return ms.chainOver(a, b, region, resolution, between, nil, 0)
}

// LowerBoundEnvelope is the paper's "dummy lower bound" (§4.2.2): it
// restricts the SDN to an envelope around the previous bound's path
// (thickened by margin), which can only increase the estimate. If the
// resulting range still fails to rank the candidate, the true lower bound at
// this resolution cannot either, so MR3 may skip straight to the next
// resolution.
func (ms *MSDN) LowerBoundEnvelope(a, b geom.Vec3, region geom.MBR, resolution float64, prev []Segment, margin float64) LowerEstimate {
	if len(prev) == 0 {
		return ms.lowerBound(a, b, region, resolution, nil, 0)
	}
	return ms.lowerBound(a, b, region, resolution, prev, margin)
}

func (ms *MSDN) lowerBound(a, b geom.Vec3, region geom.MBR, resolution float64, envelope []Segment, margin float64) LowerEstimate {
	return ms.lowerBoundFixed(a, b, region, resolution, planeStepFor(resolution), envelope, margin)
}

// lowerBoundFixed runs the estimation with an explicit plane-thinning step.
// For a FIXED step the bound is monotone in the point resolution (boxes only
// shrink); across different steps the bound is still always valid but need
// not be pointwise monotone, which is why MR3 keeps the running maximum.
func (ms *MSDN) lowerBoundFixed(a, b geom.Vec3, region geom.MBR, resolution float64, step int, envelope []Segment, margin float64) LowerEstimate {
	lines, lo, hi := ms.chooseFamily(a, b)
	between := linesBetween(lines, lo, hi, step)
	if len(between) == 0 {
		return LowerEstimate{LB: a.Dist(b)}
	}
	return ms.chainOver(a, b, region, resolution, between, envelope, margin)
}

// chainOver runs the layered chain DP over an ordered plane family subset.
func (ms *MSDN) chainOver(a, b geom.Vec3, region geom.MBR, resolution float64, between []*CrossLine, envelope []Segment, margin float64) LowerEstimate {
	euclid := a.Dist(b)
	// Order the planes from a's side to b's side.
	var aCoord float64
	if between[0].Axis == XAxis {
		aCoord = a.X
	} else {
		aCoord = a.Y
	}
	if math.Abs(between[0].Coord-aCoord) > math.Abs(between[len(between)-1].Coord-aCoord) {
		reverse(between)
	}

	var envBoxes []geom.MBR
	for _, s := range envelope {
		envBoxes = append(envBoxes, s.Box.XY().Expand(margin))
	}
	inEnvelope := func(s Segment) bool {
		if envBoxes == nil {
			return true
		}
		xy := s.Box.XY()
		for _, e := range envBoxes {
			if e.Intersects(xy) {
				return true
			}
		}
		return false
	}

	// Layered dynamic program: dist[k] = shortest chain from a to segment k
	// of the current line.
	est := LowerEstimate{}
	type layer struct {
		segs []Segment
		dist []float64
		prev []int
	}
	var layers []layer
	cur := layer{}
	for li, cl := range between {
		segs := cl.Segments(resolution, region)
		if envBoxes != nil {
			kept := segs[:0]
			for _, s := range segs {
				if inEnvelope(s) {
					kept = append(kept, s)
				}
			}
			segs = kept
		}
		est.Segments += len(segs)
		if len(segs) == 0 {
			// The region cut this line entirely; a path could still cross
			// it outside the clipped area, so skip the layer (weakens but
			// never invalidates the bound).
			continue
		}
		next := layer{
			segs: segs,
			dist: make([]float64, len(segs)),
			prev: make([]int, len(segs)),
		}
		for k, s := range segs {
			if li == 0 || len(layers) == 0 {
				next.dist[k] = s.Box.DistToPoint(a)
				next.prev[k] = -1
			} else {
				best := math.Inf(1)
				bestJ := -1
				for j, ps := range cur.segs {
					if d := cur.dist[j] + ps.Box.DistToBox(s.Box); d < best {
						best = d
						bestJ = j
					}
				}
				next.dist[k] = best
				next.prev[k] = bestJ
			}
		}
		layers = append(layers, next)
		cur = next
	}
	if len(layers) == 0 {
		return LowerEstimate{LB: euclid, Segments: est.Segments}
	}
	// Close the chain at b.
	last := layers[len(layers)-1]
	best := math.Inf(1)
	bestK := -1
	for k, s := range last.segs {
		if d := last.dist[k] + s.Box.DistToPoint(b); d < best {
			best = d
			bestK = k
		}
	}
	if bestK < 0 {
		est.LB = euclid
		return est
	}
	// The Euclidean distance is always a valid floor.
	est.LB = math.Max(best, euclid)
	// Reconstruct the path for the envelope optimisation.
	est.Path = make([]Segment, 0, len(layers))
	k := bestK
	for li := len(layers) - 1; li >= 0 && k >= 0; li-- {
		est.Path = append(est.Path, layers[li].segs[k])
		k = layers[li].prev[k]
	}
	reverseSegs(est.Path)
	return est
}

func reverse(s []*CrossLine) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

func reverseSegs(s []Segment) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

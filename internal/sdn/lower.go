package sdn

import (
	"math"

	"surfknn/internal/geom"
)

// LowerEstimate is the result of one SDN lower-bound estimation.
type LowerEstimate struct {
	LB float64
	// Path holds the SDN segments realising the bound, one per crossing
	// line; MR3's dummy-lower-bound optimisation thickens this path into an
	// envelope for the next, cheaper estimate. When the estimate was
	// produced through a Scratch, Path aliases that scratch and is valid
	// only until its next use — copy it to keep it.
	Path []Segment
	// Segments counts the SDN nodes examined (a CPU-cost proxy).
	Segments int
}

// Scratch holds the reusable buffers of the lower-bound estimator, so a warm
// estimation allocates nothing. The layered chain DP runs over one arena:
// every kept layer's segments are appended to segs, with dist/prev parallel
// to it (prev holds absolute arena indices, -1 on the first layer), instead
// of one segs/dist/prev triple allocated per layer. A Scratch is owned by a
// single goroutine; zero value is ready to use.
type Scratch struct {
	between  []*CrossLine
	envBoxes []geom.MBR
	idx      []int
	segs     []Segment
	dist     []float64
	prev     []int32
	path     []Segment
	pathAlt  []Segment // parks the first family's path in LowerBoundBothScratch
}

// LowerBound estimates a lower bound on the surface distance between a and
// b at the given SDN resolution, restricted to region (pass the search
// ellipse's MBR; the bound is valid for any path staying inside region,
// in particular for every path no longer than the current upper bound when
// region is that upper bound's ellipse).
//
// The Euclidean distance is always a valid floor, so the result is never
// below it.
func (ms *MSDN) LowerBound(a, b geom.Vec3, region geom.MBR, resolution float64) LowerEstimate {
	var sc Scratch
	return ms.lowerBound(&sc, a, b, region, resolution, nil, 0)
}

// LowerBoundScratch is LowerBound running over reusable scratch. The
// returned Path aliases sc.
func (ms *MSDN) LowerBoundScratch(sc *Scratch, a, b geom.Vec3, region geom.MBR, resolution float64) LowerEstimate {
	return ms.lowerBound(sc, a, b, region, resolution, nil, 0)
}

// LowerBoundBoth estimates with BOTH plane families and returns the larger
// bound. The paper's 45° heuristic picks a single family; since each
// family's chain is independently valid, their maximum is a strictly
// tighter (never worse) bound at roughly twice the cost. Offered as an
// extension; see the BenchmarkAblationBothFamilies targets.
func (ms *MSDN) LowerBoundBoth(a, b geom.Vec3, region geom.MBR, resolution float64) LowerEstimate {
	var sc Scratch
	return ms.LowerBoundBothScratch(&sc, a, b, region, resolution)
}

// LowerBoundBothScratch is LowerBoundBoth running over reusable scratch.
func (ms *MSDN) LowerBoundBothScratch(sc *Scratch, a, b geom.Vec3, region geom.MBR, resolution float64) LowerEstimate {
	first := ms.lowerBound(sc, a, b, region, resolution, nil, 0)
	if len(first.Path) > 0 {
		// The second run rebuilds sc.path; park the first family's path.
		sc.pathAlt = append(sc.pathAlt[:0], first.Path...)
		first.Path = sc.pathAlt
	}
	// Evaluate the family the heuristic did NOT choose by swapping the
	// dominant axis: temporarily flip the comparison via a mirrored call.
	other := ms.lowerBoundFamily(sc, a, b, region, resolution, !ms.prefersX(a, b))
	if other.LB > first.LB {
		other.Segments += first.Segments
		return other
	}
	first.Segments += other.Segments
	return first
}

// prefersX reports which family the 45° heuristic would choose.
func (ms *MSDN) prefersX(a, b geom.Vec3) bool {
	return math.Abs(b.X-a.X) >= math.Abs(b.Y-a.Y)
}

// lowerBoundFamily runs the chain over an explicit family choice.
func (ms *MSDN) lowerBoundFamily(sc *Scratch, a, b geom.Vec3, region geom.MBR, resolution float64, useX bool) LowerEstimate {
	euclid := a.Dist(b)
	var lines []*CrossLine
	var lo, hi float64
	if useX {
		lines = ms.XLines
		lo, hi = math.Min(a.X, b.X), math.Max(a.X, b.X)
	} else {
		lines = ms.YLines
		lo, hi = math.Min(a.Y, b.Y), math.Max(a.Y, b.Y)
	}
	sc.between = linesBetweenInto(lines, lo, hi, planeStepFor(resolution), sc.between)
	if len(sc.between) == 0 {
		return LowerEstimate{LB: euclid}
	}
	return ms.chainOver(sc, a, b, region, resolution, nil, 0)
}

// LowerBoundEnvelope is the paper's "dummy lower bound" (§4.2.2): it
// restricts the SDN to an envelope around the previous bound's path
// (thickened by margin), which can only increase the estimate. If the
// resulting range still fails to rank the candidate, the true lower bound at
// this resolution cannot either, so MR3 may skip straight to the next
// resolution.
func (ms *MSDN) LowerBoundEnvelope(a, b geom.Vec3, region geom.MBR, resolution float64, prev []Segment, margin float64) LowerEstimate {
	var sc Scratch
	return ms.LowerBoundEnvelopeScratch(&sc, a, b, region, resolution, prev, margin)
}

// LowerBoundEnvelopeScratch is LowerBoundEnvelope running over reusable
// scratch. prev must not alias sc's own path buffers (pass a caller-owned
// copy of the previous path).
func (ms *MSDN) LowerBoundEnvelopeScratch(sc *Scratch, a, b geom.Vec3, region geom.MBR, resolution float64, prev []Segment, margin float64) LowerEstimate {
	if len(prev) == 0 {
		return ms.lowerBound(sc, a, b, region, resolution, nil, 0)
	}
	return ms.lowerBound(sc, a, b, region, resolution, prev, margin)
}

func (ms *MSDN) lowerBound(sc *Scratch, a, b geom.Vec3, region geom.MBR, resolution float64, envelope []Segment, margin float64) LowerEstimate {
	return ms.lowerBoundFixed(sc, a, b, region, resolution, planeStepFor(resolution), envelope, margin)
}

// lowerBoundFixed runs the estimation with an explicit plane-thinning step.
// For a FIXED step the bound is monotone in the point resolution (boxes only
// shrink); across different steps the bound is still always valid but need
// not be pointwise monotone, which is why MR3 keeps the running maximum.
func (ms *MSDN) lowerBoundFixed(sc *Scratch, a, b geom.Vec3, region geom.MBR, resolution float64, step int, envelope []Segment, margin float64) LowerEstimate {
	lines, lo, hi := ms.chooseFamily(a, b)
	sc.between = linesBetweenInto(lines, lo, hi, step, sc.between)
	if len(sc.between) == 0 {
		return LowerEstimate{LB: a.Dist(b)}
	}
	return ms.chainOver(sc, a, b, region, resolution, envelope, margin)
}

// chainOver runs the layered chain DP over the ordered plane family subset
// in sc.between. All per-layer state lives in sc's arena buffers.
func (ms *MSDN) chainOver(sc *Scratch, a, b geom.Vec3, region geom.MBR, resolution float64, envelope []Segment, margin float64) LowerEstimate {
	between := sc.between
	euclid := a.Dist(b)
	// Order the planes from a's side to b's side.
	var aCoord float64
	if between[0].Axis == XAxis {
		aCoord = a.X
	} else {
		aCoord = a.Y
	}
	if math.Abs(between[0].Coord-aCoord) > math.Abs(between[len(between)-1].Coord-aCoord) {
		reverse(between)
	}

	hasEnv := len(envelope) > 0
	sc.envBoxes = sc.envBoxes[:0]
	for _, s := range envelope {
		sc.envBoxes = append(sc.envBoxes, s.Box.XY().Expand(margin))
	}

	// Layered dynamic program: dist[k] = shortest chain from a to arena
	// segment k. Each kept layer occupies a contiguous arena span; prev
	// holds absolute indices into the previous span (-1 on the first).
	est := LowerEstimate{}
	sc.segs = sc.segs[:0]
	prevStart := -1 // arena start of the previous kept layer
	for _, cl := range between {
		segStart := len(sc.segs)
		sc.segs, sc.idx = cl.segmentsInto(resolution, region, sc.idx, sc.segs)
		if hasEnv {
			kept := segStart
			for p := segStart; p < len(sc.segs); p++ {
				if envIntersects(sc.envBoxes, sc.segs[p]) {
					sc.segs[kept] = sc.segs[p]
					kept++
				}
			}
			sc.segs = sc.segs[:kept]
		}
		est.Segments += len(sc.segs) - segStart
		if len(sc.segs) == segStart {
			// The region cut this line entirely; a path could still cross
			// it outside the clipped area, so skip the layer (weakens but
			// never invalidates the bound).
			continue
		}
		end := len(sc.segs)
		sc.dist = growF64(sc.dist, end)
		sc.prev = growI32(sc.prev, end)
		if prevStart < 0 {
			for p := segStart; p < end; p++ {
				sc.dist[p] = sc.segs[p].Box.DistToPoint(a)
				sc.prev[p] = -1
			}
		} else {
			for p := segStart; p < end; p++ {
				best := math.Inf(1)
				bestJ := int32(-1)
				for j := prevStart; j < segStart; j++ {
					if d := sc.dist[j] + sc.segs[j].Box.DistToBox(sc.segs[p].Box); d < best {
						best = d
						bestJ = int32(j)
					}
				}
				sc.dist[p] = best
				sc.prev[p] = bestJ
			}
		}
		prevStart = segStart
	}
	if prevStart < 0 {
		return LowerEstimate{LB: euclid, Segments: est.Segments}
	}
	// Close the chain at b over the last kept layer.
	best := math.Inf(1)
	bestK := -1
	for k := prevStart; k < len(sc.segs); k++ {
		if d := sc.dist[k] + sc.segs[k].Box.DistToPoint(b); d < best {
			best = d
			bestK = k
		}
	}
	if bestK < 0 {
		est.LB = euclid
		return est
	}
	// The Euclidean distance is always a valid floor.
	est.LB = math.Max(best, euclid)
	// Reconstruct the path for the envelope optimisation: the prev chain
	// walks one layer back per step and ends at -1 on the first layer.
	sc.path = sc.path[:0]
	for k := bestK; k >= 0; k = int(sc.prev[k]) {
		sc.path = append(sc.path, sc.segs[k])
	}
	reverseSegs(sc.path)
	est.Path = sc.path
	return est
}

// envIntersects reports whether the segment's footprint touches any envelope
// box. A function rather than a closure: the chain DP calls it statically
// and nothing escapes.
func envIntersects(env []geom.MBR, s Segment) bool {
	xy := s.Box.XY()
	for _, e := range env {
		if e.Intersects(xy) {
			return true
		}
	}
	return false
}

// growF64 resizes s to n entries, preserving the first len(s) values and
// allocating only when the capacity is short.
func growF64(s []float64, n int) []float64 {
	if n <= cap(s) {
		return s[:n]
	}
	ns := make([]float64, n, n+n/2)
	copy(ns, s)
	return ns
}

// growI32 is growF64 for []int32.
func growI32(s []int32, n int) []int32 {
	if n <= cap(s) {
		return s[:n]
	}
	ns := make([]int32, n, n+n/2)
	copy(ns, s)
	return ns
}

func reverse(s []*CrossLine) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

func reverseSegs(s []Segment) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

package sdn

import (
	"math"

	"surfknn/internal/geom"
	"surfknn/internal/mesh"
)

// MSDN holds both cutting-plane families over a terrain at full resolution;
// lower resolutions are derived at query time by nested point retention and
// by thinning the plane set (the paper: "for a request of low resolution
// SDN data, we reduce the density of crossing lines selected too").
type MSDN struct {
	XLines []*CrossLine // ordered by plane coordinate
	YLines []*CrossLine
	// Spacing is the plane interval; the paper recommends the average edge
	// length of the original mesh for the densest setting.
	Spacing float64

	extent geom.MBR
}

// BuildMSDN extracts both plane families with the given spacing. A
// non-positive spacing defaults to the mesh's average edge length.
func BuildMSDN(m *mesh.Mesh, spacing float64) *MSDN {
	return BuildMSDNSubdiv(m, spacing, DefaultSubdiv)
}

// DefaultSubdiv is the default crossing-line subdivision: each intra-face
// portion of a crossing line contributes this many points, keeping segment
// boxes finer than the plane spacing so that transverse and vertical
// movement between planes shows up in the chained bound.
const DefaultSubdiv = 4

// BuildMSDNSubdiv is BuildMSDN with an explicit subdivision factor.
func BuildMSDNSubdiv(m *mesh.Mesh, spacing float64, subdiv int) *MSDN {
	ext := m.Extent()
	if spacing <= 0 {
		spacing = m.AverageEdgeLength()
	}
	if subdiv < 1 {
		subdiv = 1
	}
	ms := &MSDN{Spacing: spacing, extent: ext}
	for x := ext.MinX + spacing; x < ext.MaxX-spacing/2; x += spacing {
		if cl := extractCrossLine(m, XAxis, x, subdiv); len(cl.Pts) >= 2 {
			ms.XLines = append(ms.XLines, cl)
		}
	}
	for y := ext.MinY + spacing; y < ext.MaxY-spacing/2; y += spacing {
		if cl := extractCrossLine(m, YAxis, y, subdiv); len(cl.Pts) >= 2 {
			ms.YLines = append(ms.YLines, cl)
		}
	}
	return ms
}

// NumLines returns the total number of crossing lines stored.
func (ms *MSDN) NumLines() int { return len(ms.XLines) + len(ms.YLines) }

// NumPoints returns the total number of crossing-line points stored.
func (ms *MSDN) NumPoints() int {
	var n int
	for _, l := range ms.XLines {
		n += len(l.Pts)
	}
	for _, l := range ms.YLines {
		n += len(l.Pts)
	}
	return n
}

// chooseFamily applies the paper's heuristic: when the (x,y) direction
// between the points makes an angle below 45° with the x-axis, travel is
// mostly along x, so y-perpendicular planes (XAxis family) separate them
// best; otherwise use YAxis planes.
func (ms *MSDN) chooseFamily(a, b geom.Vec3) (lines []*CrossLine, lo, hi float64) {
	dx := math.Abs(b.X - a.X)
	dy := math.Abs(b.Y - a.Y)
	if dx >= dy {
		lo, hi = math.Min(a.X, b.X), math.Max(a.X, b.X)
		return ms.XLines, lo, hi
	}
	lo, hi = math.Min(a.Y, b.Y), math.Max(a.Y, b.Y)
	return ms.YLines, lo, hi
}

// linesBetween returns the planes with coordinate strictly between lo and
// hi, thinned by step (every step-th plane) but always at least one when any
// exists.
func linesBetween(lines []*CrossLine, lo, hi float64, step int) []*CrossLine {
	return linesBetweenInto(lines, lo, hi, step, nil)
}

// linesBetweenInto is linesBetween filling dst (truncated first); thinning
// compacts in place (dst[n] = dst[i] with i >= n), so the warm query path
// reuses one buffer across calls.
func linesBetweenInto(lines []*CrossLine, lo, hi float64, step int, dst []*CrossLine) []*CrossLine {
	between := dst[:0]
	for _, l := range lines {
		if l.Coord > lo && l.Coord < hi {
			between = append(between, l)
		}
	}
	if step <= 1 || len(between) == 0 {
		return between
	}
	n := 0
	for i := 0; i < len(between); i += step {
		between[n] = between[i]
		n++
	}
	return between[:n]
}

// planeStepFor maps an SDN resolution to a plane-thinning step.
func planeStepFor(resolution float64) int {
	if resolution >= 1 {
		return 1
	}
	step := int(math.Round(1 / resolution))
	if step < 1 {
		step = 1
	}
	return step
}

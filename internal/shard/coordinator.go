package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"surfknn/internal/geom"
	"surfknn/internal/obs"
	"surfknn/internal/server/api"
	"surfknn/internal/server/client"
)

// Config tunes a Coordinator.
type Config struct {
	// Manifest describes the fleet; every entry must carry an Addr.
	Manifest *Manifest
	// ShardTimeout bounds each individual shard call (default 10s). The
	// public request's own deadline still applies on top.
	ShardTimeout time.Duration
	// Retries is how many times a saturated (429) shard call is retried
	// with Retry-After backoff before the shard counts as failed
	// (default 2).
	Retries int
	// Stats receives the coordinator metrics; nil creates a private group.
	// Publishing it (as "surfknn_coord") is the caller's choice.
	Stats *obs.CoordStats
	// HTTPClient overrides the transport of every shard client (tests
	// inject httptest transports); nil uses the default.
	HTTPClient *http.Client
}

// shardConn is one shard the coordinator talks to.
type shardConn struct {
	meta   ShardMeta
	region geom.MBR
	cli    *client.Client
}

// Coordinator answers the public surfknn API over a fleet of shard
// servers, scattering the decomposed MR3 primitives and merging partial
// results so the assembled answer is bit-identical to one unsharded
// server's (see the package comment). Create with New, verify the fleet
// with Verify, expose over HTTP with Handler.
type Coordinator struct {
	tiling Tiling
	shards []shardConn // indexed iy*NX+ix
	cfg    Config
	stats  *obs.CoordStats

	// epochMu serialises logical updates: the coordinator assigns each one
	// the next epoch number and must finish replaying it before the next
	// claims a number, so every shard sees epochs in order.
	epochMu sync.Mutex
	epoch   uint64

	// faces is the terrain's face count, learned from the fleet in Verify
	// (every shard carries the full terrain). Zero until then; the SKQL
	// planner's catalog tolerates that — it only degrades the estimates.
	faces int
}

// New builds a coordinator from a manifest whose entries all carry shard
// addresses. It does not touch the network — call Verify before serving.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Manifest == nil {
		return nil, errors.New("shard: coordinator needs a manifest")
	}
	if err := cfg.Manifest.Validate(); err != nil {
		return nil, err
	}
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = 10 * time.Second
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.Stats == nil {
		cfg.Stats = obs.NewCoordStats()
	}
	tiling := cfg.Manifest.Tiling()
	c := &Coordinator{
		tiling: tiling,
		shards: make([]shardConn, tiling.NumTiles()),
		cfg:    cfg,
		stats:  cfg.Stats,
		epoch:  cfg.Manifest.Epoch,
	}
	opts := []client.Option{client.WithRetries(cfg.Retries)}
	if cfg.HTTPClient != nil {
		opts = append(opts, client.WithHTTPClient(cfg.HTTPClient))
	}
	for _, m := range cfg.Manifest.Shards {
		if m.Addr == "" {
			return nil, fmt.Errorf("shard: %s has no address", m.ID)
		}
		base := m.Addr
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		c.shards[m.IY*tiling.NX+m.IX] = shardConn{
			meta:   m,
			region: tiling.Region(m.IX, m.IY),
			cli:    client.New(base, opts...),
		}
	}
	return c, nil
}

// Stats returns the coordinator's metric group.
func (c *Coordinator) Stats() *obs.CoordStats { return c.stats }

// Verify health-checks every shard and cross-checks the topology: each
// shard must report the shard id its manifest entry claims and every shard
// must agree on the snapshot format version. It also adopts the fleet's
// highest epoch as the base for update numbering, so a coordinator
// restarted mid-stream continues the sequence instead of reissuing taken
// numbers.
func (c *Coordinator) Verify(ctx context.Context) error {
	results := make([]api.Healthz, len(c.shards))
	err := c.scatter(ctx, c.allShards(), func(ctx context.Context, i int, sc *shardConn) error {
		hz, err := sc.cli.Healthz(ctx)
		if err != nil {
			return err
		}
		if hz.ShardID != sc.meta.ID {
			return fmt.Errorf("reports shard id %q, manifest says %q", hz.ShardID, sc.meta.ID)
		}
		results[i] = hz
		return nil
	})
	if err != nil {
		return err
	}
	format := results[0].FormatVersion
	maxEpoch := uint64(0)
	for i, hz := range results {
		if hz.FormatVersion != format {
			return fmt.Errorf("shard: %s runs snapshot format v%d, %s runs v%d",
				c.shards[i].meta.ID, hz.FormatVersion, c.shards[0].meta.ID, format)
		}
		if hz.Epoch > maxEpoch {
			maxEpoch = hz.Epoch
		}
	}
	c.epochMu.Lock()
	if maxEpoch > c.epoch {
		c.epoch = maxEpoch
	}
	c.faces = results[0].Faces
	c.epochMu.Unlock()
	return nil
}

// tileIDs maps shard indexes to their manifest tile ids.
func (c *Coordinator) tileIDs(idx []int) []string {
	ids := make([]string, len(idx))
	for i, s := range idx {
		ids[i] = c.shards[s].meta.ID
	}
	return ids
}

// DegradedError reports a scatter that could not assemble a complete
// answer: which shards failed and why. The HTTP layer maps it to 503 with
// the per-shard detail in the error envelope.
type DegradedError struct {
	Shards []api.ShardError
}

func (e *DegradedError) Error() string {
	ids := make([]string, len(e.Shards))
	for i, s := range e.Shards {
		ids[i] = s.Shard
	}
	return fmt.Sprintf("shard: %d shard(s) unavailable: %s", len(e.Shards), strings.Join(ids, ", "))
}

// allShards returns every shard index.
func (c *Coordinator) allShards() []int {
	idx := make([]int, len(c.shards))
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// reachableShards returns the shards whose tile rectangle lies within
// planar distance radius of q — the only shards that can own an object
// whose 2-D (and therefore surface) distance to q is at most radius —
// counting the pruned rest.
func (c *Coordinator) reachableShards(q geom.Vec2, radius float64) []int {
	var idx []int
	for i := range c.shards {
		if c.shards[i].region.DistToPoint(q) <= radius {
			idx = append(idx, i)
		} else {
			c.stats.PrunedShards.Add(1)
		}
	}
	return idx
}

// scatter fans call out to the given shards concurrently, each under its
// own ShardTimeout slice of ctx, and gathers failures into a
// *DegradedError. A zero-length failure list means complete success.
func (c *Coordinator) scatter(ctx context.Context, targets []int, call func(ctx context.Context, i int, sc *shardConn) error) error {
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []api.ShardError
	)
	for _, i := range targets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.stats.ShardCalls.Add(1)
			callCtx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
			defer cancel()
			if err := call(callCtx, i, &c.shards[i]); err != nil {
				c.stats.ShardErrors.Add(1)
				mu.Lock()
				errs = append(errs, api.ShardError{Shard: c.shards[i].meta.ID, Error: err.Error()})
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if len(errs) > 0 {
		sort.Slice(errs, func(a, b int) bool { return errs[a].Shard < errs[b].Shard })
		return &DegradedError{Shards: errs}
	}
	return nil
}

// epochs tracks the min and max store epoch observed across one query's
// shard responses. The merged X-Epoch is the minimum: every shard has
// applied at least that logical update, so the answer is complete up to it.
type epochs struct {
	mu       sync.Mutex
	min, max uint64
	seen     bool
}

func (e *epochs) observe(v uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.seen {
		e.min, e.max, e.seen = v, v, true
		return
	}
	if v < e.min {
		e.min = v
	}
	if v > e.max {
		e.max = v
	}
}

// merged returns the fleet epoch the answer is complete up to.
func (e *epochs) merged() uint64 { return e.min }

// costs accumulates shard response costs; the merged cost reports the
// total distributed work, which legitimately exceeds one unsharded run's.
type costs struct {
	mu  sync.Mutex
	sum api.Cost
}

func (c *costs) add(v api.Cost) {
	c.mu.Lock()
	c.sum.Pages += v.Pages
	c.sum.CPUUs += v.CPUUs
	c.sum.ElapsedUs += v.ElapsedUs
	c.mu.Unlock()
}

// mergeCandidates canonically orders a gathered candidate union: ascending
// planar distance to q, object id as the tiebreak, duplicates (an object
// caught mid-move across an epoch-skewed fleet) keeping the nearest copy.
// The unsharded engine feeds candidates to the ranker in 2-D index order —
// ascending planar distance for step 1 — and the ranker's bounds are
// order-independent, so this canonical order reproduces its values bit for
// bit (exact distance ties aside, which have measure zero on real
// workloads).
func mergeCandidates(q geom.Vec2, lists [][]api.Candidate) []api.Candidate {
	var all []api.Candidate
	for _, l := range lists {
		all = append(all, l...)
	}
	d2 := func(cd api.Candidate) float64 {
		dx, dy := cd.X-q.X, cd.Y-q.Y
		return dx*dx + dy*dy
	}
	sort.Slice(all, func(a, b int) bool {
		da, db := d2(all[a]), d2(all[b])
		//lint:ignore float-eq canonical order is defined on exact float bits, mirroring index.SortByDist
		if da != db {
			return da < db
		}
		return all[a].ID < all[b].ID
	})
	out := all[:0]
	seen := make(map[int64]bool, len(all))
	for _, cd := range all {
		if seen[cd.ID] {
			continue
		}
		seen[cd.ID] = true
		out = append(out, cd)
	}
	return out
}

// rankShard picks the shard that runs the ranking steps: the one whose
// tile contains the query point. Any shard would do — each holds the full
// terrain — but the containing tile is deterministic and keeps a workload's
// ranking load spread across the fleet.
func (c *Coordinator) rankShard(q geom.Vec2) int {
	ix, iy := c.tiling.TileOf(q)
	return iy*c.tiling.NX + ix
}

// KNN answers a surface k-NN query over the fleet, bit-identical to the
// unsharded engine: scatter step 1, rank the gathered C1 on one shard to
// obtain the k-th upper bound, scatter step 3 to the shards within that
// radius, rank the gathered C2. Returns the result and the merged epoch.
func (c *Coordinator) KNN(ctx context.Context, req api.KNNRequest) (api.Result, uint64, error) {
	return c.knn(ctx, req, nil)
}

// knn is KNN with an optional execution trace for EXPLAIN (nil records
// nothing).
func (c *Coordinator) knn(ctx context.Context, req api.KNNRequest, tr *queryTrace) (api.Result, uint64, error) {
	q := geom.Vec2{X: req.X, Y: req.Y}
	var (
		ep    epochs
		cost  costs
		lists = make([][]api.Candidate, len(c.shards))
	)
	// Step 1: every shard contributes its k nearest by planar distance; no
	// bound exists yet to prune with.
	tr.touch(traceStep1, c.tileIDs(c.allShards()))
	err := c.scatter(ctx, c.allShards(), func(ctx context.Context, i int, sc *shardConn) error {
		res, _, err := sc.cli.ShardKNN2D(ctx, api.ShardKNN2DRequest{X: req.X, Y: req.Y, K: req.K})
		if err != nil {
			return err
		}
		ep.observe(res.Epoch)
		lists[i] = res.Candidates
		return nil
	})
	if err != nil {
		return api.Result{}, 0, err
	}
	c1 := mergeCandidates(q, lists)
	if len(c1) > req.K {
		c1 = c1[:req.K]
	}

	// Step 2: rank C1 with tightening on the query tile's shard.
	rank := c.rankShard(q)
	tr.touch(traceRankC1, c.tileIDs([]int{rank}))
	rankReq := api.ShardRankRequest{
		X: req.X, Y: req.Y, K: req.K,
		Sched: req.Sched, Options: req.Options, Timeout: req.Timeout,
		Tighten: true, Candidates: c1,
	}
	var ranked api.ShardResult
	err = c.scatter(ctx, []int{rank}, func(ctx context.Context, i int, sc *shardConn) error {
		res, _, err := sc.cli.ShardRank(ctx, rankReq)
		if err != nil {
			return err
		}
		ranked = res
		return nil
	})
	if err != nil {
		return api.Result{}, 0, err
	}
	ep.observe(ranked.Epoch)
	cost.add(ranked.Cost)
	tr.charge(traceRankC1, ranked.Cost)
	if len(ranked.Neighbors) == 0 {
		return api.Result{}, 0, errors.New("shard: no candidate objects on the fleet")
	}
	kth := len(ranked.Neighbors)
	if req.K < kth {
		kth = req.K
	}
	radius := float64(ranked.Neighbors[kth-1].UB)
	if math.IsInf(radius, 1) {
		return api.Result{}, 0, errors.New("shard: could not bound the k-th neighbour (disconnected surface?)")
	}

	// Step 3: gather every object within the radius, from the shards whose
	// tile the radius reaches.
	lists = make([][]api.Candidate, len(c.shards))
	reach := c.reachableShards(q, radius)
	tr.touch(traceStep3, c.tileIDs(reach))
	tr.bound(radius)
	err = c.scatter(ctx, reach, func(ctx context.Context, i int, sc *shardConn) error {
		res, _, err := sc.cli.ShardRange2D(ctx, api.ShardRange2DRequest{X: req.X, Y: req.Y, Radius: radius})
		if err != nil {
			return err
		}
		ep.observe(res.Epoch)
		lists[i] = res.Candidates
		return nil
	})
	if err != nil {
		return api.Result{}, 0, err
	}
	c2 := mergeCandidates(q, lists)

	// Step 4: settle the k-set over C2, again on the query tile's shard.
	tr.touch(traceRankC2, c.tileIDs([]int{rank}))
	rankReq.Tighten = false
	rankReq.Candidates = c2
	var final api.ShardResult
	err = c.scatter(ctx, []int{rank}, func(ctx context.Context, i int, sc *shardConn) error {
		res, _, err := sc.cli.ShardRank(ctx, rankReq)
		if err != nil {
			return err
		}
		final = res
		return nil
	})
	if err != nil {
		return api.Result{}, 0, err
	}
	ep.observe(final.Epoch)
	cost.add(final.Cost)
	tr.charge(traceRankC2, final.Cost)
	return api.Result{Neighbors: final.Neighbors, Cost: cost.sum}, ep.merged(), nil
}

// Range answers a surface range query: per-candidate classification
// against a fixed radius is independent of every other candidate, so each
// shard answers over its own partition and the coordinator concatenates,
// ordering by upper bound exactly like the engine.
func (c *Coordinator) Range(ctx context.Context, req api.RangeRequest) (api.Result, uint64, error) {
	return c.rangeQuery(ctx, req, nil)
}

func (c *Coordinator) rangeQuery(ctx context.Context, req api.RangeRequest, tr *queryTrace) (api.Result, uint64, error) {
	q := geom.Vec2{X: req.X, Y: req.Y}
	var (
		ep    epochs
		cost  costs
		lists = make([][]api.Neighbor, len(c.shards))
	)
	reach := c.reachableShards(q, req.Radius)
	tr.touch(traceScatter, c.tileIDs(reach))
	err := c.scatter(ctx, reach, func(ctx context.Context, i int, sc *shardConn) error {
		res, _, err := sc.cli.ShardRange(ctx, api.ShardRangeRequest{
			X: req.X, Y: req.Y, Radius: req.Radius,
			Sched: req.Sched, Options: req.Options, Timeout: req.Timeout,
		})
		if err != nil {
			return err
		}
		ep.observe(res.Epoch)
		cost.add(res.Cost)
		tr.charge(traceScatter, res.Cost)
		lists[i] = res.Neighbors
		return nil
	})
	if err != nil {
		return api.Result{}, 0, err
	}
	merged := mergeNeighbors(q, lists, -1)
	if !ep.seen {
		// The radius reached no tile at all: an empty answer at the
		// fleet's current epoch (probe one shard for the number).
		hz, err := c.shards[0].cli.Healthz(ctx)
		if err == nil {
			ep.observe(hz.Epoch)
		}
	}
	return api.Result{Neighbors: merged, Cost: cost.sum}, ep.merged(), nil
}

// EA answers the Enhanced Approximation benchmark: every shard returns its
// local top-k with exact distances and the coordinator keeps the global
// best k. No pruning bound exists before the scatter, so every shard is
// consulted.
func (c *Coordinator) EA(ctx context.Context, req api.KNNRequest) (api.Result, uint64, error) {
	return c.ea(ctx, req, nil)
}

func (c *Coordinator) ea(ctx context.Context, req api.KNNRequest, tr *queryTrace) (api.Result, uint64, error) {
	var (
		ep    epochs
		cost  costs
		lists = make([][]api.Neighbor, len(c.shards))
	)
	tr.touch(traceScatter, c.tileIDs(c.allShards()))
	err := c.scatter(ctx, c.allShards(), func(ctx context.Context, i int, sc *shardConn) error {
		res, _, err := sc.cli.ShardEA(ctx, api.ShardEARequest{X: req.X, Y: req.Y, K: req.K, Timeout: req.Timeout})
		if err != nil {
			return err
		}
		ep.observe(res.Epoch)
		cost.add(res.Cost)
		tr.charge(traceScatter, res.Cost)
		lists[i] = res.Neighbors
		return nil
	})
	if err != nil {
		return api.Result{}, 0, err
	}
	merged := mergeNeighbors(geom.Vec2{X: req.X, Y: req.Y}, lists, req.K)
	return api.Result{Neighbors: merged, Cost: cost.sum}, ep.merged(), nil
}

// mergeNeighbors concatenates per-shard neighbour lists and orders them by
// (upper bound, planar distance to q, id), truncating to k when k >= 0.
// This is exactly the engine's result order: its final sort is a stable
// upper-bound sort over candidates enumerated in canonical (planar
// distance, id) order, which composes to the same total order.
func mergeNeighbors(q geom.Vec2, lists [][]api.Neighbor, k int) []api.Neighbor {
	var all []api.Neighbor
	for _, l := range lists {
		all = append(all, l...)
	}
	d2 := func(n api.Neighbor) float64 {
		dx, dy := n.X-q.X, n.Y-q.Y
		return dx*dx + dy*dy
	}
	sort.Slice(all, func(a, b int) bool {
		//lint:ignore float-eq bit-identical merge order requires exact comparison, mirroring the engine's stable sort
		if all[a].UB != all[b].UB {
			return all[a].UB < all[b].UB
		}
		//lint:ignore float-eq same: the tiebreak must match index.SortByDist bit for bit
		if da, db := d2(all[a]), d2(all[b]); da != db {
			return da < db
		}
		return all[a].ID < all[b].ID
	})
	if k >= 0 && len(all) > k {
		all = all[:k]
	}
	if all == nil {
		all = []api.Neighbor{}
	}
	return all
}

// Distance answers a point-to-point surface distance query. The terrain is
// replicated on every shard, so any one can answer; the query tile's shard
// is asked first and the rest serve as fallbacks.
func (c *Coordinator) Distance(ctx context.Context, req api.DistanceRequest) (api.DistanceResponse, uint64, error) {
	return c.distance(ctx, req, nil)
}

func (c *Coordinator) distance(ctx context.Context, req api.DistanceRequest, tr *queryTrace) (api.DistanceResponse, uint64, error) {
	order := []int{c.rankShard(geom.Vec2{X: req.X, Y: req.Y})}
	for i := range c.shards {
		if i != order[0] {
			order = append(order, i)
		}
	}
	var errs []api.ShardError
	for _, i := range order {
		sc := &c.shards[i]
		c.stats.ShardCalls.Add(1)
		callCtx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
		res, meta, err := sc.cli.Distance(callCtx, req)
		cancel()
		if err == nil {
			tr.touch(traceScatter, c.tileIDs([]int{i}))
			return res, meta.Epoch, nil
		}
		c.stats.ShardErrors.Add(1)
		var apiErr *client.APIError
		if errors.As(err, &apiErr) && apiErr.Status < http.StatusInternalServerError {
			// A 4xx is the answer (bad point, off-terrain), not an outage:
			// every shard would refuse identically.
			return api.DistanceResponse{}, 0, err
		}
		errs = append(errs, api.ShardError{Shard: sc.meta.ID, Error: err.Error()})
	}
	return api.DistanceResponse{}, 0, &DegradedError{Shards: errs}
}

// Upsert applies one object batch fleet-wide under the next epoch: each
// object is routed to the tile that owns its new position, and its id is
// broadcast as a delete to every other shard so an object moving across a
// tile boundary never ends up live twice. All shards apply (and publish)
// the same epoch; failure of any shard leaves the fleet degraded and is
// reported as such — replaying the same objects is safe because ApplyAt is
// idempotent and later epochs subsume earlier ones.
func (c *Coordinator) Upsert(ctx context.Context, req api.UpsertRequest) (api.UpdateResponse, error) {
	for i, o := range req.Objects {
		if o.ID == nil {
			return api.UpdateResponse{}, &badRequestError{fmt.Sprintf("objects[%d]: missing id", i)}
		}
	}
	c.epochMu.Lock()
	defer c.epochMu.Unlock()
	epoch := c.epoch + 1
	c.epoch = epoch

	owned := make([][]api.UpsertObject, len(c.shards))
	allIDs := make([]int64, len(req.Objects))
	ownerOf := make(map[int64]int, len(req.Objects))
	for i, o := range req.Objects {
		ix, iy := c.tiling.TileOf(geom.Vec2{X: o.X, Y: o.Y})
		s := iy*c.tiling.NX + ix
		owned[s] = append(owned[s], o)
		allIDs[i] = *o.ID
		ownerOf[*o.ID] = s
	}
	err := c.scatter(ctx, c.allShards(), func(ctx context.Context, i int, sc *shardConn) error {
		var deletes []int64
		for _, id := range allIDs {
			if ownerOf[id] != i {
				deletes = append(deletes, id)
			}
		}
		_, _, err := sc.cli.ShardObjects(ctx, api.ShardObjectsRequest{
			Epoch:     epoch,
			Objects:   owned[i],
			DeleteIDs: deletes,
		})
		return err
	})
	if err != nil {
		return api.UpdateResponse{}, err
	}
	c.stats.Updates.Add(1)
	return api.UpdateResponse{Epoch: epoch, Count: len(req.Objects)}, nil
}

// Delete removes a batch of objects fleet-wide under the next epoch. Ids
// are broadcast to every shard — only the owner has each object live, and
// deleting an absent id is a no-op — and the per-shard applied counts sum
// to the number of objects that were actually live.
func (c *Coordinator) Delete(ctx context.Context, req api.DeleteRequest) (api.DeleteResponse, error) {
	c.epochMu.Lock()
	defer c.epochMu.Unlock()
	epoch := c.epoch + 1
	c.epoch = epoch

	var deleted int64
	var mu sync.Mutex
	err := c.scatter(ctx, c.allShards(), func(ctx context.Context, i int, sc *shardConn) error {
		res, _, err := sc.cli.ShardObjects(ctx, api.ShardObjectsRequest{Epoch: epoch, DeleteIDs: req.IDs})
		if err != nil {
			return err
		}
		mu.Lock()
		deleted += int64(res.Applied)
		mu.Unlock()
		return nil
	})
	if err != nil {
		return api.DeleteResponse{}, err
	}
	distinct := make(map[int64]struct{}, len(req.IDs))
	for _, id := range req.IDs {
		distinct[id] = struct{}{}
	}
	c.stats.Updates.Add(1)
	return api.DeleteResponse{
		Epoch:   epoch,
		Deleted: int(deleted),
		Missing: len(distinct) - int(deleted),
	}, nil
}

// Healthz assembles the fleet's health: per-shard status lines, the summed
// object count, and the merged (minimum) epoch. A fleet with unreachable
// shards reports status "degraded" — the coordinator is alive, the answer
// surface is not complete.
func (c *Coordinator) Healthz(ctx context.Context) (api.Healthz, error) {
	type line struct {
		hz  api.Healthz
		err error
	}
	results := make([]line, len(c.shards))
	// Health must not degrade into an error: collect per-shard outcomes.
	//lint:ignore dropped-error every per-shard failure is captured in results and reported in the body
	_ = c.scatter(ctx, c.allShards(), func(ctx context.Context, i int, sc *shardConn) error {
		hz, err := sc.cli.Healthz(ctx)
		results[i] = line{hz: hz, err: err}
		return nil // failures are reported in the body, not as a scatter error
	})
	out := api.Healthz{Status: "ok"}
	var ep epochs
	for i, r := range results {
		sh := api.ShardHealth{ID: c.shards[i].meta.ID, Addr: c.shards[i].cli.Base()}
		if r.err != nil {
			sh.Status = "unreachable"
			out.Status = "degraded"
		} else {
			sh.Status = r.hz.Status
			sh.Epoch = r.hz.Epoch
			sh.Objects = r.hz.Objects
			out.Objects += r.hz.Objects
			out.Vertices = r.hz.Vertices
			out.Faces = r.hz.Faces
			out.FormatVersion = r.hz.FormatVersion
			ep.observe(r.hz.Epoch)
		}
		out.Shards = append(out.Shards, sh)
	}
	out.Epoch = ep.merged()
	return out, nil
}

// badRequestError marks a validation failure the HTTP layer should map to
// 400 rather than 503.
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

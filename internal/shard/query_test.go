package shard

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"surfknn/internal/core"
	"surfknn/internal/geom"
	"surfknn/internal/server/api"
	"surfknn/internal/server/client"
)

// TestCoordinatorQuery pins the SKQL front door over a sharded fleet: the
// same statement answers bit-identically to the unsharded engine, and
// EXPLAIN returns the distributed plan — scatter/rank steps annotated with
// the tiles actually touched and shard-reported costs.
func TestCoordinatorQuery(t *testing.T) {
	db := buildSourceDB(t)
	f := startFleet(t, db, 2, 1)
	ts := httptest.NewServer(f.coord.Handler())
	t.Cleanup(ts.Close)
	cli := client.New(ts.URL)
	ctx := context.Background()

	res, meta, err := cli.Query(ctx, api.QueryRequest{Q: "SELECT k=5 NEAREST (800, 800)"})
	if err != nil {
		t.Fatalf("query via coordinator: %v", err)
	}
	if res.Form != "select" || res.Algorithm != "mr3" {
		t.Fatalf("form/algorithm = %q/%q", res.Form, res.Algorithm)
	}
	q, err := db.SurfacePointAt(geom.Vec2{X: 800, Y: 800})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := db.MR3(q, 5, core.S1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "skql knn", res.Neighbors, wireNeighbors(direct))
	if meta.Epoch != db.CurrentEpoch() {
		t.Errorf("X-Epoch %d, want %d", meta.Epoch, db.CurrentEpoch())
	}

	// EXPLAIN: the distributed plan, tiles annotated.
	exp, _, err := cli.Explain(ctx, api.ExplainRequest{Q: "EXPLAIN SELECT k=5 NEAREST (800, 800)"})
	if err != nil {
		t.Fatalf("explain via coordinator: %v", err)
	}
	if exp.Algorithm != "mr3" || exp.Plan.Op != "mr3" {
		t.Fatalf("explain algorithm/root = %q/%q, want mr3", exp.Algorithm, exp.Plan.Op)
	}
	if exp.Plan.Cost == nil || exp.Plan.Cost.Pages == 0 {
		t.Fatalf("root carries no actual cost: %+v", exp.Plan.Cost)
	}
	ops := map[string]api.PlanNode{}
	for _, ch := range exp.Plan.Children {
		ops[ch.Op] = ch
	}
	s1, ok := ops["scatter:knn2d"]
	if !ok || len(s1.Tiles) != 2 {
		t.Fatalf("scatter:knn2d tiles = %v, want both tiles", s1.Tiles)
	}
	r1, ok := ops["rank:rank-c1"]
	if !ok || len(r1.Tiles) != 1 {
		t.Fatalf("rank:rank-c1 tiles = %v, want exactly the query tile", r1.Tiles)
	}
	if r1.Cost == nil || r1.Cost.Pages == 0 {
		t.Errorf("rank:rank-c1 carries no shard cost: %+v", r1.Cost)
	}
	s3, ok := ops["scatter:range2d"]
	if !ok || len(s3.Tiles) == 0 {
		t.Fatalf("scatter:range2d tiles = %v, want the reachable tiles", s3.Tiles)
	}
	if !strings.Contains(exp.Text, "tiles=[") {
		t.Errorf("rendered text has no tile annotations:\n%s", exp.Text)
	}

	// Parse errors carry a position the caret diagnostic needs.
	_, _, err = cli.Query(ctx, api.QueryRequest{Q: "SELECT k=5 NEAREST (800"})
	var apiErr *client.APIError
	if !asAPIError(err, &apiErr) || apiErr.Line != 1 || apiErr.Col == 0 {
		t.Errorf("parse error = %v, want a positioned 400", err)
	}

	// SUBSCRIBE is per-server state: the coordinator refuses it, typed.
	_, _, err = cli.Query(ctx, api.QueryRequest{Q: "SUBSCRIBE k=3 FOLLOW (800, 800)"})
	if !asAPIError(err, &apiErr) || apiErr.Code != api.CodeBadRequest {
		t.Errorf("subscribe error = %v, want 400 bad_request", err)
	}
}

// TestCoordinatorQueryRange pins the RANGE form and its scatter plan.
func TestCoordinatorQueryRange(t *testing.T) {
	db := buildSourceDB(t)
	f := startFleet(t, db, 2, 1)
	ts := httptest.NewServer(f.coord.Handler())
	t.Cleanup(ts.Close)
	cli := client.New(ts.URL)
	ctx := context.Background()

	res, _, err := cli.Query(ctx, api.QueryRequest{Q: "RANGE (800, 800) WITHIN 500"})
	if err != nil {
		t.Fatalf("range via coordinator: %v", err)
	}
	q, err := db.SurfacePointAt(geom.Vec2{X: 800, Y: 800})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := db.SurfaceRange(q, 500, core.S1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "skql range", res.Neighbors, wireNeighbors(direct))

	exp, _, err := cli.Explain(ctx, api.ExplainRequest{Q: "RANGE (800, 800) WITHIN 500"})
	if err != nil {
		t.Fatal(err)
	}
	if exp.Plan.Op != "range" || len(exp.Plan.Children) != 1 || exp.Plan.Children[0].Op != "scatter:range" {
		t.Fatalf("range plan = %+v", exp.Plan)
	}
	if len(exp.Plan.Children[0].Tiles) == 0 {
		t.Error("scatter:range has no tile annotation")
	}
}

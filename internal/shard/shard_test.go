package shard

import (
	"context"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"surfknn/internal/core"
	"surfknn/internal/dem"
	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/server"
	"surfknn/internal/server/api"
	"surfknn/internal/server/client"
	"surfknn/internal/workload"
)

// buildSourceDB is the golden fixture: the same terrain shape the server
// tests use, with enough objects that a 2×2 cut puts several in every tile.
func buildSourceDB(t testing.TB) *core.TerrainDB {
	t.Helper()
	g := dem.Synthesize(dem.EP, 16, 100, 2006)
	m := mesh.FromGrid(g)
	db, err := core.BuildTerrainDB(m, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	objs, err := workload.RandomObjects(m, db.Loc, 60, 2007)
	if err != nil {
		t.Fatal(err)
	}
	db.SetObjects(objs)
	return db
}

// fleet is a live 2×2 sharded deployment over httptest servers.
type fleet struct {
	coord    *Coordinator
	servers  []*httptest.Server
	manifest *Manifest
}

// startFleet cuts db into nx×ny shard snapshots, loads each into its own
// server.Server behind httptest, and wires a verified coordinator over
// them.
func startFleet(t *testing.T, db *core.TerrainDB, nx, ny int) *fleet {
	t.Helper()
	dir := t.TempDir()
	man, err := Cut(db, nx, ny, dir, "golden")
	if err != nil {
		t.Fatal(err)
	}
	f := &fleet{manifest: man}
	for i := range man.Shards {
		sdb, err := core.LoadFile(dir+"/"+man.Shards[i].File, core.Config{})
		if err != nil {
			t.Fatalf("loading shard %s: %v", man.Shards[i].ID, err)
		}
		srv := server.New(sdb, server.Config{ShardID: man.Shards[i].ID, CacheEntries: -1})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		f.servers = append(f.servers, ts)
		man.Shards[i].Addr = ts.URL
	}
	f.coord, err = New(Config{Manifest: man})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.coord.Verify(context.Background()); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return f
}

// wireNeighbors converts an engine result to wire form for bitwise
// comparison with a coordinator answer.
func wireNeighbors(res core.Result) []api.Neighbor {
	out := make([]api.Neighbor, len(res.Neighbors))
	for i, n := range res.Neighbors {
		out[i] = api.Neighbor{
			ID: n.Object.ID,
			X:  n.Object.Point.Pos.X,
			Y:  n.Object.Point.Pos.Y,
			Z:  n.Object.Point.Pos.Z,
			LB: api.Float(n.LB),
			UB: api.Float(n.UB),
		}
	}
	return out
}

// requireIdentical asserts two neighbour lists match in membership, order
// and exact float bits.
func requireIdentical(t *testing.T, label string, got, want []api.Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d neighbours, want %d\ngot:  %+v\nwant: %+v", label, len(got), len(want), got, want)
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.ID != w.ID {
			t.Fatalf("%s: neighbour %d id %d, want %d\ngot:  %+v\nwant: %+v", label, i, g.ID, w.ID, got, want)
		}
		if math.Float64bits(g.X) != math.Float64bits(w.X) ||
			math.Float64bits(g.Y) != math.Float64bits(w.Y) ||
			math.Float64bits(g.Z) != math.Float64bits(w.Z) {
			t.Errorf("%s: neighbour %d position (%v,%v,%v) not bit-identical to (%v,%v,%v)",
				label, i, g.X, g.Y, g.Z, w.X, w.Y, w.Z)
		}
		if math.Float64bits(float64(g.LB)) != math.Float64bits(float64(w.LB)) ||
			math.Float64bits(float64(g.UB)) != math.Float64bits(float64(w.UB)) {
			t.Errorf("%s: neighbour %d bounds [%v,%v] not bit-identical to [%v,%v]",
				label, i, float64(g.LB), float64(g.UB), float64(w.LB), float64(w.UB))
		}
	}
}

// TestTilingPartition pins the ownership geometry: every point maps to
// exactly one tile whose region contains it, and the cut partitions the
// object set without loss or duplication.
func TestTilingPartition(t *testing.T) {
	db := buildSourceDB(t)
	tiling := Tiling{NX: 3, NY: 2, Extent: db.Mesh.Extent()}
	for _, o := range db.Objects() {
		p := o.Point.XY()
		ix, iy := tiling.TileOf(p)
		r := tiling.Region(ix, iy)
		// Containment with the half-open convention: the region's Contains
		// is closed, so the owned point must at least lie in the closed
		// rectangle.
		if !r.Contains(p) {
			t.Errorf("object %d at %v assigned to tile (%d,%d) with region %+v", o.ID, p, ix, iy, r)
		}
	}
	dir := t.TempDir()
	man, err := Cut(db, 3, 2, dir, "part")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range man.Shards {
		total += s.Objects
	}
	if total != len(db.Objects()) {
		t.Errorf("cut distributed %d objects, source has %d", total, len(db.Objects()))
	}
	if man.Epoch != db.CurrentEpoch() {
		t.Errorf("manifest epoch %d, source at %d", man.Epoch, db.CurrentEpoch())
	}
}

// TestManifestRoundTrip pins the manifest file format.
func TestManifestRoundTrip(t *testing.T) {
	db := buildSourceDB(t)
	dir := t.TempDir()
	man, err := Cut(db, 2, 2, dir, "rt")
	if err != nil {
		t.Fatal(err)
	}
	path := dir + "/rt.manifest.json"
	if err := WriteManifest(man, path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NX != man.NX || back.NY != man.NY || back.Epoch != man.Epoch || len(back.Shards) != len(man.Shards) {
		t.Errorf("round trip changed the manifest: %+v vs %+v", back, man)
	}
	if got := back.Tiling().Extent; got != db.Mesh.Extent() {
		t.Errorf("extent round trip: %+v, want %+v", got, db.Mesh.Extent())
	}
}

// TestShardedEquivalence is the acceptance test of the whole subsystem: a
// 2×2-sharded fleet must answer MR3 k-NN, EA and surface range queries
// bit-identically — same objects, same order, same float bits in every
// bound, same epoch — to the unsharded database, before and after a
// sequence of coordinator-routed updates.
func TestShardedEquivalence(t *testing.T) {
	db := buildSourceDB(t)
	f := startFleet(t, db, 2, 2)
	ctx := context.Background()

	queries := []struct {
		x, y float64
		k    int
	}{
		{800, 800, 5},
		{200, 300, 3},
		{1400, 200, 7},
		{100, 1450, 1},
		{900, 1000, 10},
	}

	check := func(stage string) {
		t.Helper()
		wantEpoch := db.CurrentEpoch()
		for _, qc := range queries {
			q, err := db.SurfacePointAt(geom.Vec2{X: qc.x, Y: qc.y})
			if err != nil {
				t.Fatal(err)
			}

			// MR3 k-NN.
			direct, err := db.MR3(q, qc.k, core.S1, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			res, epoch, err := f.coord.KNN(ctx, api.KNNRequest{X: qc.x, Y: qc.y, K: qc.k})
			if err != nil {
				t.Fatalf("%s: coordinator knn(%g,%g,k=%d): %v", stage, qc.x, qc.y, qc.k, err)
			}
			requireIdentical(t, stage+" knn", res.Neighbors, wireNeighbors(direct))
			if epoch != wantEpoch {
				t.Errorf("%s knn: merged epoch %d, unsharded at %d", stage, epoch, wantEpoch)
			}

			// EA.
			directEA, err := db.EA(q, qc.k)
			if err != nil {
				t.Fatal(err)
			}
			eaRes, eaEpoch, err := f.coord.EA(ctx, api.KNNRequest{X: qc.x, Y: qc.y, K: qc.k})
			if err != nil {
				t.Fatalf("%s: coordinator ea: %v", stage, err)
			}
			requireIdentical(t, stage+" ea", eaRes.Neighbors, wireNeighbors(directEA))
			if eaEpoch != wantEpoch {
				t.Errorf("%s ea: merged epoch %d, unsharded at %d", stage, eaEpoch, wantEpoch)
			}

			// Surface range, radius picked from the k-NN answer so it is
			// always meaningful.
			if len(direct.Neighbors) > 0 {
				radius := direct.Neighbors[len(direct.Neighbors)-1].UB * 1.1
				if radius > 0 && !math.IsInf(radius, 1) {
					directRange, err := db.SurfaceRange(q, radius, core.S1, core.Options{})
					if err != nil {
						t.Fatal(err)
					}
					rr, rEpoch, err := f.coord.Range(ctx, api.RangeRequest{X: qc.x, Y: qc.y, Radius: radius})
					if err != nil {
						t.Fatalf("%s: coordinator range: %v", stage, err)
					}
					requireIdentical(t, stage+" range", rr.Neighbors, wireNeighbors(directRange))
					if rEpoch != wantEpoch {
						t.Errorf("%s range: merged epoch %d, unsharded at %d", stage, rEpoch, wantEpoch)
					}
				}
			}
		}
	}

	check("initial")

	// Apply the same logical updates to the fleet (through the coordinator)
	// and the unsharded database: inserts, a cross-tile move, deletes.
	id := func(v int64) *int64 { return &v }
	up1 := api.UpsertRequest{Objects: []api.UpsertObject{
		{ID: id(9001), X: 150, Y: 150},   // tile (0,0)
		{ID: id(9002), X: 1400, Y: 1400}, // tile (1,1)
	}}
	if _, err := f.coord.Upsert(ctx, up1); err != nil {
		t.Fatalf("upsert 1: %v", err)
	}
	mirror := func(objs []api.UpsertObject) {
		t.Helper()
		batch := make([]workload.Object, len(objs))
		for i, o := range objs {
			p, err := db.SurfacePointAt(geom.Vec2{X: o.X, Y: o.Y})
			if err != nil {
				t.Fatal(err)
			}
			batch[i] = workload.Object{ID: *o.ID, Point: p}
		}
		db.ObjectStore().Upsert(batch)
	}
	mirror(up1.Objects)
	check("after insert")

	// Move 9001 across the tile boundary: the coordinator must route the
	// upsert to tile (1,1) and broadcast the delete to the rest.
	up2 := api.UpsertRequest{Objects: []api.UpsertObject{{ID: id(9001), X: 1300, Y: 1350}}}
	if _, err := f.coord.Upsert(ctx, up2); err != nil {
		t.Fatalf("move: %v", err)
	}
	mirror(up2.Objects)
	check("after cross-tile move")

	del := api.DeleteRequest{IDs: []int64{9002, 424242}}
	dres, err := f.coord.Delete(ctx, del)
	if err != nil {
		t.Fatalf("delete: %v", err)
	}
	if dres.Deleted != 1 || dres.Missing != 1 {
		t.Errorf("delete response = %+v, want deleted 1 missing 1", dres)
	}
	db.ObjectStore().Delete(del.IDs)
	check("after delete")

	if got, want := dres.Epoch, db.CurrentEpoch(); got != want {
		t.Errorf("fleet epoch %d after updates, unsharded at %d", got, want)
	}
}

// TestCoordinatorHTTP drives the public API through the coordinator's own
// HTTP handler: the same bodies a standalone server accepts, the merged
// epoch in X-Epoch, and typed envelopes on errors.
func TestCoordinatorHTTP(t *testing.T) {
	db := buildSourceDB(t)
	f := startFleet(t, db, 2, 2)
	ts := httptest.NewServer(f.coord.Handler())
	t.Cleanup(ts.Close)
	cli := client.New(ts.URL)
	ctx := context.Background()

	res, meta, err := cli.KNN(ctx, api.KNNRequest{X: 800, Y: 800, K: 5})
	if err != nil {
		t.Fatalf("knn via coordinator: %v", err)
	}
	q, err := db.SurfacePointAt(geom.Vec2{X: 800, Y: 800})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := db.MR3(q, 5, core.S1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "http knn", res.Neighbors, wireNeighbors(direct))
	if meta.Epoch != db.CurrentEpoch() {
		t.Errorf("X-Epoch %d, want %d", meta.Epoch, db.CurrentEpoch())
	}

	// An upsert through the coordinator advances X-Epoch fleet-wide.
	id := int64(7777)
	ur, umeta, err := cli.Upsert(ctx, api.UpsertRequest{Objects: []api.UpsertObject{{ID: &id, X: 800, Y: 800}}})
	if err != nil {
		t.Fatalf("upsert via coordinator: %v", err)
	}
	if ur.Epoch != db.CurrentEpoch()+1 || umeta.Epoch != ur.Epoch {
		t.Errorf("upsert epoch body=%d header=%d, want %d", ur.Epoch, umeta.Epoch, db.CurrentEpoch()+1)
	}
	res2, meta2, err := cli.KNN(ctx, api.KNNRequest{X: 800, Y: 800, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Neighbors) != 1 || res2.Neighbors[0].ID != id {
		t.Errorf("nearest after upsert = %+v, want id %d", res2.Neighbors, id)
	}
	if meta2.Epoch != ur.Epoch {
		t.Errorf("post-upsert X-Epoch %d, want %d", meta2.Epoch, ur.Epoch)
	}

	// Healthz reports the full topology.
	hz, err := cli.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || len(hz.Shards) != 4 {
		t.Errorf("coordinator healthz = %+v", hz)
	}
	for _, sh := range hz.Shards {
		if sh.Status != "ok" || sh.Epoch != ur.Epoch {
			t.Errorf("shard health %+v, want ok at epoch %d", sh, ur.Epoch)
		}
	}

	// Validation failures are typed envelopes, not scatters.
	_, _, err = cli.KNN(ctx, api.KNNRequest{X: 800, Y: 800, K: 0})
	var apiErr *client.APIError
	if !asAPIError(err, &apiErr) || apiErr.Status != http.StatusBadRequest || apiErr.Code != api.CodeBadRequest {
		t.Errorf("k=0 error = %v, want 400 bad_request", err)
	}
}

// TestShardDownDegradation pins graceful degradation: with one shard dead,
// queries that need it answer 503 shard_unavailable naming the shard, and
// the coordinator's healthz reports "degraded" rather than failing.
func TestShardDownDegradation(t *testing.T) {
	db := buildSourceDB(t)
	f := startFleet(t, db, 2, 2)
	ts := httptest.NewServer(f.coord.Handler())
	t.Cleanup(ts.Close)
	cli := client.New(ts.URL)
	ctx := context.Background()

	// Kill tile-1-1.
	f.servers[3].Close()
	downID := f.manifest.Shards[3].ID

	_, _, err := cli.KNN(ctx, api.KNNRequest{X: 800, Y: 800, K: 5})
	var apiErr *client.APIError
	if !asAPIError(err, &apiErr) {
		t.Fatalf("knn with a dead shard = %v, want APIError", err)
	}
	if apiErr.Status != http.StatusServiceUnavailable || apiErr.Code != api.CodeShardUnavailable {
		t.Fatalf("status %d code %q, want 503 shard_unavailable", apiErr.Status, apiErr.Code)
	}
	if len(apiErr.Shards) != 1 || apiErr.Shards[0].Shard != downID {
		t.Errorf("degraded envelope shards = %+v, want exactly %q", apiErr.Shards, downID)
	}

	// Updates must also refuse rather than partially apply silently.
	id := int64(8888)
	_, _, err = cli.Upsert(ctx, api.UpsertRequest{Objects: []api.UpsertObject{{ID: &id, X: 100, Y: 100}}})
	if !asAPIError(err, &apiErr) || apiErr.Code != api.CodeShardUnavailable {
		t.Errorf("upsert with a dead shard = %v, want shard_unavailable", err)
	}

	// Healthz keeps answering, marked degraded.
	hz, err := cli.Healthz(ctx)
	if err != nil {
		t.Fatalf("healthz with a dead shard: %v", err)
	}
	if hz.Status != "degraded" {
		t.Errorf("fleet status %q, want degraded", hz.Status)
	}
	down := 0
	for _, sh := range hz.Shards {
		if sh.Status == "unreachable" {
			down++
			if sh.ID != downID {
				t.Errorf("unreachable shard %q, want %q", sh.ID, downID)
			}
		}
	}
	if down != 1 {
		t.Errorf("%d unreachable shards, want 1", down)
	}

	// A query whose search region stays clear of the dead tile still
	// answers: distance is terrain-only and fails over.
	if _, _, err := cli.Distance(ctx, api.DistanceRequest{X: 100, Y: 100, X2: 300, Y2: 200}); err != nil {
		t.Errorf("distance with a dead shard: %v", err)
	}
}

// TestVerifyRejectsMismatchedTopology pins the startup check: a manifest
// pointing a tile at the wrong shard process must be caught before
// traffic.
func TestVerifyRejectsMismatchedTopology(t *testing.T) {
	db := buildSourceDB(t)
	dir := t.TempDir()
	man, err := Cut(db, 2, 1, dir, "mis")
	if err != nil {
		t.Fatal(err)
	}
	// Both manifest entries point at the same process, which can only be
	// one of the two tiles.
	sdb, err := core.LoadFile(dir+"/"+man.Shards[0].File, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(sdb, server.Config{ShardID: man.Shards[0].ID})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	for i := range man.Shards {
		man.Shards[i].Addr = ts.URL
	}
	coord, err := New(Config{Manifest: man})
	if err != nil {
		t.Fatal(err)
	}
	err = coord.Verify(context.Background())
	var deg *DegradedError
	if !errors.As(err, &deg) {
		t.Fatalf("verify = %v, want DegradedError", err)
	}
	if len(deg.Shards) != 1 || deg.Shards[0].Shard != man.Shards[1].ID ||
		!strings.Contains(deg.Shards[0].Error, "shard id") {
		t.Errorf("verify detail = %+v, want a shard-id mismatch on %s", deg.Shards, man.Shards[1].ID)
	}
}

func asAPIError(err error, target **client.APIError) bool {
	return errors.As(err, target)
}

package shard

import (
	"fmt"
	"os"
	"path/filepath"

	"surfknn/internal/core"
	"surfknn/internal/workload"
)

// Cut tiles db's current object set into an nx×ny grid and writes one
// shard snapshot per tile into dir, named "<prefix>-tile-<ix>-<iy>.skdb".
// Each snapshot carries the full terrain (see the package comment on halo)
// and exactly the objects the tile owns, saved at db's current epoch so a
// freshly-launched fleet reports the same epoch the source database had.
// Returns the manifest describing the cut; the caller decides where to
// write it (WriteManifest).
func Cut(db *core.TerrainDB, nx, ny int, dir, prefix string) (*Manifest, error) {
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("shard: invalid grid %dx%d", nx, ny)
	}
	tiling := Tiling{NX: nx, NY: ny, Extent: db.Mesh.Extent()}
	objs := db.Objects()
	epoch := db.CurrentEpoch()
	parts := workload.PartitionObjects(objs, tiling.NumTiles(), func(o workload.Object) int {
		ix, iy := tiling.TileOf(o.Point.XY())
		return iy*nx + ix
	})

	man := &Manifest{
		FormatVersion: ManifestVersion,
		NX:            nx,
		NY:            ny,
		Extent:        ToRect(tiling.Extent),
		Epoch:         epoch,
		Halo:          "full",
	}
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			owned := parts[iy*nx+ix]
			file := fmt.Sprintf("%s-%s.skdb", prefix, TileID(ix, iy))
			if err := saveShard(db, filepath.Join(dir, file), owned, epoch); err != nil {
				return nil, err
			}
			man.Shards = append(man.Shards, ShardMeta{
				ID:      TileID(ix, iy),
				IX:      ix,
				IY:      iy,
				File:    file,
				Objects: len(owned),
			})
		}
	}
	if err := man.Validate(); err != nil {
		return nil, err
	}
	return man, nil
}

func saveShard(db *core.TerrainDB, path string, objs []workload.Object, epoch uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	if err := db.SaveWithObjects(f, objs, epoch); err != nil {
		f.Close()
		return fmt.Errorf("shard: writing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	return nil
}

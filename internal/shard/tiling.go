// Package shard is the horizontal-scaling layer over the surfknn engine: a
// tiler that cuts one terrain database into independent per-tile shard
// snapshots, and a scatter-gather coordinator that answers the public query
// API over a fleet of shard servers with answers bit-identical to the
// unsharded engine.
//
// # Tiling
//
// The (x,y) extent of the terrain is cut into an NX×NY grid of tiles. Each
// shard owns the objects whose projection falls inside its tile — object
// ownership is a disjoint partition — while the terrain itself (mesh,
// multiresolution pyramid, pathnet) is replicated in full into every shard
// snapshot. Full replication is the halo margin taken to its sound extreme:
// a geodesic between a query point and a boundary object may wander
// arbitrarily far outside either one's tile, and any trimmed halo would
// bound that wander by assumption. With the whole surface present, every
// shard ranks candidates against exactly the terrain the unsharded engine
// sees, which is what makes bit-identical answers possible (see
// DESIGN.md, "Sharded serving"). Terrain dominates snapshot size only for
// small object sets; the object partition — the part that grows with scale
// and takes updates — is what sharding divides.
//
// # Query decomposition
//
// MR3's per-candidate distance bounds depend only on the query point, the
// candidate and the terrain, never on the other candidates, so the four
// steps decompose: the 2-D filters (steps 1 and 3) scatter over the shards'
// object partitions, and the rankings (steps 2 and 4) run on one shard over
// the gathered union (internal/core.RankCandidatesCtx). Step 3 only visits
// shards whose tile rectangle lies within the step-2 radius of the query
// point — the planar distance lower-bounds the surface distance, so a
// pruned shard can contribute nothing. Range queries decompose per shard
// outright; EA merges per-shard top-k lists.
//
// # Updates
//
// The coordinator assigns every logical update one epoch number and replays
// it to all shards (objstore.ApplyAt), each upsert routed to the tile that
// now owns it and its id broadcast as a delete everywhere else. Every
// shard's epoch advances in lockstep, so the merged X-Epoch stays equal to
// the epoch an unsharded server would report.
package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"surfknn/internal/geom"
)

// ManifestVersion is the format version of the manifest file; readers
// reject anything newer.
const ManifestVersion = 1

// Tiling is the NX×NY cut of a terrain extent. Tile (0,0) is the
// south-west corner; tile indices grow with x and y.
type Tiling struct {
	NX, NY int
	Extent geom.MBR
}

// NumTiles returns NX·NY.
func (t Tiling) NumTiles() int { return t.NX * t.NY }

// TileOf maps a point to the tile that owns it. Ownership is a disjoint
// partition of the plane: each tile is half-open on its high edges, with
// the extent's outer boundary clamped into the last tile, and points
// outside the extent clamp to the nearest tile — the tiler never sees them
// (objects lie on the terrain) but the router must send a moved object
// somewhere deterministic.
func (t Tiling) TileOf(p geom.Vec2) (ix, iy int) {
	ix = clampTile(p.X, t.Extent.MinX, t.Extent.MaxX, t.NX)
	iy = clampTile(p.Y, t.Extent.MinY, t.Extent.MaxY, t.NY)
	return ix, iy
}

func clampTile(v, lo, hi float64, n int) int {
	if !(hi > lo) {
		return 0
	}
	i := int(float64(n) * (v - lo) / (hi - lo))
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// Region returns tile (ix, iy)'s rectangle. Regions tile the extent
// exactly; the shared edges belong to the higher-index tile per TileOf.
func (t Tiling) Region(ix, iy int) geom.MBR {
	w := t.Extent.Width() / float64(t.NX)
	h := t.Extent.Height() / float64(t.NY)
	return geom.MBR{
		MinX: t.Extent.MinX + float64(ix)*w,
		MaxX: t.Extent.MinX + float64(ix+1)*w,
		MinY: t.Extent.MinY + float64(iy)*h,
		MaxY: t.Extent.MinY + float64(iy+1)*h,
	}
}

// TileID names tile (ix, iy); it is the shard id the shard server reports
// in /v1/healthz and the coordinator verifies at startup.
func TileID(ix, iy int) string { return fmt.Sprintf("tile-%d-%d", ix, iy) }

// Manifest describes one tiled deployment: the grid, the epoch the cut was
// taken at, and one entry per shard. skgen -tiles writes it next to the
// shard snapshots; skcoord reads it and pairs each entry with a listen
// address.
type Manifest struct {
	FormatVersion int    `json:"format_version"`
	NX            int    `json:"nx"`
	NY            int    `json:"ny"`
	Extent        Rect   `json:"extent"`
	Epoch         uint64 `json:"epoch"`
	// Halo records the terrain margin each shard snapshot carries around
	// its tile. "full" — the only value this version writes — means the
	// complete surface is replicated (see the package comment for why).
	Halo   string      `json:"halo"`
	Shards []ShardMeta `json:"shards"`
}

// ShardMeta is one shard's line in the manifest.
type ShardMeta struct {
	ID      string `json:"id"`
	IX      int    `json:"ix"`
	IY      int    `json:"iy"`
	File    string `json:"file"`    // snapshot filename, relative to the manifest
	Objects int    `json:"objects"` // objects owned at cut time
	Addr    string `json:"addr,omitempty"`
}

// Rect is geom.MBR with wire names, so the manifest's JSON is explicit
// about which bound is which.
type Rect struct {
	MinX float64 `json:"min_x"`
	MinY float64 `json:"min_y"`
	MaxX float64 `json:"max_x"`
	MaxY float64 `json:"max_y"`
}

// MBR converts back to the geometry type.
func (r Rect) MBR() geom.MBR {
	return geom.MBR{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}
}

// ToRect converts a geometry MBR to its manifest form.
func ToRect(m geom.MBR) Rect {
	return Rect{MinX: m.MinX, MinY: m.MinY, MaxX: m.MaxX, MaxY: m.MaxY}
}

// Tiling returns the manifest's grid as geometry.
func (m *Manifest) Tiling() Tiling {
	return Tiling{NX: m.NX, NY: m.NY, Extent: m.Extent.MBR()}
}

// Validate checks internal consistency: a positive grid, one shard per
// tile, ids matching their tile coordinates.
func (m *Manifest) Validate() error {
	if m.FormatVersion > ManifestVersion {
		return fmt.Errorf("shard: manifest format v%d is newer than this build (v%d)", m.FormatVersion, ManifestVersion)
	}
	if m.NX < 1 || m.NY < 1 {
		return fmt.Errorf("shard: invalid grid %dx%d", m.NX, m.NY)
	}
	if m.Halo != "full" {
		return fmt.Errorf("shard: unsupported halo %q (this build requires full terrain replication)", m.Halo)
	}
	if len(m.Shards) != m.NX*m.NY {
		return fmt.Errorf("shard: manifest has %d shards, grid %dx%d needs %d", len(m.Shards), m.NX, m.NY, m.NX*m.NY)
	}
	seen := make(map[string]bool, len(m.Shards))
	for i, s := range m.Shards {
		if s.IX < 0 || s.IX >= m.NX || s.IY < 0 || s.IY >= m.NY {
			return fmt.Errorf("shard: shards[%d] tile (%d,%d) outside grid %dx%d", i, s.IX, s.IY, m.NX, m.NY)
		}
		if want := TileID(s.IX, s.IY); s.ID != want {
			return fmt.Errorf("shard: shards[%d] id %q does not match tile (%d,%d)", i, s.ID, s.IX, s.IY)
		}
		if seen[s.ID] {
			return fmt.Errorf("shard: duplicate shard id %q", s.ID)
		}
		seen[s.ID] = true
	}
	return nil
}

// ShardAt returns the manifest entry owning tile (ix, iy).
func (m *Manifest) ShardAt(ix, iy int) (ShardMeta, error) {
	for _, s := range m.Shards {
		if s.IX == ix && s.IY == iy {
			return s, nil
		}
	}
	return ShardMeta{}, fmt.Errorf("shard: no shard for tile (%d,%d)", ix, iy)
}

// WriteManifest writes m as JSON to path.
func WriteManifest(m *Manifest, path string) error {
	if err := m.Validate(); err != nil {
		return err
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("shard: encoding manifest: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadManifest reads and validates a manifest file.
func ReadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("shard: parsing manifest %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(m.Shards) == 0 {
		return nil, errors.New("shard: manifest lists no shards")
	}
	return &m, nil
}

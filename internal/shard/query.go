package shard

// The coordinator's SKQL surface: POST /v1/query and POST /v1/explain,
// compiled by the same sklang planner the single-node server uses and
// executed by the scatter-gather primitives, so a statement answers
// bit-identically whether it reaches a server or a coordinator. The
// EXPLAIN answer differs on purpose: a coordinator rewrites each engine
// cost phase into the distributed step that carries it out — "scatter:*"
// fan-outs and "rank:*" single-shard steps — annotated with the tiles the
// execution actually touched and the shard-reported costs.

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"sync"

	"surfknn/internal/server/api"
	"surfknn/internal/sklang"
)

// Trace step names — the keys the scatter paths record under and the plan
// rewriter reads back.
const (
	traceStep1   = "knn2d"   // k-NN step 1: scatter ShardKNN2D to every tile
	traceRankC1  = "rank-c1" // k-NN step 2: tightening rank on the query tile
	traceStep3   = "range2d" // k-NN step 3: scatter ShardRange2D within the bound
	traceRankC2  = "rank-c2" // k-NN step 4: settling rank on the query tile
	traceScatter = "scatter" // single-scatter algorithms (range, ea, distance)
)

// queryTrace records which tiles each distributed step touched and the
// costs the shards reported, for EXPLAIN. All methods are nil-safe (a nil
// trace records nothing) and safe under scatter concurrency.
type queryTrace struct {
	mu     sync.Mutex
	tiles  map[string][]string
	costs  map[string]api.Cost
	radius float64 // the k-th upper bound step 3 pruned with (0 until known)
}

func (t *queryTrace) touch(step string, tiles []string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.tiles == nil {
		t.tiles = make(map[string][]string)
	}
	t.tiles[step] = tiles
}

func (t *queryTrace) charge(step string, c api.Cost) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.costs == nil {
		t.costs = make(map[string]api.Cost)
	}
	sum := t.costs[step]
	sum.Pages += c.Pages
	sum.CPUUs += c.CPUUs
	sum.ElapsedUs += c.ElapsedUs
	t.costs[step] = sum
}

func (t *queryTrace) bound(r float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.radius = r
	t.mu.Unlock()
}

// catalog snapshots what the planner needs to know about the fleet: the
// manifest's object counts and extent, plus the face count learned in
// Verify.
func (c *Coordinator) catalog() sklang.Catalog {
	objects := 0
	for _, m := range c.cfg.Manifest.Shards {
		objects += m.Objects
	}
	c.epochMu.Lock()
	faces := c.faces
	c.epochMu.Unlock()
	return sklang.Catalog{
		Objects: objects,
		Faces:   faces,
		Area:    c.cfg.Manifest.Extent.MBR().Area(),
	}
}

// langError maps a parse/plan diagnostic onto the 400 envelope with the
// offending position, mirroring the single-node server's contract.
func (c *Coordinator) langError(w http.ResponseWriter, err error) {
	var le *sklang.Error
	if !errors.As(err, &le) {
		c.badRequest(w, "%v", err)
		return
	}
	c.stats.BadRequests.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	enc := json.NewEncoder(w)
	//lint:ignore dropped-error the reply path has no caller to surface a write error to
	_ = enc.Encode(api.ErrorEnvelope{Error: api.ErrorBody{
		Code:    api.CodeBadRequest,
		Message: le.Error(),
		Line:    le.Pos.Line,
		Col:     le.Pos.Col,
		Token:   le.Tok,
	}})
}

// compile parses and plans a statement against the fleet catalog, writing
// the 400 itself on failure.
func (c *Coordinator) compile(w http.ResponseWriter, q string) (*sklang.Plan, bool) {
	plan, err := sklang.Compile(q, c.catalog())
	if err != nil {
		c.langError(w, err)
		return nil, false
	}
	if plan.K > maxK {
		c.badRequest(w, "k must be in [1, %d], got %d", maxK, plan.K)
		return nil, false
	}
	if plan.Algo == sklang.AlgoContinuous {
		c.badRequest(w, "SUBSCRIBE needs per-session state; connect to a shard server for subscriptions")
		return nil, false
	}
	return plan, true
}

// execPlan scatters a compiled plan and returns the merged answer. The
// trace records tiles and shard costs for EXPLAIN.
func (c *Coordinator) execPlan(r *http.Request, plan *sklang.Plan, timeout api.Duration, tr *queryTrace) (api.QueryResponse, uint64, error) {
	ctx := r.Context()
	resp := api.QueryResponse{Form: plan.Form, Algorithm: string(plan.Algo)}
	switch plan.Algo {
	case sklang.AlgoMR3:
		res, epoch, err := c.knn(ctx, api.KNNRequest{
			X: plan.X, Y: plan.Y, K: plan.K,
			Sched: plan.Sched, Options: plan.Options, Timeout: timeout,
		}, tr)
		if err != nil {
			return resp, 0, err
		}
		if plan.HasFilter {
			res.Neighbors = filterNeighbors(res.Neighbors, plan.Radius)
		}
		resp.Result = res
		return resp, epoch, nil
	case sklang.AlgoEA:
		res, epoch, err := c.ea(ctx, api.KNNRequest{
			X: plan.X, Y: plan.Y, K: plan.K, Timeout: timeout,
		}, tr)
		if err != nil {
			return resp, 0, err
		}
		resp.Result = res
		return resp, epoch, nil
	case sklang.AlgoRange:
		res, epoch, err := c.rangeQuery(ctx, api.RangeRequest{
			X: plan.X, Y: plan.Y, Radius: plan.Radius,
			Sched: plan.Sched, Options: plan.Options, Timeout: timeout,
		}, tr)
		if err != nil {
			return resp, 0, err
		}
		resp.Result = res
		return resp, epoch, nil
	case sklang.AlgoDistance:
		res, epoch, err := c.distance(ctx, api.DistanceRequest{
			X: plan.X, Y: plan.Y, X2: plan.X2, Y2: plan.Y2,
			Accuracy: plan.Accuracy, Sched: plan.Sched, Timeout: timeout,
		}, tr)
		if err != nil {
			return resp, 0, err
		}
		resp.Result = api.Result{Neighbors: []api.Neighbor{}}
		resp.Distance = &res
		return resp, epoch, nil
	default:
		return resp, 0, &badRequestError{"statement form not executable on a coordinator"}
	}
}

// filterNeighbors keeps the prefix-closed subsequence with UB ≤ radius —
// the same post-filter the single-node executor applies.
func filterNeighbors(ns []api.Neighbor, radius float64) []api.Neighbor {
	out := ns[:0]
	for _, n := range ns {
		if float64(n.UB) <= radius {
			out = append(out, n)
		}
	}
	if out == nil {
		out = []api.Neighbor{}
	}
	return out
}

func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req api.QueryRequest
	if !c.decode(w, r, &req) {
		return
	}
	plan, ok := c.compile(w, req.Q)
	if !ok {
		return
	}
	if plan.Explain {
		c.badRequest(w, "EXPLAIN statements are answered by POST /v1/explain")
		return
	}
	resp, epoch, err := c.execPlan(r, plan, req.Timeout, nil)
	if err != nil {
		c.writeQueryError(w, err)
		return
	}
	c.stats.Queries.Add(1)
	c.writeResult(w, epoch, resp)
}

func (c *Coordinator) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req api.ExplainRequest
	if !c.decode(w, r, &req) {
		return
	}
	plan, ok := c.compile(w, req.Q)
	if !ok {
		return
	}
	tr := &queryTrace{}
	_, epoch, err := c.execPlan(r, plan, req.Timeout, tr)
	if err != nil {
		c.writeQueryError(w, err)
		return
	}
	root := coordPlanNode(plan, tr)
	c.stats.Queries.Add(1)
	c.writeResult(w, epoch, api.ExplainResponse{
		Query:     plan.Canonical,
		Form:      plan.Form,
		Algorithm: string(plan.Algo),
		Plan:      root,
		Text:      sklang.RenderNode(root),
		Epoch:     epoch,
	})
}

func (c *Coordinator) handleExplainConsole(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	//lint:ignore dropped-error a client gone mid-reply is not a server failure
	_, _ = w.Write([]byte(sklang.ExplainHTML))
}

// coordPlanNode rewrites a compiled plan into the distributed plan the
// coordinator actually ran: each engine cost phase becomes the scatter or
// single-shard rank step that carried it out, annotated with the tiles the
// trace recorded and the shard-reported costs. Page estimates carry over
// from the planner's matching phase leaf; a single-scatter algorithm's
// node inherits the whole root estimate.
func coordPlanNode(plan *sklang.Plan, tr *queryTrace) api.PlanNode {
	src := plan.Root.Wire()
	root := api.PlanNode{
		Op:       src.Op,
		Detail:   src.Detail,
		EstPages: src.EstPages,
	}
	phaseEst := make(map[string]int64)
	var filter *api.PlanNode
	for i := range src.Children {
		ch := src.Children[i]
		switch {
		case ch.Op == "filter":
			filter = &src.Children[i]
		default:
			phaseEst[ch.Op] = ch.EstPages
		}
	}
	step := func(op, phase, detail string, est int64) api.PlanNode {
		n := api.PlanNode{Op: op, Detail: detail, EstPages: est, Tiles: tr.tiles[phase]}
		if cost, ok := tr.costs[phase]; ok {
			n.Cost = &cost
		}
		return n
	}
	switch plan.Algo {
	case sklang.AlgoMR3:
		root.Children = []api.PlanNode{
			step("scatter:knn2d", traceStep1, "k nearest by planar distance, every tile", phaseEst["phase:knn2d"]),
			step("rank:rank-c1", traceRankC1, "tighten C1 on the query tile", phaseEst["phase:rank-c1"]),
			step("scatter:range2d", traceStep3, fmtRadius(tr), phaseEst["phase:range2d"]),
			step("rank:rank-c2", traceRankC2, "settle the k-set on the query tile", phaseEst["phase:rank-c2"]),
		}
	case sklang.AlgoEA, sklang.AlgoRange:
		root.Children = []api.PlanNode{
			step("scatter:"+string(plan.Algo), traceScatter, "full query on each tile, merge", src.EstPages),
		}
	case sklang.AlgoDistance:
		root.Children = []api.PlanNode{
			step("rank:distance", traceScatter, "terrain-only, any one shard", src.EstPages),
		}
	}
	if filter != nil {
		root.Children = append(root.Children, *filter)
	}
	// The root total is the sum of what the shards reported.
	var total api.Cost
	for _, ch := range root.Children {
		if ch.Cost != nil {
			total.Pages += ch.Cost.Pages
			total.CPUUs += ch.Cost.CPUUs
			total.ElapsedUs += ch.Cost.ElapsedUs
		}
	}
	if total != (api.Cost{}) {
		root.Cost = &total
	}
	return root
}

func fmtRadius(tr *queryTrace) string {
	if tr == nil || tr.radius == 0 {
		return "gather within the k-th upper bound"
	}
	return "gather within the k-th upper bound r=" + strconv.FormatFloat(tr.radius, 'g', -1, 64)
}

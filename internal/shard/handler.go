package shard

// The coordinator's HTTP surface: the same public API a standalone server
// exposes (POST /v1/knn, /v1/range, /v1/distance, POST/DELETE /v1/objects,
// GET /v1/healthz), answered by scatter-gather over the fleet. Clients do
// not need to know whether they talk to a server or a coordinator — same
// routes, same bodies, same envelopes, same X-Epoch header. The one
// addition is the failure mode only a distributed deployment has: when a
// required shard is down the coordinator answers 503 with code
// "shard_unavailable" and the per-shard failure detail, never a silently
// partial result.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"surfknn/internal/server/api"
	"surfknn/internal/server/client"
)

// maxK mirrors the shard servers' request bound.
const maxK = 1 << 20

// maxBodyBytes bounds public request bodies at the coordinator.
const maxBodyBytes = 1 << 20

// maxUpdateBatch mirrors the shard servers' update batch bound.
const maxUpdateBatch = 4096

// Handler returns the coordinator's public HTTP surface.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", c.handleQuery)
	mux.HandleFunc("POST /v1/explain", c.handleExplain)
	mux.HandleFunc("GET /debug/explain", c.handleExplainConsole)
	mux.HandleFunc("POST /v1/knn", c.handleKNN)
	mux.HandleFunc("POST /v1/range", c.handleRange)
	mux.HandleFunc("POST /v1/distance", c.handleDistance)
	mux.HandleFunc("POST /v1/objects", c.handleUpsert)
	mux.HandleFunc("DELETE /v1/objects", c.handleDelete)
	mux.HandleFunc("GET /v1/healthz", c.handleHealthz)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		c.writeError(w, http.StatusNotFound, api.CodeNotFound, nil, "no such endpoint %s %s", r.Method, r.URL.Path)
	})
	return c.instrument(mux)
}

// instrument wraps the mux with request counting and latency observation.
func (c *Coordinator) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		c.stats.Requests.Add(1)
		next.ServeHTTP(w, r)
		c.stats.RequestLatency().Observe(time.Since(start))
	})
}

// decode mirrors the server's body discipline: bounded, unknown fields
// rejected, trailing data rejected.
func (c *Coordinator) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		c.badRequest(w, "invalid request body: %v", err)
		return false
	}
	if dec.More() {
		c.badRequest(w, "trailing data after request body")
		return false
	}
	return true
}

func (c *Coordinator) badRequest(w http.ResponseWriter, format string, args ...any) {
	c.stats.BadRequests.Add(1)
	c.writeError(w, http.StatusBadRequest, api.CodeBadRequest, nil, format, args...)
}

// writeError emits the typed envelope, with per-shard detail when present.
func (c *Coordinator) writeError(w http.ResponseWriter, status int, code string, shards []api.ShardError, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	//lint:ignore dropped-error the reply path has no caller to surface a write error to
	_ = enc.Encode(api.ErrorEnvelope{Error: api.ErrorBody{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
		Shards:  shards,
	}})
}

// writeQueryError maps a coordinator-path failure onto the wire: degraded
// scatters become 503 shard_unavailable with detail, relayed shard
// refusals keep their status and code, timeouts are 408.
func (c *Coordinator) writeQueryError(w http.ResponseWriter, err error) {
	var deg *DegradedError
	if errors.As(err, &deg) {
		c.stats.Degraded.Add(1)
		w.Header().Set("Retry-After", "1")
		c.writeError(w, http.StatusServiceUnavailable, api.CodeShardUnavailable, deg.Shards,
			"%d shard(s) unavailable; the answer would be partial", len(deg.Shards))
		return
	}
	var bad *badRequestError
	if errors.As(err, &bad) {
		c.badRequest(w, "%s", bad.msg)
		return
	}
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		// A shard refused the request itself (bad parameters, off-terrain
		// point): relay its verdict unchanged.
		c.writeError(w, apiErr.Status, apiErr.Code, apiErr.Shards, "%s", apiErr.Message)
		return
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		c.writeError(w, http.StatusRequestTimeout, api.CodeTimeout, nil, "query aborted: %v", err)
		return
	}
	c.writeError(w, http.StatusInternalServerError, api.CodeInternal, nil, "query failed: %v", err)
}

// writeResult emits a merged answer with its fleet epoch.
func (c *Coordinator) writeResult(w http.ResponseWriter, epoch uint64, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		c.writeError(w, http.StatusInternalServerError, api.CodeInternal, nil, "encoding response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Epoch", strconv.FormatUint(epoch, 10))
	//lint:ignore dropped-error a client gone mid-reply is not a server failure
	_, _ = w.Write(append(body, '\n'))
}

func (c *Coordinator) handleKNN(w http.ResponseWriter, r *http.Request) {
	var req api.KNNRequest
	if !c.decode(w, r, &req) {
		return
	}
	if req.K < 1 || req.K > maxK {
		c.badRequest(w, "k must be in [1, %d], got %d", maxK, req.K)
		return
	}
	res, epoch, err := c.KNN(r.Context(), req)
	if err != nil {
		c.writeQueryError(w, err)
		return
	}
	c.stats.Queries.Add(1)
	c.writeResult(w, epoch, res)
}

func (c *Coordinator) handleRange(w http.ResponseWriter, r *http.Request) {
	var req api.RangeRequest
	if !c.decode(w, r, &req) {
		return
	}
	if !(req.Radius > 0) || math.IsInf(req.Radius, 1) {
		c.badRequest(w, "radius must be a positive finite distance, got %g", req.Radius)
		return
	}
	res, epoch, err := c.Range(r.Context(), req)
	if err != nil {
		c.writeQueryError(w, err)
		return
	}
	c.stats.Queries.Add(1)
	c.writeResult(w, epoch, res)
}

func (c *Coordinator) handleDistance(w http.ResponseWriter, r *http.Request) {
	var req api.DistanceRequest
	if !c.decode(w, r, &req) {
		return
	}
	res, epoch, err := c.Distance(r.Context(), req)
	if err != nil {
		c.writeQueryError(w, err)
		return
	}
	c.stats.Queries.Add(1)
	c.writeResult(w, epoch, res)
}

func (c *Coordinator) handleUpsert(w http.ResponseWriter, r *http.Request) {
	var req api.UpsertRequest
	if !c.decode(w, r, &req) {
		return
	}
	if len(req.Objects) == 0 {
		c.badRequest(w, "objects must contain at least one object")
		return
	}
	if len(req.Objects) > maxUpdateBatch {
		c.badRequest(w, "batch of %d objects exceeds the limit of %d", len(req.Objects), maxUpdateBatch)
		return
	}
	res, err := c.Upsert(r.Context(), req)
	if err != nil {
		c.writeQueryError(w, err)
		return
	}
	c.writeResult(w, res.Epoch, res)
}

func (c *Coordinator) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req api.DeleteRequest
	if !c.decode(w, r, &req) {
		return
	}
	if len(req.IDs) == 0 {
		c.badRequest(w, "ids must contain at least one object id")
		return
	}
	if len(req.IDs) > maxUpdateBatch {
		c.badRequest(w, "batch of %d ids exceeds the limit of %d", len(req.IDs), maxUpdateBatch)
		return
	}
	res, err := c.Delete(r.Context(), req)
	if err != nil {
		c.writeQueryError(w, err)
		return
	}
	c.writeResult(w, res.Epoch, res)
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	hz, err := c.Healthz(r.Context())
	if err != nil {
		c.writeError(w, http.StatusInternalServerError, api.CodeInternal, nil, "health check failed: %v", err)
		return
	}
	c.writeResult(w, hz.Epoch, hz)
}

// Package server is the HTTP serving layer over one core.TerrainDB: a
// long-lived, multi-tenant query service built only on the standard
// library (net/http, encoding/json).
//
// The engine below was shaped for exactly this sitting-on-top: the
// terrain structures are immutable and the object set is versioned by an
// epoch-based store (internal/objstore), so the server owns one TerrainDB
// and any number of concurrent requests; per-request execution state
// lives in pooled core.Sessions (checked out per request, returned on
// completion), each query pinning one object epoch for its whole run; the
// request context — client disconnect plus a per-request or
// server-default deadline — is threaded through the *Ctx query variants.
// Object updates arrive over HTTP too (POST/DELETE /v1/objects, see
// objects.go), each accepted batch publishing a new epoch; every response
// carries the epoch it was served against in the X-Epoch header.
//
// Around the handlers sit the robustness pieces a real service needs:
//
//   - admission control: a semaphore bounds concurrent query execution, a
//     bounded wait queue absorbs short bursts, and everything beyond that
//     is shed immediately with 429 + Retry-After (see admission.go);
//   - an LRU result cache keyed by (epoch, canonical query): within one
//     epoch a query maps to one answer forever, and an update makes stale
//     entries unreachable rather than requiring a purge (see cache.go);
//   - typed JSON error envelopes with correct status codes (errors.go);
//   - panic recovery, request metrics and JSON access logging
//     (middleware.go);
//   - graceful lifecycle: Shutdown stops accepting and drains in-flight
//     requests under a caller-bounded deadline.
//
// Metrics flow into obs.ServerStats (published by skserve as the
// "surfknn_server" expvar group) beside the engine's obs.Registry.
package server

import (
	"context"
	"encoding/json"
	"expvar"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"surfknn/internal/continuous"
	"surfknn/internal/core"
	"surfknn/internal/obs"
	"surfknn/internal/server/api"
)

// Config tunes the server. The zero value is production-ready for a small
// deployment; every field has a sensible default.
type Config struct {
	// MaxInFlight bounds concurrently executing queries. Default
	// 2×GOMAXPROCS — queries are CPU-bound with simulated I/O, so a small
	// multiple of the core count keeps the machine busy without thrashing.
	MaxInFlight int
	// QueueDepth bounds requests waiting for an execution slot; beyond it
	// requests are rejected with 429. Default 4×MaxInFlight.
	QueueDepth int
	// QueueWait bounds how long one request may wait in the queue before
	// it is rejected with 429. Default 250ms.
	QueueWait time.Duration
	// DefaultTimeout bounds queries whose request carries no "timeout"
	// field. Default 5s.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested timeouts. Default 30s.
	MaxTimeout time.Duration
	// CacheEntries sizes the LRU result cache; negative disables caching.
	// Default 1024.
	CacheEntries int
	// ShardID names the tile this process serves when it is one shard of a
	// tiled deployment (e.g. "tile-0-1"). Empty for a standalone server.
	// Reported by /v1/healthz so a coordinator can verify topology.
	ShardID string
	// AccessLog receives one JSON line per request when non-nil.
	AccessLog io.Writer
	// Stats receives the server metrics; nil creates a private group.
	// Publishing it (as "surfknn_server") is the caller's choice.
	Stats *obs.ServerStats
	// MaxSubscriptions bounds the continuous-query subscription table
	// (POST /v1/subscribe); beyond it the least recently used subscription
	// is evicted. Default continuous.DefaultMaxSubscriptions.
	MaxSubscriptions int
	// CoalesceWindow is how long the continuous-query batcher holds a
	// re-evaluation stripe open for overlapping moves to join. Default 0
	// (coalesce only already-concurrent arrivals).
	CoalesceWindow time.Duration
	// ContinuousStats receives the continuous-query metrics; nil creates a
	// private group. Publishing it (as "surfknn_continuous") is the
	// caller's choice.
	ContinuousStats *obs.ContinuousStats
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.MaxInFlight
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 250 * time.Millisecond
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.Stats == nil {
		c.Stats = obs.NewServerStats()
	}
	if c.ContinuousStats == nil {
		c.ContinuousStats = obs.NewContinuousStats()
	}
	return c
}

// Server serves surface k-NN queries over HTTP from one immutable
// TerrainDB. Create with New, expose with Handler or Serve, stop with
// Shutdown.
type Server struct {
	db    *core.TerrainDB
	cfg   Config
	stats *obs.ServerStats
	adm   *admission
	cache *resultCache
	mon   *continuous.Monitor // continuous-query subsystem; nil without an object store

	handler http.Handler

	logMu sync.Mutex // serialises access-log lines

	mu   sync.Mutex
	http *http.Server // live listener-facing server; nil before Serve
}

// New builds a server over db, which must already have objects installed
// (SetObjects or a snapshot that carried them). The terrain is never
// mutated; the object set is, through the update endpoints, with each
// batch publishing a new epoch in the database's object store.
func New(db *core.TerrainDB, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		db:    db,
		cfg:   cfg,
		stats: cfg.Stats,
	}
	s.adm = newAdmission(cfg.MaxInFlight, cfg.QueueDepth, cfg.QueueWait, s.stats)
	s.cache = newResultCache(cfg.CacheEntries, s.stats)
	// The monitor needs the object store's update feed; a database without
	// one (never the case for a served snapshot) simply has the continuous
	// routes answer 500.
	if mon, err := continuous.New(db, continuous.Config{
		MaxSubscriptions: cfg.MaxSubscriptions,
		CoalesceWindow:   cfg.CoalesceWindow,
		Stats:            cfg.ContinuousStats,
	}); err == nil {
		s.mon = mon
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/explain", s.handleExplain)
	mux.HandleFunc("GET /debug/explain", s.handleExplainConsole)
	mux.HandleFunc("POST /v1/knn", s.handleKNN)
	mux.HandleFunc("POST /v1/range", s.handleRange)
	mux.HandleFunc("POST /v1/distance", s.handleDistance)
	mux.HandleFunc("POST /v1/objects", s.handleUpsertObjects)
	mux.HandleFunc("DELETE /v1/objects", s.handleDeleteObjects)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("POST /v1/subscribe", s.handleSubscribe)
	mux.HandleFunc("POST /v1/subscribe/{id}/move", s.handleMove)
	mux.HandleFunc("DELETE /v1/subscribe/{id}", s.handleUnsubscribe)
	mux.HandleFunc("POST /v1/shard/knn2d", s.handleShardKNN2D)
	mux.HandleFunc("POST /v1/shard/range2d", s.handleShardRange2D)
	mux.HandleFunc("POST /v1/shard/rank", s.handleShardRank)
	mux.HandleFunc("POST /v1/shard/ea", s.handleShardEA)
	mux.HandleFunc("POST /v1/shard/range", s.handleShardRange)
	mux.HandleFunc("POST /v1/shard/objects", s.handleShardObjects)
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, api.CodeNotFound, "no such endpoint %s %s", r.Method, r.URL.Path)
	})
	s.handler = s.instrument(mux)
	return s
}

// Handler returns the server's full handler chain (routing, admission,
// caching, recovery, logging) for mounting on any http.Server — the
// in-process tests drive it through httptest.
func (s *Server) Handler() http.Handler { return s.handler }

// Stats returns the server's metric group.
func (s *Server) Stats() *obs.ServerStats { return s.stats }

// ContinuousStats returns the continuous-query metric group.
func (s *Server) ContinuousStats() *obs.ContinuousStats { return s.cfg.ContinuousStats }

// Serve accepts connections on ln until Shutdown (which makes it return
// http.ErrServerClosed) or a listener error. ReadHeaderTimeout bounds
// slow-loris header dribbling; request bodies are bounded by the JSON
// decoder's field validation plus MaxBytesReader in the handlers.
func (s *Server) Serve(ln net.Listener) error {
	hs := &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	s.mu.Lock()
	s.http = hs
	s.mu.Unlock()
	return hs.Serve(ln)
}

// Shutdown gracefully stops a Serve-ing server: the listener closes
// immediately (new connections are refused), in-flight requests — and the
// query sessions they hold — drain to completion, bounded by ctx's
// deadline. Safe to call before Serve (a no-op) and more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	hs := s.http
	s.mu.Unlock()
	if hs == nil {
		return nil
	}
	return hs.Shutdown(ctx)
}

// requestContext derives the query's controlling context from the request:
// the client-supplied timeout (clamped to MaxTimeout) or the server
// default, layered over the request context so a disconnected client also
// cancels the query.
func (s *Server) requestContext(r *http.Request, timeout time.Duration) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeout > 0 {
		d = timeout
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
	}
	return context.WithTimeout(r.Context(), d)
}

// writeJSON emits body (already-marshalled JSON) with the given X-Cache
// disposition.
func writeJSON(w http.ResponseWriter, body []byte, cache string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cache)
	w.WriteHeader(http.StatusOK)
	// A failed write means the client is gone; the query already ran.
	//lint:ignore dropped-error a client gone mid-reply is not a server failure
	_, _ = w.Write(body)
}

// marshalBody renders a response value to the exact bytes that are both
// sent and cached, newline-terminated like json.Encoder output.
func marshalBody(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

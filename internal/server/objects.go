package server

// Object-update endpoints: POST /v1/objects (batch upsert) and
// DELETE /v1/objects (batch delete). Updates go through the database's
// versioned object store (internal/objstore), so each accepted batch
// publishes one new epoch atomically; queries in flight keep reading the
// epoch they pinned and are never torn by an update.
//
// Updates bypass admission control deliberately: the admission semaphore
// exists to bound CPU-heavy query execution, while an update is a short
// critical section in the store. Shedding writers behind a queue of slow
// queries would invert the service's priorities — updates are what keep
// query answers fresh.

import (
	"net/http"

	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/server/api"
	"surfknn/internal/workload"
)

// maxUpdateBatch bounds how many objects one update request may carry.
// Larger batches should be split client-side; one epoch per batch means an
// unbounded batch would also be an unbounded copy-on-write delta.
const maxUpdateBatch = 4096

func (s *Server) handleUpsertObjects(w http.ResponseWriter, r *http.Request) {
	var req api.UpsertRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Objects) == 0 {
		s.badRequest(w, "objects must contain at least one object")
		return
	}
	if len(req.Objects) > maxUpdateBatch {
		s.badRequest(w, "batch of %d objects exceeds the limit of %d", len(req.Objects), maxUpdateBatch)
		return
	}
	store := s.db.ObjectStore()
	if store == nil {
		writeError(w, http.StatusInternalServerError, api.CodeInternal,
			"database has no object store installed")
		return
	}
	batch, ok := s.upsertBatch(w, req.Objects)
	if !ok {
		return
	}

	epoch := store.Upsert(batch)
	setEpoch(w, epoch)
	// Not a query result: never cached, no X-Cache header.
	writeBody(w, api.UpdateResponse{Epoch: epoch, Count: len(batch)})
}

// upsertBatch validates and lifts a wire upsert batch onto the terrain,
// writing the 400 itself on failure.
func (s *Server) upsertBatch(w http.ResponseWriter, objs []api.UpsertObject) ([]workload.Object, bool) {
	batch := make([]workload.Object, len(objs))
	for i, o := range objs {
		if o.ID == nil {
			s.badRequest(w, "objects[%d]: missing id", i)
			return nil, false
		}
		p, ok := s.objectPoint(w, i, o.X, o.Y)
		if !ok {
			return nil, false
		}
		batch[i] = workload.Object{ID: *o.ID, Point: p}
	}
	return batch, true
}

func (s *Server) handleDeleteObjects(w http.ResponseWriter, r *http.Request) {
	var req api.DeleteRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.IDs) == 0 {
		s.badRequest(w, "ids must contain at least one object id")
		return
	}
	if len(req.IDs) > maxUpdateBatch {
		s.badRequest(w, "batch of %d ids exceeds the limit of %d", len(req.IDs), maxUpdateBatch)
		return
	}
	store := s.db.ObjectStore()
	if store == nil {
		writeError(w, http.StatusInternalServerError, api.CodeInternal,
			"database has no object store installed")
		return
	}
	distinct := make(map[int64]struct{}, len(req.IDs))
	for _, id := range req.IDs {
		distinct[id] = struct{}{}
	}

	epoch, deleted := store.Delete(req.IDs)
	setEpoch(w, epoch)
	writeBody(w, api.DeleteResponse{
		Epoch:   epoch,
		Deleted: deleted,
		Missing: len(distinct) - deleted,
	})
}

// objectPoint lifts an update's (x,y) onto the terrain. Unlike a query
// point, an off-terrain object position is a 400, not a 404: the request
// is asking to create state that cannot exist, not addressing state that
// does not.
func (s *Server) objectPoint(w http.ResponseWriter, i int, x, y float64) (mesh.SurfacePoint, bool) {
	p, err := s.db.SurfacePointAt(geom.Vec2{X: x, Y: y})
	if err != nil {
		s.badRequest(w, "objects[%d]: position (%g, %g) is not on the terrain: %v", i, x, y, err)
		return mesh.SurfacePoint{}, false
	}
	return p, true
}

package server

// Object-update endpoints: POST /v1/objects (batch upsert) and
// DELETE /v1/objects (batch delete). Updates go through the database's
// versioned object store (internal/objstore), so each accepted batch
// publishes one new epoch atomically; queries in flight keep reading the
// epoch they pinned and are never torn by an update.
//
// Updates bypass admission control deliberately: the admission semaphore
// exists to bound CPU-heavy query execution, while an update is a short
// critical section in the store. Shedding writers behind a queue of slow
// queries would invert the service's priorities — updates are what keep
// query answers fresh.

import (
	"net/http"

	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/workload"
)

// maxUpdateBatch bounds how many objects one update request may carry.
// Larger batches should be split client-side; one epoch per batch means an
// unbounded batch would also be an unbounded copy-on-write delta.
const maxUpdateBatch = 4096

// upsertObject is one object in an upsert batch. ID is a pointer so an
// omitted id is distinguishable from a literal 0 and rejected.
type upsertObject struct {
	ID *int64  `json:"id"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
}

type upsertRequest struct {
	Objects []upsertObject `json:"objects"`
}

// updateResponse is the body of a successful upsert.
type updateResponse struct {
	Epoch uint64 `json:"epoch"`
	Count int    `json:"count"`
}

func (s *Server) handleUpsertObjects(w http.ResponseWriter, r *http.Request) {
	var req upsertRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Objects) == 0 {
		s.badRequest(w, "objects must contain at least one object")
		return
	}
	if len(req.Objects) > maxUpdateBatch {
		s.badRequest(w, "batch of %d objects exceeds the limit of %d", len(req.Objects), maxUpdateBatch)
		return
	}
	store := s.db.ObjectStore()
	if store == nil {
		writeError(w, http.StatusInternalServerError, codeInternal,
			"database has no object store installed")
		return
	}
	batch := make([]workload.Object, len(req.Objects))
	for i, o := range req.Objects {
		if o.ID == nil {
			s.badRequest(w, "objects[%d]: missing id", i)
			return
		}
		p, ok := s.objectPoint(w, i, o.X, o.Y)
		if !ok {
			return
		}
		batch[i] = workload.Object{ID: *o.ID, Point: p}
	}

	epoch := store.Upsert(batch)
	setEpoch(w, epoch)
	body, err := marshalBody(updateResponse{Epoch: epoch, Count: len(batch)})
	if err != nil {
		writeError(w, http.StatusInternalServerError, codeInternal, "encoding response: %v", err)
		return
	}
	// Not a query result: never cached, no X-Cache header.
	w.Header().Set("Content-Type", "application/json")
	//lint:ignore dropped-error a client gone mid-reply is not a server failure
	_, _ = w.Write(body)
}

type deleteRequest struct {
	IDs []int64 `json:"ids"`
}

// deleteResponse reports what a delete batch achieved. Missing counts the
// distinct requested ids that were not live — deleting them is not an
// error (the end state is what the client asked for), but the client gets
// to know.
type deleteResponse struct {
	Epoch   uint64 `json:"epoch"`
	Deleted int    `json:"deleted"`
	Missing int    `json:"missing"`
}

func (s *Server) handleDeleteObjects(w http.ResponseWriter, r *http.Request) {
	var req deleteRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.IDs) == 0 {
		s.badRequest(w, "ids must contain at least one object id")
		return
	}
	if len(req.IDs) > maxUpdateBatch {
		s.badRequest(w, "batch of %d ids exceeds the limit of %d", len(req.IDs), maxUpdateBatch)
		return
	}
	store := s.db.ObjectStore()
	if store == nil {
		writeError(w, http.StatusInternalServerError, codeInternal,
			"database has no object store installed")
		return
	}
	distinct := make(map[int64]struct{}, len(req.IDs))
	for _, id := range req.IDs {
		distinct[id] = struct{}{}
	}

	epoch, deleted := store.Delete(req.IDs)
	setEpoch(w, epoch)
	body, err := marshalBody(deleteResponse{
		Epoch:   epoch,
		Deleted: deleted,
		Missing: len(distinct) - deleted,
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, codeInternal, "encoding response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	//lint:ignore dropped-error a client gone mid-reply is not a server failure
	_, _ = w.Write(body)
}

// objectPoint lifts an update's (x,y) onto the terrain. Unlike a query
// point, an off-terrain object position is a 400, not a 404: the request
// is asking to create state that cannot exist, not addressing state that
// does not.
func (s *Server) objectPoint(w http.ResponseWriter, i int, x, y float64) (mesh.SurfacePoint, bool) {
	p, err := s.db.SurfacePointAt(geom.Vec2{X: x, Y: y})
	if err != nil {
		s.badRequest(w, "objects[%d]: position (%g, %g) is not on the terrain: %v", i, x, y, err)
		return mesh.SurfacePoint{}, false
	}
	return p, true
}

// Package client is the typed Go client of the surfknn HTTP API: one
// method per route, speaking the api package's wire types, so no caller
// ever hand-rolls a JSON body or parses an envelope again. The scatter-
// gather coordinator (internal/shard), skquery's remote mode and the
// end-to-end tests are all built on it.
//
// Every call takes a context (deadline and cancellation propagate to the
// HTTP request), surfaces the response's X-Epoch and X-Cache headers in a
// Meta, retries 429s honouring the server's Retry-After header, and turns
// non-2xx envelopes into *APIError values the caller can switch on.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"surfknn/internal/server/api"
)

// Client talks to one surfknn server (a standalone instance or one shard).
// Safe for concurrent use. The zero value is not usable — create with New.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	wait    time.Duration
}

// Option tunes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (the default is a
// dedicated client with no global timeout — per-call contexts bound every
// request).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets how many times a 429 is retried before giving up
// (default 2; negative disables retrying).
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithMaxRetryWait caps how long one Retry-After pause may last (default
// 2s) — a saturated server asking for a minute should not stall a caller
// holding a short deadline; the context still wins either way.
func WithMaxRetryWait(d time.Duration) Option { return func(c *Client) { c.wait = d } }

// New builds a client for the server at base ("http://host:port", with or
// without a trailing slash; a bare "host:port" defaults to http).
func New(base string, opts ...Option) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := &Client{
		base:    strings.TrimRight(base, "/"),
		hc:      &http.Client{},
		retries: 2,
		wait:    2 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Base returns the server address the client was built with.
func (c *Client) Base() string { return c.base }

// Meta carries the per-response headers the API contract defines: the
// object-store epoch the answer was computed against, the cache
// disposition ("hit"/"miss", empty on routes that never cache), and — on
// the continuous-query move route — whether the answer came from the
// subscription's safe region ("hit") or a re-evaluation ("miss").
type Meta struct {
	Epoch      uint64
	Cache      string
	SafeRegion string
}

// APIError is a non-2xx response decoded from the server's error envelope.
type APIError struct {
	Status  int              // HTTP status code
	Code    string           // api.Code* constant
	Message string           // human-readable detail
	Shards  []api.ShardError // per-shard failures on a degraded scatter-gather answer
	// Line/Col/Token locate the offending token of a rejected SKQL
	// statement (the /v1/query and /v1/explain routes); zero otherwise.
	Line  int
	Col   int
	Token string
}

func (e *APIError) Error() string {
	if len(e.Shards) > 0 {
		return fmt.Sprintf("%s (%d): %s [%d shards failed]", e.Code, e.Status, e.Message, len(e.Shards))
	}
	return fmt.Sprintf("%s (%d): %s", e.Code, e.Status, e.Message)
}

// Query executes one SKQL statement (POST /v1/query).
func (c *Client) Query(ctx context.Context, req api.QueryRequest) (api.QueryResponse, Meta, error) {
	var res api.QueryResponse
	meta, err := c.do(ctx, http.MethodPost, "/v1/query", req, &res)
	return res, meta, err
}

// Explain executes one SKQL statement and returns its annotated plan tree
// (POST /v1/explain).
func (c *Client) Explain(ctx context.Context, req api.ExplainRequest) (api.ExplainResponse, Meta, error) {
	var res api.ExplainResponse
	meta, err := c.do(ctx, http.MethodPost, "/v1/explain", req, &res)
	return res, meta, err
}

// KNN runs a surface k-NN query.
func (c *Client) KNN(ctx context.Context, req api.KNNRequest) (api.Result, Meta, error) {
	var res api.Result
	meta, err := c.do(ctx, http.MethodPost, "/v1/knn", req, &res)
	return res, meta, err
}

// Range runs a surface range query.
func (c *Client) Range(ctx context.Context, req api.RangeRequest) (api.Result, Meta, error) {
	var res api.Result
	meta, err := c.do(ctx, http.MethodPost, "/v1/range", req, &res)
	return res, meta, err
}

// Distance computes a point-to-point surface distance range.
func (c *Client) Distance(ctx context.Context, req api.DistanceRequest) (api.DistanceResponse, Meta, error) {
	var res api.DistanceResponse
	meta, err := c.do(ctx, http.MethodPost, "/v1/distance", req, &res)
	return res, meta, err
}

// Upsert inserts or moves a batch of objects, publishing one new epoch.
func (c *Client) Upsert(ctx context.Context, req api.UpsertRequest) (api.UpdateResponse, Meta, error) {
	var res api.UpdateResponse
	meta, err := c.do(ctx, http.MethodPost, "/v1/objects", req, &res)
	return res, meta, err
}

// Delete removes a batch of objects by id.
func (c *Client) Delete(ctx context.Context, req api.DeleteRequest) (api.DeleteResponse, Meta, error) {
	var res api.DeleteResponse
	meta, err := c.do(ctx, http.MethodDelete, "/v1/objects", req, &res)
	return res, meta, err
}

// Subscribe registers a continuous k-NN query, returning its id, initial
// result and safe radius.
func (c *Client) Subscribe(ctx context.Context, req api.SubscribeRequest) (api.SubscribeResponse, Meta, error) {
	var res api.SubscribeResponse
	meta, err := c.do(ctx, http.MethodPost, "/v1/subscribe", req, &res)
	return res, meta, err
}

// MoveSubscription moves a subscription's query point. Meta.SafeRegion
// reports whether the answer came from the safe region ("hit") or a
// re-evaluation ("miss").
func (c *Client) MoveSubscription(ctx context.Context, id uint64, req api.MoveRequest) (api.SubscribeResponse, Meta, error) {
	var res api.SubscribeResponse
	meta, err := c.do(ctx, http.MethodPost, fmt.Sprintf("/v1/subscribe/%d/move", id), req, &res)
	return res, meta, err
}

// Unsubscribe removes a continuous k-NN subscription.
func (c *Client) Unsubscribe(ctx context.Context, id uint64) (api.UnsubscribeResponse, Meta, error) {
	var res api.UnsubscribeResponse
	meta, err := c.do(ctx, http.MethodDelete, fmt.Sprintf("/v1/subscribe/%d", id), nil, &res)
	return res, meta, err
}

// Healthz reads the server's health and topology report.
func (c *Client) Healthz(ctx context.Context) (api.Healthz, error) {
	var res api.Healthz
	_, err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, &res)
	return res, err
}

// Shard-fabric calls, used by the scatter-gather coordinator.

// ShardKNN2D runs MR3 step 1 over the shard's object partition.
func (c *Client) ShardKNN2D(ctx context.Context, req api.ShardKNN2DRequest) (api.CandidatesResponse, Meta, error) {
	var res api.CandidatesResponse
	meta, err := c.do(ctx, http.MethodPost, "/v1/shard/knn2d", req, &res)
	return res, meta, err
}

// ShardRange2D runs MR3 step 3 over the shard's object partition.
func (c *Client) ShardRange2D(ctx context.Context, req api.ShardRange2DRequest) (api.CandidatesResponse, Meta, error) {
	var res api.CandidatesResponse
	meta, err := c.do(ctx, http.MethodPost, "/v1/shard/range2d", req, &res)
	return res, meta, err
}

// ShardRank ranks an injected candidate set (MR3 step 2 or 4).
func (c *Client) ShardRank(ctx context.Context, req api.ShardRankRequest) (api.ShardResult, Meta, error) {
	var res api.ShardResult
	meta, err := c.do(ctx, http.MethodPost, "/v1/shard/rank", req, &res)
	return res, meta, err
}

// ShardEA runs the EA benchmark over the shard's object partition.
func (c *Client) ShardEA(ctx context.Context, req api.ShardEARequest) (api.ShardResult, Meta, error) {
	var res api.ShardResult
	meta, err := c.do(ctx, http.MethodPost, "/v1/shard/ea", req, &res)
	return res, meta, err
}

// ShardRange runs the surface range query over the shard's partition.
func (c *Client) ShardRange(ctx context.Context, req api.ShardRangeRequest) (api.ShardResult, Meta, error) {
	var res api.ShardResult
	meta, err := c.do(ctx, http.MethodPost, "/v1/shard/range", req, &res)
	return res, meta, err
}

// ShardObjects replays one coordinator-assigned logical update.
func (c *Client) ShardObjects(ctx context.Context, req api.ShardObjectsRequest) (api.ShardObjectsResponse, Meta, error) {
	var res api.ShardObjectsResponse
	meta, err := c.do(ctx, http.MethodPost, "/v1/shard/objects", req, &res)
	return res, meta, err
}

// do runs one request: marshal, send, retry saturation, decode.
func (c *Client) do(ctx context.Context, method, path string, reqBody, respBody any) (Meta, error) {
	var payload []byte
	if reqBody != nil {
		var err error
		payload, err = json.Marshal(reqBody)
		if err != nil {
			return Meta{}, fmt.Errorf("client: encoding %s body: %w", path, err)
		}
	}
	for attempt := 0; ; attempt++ {
		meta, retryAfter, err := c.once(ctx, method, path, payload, respBody)
		var apiErr *APIError
		if err == nil || attempt >= c.retries ||
			!errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
			return meta, err
		}
		if retryAfter > c.wait {
			retryAfter = c.wait
		}
		select {
		case <-time.After(retryAfter):
		case <-ctx.Done():
			return meta, ctx.Err()
		}
	}
}

// once runs a single HTTP exchange. retryAfter is the server-requested
// pause on a 429 (zero otherwise).
func (c *Client) once(ctx context.Context, method, path string, payload []byte, respBody any) (Meta, time.Duration, error) {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return Meta{}, 0, fmt.Errorf("client: building %s request: %w", path, err)
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return Meta{}, 0, fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()

	meta := Meta{Cache: resp.Header.Get("X-Cache"), SafeRegion: resp.Header.Get("X-Safe-Region")}
	if v := resp.Header.Get("X-Epoch"); v != "" {
		if e, err := strconv.ParseUint(v, 10, 64); err == nil {
			meta.Epoch = e
		}
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return meta, 0, fmt.Errorf("client: reading %s response: %w", path, err)
	}
	if resp.StatusCode/100 != 2 {
		apiErr := &APIError{Status: resp.StatusCode}
		var env api.ErrorEnvelope
		if json.Unmarshal(raw, &env) == nil && env.Error.Code != "" {
			apiErr.Code = env.Error.Code
			apiErr.Message = env.Error.Message
			apiErr.Shards = env.Error.Shards
			apiErr.Line = env.Error.Line
			apiErr.Col = env.Error.Col
			apiErr.Token = env.Error.Token
		} else {
			apiErr.Code = api.CodeInternal
			apiErr.Message = strings.TrimSpace(string(raw))
		}
		var retryAfter time.Duration
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
				retryAfter = time.Duration(secs) * time.Second
			}
		}
		return meta, retryAfter, apiErr
	}
	if respBody != nil {
		if err := json.Unmarshal(raw, respBody); err != nil {
			return meta, 0, fmt.Errorf("client: decoding %s response: %w", path, err)
		}
	}
	return meta, 0, nil
}

package server

import (
	"errors"
	"net/http"
	"time"

	"surfknn/internal/server/api"
	"surfknn/internal/sklang"
	"surfknn/internal/sklang/skexec"
)

// The SKQL routes: POST /v1/query executes one statement through the
// language front door — parse, plan, run the exact engine call the /v1
// point routes would have run, so the answer is bit-identical to theirs —
// and POST /v1/explain executes it too but answers with the annotated plan
// tree. GET /debug/explain serves the embedded console over the latter.

// catalog snapshots what the planner needs to know about this server's
// data.
func (s *Server) catalog() sklang.Catalog {
	return sklang.Catalog{
		Objects: len(s.db.Objects()),
		Faces:   s.db.Mesh.NumFaces(),
		Area:    s.db.Mesh.Extent().Area(),
	}
}

// langError maps a parse/plan diagnostic onto the 400 envelope, carrying
// the offending position so clients can render a caret. Falls back to the
// plain 400 for non-positioned errors.
func (s *Server) langError(w http.ResponseWriter, err error) {
	var le *sklang.Error
	if !errors.As(err, &le) {
		s.badRequest(w, "%v", err)
		return
	}
	s.stats.BadRequests.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	writeEnvelope(w, api.ErrorBody{
		Code:    api.CodeBadRequest,
		Message: le.Error(),
		Line:    le.Pos.Line,
		Col:     le.Pos.Col,
		Token:   le.Tok,
	})
}

// compile parses and plans a statement, writing the 400 itself on failure.
func (s *Server) compile(w http.ResponseWriter, q string) (*sklang.Plan, bool) {
	plan, err := sklang.Compile(q, s.catalog())
	if err != nil {
		s.langError(w, err)
		return nil, false
	}
	if plan.K > maxK {
		s.badRequest(w, "k must be in [1, %d], got %d", maxK, plan.K)
		return nil, false
	}
	return plan, true
}

// runPlan executes a compiled plan under admission control on a pooled
// session, writing the error response itself on failure. The returned
// Outcome's Result aliases session scratch: callers must consume it before
// the deferred release — which is why release happens in the caller, via
// the returned func.
func (s *Server) runPlan(w http.ResponseWriter, r *http.Request, plan *sklang.Plan, timeout api.Duration) (*skexec.Outcome, func(), bool) {
	ctx, cancel := s.requestContext(r, time.Duration(timeout))
	if !s.admit(ctx, w) {
		cancel()
		return nil, nil, false
	}
	sess := s.db.AcquireSession()
	done := func() {
		s.db.Release(sess)
		s.adm.release()
		cancel()
	}
	out, err := skexec.Run(ctx, sess, plan)
	if err != nil {
		if errors.Is(err, skexec.ErrOffTerrain) {
			s.stats.BadRequests.Add(1)
			writeError(w, http.StatusNotFound, api.CodeNotFound, "%v", err)
		} else {
			writeQueryError(w, s.stats, err)
		}
		done()
		return nil, nil, false
	}
	return out, done, true
}

// --- POST /v1/query ---

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req api.QueryRequest
	if !s.decode(w, r, &req) {
		return
	}
	plan, ok := s.compile(w, req.Q)
	if !ok {
		return
	}
	if plan.Explain {
		s.badRequest(w, "EXPLAIN statements are answered by POST /v1/explain")
		return
	}
	if plan.Form == "subscribe" {
		s.querySubscribe(w, r, plan, req.Timeout)
		return
	}

	// select/range answers are cacheable under (epoch, canonical statement);
	// distance depends only on the immutable terrain, so its key is
	// deliberately epoch-free — exactly like the /v1 point routes.
	suffix := "query|" + plan.Canonical
	key := suffix
	epochScoped := plan.Form != "distance"
	if epochScoped {
		key = epochKey(s.db.CurrentEpoch(), suffix)
	}
	if body, ok := s.cache.get(key); ok {
		if epochScoped {
			setEpoch(w, s.db.CurrentEpoch())
		}
		writeJSON(w, body, "hit")
		return
	}

	out, done, ok := s.runPlan(w, r, plan, req.Timeout)
	if !ok {
		return
	}
	defer done()

	resp := api.QueryResponse{Form: plan.Form, Algorithm: string(plan.Algo)}
	switch plan.Form {
	case "select", "range":
		resp.Result = toResponse(out.Result)
	case "distance":
		resp.Result = toResponse(out.Result) // no neighbours; the cost shell
		resp.Distance = &api.DistanceResponse{
			LB:       api.Float(out.Distance.LB),
			UB:       api.Float(out.Distance.UB),
			Accuracy: out.Distance.Accuracy, Iterations: out.Distance.Iterations,
		}
	}
	if epochScoped {
		setEpoch(w, out.Result.Epoch)
		key = epochKey(out.Result.Epoch, suffix)
	}
	s.respond(w, key, resp)
}

// querySubscribe registers the SUBSCRIBE form as a live subscription —
// the same monitor path as POST /v1/subscribe, never cached.
func (s *Server) querySubscribe(w http.ResponseWriter, r *http.Request, plan *sklang.Plan, timeout api.Duration) {
	mon, ok := s.monitor(w)
	if !ok {
		return
	}
	sched, _ := skexec.Schedule(plan.Sched)
	opt, err := coreOptions(plan.Options)
	if err != nil {
		s.badRequest(w, "invalid options: %v", err)
		return
	}
	q, ok := s.surfacePoint(w, plan.X, plan.Y)
	if !ok {
		return
	}
	ctx, cancel := s.requestContext(r, time.Duration(timeout))
	defer cancel()
	if !s.admit(ctx, w) {
		return
	}
	defer s.adm.release()

	id, res, sr, err := mon.Subscribe(ctx, q, plan.K, sched, opt)
	if err != nil {
		writeQueryError(w, s.stats, err)
		return
	}
	sub := subscribeResponse(id, res, sr)
	setEpoch(w, res.Epoch)
	setSafeRegion(w, false)
	writeBody(w, api.QueryResponse{
		Form:         plan.Form,
		Algorithm:    string(plan.Algo),
		Result:       sub.Result,
		Subscription: &sub,
	})
}

// --- POST /v1/explain ---

// handleExplain executes the statement (EXPLAIN prefix optional) and
// answers with the annotated plan. Always a fresh execution — the route
// exists to measure, so it never serves from or fills the cache. The
// SUBSCRIBE form is evaluated once (MR3 + safe region) without registering
// a subscription.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req api.ExplainRequest
	if !s.decode(w, r, &req) {
		return
	}
	plan, ok := s.compile(w, req.Q)
	if !ok {
		return
	}
	out, done, ok := s.runPlan(w, r, plan, req.Timeout)
	if !ok {
		return
	}
	defer done()
	writeBody(w, explainResponse(plan, out.Result.Epoch))
}

// explainResponse renders an executed plan into the wire response.
func explainResponse(plan *sklang.Plan, epoch uint64) api.ExplainResponse {
	root := plan.Root.Wire()
	return api.ExplainResponse{
		Query:     plan.Canonical,
		Form:      plan.Form,
		Algorithm: string(plan.Algo),
		Plan:      root,
		Text:      sklang.RenderNode(root),
		Epoch:     epoch,
	}
}

// --- GET /debug/explain ---

func (s *Server) handleExplainConsole(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	//lint:ignore dropped-error a client gone mid-reply is not a server failure
	_, _ = w.Write([]byte(sklang.ExplainHTML))
}

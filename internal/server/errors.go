package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"surfknn/internal/obs"
	"surfknn/internal/server/api"
)

// The envelope shape and the error codes are part of the wire contract and
// live in internal/server/api; this file is the server-side emission path.

// writeError emits the error envelope with the given status. Encoding into
// a fixed struct cannot fail, so the reply is always well-formed JSON.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	writeEnvelope(w, api.ErrorBody{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	})
}

// writeEnvelope encodes an already-assembled error body (status and
// Content-Type must be written first). The SKQL routes use it directly to
// attach the parse position fields.
func writeEnvelope(w http.ResponseWriter, body api.ErrorBody) {
	enc := json.NewEncoder(w)
	// The client may already be gone; nothing useful to do with the error.
	//lint:ignore dropped-error the reply path has no caller to surface a write error to
	_ = enc.Encode(api.ErrorEnvelope{Error: body})
}

// writeQueryError maps an engine error onto the right status code:
// cancellation and deadline become 408 (the request's own timeout fired or
// the client went away), anything else is a 500 — by the time a query runs,
// validation has already vetted the parameters.
func writeQueryError(w http.ResponseWriter, stats *obs.ServerStats, err error) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		stats.TimedOut.Add(1)
		writeError(w, http.StatusRequestTimeout, api.CodeTimeout, "query aborted: %v", err)
		return
	}
	writeError(w, http.StatusInternalServerError, api.CodeInternal, "query failed: %v", err)
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"surfknn/internal/obs"
)

// errorEnvelope is the typed JSON error body every non-2xx response
// carries:
//
//	{"error": {"code": "saturated", "message": "..."}}
//
// code is a stable machine-readable identifier (clients switch on it);
// message is human-readable and free to change.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error codes, one per distinct client-visible failure mode.
const (
	codeBadRequest = "bad_request" // malformed JSON or invalid parameters
	codeNotFound   = "not_found"   // unknown route or point off the terrain
	codeTimeout    = "timeout"     // deadline exceeded or client gone (408)
	codeSaturated  = "saturated"   // admission control refused the request (429)
	codeInternal   = "internal"    // engine failure or recovered panic (500)
)

// writeError emits the error envelope with the given status. Encoding into
// a fixed struct cannot fail, so the reply is always well-formed JSON.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	// The client may already be gone; nothing useful to do with the error.
	//lint:ignore dropped-error the reply path has no caller to surface a write error to
	_ = enc.Encode(errorEnvelope{Error: errorBody{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}

// writeQueryError maps an engine error onto the right status code:
// cancellation and deadline become 408 (the request's own timeout fired or
// the client went away), anything else is a 500 — by the time a query runs,
// validation has already vetted the parameters.
func writeQueryError(w http.ResponseWriter, stats *obs.ServerStats, err error) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		stats.TimedOut.Add(1)
		writeError(w, http.StatusRequestTimeout, codeTimeout, "query aborted: %v", err)
		return
	}
	writeError(w, http.StatusInternalServerError, codeInternal, "query failed: %v", err)
}

package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"surfknn/internal/core"
	"surfknn/internal/dem"
	"surfknn/internal/mesh"
	"surfknn/internal/server/api"
	"surfknn/internal/workload"
)

// newUpdateTestDB builds a PRIVATE database per test: update tests bump
// epochs, which must not leak into the shared read-only fixture other
// tests key their cache expectations on.
func newUpdateTestDB(t testing.TB) *core.TerrainDB {
	t.Helper()
	g := dem.Synthesize(dem.EP, 16, 100, 2006)
	m := mesh.FromGrid(g)
	db, err := core.BuildTerrainDB(m, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	objs, err := workload.RandomObjects(m, db.Loc, 30, 2007)
	if err != nil {
		t.Fatal(err)
	}
	db.SetObjects(objs)
	return db
}

// do drives one request with an arbitrary method through the handler chain.
func do(t testing.TB, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func TestUpsertObjects(t *testing.T) {
	db := newUpdateTestDB(t)
	s := New(db, Config{})

	// A query before any update carries epoch 0 in X-Epoch.
	before := post(t, s, "/v1/knn", `{"x":800,"y":800,"k":3}`)
	if before.Code != http.StatusOK {
		t.Fatalf("pre-update knn: status %d\n%s", before.Code, before.Body.String())
	}
	if got := before.Header().Get("X-Epoch"); got != "0" {
		t.Errorf("pre-update X-Epoch = %q, want 0", got)
	}

	// Upsert a new object right at the query point.
	w := do(t, s, http.MethodPost, "/v1/objects",
		`{"objects":[{"id":9001,"x":800,"y":800}]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("upsert: status %d\n%s", w.Code, w.Body.String())
	}
	var ur api.UpdateResponse
	if err := json.Unmarshal(w.Body.Bytes(), &ur); err != nil {
		t.Fatal(err)
	}
	if ur.Epoch != 1 || ur.Count != 1 {
		t.Errorf("upsert response = %+v, want epoch 1 count 1", ur)
	}
	if got := w.Header().Get("X-Epoch"); got != "1" {
		t.Errorf("upsert X-Epoch = %q, want 1", got)
	}

	// The same query now sees the new object — the pre-update cache entry
	// is keyed under epoch 0 and unreachable, so this is a miss at epoch 1.
	after := post(t, s, "/v1/knn", `{"x":800,"y":800,"k":3}`)
	if after.Code != http.StatusOK {
		t.Fatalf("post-update knn: status %d\n%s", after.Code, after.Body.String())
	}
	if got := after.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("post-update knn X-Cache = %q, want miss (stale entry must be unreachable)", got)
	}
	if got := after.Header().Get("X-Epoch"); got != "1" {
		t.Errorf("post-update X-Epoch = %q, want 1", got)
	}
	var resp api.Result
	if err := json.Unmarshal(after.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Neighbors) == 0 || resp.Neighbors[0].ID != 9001 {
		t.Errorf("nearest neighbour after upsert = %+v, want id 9001 first", resp.Neighbors)
	}

	// Re-running the query is now a hit — at the new epoch.
	again := post(t, s, "/v1/knn", `{"x":800,"y":800,"k":3}`)
	if got := again.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("repeat knn X-Cache = %q, want hit", got)
	}
	if got := again.Header().Get("X-Epoch"); got != "1" {
		t.Errorf("repeat knn X-Epoch = %q, want 1", got)
	}
}

func TestDeleteObjects(t *testing.T) {
	db := newUpdateTestDB(t)
	s := New(db, Config{})

	w := do(t, s, http.MethodPost, "/v1/objects",
		`{"objects":[{"id":9001,"x":800,"y":800},{"id":9002,"x":810,"y":810}]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("upsert: status %d\n%s", w.Code, w.Body.String())
	}

	// Delete one live id, one unknown id.
	w = do(t, s, http.MethodDelete, "/v1/objects", `{"ids":[9001,123456]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("delete: status %d\n%s", w.Code, w.Body.String())
	}
	var dr api.DeleteResponse
	if err := json.Unmarshal(w.Body.Bytes(), &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Epoch != 2 || dr.Deleted != 1 || dr.Missing != 1 {
		t.Errorf("delete response = %+v, want epoch 2 deleted 1 missing 1", dr)
	}
	if _, ok := db.Object(9001); ok {
		t.Error("object 9001 still live after delete")
	}
	if _, ok := db.Object(9002); !ok {
		t.Error("object 9002 vanished")
	}

	// Deleting only unknown ids publishes no epoch.
	w = do(t, s, http.MethodDelete, "/v1/objects", `{"ids":[999999]}`)
	if err := json.Unmarshal(w.Body.Bytes(), &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Epoch != 2 || dr.Deleted != 0 || dr.Missing != 1 {
		t.Errorf("no-op delete response = %+v, want epoch 2 deleted 0 missing 1", dr)
	}
}

func TestUpdateValidation(t *testing.T) {
	db := newUpdateTestDB(t)
	s := New(db, Config{})
	cases := []struct {
		name, method, body string
		status             int
	}{
		{"empty batch", http.MethodPost, `{"objects":[]}`, http.StatusBadRequest},
		{"missing id", http.MethodPost, `{"objects":[{"x":800,"y":800}]}`, http.StatusBadRequest},
		{"off-terrain position", http.MethodPost, `{"objects":[{"id":1,"x":-1e6,"y":0}]}`, http.StatusBadRequest},
		{"unknown field", http.MethodPost, `{"objects":[{"id":1,"x":800,"y":800,"z":3}]}`, http.StatusBadRequest},
		{"empty ids", http.MethodDelete, `{"ids":[]}`, http.StatusBadRequest},
		{"malformed", http.MethodDelete, `{"ids":`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := do(t, s, tc.method, "/v1/objects", tc.body)
			if w.Code != tc.status {
				t.Fatalf("status = %d, want %d\n%s", w.Code, tc.status, w.Body.String())
			}
			decodeError(t, w)
		})
	}

	// Oversized batches are rejected in both directions.
	var sb strings.Builder
	sb.WriteString(`{"objects":[`)
	for i := 0; i <= maxUpdateBatch; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"id":%d,"x":800,"y":800}`, i)
	}
	sb.WriteString(`]}`)
	if w := do(t, s, http.MethodPost, "/v1/objects", sb.String()); w.Code != http.StatusBadRequest {
		t.Errorf("oversized upsert: status = %d, want 400", w.Code)
	}

	// Validation failure publishes no epoch.
	if got := db.CurrentEpoch(); got != 0 {
		t.Errorf("epoch after rejected updates = %d, want 0", got)
	}
}

func TestHealthzEpoch(t *testing.T) {
	db := newUpdateTestDB(t)
	s := New(db, Config{})
	do(t, s, http.MethodPost, "/v1/objects", `{"objects":[{"id":9001,"x":800,"y":800}]}`)

	req := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	var hz api.Healthz
	if err := json.Unmarshal(w.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Epoch != 1 {
		t.Errorf("healthz epoch = %d, want 1", hz.Epoch)
	}
	if hz.Objects != 31 {
		t.Errorf("healthz objects = %d, want 31", hz.Objects)
	}
	if got := w.Header().Get("X-Epoch"); got != "1" {
		t.Errorf("healthz X-Epoch = %q, want 1", got)
	}
}

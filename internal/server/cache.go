package server

import (
	"container/list"
	"sync"

	"surfknn/internal/obs"
)

// resultCache is the LRU result cache. The terrain is immutable and the
// object set is versioned (internal/objstore), so a canonicalized query
// maps to exactly one answer *per epoch*: object-dependent keys carry the
// epoch the answer was computed against (see epochKey), which keeps every
// stored entry valid forever — an object update never purges the cache,
// it just makes entries for superseded epochs unreachable (lookups always
// use the current epoch), and they age out of the LRU like any other cold
// entry. That makes caching safe to apply to the entire serialized
// response body — a hit replays the original bytes, including the
// original cost numbers, marked by the X-Cache header.
//
// Keys are built by the handlers from every result-affecting parameter
// (epoch for object-dependent endpoints, coordinates as exact float bits,
// k/radius/accuracy, schedule, options) and exclude execution-only
// parameters (timeout). Surface-distance keys omit the epoch: distances
// depend only on the terrain.
//
// A single mutex guards the map and the recency list; the critical section
// is a few pointer moves, so contention is negligible next to a query.
type resultCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	stats *obs.ServerStats
}

// cacheEntry is one cached response body.
type cacheEntry struct {
	key  string
	body []byte
}

// newResultCache returns a cache holding up to max entries; max <= 0
// disables caching (get always misses, put drops).
func newResultCache(max int, stats *obs.ServerStats) *resultCache {
	return &resultCache{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element),
		stats: stats,
	}
}

// get returns the cached body for key, promoting the entry to most recently
// used. The returned slice is shared — callers must not modify it.
func (c *resultCache) get(key string) ([]byte, bool) {
	if c.max <= 0 {
		c.stats.CacheMisses.Add(1)
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.stats.CacheMisses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.stats.CacheHits.Add(1)
	return el.Value.(*cacheEntry).body, true
}

// put stores a response body, evicting the least recently used entry when
// full. Storing an existing key refreshes its body and recency (the bodies
// are identical anyway — two computations of one canonical query).
func (c *resultCache) put(key string, body []byte) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.stats.CacheEvictions.Add(1)
	}
}

// len returns the current entry count (tests and healthz).
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

package api

// The SKQL routes' wire shapes. POST /v1/query executes one statement and
// answers with the form-appropriate payload; POST /v1/explain executes it
// too but answers with the annotated plan tree (estimated vs actual cost
// per phase). Both exist on the standalone server and on the scatter-
// gather coordinator, whose plans additionally annotate the tiles each
// step touched.

// QueryRequest is the body of POST /v1/query: one SKQL statement.
type QueryRequest struct {
	Q       string   `json:"q" api:"v1"`
	Timeout Duration `json:"timeout,omitempty" api:"v1"`
}

// QueryResponse is the body of POST /v1/query. Result is embedded so a
// SELECT answers with the exact same "neighbors"/"cost" shape as POST
// /v1/knn — the language is a front door, not a second result format. The
// optional fields carry the other forms' payloads.
type QueryResponse struct {
	// Form is the statement form: "select", "range", "distance" or
	// "subscribe".
	Form string `json:"form" api:"v1"`
	// Algorithm is the planner's choice: "mr3", "ea", "range", "distance"
	// or "continuous".
	Algorithm string `json:"algorithm" api:"v1"`
	Result
	// Distance carries the DISTANCE form's answer.
	Distance *DistanceResponse `json:"distance,omitempty" api:"v1"`
	// Subscription carries the SUBSCRIBE form's answer (the registered
	// subscription; only a server with subscription state answers it).
	Subscription *SubscribeResponse `json:"subscription,omitempty" api:"v1"`
}

// ExplainRequest is the body of POST /v1/explain. The statement may, but
// need not, carry an EXPLAIN prefix.
type ExplainRequest struct {
	Q       string   `json:"q" api:"v1"`
	Timeout Duration `json:"timeout,omitempty" api:"v1"`
}

// ExplainResponse is the body of POST /v1/explain: the executed plan tree
// with per-phase estimated and actual costs, plus its pre-rendered
// indented-text form.
type ExplainResponse struct {
	// Query is the canonical spelling of the explained statement.
	Query string `json:"query" api:"v1"`
	// Form and Algorithm mirror QueryResponse.
	Form      string `json:"form" api:"v1"`
	Algorithm string `json:"algorithm" api:"v1"`
	// Plan is the annotated plan tree.
	Plan PlanNode `json:"plan" api:"v1"`
	// Text is the plan rendered as indented text (with the phase trace
	// appended when the executing layer records one).
	Text string `json:"text" api:"v1"`
	// Epoch is the object-store epoch the explain execution read.
	Epoch uint64 `json:"epoch" api:"v1"`
}

// PlanNode is one node of an executed plan tree.
type PlanNode struct {
	// Op identifies the node: the algorithm at the root ("mr3", "ea",
	// "range", "distance", "continuous"), "phase:<name>" for a cost-phase
	// leaf, "filter" for a post-filter step, and "scatter:<op>"/"rank:<op>"
	// on coordinator plans.
	Op string `json:"op" api:"v1"`
	// Detail is a human-oriented argument summary.
	Detail string `json:"detail,omitempty" api:"v1"`
	// EstPages is the planner's up-front page estimate for the subtree.
	EstPages int64 `json:"est_pages" api:"v1"`
	// Tiles lists the tiles this step touched on a scatter-gather
	// execution; absent on single-node plans.
	Tiles []string `json:"tiles,omitempty" api:"v1"`
	// Phase is the executed query's actual cost for a phase leaf.
	Phase *PlanPhase `json:"phase,omitempty" api:"v1"`
	// Cost is the executed query's actual total for the subtree.
	Cost *Cost `json:"cost,omitempty" api:"v1"`
	// Children in execution order.
	Children []PlanNode `json:"children,omitempty" api:"v1"`
}

// PlanPhase is the wire form of one phase's stats.PhaseCost.
type PlanPhase struct {
	WallUs      int64 `json:"wall_us" api:"v1"`
	PoolHits    int64 `json:"pool_hits" api:"v1"`
	PoolMisses  int64 `json:"pool_misses" api:"v1"`
	RTreeVisits int64 `json:"rtree_visits" api:"v1"`
	Relaxations int64 `json:"relaxations" api:"v1"`
	UpperBounds int   `json:"upper_bounds" api:"v1"`
	LowerBounds int   `json:"lower_bounds" api:"v1"`
	Iterations  int   `json:"iterations" api:"v1"`
	Candidates  int   `json:"candidates" api:"v1"`
	// Pages is the phase's combined page-access count (pool hits + pool
	// misses + R-tree visits).
	Pages int64 `json:"pages" api:"v1"`
}

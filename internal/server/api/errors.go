package api

// ErrorEnvelope is the typed JSON error body every non-2xx response
// carries:
//
//	{"error": {"code": "saturated", "message": "..."}}
//
// Code is a stable machine-readable identifier (clients switch on it);
// Message is human-readable and free to change.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error" api:"v1"`
}

// ErrorBody is the envelope's payload.
type ErrorBody struct {
	Code    string `json:"code" api:"v1"`
	Message string `json:"message" api:"v1"`
	// Shards carries the per-shard failure detail when a scatter-gather
	// coordinator could not assemble a complete answer (code
	// "shard_unavailable"): which shards failed and why, so a partial
	// outage is diagnosable from the error alone.
	Shards []ShardError `json:"shards,omitempty" api:"v1"`
	// Line/Col/Token locate the offending token when a 400 came from
	// parsing or planning an SKQL statement (POST /v1/query, /v1/explain):
	// 1-based source position plus the token text (empty at end of input).
	// Absent on every other error.
	Line  int    `json:"line,omitempty" api:"v1"`
	Col   int    `json:"col,omitempty" api:"v1"`
	Token string `json:"token,omitempty" api:"v1"`
}

// ShardError is one shard's failure inside a degraded scatter-gather
// response.
type ShardError struct {
	Shard string `json:"shard" api:"v1"`
	Error string `json:"error" api:"v1"`
}

// Error codes, one per distinct client-visible failure mode.
const (
	CodeBadRequest       = "bad_request"       // malformed JSON or invalid parameters
	CodeNotFound         = "not_found"         // unknown route or point off the terrain
	CodeTimeout          = "timeout"           // deadline exceeded or client gone (408)
	CodeSaturated        = "saturated"         // admission control refused the request (429)
	CodeInternal         = "internal"          // engine failure or recovered panic (500)
	CodeShardUnavailable = "shard_unavailable" // a required shard is down; answer would be partial (503)
)

package api

// Shard-internal wire types: the decomposed MR3 primitives the scatter-
// gather coordinator (internal/shard) drives against individual shard
// servers under /v1/shard/*. These routes are part of the deployment's
// internal fabric, not the public query surface — a coordinator is the only
// intended caller — but they version and evolve exactly like the rest of
// the contract.

// Candidate is one object on the wire between coordinator and shard. It
// carries the full surface point — exact coordinates plus the mesh face the
// point lies on — so the receiving shard never re-lifts (x, y) onto the
// terrain: re-lifting a point that sits exactly on a mesh edge could pick
// the other incident face and perturb the distance bounds, breaking the
// bit-identity contract.
type Candidate struct {
	ID   int64   `json:"id" api:"v1"`
	X    float64 `json:"x" api:"v1"`
	Y    float64 `json:"y" api:"v1"`
	Z    float64 `json:"z" api:"v1"`
	Face int32   `json:"face" api:"v1"`
}

// ShardKNN2DRequest is the body of POST /v1/shard/knn2d: MR3 step 1 over
// this shard's object partition.
type ShardKNN2DRequest struct {
	X float64 `json:"x" api:"v1"`
	Y float64 `json:"y" api:"v1"`
	K int     `json:"k" api:"v1"`
}

// ShardRange2DRequest is the body of POST /v1/shard/range2d: MR3 step 3
// over this shard's object partition.
type ShardRange2DRequest struct {
	X      float64 `json:"x" api:"v1"`
	Y      float64 `json:"y" api:"v1"`
	Radius float64 `json:"radius" api:"v1"`
}

// CandidatesResponse is the body of the 2-D primitive responses: the
// matching objects of this shard's partition, read at one epoch.
type CandidatesResponse struct {
	Epoch      uint64      `json:"epoch" api:"v1"`
	Candidates []Candidate `json:"candidates" api:"v1"`
}

// ShardRankRequest is the body of POST /v1/shard/rank: MR3 step 2
// (tighten=true, the C1 ranking) or step 4 (tighten=false, the C2 ranking)
// over an injected candidate set gathered across shards. The shard ranks
// against its local terrain, which in the default full-halo tiling is the
// complete surface.
type ShardRankRequest struct {
	X          float64     `json:"x" api:"v1"`
	Y          float64     `json:"y" api:"v1"`
	K          int         `json:"k" api:"v1"`
	Sched      int         `json:"sched,omitempty" api:"v1"`
	Options    *Options    `json:"options,omitempty" api:"v1"`
	Tighten    bool        `json:"tighten" api:"v1"`
	Candidates []Candidate `json:"candidates" api:"v1"`
	Timeout    Duration    `json:"timeout,omitempty" api:"v1"`
}

// ShardEARequest is the body of POST /v1/shard/ea: the Enhanced
// Approximation benchmark over this shard's partition. The shard clamps k
// to its live object count — a shard owning fewer than k objects returns
// them all, and the coordinator merges per-shard top-k lists.
type ShardEARequest struct {
	X       float64  `json:"x" api:"v1"`
	Y       float64  `json:"y" api:"v1"`
	K       int      `json:"k" api:"v1"`
	Timeout Duration `json:"timeout,omitempty" api:"v1"`
}

// ShardRangeRequest is the body of POST /v1/shard/range: the surface range
// query over this shard's partition (per-candidate bounds are independent
// of the candidate set, so the global answer is the concatenation of
// per-shard answers).
type ShardRangeRequest struct {
	X       float64  `json:"x" api:"v1"`
	Y       float64  `json:"y" api:"v1"`
	Radius  float64  `json:"radius" api:"v1"`
	Sched   int      `json:"sched,omitempty" api:"v1"`
	Options *Options `json:"options,omitempty" api:"v1"`
	Timeout Duration `json:"timeout,omitempty" api:"v1"`
}

// ShardResult is the body of the ranking shard responses: the neighbours
// plus the epoch the shard's store stood at.
type ShardResult struct {
	Epoch     uint64     `json:"epoch" api:"v1"`
	Neighbors []Neighbor `json:"neighbors" api:"v1"`
	Cost      Cost       `json:"cost" api:"v1"`
}

// ShardObjectsRequest is the body of POST /v1/shard/objects: one logical
// update, assigned epoch Epoch by the coordinator, replayed to this shard.
// Objects are the upserts this shard now owns; DeleteIDs are removals
// (including objects that moved to another shard's tile). The shard applies
// deletes then upserts in one atomic publication at exactly epoch Epoch —
// and publishes even when it owns none of the touched objects, so every
// shard's epoch advances in lockstep (see objstore.ApplyAt).
type ShardObjectsRequest struct {
	Epoch     uint64         `json:"epoch" api:"v1"`
	Objects   []UpsertObject `json:"objects,omitempty" api:"v1"`
	DeleteIDs []int64        `json:"delete_ids,omitempty" api:"v1"`
}

// ShardObjectsResponse reports one applied logical update: the epoch the
// shard now stands at and how many objects the batch touched here.
type ShardObjectsResponse struct {
	Epoch   uint64 `json:"epoch" api:"v1"`
	Applied int    `json:"applied" api:"v1"`
}

// Package api is the wire contract of the surfknn HTTP service: every
// request and response body, the exact-float encoding, and the error
// envelope, as one importable package. The server (internal/server), the
// typed client (internal/server/client), the scatter-gather coordinator
// (internal/shard) and the end-to-end tests all speak these types — there is
// exactly one definition of each JSON shape in the module.
//
// The package is deliberately free of engine dependencies (no internal/core,
// no internal/workload): it describes bytes on the wire, nothing else.
// Server-side mapping onto engine types lives with the server.
//
// Versioning: Version names the wire version these types implement; it is
// the /v1 path prefix of every route. Each field additionally carries an
// `api` struct tag recording the version that introduced it, so a reader of
// the contract can tell at a glance what an older peer will and will not
// understand. Fields are never removed or renamed within a version.
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strconv"
	"time"
)

// Version is the wire version these types implement — the path prefix of
// every route (POST /v1/knn, ...).
const Version = "v1"

// Float is a float64 whose JSON form admits infinities. MR3 can decide a
// candidate purely by lower-bound domination, leaving its UB at +Inf;
// encoding/json rejects that, so ±Inf encode as the strings "+Inf"/"-Inf".
// Finite values encode as shortest round-trip numbers, so the peer decodes
// bit-identical float64s either way.
type Float float64

func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(v):
		return nil, errors.New("NaN distance bound in response")
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

func (f *Float) UnmarshalJSON(b []byte) error {
	s := string(b)
	if len(s) >= 2 && s[0] == '"' {
		var str string
		if err := json.Unmarshal(b, &str); err != nil {
			return err
		}
		switch str {
		case "+Inf":
			*f = Float(math.Inf(1))
			return nil
		case "-Inf":
			*f = Float(math.Inf(-1))
			return nil
		}
		return fmt.Errorf("invalid distance bound %q", str)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return err
	}
	*f = Float(v)
	return nil
}

// Duration is a JSON-encodable timeout: a Go duration string ("500ms").
// The zero value is "absent" (the server applies its default), which is why
// every request field using it is omitempty.
type Duration time.Duration

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *Duration) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err != nil {
		return errors.New(`timeout must be a duration string like "500ms"`)
	}
	v, err := time.ParseDuration(str)
	if err != nil {
		return fmt.Errorf("timeout: %w", err)
	}
	if v <= 0 {
		return errors.New("timeout must be positive")
	}
	*d = Duration(v)
	return nil
}

// Options is the client view of the engine's MR3 tuning knobs. Pointer
// fields distinguish "absent" (paper default) from an explicit value, so a
// literal 0 is expressible — the same problem the engine's functional
// options solve, with JSON's natural encoding of optionality.
type Options struct {
	Step2Accuracy    *float64 `json:"step2_accuracy,omitempty" api:"v1"`
	OverlapThreshold *float64 `json:"overlap_threshold,omitempty" api:"v1"`
	IOIntegration    *bool    `json:"io_integration,omitempty" api:"v1"`
	DummyLB          *bool    `json:"dummy_lb,omitempty" api:"v1"`
	BothFamilyLB     *bool    `json:"both_family_lb,omitempty" api:"v1"`
}

// Neighbor is one result object. LB/UB are the exact float64 surface
// distance bounds the engine computed (see Float).
type Neighbor struct {
	ID int64   `json:"id" api:"v1"`
	X  float64 `json:"x" api:"v1"`
	Y  float64 `json:"y" api:"v1"`
	Z  float64 `json:"z" api:"v1"`
	LB Float   `json:"lb" api:"v1"`
	UB Float   `json:"ub" api:"v1"`
}

// Cost is a response's cost summary (the paper's metrics).
type Cost struct {
	Pages     int64 `json:"pages" api:"v1"`
	CPUUs     int64 `json:"cpu_us" api:"v1"`
	ElapsedUs int64 `json:"elapsed_us" api:"v1"`
}

// Result is the body of POST /v1/knn and POST /v1/range.
type Result struct {
	Neighbors []Neighbor `json:"neighbors" api:"v1"`
	Cost      Cost       `json:"cost" api:"v1"`
}

// KNNRequest is the body of POST /v1/knn.
type KNNRequest struct {
	X       float64  `json:"x" api:"v1"`
	Y       float64  `json:"y" api:"v1"`
	K       int      `json:"k" api:"v1"`
	Sched   int      `json:"sched,omitempty" api:"v1"`
	Timeout Duration `json:"timeout,omitempty" api:"v1"`
	Options *Options `json:"options,omitempty" api:"v1"`
}

// RangeRequest is the body of POST /v1/range.
type RangeRequest struct {
	X       float64  `json:"x" api:"v1"`
	Y       float64  `json:"y" api:"v1"`
	Radius  float64  `json:"radius" api:"v1"`
	Sched   int      `json:"sched,omitempty" api:"v1"`
	Timeout Duration `json:"timeout,omitempty" api:"v1"`
	Options *Options `json:"options,omitempty" api:"v1"`
}

// DistanceRequest is the body of POST /v1/distance.
type DistanceRequest struct {
	X        float64  `json:"x" api:"v1"`
	Y        float64  `json:"y" api:"v1"`
	X2       float64  `json:"x2" api:"v1"`
	Y2       float64  `json:"y2" api:"v1"`
	Accuracy float64  `json:"accuracy,omitempty" api:"v1"`
	Sched    int      `json:"sched,omitempty" api:"v1"`
	Timeout  Duration `json:"timeout,omitempty" api:"v1"`
}

// DistanceResponse mirrors the engine's DistanceRange.
type DistanceResponse struct {
	LB         Float   `json:"lb" api:"v1"`
	UB         Float   `json:"ub" api:"v1"`
	Accuracy   float64 `json:"accuracy" api:"v1"`
	Iterations int     `json:"iterations" api:"v1"`
}

// SubscribeRequest is the body of POST /v1/subscribe: register a continuous
// k-NN query at (x, y). The response carries the initial result plus the
// safe radius within which subsequent moves are served without engine work.
type SubscribeRequest struct {
	X       float64  `json:"x" api:"v1"`
	Y       float64  `json:"y" api:"v1"`
	K       int      `json:"k" api:"v1"`
	Sched   int      `json:"sched,omitempty" api:"v1"`
	Timeout Duration `json:"timeout,omitempty" api:"v1"`
	Options *Options `json:"options,omitempty" api:"v1"`
}

// SubscribeResponse is the body of POST /v1/subscribe and of
// POST /v1/subscribe/{id}/move: the subscription's identity, its current
// top-k, and the safe region it certifies. Whether a move was answered from
// the safe region is in the X-Safe-Region header ("hit" / "miss").
type SubscribeResponse struct {
	ID uint64 `json:"id" api:"v1"`
	Result
	// SafeRadius is the planar distance the query point may move from
	// (anchor_x, anchor_y) while the neighbours above stay exact. 0 when
	// nothing could be certified; every such move re-evaluates.
	SafeRadius Float   `json:"safe_radius" api:"v1"`
	AnchorX    float64 `json:"anchor_x" api:"v1"`
	AnchorY    float64 `json:"anchor_y" api:"v1"`
	Epoch      uint64  `json:"epoch" api:"v1"`
}

// MoveRequest is the body of POST /v1/subscribe/{id}/move.
type MoveRequest struct {
	X       float64  `json:"x" api:"v1"`
	Y       float64  `json:"y" api:"v1"`
	Timeout Duration `json:"timeout,omitempty" api:"v1"`
}

// UnsubscribeResponse is the body of DELETE /v1/subscribe/{id}.
type UnsubscribeResponse struct {
	Removed bool `json:"removed" api:"v1"`
}

// UpsertObject is one object in an upsert batch. ID is a pointer so an
// omitted id is distinguishable from a literal 0 and rejected.
type UpsertObject struct {
	ID *int64  `json:"id" api:"v1"`
	X  float64 `json:"x" api:"v1"`
	Y  float64 `json:"y" api:"v1"`
}

// UpsertRequest is the body of POST /v1/objects.
type UpsertRequest struct {
	Objects []UpsertObject `json:"objects" api:"v1"`
}

// UpdateResponse is the body of a successful upsert.
type UpdateResponse struct {
	Epoch uint64 `json:"epoch" api:"v1"`
	Count int    `json:"count" api:"v1"`
}

// DeleteRequest is the body of DELETE /v1/objects.
type DeleteRequest struct {
	IDs []int64 `json:"ids" api:"v1"`
}

// DeleteResponse reports what a delete batch achieved. Missing counts the
// distinct requested ids that were not live — deleting them is not an
// error (the end state is what the client asked for), but the client gets
// to know.
type DeleteResponse struct {
	Epoch   uint64 `json:"epoch" api:"v1"`
	Deleted int    `json:"deleted" api:"v1"`
	Missing int    `json:"missing" api:"v1"`
}

// Healthz is the body of GET /v1/healthz: liveness, the loaded snapshot's
// shape and provenance, and — when the process serves one shard of a tiled
// deployment — the shard's identity, so a coordinator can verify topology
// before taking traffic.
type Healthz struct {
	Status        string `json:"status" api:"v1"`
	Vertices      int    `json:"vertices" api:"v1"`
	Faces         int    `json:"faces" api:"v1"`
	Objects       int    `json:"objects" api:"v1"`
	Epoch         uint64 `json:"epoch" api:"v1"`
	InFlight      int64  `json:"in_flight" api:"v1"`
	CacheEntries  int    `json:"cache_entries" api:"v1"`
	FormatVersion int    `json:"format_version" api:"v1"`
	ShardID       string `json:"shard_id,omitempty" api:"v1"`
	// Shards is the per-shard topology report a coordinator adds to its
	// own health answer; empty on a standalone or shard server.
	Shards []ShardHealth `json:"shards,omitempty" api:"v1"`
}

// ShardHealth is one shard's line in a coordinator's topology report.
type ShardHealth struct {
	ID      string `json:"id" api:"v1"`
	Addr    string `json:"addr" api:"v1"`
	Status  string `json:"status" api:"v1"`
	Epoch   uint64 `json:"epoch" api:"v1"`
	Objects int    `json:"objects" api:"v1"`
}

package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"surfknn/internal/server/api"
)

func deleteReq(t testing.TB, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodDelete, path, nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func decodeSubscribe(t *testing.T, w *httptest.ResponseRecorder) api.SubscribeResponse {
	t.Helper()
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var res api.SubscribeResponse
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatalf("decoding subscribe response: %v\n%s", err, w.Body.String())
	}
	return res
}

// TestSubscribeLifecycle walks the continuous-query surface end to end over
// HTTP: subscribe, safe-region hit on a move to the anchor itself, epoch
// invalidation through a real object upsert (the staleness regression: the
// post-update move must re-evaluate and carry the new epoch, never the
// cached pre-update top-k), and unsubscribe.
func TestSubscribeLifecycle(t *testing.T) {
	s := newTestServer(t, Config{})

	w := post(t, s, "/v1/subscribe", `{"x":830,"y":770,"k":3}`)
	sub := decodeSubscribe(t, w)
	if sub.ID == 0 || len(sub.Neighbors) != 3 {
		t.Fatalf("subscribe returned id=%d with %d neighbours", sub.ID, len(sub.Neighbors))
	}
	if got := w.Header().Get("X-Safe-Region"); got != "miss" {
		t.Fatalf("subscribe X-Safe-Region = %q, want miss (initial evaluation)", got)
	}
	epoch0 := sub.Epoch

	// A move to the exact anchor is inside any safe region (distance 0 <=
	// radius, even a zero radius): must be a hit serving the same answer.
	movePath := fmt.Sprintf("/v1/subscribe/%d/move", sub.ID)
	w = post(t, s, movePath, `{"x":830,"y":770}`)
	moved := decodeSubscribe(t, w)
	if got := w.Header().Get("X-Safe-Region"); got != "hit" {
		t.Fatalf("move to anchor X-Safe-Region = %q, want hit", got)
	}
	if moved.Epoch != epoch0 {
		t.Fatalf("hit served epoch %d, subscribed at %d", moved.Epoch, epoch0)
	}
	for i := range sub.Neighbors {
		if moved.Neighbors[i].ID != sub.Neighbors[i].ID {
			t.Fatalf("hit changed rank %d: %d != %d", i+1, moved.Neighbors[i].ID, sub.Neighbors[i].ID)
		}
	}

	// Upsert an object onto the anchor: publishes a new epoch and must
	// invalidate the subscription — the next move, even to the same point,
	// re-evaluates and sees the new object at rank 1.
	w = post(t, s, "/v1/objects", `{"objects":[{"id":9002,"x":830,"y":770}]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("upsert failed: %d %s", w.Code, w.Body.String())
	}
	w = post(t, s, movePath, `{"x":830,"y":770}`)
	moved = decodeSubscribe(t, w)
	if got := w.Header().Get("X-Safe-Region"); got != "miss" {
		t.Fatalf("post-update move X-Safe-Region = %q, want miss", got)
	}
	if moved.Epoch != epoch0+1 {
		t.Fatalf("post-update move served epoch %d, want %d", moved.Epoch, epoch0+1)
	}
	if moved.Neighbors[0].ID != 9002 {
		t.Fatalf("post-update top-1 is %d, want the upserted 9002", moved.Neighbors[0].ID)
	}

	delPath := fmt.Sprintf("/v1/subscribe/%d", sub.ID)
	w = deleteReq(t, s, delPath)
	if w.Code != http.StatusOK {
		t.Fatalf("unsubscribe: %d %s", w.Code, w.Body.String())
	}
	var ur api.UnsubscribeResponse
	if err := json.Unmarshal(w.Body.Bytes(), &ur); err != nil || !ur.Removed {
		t.Fatalf("unsubscribe body: %s (err %v)", w.Body.String(), err)
	}
	if w = deleteReq(t, s, delPath); w.Code != http.StatusNotFound {
		t.Fatalf("second unsubscribe: %d, want 404", w.Code)
	}
	if w = post(t, s, movePath, `{"x":830,"y":770}`); w.Code != http.StatusNotFound {
		t.Fatalf("move after unsubscribe: %d, want 404", w.Code)
	}
}

func TestSubscribeValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name, method, path, body string
		status                   int
	}{
		{"missing k", http.MethodPost, "/v1/subscribe", `{"x":830,"y":770}`, http.StatusBadRequest},
		{"off-terrain", http.MethodPost, "/v1/subscribe", `{"x":-50,"y":770,"k":3}`, http.StatusNotFound},
		{"unknown field", http.MethodPost, "/v1/subscribe", `{"x":830,"y":770,"k":3,"radius":1}`, http.StatusBadRequest},
		{"bad move id", http.MethodPost, "/v1/subscribe/zzz/move", `{"x":830,"y":770}`, http.StatusBadRequest},
		{"unknown move id", http.MethodPost, "/v1/subscribe/424242/move", `{"x":830,"y":770}`, http.StatusNotFound},
		{"bad delete id", http.MethodDelete, "/v1/subscribe/zzz", ``, http.StatusBadRequest},
		{"unknown delete id", http.MethodDelete, "/v1/subscribe/424242", ``, http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var w *httptest.ResponseRecorder
			if tc.method == http.MethodDelete {
				w = deleteReq(t, s, tc.path)
			} else {
				w = post(t, s, tc.path, tc.body)
			}
			if w.Code != tc.status {
				t.Fatalf("%s %s: status %d, want %d\n%s", tc.method, tc.path, w.Code, tc.status, w.Body.String())
			}
			decodeError(t, w)
		})
	}
}

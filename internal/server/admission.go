package server

import (
	"context"
	"errors"
	"time"

	"surfknn/internal/obs"
)

// errSaturated is returned by acquire when the server is at capacity and
// the wait queue is full (or the queued wait timed out). The handler maps
// it to HTTP 429 with a Retry-After hint.
var errSaturated = errors.New("server: saturated")

// admission is the semaphore-based admission controller: at most maxInFlight
// requests execute queries concurrently, at most queueDepth more wait for a
// slot, and no request waits longer than maxWait. Everything beyond that is
// rejected immediately — under overload the server sheds load with a fast
// 429 instead of stacking goroutines until memory or every client's
// patience runs out.
//
// The execution semaphore is a buffered channel: a slot is held while a
// token is in the channel. The queue is a second token channel bounding how
// many acquirers may block on the semaphore at once.
type admission struct {
	slots   chan struct{}
	queue   chan struct{}
	maxWait time.Duration
	stats   *obs.ServerStats
}

func newAdmission(maxInFlight, queueDepth int, maxWait time.Duration, stats *obs.ServerStats) *admission {
	return &admission{
		slots:   make(chan struct{}, maxInFlight),
		queue:   make(chan struct{}, queueDepth),
		maxWait: maxWait,
		stats:   stats,
	}
}

// acquire claims an execution slot, waiting in the bounded queue when the
// server is busy. It returns nil (slot held — the caller must release),
// errSaturated (queue full or wait timed out), or the context's error when
// the request was cancelled while queued. It never blocks longer than
// maxWait, so a saturated server answers every request promptly.
func (a *admission) acquire(ctx context.Context) error {
	// Fast path: a slot is free right now.
	select {
	case a.slots <- struct{}{}:
		a.stats.InFlight.Add(1)
		return nil
	default:
	}
	// Busy: join the wait queue if it has room.
	select {
	case a.queue <- struct{}{}:
	default:
		return errSaturated
	}
	a.stats.Queued.Add(1)
	defer func() {
		<-a.queue
		a.stats.Queued.Add(-1)
	}()
	wait := time.NewTimer(a.maxWait)
	defer wait.Stop()
	select {
	case a.slots <- struct{}{}:
		a.stats.InFlight.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-wait.C:
		return errSaturated
	}
}

// release frees the slot claimed by a successful acquire, waking one queued
// request if any.
func (a *admission) release() {
	<-a.slots
	a.stats.InFlight.Add(-1)
}

// retryAfterSeconds is the Retry-After hint sent with 429 responses: the
// queue wait rounded up to whole seconds, at least 1.
func (a *admission) retryAfterSeconds() int {
	s := int((a.maxWait + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

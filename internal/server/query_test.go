package server

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"surfknn/internal/geom"
	"surfknn/internal/server/api"
)

// neighborsJSON extracts the raw `"neighbors":[...]` bytes from a response
// body so the SKQL/point-route comparison is over the actual wire bytes,
// not a decoded-and-re-encoded approximation.
var neighborsRe = regexp.MustCompile(`"neighbors":\[[^\]]*\]`)

func neighborsJSON(t *testing.T, body string) string {
	t.Helper()
	m := neighborsRe.FindString(body)
	if m == "" {
		t.Fatalf("no neighbors array in body: %s", body)
	}
	return m
}

// TestQueryMatchesPointRoutes is the language-layer fidelity check: each
// SKQL form must produce the byte-identical neighbours array the hand-built
// point route returns for the same parameters.
func TestQueryMatchesPointRoutes(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name, q, path, body string
	}{
		{"mr3", `SELECT k=5 NEAREST (800, 800) USING s=2`, "/v1/knn", `{"x":800,"y":800,"k":5,"sched":2}`},
		{"range", `RANGE (800, 800) WITHIN 500`, "/v1/range", `{"x":800,"y":800,"radius":500}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			qw := post(t, s, "/v1/query", `{"q":"`+tc.q+`"}`)
			if qw.Code != http.StatusOK {
				t.Fatalf("query status = %d\n%s", qw.Code, qw.Body.String())
			}
			pw := post(t, s, tc.path, tc.body)
			if pw.Code != http.StatusOK {
				t.Fatalf("point route status = %d\n%s", pw.Code, pw.Body.String())
			}
			got := neighborsJSON(t, qw.Body.String())
			want := neighborsJSON(t, pw.Body.String())
			if got != want {
				t.Errorf("neighbours differ:\nquery: %s\npoint: %s", got, want)
			}
		})
	}
}

// TestQueryEA pins ACCURACY 1 → EA: there is no EA point route (it is the
// paper's benchmark), so the check is against the engine directly, bit for
// bit.
func TestQueryEA(t *testing.T) {
	db := getDB(t)
	s := newTestServer(t, Config{})
	w := post(t, s, "/v1/query", `{"q":"SELECT k=5 NEAREST (800, 800) ACCURACY 1"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d\n%s", w.Code, w.Body.String())
	}
	var resp api.QueryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Algorithm != "ea" {
		t.Fatalf("algorithm = %q, want ea", resp.Algorithm)
	}
	q, err := db.SurfacePointAt(geom.Vec2{X: 800, Y: 800})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := db.EA(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Neighbors) != len(direct.Neighbors) {
		t.Fatalf("got %d neighbours, want %d", len(resp.Result.Neighbors), len(direct.Neighbors))
	}
	for i, n := range direct.Neighbors {
		h := resp.Result.Neighbors[i]
		if h.ID != n.Object.ID ||
			math.Float64bits(float64(h.LB)) != math.Float64bits(n.LB) ||
			math.Float64bits(float64(h.UB)) != math.Float64bits(n.UB) {
			t.Errorf("neighbour %d not bit-identical: %+v vs %+v", i, h, n)
		}
	}
}

// TestQueryDistance pins the DISTANCE form against /v1/distance: identical
// bound strings (api.Float shortest round-trip) and iteration count.
func TestQueryDistance(t *testing.T) {
	s := newTestServer(t, Config{})
	qw := post(t, s, "/v1/query", `{"q":"DISTANCE (100, 100) TO (1400, 1400) ACCURACY 0.9"}`)
	if qw.Code != http.StatusOK {
		t.Fatalf("query status = %d\n%s", qw.Code, qw.Body.String())
	}
	var qresp api.QueryResponse
	if err := json.Unmarshal(qw.Body.Bytes(), &qresp); err != nil {
		t.Fatal(err)
	}
	if qresp.Form != "select" && qresp.Form != "distance" {
		t.Fatalf("form = %q", qresp.Form)
	}
	if qresp.Distance == nil {
		t.Fatalf("no distance payload: %s", qw.Body.String())
	}
	pw := post(t, s, "/v1/distance", `{"x":100,"y":100,"x2":1400,"y2":1400,"accuracy":0.9}`)
	if pw.Code != http.StatusOK {
		t.Fatalf("point route status = %d\n%s", pw.Code, pw.Body.String())
	}
	var presp api.DistanceResponse
	if err := json.Unmarshal(pw.Body.Bytes(), &presp); err != nil {
		t.Fatal(err)
	}
	d := *qresp.Distance
	if d.LB != presp.LB || d.UB != presp.UB || d.Iterations != presp.Iterations {
		t.Errorf("distance differs:\nquery: %+v\npoint: %+v", d, presp)
	}
}

// TestQueryCache pins the cache contract: select/range statements hit the
// epoch-scoped cache keyed on the canonical spelling, so two different
// spellings of the same statement share one entry.
func TestQueryCache(t *testing.T) {
	s := newTestServer(t, Config{})
	first := post(t, s, "/v1/query", `{"q":"SELECT k=5 NEAREST (800, 800)"}`)
	if first.Code != http.StatusOK {
		t.Fatalf("status = %d\n%s", first.Code, first.Body.String())
	}
	if got := first.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("first X-Cache = %q, want miss", got)
	}
	// Same statement, scrambled case and spacing: canonicalisation must
	// land on the cached entry.
	second := post(t, s, "/v1/query", `{"q":"select K = 5 nearest(800,800)"}`)
	if got := second.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("second X-Cache = %q, want hit\n%s", got, second.Body.String())
	}
	if first.Body.String() != second.Body.String() {
		t.Error("cache hit served different bytes")
	}
}

// TestQueryParseErrorPosition pins satellite 4's server half: a parse error
// answers 400 with the 1-based position and offending token in the
// envelope.
func TestQueryParseErrorPosition(t *testing.T) {
	s := newTestServer(t, Config{})
	w := post(t, s, "/v1/query", `{"q":"SELECT k=5 NEAREST (800 800)"}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400\n%s", w.Code, w.Body.String())
	}
	var env api.ErrorEnvelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	e := env.Error
	if e.Code != api.CodeBadRequest {
		t.Errorf("code = %q", e.Code)
	}
	if e.Line != 1 || e.Col != 25 || e.Token != "800" {
		t.Errorf("position = %d:%d token %q, want 1:25 token \"800\"", e.Line, e.Col, e.Token)
	}
	if !strings.Contains(e.Message, "1:25") {
		t.Errorf("message %q does not carry the position", e.Message)
	}
}

// TestQueryExplainStatementRejected: the EXPLAIN prefix belongs to
// /v1/explain; /v1/query points the client there.
func TestQueryExplainStatementRejected(t *testing.T) {
	s := newTestServer(t, Config{})
	w := post(t, s, "/v1/query", `{"q":"EXPLAIN SELECT k=5 NEAREST (800, 800)"}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400\n%s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "/v1/explain") {
		t.Errorf("error does not redirect to /v1/explain: %s", w.Body.String())
	}
}

// TestQuerySubscribe pins the SUBSCRIBE form end to end: it registers a
// real subscription whose id works against the /v1/subscribe/{id} routes.
func TestQuerySubscribe(t *testing.T) {
	s := newTestServer(t, Config{})
	w := post(t, s, "/v1/query", `{"q":"SUBSCRIBE k=3 FOLLOW (830, 770)"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d\n%s", w.Code, w.Body.String())
	}
	var resp api.QueryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Form != "subscribe" || resp.Algorithm != "continuous" {
		t.Fatalf("form/algorithm = %q/%q", resp.Form, resp.Algorithm)
	}
	if resp.Subscription == nil || resp.Subscription.ID == 0 {
		t.Fatalf("no subscription in response: %s", w.Body.String())
	}
	if len(resp.Result.Neighbors) != 3 {
		t.Fatalf("subscription answered %d neighbours, want 3", len(resp.Result.Neighbors))
	}
	if got := w.Header().Get("X-Cache"); got != "" {
		t.Errorf("subscribe response carries X-Cache %q; must never be cached", got)
	}
	// The id is live: a move against the standard subscription routes works.
	mw := post(t, s, "/v1/subscribe/"+itoa(resp.Subscription.ID)+"/move", `{"x":830,"y":770}`)
	if mw.Code != http.StatusOK {
		t.Fatalf("move on SKQL-created subscription: %d\n%s", mw.Code, mw.Body.String())
	}
}

func itoa(id uint64) string {
	b, _ := json.Marshal(id)
	return string(b)
}

// TestExplainEndpoint pins the acceptance criterion: /v1/explain returns a
// plan tree whose root names the algorithm and whose phase leaves carry the
// engine's actual per-phase cost counters.
func TestExplainEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, q := range []string{
		`SELECT k=5 NEAREST (800, 800) USING s=2`,
		`EXPLAIN SELECT k=5 NEAREST (800, 800) USING s=2`, // prefix optional, same answer
	} {
		w := post(t, s, "/v1/explain", `{"q":"`+q+`"}`)
		if w.Code != http.StatusOK {
			t.Fatalf("status = %d\n%s", w.Code, w.Body.String())
		}
		var resp api.ExplainResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Algorithm != "mr3" || resp.Plan.Op != "mr3" {
			t.Fatalf("algorithm/root = %q/%q, want mr3", resp.Algorithm, resp.Plan.Op)
		}
		if resp.Plan.Cost == nil || resp.Plan.Cost.Pages == 0 {
			t.Fatalf("root not annotated with actual cost: %+v", resp.Plan.Cost)
		}
		phases := 0
		for _, ch := range resp.Plan.Children {
			if !strings.HasPrefix(ch.Op, "phase:") {
				continue
			}
			phases++
			if ch.Phase == nil {
				t.Errorf("phase leaf %s has no actuals", ch.Op)
			} else if ch.EstPages <= 0 {
				t.Errorf("phase leaf %s has no estimate", ch.Op)
			}
		}
		if phases != 4 {
			t.Errorf("plan has %d phase leaves, want 4", phases)
		}
		if !strings.Contains(resp.Text, "mr3") || !strings.Contains(resp.Text, "act=") {
			t.Errorf("rendered text missing algorithm or actuals:\n%s", resp.Text)
		}
		if resp.Query != "SELECT k=5 NEAREST (800, 800) USING s=2" {
			t.Errorf("canonical query = %q", resp.Query)
		}
	}
}

// TestExplainConsole: the embedded console page is served.
func TestExplainConsole(t *testing.T) {
	s := newTestServer(t, Config{})
	req := httptest.NewRequest(http.MethodGet, "/debug/explain", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(w.Body.String(), "/v1/explain") {
		t.Error("console page does not target /v1/explain")
	}
}

package server

// Shard-fabric endpoints: the decomposed MR3 primitives under /v1/shard/*
// that a scatter-gather coordinator (internal/shard) drives against this
// process when it serves one tile of a sharded deployment. The routes are
// mounted unconditionally — a server that never sees a coordinator simply
// never receives them — and speak the api.Shard* wire types.
//
// Admission: the 2-D primitives (knn2d, range2d) are cheap index reads and
// bypass the admission semaphore like the object-update routes; the ranking
// primitives (rank, ea, range) run the full multiresolution machinery and
// are admitted exactly like public queries. Shard responses are never
// cached: the coordinator's public-facing responses are what benefit from
// caching, and it caches per assembled answer, not per fragment.

import (
	"math"
	"net/http"
	"time"

	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/server/api"
	"surfknn/internal/workload"
)

// toCandidates maps an object slice onto the wire, carrying the exact
// surface point including the mesh face (see api.Candidate).
func toCandidates(objs []workload.Object) []api.Candidate {
	out := make([]api.Candidate, len(objs))
	for i, o := range objs {
		out[i] = api.Candidate{
			ID:   o.ID,
			X:    o.Point.Pos.X,
			Y:    o.Point.Pos.Y,
			Z:    o.Point.Pos.Z,
			Face: int32(o.Point.Face),
		}
	}
	return out
}

// candidateObjects validates and maps wire candidates back onto engine
// objects, writing the 400 itself on a face id outside the local mesh.
func (s *Server) candidateObjects(w http.ResponseWriter, cands []api.Candidate) ([]workload.Object, bool) {
	nf := s.db.Mesh.NumFaces()
	objs := make([]workload.Object, len(cands))
	for i, c := range cands {
		if c.Face < 0 || int(c.Face) >= nf {
			s.badRequest(w, "candidates[%d]: face %d outside mesh (%d faces)", i, c.Face, nf)
			return nil, false
		}
		objs[i] = workload.Object{
			ID: c.ID,
			Point: mesh.SurfacePoint{
				Pos:  geom.Vec3{X: c.X, Y: c.Y, Z: c.Z},
				Face: mesh.FaceID(c.Face),
			},
		}
	}
	return objs, true
}

// --- POST /v1/shard/knn2d ---

func (s *Server) handleShardKNN2D(w http.ResponseWriter, r *http.Request) {
	var req api.ShardKNN2DRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.K < 1 || req.K > maxK {
		s.badRequest(w, "k must be in [1, %d], got %d", maxK, req.K)
		return
	}
	objs, epoch := s.db.KNN2D(geom.Vec2{X: req.X, Y: req.Y}, req.K)
	setEpoch(w, epoch)
	writeBody(w, api.CandidatesResponse{Epoch: epoch, Candidates: toCandidates(objs)})
}

// --- POST /v1/shard/range2d ---

func (s *Server) handleShardRange2D(w http.ResponseWriter, r *http.Request) {
	var req api.ShardRange2DRequest
	if !s.decode(w, r, &req) {
		return
	}
	// Radius zero is legal here (unlike the public range route): the
	// coordinator forwards MR3's k-th upper bound verbatim, and a query
	// point sitting exactly on an object yields a zero bound.
	if !(req.Radius >= 0) || math.IsInf(req.Radius, 1) {
		s.badRequest(w, "radius must be a non-negative finite distance, got %g", req.Radius)
		return
	}
	objs, epoch := s.db.Range2D(geom.Vec2{X: req.X, Y: req.Y}, req.Radius)
	setEpoch(w, epoch)
	writeBody(w, api.CandidatesResponse{Epoch: epoch, Candidates: toCandidates(objs)})
}

// --- POST /v1/shard/rank ---

func (s *Server) handleShardRank(w http.ResponseWriter, r *http.Request) {
	var req api.ShardRankRequest
	if !s.decodeLimited(w, r, &req, maxShardBodyBytes) {
		return
	}
	if req.K < 1 || req.K > maxK {
		s.badRequest(w, "k must be in [1, %d], got %d", maxK, req.K)
		return
	}
	sched, ok := schedFor(req.Sched)
	if !ok {
		s.badRequest(w, "sched must be 1, 2 or 3, got %d", req.Sched)
		return
	}
	opt, err := coreOptions(req.Options)
	if err != nil {
		s.badRequest(w, "invalid options: %v", err)
		return
	}
	q, ok := s.surfacePoint(w, req.X, req.Y)
	if !ok {
		return
	}
	objs, ok := s.candidateObjects(w, req.Candidates)
	if !ok {
		return
	}

	ctx, cancel := s.requestContext(r, time.Duration(req.Timeout))
	defer cancel()
	if !s.admit(ctx, w) {
		return
	}
	defer s.adm.release()
	sess := s.db.AcquireSession()
	defer s.db.Release(sess)

	res, err := sess.RankCandidatesCtx(ctx, q, objs, req.K, sched, opt, req.Tighten)
	if err != nil {
		writeQueryError(w, s.stats, err)
		return
	}
	setEpoch(w, res.Epoch)
	wire := toResponse(res)
	writeBody(w, api.ShardResult{Epoch: res.Epoch, Neighbors: wire.Neighbors, Cost: wire.Cost})
}

// --- POST /v1/shard/ea ---

func (s *Server) handleShardEA(w http.ResponseWriter, r *http.Request) {
	var req api.ShardEARequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.K < 1 || req.K > maxK {
		s.badRequest(w, "k must be in [1, %d], got %d", maxK, req.K)
		return
	}
	q, ok := s.surfacePoint(w, req.X, req.Y)
	if !ok {
		return
	}
	// Clamp k to this shard's live object count: a shard owning fewer than
	// k objects contributes them all, and the coordinator merges per-shard
	// top-k lists into the global top-k.
	k := req.K
	if n := len(s.db.Objects()); k > n {
		k = n
	}
	if k == 0 {
		epoch := s.db.CurrentEpoch()
		setEpoch(w, epoch)
		writeBody(w, api.ShardResult{Epoch: epoch, Neighbors: []api.Neighbor{}})
		return
	}

	ctx, cancel := s.requestContext(r, time.Duration(req.Timeout))
	defer cancel()
	if !s.admit(ctx, w) {
		return
	}
	defer s.adm.release()
	sess := s.db.AcquireSession()
	defer s.db.Release(sess)

	res, err := sess.EACtx(ctx, q, k)
	if err != nil {
		writeQueryError(w, s.stats, err)
		return
	}
	setEpoch(w, res.Epoch)
	wire := toResponse(res)
	writeBody(w, api.ShardResult{Epoch: res.Epoch, Neighbors: wire.Neighbors, Cost: wire.Cost})
}

// --- POST /v1/shard/range ---

func (s *Server) handleShardRange(w http.ResponseWriter, r *http.Request) {
	var req api.ShardRangeRequest
	if !s.decode(w, r, &req) {
		return
	}
	if !(req.Radius > 0) || math.IsInf(req.Radius, 1) {
		s.badRequest(w, "radius must be a positive finite distance, got %g", req.Radius)
		return
	}
	sched, ok := schedFor(req.Sched)
	if !ok {
		s.badRequest(w, "sched must be 1, 2 or 3, got %d", req.Sched)
		return
	}
	opt, err := coreOptions(req.Options)
	if err != nil {
		s.badRequest(w, "invalid options: %v", err)
		return
	}
	q, ok := s.surfacePoint(w, req.X, req.Y)
	if !ok {
		return
	}

	ctx, cancel := s.requestContext(r, time.Duration(req.Timeout))
	defer cancel()
	if !s.admit(ctx, w) {
		return
	}
	defer s.adm.release()
	sess := s.db.AcquireSession()
	defer s.db.Release(sess)

	res, err := sess.SurfaceRangeCtx(ctx, q, req.Radius, sched, opt)
	if err != nil {
		writeQueryError(w, s.stats, err)
		return
	}
	setEpoch(w, res.Epoch)
	wire := toResponse(res)
	writeBody(w, api.ShardResult{Epoch: res.Epoch, Neighbors: wire.Neighbors, Cost: wire.Cost})
}

// --- POST /v1/shard/objects ---

// handleShardObjects applies one coordinator-replayed logical update at the
// coordinator-assigned epoch (see objstore.ApplyAt). Empty batches are
// legal — a shard owning none of the touched objects still publishes, so
// every shard's epoch advances in lockstep — and replays are idempotent.
func (s *Server) handleShardObjects(w http.ResponseWriter, r *http.Request) {
	var req api.ShardObjectsRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Epoch == 0 {
		s.badRequest(w, "epoch must be positive")
		return
	}
	if len(req.Objects) > maxUpdateBatch || len(req.DeleteIDs) > maxUpdateBatch {
		s.badRequest(w, "batch exceeds the limit of %d", maxUpdateBatch)
		return
	}
	store := s.db.ObjectStore()
	if store == nil {
		writeError(w, http.StatusInternalServerError, api.CodeInternal,
			"database has no object store installed")
		return
	}
	batch, ok := s.upsertBatch(w, req.Objects)
	if !ok {
		return
	}

	epoch, applied := store.ApplyAt(batch, req.DeleteIDs, req.Epoch)
	setEpoch(w, epoch)
	writeBody(w, api.ShardObjectsResponse{Epoch: epoch, Applied: applied})
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"surfknn/internal/core"
	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/server/api"
	"surfknn/internal/sklang/skexec"
)

// The wire shapes themselves live in internal/server/api — the one
// importable definition of every request and response body, shared with the
// typed client and the scatter-gather coordinator. This file maps them onto
// the engine: validation, option translation, admission, caching, and the
// handlers for the public query routes.

// maxK bounds the k a client may request; anything larger is a typo or an
// attack, not a query.
const maxK = 1 << 20

// maxBodyBytes bounds request bodies for the point-query routes; every
// valid request is a few hundred bytes.
const maxBodyBytes = 1 << 20

// maxShardBodyBytes bounds the shard-fabric request bodies, which carry
// gathered candidate sets (see shard.go) and so are legitimately larger.
const maxShardBodyBytes = 16 << 20

// coreOptions maps the wire options onto core.Options, validating
// fractions. The mapping lives in skexec so the SKQL plan executor and the
// /v1 handlers translate a client's options identically — the /v1/query
// bit-identity guarantee depends on it.
func coreOptions(o *api.Options) (core.Options, error) {
	return skexec.CoreOptions(o)
}

// schedFor resolves the request's schedule number (default 1, matching
// skquery).
func schedFor(n int) (core.Schedule, bool) {
	return skexec.Schedule(n)
}

// toResponse maps an engine result onto the wire.
func toResponse(res core.Result) api.Result {
	out := api.Result{
		Neighbors: make([]api.Neighbor, len(res.Neighbors)),
		Cost: api.Cost{
			Pages:     res.Cost.Pages(),
			CPUUs:     res.Cost.CPU.Microseconds(),
			ElapsedUs: res.Cost.Elapsed.Microseconds(),
		},
	}
	for i, n := range res.Neighbors {
		out.Neighbors[i] = api.Neighbor{
			ID: n.Object.ID,
			X:  n.Object.Point.Pos.X,
			Y:  n.Object.Point.Pos.Y,
			Z:  n.Object.Point.Pos.Z,
			LB: api.Float(n.LB),
			UB: api.Float(n.UB),
		}
	}
	return out
}

// decode reads and validates the JSON request body into dst. Unknown
// fields are errors — a misspelled option silently falling back to a
// default is worse than a 400. Returns false with the 400 already written.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	return s.decodeLimited(w, r, dst, maxBodyBytes)
}

func (s *Server) decodeLimited(w http.ResponseWriter, r *http.Request, dst any, limit int64) bool {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		s.stats.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "invalid request body: %v", err)
		return false
	}
	if dec.More() {
		s.stats.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "trailing data after request body")
		return false
	}
	return true
}

// badRequest writes a 400 envelope and counts it.
func (s *Server) badRequest(w http.ResponseWriter, format string, args ...any) {
	s.stats.BadRequests.Add(1)
	writeError(w, http.StatusBadRequest, api.CodeBadRequest, format, args...)
}

// surfacePoint lifts (x,y) onto the terrain; a point outside the surface
// extent is a 404 — the addressed surface location does not exist.
func (s *Server) surfacePoint(w http.ResponseWriter, x, y float64) (mesh.SurfacePoint, bool) {
	q, err := s.db.SurfacePointAt(geom.Vec2{X: x, Y: y})
	if err != nil {
		s.stats.BadRequests.Add(1)
		writeError(w, http.StatusNotFound, api.CodeNotFound, "point (%g, %g) is not on the terrain: %v", x, y, err)
		return mesh.SurfacePoint{}, false
	}
	return q, true
}

// admit claims an execution slot, writing the 429/408 refusal itself.
// Callers must release on true.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter) bool {
	err := s.adm.acquire(ctx)
	switch {
	case err == nil:
		return true
	case errors.Is(err, errSaturated):
		s.stats.Rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.adm.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, api.CodeSaturated,
			"server saturated (%d executing, %d queued); retry later",
			s.cfg.MaxInFlight, s.cfg.QueueDepth)
	default: // request context ended while queued
		s.stats.TimedOut.Add(1)
		writeError(w, http.StatusRequestTimeout, api.CodeTimeout, "request ended while queued: %v", err)
	}
	return false
}

// optKey canonicalizes options into the cache key. Float fractions are
// keyed by their exact bits; the unset/sentinel encoding is keyed as-is,
// which is canonical because coreOptions maps each client value to exactly
// one encoding.
func optKey(o core.Options) string {
	return fmt.Sprintf("s2a=%x,ovl=%x,io=%t,dlb=%t,bfl=%t",
		math.Float64bits(o.Step2Accuracy), math.Float64bits(o.OverlapThreshold),
		o.DisableIOIntegration, o.DisableDummyLB, o.BothFamilyLB)
}

// epochKey scopes a cache key to one object-store epoch. Object updates
// therefore never purge the cache: entries computed against a superseded
// epoch simply become unreachable (lookups use the current epoch) and age
// out of the LRU naturally.
func epochKey(epoch uint64, suffix string) string {
	return fmt.Sprintf("e=%d|%s", epoch, suffix)
}

// setEpoch overwrites the middleware's blanket X-Epoch stamp with the
// exact epoch the response was computed against.
func setEpoch(w http.ResponseWriter, epoch uint64) {
	w.Header().Set("X-Epoch", strconv.FormatUint(epoch, 10))
}

// --- POST /v1/knn ---

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	var req api.KNNRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.K < 1 || req.K > maxK {
		s.badRequest(w, "k must be in [1, %d], got %d", maxK, req.K)
		return
	}
	sched, ok := schedFor(req.Sched)
	if !ok {
		s.badRequest(w, "sched must be 1, 2 or 3, got %d", req.Sched)
		return
	}
	opt, err := coreOptions(req.Options)
	if err != nil {
		s.badRequest(w, "invalid options: %v", err)
		return
	}
	q, ok := s.surfacePoint(w, req.X, req.Y)
	if !ok {
		return
	}

	suffix := fmt.Sprintf("knn|x=%x|y=%x|k=%d|sched=%s|%s",
		math.Float64bits(req.X), math.Float64bits(req.Y), req.K, sched.Name, optKey(opt))
	epoch := s.db.CurrentEpoch()
	if body, ok := s.cache.get(epochKey(epoch, suffix)); ok {
		setEpoch(w, epoch)
		writeJSON(w, body, "hit")
		return
	}

	ctx, cancel := s.requestContext(r, time.Duration(req.Timeout))
	defer cancel()
	if !s.admit(ctx, w) {
		return
	}
	defer s.adm.release()
	sess := s.db.AcquireSession()
	defer s.db.Release(sess)

	res, err := sess.MR3Ctx(ctx, q, req.K, sched, opt)
	if err != nil {
		writeQueryError(w, s.stats, err)
		return
	}
	// Cache under the epoch the query actually pinned (an update may have
	// landed between the lookup above and session checkout).
	setEpoch(w, res.Epoch)
	s.respond(w, epochKey(res.Epoch, suffix), toResponse(res))
}

// --- POST /v1/range ---

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	var req api.RangeRequest
	if !s.decode(w, r, &req) {
		return
	}
	if !(req.Radius > 0) || math.IsInf(req.Radius, 1) {
		s.badRequest(w, "radius must be a positive finite distance, got %g", req.Radius)
		return
	}
	sched, ok := schedFor(req.Sched)
	if !ok {
		s.badRequest(w, "sched must be 1, 2 or 3, got %d", req.Sched)
		return
	}
	opt, err := coreOptions(req.Options)
	if err != nil {
		s.badRequest(w, "invalid options: %v", err)
		return
	}
	q, ok := s.surfacePoint(w, req.X, req.Y)
	if !ok {
		return
	}

	suffix := fmt.Sprintf("range|x=%x|y=%x|r=%x|sched=%s|%s",
		math.Float64bits(req.X), math.Float64bits(req.Y), math.Float64bits(req.Radius),
		sched.Name, optKey(opt))
	epoch := s.db.CurrentEpoch()
	if body, ok := s.cache.get(epochKey(epoch, suffix)); ok {
		setEpoch(w, epoch)
		writeJSON(w, body, "hit")
		return
	}

	ctx, cancel := s.requestContext(r, time.Duration(req.Timeout))
	defer cancel()
	if !s.admit(ctx, w) {
		return
	}
	defer s.adm.release()
	sess := s.db.AcquireSession()
	defer s.db.Release(sess)

	res, err := sess.SurfaceRangeCtx(ctx, q, req.Radius, sched, opt)
	if err != nil {
		writeQueryError(w, s.stats, err)
		return
	}
	setEpoch(w, res.Epoch)
	s.respond(w, epochKey(res.Epoch, suffix), toResponse(res))
}

// --- POST /v1/distance ---

func (s *Server) handleDistance(w http.ResponseWriter, r *http.Request) {
	var req api.DistanceRequest
	if !s.decode(w, r, &req) {
		return
	}
	acc := req.Accuracy
	if acc == 0 {
		acc = 0.9
	}
	if !(acc > 0 && acc <= 1) {
		s.badRequest(w, "accuracy must be in (0, 1], got %g", req.Accuracy)
		return
	}
	sched, ok := schedFor(req.Sched)
	if !ok {
		s.badRequest(w, "sched must be 1, 2 or 3, got %d", req.Sched)
		return
	}
	a, ok := s.surfacePoint(w, req.X, req.Y)
	if !ok {
		return
	}
	b, ok := s.surfacePoint(w, req.X2, req.Y2)
	if !ok {
		return
	}

	// Surface distance depends only on the immutable terrain, never on the
	// object set, so the key is deliberately NOT epoch-scoped: entries stay
	// valid (and reachable) across any number of object updates.
	key := fmt.Sprintf("distance|a=%x,%x|b=%x,%x|acc=%x|sched=%s",
		math.Float64bits(req.X), math.Float64bits(req.Y),
		math.Float64bits(req.X2), math.Float64bits(req.Y2),
		math.Float64bits(acc), sched.Name)
	if body, ok := s.cache.get(key); ok {
		writeJSON(w, body, "hit")
		return
	}

	ctx, cancel := s.requestContext(r, time.Duration(req.Timeout))
	defer cancel()
	if !s.admit(ctx, w) {
		return
	}
	defer s.adm.release()
	sess := s.db.AcquireSession()
	defer s.db.Release(sess)

	dr, err := sess.DistanceWithAccuracyCtx(ctx, a, b, acc, sched)
	if err != nil {
		writeQueryError(w, s.stats, err)
		return
	}
	s.respond(w, key, api.DistanceResponse{
		LB:       api.Float(dr.LB),
		UB:       api.Float(dr.UB),
		Accuracy: dr.Accuracy, Iterations: dr.Iterations,
	})
}

// respond marshals, caches and writes a fresh (non-cached) result.
func (s *Server) respond(w http.ResponseWriter, key string, v any) {
	body, err := marshalBody(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, api.CodeInternal, "encoding response: %v", err)
		return
	}
	s.cache.put(key, body)
	writeJSON(w, body, "miss")
}

// writeBody marshals and writes a response that is neither cached nor a
// query result: no X-Cache header.
func writeBody(w http.ResponseWriter, v any) {
	body, err := marshalBody(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, api.CodeInternal, "encoding response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	//lint:ignore dropped-error a client gone mid-reply is not a server failure
	_, _ = w.Write(body)
}

// --- GET /v1/healthz ---

// handleHealthz reports liveness, the loaded snapshot's shape and
// provenance, and the shard identity when this process serves one tile of a
// sharded deployment. The endpoint bypasses admission control and the
// cache: a saturated server is alive, and a health check must say so.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeBody(w, api.Healthz{
		Status:        "ok",
		Vertices:      s.db.Mesh.NumVerts(),
		Faces:         s.db.Mesh.NumFaces(),
		Objects:       len(s.db.Objects()),
		Epoch:         s.db.CurrentEpoch(),
		InFlight:      s.stats.InFlight.Value(),
		CacheEntries:  s.cache.len(),
		FormatVersion: s.db.FormatVersion(),
		ShardID:       s.cfg.ShardID,
	})
}

package server

import (
	"net/http"
	"strconv"
	"time"

	"surfknn/internal/continuous"
	"surfknn/internal/core"
	"surfknn/internal/geom"
	"surfknn/internal/server/api"
)

// The continuous-query routes. A subscription is server-side state (the
// cached top-k, its safe region, its epoch stamp — see internal/continuous),
// so unlike the stateless query routes these are keyed by a subscription id
// in the path. Every move answer carries an X-Safe-Region header: "hit"
// when it was served from the safe region without engine work, "miss" when
// it re-evaluated.

// safeRegionHeader is the response header reporting the move disposition.
const safeRegionHeader = "X-Safe-Region"

func setSafeRegion(w http.ResponseWriter, hit bool) {
	if hit {
		w.Header().Set(safeRegionHeader, "hit")
	} else {
		w.Header().Set(safeRegionHeader, "miss")
	}
}

// monitor returns the continuous monitor, writing the 500 when the server
// was built without one (a database lacking an object store).
func (s *Server) monitor(w http.ResponseWriter) (*continuous.Monitor, bool) {
	if s.mon == nil {
		writeError(w, http.StatusInternalServerError, api.CodeInternal, "continuous queries unavailable: no object store")
		return nil, false
	}
	return s.mon, true
}

func subscribeResponse(id uint64, res core.Result, sr core.SafeRegion) api.SubscribeResponse {
	return api.SubscribeResponse{
		ID:         id,
		Result:     toResponse(res),
		SafeRadius: api.Float(sr.Radius),
		AnchorX:    sr.Center.X,
		AnchorY:    sr.Center.Y,
		Epoch:      res.Epoch,
	}
}

// --- POST /v1/subscribe ---

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	mon, ok := s.monitor(w)
	if !ok {
		return
	}
	var req api.SubscribeRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.K < 1 || req.K > maxK {
		s.badRequest(w, "k must be in [1, %d], got %d", maxK, req.K)
		return
	}
	sched, ok := schedFor(req.Sched)
	if !ok {
		s.badRequest(w, "sched must be 1, 2 or 3, got %d", req.Sched)
		return
	}
	opt, err := coreOptions(req.Options)
	if err != nil {
		s.badRequest(w, "invalid options: %v", err)
		return
	}
	q, ok := s.surfacePoint(w, req.X, req.Y)
	if !ok {
		return
	}

	ctx, cancel := s.requestContext(r, time.Duration(req.Timeout))
	defer cancel()
	if !s.admit(ctx, w) {
		return
	}
	defer s.adm.release()

	id, res, sr, err := mon.Subscribe(ctx, q, req.K, sched, opt)
	if err != nil {
		writeQueryError(w, s.stats, err)
		return
	}
	setEpoch(w, res.Epoch)
	setSafeRegion(w, false)
	writeBody(w, subscribeResponse(id, res, sr))
}

// --- POST /v1/subscribe/{id}/move ---

func (s *Server) handleMove(w http.ResponseWriter, r *http.Request) {
	mon, ok := s.monitor(w)
	if !ok {
		return
	}
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		s.badRequest(w, "invalid subscription id %q", r.PathValue("id"))
		return
	}
	var req api.MoveRequest
	if !s.decode(w, r, &req) {
		return
	}
	p := geom.Vec2{X: req.X, Y: req.Y}

	// The safe-region fast path: no admission slot, no session, no engine.
	// Serving a cached, epoch-current answer is cheaper than the admission
	// bookkeeping it would queue behind.
	if res, sr, hit := mon.TryMove(id, p); hit {
		setEpoch(w, res.Epoch)
		setSafeRegion(w, true)
		writeBody(w, subscribeResponse(id, res, sr))
		return
	}

	// Validate the target before spending an admission slot: a move off the
	// terrain is the addressed location not existing, a 404.
	if _, ok := s.surfacePoint(w, req.X, req.Y); !ok {
		return
	}

	ctx, cancel := s.requestContext(r, time.Duration(req.Timeout))
	defer cancel()
	if !s.admit(ctx, w) {
		return
	}
	defer s.adm.release()

	res, sr, hit, err := mon.Move(ctx, id, p)
	if err == continuous.ErrUnknownSubscription {
		writeError(w, http.StatusNotFound, api.CodeNotFound, "no subscription %d", id)
		return
	}
	if err != nil {
		writeQueryError(w, s.stats, err)
		return
	}
	setEpoch(w, res.Epoch)
	setSafeRegion(w, hit)
	writeBody(w, subscribeResponse(id, res, sr))
}

// --- DELETE /v1/subscribe/{id} ---

func (s *Server) handleUnsubscribe(w http.ResponseWriter, r *http.Request) {
	mon, ok := s.monitor(w)
	if !ok {
		return
	}
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		s.badRequest(w, "invalid subscription id %q", r.PathValue("id"))
		return
	}
	if !mon.Unsubscribe(id) {
		writeError(w, http.StatusNotFound, api.CodeNotFound, "no subscription %d", id)
		return
	}
	writeBody(w, api.UnsubscribeResponse{Removed: true})
}

package server

import (
	"encoding/json"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"surfknn/internal/server/api"
)

// statusRecorder captures the status code and body size the handler wrote,
// for the access log and the panic guard (a recovered panic can only send
// 500 if nothing was written yet).
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(status int) {
	if r.status == 0 {
		r.status = status
	}
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += n
	return n, err
}

// accessEntry is one access-log line. Slow-query detail (per-phase traces)
// is not duplicated here: the engine's slow-query log — the PR 3 plumbing
// the server reuses via Registry.SetSlowLog — already emits the trace-
// carrying JSON line for any query over the threshold; this log records
// the HTTP-level view (status, cache disposition, whole-request latency).
type accessEntry struct {
	Time    string `json:"t"`
	Method  string `json:"method"`
	Path    string `json:"path"`
	Status  int    `json:"status"`
	Bytes   int    `json:"bytes"`
	DurUs   int64  `json:"dur_us"`
	Cache   string `json:"cache,omitempty"`
	Remote  string `json:"remote,omitempty"`
	Recover string `json:"panic,omitempty"`
}

// instrument is the outermost middleware: request counting, whole-request
// latency, panic recovery, and access logging. Every handler in the mux
// runs inside it.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		s.stats.Requests.Add(1)
		// Every response carries the object-store epoch it was served
		// against. This blanket stamp uses the epoch current at request
		// entry; handlers that know the exact epoch of their answer (a
		// cached result, a query's pinned view) overwrite it before
		// writing.
		rec.Header().Set("X-Epoch", strconv.FormatUint(s.db.CurrentEpoch(), 10))
		var recovered string
		func() {
			defer func() {
				if p := recover(); p != nil {
					recovered = appendPanic(p)
					s.stats.Panics.Add(1)
					// A handler panic is a failed query as far as the
					// engine-level dashboard is concerned, even though the
					// session never got to record it.
					if reg := s.db.Registry(); reg != nil {
						reg.QueriesFailed.Add(1)
					}
					if rec.status == 0 {
						writeError(rec, http.StatusInternalServerError, api.CodeInternal,
							"internal error (recovered panic)")
					}
				}
			}()
			next.ServeHTTP(rec, r)
		}()
		if rec.status == 0 {
			// Handler wrote nothing at all (e.g. 200 with empty body).
			rec.status = http.StatusOK
		}
		s.stats.RequestLatency().Observe(time.Since(start))
		s.logAccess(r, rec, start, recovered)
	})
}

// appendPanic renders the recovered value with its stack for the access
// log; the HTTP response deliberately carries no detail.
func appendPanic(p any) string {
	return formatPanic(p) + "\n" + string(debug.Stack())
}

func formatPanic(p any) string {
	if err, ok := p.(error); ok {
		return err.Error()
	}
	if str, ok := p.(string); ok {
		return str
	}
	return "non-string panic"
}

// logAccess writes one JSON line per request when an access log is
// configured. Lines are serialised by a mutex so concurrent requests never
// interleave.
func (s *Server) logAccess(r *http.Request, rec *statusRecorder, start time.Time, recovered string) {
	if s.cfg.AccessLog == nil {
		return
	}
	entry := accessEntry{
		Time:    start.UTC().Format(time.RFC3339Nano),
		Method:  r.Method,
		Path:    r.URL.Path,
		Status:  rec.status,
		Bytes:   rec.bytes,
		DurUs:   time.Since(start).Microseconds(),
		Cache:   rec.Header().Get("X-Cache"),
		Remote:  r.RemoteAddr,
		Recover: recovered,
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	// A dead log sink must not fail the request path.
	//lint:ignore dropped-error logging is best-effort by design
	_ = json.NewEncoder(s.cfg.AccessLog).Encode(entry)
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"surfknn/internal/core"
	"surfknn/internal/dem"
	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/server/api"
	"surfknn/internal/workload"
)

// testDB builds the shared test terrain once: EP preset, 17×17 grid, 30
// objects — the same shape the e2e test generates through skgen -db.
var (
	dbOnce sync.Once
	testdb *core.TerrainDB
)

func getDB(t testing.TB) *core.TerrainDB {
	t.Helper()
	dbOnce.Do(func() {
		g := dem.Synthesize(dem.EP, 16, 100, 2006)
		m := mesh.FromGrid(g)
		db, err := core.BuildTerrainDB(m, core.Config{})
		if err != nil {
			panic(err)
		}
		objs, err := workload.RandomObjects(m, db.Loc, 30, 2007)
		if err != nil {
			panic(err)
		}
		db.SetObjects(objs)
		testdb = db
	})
	return testdb
}

func newTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	return New(getDB(t), cfg)
}

// post drives one JSON request through the full handler chain.
func post(t testing.TB, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

// decodeError pulls the typed error envelope out of a non-200 response.
func decodeError(t *testing.T, w *httptest.ResponseRecorder) string {
	t.Helper()
	var env api.ErrorEnvelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatalf("error body is not an envelope: %v\n%s", err, w.Body.String())
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("envelope missing code or message: %s", w.Body.String())
	}
	return env.Error.Code
}

func TestValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name, path, body string
		status           int
		code             string
	}{
		{"malformed json", "/v1/knn", `{"x":`, http.StatusBadRequest, "bad_request"},
		{"missing k", "/v1/knn", `{"x":800,"y":800}`, http.StatusBadRequest, "bad_request"},
		{"k too large", "/v1/knn", `{"x":800,"y":800,"k":2000000}`, http.StatusBadRequest, "bad_request"},
		{"bad sched", "/v1/knn", `{"x":800,"y":800,"k":3,"sched":7}`, http.StatusBadRequest, "bad_request"},
		{"unknown field", "/v1/knn", `{"x":800,"y":800,"k":3,"radius":5}`, http.StatusBadRequest, "bad_request"},
		{"trailing data", "/v1/knn", `{"x":800,"y":800,"k":3}{"again":1}`, http.StatusBadRequest, "bad_request"},
		{"bad option fraction", "/v1/knn", `{"x":800,"y":800,"k":3,"options":{"step2_accuracy":1.5}}`, http.StatusBadRequest, "bad_request"},
		{"numeric timeout", "/v1/knn", `{"x":800,"y":800,"k":3,"timeout":5}`, http.StatusBadRequest, "bad_request"},
		{"off-terrain point", "/v1/knn", `{"x":-1e6,"y":0,"k":3}`, http.StatusNotFound, "not_found"},
		{"bad radius", "/v1/range", `{"x":800,"y":800,"radius":-5}`, http.StatusBadRequest, "bad_request"},
		{"bad accuracy", "/v1/distance", `{"x":800,"y":800,"x2":200,"y2":300,"accuracy":2}`, http.StatusBadRequest, "bad_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := post(t, s, tc.path, tc.body)
			if w.Code != tc.status {
				t.Fatalf("status = %d, want %d\n%s", w.Code, tc.status, w.Body.String())
			}
			if code := decodeError(t, w); code != tc.code {
				t.Errorf("error code = %q, want %q", code, tc.code)
			}
		})
	}
	if got := s.Stats().BadRequests.Value(); got < int64(len(cases)) {
		t.Errorf("BadRequests = %d, want >= %d", got, len(cases))
	}
}

func TestUnknownRoute(t *testing.T) {
	s := newTestServer(t, Config{})
	w := post(t, s, "/v1/nope", `{}`)
	if w.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", w.Code)
	}
	if code := decodeError(t, w); code != "not_found" {
		t.Errorf("error code = %q, want not_found", code)
	}
}

// TestKNNMatchesDirect is the serving-layer fidelity check: the HTTP answer
// must be bit-identical to calling the engine directly.
func TestKNNMatchesDirect(t *testing.T) {
	db := getDB(t)
	s := newTestServer(t, Config{})
	w := post(t, s, "/v1/knn", `{"x":800,"y":800,"k":5}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d\n%s", w.Code, w.Body.String())
	}
	var resp api.Result
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}

	q, err := db.SurfacePointAt(geom.Vec2{X: 800, Y: 800})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := db.MR3(q, 5, core.S1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Neighbors) != len(direct.Neighbors) {
		t.Fatalf("got %d neighbors, want %d", len(resp.Neighbors), len(direct.Neighbors))
	}
	for i, n := range direct.Neighbors {
		h := resp.Neighbors[i]
		if h.ID != n.Object.ID {
			t.Errorf("neighbor %d: id = %d, want %d", i, h.ID, n.Object.ID)
		}
		if math.Float64bits(float64(h.LB)) != math.Float64bits(n.LB) ||
			math.Float64bits(float64(h.UB)) != math.Float64bits(n.UB) {
			t.Errorf("neighbor %d: bounds [%v, %v] not bit-identical to [%v, %v]",
				i, float64(h.LB), float64(h.UB), n.LB, n.UB)
		}
	}
}

func TestCacheHit(t *testing.T) {
	s := newTestServer(t, Config{})
	const body = `{"x":700,"y":900,"k":4}`
	first := post(t, s, "/v1/knn", body)
	if first.Code != http.StatusOK || first.Header().Get("X-Cache") != "miss" {
		t.Fatalf("first: status %d, X-Cache %q", first.Code, first.Header().Get("X-Cache"))
	}
	second := post(t, s, "/v1/knn", body)
	if second.Code != http.StatusOK || second.Header().Get("X-Cache") != "hit" {
		t.Fatalf("second: status %d, X-Cache %q", second.Code, second.Header().Get("X-Cache"))
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Error("cache hit returned a different body")
	}
	if s.Stats().CacheHits.Value() < 1 || s.Stats().CacheMisses.Value() < 1 {
		t.Errorf("cache counters: hits=%d misses=%d",
			s.Stats().CacheHits.Value(), s.Stats().CacheMisses.Value())
	}
}

func TestCacheDisabled(t *testing.T) {
	s := newTestServer(t, Config{CacheEntries: -1})
	const body = `{"x":700,"y":900,"k":4}`
	for i := 0; i < 2; i++ {
		w := post(t, s, "/v1/knn", body)
		if w.Code != http.StatusOK || w.Header().Get("X-Cache") != "miss" {
			t.Fatalf("request %d: status %d, X-Cache %q", i, w.Code, w.Header().Get("X-Cache"))
		}
	}
}

func TestTimeout(t *testing.T) {
	s := newTestServer(t, Config{CacheEntries: -1})
	w := post(t, s, "/v1/knn", `{"x":760,"y":840,"k":5,"timeout":"1ns"}`)
	if w.Code != http.StatusRequestTimeout {
		t.Fatalf("status = %d, want 408\n%s", w.Code, w.Body.String())
	}
	if code := decodeError(t, w); code != "timeout" {
		t.Errorf("error code = %q, want timeout", code)
	}
	if s.Stats().TimedOut.Value() < 1 {
		t.Errorf("TimedOut = %d, want >= 1", s.Stats().TimedOut.Value())
	}
}

// TestSaturation pins the admission contract: with the one execution slot
// held and no queue, the server sheds load with 429 + Retry-After instead
// of hanging.
func TestSaturation(t *testing.T) {
	s := newTestServer(t, Config{
		MaxInFlight: 1,
		QueueDepth:  -1, // no wait queue
		QueueWait:   10 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.adm.acquire(ctx); err != nil { // hold the only slot
		t.Fatal(err)
	}
	defer s.adm.release()

	w := post(t, s, "/v1/knn", `{"x":800,"y":800,"k":3}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429\n%s", w.Code, w.Body.String())
	}
	if code := decodeError(t, w); code != "saturated" {
		t.Errorf("error code = %q, want saturated", code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	if s.Stats().Rejected.Value() < 1 {
		t.Errorf("Rejected = %d, want >= 1", s.Stats().Rejected.Value())
	}
}

// TestQueueAdmits proves the wait queue actually absorbs a burst: a request
// arriving while the slot is briefly held waits and then succeeds.
func TestQueueAdmits(t *testing.T) {
	s := newTestServer(t, Config{
		MaxInFlight: 1,
		QueueDepth:  4,
		QueueWait:   2 * time.Second,
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.adm.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		s.adm.release()
	}()
	w := post(t, s, "/v1/knn", `{"x":800,"y":800,"k":3}`)
	if w.Code != http.StatusOK {
		t.Fatalf("queued request: status = %d\n%s", w.Code, w.Body.String())
	}
}

func TestPanicRecovery(t *testing.T) {
	s := newTestServer(t, Config{AccessLog: io.Discard})
	h := s.instrument(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", w.Code)
	}
	if code := decodeError(t, w); code != "internal" {
		t.Errorf("error code = %q, want internal", code)
	}
	if s.Stats().Panics.Value() != 1 {
		t.Errorf("Panics = %d, want 1", s.Stats().Panics.Value())
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{})
	req := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d\n%s", w.Code, w.Body.String())
	}
	var hz api.Healthz
	if err := json.Unmarshal(w.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Vertices == 0 || hz.Faces == 0 || hz.Objects == 0 {
		t.Errorf("healthz = %+v", hz)
	}
	if hz.FormatVersion == 0 {
		t.Errorf("healthz missing format_version: %+v", hz)
	}
	if hz.ShardID != "" {
		t.Errorf("standalone server reported shard_id %q", hz.ShardID)
	}
}

func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	s := newTestServer(t, Config{AccessLog: &syncWriter{w: &buf}})
	post(t, s, "/v1/knn", `{"x":800,"y":800,"k":3}`)
	var entry accessEntry
	if err := json.Unmarshal(buf.Bytes(), &entry); err != nil {
		t.Fatalf("access log line is not JSON: %v\n%s", err, buf.String())
	}
	if entry.Method != "POST" || entry.Path != "/v1/knn" || entry.Status != http.StatusOK {
		t.Errorf("access entry = %+v", entry)
	}
}

// syncWriter guards a bytes.Buffer so the logger's writes and the test's
// read do not race.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(b []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(b)
}

// TestConcurrentRequests hammers the full chain from many goroutines (run
// under -race by scripts/check.sh): every request must succeed or shed
// cleanly, and every 200 body for the same query must be byte-identical.
func TestConcurrentRequests(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 4, QueueDepth: 64, QueueWait: 5 * time.Second})
	queries := []string{
		`{"x":800,"y":800,"k":3}`,
		`{"x":700,"y":900,"k":5}`,
		`{"x":760,"y":840,"k":2,"sched":2}`,
	}
	want := make([][]byte, len(queries))
	for i, q := range queries {
		w := post(t, s, "/v1/knn", q)
		if w.Code != http.StatusOK {
			t.Fatalf("warmup %d: status %d\n%s", i, w.Code, w.Body.String())
		}
		want[i] = w.Body.Bytes()
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*len(queries)*3)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				for i, q := range queries {
					req := httptest.NewRequest(http.MethodPost, "/v1/knn", strings.NewReader(q))
					w := httptest.NewRecorder()
					s.Handler().ServeHTTP(w, req)
					if w.Code != http.StatusOK {
						errs <- fmt.Errorf("query %d: status %d: %s", i, w.Code, w.Body.String())
						continue
					}
					if !bytes.Equal(w.Body.Bytes(), want[i]) {
						errs <- fmt.Errorf("query %d: body diverged under concurrency", i)
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestShutdownDrain pins the graceful lifecycle: Shutdown refuses new
// connections but lets the in-flight request finish.
func TestShutdownDrain(t *testing.T) {
	s := newTestServer(t, Config{CacheEntries: -1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()

	url := "http://" + ln.Addr().String() + "/v1/knn"
	resp := make(chan error, 1)
	go func() {
		r, err := http.Post(url, "application/json",
			strings.NewReader(`{"x":800,"y":800,"k":5}`))
		if err == nil {
			defer r.Body.Close()
			if _, err = io.ReadAll(r.Body); err == nil && r.StatusCode != http.StatusOK {
				err = fmt.Errorf("status %d", r.StatusCode)
			}
		}
		resp <- err
	}()

	time.Sleep(20 * time.Millisecond) // let the request reach the handler
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(shutCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-resp; err != nil {
		t.Errorf("in-flight request during shutdown: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v, want http.ErrServerClosed", err)
	}
}

func TestShutdownBeforeServe(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown before Serve = %v, want nil", err)
	}
}

func TestJSONFloatRoundTrip(t *testing.T) {
	values := []float64{0, 1, math.Pi, 256.56119512693465, -1e-300, math.Inf(1), math.Inf(-1)}
	for _, v := range values {
		b, err := json.Marshal(api.Float(v))
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var back api.Float
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if math.Float64bits(float64(back)) != math.Float64bits(v) {
			t.Errorf("round trip %v -> %s -> %v", v, b, float64(back))
		}
	}
	if _, err := json.Marshal(api.Float(math.NaN())); err == nil {
		t.Error("NaN must not marshal")
	}
	var f api.Float
	if err := json.Unmarshal([]byte(`"bogus"`), &f); err == nil {
		t.Error("bogus string must not unmarshal")
	}
}

func TestDistanceEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	w := post(t, s, "/v1/distance", `{"x":800,"y":800,"x2":200,"y2":300}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d\n%s", w.Code, w.Body.String())
	}
	var resp api.DistanceResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !(float64(resp.LB) <= float64(resp.UB)) || resp.Accuracy <= 0 {
		t.Errorf("distance response = %+v", resp)
	}
}

func TestRangeEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	w := post(t, s, "/v1/range", `{"x":800,"y":800,"radius":400}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d\n%s", w.Code, w.Body.String())
	}
	var resp api.Result
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Neighbors) == 0 {
		t.Error("range query found no objects within 400 m")
	}
	for i, n := range resp.Neighbors {
		if float64(n.UB) > 400 {
			t.Errorf("neighbor %d: ub %v exceeds the radius", i, float64(n.UB))
		}
	}
}

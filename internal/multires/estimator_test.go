package multires

import (
	"math"
	"math/rand"
	"testing"

	"surfknn/internal/dem"
	"surfknn/internal/geom"
	"surfknn/internal/mesh"
)

// TestEstimatorMatchesNetwork pins the Estimator's core guarantee: over
// random edge subsets, resolutions and point pairs, its upper bounds and
// node paths are bit-identical to the allocating
// NetworkFromEdgeIDs → Embed → UpperBound pipeline it replaces.
func TestEstimatorMatchesNetwork(t *testing.T) {
	m, tr := buildTree(t, 16, dem.BH, 77)
	loc := mesh.NewLocator(m)
	ext := m.Extent()
	rng := rand.New(rand.NewSource(78))
	est := NewEstimator(tr)

	allIDs := make([]int32, len(tr.Edges))
	for i := range allIDs {
		allIDs[i] = int32(i)
	}

	for trial := 0; trial < 60; trial++ {
		res := []float64{0.1, 0.25, 0.5, 1.0}[trial%4]
		tm := tr.TimeForResolution(res)

		// Random edge subset (sometimes everything), preserving id order as
		// the clustered store's fetch does.
		ids := allIDs
		if trial%3 == 1 {
			ids = ids[:0:0]
			for _, id := range allIDs {
				if rng.Float64() < 0.7 {
					ids = append(ids, id)
				}
			}
		}
		// Sometimes a region filter, as MR3's refined regions apply.
		var filter func(EdgeRec) bool
		var region geom.MBR
		if trial%4 == 2 {
			cx := ext.MinX + rng.Float64()*ext.Width()
			cy := ext.MinY + rng.Float64()*ext.Height()
			region = geom.MBR{MinX: cx - ext.Width()/3, MinY: cy - ext.Height()/3,
				MaxX: cx + ext.Width()/3, MaxY: cy + ext.Height()/3}
			filter = func(e EdgeRec) bool {
				minX, minY, maxX, maxY := tr.EdgeMBR(e)
				return geom.MBR{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY}.Intersects(region)
			}
		}

		pa := geom.Vec2{X: ext.MinX + rng.Float64()*ext.Width(), Y: ext.MinY + rng.Float64()*ext.Height()}
		pb := geom.Vec2{X: ext.MinX + rng.Float64()*ext.Width(), Y: ext.MinY + rng.Float64()*ext.Height()}
		a, errA := mesh.MakeSurfacePoint(m, loc, pa)
		b, errB := mesh.MakeSurfacePoint(m, loc, pb)
		if errA != nil || errB != nil {
			t.Fatal(errA, errB)
		}

		nw := tr.NetworkFromEdgeIDs(tm, ids, filter)
		want := nw.UpperBound(m, a, b)

		est.Begin(tm)
		for _, id := range ids {
			if filter != nil && !filter(tr.Edges[id]) {
				continue
			}
			est.AddEdge(id)
		}
		got := est.UpperBound(m, a, b)

		if math.Float64bits(got.UB) != math.Float64bits(want.UB) {
			t.Fatalf("trial %d (res %v): UB %v != %v", trial, res, got.UB, want.UB)
		}
		if len(got.Path) != len(want.Path) {
			t.Fatalf("trial %d: path length %d != %d", trial, len(got.Path), len(want.Path))
		}
		for i := range got.Path {
			if got.Path[i] != want.Path[i] {
				t.Fatalf("trial %d: path[%d] = %d != %d", trial, i, got.Path[i], want.Path[i])
			}
		}
	}
}

// TestEstimatorReusableAfterBegin: a second Begin fully resets the build —
// results do not depend on what the estimator computed before.
func TestEstimatorReusableAfterBegin(t *testing.T) {
	m, tr := buildTree(t, 8, dem.EP, 9)
	loc := mesh.NewLocator(m)
	ext := m.Extent()
	a, err := mesh.MakeSurfacePoint(m, loc, geom.Vec2{X: ext.MinX + ext.Width()*0.2, Y: ext.MinY + ext.Height()*0.3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := mesh.MakeSurfacePoint(m, loc, geom.Vec2{X: ext.MinX + ext.Width()*0.8, Y: ext.MinY + ext.Height()*0.7})
	if err != nil {
		t.Fatal(err)
	}

	run := func(e *Estimator, tm int32) UpperEstimate {
		e.Begin(tm)
		for i := range tr.Edges {
			e.AddEdge(int32(i))
		}
		return e.UpperBound(m, a, b)
	}

	fresh := NewEstimator(tr)
	warm := NewEstimator(tr)
	// Dirty the warm estimator with builds at other resolutions first.
	run(warm, tr.TimeForResolution(0.1))
	run(warm, tr.TimeForResolution(1.0))
	for _, res := range []float64{0.2, 0.6, 1.0} {
		tm := tr.TimeForResolution(res)
		w := run(fresh, tm)
		g := run(warm, tm)
		if math.Float64bits(g.UB) != math.Float64bits(w.UB) {
			t.Fatalf("res %v: warm UB %v != fresh %v", res, g.UB, w.UB)
		}
	}
}

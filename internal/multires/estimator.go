package multires

import (
	"surfknn/internal/graph"
	"surfknn/internal/mesh"
)

// Estimator is the reusable, allocation-free counterpart of the
// NetworkFromEdgeIDs → Embed → UpperBound pipeline. MR3 builds one
// per-candidate network per upper-bound estimation; materialising each as a
// fresh Network (map-backed vertex numbering, adjacency-list graph) made
// that the dominant allocation source of the query path. The Estimator
// keeps every intermediate in scratch owned by the session:
//
//   - vertex numbering via an epoch-stamped array instead of the IdxOf map
//     (same first-seen order, so the numbering is identical);
//   - accepted arcs staged into flat parallel slices, then packed into a
//     reusable CSR graph by counting sort — which preserves the per-vertex
//     arc order the adjacency-list appends produced, so Dijkstra visits
//     arcs in exactly the historical order;
//   - the Dijkstra itself on an owned graph.Workspace.
//
// Distances, paths and visit orders are therefore bit-identical to the
// allocating pipeline (TestEstimatorMatchesNetwork pins this).
//
// An Estimator is owned by a single goroutine; it is not safe for
// concurrent use. Returned paths alias the estimator and are valid until
// its next UpperBound call.
type Estimator struct {
	t  *Tree
	ws *graph.Workspace
	tm int32

	// Epoch-stamped vertex numbering: node v is numbered this query iff
	// idxStamp[v] == idxCur, and its graph vertex is then idxVal[v].
	idxVal   []int32
	idxStamp []uint32
	idxCur   uint32
	nodeOf   []NodeID // graph vertex -> tree node (network vertices only)

	// Staged arcs (parallel slices): network arcs first, then embed arcs.
	su, sw []int32
	sd     []float64

	// CSR build scratch and the packed graph.
	deg, off, fill []int32
	arcs           []graph.Arc
	g              graph.Graph

	path []NodeID
}

// NewEstimator returns an estimator over the tree. The numbering arrays are
// sized up front (the tree is immutable); everything else grows on first
// use and is retained.
func NewEstimator(t *Tree) *Estimator {
	return &Estimator{
		t:        t,
		ws:       graph.NewWorkspace(0),
		idxVal:   make([]int32, len(t.Nodes)),
		idxStamp: make([]uint32, len(t.Nodes)),
	}
}

// Begin opens a new network build at resolution time tm, discarding the
// previous one. Call it once per candidate, then AddEdge for each fetched
// edge id, then UpperBound.
func (e *Estimator) Begin(tm int32) {
	e.tm = tm
	e.idxCur++
	if e.idxCur == 0 { // epoch counter wrapped: old stamps are ambiguous
		for i := range e.idxStamp {
			e.idxStamp[i] = 0
		}
		e.idxCur = 1
	}
	e.nodeOf = e.nodeOf[:0]
	e.su, e.sw, e.sd = e.su[:0], e.sw[:0], e.sd[:0]
}

// AddEdge stages the DDM edge with the given index, skipping it when not
// alive at the build's tm (so passing a superset is safe, as with
// NetworkFromEdgeIDs). Callers apply any further per-edge filter before
// calling.
func (e *Estimator) AddEdge(id int32) {
	ed := &e.t.Edges[id]
	if ed.Birth > e.tm || e.tm >= ed.Death {
		return
	}
	// U before W: the historical idx() evaluation order, which fixes the
	// first-seen vertex numbering.
	u := e.vertexOf(ed.U)
	w := e.vertexOf(ed.W)
	e.su = append(e.su, u)
	e.sw = append(e.sw, w)
	e.sd = append(e.sd, ed.D)
}

// vertexOf numbers tree node v on first sight this query.
func (e *Estimator) vertexOf(v NodeID) int32 {
	if e.idxStamp[v] == e.idxCur {
		return e.idxVal[v]
	}
	i := int32(len(e.nodeOf))
	e.idxVal[v] = i
	e.idxStamp[v] = e.idxCur
	e.nodeOf = append(e.nodeOf, v)
	return i
}

// embed stages the virtual-endpoint arcs of sp as graph vertex v, exactly
// mirroring Network.Embed: one arc per distinct active corner ancestor
// present in the network, weighted by the on-facet leg plus the ancestor's
// Gather bound.
func (e *Estimator) embed(m *mesh.Mesh, sp mesh.SurfacePoint, v int32) bool {
	connected := false
	var seen [3]int32
	nseen := 0
	for _, corner := range sp.Corners(m) {
		anc := e.t.AncestorAt(NodeID(corner), e.tm)
		if anc == NoNode || e.idxStamp[anc] != e.idxCur {
			continue
		}
		gi := e.idxVal[anc]
		dup := false
		for i := 0; i < nseen; i++ {
			if seen[i] == gi {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen[nseen] = gi
		nseen++
		w := sp.Pos.Dist(m.Verts[corner]) + e.t.Nodes[anc].Gather
		e.su = append(e.su, v)
		e.sw = append(e.sw, gi)
		e.sd = append(e.sd, w)
		connected = true
	}
	return connected
}

// UpperBound runs the estimation on the staged network. It may be called
// several times after one Begin (each call embeds into the same network).
// The returned Path aliases the estimator.
func (e *Estimator) UpperBound(m *mesh.Mesh, a, b mesh.SurfacePoint) UpperEstimate {
	// Same-face shortcut: the straight on-facet segment is a valid path.
	if a.Face == b.Face {
		return UpperEstimate{UB: a.Pos.Dist(b.Pos)}
	}
	n := int32(len(e.nodeOf))
	base := len(e.su)
	okA := e.embed(m, a, n)
	okB := e.embed(m, b, n+1)
	if !okA || !okB {
		e.su, e.sw, e.sd = e.su[:base], e.sw[:base], e.sd[:base]
		return UpperEstimate{UB: graph.Inf}
	}

	// Pack the staged arcs into CSR by counting sort. Walking the staged
	// list in order and emitting both directions reproduces the per-vertex
	// order of the historical adjacency-list appends (network arcs in edge
	// order, then embed arcs), so traversal order is unchanged.
	nv := int(n) + 2
	e.deg = growInt32(e.deg, nv)
	for i := range e.deg[:nv] {
		e.deg[i] = 0
	}
	for i := range e.su {
		e.deg[e.su[i]]++
		e.deg[e.sw[i]]++
	}
	e.off = growInt32(e.off, nv+1)
	e.off[0] = 0
	for v := 0; v < nv; v++ {
		e.off[v+1] = e.off[v] + e.deg[v]
	}
	e.fill = growInt32(e.fill, nv)
	copy(e.fill, e.off[:nv])
	e.arcs = growArcs(e.arcs, 2*len(e.su))
	for i := range e.su {
		u, w, d := e.su[i], e.sw[i], e.sd[i]
		e.arcs[e.fill[u]] = graph.Arc{To: w, W: d}
		e.fill[u]++
		e.arcs[e.fill[w]] = graph.Arc{To: u, W: d}
		e.fill[w]++
	}
	e.g.SetCSR(e.off[:nv+1], e.arcs, len(e.su))
	e.su, e.sw, e.sd = e.su[:base], e.sw[:base], e.sd[:base]

	e.ws.Ensure(nv)
	d, vpath := e.ws.DijkstraTarget(&e.g, int(n), int(n)+1)
	e.path = e.path[:0]
	for _, v := range vpath {
		if int32(v) < n {
			e.path = append(e.path, e.nodeOf[v])
		}
	}
	return UpperEstimate{UB: d, Path: e.path}
}

// growInt32 resizes s to n entries, allocating only when capacity is short.
// Contents beyond the old length are stale; callers overwrite them.
func growInt32(s []int32, n int) []int32 {
	if n <= cap(s) {
		return s[:n]
	}
	ns := make([]int32, n, n+n/2)
	copy(ns, s)
	return ns
}

// growArcs is growInt32 for []graph.Arc.
func growArcs(s []graph.Arc, n int) []graph.Arc {
	if n <= cap(s) {
		return s[:n]
	}
	ns := make([]graph.Arc, n, n+n/2)
	copy(ns, s)
	return ns
}

package multires

import (
	"fmt"
	"math"
	"sort"

	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/simplify"
)

// Build replays a QEM collapse history into the DDM tree, recording edge
// lifetimes and the distance annotation of §3.2:
//
//	d(c,w) = d(a,w)            if w ∈ N(a)
//	d(c,w) = d(b,w) + d(a,b)   if w ∈ N(b) − N(a)
//
// where the collapse merges a and b into c and a carries the representative.
func Build(m *mesh.Mesh, hist *simplify.History) (*Tree, error) {
	n := hist.NumLeaves
	if n != m.NumVerts() {
		return nil, fmt.Errorf("multires: history has %d leaves for a %d-vertex mesh", n, m.NumVerts())
	}
	total := hist.NumNodes()
	t := &Tree{
		Nodes:     make([]Node, total),
		NumLeaves: n,
		maxTime:   int32(n - 1),
	}
	deathless := int32(n) // root's death: one past the last time
	for v := 0; v < n; v++ {
		p := m.Verts[v]
		t.Nodes[v] = Node{
			Parent: NoNode, Left: NoNode, Right: NoNode,
			Rep:    mesh.VertexID(v),
			RepPos: p,
			Pos:    p,
			Birth:  0, Death: deathless,
			MBR: geom.MBROf(p.XY()),
		}
	}

	// Live adjacency: for each active node, the edge-record index per
	// neighbour, so records can be closed when an endpoint dies.
	adj := make([]map[NodeID]int32, total)
	for v := 0; v < n; v++ {
		adj[v] = make(map[NodeID]int32, 8)
	}
	addEdge := func(u, w NodeID, d float64, birth int32) {
		idx := int32(len(t.Edges))
		t.Edges = append(t.Edges, EdgeRec{U: u, W: w, D: d, Birth: birth, Death: deathless})
		adj[u][w] = idx
		adj[w][u] = idx
	}
	for _, e := range m.Edges() {
		addEdge(NodeID(e.A), NodeID(e.B), m.EdgeLength(e), 0)
	}

	for i, c := range hist.Collapses {
		now := int32(i + 1) // a and b die, parent is born, at time i+1
		a, b, parent := NodeID(c.A), NodeID(c.B), NodeID(c.Parent)
		if int(parent) != n+i {
			return nil, fmt.Errorf("multires: collapse %d has parent %d, want %d", i, parent, n+i)
		}
		na, nb := &t.Nodes[a], &t.Nodes[b]
		dAB := c.Dist
		t.Nodes[parent] = Node{
			Parent: NoNode, Left: a, Right: b,
			Error:  c.Error,
			Rep:    na.Rep,
			RepPos: na.RepPos,
			Pos:    c.Pos,
			Gather: math.Max(na.Gather, nb.Gather+dAB),
			Birth:  now, Death: deathless,
			MBR: na.MBR.Union(nb.MBR),
		}
		na.Parent, nb.Parent = parent, parent
		na.Death, nb.Death = now, now

		// Close all edge records incident to a or b and derive the
		// parent's neighbour distances.
		merged := make(map[NodeID]float64, len(adj[a])+len(adj[b]))
		for w, idx := range adj[a] {
			t.Edges[idx].Death = now
			delete(adj[w], a)
			if w != b {
				merged[w] = t.Edges[idx].D
			}
		}
		for w, idx := range adj[b] {
			t.Edges[idx].Death = now
			delete(adj[w], b)
			if w == a {
				continue
			}
			if _, ok := merged[w]; !ok {
				merged[w] = t.Edges[idx].D + dAB
			}
		}
		adj[a], adj[b] = nil, nil
		adj[parent] = make(map[NodeID]int32, len(merged))
		// Sorted iteration keeps edge-record order — and with it the
		// on-disk clustering — deterministic run to run.
		keys := make([]NodeID, 0, len(merged))
		for w := range merged {
			keys = append(keys, w)
		}
		sort.Slice(keys, func(x, y int) bool { return keys[x] < keys[y] })
		for _, w := range keys {
			addEdge(parent, w, merged[w], now)
		}
	}
	return t, nil
}

// BuildFromMesh simplifies the mesh and builds the tree in one call.
func BuildFromMesh(m *mesh.Mesh) (*Tree, error) {
	hist, err := simplify.Simplify(m)
	if err != nil {
		return nil, err
	}
	return Build(m, hist)
}

// Package multires implements the paper's Distance Multiresolution Terrain
// Mesh (DMTM): a Direct-Mesh (DM) binary collapse tree augmented with
// distance information (DDM). Every tree node has a *representative vertex*
// in the original mesh and every recorded edge distance is the length of a
// real path between representatives on the original surface — the property
// that makes upper-bound estimates valid at every resolution and
// monotonically non-increasing as the level of detail grows (§3.2).
//
// The >100% resolution levels of DMTM (the pathnet) live in
// internal/pathnet; this package covers the ≤100% levels.
package multires

import (
	"fmt"
	"math"

	"surfknn/internal/geom"
	"surfknn/internal/mesh"
)

// NodeID identifies a node of the DM tree. The n original-mesh vertices
// are nodes 0..n-1 (leaves); the i-th collapse creates node n+i; the root
// is node 2n-2.
type NodeID int32

// NoNode marks the absence of a node.
const NoNode NodeID = -1

// Node is one DM/DDM tree node.
type Node struct {
	Parent      NodeID
	Left, Right NodeID  // children (NoNode for leaves); Left carries the representative
	Error       float64 // approximation error at which this node was created (0 for leaves)
	Rep         mesh.VertexID
	RepPos      geom.Vec3 // position of Rep in the original mesh (network geometry)
	Pos         geom.Vec3 // display position (QEM-optimal for internal nodes)
	// Gather bounds the original-mesh network distance from any descendant
	// leaf to Rep: g(leaf) = 0, g(c) = max(g(left), g(right)+d(left,right)).
	// It is what keeps point-embedding upper bounds valid at coarse LODs.
	Gather float64
	// Birth/Death delimit the node's active lifetime in collapse time:
	// node v is part of the resolution-t cut iff Birth <= t < Death.
	Birth, Death int32
	// MBR bounds the (x,y) extent of all descendant leaves — the building
	// block of MR3's refined search regions.
	MBR geom.MBR
}

// EdgeRec is a DDM connectivity record: nodes U and W are connected with
// recorded representative-path distance D while both are active, i.e. for
// times t with Birth <= t < Death.
type EdgeRec struct {
	U, W         NodeID
	D            float64
	Birth, Death int32
}

// Tree is the in-memory DDM.
type Tree struct {
	Nodes     []Node
	Edges     []EdgeRec
	NumLeaves int
	// edgesByTime indexes Edges sorted by Birth for extraction; see
	// ActiveEdges.
	maxTime int32
}

// Root returns the root node id.
func (t *Tree) Root() NodeID { return NodeID(len(t.Nodes) - 1) }

// IsLeaf reports whether v is an original-mesh vertex.
func (t *Tree) IsLeaf(v NodeID) bool { return int(v) < t.NumLeaves }

// validID reports whether v indexes a node of this tree.
func (t *Tree) validID(v NodeID) bool { return v >= 0 && int(v) < len(t.Nodes) }

// MaxTime returns the largest valid collapse time (NumLeaves-1: everything
// collapsed into the root).
func (t *Tree) MaxTime() int32 { return t.maxTime }

// SetMaxTime records the largest collapse time. It exists for loaders that
// reconstruct a Tree from persisted Nodes/Edges; Build sets it internally.
func (t *Tree) SetMaxTime(tm int32) { t.maxTime = tm }

// TimeForResolution converts the paper's "% of original points" resolution
// (e.g. 0.005 for 0.5%, 1.0 for 100%) into a collapse time. Resolution 1.0
// is the original mesh (time 0); lower resolutions collapse more.
func (t *Tree) TimeForResolution(r float64) int32 {
	if r >= 1 {
		return 0
	}
	target := int(math.Round(r * float64(t.NumLeaves)))
	if target < 2 {
		target = 2
	}
	if target > t.NumLeaves {
		target = t.NumLeaves
	}
	return int32(t.NumLeaves - target)
}

// ResolutionForTime is the inverse of TimeForResolution.
func (t *Tree) ResolutionForTime(tm int32) float64 {
	return float64(t.NumLeaves-int(tm)) / float64(t.NumLeaves)
}

// ActiveNodeCount returns how many nodes are active at time tm.
func (t *Tree) ActiveNodeCount(tm int32) int { return t.NumLeaves - int(tm) }

// IsActive reports whether node v is part of the resolution-tm cut.
func (t *Tree) IsActive(v NodeID, tm int32) bool {
	n := &t.Nodes[v]
	return n.Birth <= tm && tm < n.Death
}

// AncestorAt returns the unique active ancestor (or self) of node v at time
// tm.
func (t *Tree) AncestorAt(v NodeID, tm int32) NodeID {
	for v != NoNode && t.Nodes[v].Death <= tm {
		v = t.Nodes[v].Parent
	}
	if v == NoNode {
		return t.Root()
	}
	if t.Nodes[v].Birth > tm {
		// Cannot happen for leaves (Birth 0); for parents it would mean tm
		// precedes the node's creation, i.e. the caller asked about a node
		// that does not yet exist at tm — report the node itself.
		return v
	}
	return v
}

// ErrorAt returns the approximation error of the resolution-tm cut (the
// error of the last collapse applied; 0 at time 0).
func (t *Tree) ErrorAt(tm int32) float64 {
	if tm <= 0 {
		return 0
	}
	// Node created by collapse i has Birth i+1 and is node NumLeaves+i.
	return t.Nodes[t.NumLeaves+int(tm)-1].Error
}

// Validate checks the structural invariants of the tree. It is used by
// tests and by consumers loading a tree from storage.
func (t *Tree) Validate() error {
	n := t.NumLeaves
	if len(t.Nodes) != 2*n-1 {
		return fmt.Errorf("multires: %d nodes for %d leaves, want %d", len(t.Nodes), n, 2*n-1)
	}
	for i, nd := range t.Nodes {
		v := NodeID(i)
		if t.IsLeaf(v) {
			if nd.Left != NoNode || nd.Right != NoNode {
				return fmt.Errorf("multires: leaf %d has children", i)
			}
			if nd.Birth != 0 {
				return fmt.Errorf("multires: leaf %d has birth %d", i, nd.Birth)
			}
		} else {
			if nd.Left == NoNode || nd.Right == NoNode {
				return fmt.Errorf("multires: internal node %d lacks children", i)
			}
			// IDs may come from untrusted storage: bounds-check before
			// indexing so a corrupt tree fails validation instead of
			// panicking.
			if !t.validID(nd.Left) || !t.validID(nd.Right) {
				return fmt.Errorf("multires: node %d child out of range (%d,%d)", i, nd.Left, nd.Right)
			}
			l, r := t.Nodes[nd.Left], t.Nodes[nd.Right]
			if l.Parent != v || r.Parent != v {
				return fmt.Errorf("multires: node %d children disown it", i)
			}
			if nd.Error < l.Error || nd.Error < r.Error {
				return fmt.Errorf("multires: node %d error %g below child errors (%g,%g)", i, nd.Error, l.Error, r.Error)
			}
			if l.Death != nd.Birth || r.Death != nd.Birth {
				return fmt.Errorf("multires: node %d birth %d != children deaths (%d,%d)", i, nd.Birth, l.Death, r.Death)
			}
			if nd.Rep != t.Nodes[nd.Left].Rep {
				return fmt.Errorf("multires: node %d representative %d != left child's %d", i, nd.Rep, t.Nodes[nd.Left].Rep)
			}
			if !nd.MBR.ContainsMBR(l.MBR) || !nd.MBR.ContainsMBR(r.MBR) {
				return fmt.Errorf("multires: node %d MBR does not cover children", i)
			}
		}
		if nd.Death <= nd.Birth {
			return fmt.Errorf("multires: node %d lifetime [%d,%d) empty", i, nd.Birth, nd.Death)
		}
	}
	for i, e := range t.Edges {
		if e.Death <= e.Birth {
			return fmt.Errorf("multires: edge %d lifetime [%d,%d) empty", i, e.Birth, e.Death)
		}
		if !t.validID(e.U) || !t.validID(e.W) {
			return fmt.Errorf("multires: edge %d endpoint out of range (%d,%d)", i, e.U, e.W)
		}
		u, w := t.Nodes[e.U], t.Nodes[e.W]
		if e.Birth < u.Birth || e.Birth < w.Birth || e.Death > u.Death && e.Death > w.Death {
			// An edge must live within its endpoints' lifetimes and die no
			// later than the first endpoint death.
			if e.Death > minI32(u.Death, w.Death) {
				return fmt.Errorf("multires: edge %d outlives endpoint", i)
			}
		}
		if e.D < 0 {
			return fmt.Errorf("multires: edge %d has negative distance", i)
		}
	}
	return nil
}

func minI32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

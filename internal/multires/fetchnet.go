package multires

import "surfknn/internal/graph"

// NetworkFromEdgeIDs materialises a network from an explicit set of edge
// indices (typically the records fetched from the clustered store for an
// I/O region), further restricted by an optional per-edge filter (MR3's
// per-candidate refined search region). Edges not alive at tm are skipped,
// so passing a superset is safe.
func (t *Tree) NetworkFromEdgeIDs(tm int32, ids []int32, filter func(EdgeRec) bool) *Network {
	nw := &Network{
		Time:  tm,
		IdxOf: make(map[NodeID]int32),
		tree:  t,
	}
	idx := func(v NodeID) int32 {
		if i, ok := nw.IdxOf[v]; ok {
			return i
		}
		i := int32(len(nw.NodeOf))
		nw.IdxOf[v] = i
		nw.NodeOf = append(nw.NodeOf, v)
		return i
	}
	type arc struct {
		u, w int32
		d    float64
	}
	var arcs []arc
	for _, id := range ids {
		e := t.Edges[id]
		if e.Birth > tm || tm >= e.Death {
			continue
		}
		if filter != nil && !filter(e) {
			continue
		}
		arcs = append(arcs, arc{idx(e.U), idx(e.W), e.D})
	}
	nw.G = graph.New(len(nw.NodeOf))
	for _, a := range arcs {
		nw.G.AddEdge(int(a.u), int(a.w), a.d)
	}
	return nw
}

// EdgeMBR returns the (x,y) bounding rectangle of an edge record's
// representative endpoints (the geometry used for spatial clustering and
// region filtering).
func (t *Tree) EdgeMBR(e EdgeRec) (minX, minY, maxX, maxY float64) {
	pu := t.Nodes[e.U].RepPos
	pw := t.Nodes[e.W].RepPos
	minX, maxX = pu.X, pw.X
	if minX > maxX {
		minX, maxX = maxX, minX
	}
	minY, maxY = pu.Y, pw.Y
	if minY > maxY {
		minY, maxY = maxY, minY
	}
	return
}

package multires

import (
	"math"
	"math/rand"
	"testing"

	"surfknn/internal/dem"
	"surfknn/internal/geom"
	"surfknn/internal/graph"
	"surfknn/internal/mesh"
	"surfknn/internal/simplify"
)

func buildTree(t *testing.T, size int, preset dem.Preset, seed int64) (*mesh.Mesh, *Tree) {
	t.Helper()
	m := mesh.FromGrid(dem.Synthesize(preset, size, 10, seed))
	tr, err := BuildFromMesh(m)
	if err != nil {
		t.Fatal(err)
	}
	return m, tr
}

// meshGraph builds the plain original-mesh network for reference distances.
func meshGraph(m *mesh.Mesh) *graph.Graph {
	g := graph.New(m.NumVerts())
	for _, e := range m.Edges() {
		g.AddEdge(int(e.A), int(e.B), m.EdgeLength(e))
	}
	return g
}

func TestBuildValidates(t *testing.T) {
	_, tr := buildTree(t, 8, dem.BH, 1)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	n := tr.NumLeaves
	if tr.Root() != NodeID(2*n-2) {
		t.Errorf("root = %d", tr.Root())
	}
	if tr.MaxTime() != int32(n-1) {
		t.Errorf("MaxTime = %d", tr.MaxTime())
	}
}

func TestAncestorAt(t *testing.T) {
	_, tr := buildTree(t, 4, dem.EP, 2)
	n := tr.NumLeaves
	// At time 0 every leaf is its own ancestor.
	for v := 0; v < n; v++ {
		if got := tr.AncestorAt(NodeID(v), 0); got != NodeID(v) {
			t.Fatalf("AncestorAt(%d,0) = %d", v, got)
		}
	}
	// At the final time every leaf maps to the root.
	last := tr.MaxTime()
	for v := 0; v < n; v++ {
		if got := tr.AncestorAt(NodeID(v), last); got != tr.Root() {
			t.Fatalf("AncestorAt(%d,last) = %d, want root %d", v, got, tr.Root())
		}
	}
	// Each intermediate time has exactly ActiveNodeCount distinct ancestors.
	for _, tm := range []int32{1, int32(n) / 4, int32(n) / 2} {
		set := make(map[NodeID]bool)
		for v := 0; v < n; v++ {
			a := tr.AncestorAt(NodeID(v), tm)
			if !tr.IsActive(a, tm) {
				t.Fatalf("ancestor %d not active at %d", a, tm)
			}
			set[a] = true
		}
		if len(set) != tr.ActiveNodeCount(tm) {
			t.Fatalf("time %d: %d distinct ancestors, want %d", tm, len(set), tr.ActiveNodeCount(tm))
		}
	}
}

func TestTimeResolutionRoundTrip(t *testing.T) {
	_, tr := buildTree(t, 8, dem.EP, 3)
	for _, r := range []float64{0.005, 0.25, 0.5, 0.75, 1.0} {
		tm := tr.TimeForResolution(r)
		back := tr.ResolutionForTime(tm)
		if math.Abs(back-r) > 0.05 && r*float64(tr.NumLeaves) >= 2 {
			t.Errorf("resolution %v → time %d → %v", r, tm, back)
		}
	}
	if tr.TimeForResolution(1.0) != 0 {
		t.Error("full resolution should be time 0")
	}
	if tr.TimeForResolution(0) != int32(tr.NumLeaves-2) {
		t.Errorf("minimal resolution time = %d", tr.TimeForResolution(0))
	}
	if tr.ErrorAt(0) != 0 {
		t.Error("ErrorAt(0) should be 0")
	}
	if tr.ErrorAt(tr.MaxTime()) < tr.ErrorAt(tr.MaxTime()/2) {
		t.Error("cut error should be monotone in time")
	}
}

func TestNetworkAtTimeZeroMatchesMesh(t *testing.T) {
	m, tr := buildTree(t, 8, dem.BH, 4)
	nw := tr.ExtractNetwork(0, IncludeAll)
	if nw.G.NumVertices() != m.NumVerts() {
		t.Fatalf("network verts = %d, want %d", nw.G.NumVertices(), m.NumVerts())
	}
	ref := meshGraph(m)
	// Compare a few single-source distance fields.
	for _, srcLeaf := range []int{0, m.NumVerts() / 2} {
		src := int(nw.IdxOf[NodeID(srcLeaf)])
		got := graph.Dijkstra(nw.G, src)
		want := graph.Dijkstra(ref, srcLeaf)
		for v := 0; v < m.NumVerts(); v++ {
			gi := nw.IdxOf[NodeID(v)]
			if math.Abs(got[gi]-want[v]) > 1e-9 {
				t.Fatalf("dist to %d: %v want %v", v, got[gi], want[v])
			}
		}
	}
}

func TestGatherBound(t *testing.T) {
	m, tr := buildTree(t, 8, dem.BH, 5)
	ref := meshGraph(m)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		leaf := NodeID(rng.Intn(tr.NumLeaves))
		tm := int32(rng.Intn(int(tr.MaxTime())))
		anc := tr.AncestorAt(leaf, tm)
		rep := tr.Nodes[anc].Rep
		d := graph.Dijkstra(ref, int(leaf))[rep]
		if d > tr.Nodes[anc].Gather+1e-9 {
			t.Fatalf("gather violated: d(leaf %d, rep %d)=%v > gather %v (time %d)",
				leaf, rep, d, tr.Nodes[anc].Gather, tm)
		}
	}
}

func surfacePointAt(t *testing.T, m *mesh.Mesh, loc *mesh.Locator, x, y float64) mesh.SurfacePoint {
	t.Helper()
	sp, err := mesh.MakeSurfacePoint(m, loc, geom.Vec2{X: x, Y: y})
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestUpperBoundProperties(t *testing.T) {
	m, tr := buildTree(t, 8, dem.BH, 6)
	loc := mesh.NewLocator(m)
	ext := m.Extent()
	rng := rand.New(rand.NewSource(11))
	resolutions := []float64{0.01, 0.25, 0.5, 0.75, 1.0}
	for trial := 0; trial < 15; trial++ {
		a := surfacePointAt(t, m, loc,
			ext.MinX+rng.Float64()*ext.Width(), ext.MinY+rng.Float64()*ext.Height())
		b := surfacePointAt(t, m, loc,
			ext.MinX+rng.Float64()*ext.Width(), ext.MinY+rng.Float64()*ext.Height())
		euclid := a.Pos.Dist(b.Pos)
		prev := math.Inf(1)
		for _, r := range resolutions {
			est := tr.UpperBound(m, a, b, tr.TimeForResolution(r), IncludeAll)
			if math.IsInf(est.UB, 1) {
				t.Fatalf("disconnected at resolution %v", r)
			}
			if est.UB < euclid-1e-9 {
				t.Fatalf("ub %v below Euclidean %v (resolution %v)", est.UB, euclid, r)
			}
			// Monotone: higher resolution must not worsen the bound.
			if est.UB > prev+1e-9 {
				t.Fatalf("ub not monotone: %v at r=%v after %v", est.UB, r, prev)
			}
			prev = est.UB
		}
	}
}

func TestUpperBoundSameFace(t *testing.T) {
	m, tr := buildTree(t, 4, dem.EP, 7)
	loc := mesh.NewLocator(m)
	// Two points in the same triangle: bound is the straight segment.
	a := surfacePointAt(t, m, loc, 1, 1)
	b := surfacePointAt(t, m, loc, 2, 2)
	if a.Face == b.Face {
		est := tr.UpperBound(m, a, b, 0, IncludeAll)
		if math.Abs(est.UB-a.Pos.Dist(b.Pos)) > 1e-9 {
			t.Errorf("same-face ub = %v, want %v", est.UB, a.Pos.Dist(b.Pos))
		}
	}
}

func TestUpperBoundRestrictedRegion(t *testing.T) {
	m, tr := buildTree(t, 8, dem.BH, 8)
	loc := mesh.NewLocator(m)
	ext := m.Extent()
	a := surfacePointAt(t, m, loc, ext.MinX+5, ext.MinY+5)
	b := surfacePointAt(t, m, loc, ext.MaxX-5, ext.MaxY-5)
	// A filter admitting nothing: estimation fails with +Inf.
	est := tr.UpperBound(m, a, b, 0, func(NodeID) bool { return false })
	if !math.IsInf(est.UB, 1) {
		t.Errorf("empty region should give Inf, got %v", est.UB)
	}
	// A generous rectangle around both points succeeds and can only be
	// >= the unrestricted bound.
	free := tr.UpperBound(m, a, b, 0, IncludeAll)
	roi := ext // full extent
	est = tr.UpperBound(m, a, b, 0, func(v NodeID) bool {
		return roi.Contains(tr.Nodes[v].RepPos.XY())
	})
	if est.UB < free.UB-1e-9 {
		t.Errorf("restricted ub %v below unrestricted %v", est.UB, free.UB)
	}
}

func TestUpperBoundPathNodes(t *testing.T) {
	m, tr := buildTree(t, 8, dem.EP, 12)
	loc := mesh.NewLocator(m)
	ext := m.Extent()
	a := surfacePointAt(t, m, loc, ext.MinX+3, ext.MinY+3)
	b := surfacePointAt(t, m, loc, ext.MaxX-3, ext.MaxY-3)
	tm := tr.TimeForResolution(0.5)
	est := tr.UpperBound(m, a, b, tm, IncludeAll)
	if len(est.Path) == 0 {
		t.Fatal("expected a non-empty path for distant points")
	}
	for _, v := range est.Path {
		if !tr.IsActive(v, tm) {
			t.Errorf("path node %d not active at time %d", v, tm)
		}
		if tr.Nodes[v].MBR.IsEmpty() {
			t.Errorf("path node %d has empty MBR", v)
		}
	}
}

func TestExtractMesh(t *testing.T) {
	m, tr := buildTree(t, 8, dem.BH, 9)
	// Full resolution reproduces the original size.
	full := tr.ExtractMesh(m, 0)
	if full.NumVerts() != m.NumVerts() || full.NumFaces() != m.NumFaces() {
		t.Errorf("full extraction %v, want %v", full, m)
	}
	// Half resolution has roughly half the vertices and fewer faces.
	tm := tr.TimeForResolution(0.5)
	half := tr.ExtractMesh(m, tm)
	if got, want := half.NumVerts(), tr.ActiveNodeCount(tm); got != want {
		t.Errorf("half extraction verts = %d, want %d", got, want)
	}
	if half.NumFaces() >= m.NumFaces() {
		t.Errorf("half extraction faces = %d not fewer than %d", half.NumFaces(), m.NumFaces())
	}
	if err := half.Validate(); err != nil {
		t.Errorf("extracted mesh invalid: %v", err)
	}
	// Very coarse extraction still works.
	coarse := tr.ExtractMesh(m, tr.TimeForResolution(0.01))
	if coarse.NumVerts() < 2 {
		t.Errorf("coarse extraction too small: %v", coarse)
	}
}

func TestBuildRejectsMismatch(t *testing.T) {
	m1 := mesh.FromGrid(dem.Synthesize(dem.EP, 4, 10, 1))
	m2 := mesh.FromGrid(dem.Synthesize(dem.EP, 8, 10, 1))
	tr, err := BuildFromMesh(m1)
	if err != nil {
		t.Fatal(err)
	}
	_ = tr
	hist, err := simplifyOf(m1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(m2, hist); err == nil {
		t.Error("mismatched history should fail")
	}
}

func simplifyOf(m *mesh.Mesh) (*simplify.History, error) { return simplify.Simplify(m) }

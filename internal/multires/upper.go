package multires

import (
	"surfknn/internal/graph"
	"surfknn/internal/mesh"
)

// UpperEstimate is the result of one DMTM upper-bound estimation.
type UpperEstimate struct {
	UB   float64  // the upper bound on the surface distance (Inf when disconnected in the region)
	Path []NodeID // the network path realising it (tree nodes, endpoints excluded)
}

// UpperBound estimates an upper bound on the surface distance between two
// surface points using the resolution-tm network restricted by include.
// It implements §4.2.1: a Dijkstra network distance on the approximate
// mesh, valid because every edge weight is a real original-surface path
// length.
//
// A failed estimate (points disconnected within the included region)
// returns UB = +Inf; the caller is expected to enlarge the region.
func (t *Tree) UpperBound(m *mesh.Mesh, a, b mesh.SurfacePoint, tm int32, include func(NodeID) bool) UpperEstimate {
	nw := t.ExtractNetwork(tm, include)
	return nw.UpperBound(m, a, b)
}

// UpperBound runs the estimation on an already-extracted network, allowing
// MR3 to reuse one extraction for several candidates.
func (nw *Network) UpperBound(m *mesh.Mesh, a, b mesh.SurfacePoint) UpperEstimate {
	// Same-face shortcut: the straight on-facet segment is a valid path.
	if a.Face == b.Face {
		return UpperEstimate{UB: a.Pos.Dist(b.Pos)}
	}
	src, okA := nw.Embed(m, a)
	dst, okB := nw.Embed(m, b)
	if !okA || !okB {
		return UpperEstimate{UB: graph.Inf}
	}
	d, path := graph.DijkstraTarget(nw.G, src, dst)
	return UpperEstimate{UB: d, Path: nw.NodePath(path)}
}

package multires

import (
	"math"
	"testing"

	"surfknn/internal/dem"
	"surfknn/internal/geom"
	"surfknn/internal/graph"
)

// TestNetworkFromEdgeIDsMatchesExtract: feeding every edge index through
// NetworkFromEdgeIDs must produce a network with identical shortest
// distances to ExtractNetwork at the same time.
func TestNetworkFromEdgeIDsMatchesExtract(t *testing.T) {
	_, tr := buildTree(t, 8, dem.BH, 44)
	allIDs := make([]int32, len(tr.Edges))
	for i := range allIDs {
		allIDs[i] = int32(i)
	}
	for _, res := range []float64{0.1, 0.5, 1.0} {
		tm := tr.TimeForResolution(res)
		a := tr.ExtractNetwork(tm, IncludeAll)
		b := tr.NetworkFromEdgeIDs(tm, allIDs, nil)
		if a.G.NumVertices() != b.G.NumVertices() {
			t.Fatalf("res %v: %d vs %d vertices", res, a.G.NumVertices(), b.G.NumVertices())
		}
		// Compare a single-source distance field through the NodeID maps.
		var src NodeID
		for v := range a.IdxOf {
			src = v
			break
		}
		da := graph.Dijkstra(a.G, int(a.IdxOf[src]))
		db := graph.Dijkstra(b.G, int(b.IdxOf[src]))
		for v, ia := range a.IdxOf {
			ib, ok := b.IdxOf[v]
			if !ok {
				t.Fatalf("res %v: node %d missing from id-built network", res, v)
			}
			if math.Abs(da[ia]-db[ib]) > 1e-9 {
				t.Fatalf("res %v node %d: %v vs %v", res, v, da[ia], db[ib])
			}
		}
	}
}

// TestNetworkFromEdgeIDsFilter: the per-edge filter restricts the network.
func TestNetworkFromEdgeIDsFilter(t *testing.T) {
	m, tr := buildTree(t, 8, dem.BH, 45)
	allIDs := make([]int32, len(tr.Edges))
	for i := range allIDs {
		allIDs[i] = int32(i)
	}
	ext := m.Extent()
	half := geom.MBR{MinX: ext.MinX, MinY: ext.MinY, MaxX: ext.Center().X, MaxY: ext.MaxY}
	nw := tr.NetworkFromEdgeIDs(0, allIDs, func(e EdgeRec) bool {
		minX, _, _, _ := tr.EdgeMBR(e)
		return minX <= half.MaxX
	})
	full := tr.NetworkFromEdgeIDs(0, allIDs, nil)
	if nw.G.NumVertices() >= full.G.NumVertices() {
		t.Errorf("filtered network (%d) not smaller than full (%d)",
			nw.G.NumVertices(), full.G.NumVertices())
	}
	// Stale (dead-at-tm) edges are skipped even when passed explicitly.
	coarseTm := tr.TimeForResolution(0.1)
	coarse := tr.NetworkFromEdgeIDs(coarseTm, allIDs, nil)
	if coarse.G.NumVertices() >= full.G.NumVertices() {
		t.Errorf("coarse network (%d) not smaller than fine (%d)",
			coarse.G.NumVertices(), full.G.NumVertices())
	}
}

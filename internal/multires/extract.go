package multires

import (
	"surfknn/internal/geom"
	"surfknn/internal/graph"
	"surfknn/internal/mesh"
)

// Network is the resolution-tm cut of the DDM, restricted to an optional
// node filter, materialised as a weighted graph. Edge weights are the
// recorded representative-path distances, so any shortest path in a Network
// corresponds to a real path on the original surface — the source of the
// upper-bound guarantee.
type Network struct {
	G      *graph.Graph
	NodeOf []NodeID         // graph vertex -> tree node
	IdxOf  map[NodeID]int32 // tree node -> graph vertex
	Time   int32
	tree   *Tree
}

// IncludeAll is the node filter admitting every active node.
func IncludeAll(NodeID) bool { return true }

// ExtractNetwork materialises the network of nodes active at time tm that
// pass the include filter. Pass IncludeAll for the whole terrain; MR3
// passes an ROI/fetched-pages filter.
func (t *Tree) ExtractNetwork(tm int32, include func(NodeID) bool) *Network {
	nw := &Network{
		Time:  tm,
		IdxOf: make(map[NodeID]int32),
		tree:  t,
	}
	idx := func(v NodeID) int32 {
		if i, ok := nw.IdxOf[v]; ok {
			return i
		}
		i := int32(len(nw.NodeOf))
		nw.IdxOf[v] = i
		nw.NodeOf = append(nw.NodeOf, v)
		return i
	}
	type arc struct {
		u, w int32
		d    float64
	}
	var arcs []arc
	for _, e := range t.Edges {
		if e.Birth <= tm && tm < e.Death && include(e.U) && include(e.W) {
			arcs = append(arcs, arc{idx(e.U), idx(e.W), e.D})
		}
	}
	nw.G = graph.New(len(nw.NodeOf))
	for _, a := range arcs {
		nw.G.AddEdge(int(a.u), int(a.w), a.d)
	}
	return nw
}

// Embed connects a surface point into the network as a new graph vertex.
// The point links to the active ancestors of its containing face's corners;
// each link weight is the on-facet distance to the corner plus the
// ancestor's Gather bound, so the total remains a valid original-surface
// path length. ok is false when none of the corners' ancestors are present
// (the point's surroundings fall outside the extracted region).
func (nw *Network) Embed(m *mesh.Mesh, sp mesh.SurfacePoint) (int, bool) {
	v := nw.G.AddVertex()
	nw.NodeOf = append(nw.NodeOf, NoNode)
	connected := false
	seen := make(map[int32]bool, 3)
	for _, corner := range sp.Corners(m) {
		anc := nw.tree.AncestorAt(NodeID(corner), nw.Time)
		gi, ok := nw.IdxOf[anc]
		if !ok || seen[gi] {
			continue
		}
		seen[gi] = true
		w := sp.Pos.Dist(m.Verts[corner]) + nw.tree.Nodes[anc].Gather
		nw.G.AddEdge(v, int(gi), w)
		connected = true
	}
	return v, connected
}

// NodePath converts a graph-vertex path into tree nodes, dropping embedded
// (virtual) endpoints.
func (nw *Network) NodePath(path []int) []NodeID {
	out := make([]NodeID, 0, len(path))
	for _, v := range path {
		if v < len(nw.NodeOf) && nw.NodeOf[v] != NoNode {
			out = append(out, nw.NodeOf[v])
		}
	}
	return out
}

// ExtractMesh reconstructs an approximate triangle mesh at time tm by
// mapping every original face to the active ancestors of its corners and
// dropping collapsed (degenerate) faces. This is the DM visualisation
// query (Fig. 1 of the paper).
func (t *Tree) ExtractMesh(m *mesh.Mesh, tm int32) *mesh.Mesh {
	vid := make(map[NodeID]mesh.VertexID)
	var verts []geom.Vec3
	mapv := func(v NodeID) mesh.VertexID {
		if i, ok := vid[v]; ok {
			return i
		}
		i := mesh.VertexID(len(verts))
		vid[v] = i
		verts = append(verts, t.Nodes[v].Pos)
		return i
	}
	var faces [][3]mesh.VertexID
	seen := make(map[[3]mesh.VertexID]bool)
	for _, f := range m.Faces {
		a := mapv(t.AncestorAt(NodeID(f[0]), tm))
		b := mapv(t.AncestorAt(NodeID(f[1]), tm))
		c := mapv(t.AncestorAt(NodeID(f[2]), tm))
		if a == b || b == c || a == c {
			continue
		}
		key := normFace(a, b, c)
		if seen[key] {
			continue
		}
		seen[key] = true
		// Re-orient CCW in projection if the collapse flipped it.
		tri := geom.Triangle2{A: verts[a].XY(), B: verts[b].XY(), C: verts[c].XY()}
		if tri.SignedArea() < 0 {
			b, c = c, b
		}
		faces = append(faces, [3]mesh.VertexID{a, b, c})
	}
	return mesh.New(verts, faces)
}

func normFace(a, b, c mesh.VertexID) [3]mesh.VertexID {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return [3]mesh.VertexID{a, b, c}
}

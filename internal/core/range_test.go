package core

import (
	"math"
	"testing"

	"surfknn/internal/dem"
)

func TestSurfaceRangeMatchesBruteForce(t *testing.T) {
	db := buildDB(t, dem.BH, 16, 60, 808)
	q := queryPoints(t, db, 1, 62)[0]
	// Pick a radius that catches a handful of objects: the brute-force
	// 5th-nearest distance.
	bf := db.BruteForce(q, 5)
	radius := bf[4].UB * 1.001
	res, err := db.SurfaceRange(q, radius, S2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Brute-force membership.
	want := map[int64]bool{}
	for _, o := range db.Objects() {
		if db.ReferenceDistance(q, o.Point) <= radius {
			want[o.ID] = true
		}
	}
	got := map[int64]bool{}
	for _, n := range res.Neighbors {
		got[n.Object.ID] = true
	}
	tol := 1e-6 * (1 + radius)
	for id := range want {
		if !got[id] {
			o, _ := db.Object(id)
			d := db.ReferenceDistance(q, o.Point)
			if d < radius-tol {
				t.Errorf("object %d (d=%v) missing from range %v", id, d, radius)
			}
		}
	}
	for id := range got {
		if !want[id] {
			o, _ := db.Object(id)
			d := db.ReferenceDistance(q, o.Point)
			if d > radius+tol {
				t.Errorf("object %d (d=%v) wrongly in range %v", id, d, radius)
			}
		}
	}
	// Results sorted by upper bound.
	for i := 1; i < len(res.Neighbors); i++ {
		if res.Neighbors[i-1].UB > res.Neighbors[i].UB {
			t.Error("range results not sorted")
		}
	}
}

func TestSurfaceRangeEdgeCases(t *testing.T) {
	db := buildDB(t, dem.EP, 8, 10, 909)
	q := queryPoints(t, db, 1, 63)[0]
	// Zero radius: at most an object exactly at q (none here).
	res, err := db.SurfaceRange(q, 0, S3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != 0 {
		t.Errorf("zero radius returned %d objects", len(res.Neighbors))
	}
	// Huge radius: everything.
	res, err = db.SurfaceRange(q, 1e9, S3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != len(db.Objects()) {
		t.Errorf("huge radius returned %d of %d objects", len(res.Neighbors), len(db.Objects()))
	}
	// Invalid radius.
	if _, err := db.SurfaceRange(q, math.NaN(), S3, Options{}); err == nil {
		t.Error("NaN radius should error")
	}
	if _, err := db.SurfaceRange(q, -1, S3, Options{}); err == nil {
		t.Error("negative radius should error")
	}
}

func TestClosestPairMatchesBruteForce(t *testing.T) {
	db := buildDB(t, dem.BH, 16, 25, 1010)
	a, b, err := db.ClosestPair(S2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Object.ID == b.Object.ID {
		t.Fatal("closest pair returned the same object twice")
	}
	// Brute force over all pairs.
	objs := db.Objects()
	best := math.Inf(1)
	for i := 0; i < len(objs); i++ {
		for j := i + 1; j < len(objs); j++ {
			d := db.ReferenceDistance(objs[i].Point, objs[j].Point)
			if d < best {
				best = d
			}
		}
	}
	if math.Abs(a.UB-best) > 1e-6*(1+best) {
		t.Errorf("closest pair distance %v, brute force %v", a.UB, best)
	}
}

func TestClosestPairErrors(t *testing.T) {
	db := buildDB(t, dem.EP, 8, 1, 1111)
	if _, _, err := db.ClosestPair(S2, Options{}); err == nil {
		t.Error("single object should error")
	}
}

package core

import (
	"surfknn/internal/dem"

	"context"
	"errors"
	"sync"
	"testing"
)

func TestOptionsDefaults(t *testing.T) {
	// Zero value selects the paper's defaults.
	o := Options{}.withDefaults()
	if o.Step2Accuracy != 0.8 || o.OverlapThreshold != 0.8 {
		t.Errorf("zero Options resolved to %+v, want 0.8/0.8", o)
	}
	// Explicit values pass through.
	o = Options{Step2Accuracy: 0.5, OverlapThreshold: 0.9}.withDefaults()
	if o.Step2Accuracy != 0.5 || o.OverlapThreshold != 0.9 {
		t.Errorf("explicit Options resolved to %+v", o)
	}
	// Negative means a literal 0 (previously unreachable).
	o = Options{Step2Accuracy: -1, OverlapThreshold: -1}.withDefaults()
	if o.Step2Accuracy != 0 || o.OverlapThreshold != 0 {
		t.Errorf("negative Options resolved to %+v, want 0/0", o)
	}
}

func TestLiteralZeroOptionsRun(t *testing.T) {
	// A query with literal-zero fractions must still answer correctly:
	// Step2Accuracy 0 accepts any step-2 bound, OverlapThreshold 0 merges
	// any intersecting I/O regions.
	db := buildDB(t, dem.BH, 16, 40, 3)
	q := queryPoints(t, db, 1, 5)[0]
	res, err := db.MR3(q, 4, S1, Options{Step2Accuracy: -1, OverlapThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	sameKSet(t, db, q, res.Neighbors, 4)
}

func TestSessionReuseMatchesOneShot(t *testing.T) {
	// A session reused across queries must report the same results and the
	// same per-query page counts as one-shot queries (the paper's
	// sequential harness semantics).
	db := buildDB(t, dem.BH, 16, 50, 7)
	qs := queryPoints(t, db, 4, 11)
	s := db.NewSession(context.Background())
	for i, q := range qs {
		oneShot, err := db.MR3(q, 3, S2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		reused, err := s.MR3(q, 3, S2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if oneShot.Metrics().Pages != reused.Metrics().Pages {
			t.Errorf("query %d: one-shot pages %d != session pages %d",
				i, oneShot.Metrics().Pages, reused.Metrics().Pages)
		}
		if len(oneShot.Neighbors) != len(reused.Neighbors) {
			t.Fatalf("query %d: result sizes differ", i)
		}
		for j := range oneShot.Neighbors {
			if oneShot.Neighbors[j].Object.ID != reused.Neighbors[j].Object.ID {
				t.Errorf("query %d: neighbour %d differs", i, j)
			}
		}
	}
}

func TestSessionCancellation(t *testing.T) {
	db := buildDB(t, dem.BH, 16, 30, 9)
	q := queryPoints(t, db, 1, 13)[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := db.NewSession(ctx)
	if _, err := s.MR3(q, 3, S1, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("MR3 on cancelled context: err = %v, want context.Canceled", err)
	}
	if _, err := s.SurfaceRange(q, 100, S1, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("SurfaceRange on cancelled context: err = %v", err)
	}
	if _, err := s.EA(q, 3); !errors.Is(err, context.Canceled) {
		t.Errorf("EA on cancelled context: err = %v", err)
	}
}

// TestConcurrentQueries hammers one shared TerrainDB from many goroutines
// with a mix of query types (run under -race by the gate), then checks every
// goroutine saw exactly the sequential answers — results AND the per-query
// page-access metric.
func TestConcurrentQueries(t *testing.T) {
	db := buildDB(t, dem.BH, 16, 60, 17)
	qs := queryPoints(t, db, 6, 19)
	const k = 3
	radius := db.Mesh.Extent().Width() / 4

	// Sequential ground truth, one fresh session per query (the paper's
	// harness semantics).
	type knnTruth struct {
		ids   []int64
		pages int64
	}
	knnWant := make([]knnTruth, len(qs))
	rangeWant := make([]knnTruth, len(qs))
	accWant := make([]DistanceRange, len(qs))
	for i, q := range qs {
		res, err := db.MR3(q, k, S1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range res.Neighbors {
			knnWant[i].ids = append(knnWant[i].ids, n.Object.ID)
		}
		knnWant[i].pages = res.Metrics().Pages

		rres, err := db.SurfaceRange(q, radius, S2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range rres.Neighbors {
			rangeWant[i].ids = append(rangeWant[i].ids, n.Object.ID)
		}
		rangeWant[i].pages = rres.Metrics().Pages

		dr, err := db.DistanceWithAccuracy(q, db.Objects()[i].Point, 0.7, S2)
		if err != nil {
			t.Fatal(err)
		}
		accWant[i] = dr
	}

	const workers = 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.NewSession(context.Background())
			for i, q := range qs {
				switch (w + i) % 3 {
				case 0:
					res, err := s.MR3(q, k, S1, Options{})
					if err != nil {
						t.Errorf("worker %d MR3 %d: %v", w, i, err)
						return
					}
					if res.Metrics().Pages != knnWant[i].pages {
						t.Errorf("worker %d MR3 %d: pages %d, want %d",
							w, i, res.Metrics().Pages, knnWant[i].pages)
					}
					for j, n := range res.Neighbors {
						if n.Object.ID != knnWant[i].ids[j] {
							t.Errorf("worker %d MR3 %d: neighbour %d = %d, want %d",
								w, i, j, n.Object.ID, knnWant[i].ids[j])
						}
					}
				case 1:
					res, err := s.SurfaceRange(q, radius, S2, Options{})
					if err != nil {
						t.Errorf("worker %d range %d: %v", w, i, err)
						return
					}
					if res.Metrics().Pages != rangeWant[i].pages {
						t.Errorf("worker %d range %d: pages %d, want %d",
							w, i, res.Metrics().Pages, rangeWant[i].pages)
					}
					if len(res.Neighbors) != len(rangeWant[i].ids) {
						t.Errorf("worker %d range %d: %d results, want %d",
							w, i, len(res.Neighbors), len(rangeWant[i].ids))
						continue
					}
					for j, n := range res.Neighbors {
						if n.Object.ID != rangeWant[i].ids[j] {
							t.Errorf("worker %d range %d: result %d differs", w, i, j)
						}
					}
				default:
					dr, err := s.DistanceWithAccuracy(q, db.Objects()[i].Point, 0.7, S2)
					if err != nil {
						t.Errorf("worker %d accuracy %d: %v", w, i, err)
						return
					}
					if dr != accWant[i] {
						t.Errorf("worker %d accuracy %d: %+v, want %+v", w, i, dr, accWant[i])
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
